// Fixture: kUndocumented's value has no row in the fixture README.md.
// The metric-names-readme rule must report it (and only it).
namespace cepjoin {
namespace metric_names {
inline constexpr char kDocumented[] = "cep_fixture_documented_total";
inline constexpr char kUndocumented[] =
    "cep_fixture_undocumented_total";
}  // namespace metric_names
}  // namespace cepjoin
