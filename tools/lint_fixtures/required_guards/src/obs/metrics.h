// Fixture: fully annotated registry — the required-guards rule must
// stay silent on this file.
namespace cepjoin {

class MetricsRegistry {
 private:
  mutable Mutex mu_;
  std::deque<Entry> entries_ CEPJOIN_GUARDED_BY(mu_);
  std::map<std::string, Entry*> index_ CEPJOIN_GUARDED_BY(mu_);
};

}  // namespace cepjoin
