// Fixture: items_ lost its CEPJOIN_GUARDED_BY while closed_ kept it.
// The required-guards rule must report exactly the items_ deletion.
namespace cepjoin {

template <typename T>
class BoundedQueue {
 private:
  mutable Mutex mu_;
  std::deque<T> items_;
  bool closed_ CEPJOIN_GUARDED_BY(mu_) = false;
};

}  // namespace cepjoin
