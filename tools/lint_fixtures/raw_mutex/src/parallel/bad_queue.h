// Fixture: raw standard-library synchronization types outside
// common/mutex.h. The raw-mutex rule must report the mutex member, the
// condition variable, and the lock_guard use. (std::mutex named in this
// comment must NOT fire.)
#include <condition_variable>
#include <mutex>

namespace cepjoin {

class BadQueue {
 public:
  void Push() {
    std::lock_guard<std::mutex> lock(mu_);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace cepjoin
