// Fixture: a field (forgotten_total) missing from MergeDisjoint() and a
// byte field (forgotten_bytes) missing from CurrentBytes(). The
// engine-counters-merge rule must report both.
namespace cepjoin {

struct EngineCounters {
  uint64_t events_processed = 0;
  uint64_t matches_emitted = 0;
  uint64_t forgotten_total = 0;
  size_t instance_bytes = 0;
  size_t forgotten_bytes = 0;
  size_t peak_total_bytes = 0;

  void Merge(const EngineCounters& other);
  void MergeDisjoint(const EngineCounters& other);
  size_t CurrentBytes() const { return instance_bytes; }
};

inline void EngineCounters::MergeDisjoint(const EngineCounters& other) {
  events_processed += other.events_processed;
  matches_emitted += other.matches_emitted;
  instance_bytes += other.instance_bytes;
  forgotten_bytes += other.forgotten_bytes;
  peak_total_bytes += other.peak_total_bytes;
}

inline void EngineCounters::Merge(const EngineCounters& other) {
  uint64_t same_stream = events_processed > other.events_processed
                             ? events_processed
                             : other.events_processed;
  MergeDisjoint(other);
  events_processed = same_stream;
}

}  // namespace cepjoin
