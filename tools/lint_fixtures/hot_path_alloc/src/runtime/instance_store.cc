// Fixture: approved extent-column growth plus one unapproved stray
// growth (scratch_.reserve) the rule must report.
namespace cepjoin {

void AppendFixture() {
  min_ts_.push_back(min_ts);
  max_ts_.push_back(max_ts);
  scratch_.reserve(64);  // NOT on the approved list
}

}  // namespace cepjoin
