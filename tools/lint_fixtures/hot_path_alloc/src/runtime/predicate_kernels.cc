// Fixture: four distinct forbidden allocation constructs in the one
// hot-path file whose approved list is empty. The hot-path-alloc rule
// must report each line. (A mention of new in a comment must NOT fire.)
namespace cepjoin {

void EvalFixture() {
  std::vector<double> scratch;          // by-value container local
  scratch.push_back(1.0);               // growing container call
  double* block = new double[64];       // operator new
  auto owned = std::make_unique<int>(7);  // make_unique
  (void)block;
  (void)owned;
}

}  // namespace cepjoin
