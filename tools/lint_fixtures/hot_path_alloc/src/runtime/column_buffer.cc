// Fixture: only approved amortized member-column growth — the rule must
// stay silent on this file.
namespace cepjoin {

void AppendFixture() {
  events_.push_back(e);
  ts_.push_back(e->ts);
  for (auto& col : attr_cols_) col.resize(out);
}

}  // namespace cepjoin
