#include <vector>

#include "runtime/engine.h"

namespace cepjoin {

class TreeEngine : public Engine {
 private:
  int cp_ = 0;
  void* sink_ = nullptr;
  std::vector<int> node_buffers_;
};

}  // namespace cepjoin
