#include <vector>

#include "runtime/engine.h"

namespace cepjoin {

class NfaEngine : public Engine {
 private:
  struct Instance {
    double min_ts = 0.0;  // nested-struct fields are not class members
  };

  int cp_ = 0;
  void* sink_ = nullptr;
  std::vector<int> buffers_;
  double now_ = 0.0;
  // Added without touching the manifest: the rule must flag this.
  std::vector<int> forgotten_state_;
};

}  // namespace cepjoin
