// Fixture: NfaEngine's forgotten_state_ is on neither side, NfaEngine's
// now_ is listed on both sides, and TreeEngine lists stale_gone_ which
// no longer exists.

// ===== CODEC MANIFEST ====================================================
// codec-manifest: EngineCounters serialized = events_processed
//   matches_emitted
//
// codec-manifest: NfaEngine serialized = buffers_ now_ counters_
// codec-manifest: NfaEngine rebuilt = cp_ sink_ now_
//
// codec-manifest: TreeEngine serialized = node_buffers_ counters_
//   stale_gone_
// codec-manifest: TreeEngine rebuilt = cp_ sink_
// =========================================================================
