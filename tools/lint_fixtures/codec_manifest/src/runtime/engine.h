#include <cstdint>

namespace cepjoin {

struct EngineCounters {
  uint64_t events_processed = 0;
  uint64_t matches_emitted = 0;
};

class Engine {
 public:
  virtual ~Engine() = default;

 protected:
  EngineCounters counters_;
};

}  // namespace cepjoin
