// Fixture: reaches into engine internals. The api-layering rule must
// report both includes; the factory include is allowed.
#include "engine/engine_factory.h"
#include "nfa/nfa_engine.h"
#include "tree/tree_engine.h"
