#!/usr/bin/env python3
"""Unit tests for tools/cep_lint.py.

Each rule is exercised twice: against a bad fixture tree
(tools/lint_fixtures/<rule>/) that must make it fire with the expected
findings, and against the real repository, where it must be clean — so
the suite simultaneously proves the rules can fail and that the tree
currently passes them.
"""

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import cep_lint  # noqa: E402

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tools" / "lint_fixtures"


def messages(findings):
    return [str(f) for f in findings]


class EngineCountersMergeTest(unittest.TestCase):
    def test_fires_on_fixture(self):
        findings = cep_lint.check_engine_counters(FIXTURES / "engine_counters")
        self.assertEqual(len(findings), 2, messages(findings))
        self.assertIn("forgotten_total", findings[0].message)
        self.assertIn("MergeDisjoint", findings[0].message)
        self.assertIn("forgotten_bytes", findings[1].message)
        self.assertIn("CurrentBytes", findings[1].message)

    def test_clean_on_repo(self):
        self.assertEqual(messages(cep_lint.check_engine_counters(REPO)), [])


class MetricNamesReadmeTest(unittest.TestCase):
    def test_fires_on_fixture(self):
        findings = cep_lint.check_metric_names(FIXTURES / "metric_names")
        self.assertEqual(len(findings), 1, messages(findings))
        self.assertIn("cep_fixture_undocumented_total", findings[0].message)

    def test_clean_on_repo(self):
        self.assertEqual(messages(cep_lint.check_metric_names(REPO)), [])


class ApiLayeringTest(unittest.TestCase):
    def test_fires_on_fixture(self):
        findings = cep_lint.check_api_layering(FIXTURES / "api_layering")
        self.assertEqual(len(findings), 2, messages(findings))
        self.assertIn("nfa/nfa_engine.h", findings[0].message)
        self.assertIn("tree/tree_engine.h", findings[1].message)

    def test_clean_on_repo(self):
        self.assertEqual(messages(cep_lint.check_api_layering(REPO)), [])


class HotPathAllocTest(unittest.TestCase):
    def test_fires_on_fixture(self):
        findings = cep_lint.check_hot_path_alloc(FIXTURES / "hot_path_alloc")
        by_file = {}
        for f in findings:
            by_file.setdefault(Path(f.path).name, []).append(f)
        # predicate_kernels.cc: local container, push_back, new,
        # make_unique — one finding per offending line.
        self.assertEqual(
            len(by_file.get("predicate_kernels.cc", [])), 4, messages(findings)
        )
        # instance_store.cc: only the stray scratch_.reserve fires; the
        # approved extent-column growth does not.
        store = by_file.get("instance_store.cc", [])
        self.assertEqual(len(store), 1, messages(findings))
        self.assertIn("scratch_", store[0].message)
        # column_buffer.cc: all growth is approved.
        self.assertNotIn("column_buffer.cc", by_file, messages(findings))

    def test_clean_on_repo(self):
        self.assertEqual(messages(cep_lint.check_hot_path_alloc(REPO)), [])


class RawMutexTest(unittest.TestCase):
    def test_fires_on_fixture(self):
        findings = cep_lint.check_raw_mutex(FIXTURES / "raw_mutex")
        # lock_guard line, mutex member, condition_variable member; the
        # comment mentioning std::mutex must not fire.
        self.assertEqual(len(findings), 3, messages(findings))
        found = " ".join(messages(findings))
        self.assertIn("std::lock_guard", found)
        self.assertIn("std::mutex", found)
        self.assertIn("std::condition_variable", found)

    def test_clean_on_repo(self):
        self.assertEqual(messages(cep_lint.check_raw_mutex(REPO)), [])


class RequiredGuardsTest(unittest.TestCase):
    def test_fires_on_fixture(self):
        findings = cep_lint.check_required_guards(FIXTURES / "required_guards")
        self.assertEqual(len(findings), 1, messages(findings))
        self.assertIn("items_", findings[0].message)
        self.assertIn("CEPJOIN_GUARDED_BY(mu_)", findings[0].message)

    def test_clean_on_repo(self):
        self.assertEqual(messages(cep_lint.check_required_guards(REPO)), [])


class CodecManifestTest(unittest.TestCase):
    def test_fires_on_fixture(self):
        findings = cep_lint.check_codec_manifest(FIXTURES / "codec_manifest")
        found = " ".join(messages(findings))
        self.assertEqual(len(findings), 3, messages(findings))
        # Member added without touching the manifest.
        self.assertIn("forgotten_state_", found)
        self.assertIn("neither side", found)
        # Same member on both sides.
        self.assertIn("'now_'", found)
        self.assertIn("exactly one side", found)
        # Listed name with no surviving declaration.
        self.assertIn("stale_gone_", found)
        self.assertIn("stale entry", found)

    def test_base_class_members_count_as_declared(self):
        # counters_ lives in the Engine base, not the engine classes; the
        # fixture lists it for both engines and must not be flagged stale.
        findings = cep_lint.check_codec_manifest(FIXTURES / "codec_manifest")
        self.assertNotIn("counters_", " ".join(messages(findings)))

    def test_clean_on_repo(self):
        self.assertEqual(messages(cep_lint.check_codec_manifest(REPO)), [])


class CliTest(unittest.TestCase):
    def test_main_ok_on_repo(self):
        self.assertEqual(cep_lint.main(["--root", str(REPO)]), 0)

    def test_main_fails_on_fixture(self):
        self.assertEqual(
            cep_lint.main(
                ["--root", str(FIXTURES / "raw_mutex"), "--rule", "raw-mutex"]
            ),
            1,
        )


if __name__ == "__main__":
    unittest.main()
