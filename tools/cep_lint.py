#!/usr/bin/env python3
"""cep_lint: deterministic project-invariant linter for cepjoin.

Encodes repository rules that generic static analyzers cannot know.
Every rule is a pure function over the source tree, so a violation is
reproducible on any machine with `python3 tools/cep_lint.py`; CI runs it
as a gate and ctest runs it as `tools_cep_lint`. Unit tests with bad
fixture trees (tools/cep_lint_test.py, tools/lint_fixtures/) prove each
rule actually fires.

Rules
-----
engine-counters-merge
    Every field of EngineCounters (src/runtime/engine.h) must appear in
    MergeDisjoint(); Merge() must special-case events_processed and
    delegate to MergeDisjoint. Every *_bytes field except peak_* must
    appear in CurrentBytes(). A field added to the struct but forgotten
    in a merge silently under-reports shard/DNF aggregates.

metric-names-readme
    Every string constant in namespace metric_names
    (src/obs/pipeline_metrics.h) must appear as a `name` entry in
    README.md's metrics reference table. The table is the public
    contract of the observability surface.

api-layering
    src/api/ must not include engine-internal headers (src/nfa/,
    src/tree/): the session API talks to engines through
    engine/engine_factory.h and runtime/engine.h only, so the engine
    internals stay swappable.

hot-path-alloc
    The hot-path kernel files (src/runtime/predicate_kernels.cc,
    column_buffer.cc, instance_store.cc) must not allocate outside an
    explicit per-file allowlist. Approved entries are amortized member-
    column growth (bounded by live rows, reclaimed by compaction) and
    setup-path configuration; everything else — new/make_unique/local
    containers/stray push_back — is a per-event allocation regression.

raw-mutex
    src/ must use the annotated cepjoin::Mutex / MutexLock / CondVar
    wrappers (src/common/mutex.h), never raw std::mutex &co: libstdc++'s
    types carry no thread-safety capability attributes, so Clang's
    -Wthread-safety cannot check lock protocols through them.

required-guards
    Load-bearing CEPJOIN_GUARDED_BY annotations must stay present:
    deleting one removes the compiler's checking silently (the clang
    build only warns about *annotated* fields), so this rule pins each
    one explicitly. Extend the table when annotating new classes.

codec-manifest
    The CODEC MANIFEST block in src/durable/snapshot_codec.cc lists,
    for each checkpointed class, which data members are serialized and
    which are rebuilt at construction. Every member of those classes
    must appear on exactly one side, and every listed name must still
    exist. A member added to an engine but missing from the manifest is
    the durability bug no test stream is guaranteed to catch: state
    silently absent from checkpoints.
"""

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Shared helpers


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based, 0 = whole file
        self.message = message

    def __str__(self):
        loc = f"{self.path}:{self.line}" if self.line else str(self.path)
        return f"{loc}: [{self.rule}] {self.message}"


def read(root, rel):
    path = Path(root) / rel
    if not path.exists():
        return None
    return path.read_text(encoding="utf-8")


def strip_comments(text):
    """Removes // and /* */ comments, preserving line structure so line
    numbers of findings stay accurate. String literals are left alone:
    the rules below only match code tokens."""
    text = re.sub(
        r"/\*.*?\*/",
        lambda m: re.sub(r"[^\n]", " ", m.group(0)),
        text,
        flags=re.S,
    )
    return re.sub(r"//[^\n]*", "", text)


def body_of(text, start_pattern):
    """Returns the brace-balanced body following the first match of
    start_pattern (which must end at or before the opening brace)."""
    m = re.search(start_pattern, text)
    if m is None:
        return None
    i = text.find("{", m.end() - 1)
    if i < 0:
        return None
    depth = 0
    for j in range(i, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return text[i + 1 : j]
    return None


# --------------------------------------------------------------------------
# Rule: engine-counters-merge

ENGINE_HEADER = "src/runtime/engine.h"


def check_engine_counters(root):
    findings = []
    text = read(root, ENGINE_HEADER)
    if text is None:
        return [Finding("engine-counters-merge", ENGINE_HEADER, 0, "missing file")]
    code = strip_comments(text)

    struct = body_of(code, r"struct\s+EngineCounters\s*")
    if struct is None:
        return [
            Finding(
                "engine-counters-merge",
                ENGINE_HEADER,
                0,
                "struct EngineCounters not found",
            )
        ]
    fields = re.findall(r"^\s*(?:uint64_t|size_t)\s+(\w+)\s*=", struct, re.M)

    merge_disjoint = body_of(code, r"void\s+EngineCounters::MergeDisjoint\s*\(")
    merge = body_of(code, r"void\s+EngineCounters::Merge\s*\(")
    current_bytes = body_of(struct, r"size_t\s+CurrentBytes\s*\(\s*\)\s*const\s*")

    if merge_disjoint is None:
        findings.append(
            Finding(
                "engine-counters-merge",
                ENGINE_HEADER,
                0,
                "EngineCounters::MergeDisjoint definition not found",
            )
        )
    else:
        for f in fields:
            if not re.search(rf"\b{f}\b", merge_disjoint):
                findings.append(
                    Finding(
                        "engine-counters-merge",
                        ENGINE_HEADER,
                        0,
                        f"field '{f}' missing from MergeDisjoint(): shard/"
                        "partition aggregation would silently drop it",
                    )
                )
    if merge is None:
        findings.append(
            Finding(
                "engine-counters-merge",
                ENGINE_HEADER,
                0,
                "EngineCounters::Merge definition not found",
            )
        )
    else:
        if "events_processed" not in merge or "MergeDisjoint" not in merge:
            findings.append(
                Finding(
                    "engine-counters-merge",
                    ENGINE_HEADER,
                    0,
                    "Merge() must special-case events_processed (same-stream "
                    "position, not a total) and delegate to MergeDisjoint()",
                )
            )
    if current_bytes is None:
        findings.append(
            Finding(
                "engine-counters-merge",
                ENGINE_HEADER,
                0,
                "EngineCounters::CurrentBytes definition not found",
            )
        )
    else:
        for f in fields:
            if f.endswith("_bytes") and not f.startswith("peak_"):
                if not re.search(rf"\b{f}\b", current_bytes):
                    findings.append(
                        Finding(
                            "engine-counters-merge",
                            ENGINE_HEADER,
                            0,
                            f"byte field '{f}' missing from CurrentBytes(): "
                            "the memory gauges would under-report",
                        )
                    )
    return findings


# --------------------------------------------------------------------------
# Rule: metric-names-readme

METRICS_HEADER = "src/obs/pipeline_metrics.h"
README = "README.md"


def check_metric_names(root):
    findings = []
    header = read(root, METRICS_HEADER)
    readme = read(root, README)
    if header is None or readme is None:
        return [
            Finding(
                "metric-names-readme",
                METRICS_HEADER if header is None else README,
                0,
                "missing file",
            )
        ]
    ns = body_of(strip_comments(header), r"namespace\s+metric_names\s*")
    if ns is None:
        return [
            Finding(
                "metric-names-readme",
                METRICS_HEADER,
                0,
                "namespace metric_names not found",
            )
        ]
    flat = re.sub(r"\s+", " ", ns)
    names = re.findall(r'char\s+k\w+\[\]\s*=\s*"([^"]+)"', flat)
    if not names:
        return [
            Finding(
                "metric-names-readme",
                METRICS_HEADER,
                0,
                "no metric name constants found in namespace metric_names",
            )
        ]
    for name in names:
        if f"`{name}`" not in readme:
            findings.append(
                Finding(
                    "metric-names-readme",
                    README,
                    0,
                    f"metric '{name}' (metric_names, {METRICS_HEADER}) has no "
                    "row in README.md's metrics reference table",
                )
            )
    return findings


# --------------------------------------------------------------------------
# Rule: api-layering

API_DIR = "src/api"
FORBIDDEN_INCLUDE_PREFIXES = ("nfa/", "tree/")


def check_api_layering(root):
    findings = []
    api = Path(root) / API_DIR
    if not api.is_dir():
        return [Finding("api-layering", API_DIR, 0, "missing directory")]
    for path in sorted(api.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root)
        for i, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            m = re.match(r'\s*#include\s+"([^"]+)"', line)
            if m and m.group(1).startswith(FORBIDDEN_INCLUDE_PREFIXES):
                findings.append(
                    Finding(
                        "api-layering",
                        rel,
                        i,
                        f'src/api/ must not include engine-internal header '
                        f'"{m.group(1)}" — go through engine/engine_factory.h '
                        "or runtime/engine.h",
                    )
                )
    return findings


# --------------------------------------------------------------------------
# Rule: hot-path-alloc

HOT_PATH_FILES = (
    "src/runtime/predicate_kernels.cc",
    "src/runtime/column_buffer.cc",
    "src/runtime/instance_store.cc",
)

# Heap-allocating constructs a hot-path kernel file may not contain.
FORBIDDEN_ALLOC = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc)\s*\("), "malloc-family call"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "make_unique/make_shared"),
    # By-value declaration of a heap-backed container (locals and
    # by-value parameters). References and pointers are fine.
    (
        re.compile(
            r"std::(?:vector|deque|map|unordered_map|set|unordered_set|string"
            r"|function)\s*(?:<[^<>]*(?:<[^<>]*>)?[^<>]*>)?\s+\w+\s*[;={(,)]"
        ),
        "by-value container/string/function object",
    ),
    (
        re.compile(r"\.\s*(?:push_back|emplace_back|emplace|resize|reserve|insert|assign)\s*\("),
        "growing container call",
    ),
]

# Approved allocation sites: (file, compiled regex the *stripped* line
# must match). Each entry documents why the allocation is acceptable.
APPROVED_ALLOC = {
    # Amortized member-column growth: bounded by live buffered rows,
    # reclaimed by front-eviction + compaction; provably <= 1 realloc
    # per doubling, never per event.
    "src/runtime/column_buffer.cc": [
        re.compile(
            r"(?:for \(auto& col : attr_cols_\)\s*)?"
            r"(?:events_|ts_|serials_|partitions_|partition_seqs_"
            r"|attr_cols_(?:\[a\])?|attr_ptrs_|col)\s*\.\s*"
            r"(?:push_back|resize)\s*\("
        ),
    ],
    # Same amortized-column argument for the instance-store extent
    # mirrors; Configure() runs once per tree node at plan build time
    # (setup path), so its by-value parameter and resize are fine.
    "src/runtime/instance_store.cc": [
        re.compile(
            r"(?:min_ts_|max_ts_|buffers_)\s*\.\s*(?:push_back|resize)\s*\("
        ),
        re.compile(r"void\s+InstanceStore::Configure\s*\(\s*std::vector<"),
        re.compile(r"std::vector<InstanceStoreColumn>\s+columns\s*[;)]"),
    ],
    # predicate_kernels.cc: nothing — the span evaluators must stay
    # allocation-free end to end.
    "src/runtime/predicate_kernels.cc": [],
}


def check_hot_path_alloc(root):
    findings = []
    for rel in HOT_PATH_FILES:
        text = read(root, rel)
        if text is None:
            findings.append(Finding("hot-path-alloc", rel, 0, "missing file"))
            continue
        approved = APPROVED_ALLOC.get(rel, [])
        for i, line in enumerate(strip_comments(text).splitlines(), 1):
            for pattern, what in FORBIDDEN_ALLOC:
                if not pattern.search(line):
                    continue
                if any(a.search(line) for a in approved):
                    continue
                findings.append(
                    Finding(
                        "hot-path-alloc",
                        rel,
                        i,
                        f"{what} in hot-path kernel file (not on the approved "
                        f"list): {line.strip()}",
                    )
                )
                break  # one finding per line is enough
    return findings


# --------------------------------------------------------------------------
# Rule: raw-mutex

MUTEX_HEADER = "src/common/mutex.h"
RAW_MUTEX = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable"
    r"(?:_any)?|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)


def check_raw_mutex(root):
    findings = []
    src = Path(root) / "src"
    if not src.is_dir():
        return [Finding("raw-mutex", "src", 0, "missing directory")]
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root)
        if str(rel).replace("\\", "/") == MUTEX_HEADER:
            continue  # the wrapper itself owns the std types
        stripped = strip_comments(path.read_text(encoding="utf-8"))
        for i, line in enumerate(stripped.splitlines(), 1):
            m = RAW_MUTEX.search(line)
            if m:
                findings.append(
                    Finding(
                        "raw-mutex",
                        rel,
                        i,
                        f"raw {m.group(0)} — use the annotated cepjoin::Mutex/"
                        "MutexLock/CondVar (common/mutex.h) so clang "
                        "-Wthread-safety can check the lock protocol",
                    )
                )
    return findings


# --------------------------------------------------------------------------
# Rule: required-guards

# (file, field, mutex): the field's declaration must carry
# CEPJOIN_GUARDED_BY(mutex). The clang -Wthread-safety build checks that
# *annotated* fields are accessed under their lock; it cannot object to a
# deleted annotation, so this table makes each one load-bearing.
REQUIRED_GUARDS = [
    ("src/parallel/bounded_queue.h", "items_", "mu_"),
    ("src/parallel/bounded_queue.h", "closed_", "mu_"),
    ("src/obs/metrics.h", "entries_", "mu_"),
    ("src/obs/metrics.h", "index_", "mu_"),
]


def check_required_guards(root):
    findings = []
    for rel, field, mutex in REQUIRED_GUARDS:
        text = read(root, rel)
        if text is None:
            findings.append(Finding("required-guards", rel, 0, "missing file"))
            continue
        flat = re.sub(r"\s+", " ", strip_comments(text))
        if not re.search(
            rf"\b{field}\b\s*CEPJOIN_GUARDED_BY\s*\(\s*{mutex}\s*\)", flat
        ):
            findings.append(
                Finding(
                    "required-guards",
                    rel,
                    0,
                    f"field '{field}' must be annotated "
                    f"CEPJOIN_GUARDED_BY({mutex}) — deleting the annotation "
                    "silently disables the compile-time lock check",
                )
            )
    return findings


# --------------------------------------------------------------------------
# Rule: codec-manifest

CODEC_FILE = "src/durable/snapshot_codec.cc"

# Class name -> (header declaring it, declaration keyword). The manifest
# block must carry a `serialized` list for each; engines also carry a
# `rebuilt` list. `counters_` lives in the Engine base class
# (src/runtime/engine.h), so base members count as declared too.
CODEC_CLASSES = {
    "EngineCounters": ("src/runtime/engine.h", "struct"),
    "NfaEngine": ("src/nfa/nfa_engine.h", "class"),
    "TreeEngine": ("src/tree/tree_engine.h", "class"),
}
ENGINE_BASE_HEADER = "src/runtime/engine.h"


def parse_codec_manifest(text):
    """Returns {(class, side): [names]} from the CODEC MANIFEST comment
    block, or None if the block is missing. A list entry starts at a
    `codec-manifest: <Class> <side> = ...` line and continues over
    indented comment lines containing only identifiers."""
    m = re.search(r"=====\s*CODEC MANIFEST\s*=+(.*?)\n//\s*=====", text, re.S)
    if m is None:
        return None
    entries = {}
    current = None
    for raw in m.group(1).splitlines():
        line = re.sub(r"^\s*//", "", raw)
        head = re.match(
            r"\s*codec-manifest:\s*(\w+)\s+(serialized|rebuilt)\s*=\s*(.*)",
            line,
        )
        if head:
            current = (head.group(1), head.group(2))
            entries[current] = re.findall(r"\w+", head.group(3))
        elif current and line.strip() and re.fullmatch(r"[\w\s]+", line):
            entries[current].extend(re.findall(r"\w+", line))
        else:
            current = None
    return entries


def _strip_nested_braces(body):
    """Drops every brace-enclosed region (nested structs, inline method
    bodies, brace initializers), leaving only class-scope declarations."""
    out = []
    depth = 0
    for ch in body:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        elif depth == 0:
            out.append(ch)
    return "".join(out)


def _class_members(root, rel, kind, name):
    text = read(root, rel)
    if text is None:
        return None
    body = body_of(strip_comments(text), rf"{kind}\s+{name}\b[^;{{]*")
    if body is None:
        return None
    top = _strip_nested_braces(body)
    if name == "EngineCounters":
        return re.findall(r"(?:uint64_t|size_t)\s+(\w+)\s*=", top)
    return re.findall(r"\b([A-Za-z]\w*_)\s*(?:=[^;]*)?;", top)


def check_codec_manifest(root):
    findings = []
    codec = read(root, CODEC_FILE)
    if codec is None:
        return [Finding("codec-manifest", CODEC_FILE, 0, "missing file")]
    manifest = parse_codec_manifest(codec)
    if manifest is None:
        return [
            Finding(
                "codec-manifest",
                CODEC_FILE,
                0,
                "CODEC MANIFEST block not found — the serialized/rebuilt "
                "member lists are the checkpoint format's change detector",
            )
        ]
    base_members = set(
        _class_members(root, ENGINE_BASE_HEADER, "class", "Engine") or []
    )
    for cls, (rel, kind) in CODEC_CLASSES.items():
        serialized = manifest.get((cls, "serialized"))
        if serialized is None:
            findings.append(
                Finding(
                    "codec-manifest",
                    CODEC_FILE,
                    0,
                    f"manifest has no 'serialized' list for {cls}",
                )
            )
            continue
        rebuilt = manifest.get((cls, "rebuilt"), [])
        listed = serialized + rebuilt
        members = _class_members(root, rel, kind, cls)
        if members is None:
            findings.append(
                Finding(
                    "codec-manifest", rel, 0, f"{kind} {cls} not found"
                )
            )
            continue
        for member in members:
            count = listed.count(member)
            if count == 0:
                findings.append(
                    Finding(
                        "codec-manifest",
                        rel,
                        0,
                        f"member '{member}' of {cls} is on neither side of "
                        f"the codec manifest ({CODEC_FILE}) — declare it "
                        "serialized (and encode it, bumping "
                        "kEngineStateFormatVersion) or rebuilt, else it is "
                        "silently absent from checkpoints",
                    )
                )
            elif count > 1:
                findings.append(
                    Finding(
                        "codec-manifest",
                        CODEC_FILE,
                        0,
                        f"'{member}' of {cls} appears {count} times across "
                        "the manifest lists — it must be on exactly one side",
                    )
                )
        declared = set(members) | base_members
        for name in listed:
            if name not in declared:
                findings.append(
                    Finding(
                        "codec-manifest",
                        CODEC_FILE,
                        0,
                        f"manifest lists '{name}' for {cls} but no such "
                        f"member exists in {rel} — remove the stale entry",
                    )
                )
    return findings


# --------------------------------------------------------------------------

ALL_RULES = [
    ("engine-counters-merge", check_engine_counters),
    ("metric-names-readme", check_metric_names),
    ("api-layering", check_api_layering),
    ("hot-path-alloc", check_hot_path_alloc),
    ("raw-mutex", check_raw_mutex),
    ("required-guards", check_required_guards),
    ("codec-manifest", check_codec_manifest),
]


def run_all(root):
    findings = []
    for _, rule in ALL_RULES:
        findings.extend(rule(root))
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent),
        help="repository root (default: the checkout containing this script)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        choices=[name for name, _ in ALL_RULES],
        help="run only the named rule (repeatable; default: all)",
    )
    args = parser.parse_args(argv)

    selected = [
        (name, fn)
        for name, fn in ALL_RULES
        if args.rule is None or name in args.rule
    ]
    findings = []
    for _, fn in selected:
        findings.extend(fn(args.root))
    for finding in findings:
        print(finding)
    if findings:
        print(f"cep_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"cep_lint: OK ({len(selected)} rule(s), no findings)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
