#include "pattern/parser.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace cepjoin {

namespace {

enum class TokenKind { kIdent, kNumber, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Advance(); }

  const Token& current() const { return current_; }

  void Advance() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_]))) {
      ++pos_;
    }
    current_ = Token();
    current_.offset = pos_;
    if (pos_ >= text_.size()) {
      current_.kind = TokenKind::kEnd;
      return;
    }
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '-')) {
        ++pos_;
      }
      current_.kind = TokenKind::kIdent;
      current_.text = text_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      size_t start = pos_;
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E' ||
              ((text_[pos_] == '+' || text_[pos_] == '-') &&
               (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
        ++pos_;
      }
      current_.kind = TokenKind::kNumber;
      current_.text = text_.substr(start, pos_ - start);
      current_.number = std::atof(current_.text.c_str());
      return;
    }
    // Multi-character comparison symbols.
    static const char* kTwoChar[] = {"<=", ">=", "==", "!="};
    for (const char* symbol : kTwoChar) {
      if (text_.compare(pos_, 2, symbol) == 0) {
        current_.kind = TokenKind::kSymbol;
        current_.text = symbol;
        pos_ += 2;
        return;
      }
    }
    current_.kind = TokenKind::kSymbol;
    current_.text = std::string(1, c);
    ++pos_;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  Token current_;
};

// Case-insensitive keyword comparison (the paper capitalizes keywords but
// user input should not have to).
bool IsKeyword(const Token& token, const char* keyword) {
  if (token.kind != TokenKind::kIdent) return false;
  if (token.text.size() != std::string(keyword).size()) return false;
  for (size_t i = 0; i < token.text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(token.text[i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<OperatorKind> OperatorKeyword(const Token& token) {
  if (IsKeyword(token, "SEQ")) return OperatorKind::kSeq;
  if (IsKeyword(token, "AND")) return OperatorKind::kAnd;
  if (IsKeyword(token, "OR")) return OperatorKind::kOr;
  return std::nullopt;
}

std::optional<CmpOp> ComparisonSymbol(const Token& token) {
  if (token.kind != TokenKind::kSymbol) return std::nullopt;
  if (token.text == "<") return CmpOp::kLt;
  if (token.text == "<=") return CmpOp::kLe;
  if (token.text == ">") return CmpOp::kGt;
  if (token.text == ">=") return CmpOp::kGe;
  if (token.text == "=" || token.text == "==") return CmpOp::kEq;
  if (token.text == "!=") return CmpOp::kNe;
  return std::nullopt;
}

class Parser {
 public:
  Parser(const std::string& text, const EventTypeRegistry& registry)
      : lexer_(text), registry_(registry) {}

  ParseResult Run() {
    ParseResult result;
    if (!Expect("PATTERN")) return Fail(std::move(result));
    result.pattern.root = ParseNode();
    if (failed_) return Fail(std::move(result));
    if (IsKeyword(lexer_.current(), "WHERE")) {
      lexer_.Advance();
      ParseConditions(&result.pattern);
      if (failed_) return Fail(std::move(result));
    }
    if (!Expect("WITHIN")) return Fail(std::move(result));
    result.pattern.window = ParseDuration();
    if (failed_) return Fail(std::move(result));
    if (IsKeyword(lexer_.current(), "STRATEGY")) {
      lexer_.Advance();
      result.pattern.strategy = ParseStrategy();
      if (failed_) return Fail(std::move(result));
    }
    if (lexer_.current().kind != TokenKind::kEnd) {
      Error("unexpected trailing input");
      return Fail(std::move(result));
    }
    result.ok = true;
    return result;
  }

 private:
  ParseResult Fail(ParseResult result) {
    result.ok = false;
    result.error = error_;
    result.error_offset = error_offset_;
    return result;
  }

  void Error(const std::string& message) {
    if (failed_) return;
    failed_ = true;
    error_ = message;
    error_offset_ = lexer_.current().offset;
  }

  bool Expect(const char* keyword) {
    if (!IsKeyword(lexer_.current(), keyword)) {
      Error(std::string("expected '") + keyword + "'");
      return false;
    }
    lexer_.Advance();
    return true;
  }

  bool ExpectSymbol(const char* symbol) {
    if (lexer_.current().kind != TokenKind::kSymbol ||
        lexer_.current().text != symbol) {
      Error(std::string("expected '") + symbol + "'");
      return false;
    }
    lexer_.Advance();
    return true;
  }

  // node := OP "(" node ("," node)* ")" | [NOT|KL "("] Type name [")"]
  std::shared_ptr<const PatternNode> ParseNode() {
    if (failed_) return nullptr;
    std::optional<OperatorKind> op = OperatorKeyword(lexer_.current());
    if (op.has_value()) {
      lexer_.Advance();
      if (!ExpectSymbol("(")) return nullptr;
      std::vector<std::shared_ptr<const PatternNode>> children;
      while (true) {
        auto child = ParseNode();
        if (failed_) return nullptr;
        children.push_back(std::move(child));
        if (lexer_.current().kind == TokenKind::kSymbol &&
            lexer_.current().text == ",") {
          lexer_.Advance();
          continue;
        }
        break;
      }
      if (!ExpectSymbol(")")) return nullptr;
      return PatternNode::Op(*op, std::move(children));
    }
    bool negated = false;
    bool kleene = false;
    if (IsKeyword(lexer_.current(), "NOT")) {
      negated = true;
      lexer_.Advance();
    } else if (IsKeyword(lexer_.current(), "KL")) {
      kleene = true;
      lexer_.Advance();
    }
    bool wrapped = negated || kleene;
    if (wrapped && !ExpectSymbol("(")) return nullptr;
    EventSpec spec = ParseEventSpec(negated, kleene);
    if (failed_) return nullptr;
    if (wrapped && !ExpectSymbol(")")) return nullptr;
    return PatternNode::Leaf(std::move(spec));
  }

  EventSpec ParseEventSpec(bool negated, bool kleene) {
    EventSpec spec;
    spec.negated = negated;
    spec.kleene = kleene;
    if (lexer_.current().kind != TokenKind::kIdent) {
      Error("expected an event type name");
      return spec;
    }
    spec.type = registry_.Find(lexer_.current().text);
    if (spec.type == kInvalidTypeId) {
      Error("unknown event type '" + lexer_.current().text + "'");
      return spec;
    }
    lexer_.Advance();
    if (lexer_.current().kind != TokenKind::kIdent) {
      Error("expected an event variable name");
      return spec;
    }
    spec.name = lexer_.current().text;
    if (!names_.emplace(spec.name, spec.type).second) {
      Error("duplicate event name '" + spec.name + "'");
      return spec;
    }
    lexer_.Advance();
    return spec;
  }

  struct Operand {
    bool is_attr = false;
    std::string name;   // event variable
    std::string attr;   // attribute name
    double constant = 0.0;
  };

  Operand ParseOperand() {
    Operand operand;
    if (lexer_.current().kind == TokenKind::kNumber) {
      operand.constant = lexer_.current().number;
      lexer_.Advance();
      return operand;
    }
    if (lexer_.current().kind != TokenKind::kIdent) {
      Error("expected 'name.attribute' or a number");
      return operand;
    }
    operand.is_attr = true;
    operand.name = lexer_.current().text;
    if (names_.find(operand.name) == names_.end()) {
      Error("condition references undeclared event '" + operand.name + "'");
      return operand;
    }
    lexer_.Advance();
    if (!ExpectSymbol(".")) return operand;
    if (lexer_.current().kind != TokenKind::kIdent) {
      Error("expected an attribute name after '.'");
      return operand;
    }
    operand.attr = lexer_.current().text;
    lexer_.Advance();
    return operand;
  }

  // Resolves the attribute index or errors out.
  std::optional<AttrId> ResolveAttr(const Operand& operand) {
    TypeId type = names_[operand.name];
    const EventTypeInfo& info = registry_.Info(type);
    for (size_t i = 0; i < info.attribute_names.size(); ++i) {
      if (info.attribute_names[i] == operand.attr) {
        return static_cast<AttrId>(i);
      }
    }
    Error("type '" + info.name + "' has no attribute '" + operand.attr + "'");
    return std::nullopt;
  }

  void ParseConditions(NestedPattern* pattern) {
    while (true) {
      Operand left = ParseOperand();
      if (failed_) return;
      std::optional<CmpOp> op = ComparisonSymbol(lexer_.current());
      if (!op.has_value()) {
        Error("expected a comparison operator");
        return;
      }
      lexer_.Advance();
      Operand right = ParseOperand();
      if (failed_) return;
      if (!EmitCondition(pattern, left, *op, right)) return;
      if (IsKeyword(lexer_.current(), "AND")) {
        lexer_.Advance();
        continue;
      }
      break;
    }
  }

  bool EmitCondition(NestedPattern* pattern, const Operand& left, CmpOp op,
                     const Operand& right) {
    if (left.is_attr && right.is_attr) {
      std::optional<AttrId> la = ResolveAttr(left);
      std::optional<AttrId> ra = ResolveAttr(right);
      if (!la || !ra) return false;
      pattern->conditions.push_back(NamedCondition{
          left.name, right.name, [la = *la, op, ra = *ra](int l, int r) {
            return std::make_shared<AttrCompare>(l, la, op, r, ra);
          }});
      return true;
    }
    if (left.is_attr && !right.is_attr) {
      std::optional<AttrId> la = ResolveAttr(left);
      if (!la) return false;
      double constant = right.constant;
      pattern->conditions.push_back(NamedCondition{
          left.name, left.name, [la = *la, op, constant](int l, int) {
            return std::make_shared<AttrThreshold>(l, la, op, constant);
          }});
      return true;
    }
    if (!left.is_attr && right.is_attr) {
      // Mirror `5 < a.x` into `a.x > 5`.
      CmpOp mirrored = op;
      switch (op) {
        case CmpOp::kLt:
          mirrored = CmpOp::kGt;
          break;
        case CmpOp::kLe:
          mirrored = CmpOp::kGe;
          break;
        case CmpOp::kGt:
          mirrored = CmpOp::kLt;
          break;
        case CmpOp::kGe:
          mirrored = CmpOp::kLe;
          break;
        default:
          break;
      }
      return EmitCondition(pattern, right, mirrored, left);
    }
    Error("conditions between two constants are not allowed");
    return false;
  }

  double ParseDuration() {
    if (lexer_.current().kind != TokenKind::kNumber) {
      Error("expected a window duration");
      return 0.0;
    }
    double value = lexer_.current().number;
    lexer_.Advance();
    const Token& unit = lexer_.current();
    double scale = 1.0;
    if (unit.kind == TokenKind::kIdent) {
      if (IsKeyword(unit, "ms")) {
        scale = 1e-3;
      } else if (IsKeyword(unit, "s") || IsKeyword(unit, "sec") ||
                 IsKeyword(unit, "second") || IsKeyword(unit, "seconds")) {
        scale = 1.0;
      } else if (IsKeyword(unit, "min") || IsKeyword(unit, "minute") ||
                 IsKeyword(unit, "minutes")) {
        scale = 60.0;
      } else if (IsKeyword(unit, "h") || IsKeyword(unit, "hour") ||
                 IsKeyword(unit, "hours")) {
        scale = 3600.0;
      } else if (IsKeyword(unit, "STRATEGY")) {
        return value;  // no unit; STRATEGY clause follows
      } else {
        Error("unknown time unit '" + unit.text + "'");
        return 0.0;
      }
      lexer_.Advance();
    }
    if (value * scale <= 0.0) {
      Error("window must be positive");
      return 0.0;
    }
    return value * scale;
  }

  SelectionStrategy ParseStrategy() {
    const Token& token = lexer_.current();
    SelectionStrategy strategy = SelectionStrategy::kSkipTillAny;
    if (IsKeyword(token, "skip-till-any-match")) {
      strategy = SelectionStrategy::kSkipTillAny;
    } else if (IsKeyword(token, "skip-till-next-match")) {
      strategy = SelectionStrategy::kSkipTillNext;
    } else if (IsKeyword(token, "strict-contiguity")) {
      strategy = SelectionStrategy::kStrictContiguity;
    } else if (IsKeyword(token, "partition-contiguity")) {
      strategy = SelectionStrategy::kPartitionContiguity;
    } else {
      Error("unknown selection strategy '" + token.text + "'");
      return strategy;
    }
    lexer_.Advance();
    return strategy;
  }

  Lexer lexer_;
  const EventTypeRegistry& registry_;
  std::unordered_map<std::string, TypeId> names_;
  bool failed_ = false;
  std::string error_;
  size_t error_offset_ = 0;
};

}  // namespace

ParseResult ParsePattern(const std::string& text,
                         const EventTypeRegistry& registry) {
  return Parser(text, registry).Run();
}

SimplePattern MustParseSimple(const std::string& text,
                              const EventTypeRegistry& registry) {
  ParseResult result = ParsePattern(text, registry);
  CEPJOIN_CHECK(result.ok) << "parse error at offset " << result.error_offset
                           << ": " << result.error;
  std::vector<SimplePattern> dnf = ToDnf(result.pattern);
  CEPJOIN_CHECK_EQ(dnf.size(), 1u)
      << "pattern decomposes into " << dnf.size()
      << " alternatives; use ParsePattern + ToDnf directly";
  return dnf[0];
}

}  // namespace cepjoin
