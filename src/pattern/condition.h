#ifndef CEPJOIN_PATTERN_CONDITION_H_
#define CEPJOIN_PATTERN_CONDITION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "event/event.h"

namespace cepjoin {

/// Comparison operators for attribute conditions.
enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

const char* CmpOpName(CmpOp op);

/// IEEE comparison class of (lhs, rhs) as a one-hot nibble:
/// 1 = less, 2 = equal, 4 = greater, 8 = unordered (NaN operand).
inline unsigned CmpClass(double lhs, double rhs) {
  unsigned cls = (lhs < rhs ? 1u : 0u) | (lhs == rhs ? 2u : 0u) |
                 (lhs > rhs ? 4u : 0u);
  return cls != 0 ? cls : 8u;
}

/// The comparison classes a CmpOp accepts (IEEE semantics: only kNe is
/// true on NaN).
inline unsigned CmpMask(CmpOp op) {
  constexpr unsigned kMasks[6] = {/*kLt*/ 1u, /*kLe*/ 3u,  /*kGt*/ 4u,
                                  /*kGe*/ 6u, /*kEq*/ 2u, /*kNe*/ 13u};
  return kMasks[static_cast<int>(op)];
}

/// Inline and branchless: this sits on the innermost predicate loop of
/// both the virtual Condition::Eval path and the compiled predicate
/// interpreter, where a data-dependent `op` makes a switch's indirect
/// jump mispredict. The class/mask split keeps everything in registers
/// (no jump table, no stack-materialized lookup) and lets the compiled
/// program pre-resolve CmpMask at lowering time.
inline bool CmpApply(CmpOp op, double lhs, double rhs) {
  return (CmpMask(op) & CmpClass(lhs, rhs)) != 0;
}

/// A (at most pairwise) predicate between two pattern positions.
///
/// `left()` and `right()` are indices into the pattern's event list; a
/// condition with left() == right() is a unary filter. Engines evaluate
/// conditions as soon as both endpoints are bound (lazy-NFA style), so
/// Eval must be pure.
class Condition {
 public:
  Condition(int left, int right) : left_(left), right_(right) {}
  virtual ~Condition() = default;

  int left() const { return left_; }
  int right() const { return right_; }
  bool unary() const { return left_ == right_; }

  /// Evaluates the condition with `l` bound to position left() and `r`
  /// bound to position right(). For unary conditions both are the event.
  virtual bool Eval(const Event& l, const Event& r) const = 0;

  virtual std::string Describe() const = 0;

  /// Analytic selectivity if known a priori, NaN if it must be measured
  /// from data by the statistics collector.
  virtual double DeclaredSelectivity() const;

 private:
  int left_;
  int right_;
};

using ConditionPtr = std::shared_ptr<const Condition>;

/// left.attr OP right.attr + offset  (binary attribute comparison).
class AttrCompare final : public Condition {
 public:
  AttrCompare(int left, AttrId left_attr, CmpOp op, int right, AttrId right_attr,
              double offset = 0.0)
      : Condition(left, right),
        left_attr_(left_attr),
        right_attr_(right_attr),
        op_(op),
        offset_(offset) {}

  bool Eval(const Event& l, const Event& r) const override {
    return CmpApply(op_, l.Attr(left_attr_), r.Attr(right_attr_) + offset_);
  }
  std::string Describe() const override;

  AttrId left_attr() const { return left_attr_; }
  AttrId right_attr() const { return right_attr_; }
  CmpOp op() const { return op_; }
  double offset() const { return offset_; }

 private:
  AttrId left_attr_;
  AttrId right_attr_;
  CmpOp op_;
  double offset_;
};

/// event.attr OP constant  (unary filter).
class AttrThreshold final : public Condition {
 public:
  AttrThreshold(int pos, AttrId attr, CmpOp op, double constant)
      : Condition(pos, pos), attr_(attr), op_(op), constant_(constant) {}

  bool Eval(const Event& l, const Event&) const override {
    return CmpApply(op_, l.Attr(attr_), constant_);
  }
  std::string Describe() const override;

  AttrId attr() const { return attr_; }
  CmpOp op() const { return op_; }
  double constant() const { return constant_; }

 private:
  AttrId attr_;
  CmpOp op_;
  double constant_;
};

/// left.ts < right.ts — the temporal-order predicate the SEQ→AND rewrite
/// introduces (Theorem 3). Declared selectivity 1/2 under the standard
/// independence assumption.
class TsOrder final : public Condition {
 public:
  TsOrder(int left, int right) : Condition(left, right) {}

  bool Eval(const Event& l, const Event& r) const override {
    return l.ts < r.ts;
  }
  std::string Describe() const override;
  double DeclaredSelectivity() const override { return 0.5; }
};

/// right immediately follows left in the stream (strict contiguity,
/// Sec. 6.2). The planner supplies the declared selectivity because it
/// depends on the total stream rate, which the condition cannot know.
class SerialAdjacent final : public Condition {
 public:
  SerialAdjacent(int left, int right, double declared_selectivity)
      : Condition(left, right), declared_selectivity_(declared_selectivity) {}

  bool Eval(const Event& l, const Event& r) const override {
    return r.serial == l.serial + 1;
  }
  std::string Describe() const override;
  double DeclaredSelectivity() const override {
    return declared_selectivity_;
  }

 private:
  double declared_selectivity_;
};

/// Partition contiguity (Sec. 6.2): if the two events share a partition,
/// their per-partition sequence numbers must be adjacent; events from
/// different partitions are unconstrained.
class PartitionAdjacent final : public Condition {
 public:
  PartitionAdjacent(int left, int right, double declared_selectivity)
      : Condition(left, right), declared_selectivity_(declared_selectivity) {}

  bool Eval(const Event& l, const Event& r) const override {
    return l.partition != r.partition || r.partition_seq == l.partition_seq + 1;
  }
  std::string Describe() const override;
  double DeclaredSelectivity() const override {
    return declared_selectivity_;
  }

 private:
  double declared_selectivity_;
};

/// Escape hatch for arbitrary user predicates. The user must declare the
/// selectivity (or leave NaN to have it measured).
class CustomCondition final : public Condition {
 public:
  using Fn = std::function<bool(const Event&, const Event&)>;
  CustomCondition(int left, int right, Fn fn, double declared_selectivity,
                  std::string description)
      : Condition(left, right),
        fn_(std::move(fn)),
        declared_selectivity_(declared_selectivity),
        description_(std::move(description)) {}

  bool Eval(const Event& l, const Event& r) const override { return fn_(l, r); }
  std::string Describe() const override { return description_; }
  double DeclaredSelectivity() const override {
    return declared_selectivity_;
  }

 private:
  Fn fn_;
  double declared_selectivity_;
  std::string description_;
};

/// Conditions of one pattern bucketed by (position, position) pair for O(1)
/// lookup during evaluation. Pairs are normalized to (min, max); EvalPair
/// passes the events in the orientation each condition expects.
class ConditionSet {
 public:
  ConditionSet() : n_(0) {}
  ConditionSet(int num_positions, const std::vector<ConditionPtr>& conditions);

  /// All conditions between positions i and j (i != j), in either
  /// orientation.
  const std::vector<ConditionPtr>& Between(int i, int j) const;
  /// All unary conditions on position i.
  const std::vector<ConditionPtr>& UnaryAt(int i) const;

  /// True iff every condition between i and j accepts (ei at i, ej at j).
  bool EvalPair(int i, int j, const Event& ei, const Event& ej) const;
  /// True iff every unary condition on i accepts e.
  bool EvalUnary(int i, const Event& e) const;

  int num_positions() const { return n_; }

 private:
  int n_;
  // buckets_[i * n_ + j] for i < j; unary_[i] for the diagonal.
  std::vector<std::vector<ConditionPtr>> buckets_;
  std::vector<std::vector<ConditionPtr>> unary_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PATTERN_CONDITION_H_
