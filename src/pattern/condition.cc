#include "pattern/condition.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace cepjoin {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

double Condition::DeclaredSelectivity() const {
  return std::numeric_limits<double>::quiet_NaN();
}

std::string AttrCompare::Describe() const {
  std::ostringstream os;
  os << "e" << left() << ".a" << left_attr_ << " " << CmpOpName(op_) << " e"
     << right() << ".a" << right_attr_;
  if (offset_ != 0.0) os << " + " << offset_;
  return os.str();
}

std::string AttrThreshold::Describe() const {
  std::ostringstream os;
  os << "e" << left() << ".a" << attr_ << " " << CmpOpName(op_) << " "
     << constant_;
  return os.str();
}

std::string TsOrder::Describe() const {
  std::ostringstream os;
  os << "e" << left() << ".ts < e" << right() << ".ts";
  return os.str();
}

std::string SerialAdjacent::Describe() const {
  std::ostringstream os;
  os << "e" << right() << ".serial == e" << left() << ".serial + 1";
  return os.str();
}

std::string PartitionAdjacent::Describe() const {
  std::ostringstream os;
  os << "partition-contiguous(e" << left() << ", e" << right() << ")";
  return os.str();
}

ConditionSet::ConditionSet(int num_positions,
                           const std::vector<ConditionPtr>& conditions)
    : n_(num_positions),
      buckets_(static_cast<size_t>(num_positions) * num_positions),
      unary_(num_positions) {
  for (const ConditionPtr& c : conditions) {
    CEPJOIN_CHECK(c != nullptr);
    CEPJOIN_CHECK(c->left() >= 0 && c->left() < n_ && c->right() >= 0 &&
                  c->right() < n_)
        << "condition references position outside the pattern: "
        << c->Describe();
    if (c->unary()) {
      unary_[c->left()].push_back(c);
    } else {
      int lo = std::min(c->left(), c->right());
      int hi = std::max(c->left(), c->right());
      buckets_[static_cast<size_t>(lo) * n_ + hi].push_back(c);
    }
  }
}

const std::vector<ConditionPtr>& ConditionSet::Between(int i, int j) const {
  CEPJOIN_CHECK(i != j);
  int lo = std::min(i, j);
  int hi = std::max(i, j);
  return buckets_[static_cast<size_t>(lo) * n_ + hi];
}

const std::vector<ConditionPtr>& ConditionSet::UnaryAt(int i) const {
  return unary_[i];
}

bool ConditionSet::EvalPair(int i, int j, const Event& ei,
                            const Event& ej) const {
  for (const ConditionPtr& c : Between(i, j)) {
    const Event& l = (c->left() == i) ? ei : ej;
    const Event& r = (c->left() == i) ? ej : ei;
    if (!c->Eval(l, r)) return false;
  }
  return true;
}

bool ConditionSet::EvalUnary(int i, const Event& e) const {
  for (const ConditionPtr& c : unary_[i]) {
    if (!c->Eval(e, e)) return false;
  }
  return true;
}

}  // namespace cepjoin
