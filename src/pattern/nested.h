#ifndef CEPJOIN_PATTERN_NESTED_H_
#define CEPJOIN_PATTERN_NESTED_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pattern/pattern.h"

namespace cepjoin {

/// Node of a nested pattern AST (Sec. 5.4): leaves are event slots, inner
/// nodes apply SEQ / AND / OR to their children. NOT and KL are flags on
/// leaf specs, as in SimplePattern.
class PatternNode {
 public:
  enum class Kind { kLeaf, kOp };

  static std::shared_ptr<const PatternNode> Leaf(EventSpec spec);
  static std::shared_ptr<const PatternNode> Op(
      OperatorKind op,
      std::vector<std::shared_ptr<const PatternNode>> children);

  Kind kind() const { return kind_; }
  const EventSpec& spec() const { return spec_; }
  OperatorKind op() const { return op_; }
  const std::vector<std::shared_ptr<const PatternNode>>& children() const {
    return children_;
  }

 private:
  PatternNode() = default;
  Kind kind_ = Kind::kLeaf;
  EventSpec spec_;
  OperatorKind op_ = OperatorKind::kAnd;
  std::vector<std::shared_ptr<const PatternNode>> children_;
};

/// A condition over named events of a nested pattern. Positions are only
/// defined per DNF alternative, so the condition is materialized by `make`
/// once the names are resolved to positions within an alternative.
struct NamedCondition {
  std::string left_name;
  std::string right_name;  // equal to left_name for unary conditions
  std::function<ConditionPtr(int left_pos, int right_pos)> make;
};

/// Helper producing a NamedCondition for `left.attr OP right.attr + offset`.
NamedCondition MakeNamedAttrCompare(const EventTypeRegistry& registry,
                                    TypeId left_type,
                                    const std::string& left_name,
                                    const std::string& left_attr, CmpOp op,
                                    TypeId right_type,
                                    const std::string& right_name,
                                    const std::string& right_attr,
                                    double offset = 0.0);

/// A nested pattern: arbitrary SEQ/AND/OR composition plus named
/// conditions, a window, and a selection strategy. Detection proceeds by
/// DNF decomposition into simple conjunctive subpatterns (Sec. 5.4), each
/// planned and evaluated independently; results are unioned.
struct NestedPattern {
  std::shared_ptr<const PatternNode> root;
  std::vector<NamedCondition> conditions;
  Timestamp window = 0.0;
  SelectionStrategy strategy = SelectionStrategy::kSkipTillAny;
};

/// Converts a nested pattern into its DNF: a list of simple patterns whose
/// union of matches equals the nested pattern's matches. Alternatives that
/// remain totally temporally ordered (built from SEQ/OR only) come out as
/// SEQ patterns; mixed AND/SEQ alternatives come out as AND patterns with
/// explicit TsOrder conditions.
std::vector<SimplePattern> ToDnf(const NestedPattern& pattern);

}  // namespace cepjoin

#endif  // CEPJOIN_PATTERN_NESTED_H_
