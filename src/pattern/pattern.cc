#include "pattern/pattern.h"

#include <sstream>
#include <utility>

#include "common/check.h"

namespace cepjoin {

const char* OperatorName(OperatorKind op) {
  switch (op) {
    case OperatorKind::kSeq:
      return "SEQ";
    case OperatorKind::kAnd:
      return "AND";
    case OperatorKind::kOr:
      return "OR";
  }
  return "?";
}

const char* SelectionStrategyName(SelectionStrategy s) {
  switch (s) {
    case SelectionStrategy::kSkipTillAny:
      return "skip-till-any-match";
    case SelectionStrategy::kSkipTillNext:
      return "skip-till-next-match";
    case SelectionStrategy::kStrictContiguity:
      return "strict-contiguity";
    case SelectionStrategy::kPartitionContiguity:
      return "partition-contiguity";
  }
  return "?";
}

SimplePattern::SimplePattern(OperatorKind op, std::vector<EventSpec> events,
                             std::vector<ConditionPtr> conditions,
                             Timestamp window, SelectionStrategy strategy)
    : op_(op),
      events_(std::move(events)),
      conditions_(std::move(conditions)),
      window_(window),
      strategy_(strategy) {
  CEPJOIN_CHECK(op_ != OperatorKind::kOr)
      << "OR is only valid in nested patterns; use NestedPattern + ToDnf";
  CEPJOIN_CHECK_GT(window_, 0.0) << "pattern requires a positive time window";
  CEPJOIN_CHECK(!events_.empty());
  for (int i = 0; i < size(); ++i) {
    const EventSpec& spec = events_[i];
    CEPJOIN_CHECK(spec.type != kInvalidTypeId);
    CEPJOIN_CHECK(!(spec.negated && spec.kleene))
        << "a slot cannot be both negated and Kleene-closed";
    if (spec.negated) {
      negated_positions_.push_back(i);
      pure_ = false;
    } else {
      positive_positions_.push_back(i);
    }
    if (spec.kleene) {
      ++kleene_count_;
      pure_ = false;
    }
  }
  CEPJOIN_CHECK(!positive_positions_.empty())
      << "pattern must contain at least one positive event";
  CEPJOIN_CHECK_LE(kleene_count_, 1)
      << "the runtime supports at most one Kleene slot per simple pattern "
         "(the plan-time rewrite of Corollary 4 supports more)";
  // Validate condition position ranges eagerly.
  ConditionSet validate(size(), conditions_);
  (void)validate;
}

SimplePattern SimplePattern::WithStrategy(SelectionStrategy s) const {
  SimplePattern copy(op_, events_, conditions_, window_, s);
  copy.delta_input_ = delta_input_;
  return copy;
}

SimplePattern SimplePattern::WithDeltaInput(bool delta_input) const {
  SimplePattern copy = *this;
  copy.delta_input_ = delta_input;
  return copy;
}

std::string SimplePattern::Describe(const EventTypeRegistry* registry) const {
  std::ostringstream os;
  os << "PATTERN " << OperatorName(op_) << "(";
  for (int i = 0; i < size(); ++i) {
    if (i > 0) os << ", ";
    const EventSpec& spec = events_[i];
    if (spec.negated) os << "NOT ";
    if (spec.kleene) os << "KL ";
    if (registry != nullptr) {
      os << registry->Info(spec.type).name;
    } else {
      os << "T" << spec.type;
    }
    os << " " << spec.name;
  }
  os << ")";
  if (!conditions_.empty()) {
    os << " WHERE (";
    for (size_t i = 0; i < conditions_.size(); ++i) {
      if (i > 0) os << " AND ";
      os << conditions_[i]->Describe();
    }
    os << ")";
  }
  os << " WITHIN " << window_ << "s [" << SelectionStrategyName(strategy_)
     << "]";
  return os.str();
}

PatternBuilder::PatternBuilder(OperatorKind op,
                               const EventTypeRegistry& registry)
    : registry_(registry), op_(op) {}

PatternBuilder& PatternBuilder::Event(const std::string& type,
                                      const std::string& name) {
  events_.push_back(EventSpec{registry_.Require(type), name, false, false});
  return *this;
}

PatternBuilder& PatternBuilder::NegatedEvent(const std::string& type,
                                             const std::string& name) {
  events_.push_back(EventSpec{registry_.Require(type), name, true, false});
  return *this;
}

PatternBuilder& PatternBuilder::KleeneEvent(const std::string& type,
                                            const std::string& name) {
  events_.push_back(EventSpec{registry_.Require(type), name, false, true});
  return *this;
}

int PatternBuilder::PositionOf(const std::string& name) const {
  for (size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].name == name) return static_cast<int>(i);
  }
  CEPJOIN_CHECK(false) << "no event named '" << name << "' in pattern";
}

PatternBuilder& PatternBuilder::Where(const std::string& left_name,
                                      const std::string& left_attr, CmpOp op,
                                      const std::string& right_name,
                                      const std::string& right_attr,
                                      double offset) {
  int l = PositionOf(left_name);
  int r = PositionOf(right_name);
  AttrId la = registry_.RequireAttr(events_[l].type, left_attr);
  AttrId ra = registry_.RequireAttr(events_[r].type, right_attr);
  conditions_.push_back(std::make_shared<AttrCompare>(l, la, op, r, ra, offset));
  return *this;
}

PatternBuilder& PatternBuilder::WhereConst(const std::string& name,
                                           const std::string& attr, CmpOp op,
                                           double constant) {
  int pos = PositionOf(name);
  AttrId a = registry_.RequireAttr(events_[pos].type, attr);
  conditions_.push_back(std::make_shared<AttrThreshold>(pos, a, op, constant));
  return *this;
}

PatternBuilder& PatternBuilder::WhereCondition(ConditionPtr condition) {
  conditions_.push_back(std::move(condition));
  return *this;
}

PatternBuilder& PatternBuilder::Within(Timestamp window) {
  window_ = window;
  return *this;
}

PatternBuilder& PatternBuilder::WithStrategy(SelectionStrategy strategy) {
  strategy_ = strategy;
  return *this;
}

PatternBuilder& PatternBuilder::WithDeltaInput(bool delta_input) {
  delta_input_ = delta_input;
  return *this;
}

SimplePattern PatternBuilder::Build() const {
  return SimplePattern(op_, events_, conditions_, window_, strategy_)
      .WithDeltaInput(delta_input_);
}

}  // namespace cepjoin
