#ifndef CEPJOIN_PATTERN_REWRITE_H_
#define CEPJOIN_PATTERN_REWRITE_H_

#include "pattern/pattern.h"

namespace cepjoin {

/// Theorem 3: rewrites a SEQ pattern into an equivalent AND pattern by
/// adding explicit timestamp-order predicates. We add TsOrder for *all*
/// position pairs (the transitive closure of the paper's consecutive
/// constraints) — semantically identical, but it lets engines prune
/// partial matches holding non-adjacent slots and gives the cost model a
/// selectivity entry for every pair the runtime actually checks.
///
/// AND patterns are returned unchanged. The rewrite also covers pairs
/// involving negated slots: those TsOrder predicates are exactly the
/// temporal guards the negation check evaluates.
SimplePattern SeqToAnd(const SimplePattern& pattern);

/// Sec. 6.2: materializes the contiguity requirement of the pattern's
/// selection strategy as explicit conditions between consecutive positive
/// positions — SerialAdjacent for strict contiguity, PartitionAdjacent for
/// partition contiguity. `adjacency_selectivity` is the planner's estimate
/// for one adjacency predicate (≈ 1 / (W · total stream rate) for strict).
/// Patterns with other strategies are returned unchanged.
SimplePattern AddContiguityConditions(const SimplePattern& pattern,
                                      double adjacency_selectivity);

/// The full plan-time normalization used by the statistics collector and
/// the engines: SEQ→AND rewrite plus contiguity materialization. The
/// result is always an AND pattern whose condition set describes every
/// constraint the runtime enforces between event pairs.
SimplePattern RewriteForPlanning(const SimplePattern& pattern,
                                 double adjacency_selectivity);

}  // namespace cepjoin

#endif  // CEPJOIN_PATTERN_REWRITE_H_
