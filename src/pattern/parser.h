#ifndef CEPJOIN_PATTERN_PARSER_H_
#define CEPJOIN_PATTERN_PARSER_H_

#include <string>
#include <vector>

#include "pattern/nested.h"
#include "pattern/pattern.h"

namespace cepjoin {

/// Result of parsing a pattern specification. On failure, `error`
/// describes the problem and its input offset.
struct ParseResult {
  bool ok = false;
  std::string error;
  size_t error_offset = 0;
  NestedPattern pattern;
};

/// Parses the SASE-style declarative pattern syntax the paper uses
/// (Sec. 2.1):
///
///   PATTERN SEQ(A a, NOT(B b), KL(C c), OR(D d, E e))
///   WHERE a.price < c.price AND c.price >= 10.5
///   WITHIN 20 minutes
///   [STRATEGY skip-till-next-match]
///
/// * Operators SEQ / AND / OR nest arbitrarily; NOT(...) and KL(...) wrap
///   a single event.
/// * WHERE takes a conjunction of comparisons between `name.attribute`
///   operands and/or numeric literals (unary filters). Operators:
///   < <= > >= = == !=.
/// * WITHIN accepts seconds by default, with optional units
///   ms / s / sec / seconds / min / minutes / h / hours.
/// * STRATEGY is optional: skip-till-any-match (default),
///   skip-till-next-match, strict-contiguity, partition-contiguity.
///
/// Event types and attributes are resolved against `registry`; unknown
/// names are parse errors. The result is a NestedPattern — run ToDnf to
/// obtain executable SimplePatterns.
ParseResult ParsePattern(const std::string& text,
                         const EventTypeRegistry& registry);

/// Convenience wrapper for non-nested specifications: parses and converts
/// to a single SimplePattern; aborts (CHECK) on parse errors or if the
/// pattern decomposes into multiple alternatives. Intended for tests and
/// examples where the input is a string literal.
SimplePattern MustParseSimple(const std::string& text,
                              const EventTypeRegistry& registry);

}  // namespace cepjoin

#endif  // CEPJOIN_PATTERN_PARSER_H_
