#include "pattern/nested.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.h"

namespace cepjoin {

std::shared_ptr<const PatternNode> PatternNode::Leaf(EventSpec spec) {
  auto node = std::shared_ptr<PatternNode>(new PatternNode());
  node->kind_ = Kind::kLeaf;
  node->spec_ = std::move(spec);
  return node;
}

std::shared_ptr<const PatternNode> PatternNode::Op(
    OperatorKind op,
    std::vector<std::shared_ptr<const PatternNode>> children) {
  CEPJOIN_CHECK(!children.empty());
  auto node = std::shared_ptr<PatternNode>(new PatternNode());
  node->kind_ = Kind::kOp;
  node->op_ = op;
  node->children_ = std::move(children);
  return node;
}

NamedCondition MakeNamedAttrCompare(
    const EventTypeRegistry& registry, TypeId left_type,
    const std::string& left_name, const std::string& left_attr, CmpOp op,
    TypeId right_type, const std::string& right_name,
    const std::string& right_attr, double offset) {
  AttrId la = registry.RequireAttr(left_type, left_attr);
  AttrId ra = registry.RequireAttr(right_type, right_attr);
  return NamedCondition{
      left_name, right_name, [la, op, ra, offset](int l, int r) {
        return std::make_shared<AttrCompare>(l, la, op, r, ra, offset);
      }};
}

namespace {

// One DNF alternative under construction: an ordered list of event slots
// plus the temporal-order pairs forced by SEQ ancestors, and whether the
// slots happen to be totally ordered in list order.
struct Alternative {
  std::vector<EventSpec> events;
  std::vector<std::pair<int, int>> ts_pairs;  // (i, j): events[i].ts < events[j].ts
  bool fully_ordered = true;
};

// Concatenates `b` onto `a`, re-indexing b's ts pairs.
Alternative Concat(const Alternative& a, const Alternative& b) {
  Alternative out = a;
  int offset = static_cast<int>(a.events.size());
  out.events.insert(out.events.end(), b.events.begin(), b.events.end());
  for (const auto& [i, j] : b.ts_pairs) {
    out.ts_pairs.emplace_back(i + offset, j + offset);
  }
  return out;
}

std::vector<Alternative> DnfOf(const PatternNode& node) {
  if (node.kind() == PatternNode::Kind::kLeaf) {
    return {Alternative{{node.spec()}, {}, true}};
  }
  if (node.op() == OperatorKind::kOr) {
    std::vector<Alternative> out;
    for (const auto& child : node.children()) {
      std::vector<Alternative> sub = DnfOf(*child);
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  // SEQ / AND: cross-product of the children's alternatives.
  std::vector<Alternative> acc = {Alternative{}};
  for (const auto& child : node.children()) {
    std::vector<Alternative> sub = DnfOf(*child);
    std::vector<Alternative> next;
    next.reserve(acc.size() * sub.size());
    for (const Alternative& a : acc) {
      for (const Alternative& b : sub) {
        Alternative combined = Concat(a, b);
        if (node.op() == OperatorKind::kSeq) {
          // Every event of the earlier group precedes every event of the
          // later group.
          for (size_t i = 0; i < a.events.size(); ++i) {
            for (size_t j = 0; j < b.events.size(); ++j) {
              combined.ts_pairs.emplace_back(
                  static_cast<int>(i),
                  static_cast<int>(a.events.size() + j));
            }
          }
          combined.fully_ordered = a.fully_ordered && b.fully_ordered;
        } else {
          combined.fully_ordered =
              a.events.empty() ? b.fully_ordered : b.events.empty();
        }
        next.push_back(std::move(combined));
      }
    }
    acc = std::move(next);
  }
  return acc;
}

}  // namespace

std::vector<SimplePattern> ToDnf(const NestedPattern& pattern) {
  CEPJOIN_CHECK(pattern.root != nullptr);
  CEPJOIN_CHECK_GT(pattern.window, 0.0);
  std::vector<Alternative> alternatives = DnfOf(*pattern.root);
  std::vector<SimplePattern> out;
  out.reserve(alternatives.size());
  for (const Alternative& alt : alternatives) {
    // Resolve names to positions within the alternative.
    std::unordered_map<std::string, int> position_of;
    for (size_t i = 0; i < alt.events.size(); ++i) {
      const std::string& name = alt.events[i].name;
      CEPJOIN_CHECK(position_of.emplace(name, static_cast<int>(i)).second)
          << "duplicate event name '" << name << "' within one alternative";
    }
    std::vector<ConditionPtr> conditions;
    for (const NamedCondition& nc : pattern.conditions) {
      auto lit = position_of.find(nc.left_name);
      auto rit = position_of.find(nc.right_name);
      if (lit == position_of.end() || rit == position_of.end()) continue;
      conditions.push_back(nc.make(lit->second, rit->second));
    }
    OperatorKind op;
    if (alt.fully_ordered) {
      // Totally ordered alternatives become SEQ patterns; the ts pairs are
      // implied by the operator and need not be materialized.
      op = OperatorKind::kSeq;
    } else {
      op = OperatorKind::kAnd;
      std::unordered_set<int64_t> seen;
      for (const auto& [i, j] : alt.ts_pairs) {
        if (!seen.insert(static_cast<int64_t>(i) << 32 | j).second) continue;
        conditions.push_back(std::make_shared<TsOrder>(i, j));
        CEPJOIN_CHECK(!alt.events[i].negated && !alt.events[j].negated)
            << "negation under mixed AND/SEQ nesting is not supported; "
               "restructure the pattern so negated events sit in fully "
               "ordered alternatives";
      }
    }
    out.emplace_back(op, alt.events, std::move(conditions), pattern.window,
                     pattern.strategy);
  }
  return out;
}

}  // namespace cepjoin
