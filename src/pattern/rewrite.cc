#include "pattern/rewrite.h"

#include <memory>

namespace cepjoin {

SimplePattern SeqToAnd(const SimplePattern& pattern) {
  if (pattern.op() != OperatorKind::kSeq) return pattern;
  std::vector<ConditionPtr> conditions = pattern.conditions();
  int n = pattern.size();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      conditions.push_back(std::make_shared<TsOrder>(i, j));
    }
  }
  return SimplePattern(OperatorKind::kAnd, pattern.events(),
                       std::move(conditions), pattern.window(),
                       pattern.strategy())
      .WithDeltaInput(pattern.delta_input());
}

SimplePattern AddContiguityConditions(const SimplePattern& pattern,
                                      double adjacency_selectivity) {
  bool strict = pattern.strategy() == SelectionStrategy::kStrictContiguity;
  bool partition =
      pattern.strategy() == SelectionStrategy::kPartitionContiguity;
  if (!strict && !partition) return pattern;
  std::vector<ConditionPtr> conditions = pattern.conditions();
  const std::vector<int>& positives = pattern.positive_positions();
  for (size_t k = 0; k + 1 < positives.size(); ++k) {
    int a = positives[k];
    int b = positives[k + 1];
    if (strict) {
      conditions.push_back(
          std::make_shared<SerialAdjacent>(a, b, adjacency_selectivity));
    } else {
      conditions.push_back(
          std::make_shared<PartitionAdjacent>(a, b, adjacency_selectivity));
    }
  }
  return SimplePattern(pattern.op(), pattern.events(), std::move(conditions),
                       pattern.window(), pattern.strategy())
      .WithDeltaInput(pattern.delta_input());
}

SimplePattern RewriteForPlanning(const SimplePattern& pattern,
                                 double adjacency_selectivity) {
  return SeqToAnd(AddContiguityConditions(pattern, adjacency_selectivity));
}

}  // namespace cepjoin
