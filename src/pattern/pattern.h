#ifndef CEPJOIN_PATTERN_PATTERN_H_
#define CEPJOIN_PATTERN_PATTERN_H_

#include <string>
#include <vector>

#include "event/event_type.h"
#include "pattern/condition.h"

namespace cepjoin {

/// N-ary pattern operators (Sec. 2.1). OR appears only in nested patterns.
enum class OperatorKind { kSeq, kAnd, kOr };

const char* OperatorName(OperatorKind op);

/// Event selection strategies (Sec. 6.2).
enum class SelectionStrategy {
  kSkipTillAny,
  kSkipTillNext,
  kStrictContiguity,
  kPartitionContiguity,
};

const char* SelectionStrategyName(SelectionStrategy s);

/// One event slot of a pattern: a type plus optional unary operator
/// (NOT — the event must be absent; KL — one or more instances match).
struct EventSpec {
  TypeId type = kInvalidTypeId;
  std::string name;
  bool negated = false;
  bool kleene = false;
};

/// A simple pattern (Sec. 2.1): a single n-ary operator (SEQ or AND) over
/// event slots, at most one unary operator per slot, a CNF of (at most
/// pairwise) conditions, a time window, and a selection strategy.
///
/// Positions in conditions index into `events()`. A *pure* pattern has no
/// NOT/KL slots; a pure AND pattern is a "conjunctive pattern", a pure SEQ
/// pattern a "sequence pattern" in the paper's taxonomy.
class SimplePattern {
 public:
  SimplePattern(OperatorKind op, std::vector<EventSpec> events,
                std::vector<ConditionPtr> conditions, Timestamp window,
                SelectionStrategy strategy = SelectionStrategy::kSkipTillAny);

  OperatorKind op() const { return op_; }
  const std::vector<EventSpec>& events() const { return events_; }
  const std::vector<ConditionPtr>& conditions() const { return conditions_; }
  Timestamp window() const { return window_; }
  SelectionStrategy strategy() const { return strategy_; }

  /// Number of event slots (positive + negated).
  int size() const { return static_cast<int>(events_.size()); }

  /// Positions of non-negated slots, in pattern order. Evaluation plans
  /// cover exactly these positions.
  const std::vector<int>& positive_positions() const {
    return positive_positions_;
  }
  int num_positive() const {
    return static_cast<int>(positive_positions_.size());
  }

  /// Positions of negated slots, in pattern order.
  const std::vector<int>& negated_positions() const {
    return negated_positions_;
  }

  bool is_pure() const { return pure_; }
  bool has_kleene() const { return kleene_count_ > 0; }

  /// True iff the pattern evaluates a ± delta stream: engines then track
  /// emitted matches so a retraction can revoke them, and accept
  /// polarity=-1 events. Insert-only patterns (the default) skip all of
  /// that bookkeeping. Only skip-till-any patterns support delta input
  /// (retraction semantics under skip-till-next/contiguity pruning are
  /// undefined); engines CHECK this, CepService rejects it with a
  /// Status.
  bool delta_input() const { return delta_input_; }

  std::string Describe(const EventTypeRegistry* registry = nullptr) const;

  /// Returns a copy with a different strategy (used by benches).
  SimplePattern WithStrategy(SelectionStrategy s) const;

  /// Returns a copy that expects (or stops expecting) delta input.
  SimplePattern WithDeltaInput(bool delta_input = true) const;

 private:
  OperatorKind op_;
  std::vector<EventSpec> events_;
  std::vector<ConditionPtr> conditions_;
  Timestamp window_;
  SelectionStrategy strategy_;
  std::vector<int> positive_positions_;
  std::vector<int> negated_positions_;
  int kleene_count_ = 0;
  bool pure_ = true;
  bool delta_input_ = false;
};

/// Fluent builder for SimplePattern, the main user entry point:
///
///   auto p = PatternBuilder(OperatorKind::kSeq, registry)
///       .Event("MSFT", "m").Event("GOOG", "g").NegatedEvent("INTC", "i")
///       .Where("m", "difference", CmpOp::kLt, "g", "difference")
///       .Within(20 * 60)
///       .Build();
class PatternBuilder {
 public:
  PatternBuilder(OperatorKind op, const EventTypeRegistry& registry);

  PatternBuilder& Event(const std::string& type, const std::string& name);
  PatternBuilder& NegatedEvent(const std::string& type,
                               const std::string& name);
  PatternBuilder& KleeneEvent(const std::string& type,
                              const std::string& name);

  /// Adds `left.attr OP right.attr + offset`.
  PatternBuilder& Where(const std::string& left_name,
                        const std::string& left_attr, CmpOp op,
                        const std::string& right_name,
                        const std::string& right_attr, double offset = 0.0);
  /// Adds `name.attr OP constant`.
  PatternBuilder& WhereConst(const std::string& name, const std::string& attr,
                             CmpOp op, double constant);
  /// Adds an arbitrary prebuilt condition (positions resolved by caller).
  PatternBuilder& WhereCondition(ConditionPtr condition);

  PatternBuilder& Within(Timestamp window);
  PatternBuilder& WithStrategy(SelectionStrategy strategy);
  PatternBuilder& WithDeltaInput(bool delta_input = true);

  SimplePattern Build() const;

  /// Position of a named event added so far; aborts if unknown.
  int PositionOf(const std::string& name) const;

 private:
  const EventTypeRegistry& registry_;
  OperatorKind op_;
  std::vector<EventSpec> events_;
  std::vector<ConditionPtr> conditions_;
  Timestamp window_ = 0.0;
  SelectionStrategy strategy_ = SelectionStrategy::kSkipTillAny;
  bool delta_input_ = false;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PATTERN_PATTERN_H_
