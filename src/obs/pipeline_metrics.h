#ifndef CEPJOIN_OBS_PIPELINE_METRICS_H_
#define CEPJOIN_OBS_PIPELINE_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "runtime/match.h"

namespace cepjoin {

/// Canonical metric names of the pipeline instruments. Every name,
/// label set and meaning is documented in README.md's metrics reference
/// table; keep the two in sync.
namespace metric_names {
inline constexpr char kIngestEvents[] = "cep_ingest_events_total";
inline constexpr char kIngestBatches[] = "cep_ingest_batches_total";
inline constexpr char kSourceWatermark[] = "cep_source_watermark_seconds";
inline constexpr char kSourceWatermarkLag[] =
    "cep_source_watermark_lag_seconds";
inline constexpr char kMergedWatermark[] = "cep_merged_watermark_seconds";
inline constexpr char kShardEvents[] = "cep_shard_events_total";
inline constexpr char kShardBatches[] = "cep_shard_batches_total";
inline constexpr char kShardQueueDepth[] = "cep_shard_queue_depth";
inline constexpr char kQueryEvents[] = "cep_query_events_total";
inline constexpr char kQueryMatches[] = "cep_query_matches_total";
inline constexpr char kQueryRetractions[] = "cep_query_retractions_total";
inline constexpr char kQueryRevocations[] = "cep_query_revocations_total";
inline constexpr char kIngestToMatchSeconds[] =
    "cep_query_ingest_to_match_seconds";
inline constexpr char kDetectionSeconds[] = "cep_query_detection_seconds";
inline constexpr char kQueryMemoryBytes[] = "cep_query_memory_bytes";
inline constexpr char kInstanceKernelLanes[] =
    "cep_query_instance_kernel_lanes_total";
inline constexpr char kInstanceKernelBlocks[] =
    "cep_query_instance_kernel_blocks_total";
inline constexpr char kLastPositionMatches[] =
    "cep_query_last_position_matches_total";
inline constexpr char kLastPosition[] = "cep_query_last_position";
inline constexpr char kStageSeconds[] = "cep_stage_seconds";
inline constexpr char kIngestSourceRetries[] =
    "cep_ingest_source_retries_total";
inline constexpr char kCheckpointsTotal[] = "cep_checkpoints_total";
inline constexpr char kCheckpointFailures[] = "cep_checkpoint_failures_total";
inline constexpr char kCheckpointsSkipped[] = "cep_checkpoints_skipped_total";
inline constexpr char kCheckpointStallSeconds[] =
    "cep_checkpoint_stall_seconds";
inline constexpr char kCheckpointBytes[] = "cep_checkpoint_bytes";
inline constexpr char kCheckpointLastSeq[] = "cep_checkpoint_last_seq";
inline constexpr char kRestoresTotal[] = "cep_restores_total";
}  // namespace metric_names

/// The per-query instrument bundle, shared by the inline feed path
/// (CepService's match sink wrapper) and every shard worker evaluating
/// the query — all recording is striped/atomic, so one bundle serves any
/// number of threads. Handles are resolved once at query registration;
/// the hot path never touches the registry mutex (the lone exception is
/// the first match at a given last-position, which lazily registers that
/// position's counter).
class QueryMetrics {
 public:
  /// Last positions >= kMaxTrackedPositions are counted into matches but
  /// not per-position (patterns are far smaller in practice).
  static constexpr int kMaxTrackedPositions = 32;

  QueryMetrics(MetricsRegistry* registry, MetricLabels base_labels);

  MetricsRegistry* registry() const { return registry_; }
  const MetricLabels& base_labels() const { return base_labels_; }

  Counter* events_total;
  Counter* matches_total;
  /// Delta-input queries: retractions the engines consumed
  /// (EngineCounters::retractions_processed, delta-synced) and match
  /// revocations delivered to sinks. Net matches = matches_total -
  /// revocations_total; both stay 0 on insert-only queries.
  Counter* retractions_total;
  Counter* revocations_total;
  Histogram* ingest_to_match_seconds;
  Histogram* detection_seconds;
  /// Lanes / 64-lane blocks the vectorized instance×instance combine
  /// kernels processed for this query (EngineCounters::
  /// instance_kernel_lanes/_blocks, delta-synced by the feed paths).
  /// Zero while the columnar path is off — the observable coverage of
  /// the run-at-a-time combine.
  Counter* instance_kernel_lanes;
  Counter* instance_kernel_blocks;

  /// Per-last-position match counter, created lazily on first use. The
  /// init race is benign: GetCounter is idempotent, both racers cache
  /// the same instrument. Returns nullptr for untracked positions.
  Counter* LastPositionCounter(int pos);

  /// Snapshot-time read of the tracked per-position match counts
  /// (index = last position; positions never hit read 0). Feed to
  /// OutputProfiler::MostFrequent for the dominant-position gauge.
  std::vector<uint64_t> LastPositionCounts() const;

  /// Resolves the (query, partition) memory gauge. Registry-mutex cost;
  /// callers cache the handle per live partition.
  Gauge* MemoryGauge(uint32_t partition);
  /// The single pseudo-partition gauge of an unkeyed query.
  Gauge* MemoryGauge() { return MemoryGaugeLabeled("all"); }

 private:
  Gauge* MemoryGaugeLabeled(const std::string& partition_label);

  MetricsRegistry* registry_;
  MetricLabels base_labels_;
  std::atomic<Counter*> last_position_[kMaxTrackedPositions] = {};
};

/// Per-shard pipeline instruments, owned by the sharded runtime.
struct ShardMetrics {
  ShardMetrics(MetricsRegistry* registry, size_t shard);

  Counter* events_total;
  Counter* batches_total;
  Gauge* queue_depth;
};

/// One ingest-to-match latency observation is taken every
/// kIngestLatencySampleEvery-th match per thread (the first match on a
/// thread is always sampled). Sampling bounds the per-match cost of the
/// clock read + histogram record to well under the 2% overhead budget
/// bench_micro asserts; quantiles are unaffected, only the histogram's
/// `count` (and `sum`) reflect samples rather than every match —
/// `cep_query_matches_total` stays exact.
inline constexpr uint32_t kIngestLatencySampleEvery = 16;

/// Records the full per-match bundle: match count, sampled
/// ingest-to-match latency against `ingested_at` (the batch's
/// router-entry time), detection latency carried on the match, and the
/// last-position counter. No-op when `metrics` is null. Shared by the
/// inline sink wrapper and the concurrent shard sink so both paths emit
/// identical totals.
void RecordMatchMetrics(QueryMetrics* metrics, const Match& match,
                        std::chrono::steady_clock::time_point ingested_at);

/// Advances a registry counter mirroring a monotonic engine counter:
/// adds the growth of `current` over `*reported` and records the new
/// watermark. Engine counters only grow, so feeding the delta keeps the
/// registry total exact across any number of sync points (per-batch
/// refreshes, snapshots, query finish) without double counting. No-op
/// when `counter` is null (metrics off).
inline void SyncCounterDelta(Counter* counter, uint64_t current,
                             uint64_t* reported) {
  if (counter == nullptr || current <= *reported) return;
  counter->Inc(current - *reported);
  *reported = current;
}

}  // namespace cepjoin

#endif  // CEPJOIN_OBS_PIPELINE_METRICS_H_
