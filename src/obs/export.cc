#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace cepjoin {
namespace {

std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatBound(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// {label="value",...} with an optional extra (le) pair; empty string
/// when there are no labels at all.
std::string LabelBlock(const MetricLabels& labels, const std::string& extra_key,
                       const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out += extra_key;
    out += "=\"";
    out += EscapeLabelValue(extra_value);
    out += "\"";
  }
  out.push_back('}');
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

/// Same minimal escaping as bench/harness: names and label values are
/// plain identifiers, but a stray quote must not corrupt the file.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  const std::string* open_type = nullptr;  // name of the current TYPE block
  for (const MetricPoint& p : snapshot.points) {
    if (open_type == nullptr || *open_type != p.name) {
      out += "# TYPE ";
      out += p.name;
      out.push_back(' ');
      out += KindName(p.kind);
      out.push_back('\n');
      open_type = &p.name;
    }
    if (p.kind == MetricKind::kHistogram) {
      const HistogramData& h = p.histogram;
      uint64_t cumulative = 0;
      for (size_t b = 0; b < h.counts.size(); ++b) {
        cumulative += h.counts[b];
        std::string le =
            b < h.le.size() ? FormatBound(h.le[b]) : std::string("+Inf");
        out += p.name;
        out += "_bucket";
        out += LabelBlock(p.labels, "le", le);
        out.push_back(' ');
        out += std::to_string(cumulative);
        out.push_back('\n');
      }
      out += p.name;
      out += "_sum";
      out += LabelBlock(p.labels, {}, {});
      out.push_back(' ');
      out += FormatNumber(h.sum);
      out.push_back('\n');
      out += p.name;
      out += "_count";
      out += LabelBlock(p.labels, {}, {});
      out.push_back(' ');
      out += std::to_string(h.count);
      out.push_back('\n');
    } else {
      out += p.name;
      out += LabelBlock(p.labels, {}, {});
      out.push_back(' ');
      out += FormatNumber(p.value);
      out.push_back('\n');
    }
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "[\n";
  for (size_t i = 0; i < snapshot.points.size(); ++i) {
    const MetricPoint& p = snapshot.points[i];
    out += "  {\"name\": \"";
    out += JsonEscape(p.name);
    out += "\", \"kind\": \"";
    out += KindName(p.kind);
    out += "\", \"labels\": {";
    for (size_t l = 0; l < p.labels.size(); ++l) {
      if (l > 0) out += ", ";
      out += "\"";
      out += JsonEscape(p.labels[l].first);
      out += "\": \"";
      out += JsonEscape(p.labels[l].second);
      out += "\"";
    }
    out += "}";
    if (p.kind == MetricKind::kHistogram) {
      const HistogramData& h = p.histogram;
      out += ", \"count\": ";
      out += std::to_string(h.count);
      out += ", \"sum\": ";
      out += FormatNumber(h.sum);
      out += ", \"le\": [";
      for (size_t b = 0; b < h.le.size(); ++b) {
        if (b > 0) out += ", ";
        out += FormatNumber(h.le[b]);
      }
      out += "], \"buckets\": [";
      for (size_t b = 0; b < h.counts.size(); ++b) {
        if (b > 0) out += ", ";
        out += std::to_string(h.counts[b]);
      }
      out += "]";
    } else {
      out += ", \"value\": ";
      out += FormatNumber(p.value);
    }
    out += "}";
    if (i + 1 < snapshot.points.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

}  // namespace cepjoin
