#ifndef CEPJOIN_OBS_EXPORT_H_
#define CEPJOIN_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace cepjoin {

/// Renders a snapshot in the Prometheus text exposition format (0.0.4):
/// one `# TYPE` line per metric name, then `name{labels} value` samples;
/// histograms expand to cumulative `_bucket{le="..."}` series (ending in
/// le="+Inf"), `_sum` and `_count`. Points sharing a name are grouped
/// under a single TYPE line, as the format requires.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Renders a snapshot as a JSON array, one object per point, following
/// the bench/harness conventions (flat records, %.17g numbers, minimal
/// escaping): {"name": ..., "kind": "counter"|"gauge"|"histogram",
/// "labels": {...}, "value": ...} plus, for histograms, "count", "sum",
/// "le" (finite bucket bounds) and "buckets" (non-cumulative counts, one
/// longer than "le": the trailing slot is the +Inf bucket).
std::string ToJson(const MetricsSnapshot& snapshot);

}  // namespace cepjoin

#endif  // CEPJOIN_OBS_EXPORT_H_
