#ifndef CEPJOIN_OBS_STAGE_TIMER_H_
#define CEPJOIN_OBS_STAGE_TIMER_H_

#include <chrono>

#include "obs/metrics.h"

namespace cepjoin {

/// Process-global registry backing the drill-down stage timers. Kept
/// separate from any service-owned registry: stage timings are a
/// profiling aid spanning every engine in the process, not part of a
/// service's exported surface (CepService::MetricsSnapshot appends its
/// points when the timers are compiled in).
MetricsRegistry& DetailedMetricsRegistry();

/// Histogram options suited to per-stage wall times: 1 ns first bucket,
/// 44 doublings ≈ 17 s of range.
HistogramOptions StageTimerHistogramOptions();

/// RAII wall-clock timer recording seconds into a histogram on scope
/// exit. Only instantiated by CEPJOIN_STAGE_TIMER below, which compiles
/// to nothing unless CEPJOIN_DETAILED_METRICS is defined — the default
/// build carries zero hot-loop cost.
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedStageTimer() {
    hist_->Record(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cepjoin

/// Times the enclosing scope into cep_stage_seconds{stage="<name>"} of
/// the detailed registry. One use per scope (fixed variable names). The
/// histogram handle is resolved once per call site (function-local
/// static), so the per-invocation cost is two clock reads and a striped
/// histogram record — and exactly zero when compiled out.
#ifdef CEPJOIN_DETAILED_METRICS
#define CEPJOIN_STAGE_TIMER(stage_name)                                      \
  static ::cepjoin::Histogram* const cepjoin_stage_hist_ =                   \
      ::cepjoin::DetailedMetricsRegistry().GetHistogram(                     \
          "cep_stage_seconds", {{"stage", (stage_name)}},                    \
          ::cepjoin::StageTimerHistogramOptions());                          \
  ::cepjoin::ScopedStageTimer cepjoin_stage_timer_(cepjoin_stage_hist_)
#else
#define CEPJOIN_STAGE_TIMER(stage_name) \
  do {                                  \
  } while (false)
#endif

#endif  // CEPJOIN_OBS_STAGE_TIMER_H_
