#include "obs/pipeline_metrics.h"

#include "runtime/output_profiler.h"

namespace cepjoin {

namespace {

MetricLabels WithLabel(MetricLabels base, const std::string& key,
                       const std::string& value) {
  base.emplace_back(key, value);
  return base;
}

}  // namespace

QueryMetrics::QueryMetrics(MetricsRegistry* registry, MetricLabels base_labels)
    : registry_(registry), base_labels_(std::move(base_labels)) {
  CanonicalizeLabels(&base_labels_);
  events_total = registry_->GetCounter(metric_names::kQueryEvents,
                                       base_labels_);
  matches_total = registry_->GetCounter(metric_names::kQueryMatches,
                                        base_labels_);
  retractions_total = registry_->GetCounter(metric_names::kQueryRetractions,
                                            base_labels_);
  revocations_total = registry_->GetCounter(metric_names::kQueryRevocations,
                                            base_labels_);
  ingest_to_match_seconds = registry_->GetHistogram(
      metric_names::kIngestToMatchSeconds, base_labels_);
  detection_seconds = registry_->GetHistogram(metric_names::kDetectionSeconds,
                                              base_labels_);
  instance_kernel_lanes = registry_->GetCounter(
      metric_names::kInstanceKernelLanes, base_labels_);
  instance_kernel_blocks = registry_->GetCounter(
      metric_names::kInstanceKernelBlocks, base_labels_);
}

Counter* QueryMetrics::LastPositionCounter(int pos) {
  if (pos < 0 || pos >= kMaxTrackedPositions) return nullptr;
  Counter* c = last_position_[pos].load(std::memory_order_acquire);
  if (c == nullptr) {
    c = registry_->GetCounter(
        metric_names::kLastPositionMatches,
        WithLabel(base_labels_, "position", std::to_string(pos)));
    last_position_[pos].store(c, std::memory_order_release);
  }
  return c;
}

std::vector<uint64_t> QueryMetrics::LastPositionCounts() const {
  std::vector<uint64_t> counts(kMaxTrackedPositions, 0);
  for (int i = 0; i < kMaxTrackedPositions; ++i) {
    Counter* c = last_position_[i].load(std::memory_order_acquire);
    if (c != nullptr) counts[i] = c->Value();
  }
  return counts;
}

Gauge* QueryMetrics::MemoryGauge(uint32_t partition) {
  return MemoryGaugeLabeled(std::to_string(partition));
}

Gauge* QueryMetrics::MemoryGaugeLabeled(const std::string& partition_label) {
  return registry_->GetGauge(
      metric_names::kQueryMemoryBytes,
      WithLabel(base_labels_, "partition", partition_label));
}

ShardMetrics::ShardMetrics(MetricsRegistry* registry, size_t shard) {
  MetricLabels labels = {{"shard", std::to_string(shard)}};
  events_total = registry->GetCounter(metric_names::kShardEvents, labels);
  batches_total = registry->GetCounter(metric_names::kShardBatches, labels);
  queue_depth = registry->GetGauge(metric_names::kShardQueueDepth, labels);
}

void RecordMatchMetrics(QueryMetrics* metrics, const Match& match,
                        std::chrono::steady_clock::time_point ingested_at) {
  if (metrics == nullptr) return;
  if (match.IsRevocation()) {
    // A revocation is counted but never contributes latency samples or
    // last-position counts: those describe detections, and the detection
    // it cancels already recorded them.
    metrics->revocations_total->Inc();
    return;
  }
  metrics->matches_total->Inc();
  if (ingested_at.time_since_epoch().count() != 0) {
    // Sampled: the clock read dominates the per-match metrics cost, and
    // the latency distribution doesn't need every observation. Tick 0
    // fires first so a thread's first match is always sampled.
    static_assert((kIngestLatencySampleEvery &
                   (kIngestLatencySampleEvery - 1)) == 0,
                  "sample period must be a power of two");
    thread_local uint32_t sample_tick = 0;
    if ((sample_tick++ & (kIngestLatencySampleEvery - 1)) == 0) {
      double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        ingested_at)
              .count();
      metrics->ingest_to_match_seconds->Record(seconds);
    }
  }
  metrics->detection_seconds->Record(match.latency_seconds);
  if (Counter* c =
          metrics->LastPositionCounter(OutputProfiler::LastPosition(match))) {
    c->Inc();
  }
}

}  // namespace cepjoin
