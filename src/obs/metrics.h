#ifndef CEPJOIN_OBS_METRICS_H_
#define CEPJOIN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace cepjoin {

/// Label set of one metric instrument, e.g. {{"query","0"},{"shard","2"}}.
/// Canonicalized (sorted by key) on registration so lookup and export
/// order are independent of construction order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Monotonic counter, striped over cache-line-aligned cells so that
/// concurrent writers from different threads never contend on one line.
/// Inc() is a relaxed fetch_add on the calling thread's cell — no locks,
/// no ordering; Value() sums the stripes and is only coherent once the
/// writers have quiesced (or as a point-in-time estimate while they run).
class Counter {
 public:
  static constexpr size_t kStripes = 16;

  void Inc(uint64_t n = 1) {
    cells_[CellIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };

  /// Round-robin thread-to-stripe assignment: each thread picks a stripe
  /// once (thread_local), so a pipeline of ~N threads spreads across
  /// min(N, kStripes) cells.
  static size_t CellIndex();

  std::array<Cell, kStripes> cells_{};
};

/// Last-value gauge. Single atomic double: gauges are either single-writer
/// (one shard worker owns one (query, partition) memory gauge) or
/// last-write-wins by design (watermarks).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    // Not used on any hot path; CAS loop keeps Add available for
    // multi-writer gauges (e.g. aggregate queue depth).
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramOptions {
  /// Upper bound of the first bucket; every later bucket doubles it
  /// (log2-bucketed). Defaults suit seconds-valued latencies: 1 µs first
  /// bucket, 36 doublings ≈ 19 hours of range before +Inf.
  double first_bound = 1e-6;
  int num_buckets = 36;
};

/// Log2-bucketed histogram with the same striping scheme as Counter.
/// Record() is two relaxed fetch_adds plus a CAS-free sum accumulate on
/// the thread's stripe — no locks. Values <= 0 (and NaN) land in the
/// first bucket; values past the last bound land in the +Inf bucket.
class Histogram {
 public:
  static constexpr size_t kStripes = 8;
  static constexpr int kMaxBuckets = 64;

  explicit Histogram(HistogramOptions opts = {});

  void Record(double value) {
    Cell& cell = cells_[CellIndex()];
    cell.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    // Per-stripe sum: only this thread writes this stripe's slot, so a
    // plain load/store pair (no CAS) is race-free for the value; the
    // atomic wrapper makes the snapshot-side read defined.
    cell.sum.store(cell.sum.load(std::memory_order_relaxed) + value,
                   std::memory_order_relaxed);
  }

  /// Smallest i with value <= UpperBound(i), or num_buckets (the +Inf
  /// bucket) when no finite bound covers it. Deterministic at exact
  /// bucket bounds: Record(UpperBound(i)) counts into bucket i.
  int BucketIndex(double value) const;

  /// Inclusive upper bound of finite bucket i: first_bound * 2^i.
  double UpperBound(int i) const;

  int num_buckets() const { return opts_.num_buckets; }
  const HistogramOptions& options() const { return opts_; }

  /// Aggregated per-bucket counts (size num_buckets + 1, last is +Inf),
  /// total count and value sum. Coherent once writers quiesced.
  void Collect(std::vector<uint64_t>* bucket_counts, uint64_t* count,
               double* sum) const;

 private:
  struct alignas(64) Cell {
    std::array<std::atomic<uint64_t>, kMaxBuckets + 1> buckets{};
    std::atomic<double> sum{0.0};
  };

  static size_t CellIndex();

  HistogramOptions opts_;
  std::array<Cell, kStripes> cells_{};
};

/// Point-in-time copy of one histogram, with quantile estimation.
struct HistogramData {
  /// Ascending finite bucket upper bounds (size = num finite buckets).
  std::vector<double> le;
  /// Non-cumulative per-bucket counts; size le.size() + 1, the extra
  /// trailing slot is the +Inf bucket.
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// covering bucket (Prometheus histogram_quantile semantics). Returns
  /// 0 for an empty histogram; the last finite bound when the quantile
  /// falls in the +Inf bucket.
  double Quantile(double q) const;
};

/// One exported sample: a (name, labels) instrument and its value.
struct MetricPoint {
  std::string name;
  MetricLabels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;       // counter / gauge value
  HistogramData histogram;  // kind == kHistogram only
};

/// Point-in-time aggregation of a registry, sorted by (name, labels) so
/// exports and tests are deterministic.
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  /// First point with this name and exactly these labels (canonical
  /// order not required from the caller), or nullptr.
  const MetricPoint* Find(const std::string& name,
                          const MetricLabels& labels = {}) const;
  /// Find(...)->value, or `fallback` when absent.
  double Value(const std::string& name, const MetricLabels& labels = {},
               double fallback = 0.0) const;
};

/// Registry of named instruments. Get*() find-or-create under a mutex —
/// strictly a setup-path cost; hot paths hold raw Counter*/Gauge*/
/// Histogram* handles, whose addresses are stable for the registry's
/// lifetime. Get*() with a (name, labels) pair that already exists
/// returns the existing instrument (idempotent), so racing registrations
/// of the same key are benign. mu_ is the one lock on the metrics path;
/// the annotations pin down exactly what it guards (the entry storage
/// and its index — never the instruments themselves, which are striped
/// atomics) and that every public method takes it internally.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, MetricLabels labels = {})
      CEPJOIN_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, MetricLabels labels = {})
      CEPJOIN_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, MetricLabels labels = {},
                          HistogramOptions opts = {}) CEPJOIN_EXCLUDES(mu_);

  /// Aggregates every instrument's stripes into a sorted snapshot.
  /// Counter/histogram values are coherent once writer threads quiesced;
  /// taken mid-stream they are a consistent-enough point-in-time read
  /// (each instrument internally sums relaxed loads).
  MetricsSnapshot Snapshot() const CEPJOIN_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string name;
    MetricLabels labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, MetricLabels labels,
                      MetricKind kind, const HistogramOptions* opts)
      CEPJOIN_EXCLUDES(mu_);

  mutable Mutex mu_;
  /// deque: stable Entry addresses across growth. Guarded: only the
  /// container, not the pointed-to instruments — handles returned by
  /// Get*() are meant to be used lock-free.
  std::deque<Entry> entries_ CEPJOIN_GUARDED_BY(mu_);
  std::map<std::string, Entry*> index_ CEPJOIN_GUARDED_BY(mu_);
};

/// Sorts labels by key — the canonical form used for registry keys and
/// snapshot ordering.
void CanonicalizeLabels(MetricLabels* labels);

}  // namespace cepjoin

#endif  // CEPJOIN_OBS_METRICS_H_
