#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"

namespace cepjoin {
namespace {

/// Shared round-robin ticket for thread-to-stripe assignment. One global
/// counter (not per-instrument) keeps the thread_local a single size_t
/// and gives every instrument the same spread.
size_t NextStripeTicket() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

size_t ThisThreadTicket() {
  thread_local const size_t ticket = NextStripeTicket();
  return ticket;
}

std::string EntryKey(const std::string& name, const MetricLabels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key.push_back('\0');
    key += k;
    key.push_back('\0');
    key += v;
  }
  return key;
}

}  // namespace

void CanonicalizeLabels(MetricLabels* labels) {
  std::sort(labels->begin(), labels->end());
}

size_t Counter::CellIndex() { return ThisThreadTicket() % kStripes; }

size_t Histogram::CellIndex() { return ThisThreadTicket() % kStripes; }

Histogram::Histogram(HistogramOptions opts) : opts_(opts) {
  CEPJOIN_CHECK(opts_.first_bound > 0.0);
  CEPJOIN_CHECK(opts_.num_buckets >= 1 && opts_.num_buckets <= kMaxBuckets);
}

int Histogram::BucketIndex(double value) const {
  // <= first bound, non-positive, and NaN all collapse into bucket 0.
  if (!(value > opts_.first_bound)) return 0;
  // Smallest i with ratio <= 2^i. The exponent field of the IEEE-754
  // ratio is floor(log2); an exact power of two (zero mantissa) sits on
  // its own bound (Record(UpperBound(i)) -> i), anything between bounds
  // rounds up. Reading the bits directly keeps Record() free of libm
  // calls (ilogb/ldexp cost ~2x the rest of Record combined). The
  // division is exact at bucket bounds: UpperBound(i) is first_bound
  // scaled by a power of two, so the quotient 2^i has no rounding.
  double ratio = value / opts_.first_bound;
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(ratio), "IEEE-754 double expected");
  std::memcpy(&bits, &ratio, sizeof(bits));
  // ratio > 1 here, so the biased exponent is a normal value (or 0x7ff
  // for +Inf, which the min() below clamps into the +Inf bucket).
  int e = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  bool exact_power = (bits & ((uint64_t{1} << 52) - 1)) == 0;
  int idx = exact_power ? e : e + 1;
  return std::min(idx, opts_.num_buckets);
}

double Histogram::UpperBound(int i) const {
  return std::ldexp(opts_.first_bound, i);
}

void Histogram::Collect(std::vector<uint64_t>* bucket_counts, uint64_t* count,
                        double* sum) const {
  bucket_counts->assign(static_cast<size_t>(opts_.num_buckets) + 1, 0);
  *count = 0;
  *sum = 0.0;
  for (const Cell& cell : cells_) {
    for (int b = 0; b <= opts_.num_buckets; ++b) {
      uint64_t n = cell.buckets[b].load(std::memory_order_relaxed);
      (*bucket_counts)[b] += n;
      *count += n;
    }
    *sum += cell.sum.load(std::memory_order_relaxed);
  }
}

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target observation (1-based), then walk the buckets.
  double rank = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    uint64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      if (b >= le.size()) {
        // +Inf bucket: clamp to the largest finite bound.
        return le.empty() ? 0.0 : le.back();
      }
      double lower = b == 0 ? 0.0 : le[b - 1];
      double upper = le[b];
      double into = (rank - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(std::max(into, 0.0), 1.0);
    }
    seen += in_bucket;
  }
  return le.empty() ? 0.0 : le.back();
}

const MetricPoint* MetricsSnapshot::Find(const std::string& name,
                                         const MetricLabels& labels) const {
  MetricLabels canon = labels;
  CanonicalizeLabels(&canon);
  for (const MetricPoint& p : points) {
    if (p.name == name && p.labels == canon) return &p;
  }
  return nullptr;
}

double MetricsSnapshot::Value(const std::string& name,
                              const MetricLabels& labels,
                              double fallback) const {
  const MetricPoint* p = Find(name, labels);
  return p == nullptr ? fallback : p->value;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    const std::string& name, MetricLabels labels, MetricKind kind,
    const HistogramOptions* opts) {
  CanonicalizeLabels(&labels);
  std::string key = EntryKey(name, labels);
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    CEPJOIN_CHECK(it->second->kind == kind);
    return it->second;
  }
  entries_.emplace_back();
  Entry& entry = entries_.back();
  entry.name = name;
  entry.labels = std::move(labels);
  entry.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry.histogram = std::make_unique<Histogram>(
          opts != nullptr ? *opts : HistogramOptions{});
      break;
  }
  index_.emplace(std::move(key), &entry);
  return &entry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     MetricLabels labels) {
  return FindOrCreate(name, std::move(labels), MetricKind::kCounter, nullptr)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 MetricLabels labels) {
  return FindOrCreate(name, std::move(labels), MetricKind::kGauge, nullptr)
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         MetricLabels labels,
                                         HistogramOptions opts) {
  return FindOrCreate(name, std::move(labels), MetricKind::kHistogram, &opts)
      ->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    MutexLock lock(mu_);
    snap.points.reserve(entries_.size());
    for (const Entry& entry : entries_) {
      MetricPoint point;
      point.name = entry.name;
      point.labels = entry.labels;
      point.kind = entry.kind;
      switch (entry.kind) {
        case MetricKind::kCounter:
          point.value = static_cast<double>(entry.counter->Value());
          break;
        case MetricKind::kGauge:
          point.value = entry.gauge->Value();
          break;
        case MetricKind::kHistogram: {
          const Histogram& h = *entry.histogram;
          point.histogram.le.reserve(h.num_buckets());
          for (int b = 0; b < h.num_buckets(); ++b) {
            point.histogram.le.push_back(h.UpperBound(b));
          }
          h.Collect(&point.histogram.counts, &point.histogram.count,
                    &point.histogram.sum);
          point.value = static_cast<double>(point.histogram.count);
          break;
        }
      }
      snap.points.push_back(std::move(point));
    }
  }
  std::sort(snap.points.begin(), snap.points.end(),
            [](const MetricPoint& a, const MetricPoint& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

}  // namespace cepjoin
