#include "obs/stage_timer.h"

namespace cepjoin {

MetricsRegistry& DetailedMetricsRegistry() {
  // Leaked on purpose: stage-timer call sites cache Histogram* in
  // function-local statics, which must never dangle at exit.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

HistogramOptions StageTimerHistogramOptions() {
  HistogramOptions opts;
  opts.first_bound = 1e-9;
  opts.num_buckets = 44;
  return opts;
}

}  // namespace cepjoin
