#ifndef CEPJOIN_RUNTIME_MATCH_H_
#define CEPJOIN_RUNTIME_MATCH_H_

#include <string>
#include <vector>

#include "event/event.h"

namespace cepjoin {

/// A full pattern match. `slots[p]` holds the event(s) bound to pattern
/// position p: one event for ordinary slots, one or more for a Kleene
/// slot, none for negated slots.
struct Match {
  std::vector<std::vector<EventPtr>> slots;
  /// Timestamp of the temporally last event in the match.
  Timestamp last_ts = 0.0;
  /// Serial of the temporally last event (ties broken by serial).
  EventSerial last_event_serial = 0;
  /// Global arrival serial being processed when the match was emitted;
  /// emit_serial - last_event_serial is the detection delay in events.
  EventSerial emit_serial = 0;
  /// Detection latency (Sec. 6.1): wall-clock seconds between the start
  /// of processing the temporally last contributing event and the moment
  /// the match was formed — i.e., the cost of walking the remaining plan
  /// steps over buffered events.
  double latency_seconds = 0.0;
  /// Which DNF subpattern produced the match (0 for simple patterns).
  int subpattern = 0;
  /// Delta polarity: +1 is a match, -1 a revocation of a previously
  /// emitted match (same slots/Fingerprint, emitted when a contributing
  /// event is retracted). Insert-only pipelines only ever see +1.
  int8_t polarity = 1;

  /// Canonical identity of the match: sorted event serials per slot.
  /// Used for union/dedup across engines and in correctness tests.
  /// Polarity is deliberately excluded: a revocation carries the same
  /// fingerprint as the match it cancels.
  std::string Fingerprint() const;

  bool IsRevocation() const { return polarity < 0; }

  /// Detection latency in number of events processed between the last
  /// contributing event's arrival and emission.
  uint64_t LatencyEvents() const { return emit_serial - last_event_serial; }
};

/// True iff any slot of the match binds the event with `serial`; the
/// membership test engines run when a retraction must revoke matches.
inline bool MatchContainsSerial(const Match& match, EventSerial serial) {
  for (const auto& slot : match.slots) {
    for (const EventPtr& e : slot) {
      if (e->serial == serial) return true;
    }
  }
  return false;
}

/// Receiver of full matches.
class MatchSink {
 public:
  virtual ~MatchSink() = default;
  virtual void OnMatch(const Match& match) = 0;
};

/// Sink that stores every match; used by tests and examples.
class CollectingSink : public MatchSink {
 public:
  void OnMatch(const Match& match) override { matches.push_back(match); }

  /// Sorted fingerprints of all collected matches.
  std::vector<std::string> Fingerprints() const;

  std::vector<Match> matches;
};

/// Sink that only counts matches and aggregates latency; used by benches.
class CountingSink : public MatchSink {
 public:
  void OnMatch(const Match& match) override {
    if (match.IsRevocation()) {
      ++revoked;
      return;
    }
    ++count;
    latency_events_total += match.LatencyEvents();
    latency_seconds_total += match.latency_seconds;
  }

  double MeanLatencyEvents() const {
    return count == 0 ? 0.0
                      : static_cast<double>(latency_events_total) /
                            static_cast<double>(count);
  }

  double MeanLatencySeconds() const {
    return count == 0 ? 0.0
                      : latency_seconds_total / static_cast<double>(count);
  }

  uint64_t count = 0;
  uint64_t revoked = 0;
  uint64_t latency_events_total = 0;
  double latency_seconds_total = 0.0;
};

}  // namespace cepjoin

#endif  // CEPJOIN_RUNTIME_MATCH_H_
