// Columnar predicate kernels: the batched counterpart of the scalar span
// interpreter in predicate_program.cc. A span is evaluated
// instruction-major across a whole candidate run (struct-of-arrays
// columns from ColumnBuffer), in 64-lane blocks: each instruction writes
// a verdict byte per lane in a tight, auto-vectorizable loop over one
// column, the bytes are packed into a bitmask word, and the word ANDs
// into the survivor mask. Lanes dead on entry are never counted; a lane's
// predicate_evals contribution is exactly what per-lane EvalPair calls
// would have produced (executed instructions up to and including the
// first failure), because each instruction adds popcount(live-before).
//
// The dominant 1–3 instruction spans of vectorizable opcodes additionally
// get template-stamped kernels (SpecSpan1/2/3) selected at lowering time:
// the instruction dispatch is resolved at compile time, so the only
// per-block work left is the column loops themselves — the ROADMAP's
// "JIT-style predicate specialization" item.

#include <algorithm>
#include <cstring>

#include "runtime/predicate_program.h"

namespace cepjoin {

namespace {

/// Packs n (<= 64) verdict bytes (each strictly 0 or 1) into a bitmask,
/// byte k -> bit k. The multiply gathers the eight 0/1 bytes of a chunk
/// into the top byte of the product (distinct exponents, no carries).
inline uint64_t PackBits(const uint8_t* v, size_t n) {
  uint64_t bits = 0;
  size_t full = n / 8;
  for (size_t i = 0; i < full; ++i) {
    uint64_t chunk;
    std::memcpy(&chunk, v + i * 8, 8);
    bits |= ((chunk * 0x0102040810204080ull) >> 56) << (i * 8);
  }
  for (size_t k = full * 8; k < n; ++k) {
    bits |= static_cast<uint64_t>(v[k] & 1u) << k;
  }
  return bits;
}

/// Row-at-a-time fallback for one instruction over a block: identical
/// semantics to the scalar interpreter (used when attr columns do not
/// cover the instruction, or for virtual trampolines). `live` lets
/// kVirtual skip dead lanes so user predicates run exactly as often as
/// on the scalar path.
inline void VerdictRows(const PredInstr& instr, const Event* fixed,
                        bool fixed_is_lo, const ColumnRun& run, size_t lane0,
                        size_t n, uint64_t live, uint8_t* v) {
  bool skip_dead = instr.op == PredOpCode::kVirtual;
  for (size_t k = 0; k < n; ++k) {
    if (skip_dead && (live >> k & 1) == 0) {
      v[k] = 0;
      continue;
    }
    const Event& lane = *run.events[lane0 + k];
    const Event& lo = fixed == nullptr || !fixed_is_lo ? lane : *fixed;
    const Event& hi = fixed == nullptr || fixed_is_lo ? lane : *fixed;
    const Event& l = instr.swap ? hi : lo;
    const Event& r = instr.swap ? lo : hi;
    v[k] = EvalInstrRow(instr, l, r);
  }
}

// --- column verdict writers, one per vectorizable opcode --------------------
//
// `fixed` is the event bound to the non-run side of the span (null for
// unary spans, where both sides are the lane event); `fixed_is_lo` says
// whether it occupies the lower pattern position. Combined with the
// instruction's swap flag this resolves which comparison side is the
// scalar broadcast and which is the column.

inline void VerdictAttrCmp(const PredInstr& instr, const Event* fixed,
                           bool fixed_is_lo, const ColumnRun& run,
                           size_t lane0, size_t n, uint64_t live,
                           uint8_t* v) {
  const unsigned mask = instr.cmp_mask;
  const double operand = instr.operand;
  if (fixed == nullptr) {
    if (run.attrs == nullptr || instr.left_attr >= run.num_attrs ||
        instr.right_attr >= run.num_attrs) {
      VerdictRows(instr, fixed, fixed_is_lo, run, lane0, n, live, v);
      return;
    }
    const double* la = run.attrs[instr.left_attr] + lane0;
    const double* ra = run.attrs[instr.right_attr] + lane0;
    for (size_t k = 0; k < n; ++k) {
      v[k] = (mask & CmpClass(la[k], ra[k] + operand)) != 0;
    }
    return;
  }
  const bool l_fixed = instr.swap ? !fixed_is_lo : fixed_is_lo;
  if (l_fixed) {
    if (run.attrs == nullptr || instr.right_attr >= run.num_attrs) {
      VerdictRows(instr, fixed, fixed_is_lo, run, lane0, n, live, v);
      return;
    }
    const double lhs = fixed->attrs[instr.left_attr];
    const double* ra = run.attrs[instr.right_attr] + lane0;
    for (size_t k = 0; k < n; ++k) {
      v[k] = (mask & CmpClass(lhs, ra[k] + operand)) != 0;
    }
  } else {
    if (run.attrs == nullptr || instr.left_attr >= run.num_attrs) {
      VerdictRows(instr, fixed, fixed_is_lo, run, lane0, n, live, v);
      return;
    }
    const double rhs = fixed->attrs[instr.right_attr] + operand;
    const double* la = run.attrs[instr.left_attr] + lane0;
    for (size_t k = 0; k < n; ++k) {
      v[k] = (mask & CmpClass(la[k], rhs)) != 0;
    }
  }
}

inline void VerdictAttrThreshold(const PredInstr& instr, const Event* fixed,
                                 bool fixed_is_lo, const ColumnRun& run,
                                 size_t lane0, size_t n, uint64_t live,
                                 uint8_t* v) {
  const unsigned mask = instr.cmp_mask;
  const double operand = instr.operand;
  const bool l_fixed =
      fixed != nullptr && (instr.swap ? !fixed_is_lo : fixed_is_lo);
  if (l_fixed) {
    // Thresholds read only the l side; with l fixed the verdict is one
    // comparison broadcast to the block.
    uint8_t verdict =
        (mask & CmpClass(fixed->attrs[instr.left_attr], operand)) != 0;
    std::memset(v, verdict, n);
    return;
  }
  if (run.attrs == nullptr || instr.left_attr >= run.num_attrs) {
    VerdictRows(instr, fixed, fixed_is_lo, run, lane0, n, live, v);
    return;
  }
  const double* la = run.attrs[instr.left_attr] + lane0;
  for (size_t k = 0; k < n; ++k) {
    v[k] = (mask & CmpClass(la[k], operand)) != 0;
  }
}

inline void VerdictTsOrder(const PredInstr& instr, const Event* fixed,
                           bool fixed_is_lo, const ColumnRun& run,
                           size_t lane0, size_t n, uint64_t /*live*/,
                           uint8_t* v) {
  if (fixed == nullptr) {
    std::memset(v, 0, n);  // e.ts < e.ts never holds
    return;
  }
  const bool l_fixed = instr.swap ? !fixed_is_lo : fixed_is_lo;
  const Timestamp* ts = run.ts + lane0;
  if (l_fixed) {
    const Timestamp lts = fixed->ts;
    for (size_t k = 0; k < n; ++k) v[k] = lts < ts[k];
  } else {
    const Timestamp rts = fixed->ts;
    for (size_t k = 0; k < n; ++k) v[k] = ts[k] < rts;
  }
}

inline void VerdictSerialAdjacent(const PredInstr& instr, const Event* fixed,
                                  bool fixed_is_lo, const ColumnRun& run,
                                  size_t lane0, size_t n, uint64_t /*live*/,
                                  uint8_t* v) {
  if (fixed == nullptr) {
    std::memset(v, 0, n);  // e.serial == e.serial + 1 never holds
    return;
  }
  const bool l_fixed = instr.swap ? !fixed_is_lo : fixed_is_lo;
  const EventSerial* serial = run.serial + lane0;
  if (l_fixed) {
    const EventSerial want = fixed->serial + 1;
    for (size_t k = 0; k < n; ++k) v[k] = serial[k] == want;
  } else {
    const EventSerial rs = fixed->serial;
    for (size_t k = 0; k < n; ++k) v[k] = rs == serial[k] + 1;
  }
}

inline void VerdictPartitionAdjacent(const PredInstr& instr,
                                     const Event* fixed, bool fixed_is_lo,
                                     const ColumnRun& run, size_t lane0,
                                     size_t n, uint64_t /*live*/,
                                     uint8_t* v) {
  if (fixed == nullptr) {
    std::memset(v, 0, n);  // same partition, seq == seq + 1 never holds
    return;
  }
  const bool l_fixed = instr.swap ? !fixed_is_lo : fixed_is_lo;
  const uint32_t* part = run.partition + lane0;
  const EventSerial* seq = run.partition_seq + lane0;
  if (l_fixed) {
    const uint32_t lp = fixed->partition;
    const EventSerial want = fixed->partition_seq + 1;
    for (size_t k = 0; k < n; ++k) {
      v[k] = lp != part[k] || seq[k] == want;
    }
  } else {
    const uint32_t rp = fixed->partition;
    const EventSerial rseq = fixed->partition_seq;
    for (size_t k = 0; k < n; ++k) {
      v[k] = part[k] != rp || rseq == seq[k] + 1;
    }
  }
}

inline void VerdictBlock(const PredInstr& instr, const Event* fixed,
                         bool fixed_is_lo, const ColumnRun& run, size_t lane0,
                         size_t n, uint64_t live, uint8_t* v) {
  switch (instr.op) {
    case PredOpCode::kAttrCmp:
      VerdictAttrCmp(instr, fixed, fixed_is_lo, run, lane0, n, live, v);
      break;
    case PredOpCode::kAttrThreshold:
      VerdictAttrThreshold(instr, fixed, fixed_is_lo, run, lane0, n, live, v);
      break;
    case PredOpCode::kTsOrder:
      VerdictTsOrder(instr, fixed, fixed_is_lo, run, lane0, n, live, v);
      break;
    case PredOpCode::kSerialAdjacent:
      VerdictSerialAdjacent(instr, fixed, fixed_is_lo, run, lane0, n, live,
                            v);
      break;
    case PredOpCode::kPartitionAdjacent:
      VerdictPartitionAdjacent(instr, fixed, fixed_is_lo, run, lane0, n,
                               live, v);
      break;
    case PredOpCode::kVirtual:
      VerdictRows(instr, fixed, fixed_is_lo, run, lane0, n, live, v);
      break;
  }
}

/// Generic instruction-major span loop: any span length, any opcode mix.
void GenericSpanColumns(const PredInstr* code, size_t n_instr,
                        const Event* fixed, bool fixed_is_lo,
                        const ColumnRun& run, uint64_t* alive,
                        uint64_t* evals) {
  const size_t words = (run.size + 63) / 64;
  uint64_t counted = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t m = alive[w];
    if (m == 0) continue;
    const size_t lane0 = w * 64;
    const size_t n = std::min<size_t>(64, run.size - lane0);
    uint8_t v[64];
    for (size_t k = 0; k < n_instr; ++k) {
      counted += static_cast<uint64_t>(__builtin_popcountll(m));
      VerdictBlock(code[k], fixed, fixed_is_lo, run, lane0, n, m, v);
      m &= PackBits(v, n);
      if (m == 0) break;  // whole block failed: later instructions are
                          // unreached on every lane, exactly like scalar
    }
    alive[w] = m;
  }
  if (evals != nullptr) *evals += counted;
}

/// Masked instruction-major span loop: like GenericSpanColumns, but a
/// partially-dead 64-lane block is evaluated in 8-lane groups, skipping
/// the groups whose survivor byte is zero — the sub-block early-out the
/// instance-combine path wants, because its blocks arrive pre-thinned by
/// the window gate and earlier cross-pair spans. Verdicts of live lanes
/// are computed by the same VerdictBlock writers, dead lanes are never
/// counted, and each instruction adds popcount(live-before), so survivors
/// and predicate_evals stay bit-identical to GenericSpanColumns and to
/// per-lane scalar evaluation.
void MaskedSpanColumns(const PredInstr* code, size_t n_instr,
                       const Event* fixed, bool fixed_is_lo,
                       const ColumnRun& run, uint64_t* alive,
                       uint64_t* evals) {
  const size_t words = (run.size + 63) / 64;
  uint64_t counted = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t m = alive[w];
    if (m == 0) continue;
    const size_t lane0 = w * 64;
    const size_t n = std::min<size_t>(64, run.size - lane0);
    const uint64_t full =
        n == 64 ? ~uint64_t{0} : (~uint64_t{0} >> (64 - n));
    uint8_t v[64];
    for (size_t k = 0; k < n_instr; ++k) {
      counted += static_cast<uint64_t>(__builtin_popcountll(m));
      if (m == full) {
        // Fully-live block: the dense column loop beats group dispatch.
        VerdictBlock(code[k], fixed, fixed_is_lo, run, lane0, n, m, v);
        m &= PackBits(v, n);
      } else {
        uint64_t keep = 0;
        for (size_t g = 0; g * 8 < n; ++g) {
          const uint64_t gm = m >> (g * 8) & 0xFF;
          if (gm == 0) continue;  // dead 8-lane group: skip its columns
          const size_t gl = g * 8;
          const size_t gn = std::min<size_t>(8, n - gl);
          VerdictBlock(code[k], fixed, fixed_is_lo, run, lane0 + gl, gn, gm,
                       v + gl);
          keep |= PackBits(v + gl, gn) << gl;
        }
        m &= keep;
      }
      if (m == 0) break;  // whole block failed: later instructions are
                          // unreached on every lane, exactly like scalar
    }
    alive[w] = m;
  }
  if (evals != nullptr) *evals += counted;
}

// --- template-stamped span kernels ------------------------------------------

/// The three opcodes worth stamping: every other opcode either cannot
/// appear in hot spans (adjacency contiguity is rare) or must stay a row
/// loop (virtual trampolines).
enum class VecOp : uint8_t { kCmp, kThr, kTs };

template <VecOp Op>
inline void SpecVerdict(const PredInstr& instr, const Event* fixed,
                        bool fixed_is_lo, const ColumnRun& run, size_t lane0,
                        size_t n, uint64_t live, uint8_t* v) {
  if constexpr (Op == VecOp::kCmp) {
    VerdictAttrCmp(instr, fixed, fixed_is_lo, run, lane0, n, live, v);
  } else if constexpr (Op == VecOp::kThr) {
    VerdictAttrThreshold(instr, fixed, fixed_is_lo, run, lane0, n, live, v);
  } else {
    VerdictTsOrder(instr, fixed, fixed_is_lo, run, lane0, n, live, v);
  }
}

template <VecOp A>
void SpecSpan1(const PredInstr* code, const Event* fixed, bool fixed_is_lo,
               const ColumnRun& run, uint64_t* alive, uint64_t* evals) {
  const size_t words = (run.size + 63) / 64;
  uint64_t counted = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t m = alive[w];
    if (m == 0) continue;
    const size_t lane0 = w * 64;
    const size_t n = std::min<size_t>(64, run.size - lane0);
    uint8_t v[64];
    counted += static_cast<uint64_t>(__builtin_popcountll(m));
    SpecVerdict<A>(code[0], fixed, fixed_is_lo, run, lane0, n, m, v);
    alive[w] = m & PackBits(v, n);
  }
  if (evals != nullptr) *evals += counted;
}

template <VecOp A, VecOp B>
void SpecSpan2(const PredInstr* code, const Event* fixed, bool fixed_is_lo,
               const ColumnRun& run, uint64_t* alive, uint64_t* evals) {
  const size_t words = (run.size + 63) / 64;
  uint64_t counted = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t m = alive[w];
    if (m == 0) continue;
    const size_t lane0 = w * 64;
    const size_t n = std::min<size_t>(64, run.size - lane0);
    uint8_t v[64];
    counted += static_cast<uint64_t>(__builtin_popcountll(m));
    SpecVerdict<A>(code[0], fixed, fixed_is_lo, run, lane0, n, m, v);
    m &= PackBits(v, n);
    if (m != 0) {
      counted += static_cast<uint64_t>(__builtin_popcountll(m));
      SpecVerdict<B>(code[1], fixed, fixed_is_lo, run, lane0, n, m, v);
      m &= PackBits(v, n);
    }
    alive[w] = m;
  }
  if (evals != nullptr) *evals += counted;
}

template <VecOp A, VecOp B, VecOp C>
void SpecSpan3(const PredInstr* code, const Event* fixed, bool fixed_is_lo,
               const ColumnRun& run, uint64_t* alive, uint64_t* evals) {
  const size_t words = (run.size + 63) / 64;
  uint64_t counted = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t m = alive[w];
    if (m == 0) continue;
    const size_t lane0 = w * 64;
    const size_t n = std::min<size_t>(64, run.size - lane0);
    uint8_t v[64];
    counted += static_cast<uint64_t>(__builtin_popcountll(m));
    SpecVerdict<A>(code[0], fixed, fixed_is_lo, run, lane0, n, m, v);
    m &= PackBits(v, n);
    if (m != 0) {
      counted += static_cast<uint64_t>(__builtin_popcountll(m));
      SpecVerdict<B>(code[1], fixed, fixed_is_lo, run, lane0, n, m, v);
      m &= PackBits(v, n);
    }
    if (m != 0) {
      counted += static_cast<uint64_t>(__builtin_popcountll(m));
      SpecVerdict<C>(code[2], fixed, fixed_is_lo, run, lane0, n, m, v);
      m &= PackBits(v, n);
    }
    alive[w] = m;
  }
  if (evals != nullptr) *evals += counted;
}

// --- kernel selection at lowering time --------------------------------------

bool VecOpOf(const PredInstr& instr, VecOp* op) {
  switch (instr.op) {
    case PredOpCode::kAttrCmp:
      *op = VecOp::kCmp;
      return true;
    case PredOpCode::kAttrThreshold:
      *op = VecOp::kThr;
      return true;
    case PredOpCode::kTsOrder:
      *op = VecOp::kTs;
      return true;
    default:
      return false;
  }
}

SpanKernelFn Select1(VecOp a) {
  switch (a) {
    case VecOp::kCmp:
      return &SpecSpan1<VecOp::kCmp>;
    case VecOp::kThr:
      return &SpecSpan1<VecOp::kThr>;
    case VecOp::kTs:
      return &SpecSpan1<VecOp::kTs>;
  }
  return nullptr;
}

template <VecOp A>
SpanKernelFn Select2With(VecOp b) {
  switch (b) {
    case VecOp::kCmp:
      return &SpecSpan2<A, VecOp::kCmp>;
    case VecOp::kThr:
      return &SpecSpan2<A, VecOp::kThr>;
    case VecOp::kTs:
      return &SpecSpan2<A, VecOp::kTs>;
  }
  return nullptr;
}

SpanKernelFn Select2(VecOp a, VecOp b) {
  switch (a) {
    case VecOp::kCmp:
      return Select2With<VecOp::kCmp>(b);
    case VecOp::kThr:
      return Select2With<VecOp::kThr>(b);
    case VecOp::kTs:
      return Select2With<VecOp::kTs>(b);
  }
  return nullptr;
}

template <VecOp A, VecOp B>
SpanKernelFn Select3With(VecOp c) {
  switch (c) {
    case VecOp::kCmp:
      return &SpecSpan3<A, B, VecOp::kCmp>;
    case VecOp::kThr:
      return &SpecSpan3<A, B, VecOp::kThr>;
    case VecOp::kTs:
      return &SpecSpan3<A, B, VecOp::kTs>;
  }
  return nullptr;
}

template <VecOp A>
SpanKernelFn Select3Mid(VecOp b, VecOp c) {
  switch (b) {
    case VecOp::kCmp:
      return Select3With<A, VecOp::kCmp>(c);
    case VecOp::kThr:
      return Select3With<A, VecOp::kThr>(c);
    case VecOp::kTs:
      return Select3With<A, VecOp::kTs>(c);
  }
  return nullptr;
}

SpanKernelFn Select3(VecOp a, VecOp b, VecOp c) {
  switch (a) {
    case VecOp::kCmp:
      return Select3Mid<VecOp::kCmp>(b, c);
    case VecOp::kThr:
      return Select3Mid<VecOp::kThr>(b, c);
    case VecOp::kTs:
      return Select3Mid<VecOp::kTs>(b, c);
  }
  return nullptr;
}

}  // namespace

void PredicateProgram::AnnotateSpans() {
  auto annotate = [&](Span& span) {
    span.max_attr = -1;
    span.spec = nullptr;
    size_t len = span.end - span.begin;
    VecOp ops[3];
    bool spec_ok = len >= 1 && len <= 3;
    for (uint32_t k = span.begin; k < span.end; ++k) {
      const PredInstr& instr = code_[k];
      // Conservative attribute footprint: which side is columnar depends
      // on the call orientation, so cover both.
      if (instr.op == PredOpCode::kAttrCmp) {
        span.max_attr = std::max(
            span.max_attr,
            static_cast<int32_t>(
                std::max(instr.left_attr, instr.right_attr)));
      } else if (instr.op == PredOpCode::kAttrThreshold) {
        span.max_attr =
            std::max(span.max_attr, static_cast<int32_t>(instr.left_attr));
      }
      VecOp op;
      if (!VecOpOf(instr, &op)) {
        spec_ok = false;
      } else if (k - span.begin < 3) {
        ops[k - span.begin] = op;
      }
    }
    if (!spec_ok) return;
    switch (len) {
      case 1:
        span.spec = Select1(ops[0]);
        break;
      case 2:
        span.spec = Select2(ops[0], ops[1]);
        break;
      case 3:
        span.spec = Select3(ops[0], ops[1], ops[2]);
        break;
      default:
        break;
    }
  };
  for (Span& span : unary_spans_) annotate(span);
  for (Span& span : pair_spans_) annotate(span);
}

void PredicateProgram::RunSpanColumns(const Span& span, const Event* fixed,
                                      bool fixed_is_lo, const ColumnRun& run,
                                      uint64_t* alive,
                                      uint64_t* evals) const {
  if (span.begin == span.end || run.size == 0) return;
  const PredInstr* code = code_.data() + span.begin;
  const bool cols_ok =
      span.max_attr < 0 ||
      (run.attrs != nullptr &&
       static_cast<size_t>(span.max_attr) < run.num_attrs);
  if (span.spec != nullptr && cols_ok) {
    span.spec(code, fixed, fixed_is_lo, run, alive, evals);
    return;
  }
  GenericSpanColumns(code, span.end - span.begin, fixed, fixed_is_lo, run,
                     alive, evals);
}

void PredicateProgram::RunSpanColumnsMasked(const Span& span,
                                            const Event* fixed,
                                            bool fixed_is_lo,
                                            const ColumnRun& run,
                                            uint64_t* alive,
                                            uint64_t* evals) const {
  if (span.begin == span.end || run.size == 0) return;
  MaskedSpanColumns(code_.data() + span.begin, span.end - span.begin, fixed,
                    fixed_is_lo, run, alive, evals);
}

void PredicateProgram::EvalPairRun(int i, int j, const Event& ei,
                                   const ColumnRun& run_j, uint64_t* alive,
                                   uint64_t* evals) const {
  if (i < j) {
    RunSpanColumns(PairSpan(i, j), &ei, /*fixed_is_lo=*/true, run_j, alive,
                   evals);
  } else {
    RunSpanColumns(PairSpan(j, i), &ei, /*fixed_is_lo=*/false, run_j, alive,
                   evals);
  }
}

void PredicateProgram::EvalUnaryRun(int i, const ColumnRun& run,
                                    uint64_t* alive, uint64_t* evals) const {
  RunSpanColumns(unary_spans_[i], /*fixed=*/nullptr, /*fixed_is_lo=*/false,
                 run, alive, evals);
}

void PredicateProgram::EvalInstanceRun(int i, int j, const Event& ei,
                                       const ColumnRun& run_j,
                                       uint64_t* alive,
                                       uint64_t* evals) const {
  if (i < j) {
    RunSpanColumnsMasked(PairSpan(i, j), &ei, /*fixed_is_lo=*/true, run_j,
                         alive, evals);
  } else {
    RunSpanColumnsMasked(PairSpan(j, i), &ei, /*fixed_is_lo=*/false, run_j,
                         alive, evals);
  }
}

}  // namespace cepjoin
