#ifndef CEPJOIN_RUNTIME_ENGINE_H_
#define CEPJOIN_RUNTIME_ENGINE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "event/event.h"

namespace cepjoin {

class EngineStateWriter;  // durable/snapshot_codec.h
class EngineStateReader;

/// Resource counters every engine maintains. "Partial matches" are the
/// paper's primary cost quantity (Sec. 3.1); peaks drive the memory
/// metric of the evaluation (Sec. 7.2).
struct EngineCounters {
  uint64_t events_processed = 0;
  uint64_t instances_created = 0;
  uint64_t matches_emitted = 0;
  /// Predicate evaluations executed by the compiled predicate program
  /// (runtime/predicate_program.h) — the measured counterpart of the
  /// cost model's predicate-work estimate.
  uint64_t predicate_evals = 0;
  /// Candidate lanes / 64-lane mask blocks the vectorized instance×
  /// instance combine kernels processed (tree/tree_engine.cc,
  /// CombineWithInstanceRun). Zero on the scalar oracle path, so the
  /// run-at-a-time coverage of a workload is directly observable.
  uint64_t instance_kernel_lanes = 0;
  uint64_t instance_kernel_blocks = 0;
  /// Delta processing (retractions): retraction events consumed, and
  /// previously emitted matches revoked because a contributing event was
  /// retracted. matches_emitted counts gross emissions; the net match
  /// count of a delta stream is matches_emitted - matches_revoked.
  uint64_t retractions_processed = 0;
  uint64_t matches_revoked = 0;

  size_t live_instances = 0;
  size_t peak_live_instances = 0;
  size_t buffered_events = 0;
  size_t peak_buffered_events = 0;
  size_t instance_bytes = 0;
  /// Exact bytes of the window buffers: each buffered event contributes
  /// its row footprint (sizeof(Event) + AttrVec heap spill) plus its
  /// ColumnBuffer mirror share (handle + scalar/attr columns). Engines
  /// pass the per-event value to AddBuffered/RemoveBuffered; because it
  /// is a pure function of the event, add and remove always agree and
  /// the total cannot drift. Replaces the old kApproxBufferedBytes
  /// flat-rate estimate.
  size_t buffered_bytes = 0;
  /// Exact bytes of the columnar instance stores (tree engines mirror
  /// internal-node instances attr-major for the vectorized combine).
  /// Like buffered_bytes the per-instance value is a pure function of
  /// the instance's bound events, so add and remove always agree. Kept
  /// separate from instance_bytes because the mirrors exist only on the
  /// columnar path — the equivalence suites compare instance_bytes
  /// across columnar/scalar runs, and the memory gauges want the total.
  size_t store_bytes = 0;
  size_t peak_total_bytes = 0;

  void AddInstance(size_t bytes) {
    ++instances_created;
    ++live_instances;
    instance_bytes += bytes;
    peak_live_instances = std::max(peak_live_instances, live_instances);
    UpdatePeakBytes();
  }
  void RemoveInstance(size_t bytes) {
    // Saturate instead of wrapping: a remove without a matching add is an
    // accounting bug upstream, but it must not poison every later peak
    // with a wrapped-around size_t. (Engines record the added size on the
    // instance and remove exactly that, so this guard should never fire.)
    if (live_instances > 0) --live_instances;
    instance_bytes -= std::min(instance_bytes, bytes);
  }
  void AddBuffered(size_t bytes) {
    ++buffered_events;
    buffered_bytes += bytes;
    peak_buffered_events = std::max(peak_buffered_events, buffered_events);
    UpdatePeakBytes();
  }
  void RemoveBuffered(size_t bytes) {
    if (buffered_events > 0) --buffered_events;
    buffered_bytes -= std::min(buffered_bytes, bytes);
  }
  void AddStoreBytes(size_t bytes) {
    store_bytes += bytes;
    UpdatePeakBytes();
  }
  void RemoveStoreBytes(size_t bytes) {
    store_bytes -= std::min(store_bytes, bytes);
  }
  void UpdatePeakBytes() {
    peak_total_bytes = std::max(peak_total_bytes, CurrentBytes());
  }
  /// Current exact resident footprint: live partial matches + window
  /// buffers + columnar instance-store mirrors. The value behind the
  /// per-(query, partition) memory gauges.
  size_t CurrentBytes() const {
    return instance_bytes + buffered_bytes + store_bytes;
  }

  /// Merges counters of an engine that saw the SAME stream (DNF
  /// multi-engine aggregation): events_processed is the stream position,
  /// so it takes the max; everything else sums.
  void Merge(const EngineCounters& other);

  /// Merges counters of an engine that processed a DISJOINT sub-stream
  /// (partition/shard aggregation): all totals sum, including
  /// events_processed; live/peak values sum, which is a conservative
  /// (upper-bound) peak for engines that ran concurrently.
  void MergeDisjoint(const EngineCounters& other);
};

/// Abstract CEP evaluation engine: consumes a timestamp-ordered stream,
/// emits matches to a sink.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Processes one arrival. Events must be fed in timestamp order.
  virtual void OnEvent(const EventPtr& e) = 0;

  /// Processes a run of arrivals (timestamp order, same as OnEvent).
  /// Produces exactly the matches and counters of calling OnEvent on each
  /// event; engines override it to amortize per-event overhead (virtual
  /// dispatch, latency clock reads) over the batch. The default is a
  /// per-event loop.
  virtual void OnBatch(const EventPtr* events, size_t n) {
    for (size_t i = 0; i < n; ++i) OnEvent(events[i]);
  }

  /// Signals end-of-stream: flushes matches whose trailing-negation
  /// windows are still open.
  virtual void Finish() = 0;

  /// Serializes the engine's complete mutable state — window buffers,
  /// partial-match instances, pending/emitted match queues, stream
  /// cursors, and counters — into `w` (durable/snapshot_codec.h). An
  /// engine restored from the result via LoadState produces byte-
  /// identical match sequences and counters to one that kept running.
  /// Construction-derived topology (plans, compiled predicates, mirror
  /// configuration) is NOT serialized: restore re-builds the engine from
  /// the same (pattern, plan) first, then loads state into it.
  [[nodiscard]] virtual Status SaveState(EngineStateWriter* w) const {
    (void)w;
    return Status::InvalidArgument("engine does not support state snapshots");
  }

  /// Restores state saved by SaveState into a freshly constructed engine
  /// of the same configuration. FailedPrecondition if this engine has
  /// already processed events or its configuration (plan shape, columnar
  /// mode, selection strategy) disagrees with the snapshot; DataLoss if
  /// the payload is truncated or malformed.
  [[nodiscard]] virtual Status LoadState(EngineStateReader* r) {
    (void)r;
    return Status::InvalidArgument("engine does not support state snapshots");
  }

  const EngineCounters& counters() const { return counters_; }

 protected:
  EngineCounters counters_;
};

inline void EngineCounters::MergeDisjoint(const EngineCounters& other) {
  events_processed += other.events_processed;
  instances_created += other.instances_created;
  matches_emitted += other.matches_emitted;
  predicate_evals += other.predicate_evals;
  instance_kernel_lanes += other.instance_kernel_lanes;
  instance_kernel_blocks += other.instance_kernel_blocks;
  retractions_processed += other.retractions_processed;
  matches_revoked += other.matches_revoked;
  live_instances += other.live_instances;
  peak_live_instances += other.peak_live_instances;
  buffered_events += other.buffered_events;
  peak_buffered_events += other.peak_buffered_events;
  buffered_bytes += other.buffered_bytes;
  store_bytes += other.store_bytes;
  instance_bytes += other.instance_bytes;
  peak_total_bytes += other.peak_total_bytes;
}

inline void EngineCounters::Merge(const EngineCounters& other) {
  // Identical to MergeDisjoint except both engines saw the same stream,
  // so events_processed is a position, not a total.
  uint64_t same_stream = std::max(events_processed, other.events_processed);
  MergeDisjoint(other);
  events_processed = same_stream;
}

}  // namespace cepjoin

#endif  // CEPJOIN_RUNTIME_ENGINE_H_
