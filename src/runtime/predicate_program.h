#ifndef CEPJOIN_RUNTIME_PREDICATE_PROGRAM_H_
#define CEPJOIN_RUNTIME_PREDICATE_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pattern/condition.h"
#include "runtime/column_buffer.h"

namespace cepjoin {

/// Opcode of one lowered predicate instruction. The built-in condition
/// classes lower to dedicated opcodes whose evaluation is a branch-free
/// switch over plain struct fields; everything else (CustomCondition,
/// future user subclasses) falls back to the virtual Condition::Eval.
enum class PredOpCode : uint8_t {
  kAttrCmp,            // CmpApply(cmp, l.attrs[a], r.attrs[b] + operand)
  kAttrThreshold,      // CmpApply(cmp, l.attrs[a], operand)
  kTsOrder,            // l.ts < r.ts
  kSerialAdjacent,     // r.serial == l.serial + 1
  kPartitionAdjacent,  // l.partition != r.partition ||
                       //   r.partition_seq == l.partition_seq + 1
  kVirtual,            // fallback->Eval(l, r)
};

/// One lowered predicate: a 16-byte tagged flat struct, no virtual
/// dispatch and no indirection for the built-in condition kinds. Kept
/// small deliberately — the interpreter walks instruction spans linearly,
/// so instruction size is cache traffic. Attribute ids are narrowed to 16
/// bits; a condition whose attributes do not fit (no realistic schema)
/// lowers to the virtual fallback instead.
struct PredInstr {
  PredOpCode op = PredOpCode::kVirtual;
  /// The condition was registered with left() == the *higher* pattern
  /// position of its pair: evaluate with the two events swapped.
  bool swap = false;
  /// A CmpOp, stored narrow to keep the struct at 16 bytes.
  uint8_t cmp = 0;
  /// CmpMask(cmp), resolved at lowering time so the interpreter ANDs the
  /// comparison class against a pre-loaded byte.
  uint8_t cmp_mask = 0;
  uint16_t left_attr = 0;
  uint16_t right_attr = 0;
  union {
    /// AttrCompare offset or AttrThreshold constant.
    double operand;
    /// Borrowed from the owning program's keepalive list (kVirtual only).
    const Condition* fallback;
  };
  PredInstr() : operand(0.0) {}
};
static_assert(sizeof(PredInstr) == 16, "PredInstr must stay cache-dense");

/// Evaluates one instruction against a bound (l, r) row pair — the shared
/// semantics of the scalar interpreter and the per-lane fallback of the
/// columnar kernels. Callers resolve orientation (swap) first.
inline bool EvalInstrRow(const PredInstr& instr, const Event& l,
                         const Event& r) {
  switch (instr.op) {
    case PredOpCode::kAttrCmp:
      return (instr.cmp_mask &
              CmpClass(l.attrs[instr.left_attr],
                       r.attrs[instr.right_attr] + instr.operand)) != 0;
    case PredOpCode::kAttrThreshold:
      return (instr.cmp_mask &
              CmpClass(l.attrs[instr.left_attr], instr.operand)) != 0;
    case PredOpCode::kTsOrder:
      return l.ts < r.ts;
    case PredOpCode::kSerialAdjacent:
      return r.serial == l.serial + 1;
    case PredOpCode::kPartitionAdjacent:
      return l.partition != r.partition ||
             r.partition_seq == l.partition_seq + 1;
    case PredOpCode::kVirtual:
      return instr.fallback->Eval(l, r);
  }
  return false;
}

/// A template-stamped columnar kernel for one instruction span
/// (predicate_kernels.cc): evaluates the span across a whole candidate
/// run, ANDing verdicts into the survivor bitmask and counting executed
/// predicates with exact scalar-interpreter semantics.
using SpanKernelFn = void (*)(const PredInstr* code, const Event* fixed,
                              bool fixed_is_lo, const ColumnRun& run,
                              uint64_t* alive, uint64_t* evals);

/// A ConditionSet lowered into one flat instruction array with per-bucket
/// spans — the compiled predicate path of the evaluation hot loop. Where
/// ConditionSet::EvalPair pays a virtual Condition::Eval behind two
/// shared_ptr hops per predicate, the program interprets a contiguous
/// opcode array and counts every predicate evaluation into the counter
/// the caller passes (EngineCounters::predicate_evals).
///
/// Verdict equivalence with the virtual path is exact — including the
/// per-condition orientation handling and the CustomCondition fallback —
/// and is enforced by tests/runtime/predicate_program_test.cc.
class PredicateProgram {
 public:
  PredicateProgram() = default;
  explicit PredicateProgram(const ConditionSet& conditions);

  /// True iff every condition between positions i and j accepts
  /// (ei at i, ej at j). Arguments may be given in either orientation,
  /// exactly like ConditionSet::EvalPair. `evals` (may be null) is
  /// incremented once per predicate executed. Defined inline below: this
  /// is the innermost call of the evaluation hot loop.
  bool EvalPair(int i, int j, const Event& ei, const Event& ej,
                uint64_t* evals) const;

  /// True iff every unary condition on position i accepts e.
  bool EvalUnary(int i, const Event& e, uint64_t* evals) const;

  /// Batched counterpart of EvalPair: evaluates every condition between
  /// positions i and j with `ei` bound at i and each live lane of `run_j`
  /// bound at j. Verdicts AND into `alive` (LaneMask layout, one bit per
  /// lane); lanes already dead are neither evaluated nor counted. `evals`
  /// counts exactly what per-lane EvalPair calls would have: each lane
  /// executes instructions until its first failure, inclusive.
  void EvalPairRun(int i, int j, const Event& ei, const ColumnRun& run_j,
                   uint64_t* alive, uint64_t* evals) const;

  /// Batched counterpart of EvalUnary over every live lane of `run`.
  void EvalUnaryRun(int i, const ColumnRun& run, uint64_t* alive,
                    uint64_t* evals) const;

  /// EvalPairRun against a sibling node's *instance* column run (an
  /// InstanceStore position column rather than a leaf window buffer).
  /// Semantics and predicate_evals accounting are identical; the driver
  /// differs: instance runs arrive pre-thinned by the window-overlap
  /// gate and earlier cross-pair spans, so the kernel adds a masked
  /// sub-block early-out that skips dead 8-lane groups below the 64-lane
  /// block instead of the leaf path's stamped full-block kernels.
  void EvalInstanceRun(int i, int j, const Event& ei, const ColumnRun& run_j,
                       uint64_t* alive, uint64_t* evals) const;

  int num_positions() const { return n_; }
  size_t num_instructions() const { return code_.size(); }
  /// Instructions that trampoline to the virtual Condition::Eval.
  size_t num_fallbacks() const { return keepalive_.size(); }

  /// One line per instruction; used by tests and plan explainers.
  std::string Disassemble() const;

 private:
  struct Span {
    uint32_t begin = 0;
    uint32_t end = 0;
    /// Largest attribute id the span reads (-1 if none): the columnar
    /// path touches attr columns only when the run's schema covers it,
    /// otherwise it degrades to the per-lane row fallback.
    int32_t max_attr = -1;
    /// Stamped at lowering time for the dominant 1–3 instruction spans of
    /// vectorizable opcodes (the "JIT-style" specialization): a direct
    /// kernel with the instruction dispatch resolved at compile time.
    /// Null spans run the generic instruction-major column loop.
    SpanKernelFn spec = nullptr;
  };

  const Span& PairSpan(int lo, int hi) const {
    return pair_spans_[static_cast<size_t>(lo) * n_ + hi];
  }

  /// Out-of-line by design: one compact, shared copy of the interpreter
  /// loop predicts and caches better than a copy inlined into every
  /// engine call site (measured; see bench_micro predicate benchmarks).
  /// The inline EvalPair/EvalUnary wrappers keep the empty-span fast
  /// path — the common case when engines probe every position pair — at
  /// two loads and a branch.
  bool RunSpan(const Span& span, const Event& lo_event,
               const Event& hi_event, uint64_t* evals) const;

  /// Columnar span driver (predicate_kernels.cc): dispatches to the
  /// span's stamped kernel when its attribute footprint fits the run's
  /// columns, else the generic instruction-major loop.
  void RunSpanColumns(const Span& span, const Event* fixed, bool fixed_is_lo,
                      const ColumnRun& run, uint64_t* alive,
                      uint64_t* evals) const;

  /// Masked variant (predicate_kernels.cc): the generic instruction-major
  /// loop with an 8-lane-group early-out inside partially-dead blocks;
  /// the EvalInstanceRun driver.
  void RunSpanColumnsMasked(const Span& span, const Event* fixed,
                            bool fixed_is_lo, const ColumnRun& run,
                            uint64_t* alive, uint64_t* evals) const;

  /// Computes max_attr and selects spec kernels for every span; called
  /// once at the end of lowering (predicate_kernels.cc).
  void AnnotateSpans();

  int n_ = 0;
  std::vector<Span> pair_spans_;   // (lo, hi) with lo < hi at lo * n_ + hi
  std::vector<Span> unary_spans_;  // by position
  std::vector<PredInstr> code_;
  /// Shares ownership of the conditions kVirtual instructions point at,
  /// so a program outlives or is copied independently of its source set.
  std::vector<ConditionPtr> keepalive_;
};

inline bool PredicateProgram::EvalPair(int i, int j, const Event& ei,
                                       const Event& ej,
                                       uint64_t* evals) const {
  const Span* span;
  const Event* lo = &ei;
  const Event* hi = &ej;
  if (i < j) {
    span = &PairSpan(i, j);
  } else {
    span = &PairSpan(j, i);
    lo = &ej;
    hi = &ei;
  }
  if (span->begin == span->end) return true;
  return RunSpan(*span, *lo, *hi, evals);
}

inline bool PredicateProgram::EvalUnary(int i, const Event& e,
                                        uint64_t* evals) const {
  const Span& span = unary_spans_[i];
  if (span.begin == span.end) return true;
  return RunSpan(span, e, e, evals);
}

}  // namespace cepjoin

#endif  // CEPJOIN_RUNTIME_PREDICATE_PROGRAM_H_
