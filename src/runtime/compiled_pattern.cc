#include "runtime/compiled_pattern.h"

#include <algorithm>

#include "common/check.h"
#include "pattern/rewrite.h"

namespace cepjoin {

namespace {

// At runtime contiguity predicates are exact; the declared selectivity is
// a planning-only concern and is irrelevant here.
constexpr double kRuntimeAdjacencySelectivity = 1.0;

}  // namespace

CompiledPattern::CompiledPattern(const SimplePattern& pattern)
    : original_(pattern),
      rewritten_(RewriteForPlanning(pattern, kRuntimeAdjacencySelectivity)),
      conditions_(rewritten_.size(), rewritten_.conditions()),
      program_(conditions_) {
  int n = original_.size();
  pos_to_slot_.assign(n, -1);
  for (int pos : original_.positive_positions()) {
    pos_to_slot_[pos] = static_cast<int>(slot_to_pos_.size());
    slot_to_pos_.push_back(pos);
    if (original_.events()[pos].kleene) {
      kleene_slot_ = pos_to_slot_[pos];
    }
  }
  for (int pos = 0; pos < n; ++pos) {
    positions_of_type_[original_.events()[pos].type].push_back(pos);
  }

  // Compile negation checks.
  for (int np : original_.negated_positions()) {
    NegationSpec neg;
    neg.neg_pos = np;
    if (original_.op() == OperatorKind::kSeq) {
      for (int pos : original_.positive_positions()) {
        if (pos < np) neg.prev_pos = pos;  // positions ascend; last wins
        if (pos > np && neg.next_pos < 0) neg.next_pos = pos;
      }
    }
    std::vector<int> deps;
    if (neg.prev_pos >= 0) deps.push_back(neg.prev_pos);
    if (neg.next_pos >= 0) deps.push_back(neg.next_pos);
    // User-condition partners (original conditions only; the rewrite's
    // TsOrder closure is implied by the prev/next guards).
    for (const ConditionPtr& c : original_.conditions()) {
      int other = -1;
      if (c->left() == np && c->right() != np) other = c->right();
      if (c->right() == np && c->left() != np) other = c->left();
      if (other >= 0 && pos_to_slot_[other] >= 0) deps.push_back(other);
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    neg.dep_positions = std::move(deps);
    if (original_.op() == OperatorKind::kSeq) {
      neg.trailing = neg.next_pos < 0;
      neg.leading_bounded = neg.prev_pos < 0;
    } else {
      // AND: the negated event must be absent from the whole window
      // containing the match — both edges are window-bounded and future
      // candidates can still kill the match.
      neg.trailing = true;
      neg.leading_bounded = true;
    }
    has_trailing_negation_ = has_trailing_negation_ || neg.trailing;
    negations_.push_back(std::move(neg));
  }
}

const std::vector<int>& CompiledPattern::positions_of_type(
    TypeId type) const {
  static const std::vector<int> kEmpty;
  auto it = positions_of_type_.find(type);
  return it == positions_of_type_.end() ? kEmpty : it->second;
}

bool CompiledPattern::NegationViolates(const NegationSpec& neg,
                                       const Event& candidate,
                                       const BoundAccessor& bound,
                                       Timestamp min_ts, Timestamp max_ts,
                                       uint64_t* predicate_evals) const {
  Timestamp w = window();
  // Window-edge bounds: a candidate can only kill the match if it could
  // belong to the same window as every match event.
  if (neg.leading_bounded && candidate.ts < max_ts - w) return false;
  if (neg.trailing && candidate.ts > min_ts + w) return false;
  // Temporal guards and user conditions versus each dependency.
  for (int dep : neg.dep_positions) {
    bool all_ok = true;
    bool saw_bound = false;
    bound.ForEach(dep, [&](const Event& e) {
      saw_bound = true;
      if (!all_ok) return;
      if (!program_.EvalPair(dep, neg.neg_pos, e, candidate,
                             predicate_evals)) {
        all_ok = false;
      }
    });
    CEPJOIN_CHECK(saw_bound)
        << "negation check fired before dependency position " << dep
        << " was bound";
    if (!all_ok) return false;
  }
  return true;
}

}  // namespace cepjoin
