#include "runtime/instance_store.h"

#include <utility>

#include "common/check.h"

namespace cepjoin {

void InstanceStore::Configure(std::vector<InstanceStoreColumn> columns) {
  CEPJOIN_CHECK(!configured_) << "InstanceStore configured twice";
  CEPJOIN_CHECK(empty()) << "Configure must precede the first Append";
  columns_ = std::move(columns);
  buffers_.resize(columns_.size());
  configured_ = true;
}

void InstanceStore::Append(Timestamp min_ts, Timestamp max_ts,
                           const std::vector<EventPtr>& by_slot) {
  CEPJOIN_CHECK(configured_);
  min_ts_.push_back(min_ts);
  max_ts_.push_back(max_ts);
  for (size_t c = 0; c < columns_.size(); ++c) {
    const EventPtr& e = by_slot[columns_[c].slot];
    CEPJOIN_CHECK(e != nullptr)
        << "instance bound no event at mirrored slot " << columns_[c].slot;
    buffers_[c].Append(e);
  }
}

void InstanceStore::Filter(const std::vector<uint8_t>& keep) {
  CEPJOIN_CHECK_EQ(keep.size(), size());
  size_t out = 0;
  for (size_t i = 0; i < keep.size(); ++i) {
    if (!keep[i]) continue;
    size_t dst = out++;
    if (dst == i) continue;
    min_ts_[dst] = min_ts_[i];
    max_ts_[dst] = max_ts_[i];
  }
  min_ts_.resize(out);
  max_ts_.resize(out);
  for (ColumnBuffer& buffer : buffers_) buffer.Filter(keep);
}

ColumnRun InstanceStore::RunFor(int key) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].key == key) return buffers_[c].Run();
  }
  CEPJOIN_CHECK(false) << "no instance-store column for key " << key;
  return {};
}

size_t InstanceStore::RowMirrorBytes(
    const std::vector<EventPtr>& by_slot) const {
  size_t bytes = 2 * sizeof(Timestamp);  // the extent lanes
  for (size_t c = 0; c < columns_.size(); ++c) {
    bytes += buffers_[c].RowMirrorBytes(*by_slot[columns_[c].slot]);
  }
  return bytes;
}

}  // namespace cepjoin
