#ifndef CEPJOIN_RUNTIME_COLUMN_BUFFER_H_
#define CEPJOIN_RUNTIME_COLUMN_BUFFER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "event/event.h"

namespace cepjoin {

/// Borrowed struct-of-arrays view over a contiguous run of buffered
/// events — the unit the vectorized predicate kernels consume. One lane
/// per event; every column pointer addresses lane 0 and is valid for
/// `size` elements. `attrs` may be null (irregular buffer or no events
/// yet): kernels then fall back to the row handles in `events`, which are
/// always present.
struct ColumnRun {
  size_t size = 0;
  const Timestamp* ts = nullptr;
  const EventSerial* serial = nullptr;
  const uint32_t* partition = nullptr;
  const EventSerial* partition_seq = nullptr;
  /// attrs[a] is the contiguous column of attribute a, a < num_attrs.
  const double* const* attrs = nullptr;
  size_t num_attrs = 0;
  /// Row handles, parallel to the columns (virtual-fallback predicates
  /// and survivor materialization).
  const EventPtr* events = nullptr;
};

/// Process-wide kill switch for the columnar kernels. Engines capture it
/// at construction; the equivalence suites toggle it to pit the
/// vectorized path against the scalar interpreter oracle on identical
/// inputs, and operators can flip it to triage a suspected kernel bug.
bool ColumnarKernelsEnabled();
void SetColumnarKernelsEnabled(bool enabled);

/// A window buffer position stored attr-major: the engines' per-position
/// FIFO of window events (NfaEngine::buffers_, TreeEngine negation
/// buffers and leaf mirrors), mirrored into one contiguous column per
/// scalar field and per attribute. Appends at the back, evicts at the
/// front (sliding window), compacts amortized-O(1). Row handles
/// (EventPtr) are kept alongside, so the buffer fully replaces the old
/// std::deque<EventPtr> — same iteration interface, plus Run() for the
/// kernels.
///
/// The attribute schema is latched from the first appended event (a
/// position's buffer only ever holds one event type). If an event with a
/// different attribute count ever shows up, the buffer degrades to
/// irregular: attr columns are dropped from Run() and kernels use the
/// per-lane fallback, preserving scalar semantics exactly.
class ColumnBuffer {
 public:
  ColumnBuffer() = default;

  /// Buffers that will only ever be iterated row-wise — negation
  /// buffers, and every buffer of an engine whose columnar path is off
  /// (kill switch, skip-till-next) — skip the column mirrors entirely;
  /// Run() is then forbidden. Call before the first Append.
  void DisableColumns() { columns_enabled_ = false; }
  bool columns_enabled() const { return columns_enabled_; }

  void Append(const EventPtr& e);
  /// Evicts the oldest event. The row handle is released immediately so
  /// arena blocks drain with the window, not at compaction time.
  void PopFront();
  /// Keeps exactly the rows with keep[i] != 0 (i in live-range order);
  /// used by TreeEngine::Sweep to compact a leaf mirror in lockstep with
  /// its instance list. keep.size() must equal size().
  void Filter(const std::vector<uint8_t>& keep);

  size_t size() const { return events_.size() - begin_; }
  bool empty() const { return begin_ == events_.size(); }
  const EventPtr& operator[](size_t i) const { return events_[begin_ + i]; }
  const EventPtr& front() const { return events_[begin_]; }

  /// Columnar view of the live range. Pointers are invalidated by any
  /// mutation (Append/PopFront/Filter).
  ColumnRun Run() const;

  /// False once an appended event contradicted the latched schema.
  bool regular() const { return regular_; }
  int num_attrs() const { return num_attrs_; }

  /// Total rows moved by front-eviction compactions over this buffer's
  /// lifetime. The compaction threshold is maintained as a member
  /// invariant (compact_at_ >= live rows), so every compaction's copy
  /// count is covered by the evictions since the previous one: evicting
  /// N rows costs O(N) copies total, which the regression test in
  /// tests/runtime/instance_store_test.cc pins down.
  uint64_t compaction_copies() const { return compaction_copies_; }

  /// Exact bytes this buffer's storage grows by when `e` is appended
  /// (and shrinks by when it is evicted): the row handle, plus — with
  /// column mirrors on — one lane in each scalar column and in each of
  /// the event's attribute columns. A pure function of the event and the
  /// buffer mode, so append-side and evict-side accounting always agree.
  /// Amortized-growth slack (vector capacity, compaction headroom) is
  /// deliberately excluded.
  size_t RowMirrorBytes(const Event& e) const {
    size_t bytes = sizeof(EventPtr);
    if (!columns_enabled_) return bytes;
    return bytes + sizeof(Timestamp) + 2 * sizeof(EventSerial) +
           sizeof(uint32_t) + e.attrs.size() * sizeof(double);
  }

 private:
  /// Dead prefixes shorter than this never trigger a compaction, so
  /// small buffers are not compacted on every pop.
  static constexpr size_t kMinCompactPrefix = 64;

  void MaybeCompact();
  /// Re-arms the compaction trigger after a structural change: fire once
  /// the dead prefix reaches max(kMinCompactPrefix, live rows), which
  /// keeps copies-per-compaction <= evictions-since-last-compaction.
  void ResetCompactionThreshold() {
    compact_at_ = std::max(kMinCompactPrefix, size());
  }

  size_t begin_ = 0;
  size_t compact_at_ = kMinCompactPrefix;
  uint64_t compaction_copies_ = 0;
  std::vector<EventPtr> events_;
  std::vector<Timestamp> ts_;
  std::vector<EventSerial> serials_;
  std::vector<uint32_t> partitions_;
  std::vector<EventSerial> partition_seqs_;
  std::vector<std::vector<double>> attr_cols_;
  mutable std::vector<const double*> attr_ptrs_;  // rebuilt by Run()
  int num_attrs_ = -1;  // -1: schema not latched yet
  bool regular_ = true;
  bool columns_enabled_ = true;
};

/// Exact per-event window-buffer footprint: the event row itself
/// (inline struct + AttrVec heap spill, its arena-block share) plus the
/// buffer's mirror bytes for it. The engines feed this to
/// EngineCounters::AddBuffered/RemoveBuffered.
inline size_t BufferedEventBytes(const ColumnBuffer& buffer, const Event& e) {
  return ApproxEventBytes(e) + buffer.RowMirrorBytes(e);
}

/// Fixed-size-friendly survivor bitmask over a candidate run: up to
/// kInlineWords * 64 lanes live on the caller's stack, longer runs spill
/// to the heap. Word w bit b covers lane w * 64 + b; trailing bits past
/// the lane count start (and must stay) zero, so popcount-based eval
/// counting never overcounts.
class LaneMask {
 public:
  explicit LaneMask(size_t lanes)
      : lanes_(lanes), words_((lanes + 63) / 64) {
    data_ = words_ <= kInlineWords
                ? stack_
                : (heap_.resize(words_), heap_.data());
    for (size_t w = 0; w < words_; ++w) data_[w] = ~uint64_t{0};
    if (lanes % 64 != 0 && words_ > 0) {
      data_[words_ - 1] = ~uint64_t{0} >> (64 - lanes % 64);
    }
  }

  // data_ points into this object (stack_ or heap_): copying would alias
  // and then dangle.
  LaneMask(const LaneMask&) = delete;
  LaneMask& operator=(const LaneMask&) = delete;

  uint64_t* words() { return data_; }
  const uint64_t* words() const { return data_; }
  size_t num_lanes() const { return lanes_; }
  bool Alive(size_t lane) const {
    return (data_[lane / 64] >> (lane % 64)) & 1;
  }

  bool AnyAlive() const {
    for (size_t w = 0; w < words_; ++w) {
      if (data_[w] != 0) return true;
    }
    return false;
  }

  /// Invokes fn(lane) for each surviving lane in ascending order.
  template <class Fn>
  void ForEachAlive(Fn&& fn) const {
    for (size_t w = 0; w < words_; ++w) {
      uint64_t bits = data_[w];
      while (bits != 0) {
        int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        fn(w * 64 + static_cast<size_t>(b));
      }
    }
  }

 private:
  static constexpr size_t kInlineWords = 8;  // 512 lanes without a heap trip

  size_t lanes_;
  size_t words_;
  uint64_t stack_[kInlineWords];
  std::vector<uint64_t> heap_;
  uint64_t* data_;
};

/// Clears lanes whose timestamp would stretch the window span
/// [min(min_ts, lane.ts), max(max_ts, lane.ts)] beyond `window` — the
/// engines' window-feasibility gate, vectorized. No predicate counting:
/// the scalar paths check the window before any predicate runs.
inline void WindowMaskLanes(Timestamp min_ts, Timestamp max_ts,
                            Timestamp window, const ColumnRun& run,
                            uint64_t* alive) {
  size_t words = (run.size + 63) / 64;
  for (size_t w = 0; w < words; ++w) {
    if (alive[w] == 0) continue;
    size_t lane0 = w * 64;
    size_t n = run.size - lane0 < 64 ? run.size - lane0 : 64;
    uint64_t keep = 0;
    const Timestamp* ts = run.ts + lane0;
    for (size_t k = 0; k < n; ++k) {
      Timestamp lo = ts[k] < min_ts ? ts[k] : min_ts;
      Timestamp hi = ts[k] > max_ts ? ts[k] : max_ts;
      keep |= static_cast<uint64_t>(hi - lo <= window) << k;
    }
    alive[w] &= keep;
  }
}

/// Clears any lane whose row handle is exactly `used` — the vectorized
/// form of the engines' no-event-fills-two-slots check (pointer identity,
/// same as the scalar path).
inline void ClearLanesOf(const ColumnRun& run, const Event* used,
                         uint64_t* alive) {
  size_t words = (run.size + 63) / 64;
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = alive[w];
    while (bits != 0) {
      int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      size_t lane = w * 64 + static_cast<size_t>(b);
      if (run.events[lane].get() == used) {
        alive[w] &= ~(uint64_t{1} << b);
      }
    }
  }
}

}  // namespace cepjoin

#endif  // CEPJOIN_RUNTIME_COLUMN_BUFFER_H_
