#ifndef CEPJOIN_RUNTIME_INSTANCE_STORE_H_
#define CEPJOIN_RUNTIME_INSTANCE_STORE_H_

#include <cstddef>
#include <vector>

#include "event/event.h"
#include "runtime/column_buffer.h"

namespace cepjoin {

/// One column of an InstanceStore: the anchor events a caller-chosen
/// pattern position (`key`) binds, taken from each appended instance's
/// by-slot vector at index `slot`.
struct InstanceStoreColumn {
  int key = 0;
  int slot = 0;
};

/// Columnar mirror of one tree node's buffered partial-match instances:
/// the (min_ts, max_ts) window extents as two contiguous timestamp
/// columns, plus one attr-major ColumnBuffer per pattern position the
/// node's parent cross-pair predicates read on this side — the probe-side
/// runs of the vectorized instance×instance combine. Lane k always
/// describes the k-th live instance of the owning buffer: appends and
/// Filter() run in lockstep with it, exactly like the leaf mirrors.
///
/// Each per-position ColumnBuffer keeps its row handles (EventPtr), so
/// virtual-fallback predicates and irregular schemas degrade to the
/// per-lane row path with scalar semantics preserved; the store itself
/// never stores rows of the *instances* — survivors are materialized by
/// lane index into the owning buffer.
class InstanceStore {
 public:
  /// Fixes the mirrored columns. Call once, before the first Append.
  void Configure(std::vector<InstanceStoreColumn> columns);
  bool configured() const { return configured_; }
  size_t num_columns() const { return columns_.size(); }

  /// Appends one instance: its window extent and, per configured column,
  /// its bound event at that column's slot (must be non-null).
  void Append(Timestamp min_ts, Timestamp max_ts,
              const std::vector<EventPtr>& by_slot);

  /// Keeps exactly the lanes with keep[i] != 0; lockstep counterpart of
  /// the owning buffer's compaction (TreeEngine::Sweep).
  void Filter(const std::vector<uint8_t>& keep);

  size_t size() const { return min_ts_.size(); }
  bool empty() const { return min_ts_.empty(); }

  /// Per-lane window extents, valid for size() lanes. Invalidated by any
  /// mutation, like ColumnBuffer::Run().
  const Timestamp* min_ts() const { return min_ts_.data(); }
  const Timestamp* max_ts() const { return max_ts_.data(); }

  /// The column run of the position registered under `key`; aborts if no
  /// column was configured for it (the caller's eligibility analysis and
  /// this store must agree).
  ColumnRun RunFor(int key) const;

  /// Exact bytes this store grows by when an instance with `by_slot` is
  /// appended (and shrinks by when it is filtered out): two extent lanes
  /// plus each column buffer's row-mirror share. A pure function of the
  /// instance's bound events, so append- and evict-side accounting
  /// always agree (EngineCounters::AddStoreBytes/RemoveStoreBytes).
  size_t RowMirrorBytes(const std::vector<EventPtr>& by_slot) const;

 private:
  bool configured_ = false;
  std::vector<InstanceStoreColumn> columns_;
  std::vector<ColumnBuffer> buffers_;  // parallel to columns_
  std::vector<Timestamp> min_ts_;
  std::vector<Timestamp> max_ts_;
};

/// Clears lanes whose joint window span [min(min_ts, lane_min[k]),
/// max(max_ts, lane_max[k])] exceeds `window` — the instance×instance
/// window-feasibility gate, vectorized over the store's extent columns.
/// No predicate counting: the scalar combine checks the window before
/// any predicate runs.
inline void WindowMaskInstanceLanes(Timestamp min_ts, Timestamp max_ts,
                                    Timestamp window,
                                    const Timestamp* lane_min,
                                    const Timestamp* lane_max, size_t size,
                                    uint64_t* alive) {
  size_t words = (size + 63) / 64;
  for (size_t w = 0; w < words; ++w) {
    if (alive[w] == 0) continue;
    size_t lane0 = w * 64;
    size_t n = size - lane0 < 64 ? size - lane0 : 64;
    uint64_t keep = 0;
    const Timestamp* lmin = lane_min + lane0;
    const Timestamp* lmax = lane_max + lane0;
    for (size_t k = 0; k < n; ++k) {
      Timestamp lo = lmin[k] < min_ts ? lmin[k] : min_ts;
      Timestamp hi = lmax[k] > max_ts ? lmax[k] : max_ts;
      keep |= static_cast<uint64_t>(hi - lo <= window) << k;
    }
    alive[w] &= keep;
  }
}

}  // namespace cepjoin

#endif  // CEPJOIN_RUNTIME_INSTANCE_STORE_H_
