#include "runtime/match.h"

#include <algorithm>
#include <sstream>

namespace cepjoin {

std::string Match::Fingerprint() const {
  std::ostringstream os;
  for (size_t p = 0; p < slots.size(); ++p) {
    os << p << ":";
    std::vector<EventSerial> serials;
    serials.reserve(slots[p].size());
    for (const EventPtr& e : slots[p]) serials.push_back(e->serial);
    std::sort(serials.begin(), serials.end());
    for (EventSerial s : serials) os << s << ",";
    os << ";";
  }
  return os.str();
}

std::vector<std::string> CollectingSink::Fingerprints() const {
  std::vector<std::string> out;
  out.reserve(matches.size());
  for (const Match& m : matches) out.push_back(m.Fingerprint());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cepjoin
