#ifndef CEPJOIN_RUNTIME_COMPILED_PATTERN_H_
#define CEPJOIN_RUNTIME_COMPILED_PATTERN_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "pattern/pattern.h"
#include "runtime/predicate_program.h"

namespace cepjoin {

/// One negated slot's runtime check (Sec. 5.3): the appearance of a
/// matching negated event invalidates (partial) matches. The check fires
/// at the earliest point where all `dep_positions` are bound.
struct NegationSpec {
  /// Pattern position of the negated slot.
  int neg_pos = -1;
  /// Nearest preceding / following positive position in SEQ patterns
  /// (-1 when absent or for AND patterns).
  int prev_pos = -1;
  int next_pos = -1;
  /// Positive pattern positions whose events the check needs: prev/next
  /// temporal guards plus user-condition partners.
  std::vector<int> dep_positions;
  /// True when candidates later than every match event can still kill the
  /// match (SEQ with no following positive, or AND): emission must be
  /// deferred until the window closes.
  bool trailing = false;
  /// True when the candidate interval's lower bound is the window edge
  /// (match.max_ts − W) rather than a preceding positive's timestamp.
  bool leading_bounded = false;
};

/// Read access to the events an engine has bound to pattern positions;
/// adapters are provided by each engine's instance layout. Kleene slots
/// may bind several events.
class BoundAccessor {
 public:
  virtual ~BoundAccessor() = default;
  /// Invokes fn for each event bound at `pos`; no-op if unbound.
  virtual void ForEach(int pos,
                       const std::function<void(const Event&)>& fn) const = 0;
};

/// Pattern form shared by the NFA and tree engines: the SEQ→AND rewrite
/// applied (all temporal constraints explicit as conditions), contiguity
/// predicates materialized, negated slots compiled into NegationSpecs,
/// and lookup tables for types and slots.
///
/// "Slots" index the positive events 0..m−1 in pattern order — the
/// domain of evaluation plans; "positions" index all pattern events.
class CompiledPattern {
 public:
  explicit CompiledPattern(const SimplePattern& pattern);

  const SimplePattern& original() const { return original_; }
  OperatorKind op() const { return original_.op(); }
  Timestamp window() const { return original_.window(); }
  SelectionStrategy strategy() const { return original_.strategy(); }
  bool delta_input() const { return original_.delta_input(); }

  int num_positions() const { return original_.size(); }
  int num_slots() const { return static_cast<int>(slot_to_pos_.size()); }
  int slot_to_pos(int slot) const { return slot_to_pos_[slot]; }
  /// -1 for negated positions.
  int pos_to_slot(int pos) const { return pos_to_slot_[pos]; }
  TypeId pos_type(int pos) const { return original_.events()[pos].type; }
  bool pos_kleene(int pos) const { return original_.events()[pos].kleene; }
  /// Slot index of the Kleene slot, or -1.
  int kleene_slot() const { return kleene_slot_; }

  /// Rewritten conditions over pattern positions (includes TsOrder closure
  /// for SEQ and contiguity predicates).
  const ConditionSet& conditions() const { return conditions_; }

  /// The conditions lowered into a flat, devirtualized opcode array — the
  /// evaluation path engines use on the hot loop. Verdict-equivalent to
  /// conditions() by construction.
  const PredicateProgram& program() const { return program_; }

  const std::vector<NegationSpec>& negations() const { return negations_; }
  bool has_trailing_negation() const { return has_trailing_negation_; }

  /// Pattern positions (positive and negated) accepting events of `type`.
  const std::vector<int>& positions_of_type(TypeId type) const;

  /// True if `candidate` (an event of the negated slot's type that already
  /// passed its unary filter) invalidates a match whose bound events are
  /// exposed by `bound`. `min_ts`/`max_ts` are the match's current extent
  /// (used for the window-edge bounds of leading/trailing checks).
  /// All dep positions must be bound. `predicate_evals` (may be null) is
  /// incremented per predicate executed against the candidate.
  bool NegationViolates(const NegationSpec& neg, const Event& candidate,
                        const BoundAccessor& bound, Timestamp min_ts,
                        Timestamp max_ts,
                        uint64_t* predicate_evals = nullptr) const;

 private:
  SimplePattern original_;
  SimplePattern rewritten_;
  ConditionSet conditions_;
  PredicateProgram program_;
  std::vector<int> slot_to_pos_;
  std::vector<int> pos_to_slot_;
  int kleene_slot_ = -1;
  std::vector<NegationSpec> negations_;
  bool has_trailing_negation_ = false;
  std::unordered_map<TypeId, std::vector<int>> positions_of_type_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_RUNTIME_COMPILED_PATTERN_H_
