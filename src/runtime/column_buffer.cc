#include "runtime/column_buffer.h"

#include <atomic>

#include "common/check.h"

namespace cepjoin {

namespace {
std::atomic<bool> g_columnar_enabled{true};
}  // namespace

bool ColumnarKernelsEnabled() {
  return g_columnar_enabled.load(std::memory_order_relaxed);
}

void SetColumnarKernelsEnabled(bool enabled) {
  g_columnar_enabled.store(enabled, std::memory_order_relaxed);
}

void ColumnBuffer::Append(const EventPtr& e) {
  CEPJOIN_CHECK(e != nullptr);
  if (!columns_enabled_) {
    events_.push_back(e);
    if (size() > compact_at_) compact_at_ = size();
    return;
  }
  if (num_attrs_ < 0) {
    num_attrs_ = static_cast<int>(e->attrs.size());
    attr_cols_.resize(num_attrs_);
  } else if (regular_ &&
             e->attrs.size() != static_cast<size_t>(num_attrs_)) {
    // Schema contradiction: drop the attr columns for good; the scalar
    // per-lane fallback keeps verdicts exact.
    regular_ = false;
    attr_cols_.clear();
  }
  events_.push_back(e);
  ts_.push_back(e->ts);
  serials_.push_back(e->serial);
  partitions_.push_back(e->partition);
  partition_seqs_.push_back(e->partition_seq);
  if (regular_) {
    for (int a = 0; a < num_attrs_; ++a) {
      attr_cols_[a].push_back(e->attrs[a]);
    }
  }
  // Keep the member threshold covering the live range, so the copies of
  // the next compaction are amortized against the pops that armed it.
  if (size() > compact_at_) compact_at_ = size();
}

void ColumnBuffer::PopFront() {
  CEPJOIN_CHECK(!empty());
  events_[begin_].reset();  // release the arena block reference now
  ++begin_;
  MaybeCompact();
}

void ColumnBuffer::Filter(const std::vector<uint8_t>& keep) {
  CEPJOIN_CHECK_EQ(keep.size(), size());
  size_t out = 0;
  for (size_t i = 0; i < keep.size(); ++i) {
    if (!keep[i]) continue;
    size_t src = begin_ + i;
    size_t dst = out++;
    if (dst == src) continue;
    events_[dst] = std::move(events_[src]);
    if (!columns_enabled_) continue;
    ts_[dst] = ts_[src];
    serials_[dst] = serials_[src];
    partitions_[dst] = partitions_[src];
    partition_seqs_[dst] = partition_seqs_[src];
    for (auto& col : attr_cols_) col[dst] = col[src];
  }
  begin_ = 0;
  events_.resize(out);
  ResetCompactionThreshold();
  if (!columns_enabled_) return;
  ts_.resize(out);
  serials_.resize(out);
  partitions_.resize(out);
  partition_seqs_.resize(out);
  for (auto& col : attr_cols_) col.resize(out);
}

ColumnRun ColumnBuffer::Run() const {
  CEPJOIN_CHECK(columns_enabled_)
      << "Run() on a rows-only buffer (DisableColumns was called)";
  ColumnRun run;
  run.size = size();
  if (run.size == 0) return run;
  run.ts = ts_.data() + begin_;
  run.serial = serials_.data() + begin_;
  run.partition = partitions_.data() + begin_;
  run.partition_seq = partition_seqs_.data() + begin_;
  run.events = events_.data() + begin_;
  if (regular_ && num_attrs_ > 0) {
    attr_ptrs_.resize(num_attrs_);
    for (int a = 0; a < num_attrs_; ++a) {
      attr_ptrs_[a] = attr_cols_[a].data() + begin_;
    }
    run.attrs = attr_ptrs_.data();
    run.num_attrs = static_cast<size_t>(num_attrs_);
  }
  return run;
}

void ColumnBuffer::MaybeCompact() {
  // Amortized-O(1) front eviction: slide the live range down once the
  // dead prefix reaches the member threshold. The threshold is re-armed
  // to max(kMinCompactPrefix, live) after every compaction and only ever
  // raised (to the live count) between them, so at compaction time
  // copies == live <= compact_at_ <= begin_ == pops since the last
  // compaction: evicting N rows costs O(N) copies total, regardless of
  // how the pops are bursted.
  if (begin_ < compact_at_) return;
  size_t live = size();
  compaction_copies_ += live;
  for (size_t i = 0; i < live; ++i) {
    events_[i] = std::move(events_[begin_ + i]);
    if (!columns_enabled_) continue;
    ts_[i] = ts_[begin_ + i];
    serials_[i] = serials_[begin_ + i];
    partitions_[i] = partitions_[begin_ + i];
    partition_seqs_[i] = partition_seqs_[begin_ + i];
    for (auto& col : attr_cols_) col[i] = col[begin_ + i];
  }
  begin_ = 0;
  events_.resize(live);
  ResetCompactionThreshold();
  if (!columns_enabled_) return;
  ts_.resize(live);
  serials_.resize(live);
  partitions_.resize(live);
  partition_seqs_.resize(live);
  for (auto& col : attr_cols_) col.resize(live);
}

}  // namespace cepjoin
