#include "runtime/predicate_program.h"

#include <sstream>

#include "common/check.h"

namespace cepjoin {

namespace {

constexpr AttrId kMaxNarrowAttr = 0xffff;

/// Lowers one condition. `swap` is decided by the caller (orientation
/// within the bucket); everything else comes from the concrete class.
PredInstr Lower(const Condition& c) {
  PredInstr instr;
  if (const auto* attr_cmp = dynamic_cast<const AttrCompare*>(&c)) {
    if (attr_cmp->left_attr() <= kMaxNarrowAttr &&
        attr_cmp->right_attr() <= kMaxNarrowAttr) {
      instr.op = PredOpCode::kAttrCmp;
      instr.cmp = static_cast<uint8_t>(attr_cmp->op());
      instr.cmp_mask = static_cast<uint8_t>(CmpMask(attr_cmp->op()));
      instr.left_attr = static_cast<uint16_t>(attr_cmp->left_attr());
      instr.right_attr = static_cast<uint16_t>(attr_cmp->right_attr());
      instr.operand = attr_cmp->offset();
      return instr;
    }
  } else if (const auto* threshold = dynamic_cast<const AttrThreshold*>(&c)) {
    if (threshold->attr() <= kMaxNarrowAttr) {
      instr.op = PredOpCode::kAttrThreshold;
      instr.cmp = static_cast<uint8_t>(threshold->op());
      instr.cmp_mask = static_cast<uint8_t>(CmpMask(threshold->op()));
      instr.left_attr = static_cast<uint16_t>(threshold->attr());
      instr.operand = threshold->constant();
      return instr;
    }
  }
  if (dynamic_cast<const TsOrder*>(&c) != nullptr) {
    instr.op = PredOpCode::kTsOrder;
    return instr;
  }
  if (dynamic_cast<const SerialAdjacent*>(&c) != nullptr) {
    instr.op = PredOpCode::kSerialAdjacent;
    return instr;
  }
  if (dynamic_cast<const PartitionAdjacent*>(&c) != nullptr) {
    instr.op = PredOpCode::kPartitionAdjacent;
    return instr;
  }
  // CustomCondition and unknown subclasses: virtual trampoline.
  instr.op = PredOpCode::kVirtual;
  instr.fallback = &c;
  return instr;
}

const char* OpName(PredOpCode op) {
  switch (op) {
    case PredOpCode::kAttrCmp:
      return "attr_cmp";
    case PredOpCode::kAttrThreshold:
      return "attr_threshold";
    case PredOpCode::kTsOrder:
      return "ts_order";
    case PredOpCode::kSerialAdjacent:
      return "serial_adjacent";
    case PredOpCode::kPartitionAdjacent:
      return "partition_adjacent";
    case PredOpCode::kVirtual:
      return "virtual";
  }
  return "?";
}

}  // namespace

bool PredicateProgram::RunSpan(const Span& span, const Event& lo_event,
                               const Event& hi_event, uint64_t* evals) const {
  const PredInstr* instr = code_.data() + span.begin;
  const PredInstr* end = code_.data() + span.end;
  bool ok = true;
  for (; instr != end; ++instr) {
    const Event& l = instr->swap ? hi_event : lo_event;
    const Event& r = instr->swap ? lo_event : hi_event;
    bool verdict;
    // Compare chain ordered by dynamic frequency, not a switch: a jump
    // table mispredicts on mixed opcode streams, while the dominant
    // kAttrCmp / kTsOrder opcodes (attribute comparisons plus the SEQ
    // rewrite's temporal closure) fall through well-predicted branches.
    if (instr->op == PredOpCode::kAttrCmp) {
      verdict = (instr->cmp_mask &
                 CmpClass(l.attrs[instr->left_attr],
                          r.attrs[instr->right_attr] + instr->operand)) != 0;
    } else if (instr->op == PredOpCode::kTsOrder) {
      verdict = l.ts < r.ts;
    } else {
      switch (instr->op) {
        case PredOpCode::kAttrThreshold:
          verdict = (instr->cmp_mask &
                     CmpClass(l.attrs[instr->left_attr], instr->operand)) !=
                    0;
          break;
        case PredOpCode::kSerialAdjacent:
          verdict = r.serial == l.serial + 1;
          break;
        case PredOpCode::kPartitionAdjacent:
          verdict = l.partition != r.partition ||
                    r.partition_seq == l.partition_seq + 1;
          break;
        case PredOpCode::kVirtual:
          verdict = instr->fallback->Eval(l, r);
          break;
        default:
          verdict = false;
          break;
      }
    }
    if (!verdict) {
      ++instr;  // count the failing predicate as executed
      ok = false;
      break;
    }
  }
  // One accumulation per span, not one read-modify-write per predicate.
  if (evals != nullptr) {
    *evals += static_cast<uint64_t>(instr - (code_.data() + span.begin));
  }
  return ok;
}

PredicateProgram::PredicateProgram(const ConditionSet& conditions)
    : n_(conditions.num_positions()) {
  pair_spans_.resize(static_cast<size_t>(n_) * n_);
  unary_spans_.resize(n_);
  auto emit = [&](const ConditionPtr& c, bool swap) {
    PredInstr instr = Lower(*c);
    instr.swap = swap;
    if (instr.op == PredOpCode::kVirtual) keepalive_.push_back(c);
    code_.push_back(instr);
  };
  for (int i = 0; i < n_; ++i) {
    Span& span = unary_spans_[i];
    span.begin = static_cast<uint32_t>(code_.size());
    // Unary conditions see the same event as both l and r, so the
    // orientation flag is irrelevant.
    for (const ConditionPtr& c : conditions.UnaryAt(i)) emit(c, false);
    span.end = static_cast<uint32_t>(code_.size());
  }
  for (int lo = 0; lo < n_; ++lo) {
    for (int hi = lo + 1; hi < n_; ++hi) {
      Span& span = pair_spans_[static_cast<size_t>(lo) * n_ + hi];
      span.begin = static_cast<uint32_t>(code_.size());
      for (const ConditionPtr& c : conditions.Between(lo, hi)) {
        emit(c, c->left() != lo);
      }
      span.end = static_cast<uint32_t>(code_.size());
    }
  }
  AnnotateSpans();
}

std::string PredicateProgram::Disassemble() const {
  std::ostringstream os;
  auto dump = [&](const char* label, int lo, int hi, Span span) {
    for (uint32_t k = span.begin; k < span.end; ++k) {
      const PredInstr& instr = code_[k];
      os << label << "(" << lo;
      if (hi >= 0) os << "," << hi;
      os << ") " << OpName(instr.op);
      if (instr.swap) os << " swapped";
      if (instr.op == PredOpCode::kAttrCmp) {
        os << " a" << instr.left_attr << " "
           << CmpOpName(static_cast<CmpOp>(instr.cmp)) << " a"
           << instr.right_attr << " + " << instr.operand;
      } else if (instr.op == PredOpCode::kAttrThreshold) {
        os << " a" << instr.left_attr << " "
           << CmpOpName(static_cast<CmpOp>(instr.cmp)) << " "
           << instr.operand;
      } else if (instr.op == PredOpCode::kVirtual) {
        os << " [" << instr.fallback->Describe() << "]";
      }
      os << "\n";
    }
  };
  for (int i = 0; i < n_; ++i) dump("unary", i, -1, unary_spans_[i]);
  for (int lo = 0; lo < n_; ++lo) {
    for (int hi = lo + 1; hi < n_; ++hi) {
      dump("pair", lo, hi, PairSpan(lo, hi));
    }
  }
  return os.str();
}

}  // namespace cepjoin
