#ifndef CEPJOIN_RUNTIME_OUTPUT_PROFILER_H_
#define CEPJOIN_RUNTIME_OUTPUT_PROFILER_H_

#include <vector>

#include "runtime/match.h"

namespace cepjoin {

/// Sec. 6.1's output profiler: for conjunction patterns the temporally
/// last event type is not fixed by the pattern, so the latency cost model
/// needs an estimate. The profiler observes emitted matches, records
/// which pattern position arrived last, and reports the most frequent
/// one. Wraps and forwards to an inner sink.
///
/// Not thread-safe: on the sharded path each shard owns its profiler (or
/// records last positions into striped registry counters — see
/// obs/pipeline_metrics.h) and the per-shard counts are combined with
/// MergeFrom at drain time.
class OutputProfiler : public MatchSink {
 public:
  OutputProfiler(MatchSink* inner, int num_positions)
      : inner_(inner), last_counts_(num_positions, 0) {}

  /// Pattern position of the temporally last event of `match` (ties by
  /// serial, matching the engines' ordering), or -1 for an empty match.
  static int LastPosition(const Match& match) {
    int last_pos = -1;
    const Event* last = nullptr;
    for (size_t p = 0; p < match.slots.size(); ++p) {
      for (const EventPtr& e : match.slots[p]) {
        if (last == nullptr || e->ts > last->ts ||
            (e->ts == last->ts && e->serial > last->serial)) {
          last = e.get();
          last_pos = static_cast<int>(p);
        }
      }
    }
    return last_pos;
  }

  void OnMatch(const Match& match) override {
    int last_pos = LastPosition(match);
    if (last_pos >= 0 && last_pos < static_cast<int>(last_counts_.size())) {
      ++last_counts_[last_pos];
    }
    if (inner_ != nullptr) inner_->OnMatch(match);
  }

  /// Folds another profiler's observations into this one (sharded
  /// aggregation). Positions past this profiler's pattern size extend
  /// the count vector.
  void MergeFrom(const OutputProfiler& other) {
    if (other.last_counts_.size() > last_counts_.size()) {
      last_counts_.resize(other.last_counts_.size(), 0);
    }
    for (size_t p = 0; p < other.last_counts_.size(); ++p) {
      last_counts_[p] += other.last_counts_[p];
    }
  }

  /// Pattern position that most frequently holds the temporally last
  /// event, or -1 before any match was seen. Ties go to the smallest
  /// position (strictly-greater count wins).
  int MostFrequentLastPosition() const {
    return MostFrequent(last_counts_);
  }

  /// MostFrequentLastPosition over an externally aggregated count vector
  /// (same tie-breaking); used by the snapshot path, which accumulates
  /// per-position counts in registry counters rather than a profiler.
  static int MostFrequent(const std::vector<uint64_t>& counts) {
    int best = -1;
    uint64_t best_count = 0;
    for (size_t p = 0; p < counts.size(); ++p) {
      if (counts[p] > best_count) {
        best_count = counts[p];
        best = static_cast<int>(p);
      }
    }
    return best;
  }

  const std::vector<uint64_t>& last_counts() const { return last_counts_; }

 private:
  MatchSink* inner_;
  std::vector<uint64_t> last_counts_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_RUNTIME_OUTPUT_PROFILER_H_
