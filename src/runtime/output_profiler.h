#ifndef CEPJOIN_RUNTIME_OUTPUT_PROFILER_H_
#define CEPJOIN_RUNTIME_OUTPUT_PROFILER_H_

#include <vector>

#include "runtime/match.h"

namespace cepjoin {

/// Sec. 6.1's output profiler: for conjunction patterns the temporally
/// last event type is not fixed by the pattern, so the latency cost model
/// needs an estimate. The profiler observes emitted matches, records
/// which pattern position arrived last, and reports the most frequent
/// one. Wraps and forwards to an inner sink.
class OutputProfiler : public MatchSink {
 public:
  OutputProfiler(MatchSink* inner, int num_positions)
      : inner_(inner), last_counts_(num_positions, 0) {}

  void OnMatch(const Match& match) override {
    int last_pos = -1;
    const Event* last = nullptr;
    for (size_t p = 0; p < match.slots.size(); ++p) {
      for (const EventPtr& e : match.slots[p]) {
        if (last == nullptr || e->ts > last->ts ||
            (e->ts == last->ts && e->serial > last->serial)) {
          last = e.get();
          last_pos = static_cast<int>(p);
        }
      }
    }
    if (last_pos >= 0 && last_pos < static_cast<int>(last_counts_.size())) {
      ++last_counts_[last_pos];
    }
    if (inner_ != nullptr) inner_->OnMatch(match);
  }

  /// Pattern position that most frequently holds the temporally last
  /// event, or -1 before any match was seen.
  int MostFrequentLastPosition() const {
    int best = -1;
    uint64_t best_count = 0;
    for (size_t p = 0; p < last_counts_.size(); ++p) {
      if (last_counts_[p] > best_count) {
        best_count = last_counts_[p];
        best = static_cast<int>(p);
      }
    }
    return best;
  }

  const std::vector<uint64_t>& last_counts() const { return last_counts_; }

 private:
  MatchSink* inner_;
  std::vector<uint64_t> last_counts_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_RUNTIME_OUTPUT_PROFILER_H_
