#include "optimizer/dp_bushy.h"

#include <functional>
#include <limits>
#include <vector>

#include "common/check.h"

namespace cepjoin {

TreePlan DpBushyOptimizer::Optimize(const CostFunction& cost) const {
  int n = cost.size();
  CEPJOIN_CHECK_LE(n, 20) << "DP-B is O(3^n); refusing n > 20";
  size_t num_masks = size_t{1} << n;
  const CostSpec& spec = cost.spec();
  double alpha = spec.latency_anchor >= 0 ? spec.latency_alpha : 0.0;
  uint64_t anchor_bit =
      spec.latency_anchor >= 0 ? uint64_t{1} << spec.latency_anchor : 0;

  // f[mask]: cheapest tree over `mask`, counting internal PM terms plus
  // anchor-ancestor latency contributions inside the subtree. pm[mask] is
  // the node PM used for sibling latency terms.
  std::vector<double> f(num_masks, std::numeric_limits<double>::infinity());
  std::vector<double> pm(num_masks, 0.0);
  std::vector<uint64_t> best_split(num_masks, 0);

  for (int i = 0; i < n; ++i) {
    uint64_t m = uint64_t{1} << i;
    f[m] = 0.0;  // leaf costs are plan-independent; added at the end
    pm[m] = cost.LeafCost(i);
  }
  for (uint64_t mask = 1; mask < num_masks; ++mask) {
    if (__builtin_popcountll(mask) < 2) continue;
    pm[mask] = cost.TreeNodeCost(mask);
    double best = std::numeric_limits<double>::infinity();
    uint64_t best_s = 0;
    // Enumerate unordered partitions: keep the half containing the lowest
    // set bit as `s` to visit each split once.
    uint64_t low = mask & (~mask + 1);
    for (uint64_t s = (mask - 1) & mask; s > 0; s = (s - 1) & mask) {
      if (!(s & low)) continue;
      uint64_t t = mask ^ s;
      double c = f[s] + f[t];
      if (alpha > 0.0 && (mask & anchor_bit)) {
        c += alpha * ((s & anchor_bit) ? pm[t] : pm[s]);
      }
      if (c < best) {
        best = c;
        best_s = s;
      }
    }
    f[mask] = best + pm[mask];
    best_split[mask] = best_s;
  }

  TreePlan::Builder builder;
  std::function<int(uint64_t)> build = [&](uint64_t mask) -> int {
    if (__builtin_popcountll(mask) == 1) {
      return builder.AddLeaf(__builtin_ctzll(mask));
    }
    uint64_t s = best_split[mask];
    int left = build(s);
    int right = build(mask ^ s);
    return builder.AddInternal(left, right);
  };
  return builder.Build(build(num_masks - 1));
}

}  // namespace cepjoin
