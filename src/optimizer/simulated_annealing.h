#ifndef CEPJOIN_OPTIMIZER_SIMULATED_ANNEALING_H_
#define CEPJOIN_OPTIMIZER_SIMULATED_ANNEALING_H_

#include "optimizer/optimizer.h"

namespace cepjoin {

/// SA (extension): simulated annealing over the order space — the
/// randomized JQPG family the paper cites alongside iterative improvement
/// (Ioannidis & Kang '90, Swami '89). Starts from the GREEDY plan, walks
/// random swap/cycle neighbours, accepts uphill moves with probability
/// exp(-delta / T) under a geometric cooling schedule, and returns the
/// best plan visited (never worse than the greedy start).
class SimulatedAnnealingOptimizer : public OrderOptimizer {
 public:
  struct Options {
    double initial_temperature_factor = 0.1;  // T0 = factor · C(start)
    double cooling = 0.9;
    int moves_per_temperature = 64;
    int temperature_steps = 40;
  };

  explicit SimulatedAnnealingOptimizer(uint64_t seed)
      : seed_(seed), options_(Options()) {}
  SimulatedAnnealingOptimizer(uint64_t seed, Options options)
      : seed_(seed), options_(options) {}

  std::string name() const override { return "SA"; }
  bool is_jqpg() const override { return true; }
  OrderPlan Optimize(const CostFunction& cost) const override;

 private:
  uint64_t seed_;
  Options options_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_OPTIMIZER_SIMULATED_ANNEALING_H_
