#ifndef CEPJOIN_OPTIMIZER_ITERATIVE_IMPROVEMENT_H_
#define CEPJOIN_OPTIMIZER_ITERATIVE_IMPROVEMENT_H_

#include "optimizer/optimizer.h"

namespace cepjoin {

/// Iterative Improvement (JQPG, Swami '89, Sec. 7.1): local search over
/// the order space using the paper's two move kinds —
///   swap(i, j):    exchange the slots at steps i and j;
///   cycle(i, j, k): rotate the slots at steps i → j → k → i —
/// descending until no move in the full neighbourhood improves the cost.
///
/// II-RANDOM restarts from random permutations; II-GREEDY descends once
/// from the GREEDY plan.
class IterativeImprovementOptimizer : public OrderOptimizer {
 public:
  enum class Start { kRandom, kGreedy };

  IterativeImprovementOptimizer(Start start, int restarts, uint64_t seed);

  std::string name() const override {
    return start_ == Start::kRandom ? "II-RANDOM" : "II-GREEDY";
  }
  bool is_jqpg() const override { return true; }
  OrderPlan Optimize(const CostFunction& cost) const override;

  /// Descends from `initial` to a local minimum; exposed for tests.
  static OrderPlan Descend(const CostFunction& cost, OrderPlan initial);

 private:
  Start start_;
  int restarts_;
  uint64_t seed_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_OPTIMIZER_ITERATIVE_IMPROVEMENT_H_
