#include "optimizer/query_graph.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <sstream>
#include <vector>

namespace cepjoin {

const char* QueryGraphTopologyName(QueryGraphTopology topology) {
  switch (topology) {
    case QueryGraphTopology::kNoPredicates:
      return "no-predicates";
    case QueryGraphTopology::kChain:
      return "chain";
    case QueryGraphTopology::kStar:
      return "star";
    case QueryGraphTopology::kTree:
      return "tree";
    case QueryGraphTopology::kClique:
      return "clique";
    case QueryGraphTopology::kCyclicGeneral:
      return "cyclic";
    case QueryGraphTopology::kDisconnected:
      return "disconnected";
  }
  return "?";
}

std::string QueryGraphInfo::Describe() const {
  std::ostringstream os;
  os << QueryGraphTopologyName(topology) << " (" << num_slots << " slots, "
     << num_edges << " predicate edges, "
     << (connected ? "connected" : "disconnected") << ", "
     << (acyclic ? "acyclic" : "cyclic") << ")";
  return os.str();
}

QueryGraphInfo AnalyzeQueryGraph(const CostFunction& cost) {
  int n = cost.size();
  QueryGraphInfo info;
  info.num_slots = n;

  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  std::vector<int> degree(n, 0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (cost.sel(i, j) == 1.0) continue;
      ++info.num_edges;
      ++degree[i];
      ++degree[j];
      int ri = find(i);
      int rj = find(j);
      if (ri == rj) {
        info.acyclic = false;  // union of already-connected pair = cycle
      } else {
        parent[ri] = rj;
      }
    }
  }
  int components = 0;
  for (int i = 0; i < n; ++i) {
    if (find(i) == i) ++components;
  }
  info.connected = components == 1;

  if (info.num_edges == 0) {
    info.topology = n == 1 ? QueryGraphTopology::kChain
                           : QueryGraphTopology::kNoPredicates;
    return info;
  }
  if (!info.connected) {
    info.topology = QueryGraphTopology::kDisconnected;
    return info;
  }
  if (!info.acyclic) {
    info.topology = info.num_edges == n * (n - 1) / 2
                        ? QueryGraphTopology::kClique
                        : QueryGraphTopology::kCyclicGeneral;
    // A triangle is both a 3-clique and a cycle; prefer kClique (handled
    // above by the edge count).
    return info;
  }
  // Connected + acyclic: spanning tree. Chain iff max degree <= 2; star
  // iff one hub of degree n-1 (n >= 3).
  int max_degree = 0;
  int hubs = 0;
  for (int i = 0; i < n; ++i) {
    max_degree = std::max(max_degree, degree[i]);
    if (degree[i] == n - 1) ++hubs;
  }
  if (max_degree <= 2) {
    info.topology = QueryGraphTopology::kChain;
  } else if (hubs == 1 && info.num_edges == n - 1 && max_degree == n - 1) {
    info.topology = QueryGraphTopology::kStar;
  } else {
    info.topology = QueryGraphTopology::kTree;
  }
  return info;
}

}  // namespace cepjoin
