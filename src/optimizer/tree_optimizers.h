#ifndef CEPJOIN_OPTIMIZER_TREE_OPTIMIZERS_H_
#define CEPJOIN_OPTIMIZER_TREE_OPTIMIZERS_H_

#include "optimizer/optimizer.h"

namespace cepjoin {

/// The ZStream plan-generation core: for a *fixed* left-to-right leaf
/// order, finds the cheapest binary tree by interval dynamic programming
/// (O(n³)) — "iterating over all possible tree topologies for a given
/// sequence of leaves" (Sec. 7.1). Includes the hybrid latency term.
TreePlan BestTreeForLeafOrder(const CostFunction& cost,
                              const OrderPlan& leaf_order);

/// ZSTREAM (CEP-native, Mei & Madden '09): interval DP over the pattern's
/// own leaf order. Cannot reorder leaves, so it misses plans like
/// Fig. 3(c).
class ZStreamOptimizer : public TreeOptimizer {
 public:
  std::string name() const override { return "ZSTREAM"; }
  bool is_jqpg() const override { return false; }
  TreePlan Optimize(const CostFunction& cost) const override;
};

/// ZSTREAM-ORD (hybrid, Sec. 7.1): first runs GREEDY to pick a good leaf
/// order, then applies the ZStream interval DP on it.
class ZStreamOrdOptimizer : public TreeOptimizer {
 public:
  std::string name() const override { return "ZSTREAM-ORD"; }
  bool is_jqpg() const override { return true; }
  TreePlan Optimize(const CostFunction& cost) const override;
};

}  // namespace cepjoin

#endif  // CEPJOIN_OPTIMIZER_TREE_OPTIMIZERS_H_
