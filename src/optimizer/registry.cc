#include "optimizer/registry.h"

#include "optimizer/auto_selector.h"
#include "optimizer/dp_bushy.h"
#include "optimizer/dp_left_deep.h"
#include "optimizer/iterative_improvement.h"
#include "optimizer/kbz.h"
#include "optimizer/order_optimizers.h"
#include "optimizer/simulated_annealing.h"
#include "optimizer/tree_optimizers.h"

namespace cepjoin {

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

Status UnknownAlgorithm(const char* kind, const std::string& name) {
  return Status::InvalidArgument("unknown " + std::string(kind) +
                                 " optimizer '" + name +
                                 "'; known algorithms: " +
                                 JoinNames(KnownAlgorithms()));
}

}  // namespace

StatusOr<std::unique_ptr<OrderOptimizer>> MakeOrderOptimizer(
    const std::string& name, uint64_t seed) {
  std::unique_ptr<OrderOptimizer> optimizer;
  if (name == "TRIVIAL") {
    optimizer = std::make_unique<TrivialOptimizer>();
  } else if (name == "EFREQ") {
    optimizer = std::make_unique<EventFrequencyOptimizer>();
  } else if (name == "GREEDY") {
    optimizer = std::make_unique<GreedyOrderOptimizer>();
  } else if (name == "II-RANDOM") {
    optimizer = std::make_unique<IterativeImprovementOptimizer>(
        IterativeImprovementOptimizer::Start::kRandom, /*restarts=*/4, seed);
  } else if (name == "II-GREEDY") {
    optimizer = std::make_unique<IterativeImprovementOptimizer>(
        IterativeImprovementOptimizer::Start::kGreedy, /*restarts=*/1, seed);
  } else if (name == "DP-LD") {
    optimizer = std::make_unique<DpLeftDeepOptimizer>();
  } else if (name == "KBZ") {
    optimizer = std::make_unique<KbzOptimizer>();
  } else if (name == "SA") {
    optimizer = std::make_unique<SimulatedAnnealingOptimizer>(seed);
  } else if (name == "AUTO") {
    optimizer = std::make_unique<AutoOrderOptimizer>(seed);
  } else {
    return UnknownAlgorithm("order", name);
  }
  return optimizer;
}

StatusOr<std::unique_ptr<TreeOptimizer>> MakeTreeOptimizer(
    const std::string& name) {
  std::unique_ptr<TreeOptimizer> optimizer;
  if (name == "ZSTREAM") {
    optimizer = std::make_unique<ZStreamOptimizer>();
  } else if (name == "ZSTREAM-ORD") {
    optimizer = std::make_unique<ZStreamOrdOptimizer>();
  } else if (name == "DP-B") {
    optimizer = std::make_unique<DpBushyOptimizer>();
  } else {
    return UnknownAlgorithm("tree", name);
  }
  return optimizer;
}

Status ValidateAlgorithm(const std::string& name) {
  // Authoritative by construction: a name is valid iff one of the
  // factories accepts it, so ValidateAlgorithm can never drift from
  // what MakePlan will actually build.
  if (MakeOrderOptimizer(name).ok() || MakeTreeOptimizer(name).ok()) {
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown algorithm '" + name +
                                 "'; known algorithms: " +
                                 JoinNames(KnownAlgorithms()));
}

std::vector<std::string> KnownAlgorithms() {
  return {"TRIVIAL", "EFREQ",   "GREEDY",      "II-RANDOM",
          "II-GREEDY", "DP-LD", "KBZ",         "SA",
          "AUTO",      "ZSTREAM", "ZSTREAM-ORD", "DP-B"};
}

std::vector<std::string> PaperOrderAlgorithms() {
  return {"TRIVIAL", "EFREQ", "GREEDY", "II-RANDOM", "II-GREEDY", "DP-LD"};
}

std::vector<std::string> PaperTreeAlgorithms() {
  return {"ZSTREAM", "ZSTREAM-ORD", "DP-B"};
}

}  // namespace cepjoin
