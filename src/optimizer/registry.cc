#include "optimizer/registry.h"

#include "common/check.h"
#include "optimizer/auto_selector.h"
#include "optimizer/dp_bushy.h"
#include "optimizer/dp_left_deep.h"
#include "optimizer/iterative_improvement.h"
#include "optimizer/kbz.h"
#include "optimizer/order_optimizers.h"
#include "optimizer/simulated_annealing.h"
#include "optimizer/tree_optimizers.h"

namespace cepjoin {

std::unique_ptr<OrderOptimizer> MakeOrderOptimizer(const std::string& name,
                                                   uint64_t seed) {
  if (name == "TRIVIAL") return std::make_unique<TrivialOptimizer>();
  if (name == "EFREQ") return std::make_unique<EventFrequencyOptimizer>();
  if (name == "GREEDY") return std::make_unique<GreedyOrderOptimizer>();
  if (name == "II-RANDOM") {
    return std::make_unique<IterativeImprovementOptimizer>(
        IterativeImprovementOptimizer::Start::kRandom, /*restarts=*/4, seed);
  }
  if (name == "II-GREEDY") {
    return std::make_unique<IterativeImprovementOptimizer>(
        IterativeImprovementOptimizer::Start::kGreedy, /*restarts=*/1, seed);
  }
  if (name == "DP-LD") return std::make_unique<DpLeftDeepOptimizer>();
  if (name == "KBZ") return std::make_unique<KbzOptimizer>();
  if (name == "SA") return std::make_unique<SimulatedAnnealingOptimizer>(seed);
  if (name == "AUTO") return std::make_unique<AutoOrderOptimizer>(seed);
  CEPJOIN_CHECK(false) << "unknown order optimizer '" << name << "'";
}

std::unique_ptr<TreeOptimizer> MakeTreeOptimizer(const std::string& name) {
  if (name == "ZSTREAM") return std::make_unique<ZStreamOptimizer>();
  if (name == "ZSTREAM-ORD") return std::make_unique<ZStreamOrdOptimizer>();
  if (name == "DP-B") return std::make_unique<DpBushyOptimizer>();
  CEPJOIN_CHECK(false) << "unknown tree optimizer '" << name << "'";
}

std::vector<std::string> PaperOrderAlgorithms() {
  return {"TRIVIAL", "EFREQ", "GREEDY", "II-RANDOM", "II-GREEDY", "DP-LD"};
}

std::vector<std::string> PaperTreeAlgorithms() {
  return {"ZSTREAM", "ZSTREAM-ORD", "DP-B"};
}

}  // namespace cepjoin
