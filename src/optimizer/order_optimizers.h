#ifndef CEPJOIN_OPTIMIZER_ORDER_OPTIMIZERS_H_
#define CEPJOIN_OPTIMIZER_ORDER_OPTIMIZERS_H_

#include "optimizer/optimizer.h"

namespace cepjoin {

/// TRIVIAL (CEP-native): the pattern's own slot order, as used by NFA
/// engines without reordering (SASE, Cayuga).
class TrivialOptimizer : public OrderOptimizer {
 public:
  std::string name() const override { return "TRIVIAL"; }
  bool is_jqpg() const override { return false; }
  OrderPlan Optimize(const CostFunction& cost) const override;
};

/// EFREQ (CEP-native): slots in ascending arrival-rate order, the strategy
/// of PB-CED and the Lazy NFA.
class EventFrequencyOptimizer : public OrderOptimizer {
 public:
  std::string name() const override { return "EFREQ"; }
  bool is_jqpg() const override { return false; }
  OrderPlan Optimize(const CostFunction& cost) const override;
};

/// GREEDY (JQPG, Swami '89): at each step append the slot minimizing the
/// marginal cost of the extended prefix.
class GreedyOrderOptimizer : public OrderOptimizer {
 public:
  std::string name() const override { return "GREEDY"; }
  bool is_jqpg() const override { return true; }
  OrderPlan Optimize(const CostFunction& cost) const override;
};

}  // namespace cepjoin

#endif  // CEPJOIN_OPTIMIZER_ORDER_OPTIMIZERS_H_
