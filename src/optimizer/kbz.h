#ifndef CEPJOIN_OPTIMIZER_KBZ_H_
#define CEPJOIN_OPTIMIZER_KBZ_H_

#include <vector>

#include "optimizer/optimizer.h"

namespace cepjoin {

/// KBZ / IKKBZ (extension; Sec. 4.3): the polynomial-time join-ordering
/// algorithm for acyclic query graphs under ASI cost functions
/// (Ibaraki-Kameda '84, Krishnamurthy-Boral-Zaniolo '86), driven by the
/// Appendix A rank function rank(s) = (T(s) − 1) / C(s).
///
/// For general (cyclic or disconnected) predicate graphs it first extracts
/// a minimum-selectivity spanning tree, making it a heuristic exactly as
/// Sec. 4.3 prescribes ("even when an exact polynomial algorithm is
/// applicable to CPG, it ... can only be viewed as a heuristic" because
/// cross products are excluded). Tries every root; returns the best order
/// under the full cost function.
class KbzOptimizer : public OrderOptimizer {
 public:
  std::string name() const override { return "KBZ"; }
  bool is_jqpg() const override { return true; }
  OrderPlan Optimize(const CostFunction& cost) const override;

  /// The IKKBZ chain for one rooted precedence tree; exposed for tests.
  /// `parent[i]` = i's parent slot, -1 for exactly one root. The returned
  /// order respects the precedence tree and is optimal among such orders
  /// for the ASI cost C(·).
  static OrderPlan LinearizeTree(const CostFunction& cost,
                                 const std::vector<int>& parent);

  /// Minimum-selectivity spanning forest of the predicate graph, returned
  /// as a parent vector rooted at `root` (components without a predicate
  /// path to `root` attach to it with selectivity-1 edges).
  static std::vector<int> SpanningTreeParents(const CostFunction& cost,
                                              int root);
};

}  // namespace cepjoin

#endif  // CEPJOIN_OPTIMIZER_KBZ_H_
