#include "optimizer/order_optimizers.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace cepjoin {

double OrderAppendCost(const CostFunction& cost, uint64_t mask, int e) {
  double c = cost.OrderSetCost(mask | (uint64_t{1} << e));
  const CostSpec& spec = cost.spec();
  if (spec.latency_anchor >= 0 && spec.latency_alpha > 0.0 &&
      (mask >> spec.latency_anchor & 1) && e != spec.latency_anchor) {
    c += spec.latency_alpha * cost.LeafCost(e);
  }
  return c;
}

OrderPlan TrivialOptimizer::Optimize(const CostFunction& cost) const {
  return OrderPlan::Identity(cost.size());
}

OrderPlan EventFrequencyOptimizer::Optimize(const CostFunction& cost) const {
  std::vector<int> order(cost.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&cost](int a, int b) {
    return cost.rate(a) < cost.rate(b);
  });
  return OrderPlan(std::move(order));
}

OrderPlan GreedyOrderOptimizer::Optimize(const CostFunction& cost) const {
  int n = cost.size();
  std::vector<int> order;
  order.reserve(n);
  uint64_t mask = 0;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int e = 0; e < n; ++e) {
      if (mask >> e & 1) continue;
      double c = OrderAppendCost(cost, mask, e);
      if (c < best_cost) {
        best_cost = c;
        best = e;
      }
    }
    CEPJOIN_CHECK_GE(best, 0);
    order.push_back(best);
    mask |= uint64_t{1} << best;
  }
  return OrderPlan(std::move(order));
}

}  // namespace cepjoin
