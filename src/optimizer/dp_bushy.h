#ifndef CEPJOIN_OPTIMIZER_DP_BUSHY_H_
#define CEPJOIN_OPTIMIZER_DP_BUSHY_H_

#include "optimizer/optimizer.h"

namespace cepjoin {

/// DP-B (JQPG, Selinger-style over subsets without the left-deep
/// restriction): f(S) = PM(S) + min over partitions S = S₁ ⊎ S₂ of
/// f(S₁) + f(S₂) (+ hybrid latency term). Cross products are allowed, as
/// Sec. 4.3 requires for CPG. O(3ⁿ) time; guarded to n ≤ 20.
class DpBushyOptimizer : public TreeOptimizer {
 public:
  std::string name() const override { return "DP-B"; }
  bool is_jqpg() const override { return true; }
  TreePlan Optimize(const CostFunction& cost) const override;
};

}  // namespace cepjoin

#endif  // CEPJOIN_OPTIMIZER_DP_BUSHY_H_
