#include "optimizer/simulated_annealing.h"

#include <cmath>
#include <utility>

#include "common/rng.h"
#include "optimizer/order_optimizers.h"

namespace cepjoin {

OrderPlan SimulatedAnnealingOptimizer::Optimize(
    const CostFunction& cost) const {
  int n = cost.size();
  OrderPlan start = GreedyOrderOptimizer().Optimize(cost);
  if (n < 3) return start;
  Rng rng(seed_);

  std::vector<int> current = start.order();
  double current_cost = cost.OrderCost(start);
  std::vector<int> best = current;
  double best_cost = current_cost;

  double temperature =
      options_.initial_temperature_factor * std::max(current_cost, 1e-12);
  for (int step = 0; step < options_.temperature_steps; ++step) {
    for (int move = 0; move < options_.moves_per_temperature; ++move) {
      std::vector<int> candidate = current;
      int i = static_cast<int>(rng.UniformInt(0, n - 1));
      int j = static_cast<int>(rng.UniformInt(0, n - 2));
      if (j >= i) ++j;
      if (rng.Bernoulli(0.5)) {
        std::swap(candidate[i], candidate[j]);
      } else {
        int k = static_cast<int>(rng.UniformInt(0, n - 1));
        if (k == i || k == j) {
          std::swap(candidate[i], candidate[j]);
        } else {
          // cycle move: order[i] -> order[j] -> order[k] -> order[i]
          int a = candidate[i];
          candidate[i] = candidate[k];
          candidate[k] = candidate[j];
          candidate[j] = a;
        }
      }
      double candidate_cost = cost.OrderCost(OrderPlan(candidate));
      double delta = candidate_cost - current_cost;
      if (delta <= 0.0 ||
          rng.UniformReal(0.0, 1.0) < std::exp(-delta / temperature)) {
        current = std::move(candidate);
        current_cost = candidate_cost;
        if (current_cost < best_cost) {
          best = current;
          best_cost = current_cost;
        }
      }
    }
    temperature *= options_.cooling;
  }
  return OrderPlan(std::move(best));
}

}  // namespace cepjoin
