#include "optimizer/tree_optimizers.h"

#include <functional>
#include <limits>
#include <vector>

#include "common/check.h"
#include "optimizer/order_optimizers.h"

namespace cepjoin {

TreePlan BestTreeForLeafOrder(const CostFunction& cost,
                              const OrderPlan& leaf_order) {
  int n = leaf_order.size();
  CEPJOIN_CHECK_EQ(n, cost.size());
  const CostSpec& spec = cost.spec();
  double alpha = spec.latency_anchor >= 0 ? spec.latency_alpha : 0.0;

  // dp[i][j]: min cost of a tree over leaves i..j (inclusive), counting
  // internal-node PM terms and the latency contributions of ancestors of
  // the anchor inside the interval. Leaf costs are plan-independent.
  std::vector<std::vector<double>> dp(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<int>> split(n, std::vector<int>(n, -1));
  std::vector<std::vector<uint64_t>> mask(n, std::vector<uint64_t>(n, 0));
  std::vector<std::vector<bool>> has_anchor(n, std::vector<bool>(n, false));

  for (int i = 0; i < n; ++i) {
    int item = leaf_order.At(i);
    mask[i][i] = uint64_t{1} << item;
    has_anchor[i][i] = item == spec.latency_anchor;
  }
  // PM of a complete interval (as joined partial matches), used both for
  // node costs and for the sibling term of the latency model.
  auto interval_pm = [&](int i, int j) {
    if (i == j) return cost.LeafCost(leaf_order.At(i));
    return cost.TreeNodeCost(mask[i][j]);
  };

  for (int len = 2; len <= n; ++len) {
    for (int i = 0; i + len - 1 < n; ++i) {
      int j = i + len - 1;
      mask[i][j] = mask[i][j - 1] | mask[j][j];
      has_anchor[i][j] = has_anchor[i][j - 1] || has_anchor[j][j];
      double node_pm = cost.TreeNodeCost(mask[i][j]);
      double best = std::numeric_limits<double>::infinity();
      int best_m = -1;
      for (int m = i; m < j; ++m) {
        double c = dp[i][m] + dp[m + 1][j] + node_pm;
        if (alpha > 0.0) {
          if (has_anchor[i][m]) {
            c += alpha * interval_pm(m + 1, j);
          } else if (has_anchor[m + 1][j]) {
            c += alpha * interval_pm(i, m);
          }
        }
        if (c < best) {
          best = c;
          best_m = m;
        }
      }
      dp[i][j] = best;
      split[i][j] = best_m;
    }
  }

  TreePlan::Builder builder;
  std::function<int(int, int)> build = [&](int i, int j) -> int {
    if (i == j) return builder.AddLeaf(leaf_order.At(i));
    int m = split[i][j];
    int left = build(i, m);
    int right = build(m + 1, j);
    return builder.AddInternal(left, right);
  };
  return builder.Build(build(0, n - 1));
}

TreePlan ZStreamOptimizer::Optimize(const CostFunction& cost) const {
  return BestTreeForLeafOrder(cost, OrderPlan::Identity(cost.size()));
}

TreePlan ZStreamOrdOptimizer::Optimize(const CostFunction& cost) const {
  return BestTreeForLeafOrder(cost, GreedyOrderOptimizer().Optimize(cost));
}

}  // namespace cepjoin
