#ifndef CEPJOIN_OPTIMIZER_AUTO_SELECTOR_H_
#define CEPJOIN_OPTIMIZER_AUTO_SELECTOR_H_

#include "optimizer/optimizer.h"
#include "optimizer/query_graph.h"

namespace cepjoin {

/// AUTO (extension): picks a plan-generation algorithm from the pattern's
/// size and predicate-graph topology, following Sec. 4.3's guidance:
///
/// * n ≤ `dp_threshold` — DP-LD (exact search is cheap; Fig. 17(b));
/// * acyclic graphs beyond the threshold — KBZ (polynomial and exact in
///   the cross-product-free space; for star queries the optimal bushy
///   plan empirically equals the optimal left-deep plan [46], so a
///   left-deep algorithm loses nothing);
/// * everything else — II-GREEDY, the best
///   optimization-time/plan-quality trade-off among the heuristics.
///
/// Always returns the cheaper of the topology pick and GREEDY, so AUTO
/// never regresses below the greedy baseline.
class AutoOrderOptimizer : public OrderOptimizer {
 public:
  explicit AutoOrderOptimizer(uint64_t seed = 7, int dp_threshold = 12)
      : seed_(seed), dp_threshold_(dp_threshold) {}

  std::string name() const override { return "AUTO"; }
  bool is_jqpg() const override { return true; }
  OrderPlan Optimize(const CostFunction& cost) const override;

  /// The algorithm AUTO would delegate to for this cost function;
  /// exposed for tests and for explain-style tooling.
  std::string ChooseAlgorithm(const CostFunction& cost) const;

 private:
  uint64_t seed_;
  int dp_threshold_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_OPTIMIZER_AUTO_SELECTOR_H_
