#include "optimizer/iterative_improvement.h"

#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "optimizer/order_optimizers.h"

namespace cepjoin {

IterativeImprovementOptimizer::IterativeImprovementOptimizer(Start start,
                                                             int restarts,
                                                             uint64_t seed)
    : start_(start), restarts_(restarts), seed_(seed) {
  CEPJOIN_CHECK_GE(restarts, 1);
}

OrderPlan IterativeImprovementOptimizer::Descend(const CostFunction& cost,
                                                 OrderPlan initial) {
  std::vector<int> order = initial.order();
  int n = static_cast<int>(order.size());
  double current = cost.OrderCost(OrderPlan(order));
  bool improved = true;
  while (improved) {
    improved = false;
    // swap moves
    for (int i = 0; i < n && !improved; ++i) {
      for (int j = i + 1; j < n && !improved; ++j) {
        std::swap(order[i], order[j]);
        double c = cost.OrderCost(OrderPlan(order));
        if (c + 1e-12 < current) {
          current = c;
          improved = true;
        } else {
          std::swap(order[i], order[j]);
        }
      }
    }
    if (improved) continue;
    // cycle moves: order[i] -> order[j] -> order[k] -> order[i]
    for (int i = 0; i < n && !improved; ++i) {
      for (int j = 0; j < n && !improved; ++j) {
        if (j == i) continue;
        for (int k = 0; k < n && !improved; ++k) {
          if (k == i || k == j) continue;
          int a = order[i], b = order[j], c3 = order[k];
          order[j] = a;
          order[k] = b;
          order[i] = c3;
          double c = cost.OrderCost(OrderPlan(order));
          if (c + 1e-12 < current) {
            current = c;
            improved = true;
          } else {
            order[i] = a;
            order[j] = b;
            order[k] = c3;
          }
        }
      }
    }
  }
  return OrderPlan(std::move(order));
}

OrderPlan IterativeImprovementOptimizer::Optimize(
    const CostFunction& cost) const {
  int n = cost.size();
  Rng rng(seed_);
  OrderPlan best;
  double best_cost = 0.0;
  bool have_best = false;
  auto consider = [&](OrderPlan start_plan) {
    OrderPlan local = Descend(cost, std::move(start_plan));
    double c = cost.OrderCost(local);
    if (!have_best || c < best_cost) {
      best = local;
      best_cost = c;
      have_best = true;
    }
  };
  if (start_ == Start::kGreedy) {
    consider(GreedyOrderOptimizer().Optimize(cost));
  } else {
    for (int r = 0; r < restarts_; ++r) {
      std::vector<int> order(n);
      std::iota(order.begin(), order.end(), 0);
      rng.Shuffle(order.begin(), order.end());
      consider(OrderPlan(std::move(order)));
    }
  }
  return best;
}

}  // namespace cepjoin
