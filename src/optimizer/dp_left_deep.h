#ifndef CEPJOIN_OPTIMIZER_DP_LEFT_DEEP_H_
#define CEPJOIN_OPTIMIZER_DP_LEFT_DEEP_H_

#include "optimizer/optimizer.h"

namespace cepjoin {

/// DP-LD (JQPG, Selinger '79): exact dynamic programming over slot
/// subsets, restricted to left-deep plans — i.e., orders. Exploits the
/// fact that the PM term of a prefix depends only on the prefix's slot
/// *set*:  f(S) = PM(S) + min_{e ∈ S} [ f(S∖{e}) + latency term ].
/// O(2ⁿ·n) time, O(2ⁿ) space; guarded to n ≤ 24.
class DpLeftDeepOptimizer : public OrderOptimizer {
 public:
  std::string name() const override { return "DP-LD"; }
  bool is_jqpg() const override { return true; }
  OrderPlan Optimize(const CostFunction& cost) const override;
};

}  // namespace cepjoin

#endif  // CEPJOIN_OPTIMIZER_DP_LEFT_DEEP_H_
