#include "optimizer/auto_selector.h"

#include "optimizer/order_optimizers.h"
#include "optimizer/registry.h"

namespace cepjoin {

std::string AutoOrderOptimizer::ChooseAlgorithm(
    const CostFunction& cost) const {
  if (cost.size() <= dp_threshold_) return "DP-LD";
  QueryGraphInfo info = AnalyzeQueryGraph(cost);
  if (info.acyclic && info.connected) return "KBZ";
  return "II-GREEDY";
}

OrderPlan AutoOrderOptimizer::Optimize(const CostFunction& cost) const {
  // ChooseAlgorithm only returns registry names, so the lookup cannot
  // fail; value() aborts if that invariant is ever broken.
  OrderPlan picked =
      MakeOrderOptimizer(ChooseAlgorithm(cost), seed_).value()->Optimize(cost);
  OrderPlan greedy = GreedyOrderOptimizer().Optimize(cost);
  return cost.OrderCost(picked) <= cost.OrderCost(greedy) ? picked : greedy;
}

}  // namespace cepjoin
