#ifndef CEPJOIN_OPTIMIZER_QUERY_GRAPH_H_
#define CEPJOIN_OPTIMIZER_QUERY_GRAPH_H_

#include <string>

#include "cost/cost_function.h"

namespace cepjoin {

/// Query-graph topologies Sec. 4.3 singles out: chain and tree queries
/// admit polynomial algorithms (KBZ/IKKBZ under ASI; [39] for bushy
/// chains), and for star queries the optimal bushy plan empirically
/// equals the optimal left-deep plan [46].
enum class QueryGraphTopology {
  kNoPredicates,  // no selective predicate at all (pure cross product)
  kChain,
  kStar,
  kTree,          // acyclic, connected, neither chain nor star
  kClique,
  kCyclicGeneral, // connected with cycles, not a clique
  kDisconnected,
};

const char* QueryGraphTopologyName(QueryGraphTopology topology);

/// Structural facts about a pattern's predicate graph (vertices = slots,
/// edges = slot pairs with selectivity != 1).
struct QueryGraphInfo {
  QueryGraphTopology topology = QueryGraphTopology::kNoPredicates;
  int num_slots = 0;
  int num_edges = 0;
  bool connected = false;
  /// True iff the graph (as a whole) contains no cycle — forests count.
  bool acyclic = true;

  std::string Describe() const;
};

/// Classifies the predicate graph induced by the cost function's
/// selectivity matrix.
QueryGraphInfo AnalyzeQueryGraph(const CostFunction& cost);

}  // namespace cepjoin

#endif  // CEPJOIN_OPTIMIZER_QUERY_GRAPH_H_
