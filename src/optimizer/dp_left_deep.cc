#include "optimizer/dp_left_deep.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"

namespace cepjoin {

OrderPlan DpLeftDeepOptimizer::Optimize(const CostFunction& cost) const {
  int n = cost.size();
  CEPJOIN_CHECK_LE(n, 24) << "DP-LD is exponential; refusing n > 24";
  size_t num_masks = size_t{1} << n;
  const CostSpec& spec = cost.spec();
  double alpha = spec.latency_anchor >= 0 ? spec.latency_alpha : 0.0;

  std::vector<double> f(num_masks, std::numeric_limits<double>::infinity());
  std::vector<int8_t> last(num_masks, -1);
  f[0] = 0.0;

  for (uint64_t mask = 1; mask < num_masks; ++mask) {
    double pm = cost.OrderSetCost(mask);
    double best = std::numeric_limits<double>::infinity();
    int8_t best_e = -1;
    for (int e = 0; e < n; ++e) {
      if (!(mask >> e & 1)) continue;
      uint64_t prev = mask ^ (uint64_t{1} << e);
      double c = f[prev];
      if (alpha > 0.0 && e != spec.latency_anchor &&
          (prev >> spec.latency_anchor & 1)) {
        c += alpha * cost.LeafCost(e);
      }
      if (c < best) {
        best = c;
        best_e = static_cast<int8_t>(e);
      }
    }
    f[mask] = best + pm;
    last[mask] = best_e;
  }

  std::vector<int> order(n);
  uint64_t mask = num_masks - 1;
  for (int k = n - 1; k >= 0; --k) {
    int e = last[mask];
    CEPJOIN_CHECK_GE(e, 0);
    order[k] = e;
    mask ^= uint64_t{1} << e;
  }
  return OrderPlan(std::move(order));
}

}  // namespace cepjoin
