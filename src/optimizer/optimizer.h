#ifndef CEPJOIN_OPTIMIZER_OPTIMIZER_H_
#define CEPJOIN_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <string>

#include "cost/cost_function.h"

namespace cepjoin {

/// Generates an order-based evaluation plan minimizing the given cost
/// function (order-based CPG, Sec. 3.1 / JQPG restricted to left-deep
/// trees, Sec. 4.1).
class OrderOptimizer {
 public:
  virtual ~OrderOptimizer() = default;
  virtual std::string name() const = 0;
  /// True for algorithms adapted from join query optimization, false for
  /// CEP-native strategies — the axis the paper's evaluation compares.
  virtual bool is_jqpg() const = 0;
  virtual OrderPlan Optimize(const CostFunction& cost) const = 0;
};

/// Generates a tree-based evaluation plan (tree-based CPG / unrestricted
/// JQPG, Sec. 4.2).
class TreeOptimizer {
 public:
  virtual ~TreeOptimizer() = default;
  virtual std::string name() const = 0;
  virtual bool is_jqpg() const = 0;
  virtual TreePlan Optimize(const CostFunction& cost) const = 0;
};

/// Marginal cost of appending slot `e` to a prefix whose slot set is
/// `mask`: the new prefix's PM term plus the hybrid latency term.
/// Shared by GREEDY and the DP algorithms.
double OrderAppendCost(const CostFunction& cost, uint64_t mask, int e);

}  // namespace cepjoin

#endif  // CEPJOIN_OPTIMIZER_OPTIMIZER_H_
