#ifndef CEPJOIN_OPTIMIZER_REGISTRY_H_
#define CEPJOIN_OPTIMIZER_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "optimizer/optimizer.h"

namespace cepjoin {

/// Creates an order-plan generator by name: TRIVIAL, EFREQ, GREEDY,
/// II-RANDOM, II-GREEDY, DP-LD, KBZ, SA, AUTO. Unknown names return
/// InvalidArgument listing the known algorithms, never abort — a typo'd
/// RuntimeOptions::algorithm must surface as a registration failure.
StatusOr<std::unique_ptr<OrderOptimizer>> MakeOrderOptimizer(
    const std::string& name, uint64_t seed = 7);

/// Creates a tree-plan generator by name: ZSTREAM, ZSTREAM-ORD, DP-B.
/// Unknown names return InvalidArgument.
StatusOr<std::unique_ptr<TreeOptimizer>> MakeTreeOptimizer(
    const std::string& name);

/// OK iff `name` names a known algorithm of either plan class.
Status ValidateAlgorithm(const std::string& name);

/// Every algorithm name MakeOrderOptimizer/MakeTreeOptimizer accept, in
/// presentation order (order algorithms first). Used to build the
/// "unknown algorithm" error message.
std::vector<std::string> KnownAlgorithms();

/// The order algorithms the paper's evaluation compares (Sec. 7.1), in
/// presentation order.
std::vector<std::string> PaperOrderAlgorithms();

/// The tree algorithms the paper's evaluation compares.
std::vector<std::string> PaperTreeAlgorithms();

}  // namespace cepjoin

#endif  // CEPJOIN_OPTIMIZER_REGISTRY_H_
