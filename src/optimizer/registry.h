#ifndef CEPJOIN_OPTIMIZER_REGISTRY_H_
#define CEPJOIN_OPTIMIZER_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "optimizer/optimizer.h"

namespace cepjoin {

/// Creates an order-plan generator by name: TRIVIAL, EFREQ, GREEDY,
/// II-RANDOM, II-GREEDY, DP-LD, KBZ, SA. Aborts on unknown names.
std::unique_ptr<OrderOptimizer> MakeOrderOptimizer(const std::string& name,
                                                   uint64_t seed = 7);

/// Creates a tree-plan generator by name: ZSTREAM, ZSTREAM-ORD, DP-B.
std::unique_ptr<TreeOptimizer> MakeTreeOptimizer(const std::string& name);

/// The order algorithms the paper's evaluation compares (Sec. 7.1), in
/// presentation order.
std::vector<std::string> PaperOrderAlgorithms();

/// The tree algorithms the paper's evaluation compares.
std::vector<std::string> PaperTreeAlgorithms();

}  // namespace cepjoin

#endif  // CEPJOIN_OPTIMIZER_REGISTRY_H_
