#include "optimizer/kbz.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "common/check.h"
#include "cost/asi.h"

namespace cepjoin {

namespace {

// A maximal run of slots treated as an atomic unit during chain merging.
struct Module {
  std::vector<int> slots;
  double c = 0.0;  // C(slots)
  double t = 1.0;  // T(slots)

  double rank() const {
    // C > 0 for non-empty modules with positive factors.
    return (t - 1.0) / c;
  }
};

Module Fuse(const Module& a, const Module& b) {
  Module out;
  out.slots = a.slots;
  out.slots.insert(out.slots.end(), b.slots.begin(), b.slots.end());
  out.c = a.c + a.t * b.c;
  out.t = a.t * b.t;
  return out;
}

// Merges rank-ascending chains into one rank-ascending chain.
std::vector<Module> RankMerge(std::vector<std::vector<Module>> chains) {
  std::vector<Module> merged;
  while (true) {
    int best = -1;
    for (size_t i = 0; i < chains.size(); ++i) {
      if (chains[i].empty()) continue;
      if (best < 0 || chains[i].front().rank() < chains[best].front().rank()) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    merged.push_back(std::move(chains[best].front()));
    chains[best].erase(chains[best].begin());
  }
  return merged;
}

}  // namespace

OrderPlan KbzOptimizer::LinearizeTree(const CostFunction& cost,
                                      const std::vector<int>& parent) {
  int n = cost.size();
  CEPJOIN_CHECK_EQ(static_cast<int>(parent.size()), n);
  PatternStats stats(n);
  for (int i = 0; i < n; ++i) {
    stats.set_rate(i, cost.rate(i));
    for (int j = i; j < n; ++j) stats.set_sel(i, j, cost.sel(i, j));
  }
  AsiContext ctx = MakeAsiContext(stats, cost.window(), parent);

  std::vector<std::vector<int>> children(n);
  int root = -1;
  for (int i = 0; i < n; ++i) {
    if (parent[i] < 0) {
      CEPJOIN_CHECK_EQ(root, -1) << "precedence tree must have one root";
      root = i;
    } else {
      children[parent[i]].push_back(i);
    }
  }
  CEPJOIN_CHECK_GE(root, 0);

  // Bottom-up linearization: each subtree becomes a rank-ascending chain
  // of modules headed by its root; out-of-rank-order heads are fused
  // (IKKBZ normalization).
  std::function<std::vector<Module>(int)> linearize =
      [&](int v) -> std::vector<Module> {
    std::vector<std::vector<Module>> child_chains;
    child_chains.reserve(children[v].size());
    for (int c : children[v]) child_chains.push_back(linearize(c));
    std::vector<Module> chain = RankMerge(std::move(child_chains));
    Module head;
    head.slots = {v};
    head.c = ctx.factor[v];
    head.t = ctx.factor[v];
    while (!chain.empty() && chain.front().rank() < head.rank()) {
      head = Fuse(head, chain.front());
      chain.erase(chain.begin());
    }
    chain.insert(chain.begin(), std::move(head));
    return chain;
  };

  std::vector<Module> chain = linearize(root);
  std::vector<int> order;
  order.reserve(n);
  for (const Module& m : chain) {
    order.insert(order.end(), m.slots.begin(), m.slots.end());
  }
  return OrderPlan(std::move(order));
}

std::vector<int> KbzOptimizer::SpanningTreeParents(const CostFunction& cost,
                                                   int root) {
  int n = cost.size();
  // Prim's algorithm minimizing edge selectivity (most selective predicates
  // first); slots with no predicate connection join via sel-1 edges.
  std::vector<int> parent(n, -1);
  std::vector<bool> in_tree(n, false);
  std::vector<double> best_sel(n, std::numeric_limits<double>::infinity());
  std::vector<int> best_from(n, root);
  in_tree[root] = true;
  for (int j = 0; j < n; ++j) {
    if (j == root) continue;
    best_sel[j] = cost.sel(root, j);
    best_from[j] = root;
  }
  for (int step = 1; step < n; ++step) {
    int pick = -1;
    for (int j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      if (pick < 0 || best_sel[j] < best_sel[pick]) pick = j;
    }
    in_tree[pick] = true;
    parent[pick] = best_from[pick];
    for (int j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      if (cost.sel(pick, j) < best_sel[j]) {
        best_sel[j] = cost.sel(pick, j);
        best_from[j] = pick;
      }
    }
  }
  return parent;
}

OrderPlan KbzOptimizer::Optimize(const CostFunction& cost) const {
  int n = cost.size();
  OrderPlan best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int root = 0; root < n; ++root) {
    OrderPlan candidate =
        LinearizeTree(cost, SpanningTreeParents(cost, root));
    double c = cost.OrderCost(candidate);
    if (c < best_cost) {
      best_cost = c;
      best = candidate;
    }
  }
  return best;
}

}  // namespace cepjoin
