#ifndef CEPJOIN_STATS_COLLECTOR_H_
#define CEPJOIN_STATS_COLLECTOR_H_

#include <vector>

#include "event/stream.h"
#include "pattern/pattern.h"
#include "stats/statistics.h"

namespace cepjoin {

/// Options controlling the statistics preprocessing pass.
struct CollectorOptions {
  /// How many events per type to retain as a selectivity sample.
  size_t sample_events_per_type = 2000;
  /// Cap on sampled (left, right) pairs per condition.
  size_t max_pairs = 20000;
  /// Replace Kleene-slot rates with the Theorem 4 power-set rate.
  bool apply_kleene_transform = true;
  double kleene_max_exponent = 30.0;
};

/// Offline statistics collector — the equivalent of the paper's
/// preprocessing stage that measured arrival rates and predicate
/// selectivities on the NASDAQ stream before plan generation.
class StatsCollector {
 public:
  /// Scans the stream once, recording per-type rates and per-type samples.
  StatsCollector(const EventStream& stream, size_t num_types,
                 const CollectorOptions& options = {});

  /// Mean arrival rate of one type, events per second.
  double TypeRate(TypeId type) const;
  /// Total stream rate, events per second.
  double total_rate() const { return total_rate_; }

  /// Builds plan-time statistics for the pattern's positive slots: rates
  /// from the stream, selectivities from declared values or pair sampling,
  /// contiguity predicates materialized per the pattern's strategy, and
  /// the Kleene rate transform applied.
  PatternStats CollectForPattern(const SimplePattern& pattern) const;

  /// Estimated selectivity of one condition whose endpoints have the given
  /// types: declared selectivity if present, otherwise the fraction of
  /// sampled pairs satisfying it.
  double ConditionSelectivity(const Condition& condition, TypeId left_type,
                              TypeId right_type) const;

  /// Planner's estimate for one strict-contiguity adjacency predicate.
  double StrictAdjacencySelectivity(Timestamp window) const;

 private:
  CollectorOptions options_;
  std::vector<double> rates_;
  double total_rate_ = 0.0;
  std::vector<std::vector<EventPtr>> samples_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_STATS_COLLECTOR_H_
