#include "stats/collector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "pattern/rewrite.h"

namespace cepjoin {

StatsCollector::StatsCollector(const EventStream& stream, size_t num_types,
                               const CollectorOptions& options)
    : options_(options), rates_(num_types, 0.0), samples_(num_types) {
  Timestamp duration = stream.Duration();
  if (duration <= 0.0) duration = 1.0;
  std::vector<size_t> counts(num_types, 0);
  for (const EventPtr& e : stream.events()) {
    CEPJOIN_CHECK(e->type < num_types);
    ++counts[e->type];
    if (samples_[e->type].size() < options_.sample_events_per_type) {
      samples_[e->type].push_back(e);
    }
  }
  for (size_t t = 0; t < num_types; ++t) {
    rates_[t] = static_cast<double>(counts[t]) / duration;
    total_rate_ += rates_[t];
  }
}

double StatsCollector::TypeRate(TypeId type) const {
  CEPJOIN_CHECK(type < rates_.size());
  return rates_[type];
}

double StatsCollector::StrictAdjacencySelectivity(Timestamp window) const {
  if (total_rate_ <= 0.0 || window <= 0.0) return 1.0;
  return std::min(1.0, 1.0 / (window * total_rate_));
}

double StatsCollector::ConditionSelectivity(const Condition& condition,
                                            TypeId left_type,
                                            TypeId right_type) const {
  double declared = condition.DeclaredSelectivity();
  if (!std::isnan(declared)) return declared;
  const std::vector<EventPtr>& left = samples_[left_type];
  const std::vector<EventPtr>& right = samples_[right_type];
  if (condition.unary()) {
    if (left.empty()) return 1.0;
    size_t hits = 0;
    for (const EventPtr& e : left) {
      if (condition.Eval(*e, *e)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(left.size());
  }
  if (left.empty() || right.empty()) return 1.0;
  size_t total = left.size() * right.size();
  size_t stride = std::max<size_t>(1, total / options_.max_pairs);
  size_t hits = 0;
  size_t tried = 0;
  for (size_t k = 0; k < total; k += stride) {
    const Event& l = *left[k / right.size()];
    const Event& r = *right[k % right.size()];
    if (&l == &r) continue;  // same-type conditions: skip self pairs
    ++tried;
    if (condition.Eval(l, r)) ++hits;
  }
  if (tried == 0) return 1.0;
  return static_cast<double>(hits) / static_cast<double>(tried);
}

PatternStats StatsCollector::CollectForPattern(
    const SimplePattern& pattern) const {
  SimplePattern rewritten = RewriteForPlanning(
      pattern, StrictAdjacencySelectivity(pattern.window()));
  const std::vector<int>& positives = rewritten.positive_positions();
  int n = static_cast<int>(positives.size());
  PatternStats stats(n);

  // Map pattern position -> index among positives (-1 for negated slots).
  std::vector<int> positive_index(rewritten.size(), -1);
  for (int k = 0; k < n; ++k) positive_index[positives[k]] = k;

  for (int k = 0; k < n; ++k) {
    stats.set_rate(k, TypeRate(rewritten.events()[positives[k]].type));
  }

  for (const ConditionPtr& c : rewritten.conditions()) {
    int lp = positive_index[c->left()];
    int rp = positive_index[c->right()];
    // Conditions touching negated slots are guards for the negation check,
    // not part of the positive-plan statistics.
    if (lp < 0 || rp < 0) continue;
    TypeId lt = rewritten.events()[c->left()].type;
    TypeId rt = rewritten.events()[c->right()].type;
    double s = ConditionSelectivity(*c, lt, rt);
    if (c->unary()) {
      stats.set_sel(lp, lp, stats.sel(lp, lp) * s);
    } else {
      stats.set_sel(lp, rp, stats.sel(lp, rp) * s);
    }
  }

  // Theorem 4: replace the Kleene slot with the power-set type T'. Unary
  // filters on the slot bound which events can join a set at all, so the
  // power set is taken over the *filtered* rate; the filter selectivity
  // folds into the rate and the diagonal resets to 1.
  if (options_.apply_kleene_transform) {
    for (int k = 0; k < n; ++k) {
      if (!rewritten.events()[positives[k]].kleene) continue;
      double filtered = stats.rate(k) * stats.sel(k, k);
      stats.set_rate(k, KleeneEffectiveRate(filtered, rewritten.window(),
                                            options_.kleene_max_exponent));
      stats.set_sel(k, k, 1.0);
    }
  }
  return stats;
}

}  // namespace cepjoin
