#include "stats/online_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "pattern/rewrite.h"

namespace cepjoin {

OnlineStatsEstimator::OnlineStatsEstimator(size_t num_types, double half_life,
                                           size_t reservoir_per_type)
    : lambda_(std::log(2.0) / half_life),
      counters_(num_types),
      reservoirs_(num_types),
      reservoir_per_type_(reservoir_per_type) {
  CEPJOIN_CHECK_GT(half_life, 0.0);
}

void OnlineStatsEstimator::Observe(const Event& e) {
  CEPJOIN_CHECK(e.type < counters_.size());
  if (!saw_event_) {
    first_ts_ = e.ts;
    saw_event_ = true;
  }
  now_ = e.ts;
  DecayedCounter& c = counters_[e.type];
  c.weight = DecayedWeight(c) + 1.0;
  c.last_ts = e.ts;
  std::deque<EventPtr>& reservoir = reservoirs_[e.type];
  reservoir.push_back(std::make_shared<const Event>(e));
  if (reservoir.size() > reservoir_per_type_) reservoir.pop_front();
}

double OnlineStatsEstimator::DecayedWeight(const DecayedCounter& c) const {
  if (c.weight == 0.0) return 0.0;
  return c.weight * std::exp(-lambda_ * (now_ - c.last_ts));
}

double OnlineStatsEstimator::Rate(TypeId type) const {
  CEPJOIN_CHECK(type < counters_.size());
  // A decayed counter with rate r converges to r / lambda; invert that.
  // Before convergence (early in the stream) normalize by the elapsed
  // effective horizon instead.
  double horizon = std::min(1.0 / lambda_, std::max(1e-9, now_ - first_ts_));
  return DecayedWeight(counters_[type]) / horizon;
}

double OnlineStatsEstimator::total_rate() const {
  double sum = 0.0;
  for (size_t t = 0; t < counters_.size(); ++t) {
    sum += Rate(static_cast<TypeId>(t));
  }
  return sum;
}

double OnlineStatsEstimator::SampleSelectivity(const Condition& condition,
                                               TypeId left,
                                               TypeId right) const {
  double declared = condition.DeclaredSelectivity();
  if (!std::isnan(declared)) return declared;
  const std::deque<EventPtr>& ls = reservoirs_[left];
  const std::deque<EventPtr>& rs = reservoirs_[right];
  if (condition.unary()) {
    if (ls.empty()) return 1.0;
    size_t hits = 0;
    for (const EventPtr& e : ls) {
      if (condition.Eval(*e, *e)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(ls.size());
  }
  if (ls.empty() || rs.empty()) return 1.0;
  size_t hits = 0;
  size_t tried = 0;
  for (const EventPtr& l : ls) {
    for (const EventPtr& r : rs) {
      if (l.get() == r.get()) continue;
      ++tried;
      if (condition.Eval(*l, *r)) ++hits;
    }
  }
  if (tried == 0) return 1.0;
  return static_cast<double>(hits) / static_cast<double>(tried);
}

PatternStats OnlineStatsEstimator::EstimateForPattern(
    const SimplePattern& pattern) const {
  double adjacency =
      total_rate() > 0.0
          ? std::min(1.0, 1.0 / (pattern.window() * total_rate()))
          : 1.0;
  SimplePattern rewritten = RewriteForPlanning(pattern, adjacency);
  const std::vector<int>& positives = rewritten.positive_positions();
  int n = static_cast<int>(positives.size());
  PatternStats stats(n);
  std::vector<int> positive_index(rewritten.size(), -1);
  for (int k = 0; k < n; ++k) positive_index[positives[k]] = k;
  for (int k = 0; k < n; ++k) {
    stats.set_rate(k, Rate(rewritten.events()[positives[k]].type));
  }
  for (const ConditionPtr& c : rewritten.conditions()) {
    int lp = positive_index[c->left()];
    int rp = positive_index[c->right()];
    if (lp < 0 || rp < 0) continue;
    TypeId lt = rewritten.events()[c->left()].type;
    TypeId rt = rewritten.events()[c->right()].type;
    double s = SampleSelectivity(*c, lt, rt);
    if (c->unary()) {
      stats.set_sel(lp, lp, stats.sel(lp, lp) * s);
    } else {
      stats.set_sel(lp, rp, stats.sel(lp, rp) * s);
    }
  }
  // Kleene power-set rate over the filtered slot rate (mirrors
  // StatsCollector::CollectForPattern).
  for (int k = 0; k < n; ++k) {
    if (!rewritten.events()[positives[k]].kleene) continue;
    double filtered = std::max(stats.rate(k) * stats.sel(k, k), 1e-12);
    stats.set_rate(k, KleeneEffectiveRate(filtered, rewritten.window()));
    stats.set_sel(k, k, 1.0);
  }
  return stats;
}

}  // namespace cepjoin
