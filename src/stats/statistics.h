#ifndef CEPJOIN_STATS_STATISTICS_H_
#define CEPJOIN_STATS_STATISTICS_H_

#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/types.h"

namespace cepjoin {

/// Plan-time statistics for the n *positive* slots of a pattern, in
/// positive-position order: arrival rate per slot type (events/second) and
/// the pairwise selectivity matrix. The diagonal holds unary-filter
/// selectivities; off-diagonal entries are symmetric.
///
/// These are exactly the inputs the paper's cost functions consume
/// (Sec. 4.1) and, via |R_i| = W·r_i and f_ij = sel_ij, the inputs of the
/// join-side cost functions (Theorem 1 reduction).
class PatternStats {
 public:
  explicit PatternStats(int n);

  int size() const { return static_cast<int>(rates_.size()); }

  double rate(int i) const { return rates_[i]; }
  void set_rate(int i, double r) { rates_[i] = r; }

  double sel(int i, int j) const { return sel_.At(i, j); }
  /// Sets sel(i, j) and sel(j, i).
  void set_sel(int i, int j, double s) {
    sel_.At(i, j) = s;
    sel_.At(j, i) = s;
  }

  std::string Describe() const;

 private:
  std::vector<double> rates_;
  Matrix sel_;
};

/// Theorem 4: effective arrival rate of the power-set type T' standing in
/// for KL(T) during plan generation, r' = 2^{r·W} / W. The exponent is
/// clamped at `max_exponent` to keep costs finite; the clamp preserves the
/// property that Kleene slots dominate every non-Kleene slot, which is all
/// plan generation needs.
double KleeneEffectiveRate(double rate, Timestamp window,
                           double max_exponent = 30.0);

}  // namespace cepjoin

#endif  // CEPJOIN_STATS_STATISTICS_H_
