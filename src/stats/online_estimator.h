#ifndef CEPJOIN_STATS_ONLINE_ESTIMATOR_H_
#define CEPJOIN_STATS_ONLINE_ESTIMATOR_H_

#include <deque>
#include <vector>

#include "event/event.h"
#include "pattern/pattern.h"
#include "stats/statistics.h"

namespace cepjoin {

/// Online sliding-window estimator of arrival rates and condition
/// selectivities, feeding the adaptive runtime (Sec. 6.3). Rates use
/// exponentially decayed counters; selectivities are re-sampled on demand
/// from per-type reservoirs of recent events.
class OnlineStatsEstimator {
 public:
  /// `half_life` — seconds after which an observation's weight halves.
  OnlineStatsEstimator(size_t num_types, double half_life,
                       size_t reservoir_per_type = 256);

  void Observe(const Event& e);

  /// Current decayed rate estimate for one type (events/second).
  double Rate(TypeId type) const;

  /// Builds PatternStats for the pattern's positive slots from the current
  /// estimates (mirrors StatsCollector::CollectForPattern).
  PatternStats EstimateForPattern(const SimplePattern& pattern) const;

  double total_rate() const;
  Timestamp now() const { return now_; }

 private:
  struct DecayedCounter {
    double weight = 0.0;      // decayed event count
    Timestamp last_ts = 0.0;  // time of last decay application
  };

  double DecayedWeight(const DecayedCounter& c) const;
  double SampleSelectivity(const Condition& condition, TypeId left,
                           TypeId right) const;

  double lambda_;  // decay rate = ln2 / half_life
  Timestamp now_ = 0.0;
  bool saw_event_ = false;
  Timestamp first_ts_ = 0.0;
  std::vector<DecayedCounter> counters_;
  std::vector<std::deque<EventPtr>> reservoirs_;
  size_t reservoir_per_type_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_STATS_ONLINE_ESTIMATOR_H_
