#include "stats/statistics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace cepjoin {

PatternStats::PatternStats(int n) : rates_(n, 0.0), sel_(n, n, 1.0) {
  CEPJOIN_CHECK_GT(n, 0);
}

std::string PatternStats::Describe() const {
  std::ostringstream os;
  os << "rates: [";
  for (int i = 0; i < size(); ++i) {
    if (i > 0) os << ", ";
    os << rates_[i];
  }
  os << "], sel:\n";
  for (int i = 0; i < size(); ++i) {
    os << "  ";
    for (int j = 0; j < size(); ++j) {
      os << sel_.At(i, j) << (j + 1 == size() ? "\n" : " ");
    }
  }
  return os.str();
}

double KleeneEffectiveRate(double rate, Timestamp window,
                           double max_exponent) {
  CEPJOIN_CHECK_GT(window, 0.0);
  double exponent = std::min(rate * window, max_exponent);
  return std::exp2(exponent) / window;
}

}  // namespace cepjoin
