#ifndef CEPJOIN_DURABLE_CHECKPOINT_COORDINATOR_H_
#define CEPJOIN_DURABLE_CHECKPOINT_COORDINATOR_H_

#include <cstdint>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "durable/checkpoint_store.h"
#include "obs/metrics.h"

namespace cepjoin {

class CepService;

/// Policy and wiring of periodic checkpoints.
struct CheckpointOptions {
  /// Checkpoint directory (created if missing).
  std::string dir;
  /// Minimum event-time advance of the ingest watermark between cuts:
  /// MaybeCheckpoint(watermark) only captures once the watermark has
  /// moved at least this far past the previous cut's. 0 cuts on every
  /// eligible call.
  double min_watermark_advance = 0.0;
  /// Observability registry (not owned, may be null = metrics off).
  /// Instruments: cep_checkpoints_total / _failures_total /
  /// _skipped_total, cep_checkpoint_stall_seconds (capture stall on the
  /// ingest thread), cep_checkpoint_bytes and cep_checkpoint_last_seq
  /// gauges.
  MetricsRegistry* metrics = nullptr;
};

/// Cuts watermark-aligned checkpoints of a CepService and writes them
/// behind the ingest thread.
///
/// Split of work: the CAPTURE (CepService::CaptureCheckpointBytes) runs
/// synchronously on the caller's thread — the service is single-caller,
/// so only its thread may observe engine state, and the stall it pays is
/// exactly the serialization cost (measured by
/// cep_checkpoint_stall_seconds). The WRITE (CRC framing, atomic
/// tmp+rename, manifest publish) runs on the coordinator's writer
/// thread, overlapping ingest. At most one write is in flight; while the
/// writer is busy, MaybeCheckpoint declines new cuts (counted by
/// cep_checkpoints_skipped_total) instead of queueing stale payloads.
///
/// Usage, on the ingest thread:
///
///   CheckpointCoordinator coordinator(&service, {.dir = "ckpts"});
///   CEPJOIN_CHECK_OK(coordinator.Start());
///   while (auto fed = service.PumpAttachedSources(4096)) {
///     if (fed.value() == 0) break;
///     CEPJOIN_CHECK_OK(coordinator.MaybeCheckpoint(watermark).status());
///   }
///   CEPJOIN_CHECK_OK(coordinator.Stop());  // flush + first write error
class CheckpointCoordinator {
 public:
  CheckpointCoordinator(CepService* service, CheckpointOptions options);
  ~CheckpointCoordinator();

  CheckpointCoordinator(const CheckpointCoordinator&) = delete;
  CheckpointCoordinator& operator=(const CheckpointCoordinator&) = delete;

  /// Opens the store (adopting any existing checkpoint chain, so
  /// sequence numbers continue across restarts) and starts the writer
  /// thread. Callable once.
  Status Start();

  /// Cuts a checkpoint if policy allows: the watermark must have
  /// advanced min_watermark_advance past the previous cut's and the
  /// writer must be idle. Returns true when a capture was handed to the
  /// writer, false when the call was a policy skip; errors are capture
  /// failures (the service's, surfaced synchronously).
  StatusOr<bool> MaybeCheckpoint(double watermark);

  /// Unconditional cut: waits for the writer to go idle, captures, and
  /// hands off. Policy (watermark advance) is bypassed; the write itself
  /// still completes asynchronously (Stop() to force it to disk).
  Status CheckpointNow(double watermark);

  /// Flushes the pending write, joins the writer thread, and returns the
  /// first write error of the session (Ok if every publish landed).
  /// Idempotent; the destructor calls it and discards the status.
  Status Stop();

  /// Checkpoints successfully published so far.
  uint64_t published() const CEPJOIN_EXCLUDES(mu_);

 private:
  void WriterLoop();
  /// Captures and enqueues; callers hold no lock. Requires idle writer.
  Status CutLocked(double watermark) CEPJOIN_REQUIRES(mu_);

  CepService* service_;  // not owned
  CheckpointOptions options_;
  CheckpointStore store_;  // writer-thread-confined after Start()
  std::thread writer_;
  bool started_ = false;
  bool stopped_ = false;

  // Metrics handles (null = metrics off), resolved at construction.
  Counter* checkpoints_total_ = nullptr;
  Counter* checkpoint_failures_ = nullptr;
  Counter* checkpoints_skipped_ = nullptr;
  Histogram* stall_seconds_ = nullptr;
  Gauge* checkpoint_bytes_ = nullptr;
  Gauge* last_seq_ = nullptr;

  mutable Mutex mu_;
  CondVar cv_;
  /// Payload handed to the writer; meaningful while has_pending_.
  std::string pending_ CEPJOIN_GUARDED_BY(mu_);
  bool has_pending_ CEPJOIN_GUARDED_BY(mu_) = false;
  bool shutdown_ CEPJOIN_GUARDED_BY(mu_) = false;
  /// Watermark of the last accepted cut (policy baseline).
  double last_cut_watermark_ CEPJOIN_GUARDED_BY(mu_) = 0.0;
  bool have_cut_ CEPJOIN_GUARDED_BY(mu_) = false;
  uint64_t published_ CEPJOIN_GUARDED_BY(mu_) = 0;
  /// First write failure; later publishes still proceed (a transient
  /// disk error must not end checkpointing), but Stop() reports it.
  Status first_write_error_ CEPJOIN_GUARDED_BY(mu_) = Status::Ok();
};

}  // namespace cepjoin

#endif  // CEPJOIN_DURABLE_CHECKPOINT_COORDINATOR_H_
