#ifndef CEPJOIN_DURABLE_FAULT_INJECTOR_H_
#define CEPJOIN_DURABLE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace cepjoin {

/// Deterministic fault injection for the durability layer. Always
/// compiled in (the disabled fast path is one relaxed atomic load), so
/// the binaries CI ships are the binaries the crash matrix exercises —
/// recovery code that only works in a special build proves nothing.
///
/// Two trigger surfaces:
///  - programmatic: tests call the setters below before driving a
///    checkpoint and assert on the resulting Status;
///  - environment: the exec-self crash harness sets CEPJOIN_KILL_POINT
///    (and optionally CEPJOIN_KILL_COUNT) in a child process, which then
///    _exit(kKillExitCode)s the Nth time the named kill point is passed
///    — a hard crash with no destructors, flushes, or atexit handlers,
///    exactly like SIGKILL mid-operation.
///
/// Kill point names used by the checkpoint writer (durable/
/// checkpoint_store.cc): WriteFileAtomic fires
/// "<prefix>-mid-write" (after the first partial write of the tmp file),
/// "<prefix>-before-rename" (tmp complete and fsynced, rename pending)
/// and "<prefix>-after-rename" with prefix "snapshot" for the snapshot
/// file and "manifest" for the manifest; the store additionally fires
/// "snapshot-written" (snapshot durable, manifest untouched) and
/// "manifest-published" (new checkpoint visible, old files not yet
/// collected). A crash at ANY of them must leave the previous
/// checkpoint restorable.
class FaultInjector {
 public:
  /// Exit code of an injected kill; chosen to be distinguishable from
  /// crashes (signals) and clean failures in the harness's waitpid.
  static constexpr int kKillExitCode = 87;

  /// Process-global injector, configured from the environment on first
  /// use. All durable-layer I/O consults this instance.
  static FaultInjector& Global();

  /// Fails the Nth WriteOp from now (1 = the next one) with an injected
  /// I/O error; 0 disables.
  void FailNthWrite(uint64_t n) { fail_write_at_.store(n); }

  /// Truncates the next written snapshot file to `bytes` after a
  /// successful write (torn-write simulation); -1 disables.
  void TruncateNextWrite(int64_t bytes) { truncate_next_.store(bytes); }

  /// Flips one bit at `byte_offset` of the next written snapshot file
  /// (silent-corruption simulation); -1 disables.
  void CorruptNextWrite(int64_t byte_offset) {
    corrupt_next_.store(byte_offset);
  }

  /// Arms a named kill point: the `count`th time MaybeKill(point) runs,
  /// the process _exit()s immediately.
  void ArmKillPoint(const std::string& point, uint64_t count = 1);
  void DisarmKillPoint();

  /// True if the caller's write should fail (consumes one trigger).
  bool ShouldFailWrite();
  /// Consumes and returns the pending truncation length, or -1.
  int64_t TakeTruncation() { return truncate_next_.exchange(-1); }
  /// Consumes and returns the pending bit-flip offset, or -1.
  int64_t TakeCorruption() { return corrupt_next_.exchange(-1); }
  /// _exit(kKillExitCode)s if `point` matches the armed kill point and
  /// its countdown reaches zero. No-op (one atomic load) when disarmed.
  void MaybeKill(const char* point);

  /// Clears every armed fault (tests call this in SetUp/TearDown).
  void Reset();

 private:
  FaultInjector();

  std::atomic<uint64_t> fail_write_at_{0};
  std::atomic<int64_t> truncate_next_{-1};
  std::atomic<int64_t> corrupt_next_{-1};
  std::atomic<uint64_t> kill_count_{0};
  std::atomic<bool> kill_armed_{false};
  std::string kill_point_;  // written only while disarmed
};

}  // namespace cepjoin

#endif  // CEPJOIN_DURABLE_FAULT_INJECTOR_H_
