#include "durable/snapshot_codec.h"

#include <memory>
#include <utility>

namespace cepjoin {

// ===== CODEC MANIFEST ====================================================
// Pinned by tools/cep_lint.py (rule: codec-manifest). Every mutable data
// member of the classes below must appear on exactly one side: serialized
// (encoded by SaveState/WriteCounters and decoded in the same order) or
// rebuilt (reconstructed from the (pattern, plan) at engine construction,
// or transient per-batch scratch). Adding a member without updating the
// matching list — and bumping kEngineStateFormatVersion when a serialized
// list changes — fails the lint ctest, which is the point: silent state
// loss across a checkpoint is the one durability bug no test stream is
// guaranteed to catch.
//
// codec-manifest: EngineCounters serialized = events_processed
//   instances_created matches_emitted predicate_evals
//   instance_kernel_lanes instance_kernel_blocks retractions_processed
//   matches_revoked live_instances peak_live_instances buffered_events
//   peak_buffered_events instance_bytes buffered_bytes store_bytes
//   peak_total_bytes
//
// codec-manifest: NfaEngine serialized = buffers_ by_state_ pending_
//   emitted_ emitted_scan_threshold_ now_ current_serial_
//   events_since_sweep_ counters_
// codec-manifest: NfaEngine rebuilt = cp_ plan_ sink_ step_pos_
//   kleene_step_ steps_of_type_ checks_at_state_ completion_checks_
//   trailing_checks_ arrival_start_ next_match_ track_deltas_
//   use_columnar_
//
// codec-manifest: TreeEngine serialized = node_buffers_ neg_buffers_
//   pending_ emitted_ emitted_scan_threshold_ now_ current_serial_
//   events_since_sweep_ counters_
// codec-manifest: TreeEngine rebuilt = cp_ plan_ sink_ kleene_pos_
//   leaves_of_type_ cross_pairs_ checks_at_node_ completion_checks_
//   trailing_checks_ leaf_columns_ leaf_mirrored_ instance_stores_
//   instance_mirrored_ arrival_start_ next_match_ track_deltas_
//   use_columnar_
// (leaf_columns_ / instance_stores_ are mirrors of node_buffers_: restore
// replays the NewInstance append path per decoded instance, so lane k ==
// instance k congruence holds by construction.)
// =========================================================================

uint32_t EngineStateWriter::Intern(const EventPtr& e) {
  auto [it, inserted] =
      index_.emplace(e.get(), static_cast<uint32_t>(table_.size()));
  if (inserted) table_.push_back(e);
  return it->second;
}

void EngineStateWriter::EventRef(const EventPtr& e) {
  payload_.U32(Intern(e));
}

void EngineStateWriter::NullableEventRef(const EventPtr& e) {
  // 0 = null; otherwise table index + 1.
  payload_.U32(e == nullptr ? 0 : Intern(e) + 1);
}

void EngineStateWriter::EventList(const std::vector<EventPtr>& events) {
  payload_.U64(events.size());
  for (const EventPtr& e : events) NullableEventRef(e);
}

void EngineStateWriter::WriteMatch(const Match& m) {
  payload_.U64(m.slots.size());
  for (const auto& slot : m.slots) {
    payload_.U64(slot.size());
    for (const EventPtr& e : slot) EventRef(e);
  }
  payload_.F64(m.last_ts);
  payload_.U64(m.last_event_serial);
  payload_.U64(m.emit_serial);
  payload_.F64(m.latency_seconds);
  payload_.U32(static_cast<uint32_t>(m.subpattern));
  payload_.I8(m.polarity);
}

void EngineStateWriter::WriteCounters(const EngineCounters& c) {
  payload_.U64(c.events_processed);
  payload_.U64(c.instances_created);
  payload_.U64(c.matches_emitted);
  payload_.U64(c.predicate_evals);
  payload_.U64(c.instance_kernel_lanes);
  payload_.U64(c.instance_kernel_blocks);
  payload_.U64(c.retractions_processed);
  payload_.U64(c.matches_revoked);
  payload_.U64(c.live_instances);
  payload_.U64(c.peak_live_instances);
  payload_.U64(c.buffered_events);
  payload_.U64(c.peak_buffered_events);
  payload_.U64(c.instance_bytes);
  payload_.U64(c.buffered_bytes);
  payload_.U64(c.store_bytes);
  payload_.U64(c.peak_total_bytes);
}

std::string EngineStateWriter::Finish() {
  SnapshotWriter out;
  out.U32(static_cast<uint32_t>(table_.size()));
  for (const EventPtr& e : table_) {
    out.U32(e->type);
    out.U64(e->serial);
    out.U32(e->partition);
    out.I8(e->polarity);
    out.U64(e->partition_seq);
    out.F64(e->ts);
    out.F64(e->target_ts);
    out.U64(e->target_serial);
    out.U32(static_cast<uint32_t>(e->attrs.size()));
    for (size_t a = 0; a < e->attrs.size(); ++a) out.F64(e->attrs[a]);
  }
  out.Raw(payload_.bytes().data(), payload_.size());
  return std::move(out.Take());
}

Status EngineStateReader::Init() {
  uint32_t count = reader_.U32();
  // Each table entry is at least 46 bytes; reject impossible counts
  // before reserving memory for them.
  if (reader_.ok() &&
      static_cast<uint64_t>(count) * 46 > reader_.remaining()) {
    reader_.Fail("event table count " + std::to_string(count) +
                 " exceeds remaining bytes");
  }
  if (!reader_.ok()) return reader_.status();
  table_.reserve(count);
  for (uint32_t i = 0; i < count && reader_.ok(); ++i) {
    auto e = std::make_shared<Event>();
    e->type = reader_.U32();
    e->serial = reader_.U64();
    e->partition = reader_.U32();
    e->polarity = reader_.I8();
    e->partition_seq = reader_.U64();
    e->ts = reader_.F64();
    e->target_ts = reader_.F64();
    e->target_serial = reader_.U64();
    uint32_t num_attrs = reader_.U32();
    if (static_cast<uint64_t>(num_attrs) * 8 > reader_.remaining()) {
      reader_.Fail("attr count " + std::to_string(num_attrs) +
                   " exceeds remaining bytes");
      break;
    }
    e->attrs.resize(num_attrs);
    for (uint32_t a = 0; a < num_attrs; ++a) e->attrs[a] = reader_.F64();
    table_.push_back(std::move(e));
  }
  return reader_.status();
}

EventPtr EngineStateReader::EventRef() {
  uint32_t idx = reader_.U32();
  if (!reader_.ok()) return nullptr;
  if (idx >= table_.size()) {
    reader_.Fail("event reference " + std::to_string(idx) +
                 " out of table range " + std::to_string(table_.size()));
    return nullptr;
  }
  return table_[idx];
}

EventPtr EngineStateReader::NullableEventRef() {
  uint32_t idx = reader_.U32();
  if (!reader_.ok() || idx == 0) return nullptr;
  if (idx - 1 >= table_.size()) {
    reader_.Fail("event reference " + std::to_string(idx - 1) +
                 " out of table range " + std::to_string(table_.size()));
    return nullptr;
  }
  return table_[idx - 1];
}

std::vector<EventPtr> EngineStateReader::EventList() {
  uint64_t n = reader_.U64();
  // Each reference is 4 bytes.
  if (reader_.ok() && n * 4 > reader_.remaining()) {
    reader_.Fail("event list length " + std::to_string(n) +
                 " exceeds remaining bytes");
  }
  std::vector<EventPtr> out;
  if (!reader_.ok()) return out;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n && reader_.ok(); ++i) {
    out.push_back(NullableEventRef());
  }
  return out;
}

Match EngineStateReader::ReadMatch() {
  Match m;
  uint64_t num_slots = reader_.U64();
  if (reader_.ok() && num_slots * 8 > reader_.remaining()) {
    reader_.Fail("match slot count " + std::to_string(num_slots) +
                 " exceeds remaining bytes");
  }
  if (!reader_.ok()) return m;
  m.slots.resize(static_cast<size_t>(num_slots));
  for (uint64_t s = 0; s < num_slots && reader_.ok(); ++s) {
    uint64_t n = reader_.U64();
    if (n * 4 > reader_.remaining()) {
      reader_.Fail("match slot length " + std::to_string(n) +
                   " exceeds remaining bytes");
      return m;
    }
    m.slots[s].reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n && reader_.ok(); ++i) {
      EventPtr e = EventRef();
      if (e != nullptr) m.slots[s].push_back(std::move(e));
    }
  }
  m.last_ts = reader_.F64();
  m.last_event_serial = reader_.U64();
  m.emit_serial = reader_.U64();
  m.latency_seconds = reader_.F64();
  m.subpattern = static_cast<int>(reader_.U32());
  m.polarity = reader_.I8();
  return m;
}

void EngineStateReader::ReadCounters(EngineCounters* c) {
  c->events_processed = reader_.U64();
  c->instances_created = reader_.U64();
  c->matches_emitted = reader_.U64();
  c->predicate_evals = reader_.U64();
  c->instance_kernel_lanes = reader_.U64();
  c->instance_kernel_blocks = reader_.U64();
  c->retractions_processed = reader_.U64();
  c->matches_revoked = reader_.U64();
  c->live_instances = static_cast<size_t>(reader_.U64());
  c->peak_live_instances = static_cast<size_t>(reader_.U64());
  c->buffered_events = static_cast<size_t>(reader_.U64());
  c->peak_buffered_events = static_cast<size_t>(reader_.U64());
  c->instance_bytes = static_cast<size_t>(reader_.U64());
  c->buffered_bytes = static_cast<size_t>(reader_.U64());
  c->store_bytes = static_cast<size_t>(reader_.U64());
  c->peak_total_bytes = static_cast<size_t>(reader_.U64());
}

}  // namespace cepjoin
