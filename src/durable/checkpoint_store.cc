#include "durable/checkpoint_store.h"

#include <cstring>
#include <utility>

#include "durable/fault_injector.h"
#include "durable/snapshot_io.h"

namespace cepjoin {
namespace {

constexpr char kSnapshotMagic[8] = {'C', 'E', 'P', 'J', 'S', 'N', 'A', 'P'};
constexpr char kManifestMagic[8] = {'C', 'E', 'P', 'J', 'M', 'A', 'N', 'I'};
constexpr char kManifestName[] = "MANIFEST";

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + kManifestName;
}

std::string EncodeManifest(uint64_t current, uint64_t previous) {
  SnapshotWriter w;
  w.Raw(kManifestMagic, sizeof(kManifestMagic));
  w.U32(kCheckpointContainerVersion);
  w.U64(current);
  w.U64(previous);
  w.U32(Crc32(w.bytes().data(), w.size()));
  return w.Take();
}

std::string EncodeSnapshot(const std::string& payload) {
  SnapshotWriter w;
  w.Raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.U32(kCheckpointContainerVersion);
  w.U64(payload.size());
  w.U32(Crc32(payload.data(), payload.size()));
  w.Raw(payload.data(), payload.size());
  return w.Take();
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {}

std::string CheckpointStore::SnapshotPath(const std::string& dir,
                                          uint64_t seq) {
  return dir + "/snapshot-" + std::to_string(seq) + ".ckpt";
}

Status CheckpointStore::ReadManifest(uint64_t* current,
                                     uint64_t* previous) const {
  StatusOr<std::string> bytes = ReadFileToString(ManifestPath(dir_));
  if (!bytes.ok()) return bytes.status();
  const std::string& raw = *bytes;
  SnapshotReader r(raw);
  char magic[sizeof(kManifestMagic)];
  for (char& c : magic) c = static_cast<char>(r.U8());
  if (!r.ok() || std::memcmp(magic, kManifestMagic, sizeof(magic)) != 0) {
    return Status::DataLoss("manifest '" + ManifestPath(dir_) +
                            "' has wrong magic (not a checkpoint manifest, "
                            "or its header was destroyed)");
  }
  uint32_t version = r.U32();
  uint64_t cur = r.U64();
  uint64_t prev = r.U64();
  uint32_t stored_crc = r.U32();
  if (!r.ok() || !r.AtEnd()) {
    return Status::DataLoss("manifest '" + ManifestPath(dir_) +
                            "' is truncated or has trailing bytes");
  }
  uint32_t actual_crc = Crc32(raw.data(), raw.size() - sizeof(uint32_t));
  if (actual_crc != stored_crc) {
    return Status::DataLoss("manifest '" + ManifestPath(dir_) +
                            "' failed its CRC check");
  }
  if (version != kCheckpointContainerVersion) {
    return Status::DataLoss("manifest '" + ManifestPath(dir_) +
                            "' has unsupported container version " +
                            std::to_string(version));
  }
  *current = cur;
  *previous = prev;
  return Status::Ok();
}

Status CheckpointStore::ReadSnapshot(uint64_t seq, std::string* payload) const {
  const std::string path = SnapshotPath(dir_, seq);
  StatusOr<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  const std::string& raw = *bytes;
  SnapshotReader r(raw);
  char magic[sizeof(kSnapshotMagic)];
  for (char& c : magic) c = static_cast<char>(r.U8());
  if (!r.ok() || std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return Status::DataLoss("snapshot '" + path + "' has wrong magic");
  }
  uint32_t version = r.U32();
  uint64_t payload_size = r.U64();
  uint32_t stored_crc = r.U32();
  if (!r.ok()) {
    return Status::DataLoss("snapshot '" + path + "' header is truncated");
  }
  if (version != kCheckpointContainerVersion) {
    return Status::DataLoss("snapshot '" + path +
                            "' has unsupported container version " +
                            std::to_string(version));
  }
  if (r.remaining() != payload_size) {
    return Status::DataLoss(
        "snapshot '" + path + "' is torn: header promises " +
        std::to_string(payload_size) + " payload bytes, file carries " +
        std::to_string(r.remaining()));
  }
  const char* body = raw.data() + (raw.size() - payload_size);
  if (Crc32(body, payload_size) != stored_crc) {
    return Status::DataLoss("snapshot '" + path + "' failed its CRC check");
  }
  payload->assign(body, payload_size);
  return Status::Ok();
}

Status CheckpointStore::Open() {
  CEPJOIN_RETURN_IF_ERROR(EnsureDirectory(dir_));
  uint64_t current = 0;
  uint64_t previous = 0;
  Status manifest = ReadManifest(&current, &previous);
  if (manifest.ok()) {
    published_seq_ = current;
    previous_seq_ = previous;
    next_seq_ = current + 1;
  }
  // NotFound: fresh directory. DataLoss: the chain's pointers are gone;
  // restart numbering after any stray snapshot files rather than failing
  // the writer forever (LoadLatest still reports the corruption).
  opened_ = true;
  return Status::Ok();
}

Status CheckpointStore::WriteCheckpoint(const std::string& payload,
                                        uint64_t* seq_out) {
  if (!opened_) {
    return Status::FailedPrecondition("CheckpointStore::Open() not called");
  }
  const uint64_t seq = next_seq_;
  CEPJOIN_RETURN_IF_ERROR(WriteFileAtomic(SnapshotPath(dir_, seq),
                                          EncodeSnapshot(payload), "snapshot"));
  FaultInjector::Global().MaybeKill("snapshot-written");
  // Phase two: atomically repoint the manifest. Until this rename lands,
  // recovery still resolves the previous chain head.
  CEPJOIN_RETURN_IF_ERROR(WriteFileAtomic(
      ManifestPath(dir_), EncodeManifest(seq, published_seq_), "manifest"));
  FaultInjector::Global().MaybeKill("manifest-published");
  const uint64_t evicted = previous_seq_;
  previous_seq_ = published_seq_;
  published_seq_ = seq;
  next_seq_ = seq + 1;
  if (evicted != 0) RemoveFileIfExists(SnapshotPath(dir_, evicted));
  if (seq_out != nullptr) *seq_out = seq;
  return Status::Ok();
}

StatusOr<CheckpointStore::LoadedCheckpoint> CheckpointStore::LoadLatest()
    const {
  if (!DirectoryExists(dir_)) {
    return Status::NotFound("no checkpoint directory at '" + dir_ + "'");
  }
  uint64_t current = 0;
  uint64_t previous = 0;
  Status manifest = ReadManifest(&current, &previous);
  if (manifest.code() == StatusCode::kNotFound) {
    return Status::NotFound("checkpoint directory '" + dir_ +
                            "' has no manifest (no checkpoint was ever "
                            "published here)");
  }
  CEPJOIN_RETURN_IF_ERROR(manifest);
  LoadedCheckpoint loaded;
  Status head = ReadSnapshot(current, &loaded.payload);
  if (head.ok()) {
    loaded.seq = current;
    return loaded;
  }
  if (previous == 0) return head;
  Status prev = ReadSnapshot(previous, &loaded.payload);
  if (!prev.ok()) {
    return Status::DataLoss("both checkpoints in '" + dir_ +
                            "' are unreadable: current: " + head.message() +
                            "; previous: " + prev.message());
  }
  loaded.seq = previous;
  loaded.fell_back = true;
  loaded.detail = head.message();
  return loaded;
}

}  // namespace cepjoin
