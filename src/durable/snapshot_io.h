#ifndef CEPJOIN_DURABLE_SNAPSHOT_IO_H_
#define CEPJOIN_DURABLE_SNAPSHOT_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cepjoin {

/// CRC-32 (IEEE 802.3 polynomial) over a byte span. The integrity check
/// of every snapshot payload and header: recovery trusts nothing a CRC
/// has not vouched for.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Append-only byte encoder for snapshot payloads. Fixed-width
/// little-endian integers and IEEE-754 bit patterns — byte-identical
/// across runs for identical state, which is what lets tests compare
/// snapshots and what makes the format a future wire format (ROADMAP:
/// "one encoder, two consumers").
class SnapshotWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I8(int8_t v) { U8(static_cast<uint8_t>(v)); }
  void F64(double v);
  void Str(const std::string& s);
  void Raw(const void* data, size_t n);

  const std::string& bytes() const { return bytes_; }
  std::string&& Take() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::string bytes_;
};

/// Bounds-checked decoder over a snapshot payload. Any overrun or
/// malformed field latches a DataLoss status and makes every later read
/// return zero values — so decode loops terminate cleanly on truncated
/// or bit-flipped input and the caller checks status() once at the end.
class SnapshotReader {
 public:
  SnapshotReader(const void* data, size_t n)
      : data_(static_cast<const char*>(data)), size_(n) {}
  explicit SnapshotReader(const std::string& bytes)
      : SnapshotReader(bytes.data(), bytes.size()) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int8_t I8() { return static_cast<int8_t>(U8()); }
  double F64();
  std::string Str();

  /// Marks the payload malformed (a decoder found an impossible value —
  /// e.g. a count larger than the remaining bytes could encode).
  void Fail(const std::string& message);

  [[nodiscard]] bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  bool Need(size_t n);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  Status status_ = Status::Ok();
};

/// Writes `bytes` to `path` atomically: write to `path + ".tmp"`, fsync,
/// rename over `path`, fsync the directory. A crash at any point leaves
/// either the old file or the new one, never a torn mix. Consults the
/// global FaultInjector (injected write failures, post-write truncation
/// or bit-flips, kill points named by `kill_prefix`).
Status WriteFileAtomic(const std::string& path, const std::string& bytes,
                       const char* kill_prefix);

/// Reads a whole file. NotFound if it does not exist, DataLoss on a
/// short read.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Creates `dir` (and parents) if missing.
Status EnsureDirectory(const std::string& dir);

/// True if `path` names an existing directory.
bool DirectoryExists(const std::string& path);

/// Removes a file, ignoring a missing target.
void RemoveFileIfExists(const std::string& path);

}  // namespace cepjoin

#endif  // CEPJOIN_DURABLE_SNAPSHOT_IO_H_
