#include "durable/fault_injector.h"

#include <unistd.h>

#include <cstdlib>

namespace cepjoin {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

FaultInjector::FaultInjector() {
  const char* point = std::getenv("CEPJOIN_KILL_POINT");
  if (point != nullptr && point[0] != '\0') {
    const char* count = std::getenv("CEPJOIN_KILL_COUNT");
    uint64_t n = 1;
    if (count != nullptr) {
      long long parsed = std::atoll(count);
      if (parsed > 0) n = static_cast<uint64_t>(parsed);
    }
    ArmKillPoint(point, n);
  }
}

void FaultInjector::ArmKillPoint(const std::string& point, uint64_t count) {
  kill_armed_.store(false);
  kill_point_ = point;
  kill_count_.store(count == 0 ? 1 : count);
  kill_armed_.store(true);
}

void FaultInjector::DisarmKillPoint() { kill_armed_.store(false); }

bool FaultInjector::ShouldFailWrite() {
  uint64_t at = fail_write_at_.load(std::memory_order_relaxed);
  if (at == 0) return false;
  // Count down; the write that brings the counter to zero fails.
  at = fail_write_at_.fetch_sub(1) - 1;
  return at == 0;
}

void FaultInjector::MaybeKill(const char* point) {
  if (!kill_armed_.load(std::memory_order_relaxed)) return;
  if (kill_point_ != point) return;
  if (kill_count_.fetch_sub(1) - 1 > 0) return;
  // A real crash takes no destructors and flushes nothing; _exit is the
  // closest user-space equivalent to losing the process here.
  _exit(kKillExitCode);
}

void FaultInjector::Reset() {
  fail_write_at_.store(0);
  truncate_next_.store(-1);
  corrupt_next_.store(-1);
  DisarmKillPoint();
}

}  // namespace cepjoin
