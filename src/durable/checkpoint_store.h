#ifndef CEPJOIN_DURABLE_CHECKPOINT_STORE_H_
#define CEPJOIN_DURABLE_CHECKPOINT_STORE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace cepjoin {

/// Version of the checkpoint container (snapshot file + manifest)
/// framing. Independent of kEngineStateFormatVersion: the container can
/// evolve without touching the engine codec and vice versa.
inline constexpr uint32_t kCheckpointContainerVersion = 1;

/// On-disk checkpoint directory with crash-safe publication.
///
/// Layout:
///   <dir>/snapshot-<seq>.ckpt   "CEPJSNAP" | u32 container version |
///                               u64 payload size | u32 payload CRC-32 |
///                               payload bytes
///   <dir>/MANIFEST              "CEPJMANI" | u32 container version |
///                               u64 current seq | u64 previous seq
///                               (0 = none) | u32 CRC-32 of the bytes
///                               before it
///
/// Publication is two-phase: the snapshot file is written atomically
/// (tmp + fsync + rename, durable/snapshot_io.h), THEN the manifest is
/// rewritten — also atomically — to point at it. A crash anywhere in
/// between leaves the previous manifest intact, so recovery always finds
/// a fully written checkpoint; the freshly renamed-but-unpublished
/// snapshot is invisible garbage, collected by the next WriteCheckpoint.
/// The manifest keeps the previous sequence number so a checkpoint whose
/// bytes rotted after publication (torn sector, bit flip — caught by the
/// CRC) still falls back one generation instead of losing everything.
///
/// Fault injection: the snapshot write passes kill points
/// snapshot-{mid-write,before-rename,after-rename} and "snapshot-written"
/// (snapshot durable, manifest untouched); the manifest write passes
/// manifest-{mid-write,before-rename,after-rename} and
/// "manifest-published". The crash matrix (tests/durable/) exercises all
/// of them.
///
/// Single-caller like the service facade; LoadLatest() is const and
/// touches no writer state.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string dir);

  /// Creates the directory if missing and adopts the sequence counter
  /// from an existing manifest (so checkpointing into a reopened
  /// directory continues the chain instead of overwriting it). A
  /// corrupt manifest is treated as absent for writing: the chain
  /// restarts, which is honest — its pointers were already lost.
  Status Open();

  /// Writes `payload` as the next checkpoint and publishes it through
  /// the two-phase manifest update; on success `*seq_out` (if non-null)
  /// receives its sequence number. Keeps the previous checkpoint file,
  /// removes older ones.
  Status WriteCheckpoint(const std::string& payload,
                         uint64_t* seq_out = nullptr);

  struct LoadedCheckpoint {
    std::string payload;
    uint64_t seq = 0;
    /// True when the manifest's current snapshot failed verification and
    /// recovery fell back to the previous one; `detail` says what was
    /// wrong with the current.
    bool fell_back = false;
    std::string detail;
  };

  /// Loads the newest checkpoint that verifies: NotFound (naming the
  /// path) when the directory or its manifest is missing, DataLoss when
  /// the manifest or every referenced snapshot is corrupt — never a
  /// crash, never silently wrong bytes (every byte is CRC-vouched).
  StatusOr<LoadedCheckpoint> LoadLatest() const;

  const std::string& dir() const { return dir_; }
  /// Sequence of the last checkpoint this store published; 0 if none.
  uint64_t published_seq() const { return published_seq_; }

  static std::string SnapshotPath(const std::string& dir, uint64_t seq);

 private:
  /// Decodes + CRC-checks the manifest file. NotFound if absent,
  /// DataLoss if malformed.
  Status ReadManifest(uint64_t* current, uint64_t* previous) const;
  /// Decodes + CRC-checks one snapshot file into `*payload`.
  Status ReadSnapshot(uint64_t seq, std::string* payload) const;

  std::string dir_;
  bool opened_ = false;
  uint64_t next_seq_ = 1;
  uint64_t published_seq_ = 0;  // 0 = nothing published yet
  uint64_t previous_seq_ = 0;
};

}  // namespace cepjoin

#endif  // CEPJOIN_DURABLE_CHECKPOINT_STORE_H_
