#include "durable/snapshot_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "durable/fault_injector.h"

namespace cepjoin {

namespace {

/// IEEE 802.3 CRC-32 table, generated once.
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool built = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)built;
  return table;
}

std::string Dirname(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status IoError(const std::string& what, const std::string& path) {
  return Status::Unavailable(what + " failed for " + path + ": " +
                             std::strerror(errno));
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void SnapshotWriter::U32(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  bytes_.append(buf, 4);
}

void SnapshotWriter::U64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  bytes_.append(buf, 8);
}

void SnapshotWriter::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void SnapshotWriter::Str(const std::string& s) {
  U64(s.size());
  bytes_.append(s);
}

void SnapshotWriter::Raw(const void* data, size_t n) {
  bytes_.append(static_cast<const char*>(data), n);
}

bool SnapshotReader::Need(size_t n) {
  if (!status_.ok()) return false;
  if (size_ - pos_ < n) {
    status_ = Status::DataLoss("snapshot truncated: needed " +
                               std::to_string(n) + " byte(s) at offset " +
                               std::to_string(pos_) + " of " +
                               std::to_string(size_));
    return false;
  }
  return true;
}

uint8_t SnapshotReader::U8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t SnapshotReader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t SnapshotReader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double SnapshotReader::F64() {
  uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::Str() {
  uint64_t n = U64();
  if (!status_.ok()) return {};
  if (n > size_ - pos_) {
    Fail("string length " + std::to_string(n) + " exceeds remaining " +
         std::to_string(size_ - pos_) + " byte(s)");
    return {};
  }
  std::string s(data_ + pos_, static_cast<size_t>(n));
  pos_ += static_cast<size_t>(n);
  return s;
}

void SnapshotReader::Fail(const std::string& message) {
  if (status_.ok()) {
    status_ = Status::DataLoss("snapshot malformed at offset " +
                               std::to_string(pos_) + ": " + message);
  }
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes,
                       const char* kill_prefix) {
  FaultInjector& faults = FaultInjector::Global();
  const std::string tmp = path + ".tmp";
  if (faults.ShouldFailWrite()) {
    RemoveFileIfExists(tmp);
    return Status::Unavailable("injected write failure for " + path);
  }
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("open", tmp);
  // Write in two halves with a kill point between them, so the crash
  // matrix covers a genuinely torn file, not just a missing one.
  size_t half = bytes.size() / 2;
  const char* data = bytes.data();
  size_t written = 0;
  for (size_t target : {half, bytes.size()}) {
    while (written < target) {
      ssize_t n = ::write(fd, data + written, target - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        Status status = IoError("write", tmp);
        ::close(fd);
        RemoveFileIfExists(tmp);
        return status;
      }
      written += static_cast<size_t>(n);
    }
    if (target == half) {
      faults.MaybeKill((std::string(kill_prefix) + "-mid-write").c_str());
    }
  }
  // Injected torn-write/corruption faults act on the durable bytes, i.e.
  // before the fsync+rename publish — exactly where real storage bites.
  int64_t truncate_to = faults.TakeTruncation();
  if (truncate_to >= 0 &&
      static_cast<uint64_t>(truncate_to) < bytes.size()) {
    if (::ftruncate(fd, truncate_to) != 0) {
      Status status = IoError("ftruncate", tmp);
      ::close(fd);
      return status;
    }
  }
  int64_t corrupt_at = faults.TakeCorruption();
  if (corrupt_at >= 0 && static_cast<uint64_t>(corrupt_at) < bytes.size()) {
    char flipped = static_cast<char>(bytes[corrupt_at] ^ 0x40);
    if (::pwrite(fd, &flipped, 1, corrupt_at) != 1) {
      Status status = IoError("pwrite", tmp);
      ::close(fd);
      return status;
    }
  }
  if (::fsync(fd) != 0) {
    Status status = IoError("fsync", tmp);
    ::close(fd);
    return status;
  }
  if (::close(fd) != 0) return IoError("close", tmp);
  faults.MaybeKill((std::string(kill_prefix) + "-before-rename").c_str());
  if (::rename(tmp.c_str(), path.c_str()) != 0) return IoError("rename", tmp);
  // Make the rename itself durable.
  int dirfd = ::open(Dirname(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  faults.MaybeKill((std::string(kill_prefix) + "-after-rename").c_str());
  return Status::Ok();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return IoError("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = IoError("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status EnsureDirectory(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty directory path");
  std::string partial;
  size_t i = 0;
  while (i < dir.size()) {
    size_t slash = dir.find('/', i + 1);
    partial = dir.substr(0, slash == std::string::npos ? dir.size() : slash);
    if (!partial.empty() && ::mkdir(partial.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      return IoError("mkdir", partial);
    }
    if (slash == std::string::npos) break;
    i = slash;
  }
  if (!DirectoryExists(dir)) {
    return Status::InvalidArgument("not a directory: " + dir);
  }
  return Status::Ok();
}

bool DirectoryExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

void RemoveFileIfExists(const std::string& path) {
  ::unlink(path.c_str());
}

}  // namespace cepjoin
