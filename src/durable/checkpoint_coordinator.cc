#include "durable/checkpoint_coordinator.h"

#include <chrono>
#include <utility>

#include "api/cep_service.h"
#include "obs/pipeline_metrics.h"

namespace cepjoin {

CheckpointCoordinator::CheckpointCoordinator(CepService* service,
                                             CheckpointOptions options)
    : service_(service),
      options_(std::move(options)),
      store_(options_.dir) {
  if (options_.metrics != nullptr) {
    MetricsRegistry* reg = options_.metrics;
    checkpoints_total_ = reg->GetCounter(metric_names::kCheckpointsTotal);
    checkpoint_failures_ = reg->GetCounter(metric_names::kCheckpointFailures);
    checkpoints_skipped_ = reg->GetCounter(metric_names::kCheckpointsSkipped);
    stall_seconds_ = reg->GetHistogram(metric_names::kCheckpointStallSeconds);
    checkpoint_bytes_ = reg->GetGauge(metric_names::kCheckpointBytes);
    last_seq_ = reg->GetGauge(metric_names::kCheckpointLastSeq);
  }
}

CheckpointCoordinator::~CheckpointCoordinator() {
  Status ignored = Stop();
  (void)ignored;
}

Status CheckpointCoordinator::Start() {
  if (started_) {
    return Status::FailedPrecondition("CheckpointCoordinator started twice");
  }
  if (service_ == nullptr) {
    return Status::InvalidArgument("CheckpointCoordinator: service is null");
  }
  // Open on the caller's thread (adopts an existing chain, surfaces a
  // corrupt manifest synchronously); after this the store is touched
  // only by the writer thread.
  CEPJOIN_RETURN_IF_ERROR(store_.Open());
  started_ = true;
  writer_ = std::thread([this] { WriterLoop(); });
  return Status::Ok();
}

Status CheckpointCoordinator::CutLocked(double watermark) {
  // Capture synchronously: the service is single-caller, so its state
  // may only be observed from the thread driving ingest — which is the
  // thread standing here. The stall histogram measures exactly this.
  auto start = std::chrono::steady_clock::now();
  std::string payload;
  Status captured = service_->CaptureCheckpointBytes(&payload);
  if (stall_seconds_ != nullptr) {
    stall_seconds_->Record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  if (!captured.ok()) {
    if (checkpoint_failures_ != nullptr) checkpoint_failures_->Inc();
    return captured;
  }
  pending_ = std::move(payload);
  has_pending_ = true;
  last_cut_watermark_ = watermark;
  have_cut_ = true;
  cv_.NotifyAll();
  return Status::Ok();
}

StatusOr<bool> CheckpointCoordinator::MaybeCheckpoint(double watermark) {
  if (!started_ || stopped_) {
    return Status::FailedPrecondition("CheckpointCoordinator is not running");
  }
  MutexLock lock(mu_);
  if (have_cut_ &&
      watermark - last_cut_watermark_ < options_.min_watermark_advance) {
    return false;  // policy: the watermark has not advanced enough
  }
  if (has_pending_) {
    // The writer is still flushing the previous cut. Declining (rather
    // than queueing) keeps at most one payload in memory and never
    // publishes a cut older than an already-queued one.
    if (checkpoints_skipped_ != nullptr) checkpoints_skipped_->Inc();
    return false;
  }
  CEPJOIN_RETURN_IF_ERROR(CutLocked(watermark));
  return true;
}

Status CheckpointCoordinator::CheckpointNow(double watermark) {
  if (!started_ || stopped_) {
    return Status::FailedPrecondition("CheckpointCoordinator is not running");
  }
  MutexLock lock(mu_);
  while (has_pending_) cv_.Wait(mu_);
  return CutLocked(watermark);
}

Status CheckpointCoordinator::Stop() {
  if (!started_ || stopped_) return Status::Ok();
  stopped_ = true;
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    cv_.NotifyAll();
  }
  if (writer_.joinable()) writer_.join();
  MutexLock lock(mu_);
  return first_write_error_;
}

uint64_t CheckpointCoordinator::published() const {
  MutexLock lock(mu_);
  return published_;
}

void CheckpointCoordinator::WriterLoop() {
  while (true) {
    std::string payload;
    {
      MutexLock lock(mu_);
      // Drain-before-exit: a payload queued by the final cut is still
      // written after shutdown_ flips.
      while (!has_pending_ && !shutdown_) cv_.Wait(mu_);
      if (!has_pending_) return;  // shutdown with nothing queued
      payload = std::move(pending_);
      pending_.clear();
    }
    uint64_t seq = 0;
    Status written = store_.WriteCheckpoint(payload, &seq);
    {
      MutexLock lock(mu_);
      if (written.ok()) {
        ++published_;
        if (checkpoints_total_ != nullptr) checkpoints_total_->Inc();
        if (checkpoint_bytes_ != nullptr) {
          checkpoint_bytes_->Set(static_cast<double>(payload.size()));
        }
        if (last_seq_ != nullptr) last_seq_->Set(static_cast<double>(seq));
      } else {
        if (checkpoint_failures_ != nullptr) checkpoint_failures_->Inc();
        if (first_write_error_.ok()) first_write_error_ = written;
      }
      has_pending_ = false;
      cv_.NotifyAll();
    }
  }
}

}  // namespace cepjoin
