#ifndef CEPJOIN_DURABLE_SNAPSHOT_CODEC_H_
#define CEPJOIN_DURABLE_SNAPSHOT_CODEC_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "durable/snapshot_io.h"
#include "event/event.h"
#include "runtime/engine.h"
#include "runtime/match.h"

namespace cepjoin {

/// Version of the per-engine state encoding produced by EngineStateWriter
/// and the engines' SaveState overrides. Bump whenever a serialized field
/// is added, removed, or re-ordered — the checkpoint reader refuses
/// snapshots of a different version instead of misinterpreting them, and
/// the codec-manifest lint rule (tools/cep_lint.py) pins the field lists
/// in snapshot_codec.cc to this number.
inline constexpr uint32_t kEngineStateFormatVersion = 1;

/// Encoder for one engine's state blob. Events are interned: the first
/// reference writes the event into a dedup table, every reference (buffer
/// rows, instance slots, match slots) encodes as a table index. Decoding
/// reconstructs ONE Event object per table entry, so pointer identity —
/// which the engines' no-event-fills-two-slots checks compare — survives
/// the round trip exactly.
///
/// Layout of Finish(): [u32 table count][table entries][payload bytes].
class EngineStateWriter {
 public:
  /// The raw payload stream; engines write their non-event fields here.
  SnapshotWriter& payload() { return payload_; }

  /// Writes a reference to a (non-null) shared event into the payload.
  void EventRef(const EventPtr& e);
  /// Writes a possibly-null reference (tree instances' unbound slots).
  void NullableEventRef(const EventPtr& e);
  /// Writes a count-prefixed list of possibly-null references.
  void EventList(const std::vector<EventPtr>& events);
  void WriteMatch(const Match& m);
  void WriteCounters(const EngineCounters& c);

  /// Assembles the final blob: event table followed by the payload.
  std::string Finish();

 private:
  uint32_t Intern(const EventPtr& e);

  SnapshotWriter payload_;
  std::vector<EventPtr> table_;  // index order
  std::unordered_map<const Event*, uint32_t> index_;
};

/// Decoder for one engine's state blob. Construct, call Init() to parse
/// the event table, then mirror the SaveState read sequence. All reads
/// are bounds-checked: any truncation or malformed count latches a
/// DataLoss status on payload() and later reads return empty values, so
/// the caller checks status() once at the end.
class EngineStateReader {
 public:
  /// Borrows `bytes`; the buffer must outlive the reader.
  explicit EngineStateReader(const std::string& bytes) : reader_(bytes) {}

  /// Parses the event table; must be called (and succeed) before any
  /// payload read.
  [[nodiscard]] Status Init();

  SnapshotReader& payload() { return reader_; }

  EventPtr EventRef();
  EventPtr NullableEventRef();
  std::vector<EventPtr> EventList();
  Match ReadMatch();
  void ReadCounters(EngineCounters* c);

  const Status& status() const { return reader_.status(); }

 private:
  SnapshotReader reader_;
  std::vector<EventPtr> table_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_DURABLE_SNAPSHOT_CODEC_H_
