#ifndef CEPJOIN_WORKLOAD_STOCK_GENERATOR_H_
#define CEPJOIN_WORKLOAD_STOCK_GENERATOR_H_

#include <vector>

#include "event/event_type.h"
#include "event/stream.h"

namespace cepjoin {

/// Configuration of the synthetic stock stream standing in for the
/// paper's NASDAQ dataset (see DESIGN.md, "Substitutions"). Defaults are
/// calibrated to the paper's measured statistics: per-symbol rates in
/// [1, 45] events/second and pairwise selectivities spanning roughly
/// [0.002, 0.9] thanks to per-symbol price-difference drift.
struct StockGeneratorConfig {
  int num_symbols = 24;
  double min_rate = 1.0;
  double max_rate = 45.0;
  double duration_seconds = 60.0;
  /// Stddev of the per-symbol mean of the `difference` attribute; larger
  /// spread yields more extreme selectivities for `a.diff < b.diff`.
  double drift_spread = 1.2;
  /// Per-update noise of the price random walk.
  double noise = 1.0;
  /// Symbols are grouped into this many "sectors" used as partitions for
  /// the partition-contiguity strategy.
  int num_sectors = 4;
  uint64_t seed = 42;
};

/// A generated universe: the type registry (one event type per symbol,
/// attributes {price, difference}), per-symbol type ids, and the merged
/// timestamp-ordered stream.
struct StockUniverse {
  EventTypeRegistry registry;
  std::vector<TypeId> symbols;
  EventStream stream;
  StockGeneratorConfig config;

  AttrId price_attr() const { return 0; }
  AttrId difference_attr() const { return 1; }
};

/// Generates the universe. Per-symbol arrivals are Poisson with a rate
/// drawn uniformly from [min_rate, max_rate]; prices follow a random walk
/// whose increments ("difference", the attribute the paper added in
/// preprocessing) are Normal(drift_i, noise).
StockUniverse GenerateStockStream(const StockGeneratorConfig& config);

}  // namespace cepjoin

#endif  // CEPJOIN_WORKLOAD_STOCK_GENERATOR_H_
