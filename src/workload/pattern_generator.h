#ifndef CEPJOIN_WORKLOAD_PATTERN_GENERATOR_H_
#define CEPJOIN_WORKLOAD_PATTERN_GENERATOR_H_

#include <string>
#include <vector>

#include "pattern/pattern.h"
#include "workload/stock_generator.h"

namespace cepjoin {

/// The five pattern families of the paper's evaluation (Sec. 7.2):
/// pure sequences; sequences with one negated event; conjunctions;
/// sequences with one Kleene-closed event; and disjunctions of three
/// sequences.
enum class PatternFamily {
  kSequence,
  kNegation,
  kConjunction,
  kKleene,
  kDisjunction,
};

const char* FamilyName(PatternFamily family);
std::vector<PatternFamily> AllFamilies();

struct PatternGenConfig {
  PatternFamily family = PatternFamily::kSequence;
  /// Number of participating events (3..7 in the paper; for disjunctions,
  /// per subsequence).
  int size = 4;
  /// Time window in seconds (the paper used 20 minutes on the real
  /// stream; our benches use a few seconds — see DESIGN.md).
  double window = 4.0;
  SelectionStrategy strategy = SelectionStrategy::kSkipTillAny;
  /// Number of inter-event predicates; -1 means size/2 as in the paper
  /// ("roughly equal to half the size of a pattern").
  int num_conditions = -1;
  uint64_t seed = 1;
};

/// Generates one pattern of the family as its DNF: a single simple
/// pattern for all families except kDisjunction, which yields three
/// sequence subpatterns. Conditions compare the `difference` attributes
/// of two involved symbols, mirroring the paper's stock patterns.
std::vector<SimplePattern> GeneratePattern(const StockUniverse& universe,
                                           const PatternGenConfig& config);

}  // namespace cepjoin

#endif  // CEPJOIN_WORKLOAD_PATTERN_GENERATOR_H_
