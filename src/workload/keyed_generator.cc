#include "workload/keyed_generator.h"

#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "pattern/condition.h"

namespace cepjoin {

namespace {

SimplePattern MakeKeyedPattern(const EventTypeRegistry& registry) {
  std::vector<EventSpec> events;
  for (int i = 0; i < 3; ++i) {
    std::string name(1, static_cast<char>('A' + i));
    events.push_back({registry.Find(name),
                      std::string(1, static_cast<char>('a' + i)), false,
                      false});
  }
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 2, 0)};
  return SimplePattern(OperatorKind::kSeq, std::move(events),
                       std::move(conditions), 1.0);
}

}  // namespace

KeyedWorkload MakeKeyedWorkload(int num_partitions, double duration,
                                uint64_t seed) {
  CEPJOIN_CHECK(num_partitions > 0);
  EventTypeRegistry registry;
  for (const char* name : {"A", "B", "C"}) registry.Register(name, {"v"});
  Rng rng(seed);
  EventStream stream;
  double ts = 0.0;
  while (ts < duration) {
    ts += rng.UniformReal(0.001, 0.002);
    uint32_t partition =
        static_cast<uint32_t>(rng.UniformInt(0, num_partitions - 1));
    // Per-partition skew: each partition's rare type cycles with its id
    // and appears with probability 0.1 (the other two split the rest),
    // so plan generation has a real scarcity signal to react to.
    TypeId rare = static_cast<TypeId>(partition % 3);
    double coin = rng.UniformReal(0, 1);
    TypeId type = coin < 0.1
                      ? rare
                      : static_cast<TypeId>(
                            (rare + 1 + rng.UniformInt(0, 1)) % 3);
    Event e;
    e.type = type;
    e.ts = ts;
    e.partition = partition;
    e.attrs = {rng.UniformReal(-1, 1)};
    stream.Append(std::move(e));
  }
  SimplePattern pattern = MakeKeyedPattern(registry);
  KeyedWorkload workload{std::move(registry), std::move(pattern),
                         std::move(stream)};
  return workload;
}

}  // namespace cepjoin
