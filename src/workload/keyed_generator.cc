#include "workload/keyed_generator.h"

#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "pattern/condition.h"

namespace cepjoin {

namespace {

SimplePattern MakeKeyedPattern(const EventTypeRegistry& registry) {
  std::vector<EventSpec> events;
  for (int i = 0; i < 3; ++i) {
    std::string name(1, static_cast<char>('A' + i));
    events.push_back({registry.Find(name),
                      std::string(1, static_cast<char>('a' + i)), false,
                      false});
  }
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 2, 0)};
  return SimplePattern(OperatorKind::kSeq, std::move(events),
                       std::move(conditions), 1.0);
}

}  // namespace

KeyedEventSource::KeyedEventSource(int num_partitions, double duration,
                                   uint64_t seed)
    : rng_(seed), num_partitions_(num_partitions), duration_(duration) {
  CEPJOIN_CHECK(num_partitions_ > 0);
}

bool KeyedEventSource::Next(Event* out) {
  if (ts_ >= duration_) return false;
  ts_ += rng_.UniformReal(0.001, 0.002);
  uint32_t partition =
      static_cast<uint32_t>(rng_.UniformInt(0, num_partitions_ - 1));
  // Per-partition skew: each partition's rare type cycles with its id
  // and appears with probability 0.1 (the other two split the rest),
  // so plan generation has a real scarcity signal to react to.
  TypeId rare = static_cast<TypeId>(partition % 3);
  double coin = rng_.UniformReal(0, 1);
  TypeId type =
      coin < 0.1
          ? rare
          : static_cast<TypeId>((rare + 1 + rng_.UniformInt(0, 1)) % 3);
  out->type = type;
  out->ts = ts_;
  out->partition = partition;
  out->attrs = {rng_.UniformReal(-1, 1)};
  out->serial = 0;
  out->partition_seq = 0;
  return true;
}

KeyedWorkload MakeKeyedWorkload(int num_partitions, double duration,
                                uint64_t seed) {
  CEPJOIN_CHECK(num_partitions > 0);
  EventTypeRegistry registry;
  for (const char* name : {"A", "B", "C"}) registry.Register(name, {"v"});
  EventStream stream;
  KeyedEventSource source(num_partitions, duration, seed);
  Event e;
  while (source.Next(&e)) stream.Append(std::move(e));
  SimplePattern pattern = MakeKeyedPattern(registry);
  KeyedWorkload workload{std::move(registry), std::move(pattern),
                         std::move(stream)};
  return workload;
}

}  // namespace cepjoin
