#include "workload/pattern_generator.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace cepjoin {

const char* FamilyName(PatternFamily family) {
  switch (family) {
    case PatternFamily::kSequence:
      return "sequence";
    case PatternFamily::kNegation:
      return "negation";
    case PatternFamily::kConjunction:
      return "conjunction";
    case PatternFamily::kKleene:
      return "kleene";
    case PatternFamily::kDisjunction:
      return "disjunction";
  }
  return "?";
}

std::vector<PatternFamily> AllFamilies() {
  return {PatternFamily::kSequence, PatternFamily::kNegation,
          PatternFamily::kConjunction, PatternFamily::kKleene,
          PatternFamily::kDisjunction};
}

namespace {

// Picks `count` distinct symbols.
std::vector<TypeId> PickSymbols(const StockUniverse& universe, int count,
                                Rng& rng) {
  CEPJOIN_CHECK_LE(static_cast<size_t>(count), universe.symbols.size())
      << "pattern larger than the symbol universe";
  std::vector<TypeId> pool = universe.symbols;
  rng.Shuffle(pool.begin(), pool.end());
  pool.resize(count);
  return pool;
}

// `difference`-comparison conditions between ~size/2 random position
// pairs, as in the paper's stock patterns.
std::vector<ConditionPtr> MakeConditions(const StockUniverse& universe,
                                         int size, int num_conditions,
                                         Rng& rng) {
  AttrId diff = universe.difference_attr();
  int want = num_conditions >= 0 ? num_conditions : std::max(1, size / 2);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < size; ++i) {
    for (int j = i + 1; j < size; ++j) pairs.emplace_back(i, j);
  }
  rng.Shuffle(pairs.begin(), pairs.end());
  want = std::min<int>(want, static_cast<int>(pairs.size()));
  std::vector<ConditionPtr> conditions;
  for (int k = 0; k < want; ++k) {
    auto [i, j] = pairs[k];
    CmpOp op = rng.Bernoulli(0.5) ? CmpOp::kLt : CmpOp::kGt;
    // A small random offset shifts the comparison quantile, broadening
    // the selectivity spectrum like the paper's measured 0.002–0.88.
    double offset = rng.Normal(0.0, 1.0);
    conditions.push_back(
        std::make_shared<AttrCompare>(i, diff, op, j, diff, offset));
  }
  return conditions;
}

SimplePattern MakeSimple(const StockUniverse& universe,
                         const PatternGenConfig& config, OperatorKind op,
                         int negated_pos, int kleene_pos, Rng& rng) {
  std::vector<TypeId> symbols = PickSymbols(universe, config.size, rng);
  std::vector<EventSpec> events;
  events.reserve(config.size);
  for (int i = 0; i < config.size; ++i) {
    EventSpec spec;
    spec.type = symbols[i];
    spec.name = "e" + std::to_string(i);
    spec.negated = i == negated_pos;
    spec.kleene = i == kleene_pos;
    events.push_back(spec);
  }
  std::vector<ConditionPtr> conditions =
      MakeConditions(universe, config.size, config.num_conditions, rng);
  if (kleene_pos >= 0) {
    // Selective unary filter on the Kleene slot keeps the power set
    // tractable (the paper's predicates played the same role).
    conditions.push_back(std::make_shared<AttrThreshold>(
        kleene_pos, universe.difference_attr(), CmpOp::kGt,
        1.6 * universe.config.noise));
  }
  return SimplePattern(op, std::move(events), std::move(conditions),
                       config.window, config.strategy);
}

}  // namespace

std::vector<SimplePattern> GeneratePattern(const StockUniverse& universe,
                                           const PatternGenConfig& config) {
  CEPJOIN_CHECK_GE(config.size, 2);
  Rng rng(config.seed * 0x9E3779B97F4A7C15ull + 1);
  switch (config.family) {
    case PatternFamily::kSequence:
      return {MakeSimple(universe, config, OperatorKind::kSeq, -1, -1, rng)};
    case PatternFamily::kNegation: {
      // One internal event negated, as in the paper's negation set.
      int negated = config.size / 2;
      return {MakeSimple(universe, config, OperatorKind::kSeq, negated, -1,
                         rng)};
    }
    case PatternFamily::kConjunction:
      return {MakeSimple(universe, config, OperatorKind::kAnd, -1, -1, rng)};
    case PatternFamily::kKleene: {
      int kleene = config.size / 2;
      return {
          MakeSimple(universe, config, OperatorKind::kSeq, -1, kleene, rng)};
    }
    case PatternFamily::kDisjunction: {
      std::vector<SimplePattern> subpatterns;
      for (int k = 0; k < 3; ++k) {
        subpatterns.push_back(
            MakeSimple(universe, config, OperatorKind::kSeq, -1, -1, rng));
      }
      return subpatterns;
    }
  }
  CEPJOIN_CHECK(false);
}

}  // namespace cepjoin
