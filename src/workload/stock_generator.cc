#include "workload/stock_generator.h"

#include <cstdio>
#include <queue>
#include <string>

#include "common/check.h"
#include "common/rng.h"

namespace cepjoin {

StockUniverse GenerateStockStream(const StockGeneratorConfig& config) {
  CEPJOIN_CHECK_GT(config.num_symbols, 0);
  CEPJOIN_CHECK_GT(config.duration_seconds, 0.0);
  CEPJOIN_CHECK(config.min_rate > 0 && config.max_rate >= config.min_rate);
  StockUniverse universe;
  universe.config = config;
  Rng rng(config.seed);

  struct Symbol {
    TypeId type;
    double rate;
    double drift;
    double price;
    uint32_t sector;
  };
  std::vector<Symbol> symbols;
  symbols.reserve(config.num_symbols);
  for (int i = 0; i < config.num_symbols; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "STK%03d", i);
    TypeId type = universe.registry.Register(name, {"price", "difference"});
    universe.symbols.push_back(type);
    Symbol s;
    s.type = type;
    s.rate = rng.UniformReal(config.min_rate, config.max_rate);
    s.drift = rng.Normal(0.0, config.drift_spread);
    s.price = rng.UniformReal(50.0, 150.0);
    s.sector = static_cast<uint32_t>(i % std::max(1, config.num_sectors));
    symbols.push_back(s);
  }

  // Merge per-symbol Poisson processes with a min-heap of next arrivals.
  using HeapEntry = std::pair<double, int>;  // (next arrival ts, symbol idx)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (int i = 0; i < config.num_symbols; ++i) {
    heap.emplace(rng.Exponential(symbols[i].rate), i);
  }
  while (!heap.empty()) {
    auto [ts, idx] = heap.top();
    heap.pop();
    if (ts > config.duration_seconds) continue;
    Symbol& s = symbols[idx];
    double difference = s.drift + rng.Normal(0.0, config.noise);
    s.price += difference;
    Event e;
    e.type = s.type;
    e.partition = s.sector;
    e.ts = ts;
    e.attrs = {s.price, difference};
    universe.stream.Append(std::move(e));
    heap.emplace(ts + rng.Exponential(s.rate), idx);
  }
  return universe;
}

}  // namespace cepjoin
