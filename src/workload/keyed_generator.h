#ifndef CEPJOIN_WORKLOAD_KEYED_GENERATOR_H_
#define CEPJOIN_WORKLOAD_KEYED_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "event/event_type.h"
#include "event/stream.h"
#include "event/stream_source.h"
#include "pattern/pattern.h"

namespace cepjoin {

/// A keyed (multi-partition) workload for exercising the partitioned and
/// sharded runtimes: a registry of three types, a SEQ(A, B, C) pattern
/// with an attribute join, and a stream whose events are spread over
/// `num_partitions` partitions with per-partition rate skew, so
/// different partitions genuinely receive different plans.
struct KeyedWorkload {
  EventTypeRegistry registry;
  SimplePattern pattern;
  EventStream stream;
};

/// `duration` is the stream length in seconds at ~660 events/second.
KeyedWorkload MakeKeyedWorkload(int num_partitions, double duration,
                                uint64_t seed);

/// The keyed workload's event generator as an incremental StreamSource —
/// the synthetic ingestion source of the async pipeline. Emits exactly
/// the event sequence MakeKeyedWorkload(num_partitions, duration, seed)
/// materializes (same RNG, same skew), one event per Next(), so the
/// async and synchronous paths can be compared on identical input
/// without holding the stream in memory. Requires the three-type A/B/C
/// registry MakeKeyedWorkload builds (type ids 0..2).
class KeyedEventSource : public StreamSource {
 public:
  KeyedEventSource(int num_partitions, double duration, uint64_t seed);

  bool Next(Event* out) override;
  bool ok() const override { return true; }
  std::string error() const override { return {}; }

 private:
  Rng rng_;
  int num_partitions_;
  double duration_;
  double ts_ = 0.0;
};

}  // namespace cepjoin

#endif  // CEPJOIN_WORKLOAD_KEYED_GENERATOR_H_
