#ifndef CEPJOIN_WORKLOAD_KEYED_GENERATOR_H_
#define CEPJOIN_WORKLOAD_KEYED_GENERATOR_H_

#include <cstdint>

#include "event/event_type.h"
#include "event/stream.h"
#include "pattern/pattern.h"

namespace cepjoin {

/// A keyed (multi-partition) workload for exercising the partitioned and
/// sharded runtimes: a registry of three types, a SEQ(A, B, C) pattern
/// with an attribute join, and a stream whose events are spread over
/// `num_partitions` partitions with per-partition rate skew, so
/// different partitions genuinely receive different plans.
struct KeyedWorkload {
  EventTypeRegistry registry;
  SimplePattern pattern;
  EventStream stream;
};

/// `duration` is the stream length in seconds at ~660 events/second.
KeyedWorkload MakeKeyedWorkload(int num_partitions, double duration,
                                uint64_t seed);

}  // namespace cepjoin

#endif  // CEPJOIN_WORKLOAD_KEYED_GENERATOR_H_
