#ifndef CEPJOIN_ENGINE_MULTI_ENGINE_H_
#define CEPJOIN_ENGINE_MULTI_ENGINE_H_

#include <memory>
#include <vector>

#include "runtime/engine.h"
#include "runtime/match.h"

namespace cepjoin {

/// Tags matches with the index of the DNF subpattern that produced them
/// before forwarding (Sec. 5.4: "the returned result is the union of all
/// subpattern matches").
class SubpatternTaggingSink : public MatchSink {
 public:
  SubpatternTaggingSink(MatchSink* inner, int subpattern)
      : inner_(inner), subpattern_(subpattern) {}

  void OnMatch(const Match& match) override {
    Match tagged = match;
    tagged.subpattern = subpattern_;
    inner_->OnMatch(tagged);
  }

 private:
  MatchSink* inner_;
  int subpattern_;
};

/// Runs one engine per DNF subpattern over the same stream and unions
/// their matches. Counters aggregate across sub-engines.
class MultiEngine : public Engine {
 public:
  /// `engines[k]` detects subpattern k; `sinks` own the tagging wrappers
  /// the engines were built against.
  MultiEngine(std::vector<std::unique_ptr<Engine>> engines,
              std::vector<std::unique_ptr<MatchSink>> sinks);

  void OnEvent(const EventPtr& e) override;
  /// Feeds each event to every sub-engine (preserving the union's
  /// cross-subpattern emission order) and refreshes the merged counters
  /// once per batch instead of per event.
  void OnBatch(const EventPtr* events, size_t n) override;
  void Finish() override;

  /// Checkpoint support: delegates to every sub-engine in subpattern
  /// order, sharing one event dedup table across them.
  [[nodiscard]] Status SaveState(EngineStateWriter* w) const override;
  [[nodiscard]] Status LoadState(EngineStateReader* r) override;

  int num_subengines() const { return static_cast<int>(engines_.size()); }
  const Engine& subengine(int k) const { return *engines_[k]; }

 private:
  void RefreshCounters();

  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<MatchSink>> sinks_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_ENGINE_MULTI_ENGINE_H_
