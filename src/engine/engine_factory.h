#ifndef CEPJOIN_ENGINE_ENGINE_FACTORY_H_
#define CEPJOIN_ENGINE_ENGINE_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "cost/cost_function.h"
#include "pattern/pattern.h"
#include "plan/order_plan.h"
#include "plan/tree_plan.h"
#include "runtime/engine.h"
#include "runtime/match.h"

namespace cepjoin {

/// A generated evaluation plan of either class, plus bookkeeping the
/// benches report (cost under the generating cost function, generation
/// wall time).
struct EnginePlan {
  enum class Kind { kOrder, kTree };
  Kind kind = Kind::kOrder;
  OrderPlan order;
  TreePlan tree;
  double cost = 0.0;
  double generation_seconds = 0.0;
  std::string algorithm;

  std::string Describe() const;
};

/// True if `algorithm` names a tree-based plan generator.
bool IsTreeAlgorithm(const std::string& algorithm);

/// Runs the named algorithm (order- or tree-based) on the cost function.
/// Unknown algorithm names return InvalidArgument (listing the known
/// algorithms) instead of aborting; call sites with statically known-good
/// names unwrap with .value().
StatusOr<EnginePlan> MakePlan(const std::string& algorithm,
                              const CostFunction& cost, uint64_t seed = 7);

/// Builds the matching engine (lazy NFA for order plans, tree engine for
/// tree plans) for a simple pattern.
std::unique_ptr<Engine> BuildEngine(const SimplePattern& pattern,
                                    const EnginePlan& plan, MatchSink* sink);

/// Builds a MultiEngine over DNF subpatterns; plans[k] drives
/// subpattern k, and matches arrive at `sink` tagged with k.
std::unique_ptr<Engine> BuildDnfEngine(
    const std::vector<SimplePattern>& subpatterns,
    const std::vector<EnginePlan>& plans, MatchSink* sink);

/// The throughput model matching a selection strategy (Sec. 6.2):
/// skip-till-any uses the Sec. 4 model, everything else the
/// skip-till-next model.
ThroughputModel ModelForStrategy(SelectionStrategy strategy);

/// Default latency anchor for a pattern (Sec. 6.1): the temporally last
/// slot for SEQ patterns; -1 for AND patterns (callers may substitute an
/// output-profiler estimate).
int DefaultLatencyAnchor(const SimplePattern& pattern);

/// Builds the cost function a pattern should be planned under: throughput
/// model per its selection strategy (Sec. 6.2), hybrid latency term with
/// the pattern's default anchor (Sec. 6.1).
CostFunction MakeCostFunction(const SimplePattern& pattern,
                              const PatternStats& stats, double latency_alpha);

}  // namespace cepjoin

#endif  // CEPJOIN_ENGINE_ENGINE_FACTORY_H_
