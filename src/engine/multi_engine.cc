#include "engine/multi_engine.h"

#include <utility>

#include "common/check.h"

namespace cepjoin {

MultiEngine::MultiEngine(std::vector<std::unique_ptr<Engine>> engines,
                         std::vector<std::unique_ptr<MatchSink>> sinks)
    : engines_(std::move(engines)), sinks_(std::move(sinks)) {
  CEPJOIN_CHECK(!engines_.empty());
}

void MultiEngine::OnEvent(const EventPtr& e) {
  for (auto& engine : engines_) engine->OnEvent(e);
  RefreshCounters();
}

void MultiEngine::Finish() {
  for (auto& engine : engines_) engine->Finish();
  RefreshCounters();
}

void MultiEngine::RefreshCounters() {
  EngineCounters merged;
  // Preserve peaks recorded so far: per-subengine peaks do not decrease,
  // so re-merging each step is monotone.
  for (auto& engine : engines_) merged.Merge(engine->counters());
  counters_ = merged;
}

}  // namespace cepjoin
