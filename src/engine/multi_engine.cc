#include "engine/multi_engine.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "durable/snapshot_codec.h"

namespace cepjoin {

MultiEngine::MultiEngine(std::vector<std::unique_ptr<Engine>> engines,
                         std::vector<std::unique_ptr<MatchSink>> sinks)
    : engines_(std::move(engines)), sinks_(std::move(sinks)) {
  CEPJOIN_CHECK(!engines_.empty());
}

void MultiEngine::OnEvent(const EventPtr& e) {
  for (auto& engine : engines_) engine->OnEvent(e);
  RefreshCounters();
}

void MultiEngine::OnBatch(const EventPtr* events, size_t n) {
  if (n == 0) return;
  // Events stay in the outer loop: handing a sub-engine the whole batch
  // would emit all of subpattern k's matches before subpattern k+1's,
  // reordering the union's emission relative to per-event feeding. The
  // batch still amortizes this engine's counter refresh.
  for (size_t i = 0; i < n; ++i) {
    for (auto& engine : engines_) engine->OnEvent(events[i]);
  }
  // Per-subengine peaks are monotone, so refreshing once per batch yields
  // the same merged counters as refreshing per event.
  RefreshCounters();
}

void MultiEngine::Finish() {
  for (auto& engine : engines_) engine->Finish();
  RefreshCounters();
}

Status MultiEngine::SaveState(EngineStateWriter* w) const {
  w->payload().U32(static_cast<uint32_t>(engines_.size()));
  for (const auto& engine : engines_) {
    CEPJOIN_RETURN_IF_ERROR(engine->SaveState(w));
  }
  return Status::Ok();
}

Status MultiEngine::LoadState(EngineStateReader* r) {
  uint32_t n = r->payload().U32();
  if (!r->payload().ok()) return r->payload().status();
  if (n != engines_.size()) {
    return Status::FailedPrecondition(
        "snapshot holds " + std::to_string(n) +
        " DNF sub-engine(s), this engine has " +
        std::to_string(engines_.size()));
  }
  for (auto& engine : engines_) {
    CEPJOIN_RETURN_IF_ERROR(engine->LoadState(r));
  }
  RefreshCounters();
  return Status::Ok();
}

void MultiEngine::RefreshCounters() {
  EngineCounters merged;
  // Preserve peaks recorded so far: per-subengine peaks do not decrease,
  // so re-merging each step is monotone.
  for (auto& engine : engines_) merged.Merge(engine->counters());
  counters_ = merged;
}

}  // namespace cepjoin
