#include "engine/engine_factory.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "engine/multi_engine.h"
#include "nfa/nfa_engine.h"
#include "optimizer/registry.h"
#include "tree/tree_engine.h"

namespace cepjoin {

std::string EnginePlan::Describe() const {
  return algorithm + " " +
         (kind == Kind::kOrder ? order.Describe() : tree.Describe());
}

bool IsTreeAlgorithm(const std::string& algorithm) {
  return algorithm == "ZSTREAM" || algorithm == "ZSTREAM-ORD" ||
         algorithm == "DP-B";
}

StatusOr<EnginePlan> MakePlan(const std::string& algorithm,
                              const CostFunction& cost, uint64_t seed) {
  EnginePlan plan;
  plan.algorithm = algorithm;
  auto start = std::chrono::steady_clock::now();
  if (IsTreeAlgorithm(algorithm)) {
    StatusOr<std::unique_ptr<TreeOptimizer>> optimizer =
        MakeTreeOptimizer(algorithm);
    if (!optimizer.ok()) return optimizer.status();
    plan.kind = EnginePlan::Kind::kTree;
    plan.tree = (*optimizer)->Optimize(cost);
    plan.cost = cost.TreeCost(plan.tree);
  } else {
    StatusOr<std::unique_ptr<OrderOptimizer>> optimizer =
        MakeOrderOptimizer(algorithm, seed);
    if (!optimizer.ok()) return optimizer.status();
    plan.kind = EnginePlan::Kind::kOrder;
    plan.order = (*optimizer)->Optimize(cost);
    plan.cost = cost.OrderCost(plan.order);
  }
  plan.generation_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return plan;
}

std::unique_ptr<Engine> BuildEngine(const SimplePattern& pattern,
                                    const EnginePlan& plan, MatchSink* sink) {
  if (plan.kind == EnginePlan::Kind::kOrder) {
    return std::make_unique<NfaEngine>(pattern, plan.order, sink);
  }
  return std::make_unique<TreeEngine>(pattern, plan.tree, sink);
}

std::unique_ptr<Engine> BuildDnfEngine(
    const std::vector<SimplePattern>& subpatterns,
    const std::vector<EnginePlan>& plans, MatchSink* sink) {
  CEPJOIN_CHECK_EQ(subpatterns.size(), plans.size());
  CEPJOIN_CHECK(!subpatterns.empty());
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<std::unique_ptr<MatchSink>> sinks;
  for (size_t k = 0; k < subpatterns.size(); ++k) {
    auto tagging =
        std::make_unique<SubpatternTaggingSink>(sink, static_cast<int>(k));
    engines.push_back(BuildEngine(subpatterns[k], plans[k], tagging.get()));
    sinks.push_back(std::move(tagging));
  }
  return std::make_unique<MultiEngine>(std::move(engines), std::move(sinks));
}

ThroughputModel ModelForStrategy(SelectionStrategy strategy) {
  return strategy == SelectionStrategy::kSkipTillAny
             ? ThroughputModel::kAny
             : ThroughputModel::kNextMatch;
}

int DefaultLatencyAnchor(const SimplePattern& pattern) {
  if (pattern.op() != OperatorKind::kSeq) return -1;
  // Last positive slot in pattern order == temporally last event type.
  return pattern.num_positive() - 1;
}

CostFunction MakeCostFunction(const SimplePattern& pattern,
                              const PatternStats& stats,
                              double latency_alpha) {
  CostSpec spec;
  spec.model = ModelForStrategy(pattern.strategy());
  spec.latency_alpha = latency_alpha;
  spec.latency_anchor =
      latency_alpha > 0.0 ? DefaultLatencyAnchor(pattern) : -1;
  return CostFunction(stats, pattern.window(), spec);
}

}  // namespace cepjoin
