#include "cost/cost_function.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace cepjoin {

CostFunction::CostFunction(const PatternStats& stats, Timestamp window,
                           CostSpec spec)
    : stats_(stats), window_(window), spec_(spec) {
  CEPJOIN_CHECK_GT(window_, 0.0);
  CEPJOIN_CHECK_LE(stats_.size(), 64);
  CEPJOIN_CHECK(spec_.latency_anchor < stats_.size());
}

double CostFunction::LeafCost(int i) const { return window_ * stats_.rate(i); }

double CostFunction::OrderSetCost(uint64_t mask) const {
  double sel_product = 1.0;
  int n = size();
  for (int i = 0; i < n; ++i) {
    if (!(mask >> i & 1)) continue;
    sel_product *= stats_.sel(i, i);
    for (int j = i + 1; j < n; ++j) {
      if (mask >> j & 1) sel_product *= stats_.sel(i, j);
    }
  }
  if (spec_.model == ThroughputModel::kNextMatch) {
    // m[k] = W · min(r) · Π sel; the paper's Cost^next_ord sums W · m[k].
    double min_rate = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      if (mask >> i & 1) min_rate = std::min(min_rate, stats_.rate(i));
    }
    return window_ * window_ * min_rate * sel_product;
  }
  double product = sel_product;
  for (int i = 0; i < n; ++i) {
    if (mask >> i & 1) product *= window_ * stats_.rate(i);
  }
  return product;
}

double CostFunction::TreeNodeCost(uint64_t mask) const {
  double sel_product = 1.0;
  int n = size();
  for (int i = 0; i < n; ++i) {
    if (!(mask >> i & 1)) continue;
    for (int j = i + 1; j < n; ++j) {
      if (mask >> j & 1) sel_product *= stats_.sel(i, j);
    }
  }
  if (spec_.model == ThroughputModel::kNextMatch) {
    // PM(n) = W · min(r) · Π sel (Sec. 6.2).
    double min_rate = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      if (mask >> i & 1) min_rate = std::min(min_rate, stats_.rate(i));
    }
    return window_ * min_rate * sel_product;
  }
  double product = sel_product;
  for (int i = 0; i < n; ++i) {
    if (mask >> i & 1) product *= window_ * stats_.rate(i);
  }
  return product;
}

double CostFunction::OrderThroughputCost(const OrderPlan& plan) const {
  CEPJOIN_CHECK_EQ(plan.size(), size());
  double total = 0.0;
  uint64_t mask = 0;
  for (int k = 0; k < plan.size(); ++k) {
    mask |= uint64_t{1} << plan.At(k);
    total += OrderSetCost(mask);
  }
  return total;
}

double CostFunction::OrderLatencyCost(const OrderPlan& plan) const {
  if (spec_.latency_anchor < 0) return 0.0;
  // Cost^lat_ord = Σ_{Ti ∈ Succ_O(Tn)} W · r_i (Sec. 6.1).
  double total = 0.0;
  int anchor_step = plan.StepOf(spec_.latency_anchor);
  for (int k = anchor_step + 1; k < plan.size(); ++k) {
    total += LeafCost(plan.At(k));
  }
  return total;
}

double CostFunction::OrderCost(const OrderPlan& plan) const {
  return OrderThroughputCost(plan) + spec_.latency_alpha * OrderLatencyCost(plan);
}

double CostFunction::TreeThroughputCost(const TreePlan& plan) const {
  CEPJOIN_CHECK_EQ(plan.num_leaves(), size());
  double total = 0.0;
  for (int i = 0; i < size(); ++i) total += LeafCost(i);
  for (int id : plan.internal_postorder()) {
    total += TreeNodeCost(plan.node(id).mask);
  }
  return total;
}

double CostFunction::TreeLatencyCost(const TreePlan& plan) const {
  if (spec_.latency_anchor < 0) return 0.0;
  // Cost^lat_tree = Σ_{N ∈ Anc(Tn)} PM(sibling(N)) (Sec. 6.1): walking from
  // Tn's leaf to the root, each step joins against the partial matches
  // buffered at the sibling subtree.
  double total = 0.0;
  int node = plan.LeafOf(spec_.latency_anchor);
  while (plan.node(node).parent >= 0) {
    int sib = plan.Sibling(node);
    const TreePlan::Node& s = plan.node(sib);
    total += s.leaf_item >= 0 ? LeafCost(s.leaf_item) : TreeNodeCost(s.mask);
    node = plan.node(node).parent;
  }
  return total;
}

double CostFunction::TreeCost(const TreePlan& plan) const {
  return TreeThroughputCost(plan) + spec_.latency_alpha * TreeLatencyCost(plan);
}

}  // namespace cepjoin
