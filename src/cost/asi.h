#ifndef CEPJOIN_COST_ASI_H_
#define CEPJOIN_COST_ASI_H_

#include <vector>

#include "stats/statistics.h"

namespace cepjoin {

/// Appendix A machinery: the auxiliary functions C(s), T(s) and the rank
/// rank(s) = (T(s) − 1) / C(s) that witness the ASI property of
/// Cost_ord^trpt for acyclic (tree-shaped) predicate graphs.
///
/// The context fixes, for each slot i, the factor W·r_i·selR_i, where
/// selR_i is the selectivity of the single predicate linking i to the slot
/// s preceding it on the rooted predicate tree (selR_root = 1). Unary
/// selectivities fold into the factor. With these factors,
/// Cost_ord^trpt(O) = C(O) for every order O that respects the precedence
/// tree.
struct AsiContext {
  /// Per-slot factor W · r_i · sel_ii · selR_i.
  std::vector<double> factor;
};

/// Builds the context for a rooted spanning tree of the predicate graph.
/// `parent[i]` is i's parent slot (-1 for the root). Slots whose parent
/// edge carries no predicate get selR = 1 (cross product).
AsiContext MakeAsiContext(const PatternStats& stats, Timestamp window,
                          const std::vector<int>& parent);

/// C(s) = Σ_{k ≤ |s|} Π_{i ≤ k} factor[s_i];  C(ε) = 0.
double AsiC(const AsiContext& ctx, const std::vector<int>& seq);

/// T(s) = Π factor[s_i];  T(ε) = 1.
double AsiT(const AsiContext& ctx, const std::vector<int>& seq);

/// rank(s) = (T(s) − 1) / C(s); undefined (CHECK) for empty sequences.
double AsiRank(const AsiContext& ctx, const std::vector<int>& seq);

}  // namespace cepjoin

#endif  // CEPJOIN_COST_ASI_H_
