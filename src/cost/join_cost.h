#ifndef CEPJOIN_COST_JOIN_COST_H_
#define CEPJOIN_COST_JOIN_COST_H_

#include <vector>

#include "common/matrix.h"
#include "plan/order_plan.h"
#include "plan/tree_plan.h"
#include "stats/statistics.h"

namespace cepjoin {

/// A join query in the JQPG formulation (Sec. 3.2): relations R_1..R_n
/// with cardinalities |R_i| and pairwise predicate selectivities f_ij
/// (f_ij = 1 when no predicate links i and j; the diagonal holds unary
/// filter selectivities).
struct JoinQuery {
  std::vector<double> cardinalities;
  Matrix f;

  int size() const { return static_cast<int>(cardinalities.size()); }
};

/// Theorem 1 reduction, CPG → JQPG: |R_i| = W · r_i, f = sel.
JoinQuery JoinQueryFromPattern(const PatternStats& stats, Timestamp window);

/// Theorem 1 reduction, JQPG → CPG: W = max |R_i|, r_i = |R_i| / W,
/// sel = f.
struct PatternFromJoinResult {
  PatternStats stats;
  Timestamp window;
};
PatternFromJoinResult PatternFromJoinQuery(const JoinQuery& query);

/// Cost_LDJ (Sec. 4.1): C_1 = |R_i1| · f_{i1,i1}, then intermediate-result
/// sizes of each two-way join in left-deep order. Unary selectivities are
/// applied when their relation is joined, matching the paper's expansion.
double CostLDJ(const JoinQuery& query, const OrderPlan& order);

/// Cost_BJ (Sec. 4.2): Σ over tree nodes of the node's result size —
/// |R_i| at leaves, |L| · |R| · f_{L,R} at internal nodes.
double CostBJ(const JoinQuery& query, const TreePlan& tree);

}  // namespace cepjoin

#endif  // CEPJOIN_COST_JOIN_COST_H_
