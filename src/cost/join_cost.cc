#include "cost/join_cost.h"

#include <algorithm>

#include "common/check.h"

namespace cepjoin {

JoinQuery JoinQueryFromPattern(const PatternStats& stats, Timestamp window) {
  int n = stats.size();
  JoinQuery q;
  q.cardinalities.resize(n);
  q.f = Matrix(n, n, 1.0);
  for (int i = 0; i < n; ++i) {
    q.cardinalities[i] = window * stats.rate(i);
    for (int j = 0; j < n; ++j) q.f.At(i, j) = stats.sel(i, j);
  }
  return q;
}

PatternFromJoinResult PatternFromJoinQuery(const JoinQuery& query) {
  int n = query.size();
  CEPJOIN_CHECK_GT(n, 0);
  double window =
      *std::max_element(query.cardinalities.begin(), query.cardinalities.end());
  CEPJOIN_CHECK_GT(window, 0.0);
  PatternStats stats(n);
  for (int i = 0; i < n; ++i) {
    stats.set_rate(i, query.cardinalities[i] / window);
    for (int j = i; j < n; ++j) stats.set_sel(i, j, query.f.At(i, j));
  }
  return PatternFromJoinResult{stats, window};
}

double CostLDJ(const JoinQuery& query, const OrderPlan& order) {
  CEPJOIN_CHECK_EQ(order.size(), query.size());
  double total = 0.0;
  double intermediate = 1.0;
  for (int k = 0; k < order.size(); ++k) {
    int rel = order.At(k);
    // Join the next relation and apply its unary filter plus every
    // predicate linking it to already-joined relations.
    intermediate *= query.cardinalities[rel] * query.f.At(rel, rel);
    for (int j = 0; j < k; ++j) {
      intermediate *= query.f.At(order.At(j), rel);
    }
    total += intermediate;
  }
  return total;
}

double CostBJ(const JoinQuery& query, const TreePlan& tree) {
  CEPJOIN_CHECK_EQ(tree.num_leaves(), query.size());
  int n = query.size();
  std::vector<double> result_size(tree.num_nodes(), 0.0);
  double total = 0.0;
  // Leaves first.
  for (int i = 0; i < n; ++i) {
    int leaf = tree.LeafOf(i);
    result_size[leaf] = query.cardinalities[i];
    total += result_size[leaf];
  }
  for (int id : tree.internal_postorder()) {
    const TreePlan::Node& node = tree.node(id);
    uint64_t lmask = tree.node(node.left).mask;
    uint64_t rmask = tree.node(node.right).mask;
    double f = 1.0;
    for (int i = 0; i < n; ++i) {
      if (!(lmask >> i & 1)) continue;
      for (int j = 0; j < n; ++j) {
        if (rmask >> j & 1) f *= query.f.At(i, j);
      }
    }
    result_size[id] = result_size[node.left] * result_size[node.right] * f;
    total += result_size[id];
  }
  return total;
}

}  // namespace cepjoin
