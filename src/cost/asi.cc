#include "cost/asi.h"

#include "common/check.h"

namespace cepjoin {

AsiContext MakeAsiContext(const PatternStats& stats, Timestamp window,
                          const std::vector<int>& parent) {
  int n = stats.size();
  CEPJOIN_CHECK_EQ(static_cast<int>(parent.size()), n);
  AsiContext ctx;
  ctx.factor.resize(n);
  for (int i = 0; i < n; ++i) {
    double sel_r = parent[i] >= 0 ? stats.sel(i, parent[i]) : 1.0;
    ctx.factor[i] = window * stats.rate(i) * stats.sel(i, i) * sel_r;
  }
  return ctx;
}

double AsiC(const AsiContext& ctx, const std::vector<int>& seq) {
  double total = 0.0;
  double product = 1.0;
  for (int slot : seq) {
    product *= ctx.factor[slot];
    total += product;
  }
  return total;
}

double AsiT(const AsiContext& ctx, const std::vector<int>& seq) {
  double product = 1.0;
  for (int slot : seq) product *= ctx.factor[slot];
  return product;
}

double AsiRank(const AsiContext& ctx, const std::vector<int>& seq) {
  CEPJOIN_CHECK(!seq.empty());
  double c = AsiC(ctx, seq);
  CEPJOIN_CHECK_GT(c, 0.0) << "rank undefined for zero-cost sequences";
  return (AsiT(ctx, seq) - 1.0) / c;
}

}  // namespace cepjoin
