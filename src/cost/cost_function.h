#ifndef CEPJOIN_COST_COST_FUNCTION_H_
#define CEPJOIN_COST_COST_FUNCTION_H_

#include <cstdint>

#include "plan/order_plan.h"
#include "plan/tree_plan.h"
#include "stats/statistics.h"

namespace cepjoin {

/// Which partial-match model the throughput component uses (Sec. 6.2):
/// kAny      — skip-till-any-match, PM(k) = W^k · Π r · Π sel (Sec. 4.1);
/// kNextMatch — skip-till-next-match, m[k] = W · min(r) · Π sel; the paper
///              uses this model for the contiguity strategies as well.
enum class ThroughputModel { kAny, kNextMatch };

/// Full cost specification: throughput model plus the hybrid latency term
/// Cost = Cost_trpt + alpha · Cost_lat (Sec. 6.1). `latency_anchor` is the
/// slot whose event arrives last (Tn) — the pattern's final slot for SEQ,
/// or the output profiler's most frequent last type for AND; -1 disables
/// the latency term regardless of alpha.
struct CostSpec {
  ThroughputModel model = ThroughputModel::kAny;
  double latency_alpha = 0.0;
  int latency_anchor = -1;
};

/// Evaluates the paper's CPG cost functions over order-based and
/// tree-based plans for one pattern's statistics. All optimizers consume
/// plans solely through this interface, which is what makes JQPG
/// algorithms directly applicable (they are "generally independent of the
/// cost model", Sec. 6.1).
class CostFunction {
 public:
  CostFunction(const PatternStats& stats, Timestamp window,
               CostSpec spec = {});

  int size() const { return stats_.size(); }
  Timestamp window() const { return window_; }
  double rate(int i) const { return stats_.rate(i); }
  double sel(int i, int j) const { return stats_.sel(i, j); }
  const CostSpec& spec() const { return spec_; }

  /// Expected number of partial matches over the slot set `mask` under the
  /// order-based model: this is PM(k) (resp. W·m[k]) for any prefix whose
  /// slot set is `mask`. Includes unary selectivities.
  double OrderSetCost(uint64_t mask) const;

  /// Expected partial matches accumulated at an internal tree node whose
  /// subtree covers `mask` (Sec. 4.2). Excludes unary selectivities, like
  /// the paper's tree model.
  double TreeNodeCost(uint64_t mask) const;

  /// Expected partial matches at the leaf of slot i: W · r_i.
  double LeafCost(int i) const;

  /// Throughput component only: Cost_ord / Cost_ord^next.
  double OrderThroughputCost(const OrderPlan& plan) const;
  /// Latency component only: Cost_ord^lat (Sec. 6.1); 0 if no anchor.
  double OrderLatencyCost(const OrderPlan& plan) const;
  /// Hybrid total: throughput + alpha · latency.
  double OrderCost(const OrderPlan& plan) const;

  double TreeThroughputCost(const TreePlan& plan) const;
  double TreeLatencyCost(const TreePlan& plan) const;
  double TreeCost(const TreePlan& plan) const;

 private:
  PatternStats stats_;
  Timestamp window_;
  CostSpec spec_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_COST_COST_FUNCTION_H_
