#ifndef CEPJOIN_PLAN_ORDER_PLAN_H_
#define CEPJOIN_PLAN_ORDER_PLAN_H_

#include <string>
#include <vector>

namespace cepjoin {

/// An order-based evaluation plan (Sec. 3.1): a permutation of the
/// pattern's positive slots. Element k is the slot processed at step k.
/// Indices refer to positions within `SimplePattern::positive_positions()`
/// (equivalently: join-relation indices under the Theorem 1 reduction).
class OrderPlan {
 public:
  OrderPlan() = default;
  explicit OrderPlan(std::vector<int> order);

  static OrderPlan Identity(int n);

  int size() const { return static_cast<int>(order_.size()); }
  const std::vector<int>& order() const { return order_; }
  /// Slot processed at step k.
  int At(int k) const { return order_[k]; }
  /// Step at which slot `item` is processed.
  int StepOf(int item) const { return step_of_[item]; }

  std::string Describe() const;

  bool operator==(const OrderPlan& other) const {
    return order_ == other.order_;
  }

 private:
  std::vector<int> order_;
  std::vector<int> step_of_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PLAN_ORDER_PLAN_H_
