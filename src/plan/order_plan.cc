#include "plan/order_plan.h"

#include <numeric>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace cepjoin {

OrderPlan::OrderPlan(std::vector<int> order) : order_(std::move(order)) {
  int n = static_cast<int>(order_.size());
  step_of_.assign(n, -1);
  for (int k = 0; k < n; ++k) {
    int item = order_[k];
    CEPJOIN_CHECK(item >= 0 && item < n) << "order element out of range";
    CEPJOIN_CHECK_EQ(step_of_[item], -1) << "duplicate element in order";
    step_of_[item] = k;
  }
}

OrderPlan OrderPlan::Identity(int n) {
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  return OrderPlan(std::move(order));
}

std::string OrderPlan::Describe() const {
  std::ostringstream os;
  os << "[";
  for (int k = 0; k < size(); ++k) {
    if (k > 0) os << " ";
    os << order_[k];
  }
  os << "]";
  return os.str();
}

}  // namespace cepjoin
