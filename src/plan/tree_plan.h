#ifndef CEPJOIN_PLAN_TREE_PLAN_H_
#define CEPJOIN_PLAN_TREE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/order_plan.h"

namespace cepjoin {

/// A tree-based evaluation plan (Sec. 3.1): a binary tree whose leaves are
/// the pattern's positive slots. Internal nodes specify which subsets of
/// partial matches are buffered and how they are combined (ZStream-style).
/// Also doubles as a join execution tree (bushy plan) under the Theorem 2
/// reduction. Supports up to 64 leaves (leaf sets are bitmasks).
class TreePlan {
 public:
  struct Node {
    int left = -1;
    int right = -1;
    int parent = -1;
    int leaf_item = -1;      // >= 0 iff this is a leaf
    uint64_t mask = 0;       // set of leaf items under this node
  };

  /// Incremental construction; nodes may be added in any bottom-up order.
  class Builder {
   public:
    int AddLeaf(int item);
    int AddInternal(int left, int right);
    /// Finalizes the tree with the given root; validates that the tree is
    /// a single binary tree covering each leaf item exactly once.
    TreePlan Build(int root);

   private:
    std::vector<Node> nodes_;
  };

  TreePlan() = default;

  /// The left-deep tree corresponding to an order: ((((p0 p1) p2) p3) ...).
  static TreePlan LeftDeep(const OrderPlan& order);

  int root() const { return root_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_leaves() const { return num_leaves_; }
  const Node& node(int id) const { return nodes_[id]; }
  bool IsLeaf(int id) const { return nodes_[id].leaf_item >= 0; }
  /// The other child of `id`'s parent; -1 for the root.
  int Sibling(int id) const;
  /// Node id of the leaf carrying `item`.
  int LeafOf(int item) const { return leaf_node_of_[item]; }

  /// Internal node ids in bottom-up (children before parents) order.
  const std::vector<int>& internal_postorder() const {
    return internal_postorder_;
  }

  /// S-expression rendering, e.g. "((0 1) (2 3))".
  std::string Describe() const;

  bool operator==(const TreePlan& other) const;

 private:
  std::vector<Node> nodes_;
  int root_ = -1;
  int num_leaves_ = 0;
  std::vector<int> leaf_node_of_;
  std::vector<int> internal_postorder_;

  void Finalize();
  friend class Builder;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PLAN_TREE_PLAN_H_
