#include "plan/tree_plan.h"

#include <functional>
#include <sstream>

#include "common/check.h"

namespace cepjoin {

int TreePlan::Builder::AddLeaf(int item) {
  CEPJOIN_CHECK(item >= 0 && item < 64) << "leaf items must be in [0, 64)";
  Node n;
  n.leaf_item = item;
  n.mask = uint64_t{1} << item;
  nodes_.push_back(n);
  return static_cast<int>(nodes_.size()) - 1;
}

int TreePlan::Builder::AddInternal(int left, int right) {
  CEPJOIN_CHECK(left >= 0 && left < static_cast<int>(nodes_.size()));
  CEPJOIN_CHECK(right >= 0 && right < static_cast<int>(nodes_.size()));
  CEPJOIN_CHECK(left != right);
  CEPJOIN_CHECK_EQ(nodes_[left].parent, -1) << "node already has a parent";
  CEPJOIN_CHECK_EQ(nodes_[right].parent, -1) << "node already has a parent";
  CEPJOIN_CHECK((nodes_[left].mask & nodes_[right].mask) == 0)
      << "subtrees overlap in leaf items";
  Node n;
  n.left = left;
  n.right = right;
  n.mask = nodes_[left].mask | nodes_[right].mask;
  nodes_.push_back(n);
  int id = static_cast<int>(nodes_.size()) - 1;
  nodes_[left].parent = id;
  nodes_[right].parent = id;
  return id;
}

TreePlan TreePlan::Builder::Build(int root) {
  CEPJOIN_CHECK(root >= 0 && root < static_cast<int>(nodes_.size()));
  CEPJOIN_CHECK_EQ(nodes_[root].parent, -1);
  TreePlan plan;
  plan.nodes_ = nodes_;
  plan.root_ = root;
  plan.Finalize();
  return plan;
}

void TreePlan::Finalize() {
  // Count leaves, verify the root covers a contiguous item range exactly
  // once, and record per-item leaf nodes.
  uint64_t mask = nodes_[root_].mask;
  num_leaves_ = __builtin_popcountll(mask);
  CEPJOIN_CHECK_EQ(mask, num_leaves_ == 64
                             ? ~uint64_t{0}
                             : (uint64_t{1} << num_leaves_) - 1)
      << "tree must cover items 0..n-1 exactly once";
  leaf_node_of_.assign(num_leaves_, -1);
  internal_postorder_.clear();
  int reachable = 0;
  std::function<void(int)> visit = [&](int id) {
    ++reachable;
    const Node& n = nodes_[id];
    if (n.leaf_item >= 0) {
      CEPJOIN_CHECK_EQ(leaf_node_of_[n.leaf_item], -1);
      leaf_node_of_[n.leaf_item] = id;
      return;
    }
    visit(n.left);
    visit(n.right);
    internal_postorder_.push_back(id);
  };
  visit(root_);
  CEPJOIN_CHECK_EQ(reachable, static_cast<int>(nodes_.size()))
      << "builder contains nodes not reachable from the root";
}

TreePlan TreePlan::LeftDeep(const OrderPlan& order) {
  Builder b;
  CEPJOIN_CHECK_GT(order.size(), 0);
  int acc = b.AddLeaf(order.At(0));
  for (int k = 1; k < order.size(); ++k) {
    acc = b.AddInternal(acc, b.AddLeaf(order.At(k)));
  }
  return b.Build(acc);
}

int TreePlan::Sibling(int id) const {
  int p = nodes_[id].parent;
  if (p < 0) return -1;
  return nodes_[p].left == id ? nodes_[p].right : nodes_[p].left;
}

std::string TreePlan::Describe() const {
  std::ostringstream os;
  std::function<void(int)> render = [&](int id) {
    const Node& n = nodes_[id];
    if (n.leaf_item >= 0) {
      os << n.leaf_item;
      return;
    }
    os << "(";
    render(n.left);
    os << " ";
    render(n.right);
    os << ")";
  };
  render(root_);
  return os.str();
}

bool TreePlan::operator==(const TreePlan& other) const {
  return Describe() == other.Describe();
}

}  // namespace cepjoin
