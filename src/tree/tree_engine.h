#ifndef CEPJOIN_TREE_TREE_ENGINE_H_
#define CEPJOIN_TREE_TREE_ENGINE_H_

#include <chrono>
#include <vector>

#include "plan/tree_plan.h"
#include "runtime/column_buffer.h"
#include "runtime/compiled_pattern.h"
#include "runtime/instance_store.h"
#include "runtime/engine.h"
#include "runtime/match.h"

namespace cepjoin {

/// Instance-based tree evaluation engine (Sec. 2.3): ZStream's tree model
/// modified for arbitrary time windows. Each plan node buffers the
/// partial matches ("instances") its subtree has produced. A new event is
/// routed to its leaf; every new instance at a node is combined with the
/// instances currently buffered at its sibling, producing instances at
/// the parent, recursively up to the root where matches are emitted.
///
/// Exactly-once: a (left, right) instance pair is combined exactly when
/// the later-created of the two is created. Kleene leaves enumerate
/// canonical subsets (members join in increasing serial order). Negation
/// checks attach to the lowest node covering all guard slots; leading /
/// AND-window / trailing checks run at the root with deferred emission,
/// as in the NFA engine.
class TreeEngine : public Engine {
 public:
  TreeEngine(const SimplePattern& pattern, const TreePlan& plan,
             MatchSink* sink);

  void OnEvent(const EventPtr& e) override;
  /// Batched entry point: identical matches and counters to per-event
  /// feeding; amortizes the dispatch and the latency clock read.
  void OnBatch(const EventPtr* events, size_t n) override;
  void Finish() override;

  /// Checkpoint support. The serialized/rebuilt split of every member is
  /// pinned in the CODEC MANIFEST (durable/snapshot_codec.cc); the
  /// columnar leaf/instance mirrors are rebuilt at load by replaying the
  /// NewInstance append path, preserving lane == instance congruence.
  [[nodiscard]] Status SaveState(EngineStateWriter* w) const override;
  [[nodiscard]] Status LoadState(EngineStateReader* r) override;

  const CompiledPattern& compiled() const { return cp_; }
  const TreePlan& plan() const { return plan_; }

 private:
  struct Instance {
    std::vector<EventPtr> by_slot;       // size m; null when unbound
    std::vector<EventPtr> kleene_extra;  // members beyond the anchor
    Timestamp min_ts = 0.0;
    Timestamp max_ts = 0.0;
    EventSerial max_serial = 0;  // newest member; Kleene canonical order
    bool dead = false;
    /// Bytes charged to counters_ when this instance was buffered; the
    /// matching remove uses this (never a recomputed ApproxBytes), so
    /// byte totals cannot drift even if capacities change in between.
    size_t tracked_bytes = 0;
    /// Bytes its node's columnar InstanceStore mirror charged for this
    /// instance (0 when the node is not instance-mirrored). Same
    /// record-the-added-size discipline as tracked_bytes.
    size_t store_bytes = 0;

    size_t ApproxBytes() const {
      return sizeof(Instance) +
             (by_slot.capacity() + kleene_extra.capacity()) *
                 sizeof(EventPtr);
    }
  };

  struct PendingMatch {
    Match match;
    Timestamp min_ts = 0.0;
    Timestamp max_ts = 0.0;
    Timestamp deadline = 0.0;
  };

  /// Delta input only: an emitted match kept revocable while any of its
  /// events can still be retracted. Evicted once max_ts leaves the
  /// window — every event of the match has ts <= max_ts, so an
  /// in-window retraction target implies max_ts is in window too.
  struct EmittedMatch {
    Match match;
    Timestamp max_ts = 0.0;
  };

  /// OnEvent minus the latency clock read (hoisted per batch by OnBatch).
  void ProcessEvent(const EventPtr& e);
  void ProcessPending(const Event& e);
  /// The deadline-emission half of ProcessPending: emits pending matches
  /// whose trailing window closed strictly before `e`. Retractions run
  /// only this half — a retraction is a command, not a negation
  /// candidate.
  void ProcessPendingDeadlines(const Event& e);
  /// Consumes one polarity=-1 event: drops the retracted event from the
  /// negation buffers, deletes every node instance bound to it (rows and
  /// columnar leaf/store mirrors compacted in lockstep, store_bytes
  /// refunded exactly — the columnar combine requires mirrors congruent
  /// with live instances), discards pending matches containing it, and
  /// emits revocations for previously emitted matches that do.
  void ProcessRetraction(const Event& r);
  /// Removes the row with `serial` from `buffer`, refunding its exact
  /// buffered bytes. No-op if absent.
  void RemoveFromBuffer(ColumnBuffer* buffer, EventSerial serial);
  void BufferNegated(const EventPtr& e);
  void ArriveAtLeaf(int leaf_node, const EventPtr& e);
  /// Negation-checks, buffers, and cascades a freshly created instance.
  void NewInstance(int node, Instance&& inst);
  /// Non-const: predicate evaluations count into counters_.
  bool TryCombine(int parent, const Instance& a, const Instance& b,
                  Instance* out);
  /// TryCombine's construction tail: slot-wise union of a (left) and b
  /// (right) with recomputed extent. Shared by the scalar path and the
  /// columnar survivor materialization.
  void FillCombined(const Instance& a, const Instance& b, Instance* out);
  /// Run-at-a-time combine against a mirrored (non-Kleene) leaf sibling:
  /// window + cross-pair gates evaluated over the leaf's column run with
  /// a survivor bitmask, then survivors cascade in buffer order. Matches
  /// and predicate_evals are bit-identical to the scalar partner loop;
  /// used when columnar kernels are enabled and the strategy is not
  /// skip-till-next (whose left-side early exit stops evaluating
  /// mid-run).
  void CombineWithLeafRun(const Instance& local, int sib, int parent,
                          bool node_is_left);
  /// Run-at-a-time combine against a mirrored *internal-node* sibling:
  /// the instance×instance counterpart of CombineWithLeafRun. The
  /// window-overlap gate runs vectorized over the store's (min_ts,
  /// max_ts) extent columns, then each cross pair of the parent probes
  /// the sibling's anchor column for its store-side position through the
  /// masked EvalInstanceRun kernels. Matches and predicate_evals are
  /// bit-identical to the scalar partner loop.
  void CombineWithInstanceRun(const Instance& local, int sib, int parent,
                              bool node_is_left);
  bool NodeNegationChecks(int node, const Instance& inst);
  void Complete(const Instance& inst);
  /// `max_ts` is the match's window upper edge, keyed by the revocation
  /// log's eviction; unused (and uncopied) for insert-only patterns.
  void EmitMatch(Match match, Timestamp max_ts);
  void EmitRevocation(Match match);
  void Sweep();

  CompiledPattern cp_;
  TreePlan plan_;
  MatchSink* sink_;

  int kleene_pos_ = -1;  // pattern position of the Kleene slot, -1 if none
  // leaf nodes accepting each event type
  std::unordered_map<TypeId, std::vector<int>> leaves_of_type_;
  // per internal node: pattern-position pairs with conditions across the
  // left/right split
  std::vector<std::vector<std::pair<int, int>>> cross_pairs_;
  // per node: negation checks that become ready there
  std::vector<std::vector<const NegationSpec*>> checks_at_node_;
  std::vector<const NegationSpec*> completion_checks_;
  std::vector<const NegationSpec*> trailing_checks_;

  std::vector<std::vector<Instance>> node_buffers_;
  /// Negated-position window buffers, columnar (per pattern position).
  std::vector<ColumnBuffer> neg_buffers_;
  /// Per non-Kleene leaf node: the anchor events of node_buffers_[leaf]
  /// mirrored attr-major, appended/evicted in lockstep — the probe-side
  /// runs of the vectorized combine.
  std::vector<ColumnBuffer> leaf_columns_;
  std::vector<uint8_t> leaf_mirrored_;  // per node
  /// Per eligible internal node: its buffered instances mirrored
  /// attr-major — window extents plus the anchor columns of the
  /// positions its parent's cross pairs read on this side — appended and
  /// filtered in lockstep with node_buffers_. A node stays scalar
  /// (rows-only) when the columnar path is off, when it is the root, or
  /// when a parent cross pair reads the Kleene position on this side
  /// (subset members live in kleene_extra, not in a single column).
  std::vector<InstanceStore> instance_stores_;
  std::vector<uint8_t> instance_mirrored_;  // per node
  std::vector<PendingMatch> pending_;
  /// Revocation log, append-ordered; empty unless track_deltas_.
  std::vector<EmittedMatch> emitted_;
  /// Sweep evicts the log only once it grows past this (then re-arms at
  /// 2x the surviving size), so eviction is amortized O(1) per match.
  size_t emitted_scan_threshold_ = 64;

  Timestamp now_ = 0.0;
  EventSerial current_serial_ = 0;
  std::chrono::steady_clock::time_point arrival_start_{};
  uint64_t events_since_sweep_ = 0;
  bool next_match_ = false;
  /// pattern.delta_input(): accept retractions and log emitted matches
  /// for revocation. Off (the default) costs insert-only streams one
  /// predictable branch per event.
  bool track_deltas_ = false;
  /// ColumnarKernelsEnabled() && !skip-till-next, fixed at construction;
  /// leaf mirrors are only built when it holds.
  bool use_columnar_ = true;

  static constexpr uint64_t kSweepEvery = 64;
};

}  // namespace cepjoin

#endif  // CEPJOIN_TREE_TREE_ENGINE_H_
