#include "tree/tree_engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "durable/snapshot_codec.h"
#include "obs/stage_timer.h"

namespace cepjoin {

namespace {

/// Exposes a tree instance's bound events by pattern position.
class TreeBound : public BoundAccessor {
 public:
  TreeBound(const CompiledPattern& cp, const std::vector<EventPtr>& by_slot,
            const std::vector<EventPtr>& kleene_extra, int kleene_pos)
      : cp_(cp),
        by_slot_(by_slot),
        kleene_extra_(kleene_extra),
        kleene_pos_(kleene_pos) {}

  void ForEach(int pos,
               const std::function<void(const Event&)>& fn) const override {
    int slot = cp_.pos_to_slot(pos);
    if (slot >= 0 && by_slot_[slot] != nullptr) fn(*by_slot_[slot]);
    if (pos == kleene_pos_) {
      for (const EventPtr& e : kleene_extra_) fn(*e);
    }
  }

 private:
  const CompiledPattern& cp_;
  const std::vector<EventPtr>& by_slot_;
  const std::vector<EventPtr>& kleene_extra_;
  int kleene_pos_;
};

class MatchBound : public BoundAccessor {
 public:
  explicit MatchBound(const Match& match) : match_(match) {}
  void ForEach(int pos,
               const std::function<void(const Event&)>& fn) const override {
    if (pos < 0 || pos >= static_cast<int>(match_.slots.size())) return;
    for (const EventPtr& e : match_.slots[pos]) fn(*e);
  }

 private:
  const Match& match_;
};

}  // namespace

TreeEngine::TreeEngine(const SimplePattern& pattern, const TreePlan& plan,
                       MatchSink* sink)
    : cp_(pattern), plan_(plan), sink_(sink) {
  CEPJOIN_CHECK(sink_ != nullptr);
  int m = cp_.num_slots();
  CEPJOIN_CHECK_EQ(plan_.num_leaves(), m)
      << "tree plan must cover exactly the positive slots";
  if (cp_.kleene_slot() >= 0) {
    kleene_pos_ = cp_.slot_to_pos(cp_.kleene_slot());
    CEPJOIN_CHECK_GE(m, 2)
        << "a Kleene leaf cannot be the tree root: subsets are buffered at "
           "the leaf and only combined at internal nodes";
  }
  for (int slot = 0; slot < m; ++slot) {
    leaves_of_type_[cp_.pos_type(cp_.slot_to_pos(slot))].push_back(
        plan_.LeafOf(slot));
  }
  node_buffers_.resize(plan_.num_nodes());
  neg_buffers_.resize(cp_.num_positions());
  checks_at_node_.resize(plan_.num_nodes());
  // Negation buffers are only ever iterated row-wise.
  for (auto& buffer : neg_buffers_) buffer.DisableColumns();
  next_match_ = cp_.strategy() == SelectionStrategy::kSkipTillNext;
  track_deltas_ = cp_.delta_input();
  CEPJOIN_CHECK(!track_deltas_ ||
                cp_.strategy() == SelectionStrategy::kSkipTillAny)
      << "delta input requires skip-till-any: retraction semantics under "
         "skip-till-next/contiguity pruning are undefined";
  use_columnar_ = ColumnarKernelsEnabled() && !next_match_;
  // Non-Kleene leaves mirror their instance anchors attr-major; a Kleene
  // leaf buffers subsets (anchor + members), which are not single rows.
  // Mirrors exist only when the columnar combine can actually run.
  leaf_columns_.resize(plan_.num_nodes());
  leaf_mirrored_.assign(plan_.num_nodes(), 0);
  if (use_columnar_) {
    for (int slot = 0; slot < m; ++slot) {
      if (cp_.slot_to_pos(slot) != kleene_pos_) {
        leaf_mirrored_[plan_.LeafOf(slot)] = 1;
      }
    }
  }

  // Precompute, per internal node, the pattern-position pairs that carry
  // conditions across the node's left/right split.
  cross_pairs_.resize(plan_.num_nodes());
  for (int id : plan_.internal_postorder()) {
    const TreePlan::Node& node = plan_.node(id);
    uint64_t lmask = plan_.node(node.left).mask;
    uint64_t rmask = plan_.node(node.right).mask;
    for (int a = 0; a < m; ++a) {
      if (!(lmask >> a & 1)) continue;
      int pa = cp_.slot_to_pos(a);
      for (int b = 0; b < m; ++b) {
        if (!(rmask >> b & 1)) continue;
        int pb = cp_.slot_to_pos(b);
        if (!cp_.conditions().Between(pa, pb).empty()) {
          cross_pairs_[id].emplace_back(pa, pb);
        }
      }
    }
  }

  // Instance stores: mirror each eligible internal node's instances
  // attr-major so a fresh sibling instance can probe them run-at-a-time.
  // Eligibility mirrors the leaf rule: columnar path on, and no parent
  // cross pair reads the Kleene position on the stored side (its subset
  // members live in kleene_extra, which a single anchor column cannot
  // represent). The root is never probed — it has no sibling.
  instance_stores_.resize(plan_.num_nodes());
  instance_mirrored_.assign(plan_.num_nodes(), 0);
  if (use_columnar_) {
    for (int id : plan_.internal_postorder()) {
      if (id == plan_.root()) continue;
      int parent = plan_.node(id).parent;
      bool is_left = plan_.node(parent).left == id;
      std::vector<InstanceStoreColumn> columns;
      bool eligible = true;
      for (const auto& [pa, pb] : cross_pairs_[parent]) {
        int store_pos = is_left ? pa : pb;
        if (store_pos == kleene_pos_) {
          eligible = false;
          break;
        }
        bool seen = false;
        for (const InstanceStoreColumn& col : columns) {
          if (col.key == store_pos) {
            seen = true;
            break;
          }
        }
        if (!seen) {
          columns.push_back({store_pos, cp_.pos_to_slot(store_pos)});
        }
      }
      if (!eligible) continue;
      instance_mirrored_[id] = 1;
      instance_stores_[id].Configure(std::move(columns));
    }
  }

  // Attach negation checks to the lowest node covering all dependencies.
  for (const NegationSpec& neg : cp_.negations()) {
    if (neg.trailing) {
      trailing_checks_.push_back(&neg);
      completion_checks_.push_back(&neg);
      continue;
    }
    if (neg.leading_bounded) {
      completion_checks_.push_back(&neg);
      continue;
    }
    uint64_t need = 0;
    for (int dep : neg.dep_positions) {
      int slot = cp_.pos_to_slot(dep);
      CEPJOIN_CHECK_GE(slot, 0);
      need |= uint64_t{1} << slot;
    }
    int node = plan_.LeafOf(__builtin_ctzll(need));
    while ((plan_.node(node).mask & need) != need) {
      node = plan_.node(node).parent;
      CEPJOIN_CHECK_GE(node, 0);
    }
    checks_at_node_[node].push_back(&neg);
  }
}

void TreeEngine::OnEvent(const EventPtr& e) {
  arrival_start_ = std::chrono::steady_clock::now();
  ProcessEvent(e);
}

void TreeEngine::OnBatch(const EventPtr* events, size_t n) {
  if (n == 0) return;
  // One latency anchor per batch instead of one clock read per event;
  // everything else is byte-identical to the per-event path, so matches
  // and counters are too.
  arrival_start_ = std::chrono::steady_clock::now();
  CEPJOIN_STAGE_TIMER("tree_on_batch");
  for (size_t i = 0; i < n; ++i) ProcessEvent(events[i]);
}

void TreeEngine::ProcessEvent(const EventPtr& e) {
  CEPJOIN_CHECK(e != nullptr);
  ++counters_.events_processed;
  now_ = e->ts;
  current_serial_ = e->serial;
  if (++events_since_sweep_ >= kSweepEvery) Sweep();
  if (e->IsRetraction()) {
    // A retraction advances time (matches whose trailing window closed
    // before it are now final and revocable), but it is a command, not
    // an occurrence: it never buffers, combines, or negates.
    ProcessPendingDeadlines(*e);
    ProcessRetraction(*e);
    return;
  }
  ProcessPending(*e);
  BufferNegated(e);
  auto it = leaves_of_type_.find(e->type);
  if (it != leaves_of_type_.end()) {
    for (int leaf : it->second) ArriveAtLeaf(leaf, e);
  }
}

void TreeEngine::Finish() {
  for (PendingMatch& p : pending_) {
    EmitMatch(std::move(p.match), p.max_ts);
  }
  pending_.clear();
}

void TreeEngine::ProcessPendingDeadlines(const Event& e) {
  if (pending_.empty()) return;
  size_t keep = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].deadline < e.ts) {
      EmitMatch(std::move(pending_[i].match), pending_[i].max_ts);
    } else {
      if (keep != i) pending_[keep] = std::move(pending_[i]);
      ++keep;
    }
  }
  pending_.resize(keep);
}

void TreeEngine::ProcessPending(const Event& e) {
  if (pending_.empty()) return;
  ProcessPendingDeadlines(e);
  for (const NegationSpec* neg : trailing_checks_) {
    if (cp_.pos_type(neg->neg_pos) != e.type) continue;
    if (!cp_.program().EvalUnary(neg->neg_pos, e,
                                 &counters_.predicate_evals)) {
      continue;
    }
    size_t kept = 0;
    for (size_t i = 0; i < pending_.size(); ++i) {
      MatchBound bound(pending_[i].match);
      if (!cp_.NegationViolates(*neg, e, bound, pending_[i].min_ts,
                                pending_[i].max_ts,
                                &counters_.predicate_evals)) {
        if (kept != i) pending_[kept] = std::move(pending_[i]);
        ++kept;
      }
    }
    pending_.resize(kept);
  }
}

void TreeEngine::RemoveFromBuffer(ColumnBuffer* buffer, EventSerial serial) {
  const size_t n = buffer->size();
  size_t hit = n;
  for (size_t i = 0; i < n; ++i) {
    if ((*buffer)[i]->serial == serial) {
      hit = i;
      break;  // serials are unique
    }
  }
  if (hit == n) return;
  counters_.RemoveBuffered(BufferedEventBytes(*buffer, *(*buffer)[hit]));
  std::vector<uint8_t> keep(n, 1);
  keep[hit] = 0;
  buffer->Filter(keep);
}

void TreeEngine::ProcessRetraction(const Event& r) {
  CEPJOIN_CHECK(track_deltas_)
      << "retraction fed to an engine whose pattern lacks WithDeltaInput()";
  ++counters_.retractions_processed;
  const EventSerial target = r.target_serial;
  // Negation buffers: the retracted event is buffered at every negated
  // position of its type that its unary predicate admitted — the same
  // set BufferNegated appended to. Exact byte refund.
  for (int pos : cp_.positions_of_type(r.type)) {
    if (cp_.pos_to_slot(pos) >= 0) continue;
    RemoveFromBuffer(&neg_buffers_[pos], target);
  }
  // Node buffers: every instance bound to the retracted event is
  // deleted NOW, rows and columnar mirrors compacted in lockstep — the
  // vectorized combine kernels require lane k of a mirror to be live
  // partner k, so (unlike the NFA) husks cannot wait for the next
  // Sweep.
  std::vector<uint8_t> keep_rows;
  for (size_t node = 0; node < node_buffers_.size(); ++node) {
    std::vector<Instance>& list = node_buffers_[node];
    if (list.empty()) continue;
    const bool leaf_mirror = leaf_mirrored_[node] != 0;
    const bool store_mirror = instance_mirrored_[node] != 0;
    const bool mirrored = leaf_mirror || store_mirror;
    if (mirrored) keep_rows.assign(list.size(), 0);
    size_t keep = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      Instance& inst = list[i];
      bool contains = false;
      for (const EventPtr& used : inst.by_slot) {
        if (used != nullptr && used->serial == target) {
          contains = true;
          break;
        }
      }
      if (!contains) {
        for (const EventPtr& used : inst.kleene_extra) {
          if (used->serial == target) {
            contains = true;
            break;
          }
        }
      }
      if (contains) {
        if (!inst.dead) counters_.RemoveInstance(inst.tracked_bytes);
        if (store_mirror) counters_.RemoveStoreBytes(inst.store_bytes);
        continue;
      }
      if (mirrored) keep_rows[i] = 1;
      if (keep != i) list[keep] = std::move(list[i]);
      ++keep;
    }
    if (keep == list.size()) continue;  // no hit: mirrors untouched
    list.resize(keep);
    if (leaf_mirror) leaf_columns_[node].Filter(keep_rows);
    if (store_mirror) instance_stores_[node].Filter(keep_rows);
  }
  // Pending (trailing-negation) matches containing the event were never
  // emitted: discard silently, nothing to revoke.
  size_t keep = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (!MatchContainsSerial(pending_[i].match, target)) {
      if (keep != i) pending_[keep] = std::move(pending_[i]);
      ++keep;
    }
  }
  pending_.resize(keep);
  // Previously emitted matches revoke in their original emission order.
  keep = 0;
  for (size_t i = 0; i < emitted_.size(); ++i) {
    if (MatchContainsSerial(emitted_[i].match, target)) {
      EmitRevocation(std::move(emitted_[i].match));
    } else {
      if (keep != i) emitted_[keep] = std::move(emitted_[i]);
      ++keep;
    }
  }
  emitted_.resize(keep);
}

void TreeEngine::BufferNegated(const EventPtr& e) {
  for (int pos : cp_.positions_of_type(e->type)) {
    if (cp_.pos_to_slot(pos) >= 0) continue;  // only negated positions
    if (!cp_.program().EvalUnary(pos, *e, &counters_.predicate_evals)) {
      continue;
    }
    counters_.AddBuffered(BufferedEventBytes(neg_buffers_[pos], *e));
    neg_buffers_[pos].Append(e);
  }
}

void TreeEngine::ArriveAtLeaf(int leaf_node, const EventPtr& e) {
  int slot = plan_.node(leaf_node).leaf_item;
  int pos = cp_.slot_to_pos(slot);
  if (!cp_.program().EvalUnary(pos, *e, &counters_.predicate_evals)) return;
  int m = cp_.num_slots();
  bool kleene_leaf = pos == kleene_pos_;

  // Kleene leaf: extend existing (pre-arrival) subsets in canonical order.
  size_t pre_size = node_buffers_[leaf_node].size();

  Instance singleton;
  singleton.by_slot.assign(m, nullptr);
  singleton.by_slot[slot] = e;
  singleton.min_ts = e->ts;
  singleton.max_ts = e->ts;
  singleton.max_serial = e->serial;
  NewInstance(leaf_node, std::move(singleton));

  if (!kleene_leaf || next_match_) return;
  for (size_t idx = 0; idx < pre_size; ++idx) {
    const Instance& base = node_buffers_[leaf_node][idx];
    if (base.dead) continue;
    if (e->serial <= base.max_serial) continue;
    if (std::max(base.max_ts, e->ts) - std::min(base.min_ts, e->ts) >
        cp_.window()) {
      continue;
    }
    Instance extended = base;
    extended.kleene_extra.push_back(e);
    extended.min_ts = std::min(base.min_ts, e->ts);
    extended.max_ts = std::max(base.max_ts, e->ts);
    extended.max_serial = e->serial;
    NewInstance(leaf_node, std::move(extended));
  }
}

bool TreeEngine::TryCombine(int parent, const Instance& a, const Instance& b,
                            Instance* out) {
  Timestamp min_ts = std::min(a.min_ts, b.min_ts);
  Timestamp max_ts = std::max(a.max_ts, b.max_ts);
  if (max_ts - min_ts > cp_.window()) return false;
  // `a` is the left child's instance, `b` the right child's; masks are
  // disjoint so slot-wise union is well-defined.
  for (const auto& [pa, pb] : cross_pairs_[parent]) {
    const Instance& left_holder =
        a.by_slot[cp_.pos_to_slot(pa)] != nullptr ? a : b;
    const Instance& right_holder = &left_holder == &a ? b : a;
    bool ok = true;
    TreeBound lbound(cp_, left_holder.by_slot, left_holder.kleene_extra,
                     kleene_pos_);
    TreeBound rbound(cp_, right_holder.by_slot, right_holder.kleene_extra,
                     kleene_pos_);
    lbound.ForEach(pa, [&](const Event& ea) {
      if (!ok) return;
      rbound.ForEach(pb, [&](const Event& eb) {
        if (!ok) return;
        if (!cp_.program().EvalPair(pa, pb, ea, eb,
                                    &counters_.predicate_evals)) {
          ok = false;
        }
      });
    });
    if (!ok) return false;
  }
  FillCombined(a, b, out);
  return true;
}

void TreeEngine::FillCombined(const Instance& a, const Instance& b,
                              Instance* out) {
  *out = a;
  int m = cp_.num_slots();
  for (int s = 0; s < m; ++s) {
    if (b.by_slot[s] != nullptr) out->by_slot[s] = b.by_slot[s];
  }
  out->kleene_extra.insert(out->kleene_extra.end(), b.kleene_extra.begin(),
                           b.kleene_extra.end());
  out->min_ts = std::min(a.min_ts, b.min_ts);
  out->max_ts = std::max(a.max_ts, b.max_ts);
  out->max_serial = std::max(a.max_serial, b.max_serial);
  out->dead = false;
}

bool TreeEngine::NodeNegationChecks(int node, const Instance& inst) {
  if (checks_at_node_[node].empty()) return true;
  TreeBound bound(cp_, inst.by_slot, inst.kleene_extra, kleene_pos_);
  for (const NegationSpec* neg : checks_at_node_[node]) {
    const ColumnBuffer& buffer = neg_buffers_[neg->neg_pos];
    for (size_t bi = 0; bi < buffer.size(); ++bi) {
      if (cp_.NegationViolates(*neg, *buffer[bi], bound, inst.min_ts,
                               inst.max_ts, &counters_.predicate_evals)) {
        return false;
      }
    }
  }
  return true;
}

void TreeEngine::NewInstance(int node, Instance&& inst) {
  if (!NodeNegationChecks(node, inst)) return;
  if (node == plan_.root()) {
    Complete(inst);
    return;
  }
  inst.tracked_bytes = inst.ApproxBytes();
  counters_.AddInstance(inst.tracked_bytes);
  node_buffers_[node].push_back(std::move(inst));
  if (leaf_mirrored_[node]) {
    // Lockstep columnar mirror of the leaf's anchors.
    leaf_columns_[node].Append(
        node_buffers_[node].back().by_slot[plan_.node(node).leaf_item]);
  } else if (instance_mirrored_[node]) {
    // Lockstep columnar mirror of the internal node's instances: window
    // extents + the anchor columns the parent's cross pairs probe.
    Instance& stored = node_buffers_[node].back();
    stored.store_bytes =
        instance_stores_[node].RowMirrorBytes(stored.by_slot);
    counters_.AddStoreBytes(stored.store_bytes);
    instance_stores_[node].Append(stored.min_ts, stored.max_ts,
                                  stored.by_slot);
  }
  // Stable copy: recursion never appends to this node's buffer, but a
  // reallocation elsewhere must not invalidate what we iterate with.
  Instance local = node_buffers_[node].back();

  int sib = plan_.Sibling(node);
  int parent = plan_.node(node).parent;
  bool node_is_left = plan_.node(parent).left == node;
  // Both join shapes run through the columnar kernels: a fresh partial
  // probing a leaf's window buffer (event columns) and probing an
  // internal sibling's instance store (partial-match columns). Kleene
  // leaves, Kleene-anchored stores, and skip-till-next (left-side
  // first-success early exit) stay on the scalar partner loop, which is
  // also the correctness oracle.
  if (leaf_mirrored_[sib]) {  // implies use_columnar_ && !next_match_
    CombineWithLeafRun(local, sib, parent, node_is_left);
    return;
  }
  if (instance_mirrored_[sib]) {  // implies use_columnar_ && !next_match_
    CombineWithInstanceRun(local, sib, parent, node_is_left);
    return;
  }
  std::vector<Instance>& partners = node_buffers_[sib];
  size_t partner_count = partners.size();
  for (size_t idx = 0; idx < partner_count; ++idx) {
    if (partners[idx].dead) continue;
    Instance combined;
    bool ok = node_is_left
                  ? TryCombine(parent, local, partners[idx], &combined)
                  : TryCombine(parent, partners[idx], local, &combined);
    if (!ok) continue;
    if (next_match_) {
      // Skip-till-next mirrors the NFA: the left (partial-match) side of
      // a join is consumed by its first successful extension, while the
      // right side acts like the arriving event and may serve several
      // waiting partials.
      if (node_is_left) {
        Instance& stored = node_buffers_[node].back();
        if (!stored.dead) {
          stored.dead = true;
          counters_.RemoveInstance(stored.tracked_bytes);
        }
        NewInstance(parent, std::move(combined));
        return;
      }
      partners[idx].dead = true;
      counters_.RemoveInstance(partners[idx].tracked_bytes);
      NewInstance(parent, std::move(combined));
      continue;
    }
    NewInstance(parent, std::move(combined));
  }
}

void TreeEngine::CombineWithLeafRun(const Instance& local, int sib,
                                    int parent, bool node_is_left) {
  CEPJOIN_STAGE_TIMER("tree_combine_leaf_run");
  const ColumnBuffer& mirror = leaf_columns_[sib];
  const std::vector<Instance>& partners = node_buffers_[sib];
  CEPJOIN_CHECK_EQ(mirror.size(), partners.size());
  const size_t n = partners.size();
  if (n == 0) return;
  const ColumnRun run = mirror.Run();
  LaneMask mask(n);
  uint64_t* alive = mask.words();
  const PredicateProgram& program = cp_.program();
  // TryCombine's gate order: window feasibility first (uncounted), then
  // the parent's cross pairs in order, each lane stopping at its first
  // failing span — survivors and predicate_evals identical to the scalar
  // partner loop. Leaf instances are singletons (min_ts == max_ts ==
  // anchor ts), so the column timestamps are the instance extents; dead
  // partners cannot exist outside skip-till-next, which this path
  // excludes.
  WindowMaskLanes(local.min_ts, local.max_ts, cp_.window(), run, alive);
  const int leaf_pos = cp_.slot_to_pos(plan_.node(sib).leaf_item);
  for (const auto& [pa, pb] : cross_pairs_[parent]) {
    // One endpoint of every cross pair lies in the leaf's single-slot
    // mask; `local` holds the other.
    const int fixed_pos = node_is_left ? pa : pb;
    const EventPtr& anchor = local.by_slot[cp_.pos_to_slot(fixed_pos)];
    program.EvalPairRun(fixed_pos, leaf_pos, *anchor, run, alive,
                        &counters_.predicate_evals);
    if (fixed_pos == kleene_pos_) {
      for (const EventPtr& member : local.kleene_extra) {
        program.EvalPairRun(fixed_pos, leaf_pos, *member, run, alive,
                            &counters_.predicate_evals);
      }
    }
  }
  // Survivors combine in buffer order, exactly like the scalar loop. The
  // mask lives on this frame; recursion appends only at `parent` and
  // above, never to the leaf, so the run view stays valid.
  mask.ForEachAlive([&](size_t k) {
    Instance combined;
    if (node_is_left) {
      FillCombined(local, partners[k], &combined);
    } else {
      FillCombined(partners[k], local, &combined);
    }
    NewInstance(parent, std::move(combined));
  });
}

void TreeEngine::CombineWithInstanceRun(const Instance& local, int sib,
                                        int parent, bool node_is_left) {
  CEPJOIN_STAGE_TIMER("tree_combine_instance_run");
  const InstanceStore& store = instance_stores_[sib];
  const std::vector<Instance>& partners = node_buffers_[sib];
  CEPJOIN_CHECK_EQ(store.size(), partners.size());
  const size_t n = partners.size();
  if (n == 0) return;
  counters_.instance_kernel_lanes += n;
  counters_.instance_kernel_blocks += (n + 63) / 64;
  LaneMask mask(n);
  uint64_t* alive = mask.words();
  const PredicateProgram& program = cp_.program();
  // TryCombine's gate order, lane-parallel: joint window feasibility
  // first (uncounted), then the parent's cross pairs in order, each lane
  // stopping at its first failing span — survivors and predicate_evals
  // identical to the scalar partner loop. Unlike a leaf mirror, the lane
  // extents are the stored instances' (min_ts, max_ts) columns; dead
  // partners cannot exist outside skip-till-next, which this path
  // excludes.
  WindowMaskInstanceLanes(local.min_ts, local.max_ts, cp_.window(),
                          store.min_ts(), store.max_ts(), n, alive);
  for (const auto& [pa, pb] : cross_pairs_[parent]) {
    // `local` holds one endpoint of every cross pair; the sibling's
    // store mirrors the other endpoint's anchors as a column.
    const int fixed_pos = node_is_left ? pa : pb;
    const int run_pos = node_is_left ? pb : pa;
    const ColumnRun run = store.RunFor(run_pos);
    const EventPtr& anchor = local.by_slot[cp_.pos_to_slot(fixed_pos)];
    program.EvalInstanceRun(fixed_pos, run_pos, *anchor, run, alive,
                            &counters_.predicate_evals);
    if (fixed_pos == kleene_pos_) {
      for (const EventPtr& member : local.kleene_extra) {
        program.EvalInstanceRun(fixed_pos, run_pos, *member, run, alive,
                                &counters_.predicate_evals);
      }
    }
  }
  // Survivors combine in buffer order, exactly like the scalar loop. The
  // mask lives on this frame; recursion appends only at `parent` and
  // above, never to the sibling, so the store's runs stay valid.
  mask.ForEachAlive([&](size_t k) {
    Instance combined;
    if (node_is_left) {
      FillCombined(local, partners[k], &combined);
    } else {
      FillCombined(partners[k], local, &combined);
    }
    NewInstance(parent, std::move(combined));
  });
}

void TreeEngine::Complete(const Instance& inst) {
  Match match;
  match.slots.resize(cp_.num_positions());
  int m = cp_.num_slots();
  for (int s = 0; s < m; ++s) {
    CEPJOIN_CHECK(inst.by_slot[s] != nullptr);
    match.slots[cp_.slot_to_pos(s)].push_back(inst.by_slot[s]);
  }
  for (const EventPtr& e : inst.kleene_extra) {
    match.slots[kleene_pos_].push_back(e);
  }
  const Event* last = nullptr;
  for (const auto& slot : match.slots) {
    for (const EventPtr& e : slot) {
      if (last == nullptr || e->ts > last->ts ||
          (e->ts == last->ts && e->serial > last->serial)) {
        last = e.get();
      }
    }
  }
  match.last_ts = last->ts;
  match.last_event_serial = last->serial;
  match.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    arrival_start_)
          .count();

  if (!completion_checks_.empty()) {
    MatchBound bound(match);
    for (const NegationSpec* neg : completion_checks_) {
      const ColumnBuffer& buffer = neg_buffers_[neg->neg_pos];
      for (size_t bi = 0; bi < buffer.size(); ++bi) {
        if (cp_.NegationViolates(*neg, *buffer[bi], bound, inst.min_ts,
                                 inst.max_ts, &counters_.predicate_evals)) {
          return;
        }
      }
    }
  }
  if (!trailing_checks_.empty()) {
    PendingMatch pending;
    pending.match = std::move(match);
    pending.min_ts = inst.min_ts;
    pending.max_ts = inst.max_ts;
    pending.deadline = inst.min_ts + cp_.window();
    pending_.push_back(std::move(pending));
    return;
  }
  EmitMatch(std::move(match), inst.max_ts);
}

void TreeEngine::EmitMatch(Match match, Timestamp max_ts) {
  match.emit_serial = current_serial_;
  ++counters_.matches_emitted;
  // The sink reads the match while it is hot, then the match moves into
  // the revocation log (the engine is single-threaded, so a retraction
  // can only arrive after OnMatch returns — log-after-emit is safe).
  // No per-match allocations in delta mode beyond the log append.
  sink_->OnMatch(match);
  if (track_deltas_) emitted_.push_back(EmittedMatch{std::move(match), max_ts});
}

void TreeEngine::EmitRevocation(Match match) {
  match.polarity = -1;
  // The revocation's emit position is the retraction being processed;
  // it is strictly greater than the original match's emit_serial, which
  // is what lets the concurrent sink's (emit_serial, partition) sort
  // drain revocations after their matches at any thread count.
  match.emit_serial = current_serial_;
  match.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    arrival_start_)
          .count();
  ++counters_.matches_revoked;
  sink_->OnMatch(match);
}

void TreeEngine::Sweep() {
  CEPJOIN_STAGE_TIMER("tree_sweep");
  events_since_sweep_ = 0;
  Timestamp horizon = now_ - cp_.window();
  for (auto& buffer : neg_buffers_) {
    while (!buffer.empty() && buffer.front()->ts < horizon) {
      counters_.RemoveBuffered(BufferedEventBytes(buffer, *buffer.front()));
      buffer.PopFront();
    }
  }
  std::vector<uint8_t> keep_rows;
  for (size_t node = 0; node < node_buffers_.size(); ++node) {
    std::vector<Instance>& list = node_buffers_[node];
    const bool leaf_mirror = leaf_mirrored_[node] != 0;
    const bool store_mirror = instance_mirrored_[node] != 0;
    const bool mirrored = leaf_mirror || store_mirror;
    if (mirrored) keep_rows.assign(list.size(), 0);
    size_t keep = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      Instance& inst = list[i];
      bool expired = inst.min_ts < horizon;
      if (inst.dead || expired) {
        if (!inst.dead) counters_.RemoveInstance(inst.tracked_bytes);
        if (store_mirror) counters_.RemoveStoreBytes(inst.store_bytes);
        continue;
      }
      if (mirrored) keep_rows[i] = 1;
      if (keep != i) list[keep] = std::move(list[i]);
      ++keep;
    }
    list.resize(keep);
    // Mirrors compact in lockstep so lane k stays partner k.
    if (leaf_mirror) leaf_columns_[node].Filter(keep_rows);
    if (store_mirror) instance_stores_[node].Filter(keep_rows);
  }
  if (track_deltas_ && emitted_.size() >= emitted_scan_threshold_) {
    // Every event of a logged match has ts <= max_ts, so once max_ts
    // leaves the window no in-window retraction can target the match:
    // safe to forget. (Retracting an out-of-window event is a no-op by
    // contract.) Scanning only after the log doubles keeps eviction
    // amortized O(1) per match instead of O(log size) per sweep.
    size_t keep = 0;
    for (size_t i = 0; i < emitted_.size(); ++i) {
      if (emitted_[i].max_ts >= horizon) {
        if (keep != i) emitted_[keep] = std::move(emitted_[i]);
        ++keep;
      }
    }
    emitted_.resize(keep);
    emitted_scan_threshold_ = std::max<size_t>(64, emitted_.size() * 2);
  }
  counters_.UpdatePeakBytes();
}

// --- snapshots --------------------------------------------------------------

Status TreeEngine::SaveState(EngineStateWriter* w) const {
  SnapshotWriter& p = w->payload();
  // Configuration echo: LoadState verifies the restored engine was
  // rebuilt with the same strategy/columnar mode before trusting the
  // payload to line up with its topology.
  p.U8(use_columnar_ ? 1 : 0);
  p.U8(track_deltas_ ? 1 : 0);
  p.U8(next_match_ ? 1 : 0);
  p.U32(static_cast<uint32_t>(node_buffers_.size()));
  p.U32(static_cast<uint32_t>(neg_buffers_.size()));
  for (const ColumnBuffer& buffer : neg_buffers_) {
    p.U64(buffer.size());
    for (size_t i = 0; i < buffer.size(); ++i) w->EventRef(buffer[i]);
  }
  for (const std::vector<Instance>& list : node_buffers_) {
    uint64_t live = 0;
    for (const Instance& inst : list) live += inst.dead ? 0 : 1;
    p.U64(live);
    for (const Instance& inst : list) {
      // Dead husks exist only under skip-till-next (mirrors off there),
      // are invisible to matching, and were refunded when marked: safe
      // to drop, and dropping keeps mirrors congruent at restore.
      if (inst.dead) continue;
      w->EventList(inst.by_slot);
      w->EventList(inst.kleene_extra);
      p.F64(inst.min_ts);
      p.F64(inst.max_ts);
      p.U64(inst.max_serial);
      p.U64(inst.tracked_bytes);
      p.U64(inst.store_bytes);
    }
  }
  p.U64(pending_.size());
  for (const PendingMatch& pm : pending_) {
    w->WriteMatch(pm.match);
    p.F64(pm.min_ts);
    p.F64(pm.max_ts);
    p.F64(pm.deadline);
  }
  p.U64(emitted_.size());
  for (const EmittedMatch& em : emitted_) {
    w->WriteMatch(em.match);
    p.F64(em.max_ts);
  }
  p.U64(emitted_scan_threshold_);
  p.F64(now_);
  p.U64(current_serial_);
  p.U64(events_since_sweep_);
  w->WriteCounters(counters_);
  return Status::Ok();
}

Status TreeEngine::LoadState(EngineStateReader* r) {
  if (counters_.events_processed != 0 || current_serial_ != 0) {
    return Status::FailedPrecondition(
        "LoadState requires a freshly constructed engine");
  }
  SnapshotReader& p = r->payload();
  bool use_columnar = p.U8() != 0;
  bool track_deltas = p.U8() != 0;
  bool next_match = p.U8() != 0;
  uint32_t num_nodes = p.U32();
  uint32_t num_positions = p.U32();
  if (!p.ok()) return p.status();
  if (use_columnar != use_columnar_ || track_deltas != track_deltas_ ||
      next_match != next_match_ || num_nodes != node_buffers_.size() ||
      num_positions != neg_buffers_.size()) {
    return Status::FailedPrecondition(
        "snapshot was written by a tree engine with a different "
        "configuration (plan shape, columnar mode, or selection strategy)");
  }
  for (ColumnBuffer& buffer : neg_buffers_) {
    uint64_t n = p.U64();
    for (uint64_t i = 0; i < n && p.ok(); ++i) {
      EventPtr e = r->EventRef();
      if (e != nullptr) buffer.Append(e);
    }
  }
  for (int node = 0; node < static_cast<int>(node_buffers_.size()); ++node) {
    uint64_t n = p.U64();
    for (uint64_t i = 0; i < n && p.ok(); ++i) {
      Instance inst;
      inst.by_slot = r->EventList();
      inst.kleene_extra = r->EventList();
      inst.min_ts = p.F64();
      inst.max_ts = p.F64();
      inst.max_serial = p.U64();
      inst.tracked_bytes = static_cast<size_t>(p.U64());
      inst.store_bytes = static_cast<size_t>(p.U64());
      if (!p.ok()) break;
      // Replay the NewInstance append path so the columnar mirrors stay
      // in lockstep with the instance list (lane k == instance k); byte
      // accounting comes back with counters_ below.
      node_buffers_[node].push_back(std::move(inst));
      const Instance& stored = node_buffers_[node].back();
      if (leaf_mirrored_[node]) {
        int leaf_item = plan_.node(node).leaf_item;
        if (leaf_item < 0 ||
            leaf_item >= static_cast<int>(stored.by_slot.size()) ||
            stored.by_slot[leaf_item] == nullptr) {
          p.Fail("leaf instance missing its anchor event at node " +
                 std::to_string(node));
          break;
        }
        leaf_columns_[node].Append(stored.by_slot[leaf_item]);
      } else if (instance_mirrored_[node]) {
        instance_stores_[node].Append(stored.min_ts, stored.max_ts,
                                      stored.by_slot);
      }
    }
  }
  uint64_t num_pending = p.U64();
  for (uint64_t i = 0; i < num_pending && p.ok(); ++i) {
    PendingMatch pm;
    pm.match = r->ReadMatch();
    pm.min_ts = p.F64();
    pm.max_ts = p.F64();
    pm.deadline = p.F64();
    if (p.ok()) pending_.push_back(std::move(pm));
  }
  uint64_t num_emitted = p.U64();
  for (uint64_t i = 0; i < num_emitted && p.ok(); ++i) {
    EmittedMatch em;
    em.match = r->ReadMatch();
    em.max_ts = p.F64();
    if (p.ok()) emitted_.push_back(std::move(em));
  }
  emitted_scan_threshold_ = static_cast<size_t>(p.U64());
  now_ = p.F64();
  current_serial_ = p.U64();
  events_since_sweep_ = p.U64();
  EngineCounters restored;
  r->ReadCounters(&restored);
  if (!p.ok()) return p.status();
  counters_ = restored;
  return Status::Ok();
}

}  // namespace cepjoin
