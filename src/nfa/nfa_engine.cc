#include "nfa/nfa_engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "durable/snapshot_codec.h"
#include "obs/stage_timer.h"

namespace cepjoin {

// --- construction -----------------------------------------------------------

NfaEngine::NfaEngine(const SimplePattern& pattern, const OrderPlan& plan,
                     MatchSink* sink)
    : cp_(pattern), plan_(plan), sink_(sink) {
  CEPJOIN_CHECK(sink_ != nullptr);
  int m = cp_.num_slots();
  CEPJOIN_CHECK_EQ(plan_.size(), m)
      << "order plan must cover exactly the positive slots";
  step_pos_.resize(m);
  for (int s = 0; s < m; ++s) {
    int slot = plan_.At(s);
    step_pos_[s] = cp_.slot_to_pos(slot);
    if (slot == cp_.kleene_slot()) kleene_step_ = s;
    steps_of_type_[cp_.pos_type(step_pos_[s])].push_back(s);
  }
  buffers_.resize(cp_.num_positions());
  by_state_.resize(m + 1);
  checks_at_state_.resize(m + 1);
  for (const NegationSpec& neg : cp_.negations()) {
    if (neg.trailing) {
      trailing_checks_.push_back(&neg);
      // Trailing checks also validate already-arrived candidates at
      // completion time.
      completion_checks_.push_back(&neg);
      continue;
    }
    if (neg.leading_bounded) {
      // The window-edge lower bound needs the final max_ts.
      completion_checks_.push_back(&neg);
      continue;
    }
    int ready = 0;
    for (int dep : neg.dep_positions) {
      int slot = cp_.pos_to_slot(dep);
      CEPJOIN_CHECK_GE(slot, 0);
      ready = std::max(ready, plan_.StepOf(slot) + 1);
    }
    checks_at_state_[ready].push_back(&neg);
  }
  next_match_ = cp_.strategy() == SelectionStrategy::kSkipTillNext;
  track_deltas_ = cp_.delta_input();
  CEPJOIN_CHECK(!track_deltas_ ||
                cp_.strategy() == SelectionStrategy::kSkipTillAny)
      << "delta input requires skip-till-any: retraction semantics under "
         "skip-till-next/contiguity pruning are undefined";
  use_columnar_ = ColumnarKernelsEnabled() && !next_match_;
  // Column mirrors cost an append per field; keep them only where the
  // run kernels will read them — positive positions' creation scans.
  // Negated positions are iterated row-wise by the negation checks.
  for (int pos = 0; pos < cp_.num_positions(); ++pos) {
    if (!use_columnar_ || cp_.pos_to_slot(pos) < 0) {
      buffers_[pos].DisableColumns();
    }
  }
}

// --- bound accessor over an instance ---------------------------------------

namespace {

class NfaBound : public BoundAccessor {
 public:
  NfaBound(const std::vector<int>& step_pos,
           const std::vector<EventPtr>& events,
           const std::vector<EventPtr>& kleene_extra, int kleene_pos)
      : step_pos_(step_pos),
        events_(events),
        kleene_extra_(kleene_extra),
        kleene_pos_(kleene_pos) {}

  void ForEach(int pos,
               const std::function<void(const Event&)>& fn) const override {
    for (size_t s = 0; s < events_.size(); ++s) {
      if (step_pos_[s] == pos) fn(*events_[s]);
    }
    if (pos == kleene_pos_) {
      for (const EventPtr& e : kleene_extra_) fn(*e);
    }
  }

 private:
  const std::vector<int>& step_pos_;
  const std::vector<EventPtr>& events_;
  const std::vector<EventPtr>& kleene_extra_;
  int kleene_pos_;
};

class MatchBound : public BoundAccessor {
 public:
  explicit MatchBound(const Match& match) : match_(match) {}

  void ForEach(int pos,
               const std::function<void(const Event&)>& fn) const override {
    if (pos < 0 || pos >= static_cast<int>(match_.slots.size())) return;
    for (const EventPtr& e : match_.slots[pos]) fn(*e);
  }

 private:
  const Match& match_;
};

}  // namespace

// --- event flow --------------------------------------------------------------

void NfaEngine::OnEvent(const EventPtr& e) {
  arrival_start_ = std::chrono::steady_clock::now();
  ProcessEvent(e);
}

void NfaEngine::OnBatch(const EventPtr* events, size_t n) {
  if (n == 0) return;
  // One latency anchor per batch instead of one clock read per event;
  // everything else (sweep cadence, pending processing, extension order)
  // is byte-identical to the per-event path, so matches and counters are
  // too.
  arrival_start_ = std::chrono::steady_clock::now();
  CEPJOIN_STAGE_TIMER("nfa_on_batch");
  for (size_t i = 0; i < n; ++i) ProcessEvent(events[i]);
}

void NfaEngine::ProcessEvent(const EventPtr& e) {
  CEPJOIN_CHECK(e != nullptr);
  ++counters_.events_processed;
  now_ = e->ts;
  current_serial_ = e->serial;
  if (++events_since_sweep_ >= kSweepEvery) Sweep();
  if (e->IsRetraction()) {
    // A retraction advances time (matches whose trailing window closed
    // before it are now final and revocable), but it is a command, not
    // an occurrence: it never buffers, extends, or negates.
    ProcessPendingDeadlines(*e);
    ProcessRetraction(*e);
    return;
  }
  ProcessPending(*e);
  BufferEvent(e);
  ExtendWithArrival(e);
}

void NfaEngine::Finish() {
  for (PendingMatch& p : pending_) {
    EmitMatch(std::move(p.match), p.max_ts);
  }
  pending_.clear();
}

void NfaEngine::ProcessPendingDeadlines(const Event& e) {
  if (pending_.empty()) return;
  // Emit matches whose trailing window closed strictly before `e`.
  size_t keep = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].deadline < e.ts) {
      EmitMatch(std::move(pending_[i].match), pending_[i].max_ts);
    } else {
      if (keep != i) pending_[keep] = std::move(pending_[i]);
      ++keep;
    }
  }
  pending_.resize(keep);
}

void NfaEngine::ProcessPending(const Event& e) {
  if (pending_.empty()) return;
  ProcessPendingDeadlines(e);
  // Kill survivors that `e` invalidates.
  for (const NegationSpec* neg : trailing_checks_) {
    if (cp_.pos_type(neg->neg_pos) != e.type) continue;
    if (!cp_.program().EvalUnary(neg->neg_pos, e,
                                 &counters_.predicate_evals)) {
      continue;
    }
    size_t kept = 0;
    for (size_t i = 0; i < pending_.size(); ++i) {
      MatchBound bound(pending_[i].match);
      if (!cp_.NegationViolates(*neg, e, bound, pending_[i].min_ts,
                                pending_[i].max_ts,
                                &counters_.predicate_evals)) {
        if (kept != i) pending_[kept] = std::move(pending_[i]);
        ++kept;
      }
    }
    pending_.resize(kept);
  }
}

void NfaEngine::RemoveFromBuffer(ColumnBuffer* buffer, EventSerial serial) {
  const size_t n = buffer->size();
  size_t hit = n;
  for (size_t i = 0; i < n; ++i) {
    if ((*buffer)[i]->serial == serial) {
      hit = i;
      break;  // serials are unique
    }
  }
  if (hit == n) return;
  counters_.RemoveBuffered(BufferedEventBytes(*buffer, *(*buffer)[hit]));
  std::vector<uint8_t> keep(n, 1);
  keep[hit] = 0;
  buffer->Filter(keep);
}

void NfaEngine::ProcessRetraction(const Event& r) {
  CEPJOIN_CHECK(track_deltas_)
      << "retraction fed to an engine whose pattern lacks WithDeltaInput()";
  ++counters_.retractions_processed;
  const EventSerial target = r.target_serial;
  // Window/negation buffers: the retracted event is buffered at every
  // position of its type that its unary predicate admitted — the same
  // set BufferEvent appended to. Exact byte refund, mirrors in lockstep.
  for (int pos : cp_.positions_of_type(r.type)) {
    RemoveFromBuffer(&buffers_[pos], target);
  }
  // Partial matches bound to the retracted event die. Husks stay for the
  // next Sweep, exactly like skip-till-next's MarkDead — the NFA scans
  // buffers, not instance lists, on its columnar path, so dead entries
  // are safe to leave behind.
  for (size_t s = 0; s < by_state_.size(); ++s) {
    std::vector<Instance>& list = by_state_[s];
    for (size_t i = 0; i < list.size(); ++i) {
      const Instance& inst = list[i];
      if (inst.dead) continue;
      bool contains = false;
      for (const EventPtr& used : inst.events) {
        if (used->serial == target) {
          contains = true;
          break;
        }
      }
      if (!contains) {
        for (const EventPtr& used : inst.kleene_extra) {
          if (used->serial == target) {
            contains = true;
            break;
          }
        }
      }
      if (contains) MarkDead(static_cast<int>(s), i);
    }
  }
  // Pending (trailing-negation) matches containing the event were never
  // emitted: discard silently, nothing to revoke.
  size_t keep = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (!MatchContainsSerial(pending_[i].match, target)) {
      if (keep != i) pending_[keep] = std::move(pending_[i]);
      ++keep;
    }
  }
  pending_.resize(keep);
  // Previously emitted matches revoke in their original emission order.
  keep = 0;
  for (size_t i = 0; i < emitted_.size(); ++i) {
    if (MatchContainsSerial(emitted_[i].match, target)) {
      EmitRevocation(std::move(emitted_[i].match));
    } else {
      if (keep != i) emitted_[keep] = std::move(emitted_[i]);
      ++keep;
    }
  }
  emitted_.resize(keep);
}

void NfaEngine::BufferEvent(const EventPtr& e) {
  for (int pos : cp_.positions_of_type(e->type)) {
    if (!cp_.program().EvalUnary(pos, *e, &counters_.predicate_evals)) {
      continue;
    }
    counters_.AddBuffered(BufferedEventBytes(buffers_[pos], *e));
    buffers_[pos].Append(e);
  }
}

void NfaEngine::ExtendWithArrival(const EventPtr& e) {
  // Snapshot list sizes: instances created during this arrival's cascades
  // consume `e` (if at all) via their creation scans, never here.
  std::vector<size_t> pre_size(by_state_.size());
  for (size_t s = 0; s < by_state_.size(); ++s) pre_size[s] = by_state_[s].size();

  auto it = steps_of_type_.find(e->type);
  if (it != steps_of_type_.end()) {
    for (int s : it->second) {
      if (s == 0) {
        Instance root;
        if (TryExtend(root, 0, e, &root)) {
          Cascade(std::move(root), 1);
        }
        continue;
      }
      for (size_t idx = 0; idx < pre_size[s]; ++idx) {
        // Note: by_state_[s] may grow (Kleene absorption at this state),
        // so re-index every iteration.
        if (by_state_[s][idx].dead) continue;
        Instance child;
        if (TryExtend(by_state_[s][idx], s, e, &child)) {
          if (next_match_) MarkDead(s, idx);
          Cascade(std::move(child), s + 1);
        }
      }
    }
  }
  // Kleene absorption by arrival: instances whose Kleene slot is filled
  // and whose next step is not (state == kleene_step_ + 1) may branch.
  if (kleene_step_ >= 0 &&
      cp_.pos_type(step_pos_[kleene_step_]) == e->type && !next_match_) {
    int ks = kleene_step_ + 1;
    for (size_t idx = 0; idx < pre_size[ks]; ++idx) {
      if (by_state_[ks][idx].dead) continue;
      Instance child;
      if (TryAbsorb(by_state_[ks][idx], e, &child)) {
        Cascade(std::move(child), ks);
      }
    }
  }
}

bool NfaEngine::TryExtend(const Instance& parent, int state, const EventPtr& e,
                          Instance* child) {
  int pos = step_pos_[state];
  if (!cp_.program().EvalUnary(pos, *e, &counters_.predicate_evals)) {
    return false;
  }
  // Window feasibility.
  Timestamp min_ts = state == 0 ? e->ts : std::min(parent.min_ts, e->ts);
  Timestamp max_ts = state == 0 ? e->ts : std::max(parent.max_ts, e->ts);
  if (max_ts - min_ts > cp_.window()) return false;
  // No event fills two slots of one match.
  for (const EventPtr& used : parent.events) {
    if (used.get() == e.get()) return false;
  }
  for (const EventPtr& used : parent.kleene_extra) {
    if (used.get() == e.get()) return false;
  }
  // Pairwise conditions against every bound slot (Kleene members too).
  for (int j = 0; j < state; ++j) {
    if (!cp_.program().EvalPair(step_pos_[j], pos, *parent.events[j], *e,
                                &counters_.predicate_evals)) {
      return false;
    }
  }
  if (kleene_step_ >= 0 && kleene_step_ < state) {
    int kpos = step_pos_[kleene_step_];
    for (const EventPtr& member : parent.kleene_extra) {
      if (!cp_.program().EvalPair(kpos, pos, *member, *e,
                                  &counters_.predicate_evals)) {
        return false;
      }
    }
  }
  *child = parent;
  child->events.push_back(e);
  child->min_ts = min_ts;
  child->max_ts = max_ts;
  child->creation_serial = current_serial_;
  child->dead = false;
  if (state == kleene_step_) child->max_kleene_serial = e->serial;
  return true;
}

bool NfaEngine::TryAbsorb(const Instance& parent, const EventPtr& e,
                          Instance* child) {
  // Canonical subset enumeration: members join in increasing serial order.
  if (e->serial <= parent.max_kleene_serial) return false;
  int kpos = step_pos_[kleene_step_];
  if (!cp_.program().EvalUnary(kpos, *e, &counters_.predicate_evals)) {
    return false;
  }
  Timestamp min_ts = std::min(parent.min_ts, e->ts);
  Timestamp max_ts = std::max(parent.max_ts, e->ts);
  if (max_ts - min_ts > cp_.window()) return false;
  for (const EventPtr& used : parent.events) {
    if (used.get() == e.get()) return false;
  }
  for (const EventPtr& used : parent.kleene_extra) {
    if (used.get() == e.get()) return false;
  }
  for (size_t j = 0; j < parent.events.size(); ++j) {
    if (static_cast<int>(j) == kleene_step_) continue;
    if (!cp_.program().EvalPair(step_pos_[j], kpos, *parent.events[j], *e,
                                &counters_.predicate_evals)) {
      return false;
    }
  }
  *child = parent;
  child->kleene_extra.push_back(e);
  child->min_ts = min_ts;
  child->max_ts = max_ts;
  child->creation_serial = current_serial_;
  child->max_kleene_serial = e->serial;
  child->dead = false;
  return true;
}

bool NfaEngine::RunNegationChecks(const Instance& inst, int state) {
  if (checks_at_state_[state].empty()) return true;
  NfaBound bound(step_pos_, inst.events, inst.kleene_extra,
                 kleene_step_ >= 0 ? step_pos_[kleene_step_] : -1);
  for (const NegationSpec* neg : checks_at_state_[state]) {
    const ColumnBuffer& buffer = buffers_[neg->neg_pos];
    for (size_t bi = 0; bi < buffer.size(); ++bi) {
      if (cp_.NegationViolates(*neg, *buffer[bi], bound, inst.min_ts,
                               inst.max_ts, &counters_.predicate_evals)) {
        return false;
      }
    }
  }
  return true;
}

void NfaEngine::Cascade(Instance&& inst, int state) {
  if (!RunNegationChecks(inst, state)) return;
  int m = NumSteps();
  bool kleene_last = kleene_step_ == m - 1;
  if (state == m) {
    Complete(inst);
    if (!kleene_last || next_match_) return;
    // Keep completed instances so later Kleene members can still extend
    // the final slot's set.
  }
  size_t idx = StoreInstance(state, std::move(inst));
  // Work from a stable copy: cascades below may reallocate by_state_[state].
  Instance local = by_state_[state][idx];

  if (state < m) {
    // Creation scan: consume buffered events for this step. The columnar
    // path evaluates the whole run through the vectorized kernels; the
    // scalar per-candidate loop remains the oracle and the
    // skip-till-next path (its first-success early exit stops evaluating
    // mid-run, which run-at-a-time counting cannot reproduce).
    if (use_columnar_) {
      CreationScanColumnar(local, state);
    } else {
      const ColumnBuffer& buffer = buffers_[step_pos_[state]];
      for (size_t bi = 0; bi < buffer.size(); ++bi) {
        Instance child;
        if (TryExtend(local, state, buffer[bi], &child)) {
          if (next_match_) {
            MarkDead(state, idx);
            Cascade(std::move(child), state + 1);
            return;
          }
          Cascade(std::move(child), state + 1);
        }
      }
    }
  }
  // Kleene creation-absorption: grow the member set from buffered events
  // newer than the current maximum member.
  if (kleene_step_ >= 0 && state == kleene_step_ + 1 && !next_match_) {
    const ColumnBuffer& buffer = buffers_[step_pos_[kleene_step_]];
    for (size_t bi = 0; bi < buffer.size(); ++bi) {
      Instance child;
      if (TryAbsorb(local, buffer[bi], &child)) {
        Cascade(std::move(child), state);
      }
    }
  }
}

void NfaEngine::CreationScanColumnar(const Instance& parent, int state) {
  CEPJOIN_STAGE_TIMER("nfa_creation_scan");
  const ColumnBuffer& buffer = buffers_[step_pos_[state]];
  const size_t n = buffer.size();
  if (n == 0) return;
  const int pos = step_pos_[state];
  const ColumnRun run = buffer.Run();
  LaneMask mask(n);
  uint64_t* alive = mask.words();
  const PredicateProgram& program = cp_.program();
  // Gate order mirrors TryExtend exactly — unary filter, window
  // feasibility, no-reuse, pairwise spans, Kleene-member spans — so the
  // survivor set, the cascade order, and predicate_evals are all
  // bit-identical to the scalar scan.
  program.EvalUnaryRun(pos, run, alive, &counters_.predicate_evals);
  WindowMaskLanes(parent.min_ts, parent.max_ts, cp_.window(), run, alive);
  for (const EventPtr& used : parent.events) {
    ClearLanesOf(run, used.get(), alive);
  }
  for (const EventPtr& used : parent.kleene_extra) {
    ClearLanesOf(run, used.get(), alive);
  }
  for (int j = 0; j < state; ++j) {
    program.EvalPairRun(step_pos_[j], pos, *parent.events[j], run, alive,
                        &counters_.predicate_evals);
  }
  if (kleene_step_ >= 0 && kleene_step_ < state) {
    const int kpos = step_pos_[kleene_step_];
    for (const EventPtr& member : parent.kleene_extra) {
      program.EvalPairRun(kpos, pos, *member, run, alive,
                          &counters_.predicate_evals);
    }
  }
  // Survivors extend `parent` in buffer order, exactly like the scalar
  // scan. The mask lives on this frame and the buffer cannot change
  // during the cascades (BufferEvent/Sweep only run between arrivals),
  // so iterating while recursing is safe.
  mask.ForEachAlive([&](size_t k) {
    const EventPtr& b = buffer[k];
    Instance child = parent;
    child.events.push_back(b);
    child.min_ts = std::min(parent.min_ts, b->ts);
    child.max_ts = std::max(parent.max_ts, b->ts);
    child.creation_serial = current_serial_;
    child.dead = false;
    if (state == kleene_step_) child.max_kleene_serial = b->serial;
    Cascade(std::move(child), state + 1);
  });
}

void NfaEngine::Complete(const Instance& inst) {
  Match match;
  match.slots.resize(cp_.num_positions());
  for (size_t s = 0; s < inst.events.size(); ++s) {
    match.slots[step_pos_[s]].push_back(inst.events[s]);
  }
  if (kleene_step_ >= 0) {
    for (const EventPtr& e : inst.kleene_extra) {
      match.slots[step_pos_[kleene_step_]].push_back(e);
    }
  }
  const Event* last = nullptr;
  for (const auto& slot : match.slots) {
    for (const EventPtr& e : slot) {
      if (last == nullptr || e->ts > last->ts ||
          (e->ts == last->ts && e->serial > last->serial)) {
        last = e.get();
      }
    }
  }
  match.last_ts = last->ts;
  match.last_event_serial = last->serial;
  match.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    arrival_start_)
          .count();

  // Completion-time negation checks (leading / window-bounded).
  if (!completion_checks_.empty()) {
    MatchBound bound(match);
    for (const NegationSpec* neg : completion_checks_) {
      const ColumnBuffer& buffer = buffers_[neg->neg_pos];
      for (size_t bi = 0; bi < buffer.size(); ++bi) {
        if (cp_.NegationViolates(*neg, *buffer[bi], bound, inst.min_ts,
                                 inst.max_ts, &counters_.predicate_evals)) {
          return;
        }
      }
    }
  }
  if (!trailing_checks_.empty()) {
    PendingMatch pending;
    pending.match = std::move(match);
    pending.min_ts = inst.min_ts;
    pending.max_ts = inst.max_ts;
    pending.deadline = inst.min_ts + cp_.window();
    pending_.push_back(std::move(pending));
    return;
  }
  EmitMatch(std::move(match), inst.max_ts);
}

void NfaEngine::EmitMatch(Match match, Timestamp max_ts) {
  match.emit_serial = current_serial_;
  ++counters_.matches_emitted;
  // The sink reads the match while it is hot, then the match moves into
  // the revocation log (the engine is single-threaded, so a retraction
  // can only arrive after OnMatch returns — log-after-emit is safe).
  // No per-match allocations in delta mode beyond the log append.
  sink_->OnMatch(match);
  if (track_deltas_) emitted_.push_back(EmittedMatch{std::move(match), max_ts});
}

void NfaEngine::EmitRevocation(Match match) {
  match.polarity = -1;
  // The revocation's emit position is the retraction being processed;
  // it is strictly greater than the original match's emit_serial, which
  // is what lets the concurrent sink's (emit_serial, partition) sort
  // drain revocations after their matches at any thread count.
  match.emit_serial = current_serial_;
  match.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    arrival_start_)
          .count();
  ++counters_.matches_revoked;
  sink_->OnMatch(match);
}

size_t NfaEngine::StoreInstance(int state, Instance&& inst) {
  inst.tracked_bytes = inst.ApproxBytes();
  counters_.AddInstance(inst.tracked_bytes);
  by_state_[state].push_back(std::move(inst));
  return by_state_[state].size() - 1;
}

void NfaEngine::MarkDead(int state, size_t idx) {
  Instance& inst = by_state_[state][idx];
  if (!inst.dead) {
    inst.dead = true;
    counters_.RemoveInstance(inst.tracked_bytes);
  }
}

void NfaEngine::Sweep() {
  CEPJOIN_STAGE_TIMER("nfa_sweep");
  events_since_sweep_ = 0;
  Timestamp horizon = now_ - cp_.window();
  for (auto& buffer : buffers_) {
    while (!buffer.empty() && buffer.front()->ts < horizon) {
      counters_.RemoveBuffered(BufferedEventBytes(buffer, *buffer.front()));
      buffer.PopFront();
    }
  }
  for (auto& list : by_state_) {
    size_t keep = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      Instance& inst = list[i];
      bool expired = inst.min_ts < horizon;
      if (inst.dead || expired) {
        if (!inst.dead) counters_.RemoveInstance(inst.tracked_bytes);
        continue;
      }
      if (keep != i) list[keep] = std::move(list[i]);
      ++keep;
    }
    list.resize(keep);
  }
  if (track_deltas_ && emitted_.size() >= emitted_scan_threshold_) {
    // Every event of a logged match has ts <= max_ts, so once max_ts
    // leaves the window no in-window retraction can target the match:
    // safe to forget. (Retracting an out-of-window event is a no-op by
    // contract.) Scanning only after the log doubles keeps eviction
    // amortized O(1) per match instead of O(log size) per sweep.
    size_t keep = 0;
    for (size_t i = 0; i < emitted_.size(); ++i) {
      if (emitted_[i].max_ts >= horizon) {
        if (keep != i) emitted_[keep] = std::move(emitted_[i]);
        ++keep;
      }
    }
    emitted_.resize(keep);
    emitted_scan_threshold_ = std::max<size_t>(64, emitted_.size() * 2);
  }
  counters_.UpdatePeakBytes();
}

// --- snapshots --------------------------------------------------------------

Status NfaEngine::SaveState(EngineStateWriter* w) const {
  SnapshotWriter& p = w->payload();
  // Configuration echo: LoadState verifies the restored engine was
  // rebuilt with the same strategy/columnar mode before trusting the
  // payload to line up with its topology.
  p.U8(use_columnar_ ? 1 : 0);
  p.U8(track_deltas_ ? 1 : 0);
  p.U8(next_match_ ? 1 : 0);
  p.U32(static_cast<uint32_t>(buffers_.size()));
  p.U32(static_cast<uint32_t>(by_state_.size()));
  for (const ColumnBuffer& buffer : buffers_) {
    p.U64(buffer.size());
    for (size_t i = 0; i < buffer.size(); ++i) w->EventRef(buffer[i]);
  }
  for (const std::vector<Instance>& list : by_state_) {
    uint64_t live = 0;
    for (const Instance& inst : list) live += inst.dead ? 0 : 1;
    p.U64(live);
    for (const Instance& inst : list) {
      // Dead husks are invisible to matching and the next Sweep would
      // drop them; their bytes were refunded at MarkDead, so skipping
      // them keeps the restored run byte-identical.
      if (inst.dead) continue;
      w->EventList(inst.events);
      w->EventList(inst.kleene_extra);
      p.F64(inst.min_ts);
      p.F64(inst.max_ts);
      p.U64(inst.creation_serial);
      p.U64(inst.max_kleene_serial);
      p.U64(inst.tracked_bytes);
    }
  }
  p.U64(pending_.size());
  for (const PendingMatch& pm : pending_) {
    w->WriteMatch(pm.match);
    p.F64(pm.min_ts);
    p.F64(pm.max_ts);
    p.F64(pm.deadline);
  }
  p.U64(emitted_.size());
  for (const EmittedMatch& em : emitted_) {
    w->WriteMatch(em.match);
    p.F64(em.max_ts);
  }
  p.U64(emitted_scan_threshold_);
  p.F64(now_);
  p.U64(current_serial_);
  p.U64(events_since_sweep_);
  w->WriteCounters(counters_);
  return Status::Ok();
}

Status NfaEngine::LoadState(EngineStateReader* r) {
  if (counters_.events_processed != 0 || current_serial_ != 0) {
    return Status::FailedPrecondition(
        "LoadState requires a freshly constructed engine");
  }
  SnapshotReader& p = r->payload();
  bool use_columnar = p.U8() != 0;
  bool track_deltas = p.U8() != 0;
  bool next_match = p.U8() != 0;
  uint32_t num_positions = p.U32();
  uint32_t num_states = p.U32();
  if (!p.ok()) return p.status();
  if (use_columnar != use_columnar_ || track_deltas != track_deltas_ ||
      next_match != next_match_ || num_positions != buffers_.size() ||
      num_states != by_state_.size()) {
    return Status::FailedPrecondition(
        "snapshot was written by an NFA engine with a different "
        "configuration (plan shape, columnar mode, or selection strategy)");
  }
  for (ColumnBuffer& buffer : buffers_) {
    uint64_t n = p.U64();
    for (uint64_t i = 0; i < n && p.ok(); ++i) {
      EventPtr e = r->EventRef();
      // Appends in saved order rebuild the column mirrors and re-latch
      // the schema; byte accounting comes back with counters_ below.
      if (e != nullptr) buffer.Append(e);
    }
  }
  for (std::vector<Instance>& list : by_state_) {
    uint64_t n = p.U64();
    for (uint64_t i = 0; i < n && p.ok(); ++i) {
      Instance inst;
      inst.events = r->EventList();
      inst.kleene_extra = r->EventList();
      inst.min_ts = p.F64();
      inst.max_ts = p.F64();
      inst.creation_serial = p.U64();
      inst.max_kleene_serial = p.U64();
      inst.tracked_bytes = static_cast<size_t>(p.U64());
      if (p.ok()) list.push_back(std::move(inst));
    }
  }
  uint64_t num_pending = p.U64();
  for (uint64_t i = 0; i < num_pending && p.ok(); ++i) {
    PendingMatch pm;
    pm.match = r->ReadMatch();
    pm.min_ts = p.F64();
    pm.max_ts = p.F64();
    pm.deadline = p.F64();
    if (p.ok()) pending_.push_back(std::move(pm));
  }
  uint64_t num_emitted = p.U64();
  for (uint64_t i = 0; i < num_emitted && p.ok(); ++i) {
    EmittedMatch em;
    em.match = r->ReadMatch();
    em.max_ts = p.F64();
    if (p.ok()) emitted_.push_back(std::move(em));
  }
  emitted_scan_threshold_ = static_cast<size_t>(p.U64());
  now_ = p.F64();
  current_serial_ = p.U64();
  events_since_sweep_ = p.U64();
  EngineCounters restored;
  r->ReadCounters(&restored);
  if (!p.ok()) return p.status();
  counters_ = restored;
  return Status::Ok();
}

}  // namespace cepjoin
