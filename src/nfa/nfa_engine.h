#ifndef CEPJOIN_NFA_NFA_ENGINE_H_
#define CEPJOIN_NFA_NFA_ENGINE_H_

#include <chrono>
#include <vector>

#include "plan/order_plan.h"
#include "runtime/column_buffer.h"
#include "runtime/compiled_pattern.h"
#include "runtime/engine.h"
#include "runtime/match.h"

namespace cepjoin {

/// Out-of-order lazy NFA (Sec. 2.2, after Kolchinsky et al. '15): a chain
/// of m+1 states following an arbitrary order plan over the pattern's
/// positive slots. Step s of the plan fills one slot; events that arrive
/// before their step is reached are buffered and consumed when an
/// instance reaches that step.
///
/// ## Exactly-once enumeration
/// Every instance records the serial of the arrival being processed when
/// it was created (`creation_serial`). Two extension paths exist for a
/// candidate event e at step s of instance I:
///   (a) creation scan — when I is created, it immediately consumes every
///       buffered event of step s's type (serial ≤ I.creation_serial, not
///       already in I);
///   (b) arrival extension — a newly arriving e extends only instances
///       with creation_serial < e.serial.
/// For any (I, s, e) exactly one path applies: (a) iff e arrived no later
/// than I's creation, (b) iff later — so each slot combination is
/// enumerated exactly once. Kleene slots additionally require members to
/// be absorbed in increasing serial order with the set frozen once the
/// next step is filled, which makes each member *set* reachable by
/// exactly one absorption sequence (DESIGN.md, "Kleene closure").
///
/// Negation follows Sec. 5.3: checks run at the earliest step where all
/// guard slots are bound; leading/AND checks run at completion; trailing
/// checks defer emission until the window closes (pending queue).
///
/// Selection strategies (Sec. 6.2): skip-till-any branches on every
/// candidate; skip-till-next retires an instance after its first
/// successful extension; the contiguity strategies are enforced through
/// the rewritten adjacency predicates.
class NfaEngine : public Engine {
 public:
  NfaEngine(const SimplePattern& pattern, const OrderPlan& plan,
            MatchSink* sink);

  void OnEvent(const EventPtr& e) override;
  /// Batched entry point: identical matches and counters to per-event
  /// feeding; amortizes the dispatch and the latency clock read.
  void OnBatch(const EventPtr* events, size_t n) override;
  void Finish() override;

  /// Checkpoint support. The serialized/rebuilt split of every member is
  /// pinned in the CODEC MANIFEST (durable/snapshot_codec.cc).
  [[nodiscard]] Status SaveState(EngineStateWriter* w) const override;
  [[nodiscard]] Status LoadState(EngineStateReader* r) override;

  const CompiledPattern& compiled() const { return cp_; }
  const OrderPlan& plan() const { return plan_; }

 private:
  struct Instance {
    std::vector<EventPtr> events;        // by step index
    std::vector<EventPtr> kleene_extra;  // Kleene members beyond the anchor
    Timestamp min_ts = 0.0;
    Timestamp max_ts = 0.0;
    EventSerial creation_serial = 0;
    EventSerial max_kleene_serial = 0;
    bool dead = false;
    /// Bytes charged to counters_ when this instance was stored; the
    /// matching remove uses this (never a recomputed ApproxBytes), so
    /// byte totals cannot drift even if capacities change in between.
    size_t tracked_bytes = 0;

    size_t ApproxBytes() const {
      return sizeof(Instance) +
             (events.capacity() + kleene_extra.capacity()) * sizeof(EventPtr);
    }
  };

  struct PendingMatch {
    Match match;
    Timestamp min_ts = 0.0;
    Timestamp max_ts = 0.0;
    Timestamp deadline = 0.0;
  };

  /// Delta input only: an emitted match kept revocable while any of its
  /// events can still be retracted. Evicted once max_ts leaves the
  /// window — every event of the match has ts <= max_ts, so an
  /// in-window retraction target implies max_ts is in window too.
  struct EmittedMatch {
    Match match;
    Timestamp max_ts = 0.0;
  };

  // --- construction-time topology ---
  int NumSteps() const { return plan_.size(); }
  int StepPos(int step) const { return step_pos_[step]; }

  // --- event flow ---
  /// OnEvent minus the latency clock read (hoisted per batch by OnBatch).
  void ProcessEvent(const EventPtr& e);
  void ProcessPending(const Event& e);
  /// The deadline-emission half of ProcessPending: emits pending matches
  /// whose trailing window closed strictly before `e`. Retractions run
  /// only this half — a retraction is a command, not a negation
  /// candidate.
  void ProcessPendingDeadlines(const Event& e);
  /// Consumes one polarity=-1 event: drops the retracted event from the
  /// window/negation buffers, kills every partial match bound to it,
  /// discards pending (never-emitted) matches containing it, and emits
  /// revocations for previously emitted matches that do.
  void ProcessRetraction(const Event& r);
  /// Removes the row with `serial` from `buffer` (columns in lockstep),
  /// refunding its exact buffered bytes. No-op if absent.
  void RemoveFromBuffer(ColumnBuffer* buffer, EventSerial serial);
  void BufferEvent(const EventPtr& e);
  void ExtendWithArrival(const EventPtr& e);
  /// Runs ready negation checks, stores the instance, performs creation
  /// scans (next-step consumption + Kleene absorption), and recurses.
  void Cascade(Instance&& inst, int state);
  /// Returns true and fills `child` if `e` can fill step `state` of
  /// `parent`. Non-const: predicate evaluations count into counters_.
  bool TryExtend(const Instance& parent, int state, const EventPtr& e,
                 Instance* child);
  bool TryAbsorb(const Instance& parent, const EventPtr& e, Instance* child);
  /// Run-at-a-time creation scan: evaluates every TryExtend gate for the
  /// whole buffered run of step `state`'s position through the columnar
  /// predicate kernels (survivor bitmask), then cascades survivors in
  /// buffer order. Match sequences and predicate_evals are bit-identical
  /// to the scalar per-candidate scan; used when columnar kernels are
  /// enabled and the strategy is not skip-till-next (whose first-success
  /// early exit stops evaluating mid-run).
  void CreationScanColumnar(const Instance& parent, int state);
  bool RunNegationChecks(const Instance& inst, int state);
  void Complete(const Instance& inst);
  /// `max_ts` is the match's window upper edge, keyed by the revocation
  /// log's eviction; unused (and uncopied) for insert-only patterns.
  void EmitMatch(Match match, Timestamp max_ts);
  void EmitRevocation(Match match);
  void Sweep();

  size_t StoreInstance(int state, Instance&& inst);
  void MarkDead(int state, size_t idx);

  CompiledPattern cp_;
  OrderPlan plan_;
  MatchSink* sink_;

  std::vector<int> step_pos_;   // step -> pattern position
  int kleene_step_ = -1;        // step filling the Kleene slot, -1 if none
  // steps (by state index == step index) expecting each type
  std::unordered_map<TypeId, std::vector<int>> steps_of_type_;
  // negation checks to run when an instance *enters* a given state
  std::vector<std::vector<const NegationSpec*>> checks_at_state_;
  std::vector<const NegationSpec*> completion_checks_;
  std::vector<const NegationSpec*> trailing_checks_;

  /// Per pattern position, attr-major + row handles: the columnar window
  /// buffer the run kernels scan.
  std::vector<ColumnBuffer> buffers_;
  std::vector<std::vector<Instance>> by_state_;    // states 1..m (and m)
  std::vector<PendingMatch> pending_;
  /// Revocation log, append-ordered; empty unless track_deltas_.
  std::vector<EmittedMatch> emitted_;
  /// Sweep evicts the log only once it grows past this (then re-arms at
  /// 2x the surviving size), so eviction is amortized O(1) per match.
  size_t emitted_scan_threshold_ = 64;

  Timestamp now_ = 0.0;
  EventSerial current_serial_ = 0;
  std::chrono::steady_clock::time_point arrival_start_{};
  uint64_t events_since_sweep_ = 0;
  bool next_match_ = false;
  /// pattern.delta_input(): accept retractions and log emitted matches
  /// for revocation. Off (the default) costs insert-only streams one
  /// predictable branch per event.
  bool track_deltas_ = false;
  /// ColumnarKernelsEnabled() && !skip-till-next, fixed at construction;
  /// also decides which buffers keep column mirrors at all.
  bool use_columnar_ = true;

  static constexpr uint64_t kSweepEvery = 64;
};

}  // namespace cepjoin

#endif  // CEPJOIN_NFA_NFA_ENGINE_H_
