#ifndef CEPJOIN_COMMON_MUTEX_H_
#define CEPJOIN_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace cepjoin {

/// Annotated wrappers over std::mutex / std::condition_variable. The
/// standard-library types carry no Clang thread-safety capability
/// attributes under libstdc++, so guarded fields could never be proven
/// protected through them; these wrappers are zero-cost (one inlined
/// forwarding call) and make every acquisition visible to the analysis.
/// Project rule (enforced by tools/cep_lint.py): src/ outside this file
/// uses cepjoin::Mutex, never raw std::mutex.
class CEPJOIN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CEPJOIN_ACQUIRE() { mu_.lock(); }
  void Unlock() CEPJOIN_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock of a Mutex for a scope (std::lock_guard shape).
class CEPJOIN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CEPJOIN_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CEPJOIN_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to cepjoin::Mutex. Wait() takes the Mutex the
/// caller already holds — the analysis checks the requirement — and
/// adopts it into the std::unique_lock shape std::condition_variable
/// needs for the atomic unlock-sleep-relock, releasing ownership again
/// before returning so the caller's MutexLock stays the sole owner.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and reacquires `mu` before
  /// returning. Spurious wakeups are possible; callers loop on their
  /// predicate (`while (!pred()) cv.Wait(mu);`), which keeps the
  /// predicate's guarded reads inside the caller's locked scope where
  /// the analysis can verify them (a wait-with-lambda would move them
  /// into an unanalyzable closure).
  void Wait(Mutex& mu) CEPJOIN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // caller keeps ownership; our unique_lock was a loan
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// One-shot latch: Notify() releases every current and future
/// WaitForNotification(), with the mutex providing the happens-before
/// edge that publishes the notifier's preceding writes to the waiters
/// (the checkpoint control batches lean on exactly that edge).
class Notification {
 public:
  Notification() = default;
  Notification(const Notification&) = delete;
  Notification& operator=(const Notification&) = delete;

  void Notify() CEPJOIN_EXCLUDES(mu_) {
    // NotifyAll stays under the mutex on purpose: waiters are stack
    // owners (RunOnWorker) that destroy this object as soon as
    // WaitForNotification returns, and they cannot return until this
    // unlock — notifying after release would race the destructor.
    MutexLock lock(mu_);
    notified_ = true;
    cv_.NotifyAll();
  }

  void WaitForNotification() CEPJOIN_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!notified_) cv_.Wait(mu_);
  }

  bool HasBeenNotified() const CEPJOIN_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return notified_;
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  bool notified_ CEPJOIN_GUARDED_BY(mu_) = false;
};

}  // namespace cepjoin

#endif  // CEPJOIN_COMMON_MUTEX_H_
