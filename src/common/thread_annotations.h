#ifndef CEPJOIN_COMMON_THREAD_ANNOTATIONS_H_
#define CEPJOIN_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (-Wthread-safety), compiled
/// to nothing on every other compiler. They turn the lock protocol of a
/// class — which mutex guards which fields, which private helpers may
/// only run with it held, which entry points must NOT hold it — into
/// machine-checked contracts instead of comments. CI builds the whole
/// tree with clang -Wthread-safety -Werror; tools/cep_lint.py separately
/// enforces that every mutable field below a cepjoin::Mutex carries a
/// CEPJOIN_GUARDED_BY (so deleting an annotation is itself a failure,
/// not just the absence of a warning).
///
/// Use the cepjoin::Mutex / MutexLock / CondVar wrappers (common/mutex.h)
/// rather than std::mutex directly: libstdc++'s std::mutex carries no
/// capability attributes, so the analysis cannot see std::lock_guard
/// acquisitions and every guarded access would be a false positive.

#if defined(__clang__) && (!defined(SWIG))
#define CEPJOIN_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CEPJOIN_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Declares a class to be a lockable capability ("mutex").
#define CEPJOIN_CAPABILITY(x) CEPJOIN_THREAD_ANNOTATION_(capability(x))

/// RAII classes that acquire in the constructor / release in the
/// destructor (MutexLock).
#define CEPJOIN_SCOPED_CAPABILITY CEPJOIN_THREAD_ANNOTATION_(scoped_lockable)

/// Field is protected by the given mutex: every read/write requires it.
#define CEPJOIN_GUARDED_BY(x) CEPJOIN_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given mutex.
#define CEPJOIN_PT_GUARDED_BY(x) CEPJOIN_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the capability held on entry (and does not release
/// it): private helpers that touch guarded state.
#define CEPJOIN_REQUIRES(...) \
  CEPJOIN_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define CEPJOIN_ACQUIRE(...) \
  CEPJOIN_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define CEPJOIN_RELEASE(...) \
  CEPJOIN_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function must be called WITHOUT the capability held (it acquires it
/// internally): public entry points, where holding the lock already
/// would self-deadlock on the non-recursive std::mutex underneath.
#define CEPJOIN_EXCLUDES(...) \
  CEPJOIN_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define CEPJOIN_RETURN_CAPABILITY(x) \
  CEPJOIN_THREAD_ANNOTATION_(lock_returned(x))

/// Lock-ordering declarations (deadlock prevention across capabilities).
#define CEPJOIN_ACQUIRED_BEFORE(...) \
  CEPJOIN_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define CEPJOIN_ACQUIRED_AFTER(...) \
  CEPJOIN_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model (e.g. adopting a lock
/// through std::unique_lock for a condition-variable wait). Every use
/// must carry a comment explaining why the analysis is wrong.
#define CEPJOIN_NO_THREAD_SAFETY_ANALYSIS \
  CEPJOIN_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // CEPJOIN_COMMON_THREAD_ANNOTATIONS_H_
