#ifndef CEPJOIN_COMMON_STATUS_H_
#define CEPJOIN_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace cepjoin {

/// Error categories of the recoverable-error path. CEPJOIN_CHECK remains
/// the tool for programmer errors (violated internal invariants); Status
/// is for conditions a caller can react to — a typo'd algorithm name, a
/// query spec that fails validation, an accessor called before its
/// precondition holds.
enum class StatusCode {
  kOk = 0,
  /// The caller supplied something malformed (bad spec, unknown name).
  kInvalidArgument,
  /// The referenced entity does not exist (query id, partition).
  kNotFound,
  /// The call is valid but not *yet* — e.g. reading sharded partition
  /// counts before Finish().
  kFailedPrecondition,
  /// A transient condition: the operation may succeed if retried (a
  /// stalled upstream feed, a momentarily unreachable source). The
  /// ingest pipeline's bounded-retry loop keys off this code; every
  /// other code is treated as fatal.
  kUnavailable,
  /// Unrecoverable data corruption or loss: a snapshot whose CRC does
  /// not match, a truncated checkpoint with no valid predecessor.
  /// Recovery surfaces what was lost through this code instead of
  /// crashing or silently resuming from wrong state.
  kDataLoss,
};

const char* StatusCodeName(StatusCode code);

/// A success-or-error result: either OK or a code plus a human-readable
/// message. Cheap to copy on the OK path (empty message).
///
/// [[nodiscard]] on the class makes discarding ANY by-value Status —
/// every factory's and every `Status F()` API's return — a compile error
/// under -Werror, so an error can only be dropped by writing it down
/// (assign it, check it, or CEPJOIN_CHECK_OK it).
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or the error that prevented producing it. Deliberately
/// minimal: construction from T or a non-OK Status, `ok()`, `status()`,
/// and checked access (`value()` aborts on error with the error's
/// message — the moral equivalent of CEPJOIN_CHECK at the call sites
/// that pass statically known-good inputs).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    CEPJOIN_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CEPJOIN_CHECK(ok()) << "value() on error status: " << status_.ToString();
    return value_;
  }
  T& value() & {
    CEPJOIN_CHECK(ok()) << "value() on error status: " << status_.ToString();
    return value_;
  }
  // By value on rvalues, NOT T&&: `for (auto& x : F().value())` must
  // lifetime-extend the result, and a returned reference into the
  // expiring StatusOr would dangle there instead.
  T value() && {
    CEPJOIN_CHECK(ok()) << "value() on error status: " << status_.ToString();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  // Default-constructed on the error path; T must therefore be
  // default-constructible (true for every T this library stores —
  // pointers, plans, counters, sizes).
  T value_{};
};

/// Propagates a non-OK status to the caller:
///   CEPJOIN_RETURN_IF_ERROR(ValidateAlgorithm(spec.algorithm()));
#define CEPJOIN_RETURN_IF_ERROR(expr)             \
  do {                                            \
    ::cepjoin::Status cepjoin_status_ = (expr);   \
    if (!cepjoin_status_.ok()) return cepjoin_status_; \
  } while (0)

/// Aborts (CEPJOIN_CHECK) unless the Status is OK, printing it. The
/// sanctioned way to consume a [[nodiscard]] Status at call sites whose
/// inputs are statically known good — tests, examples, teardown paths —
/// where an error is a programmer bug, not a recoverable condition.
#define CEPJOIN_CHECK_OK(expr)                                  \
  do {                                                          \
    ::cepjoin::Status cepjoin_check_ok_status_ = (expr);        \
    CEPJOIN_CHECK(cepjoin_check_ok_status_.ok())                \
        << "expected OK: " << cepjoin_check_ok_status_.ToString(); \
  } while (0)

}  // namespace cepjoin

#endif  // CEPJOIN_COMMON_STATUS_H_
