#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace cepjoin {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "[cepjoin] CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace cepjoin
