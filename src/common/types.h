#ifndef CEPJOIN_COMMON_TYPES_H_
#define CEPJOIN_COMMON_TYPES_H_

#include <cstdint>

namespace cepjoin {

/// Identifier of a registered event type (dense, 0-based).
using TypeId = uint32_t;

/// Index of an attribute within an event type's schema.
using AttrId = uint32_t;

/// Global arrival position of an event within a stream (0-based, unique).
using EventSerial = uint64_t;

/// Event timestamps and time windows are measured in seconds.
using Timestamp = double;

inline constexpr TypeId kInvalidTypeId = static_cast<TypeId>(-1);

}  // namespace cepjoin

#endif  // CEPJOIN_COMMON_TYPES_H_
