#ifndef CEPJOIN_COMMON_RNG_H_
#define CEPJOIN_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>

namespace cepjoin {

/// Seeded pseudo-random source used by the workload generators and the
/// randomized optimizers. Thin wrapper over std::mt19937_64 so all call
/// sites share one definition of the distributions we rely on.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled to the given mean / stddev.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential with the given rate (events per second).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  template <typename It>
  void Shuffle(It first, It last) {
    std::shuffle(first, last, engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_COMMON_RNG_H_
