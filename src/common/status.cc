#include "common/status.h"

namespace cepjoin {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cepjoin
