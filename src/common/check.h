#ifndef CEPJOIN_COMMON_CHECK_H_
#define CEPJOIN_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace cepjoin {

/// Aborts the process with a diagnostic message. Used for programmer errors
/// (violated preconditions / internal invariants), never for data errors.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

namespace internal_check {

/// Stream-style message accumulator so call sites can write
/// `CEPJOIN_CHECK(x > 0) << "x was " << x;`.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;
  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace cepjoin

#define CEPJOIN_CHECK(condition)                                       \
  if (condition) {                                                     \
  } else                                                               \
    ::cepjoin::internal_check::CheckMessageBuilder(__FILE__, __LINE__, \
                                                   #condition)

#define CEPJOIN_CHECK_EQ(a, b) CEPJOIN_CHECK((a) == (b))
#define CEPJOIN_CHECK_NE(a, b) CEPJOIN_CHECK((a) != (b))
#define CEPJOIN_CHECK_LT(a, b) CEPJOIN_CHECK((a) < (b))
#define CEPJOIN_CHECK_LE(a, b) CEPJOIN_CHECK((a) <= (b))
#define CEPJOIN_CHECK_GT(a, b) CEPJOIN_CHECK((a) > (b))
#define CEPJOIN_CHECK_GE(a, b) CEPJOIN_CHECK((a) >= (b))

#endif  // CEPJOIN_COMMON_CHECK_H_
