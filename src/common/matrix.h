#ifndef CEPJOIN_COMMON_MATRIX_H_
#define CEPJOIN_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace cepjoin {

/// Small dense row-major matrix of doubles; used for selectivity matrices.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  double& At(size_t r, size_t c) {
    CEPJOIN_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    CEPJOIN_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_COMMON_MATRIX_H_
