#include "api/cep_runtime.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace cepjoin {

CepRuntime::CepRuntime(const SimplePattern& pattern, const PatternStats& stats,
                       const RuntimeOptions& options, MatchSink* sink)
    : batch_size_(options.batch_size) {
  CEPJOIN_CHECK_GE(options.batch_size, 1u) << "batch_size must be >= 1";
  subpatterns_ = {pattern};
  CostFunction cost = MakeCostFunction(pattern, stats, options.latency_alpha);
  plans_ = {MakePlan(options.algorithm, cost, options.seed)};
  engine_ = BuildEngine(pattern, plans_[0], sink);
}

CepRuntime::CepRuntime(const NestedPattern& pattern,
                       const StatsCollector& collector,
                       const RuntimeOptions& options, MatchSink* sink)
    : batch_size_(options.batch_size) {
  CEPJOIN_CHECK_GE(options.batch_size, 1u) << "batch_size must be >= 1";
  subpatterns_ = ToDnf(pattern);
  CEPJOIN_CHECK(!subpatterns_.empty());
  for (const SimplePattern& sub : subpatterns_) {
    CostFunction cost = MakeCostFunction(sub, collector.CollectForPattern(sub),
                                         options.latency_alpha);
    plans_.push_back(MakePlan(options.algorithm, cost, options.seed));
  }
  engine_ = BuildDnfEngine(subpatterns_, plans_, sink);
}

void CepRuntime::ProcessStream(const EventStream& stream) {
  const std::vector<EventPtr>& events = stream.events();
  for (size_t i = 0; i < events.size(); i += batch_size_) {
    OnBatch(events.data() + i, std::min(batch_size_, events.size() - i));
  }
}

std::string CepRuntime::DescribePlans() const {
  std::ostringstream os;
  for (size_t k = 0; k < plans_.size(); ++k) {
    if (plans_.size() > 1) os << "subpattern " << k << ": ";
    os << plans_[k].Describe() << " (cost " << plans_[k].cost << ")\n";
  }
  return os.str();
}

}  // namespace cepjoin
