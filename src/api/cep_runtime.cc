#include "api/cep_runtime.h"

#include <sstream>

#include "common/check.h"

namespace cepjoin {

CepRuntime::CepRuntime(const SimplePattern& pattern, const PatternStats& stats,
                       const RuntimeOptions& options, MatchSink* sink) {
  ServiceOptions service_options;
  service_options.batch_size = options.batch_size;
  service_options.default_seed = options.seed;
  // The legacy constructor promises a ready runtime or an abort;
  // value() keeps that contract while the service reports the same
  // problems (bad batch size, unknown algorithm) as Status.
  service_ = CepService::Create(service_options).value();
  handle_ = service_
                ->Register(QuerySpec::Simple(pattern)
                               .WithAlgorithm(options.algorithm)
                               .WithLatencyAlpha(options.latency_alpha)
                               .WithStats(stats)
                               .WithSink(sink))
                .value();
}

CepRuntime::CepRuntime(const NestedPattern& pattern,
                       const StatsCollector& collector,
                       const RuntimeOptions& options, MatchSink* sink) {
  ServiceOptions service_options;
  service_options.batch_size = options.batch_size;
  service_options.default_seed = options.seed;
  // The collector only needs to outlive this Register call; the wrapper
  // never registers again.
  service_options.collector = &collector;
  service_ = CepService::Create(service_options).value();
  handle_ = service_
                ->Register(QuerySpec::Nested(pattern)
                               .WithAlgorithm(options.algorithm)
                               .WithLatencyAlpha(options.latency_alpha)
                               .WithSink(sink))
                .value();
  // The caller-owned collector is not guaranteed to outlive this
  // constructor; registrations through service() must not touch it.
  service_->DropExternalCollector();
}

std::string CepRuntime::DescribePlans() const {
  const std::vector<EnginePlan>& all = plans();
  std::ostringstream os;
  for (size_t k = 0; k < all.size(); ++k) {
    if (all.size() > 1) os << "subpattern " << k << ": ";
    os << all[k].Describe() << " (cost " << all[k].cost << ")\n";
  }
  return os.str();
}

}  // namespace cepjoin
