// Durable half of CepService: attached-source ingest with replayable
// positions, checkpoint capture, and crash recovery. Split from
// cep_service.cc so the registration/dispatch hot path and the
// durability machinery evolve independently.
#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/cep_service.h"
#include "common/check.h"
#include "durable/checkpoint_store.h"
#include "durable/snapshot_codec.h"
#include "obs/pipeline_metrics.h"

namespace cepjoin {

namespace {

/// Version of the service-level checkpoint payload (the section layout
/// AROUND the per-engine blobs; those carry kEngineStateFormatVersion
/// themselves). Bump on any layout change.
constexpr uint32_t kServiceCheckpointVersion = 1;

/// Merge order of two source heads: earlier timestamp first, inserts
/// before retractions at equal timestamps, remaining ties to the lower
/// attach index (the caller's ascending scan). Identical to the async
/// pipeline's rule, so both ingest paths produce the same merged
/// sequence from the same sources.
bool MergesBefore(const Event& a, const Event& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  return a.polarity > b.polarity;
}

}  // namespace

// ---- durable ingest -------------------------------------------------------

Status CepService::AttachSource(std::unique_ptr<StreamSource> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("AttachSource: source is null");
  }
  if (finished_) return Status::FailedPrecondition("AttachSource after Finish");
  if (source->declares_retractions() && attached_ledger_ == nullptr) {
    attached_ledger_ = std::make_unique<RetractionLedger>();
  }
  AttachedSource attached;
  attached.source = std::move(source);
  attached_.push_back(std::move(attached));
  return Status::Ok();
}

Status CepService::RefillAttachedHead(size_t index) {
  AttachedSource& src = attached_[index];
  if (src.exhausted) return Status::Ok();
  size_t attempts = 0;
  std::chrono::milliseconds backoff = options_.source_retry_backoff;
  while (true) {
    // Record the position BEFORE pulling: re-reading from here after a
    // restore re-delivers the head we are about to buffer.
    src.head_position = src.source->position();
    if (src.source->Next(&src.head)) {
      if (!std::isfinite(src.head.ts) || src.head.ts < src.last_ts) {
        src.has_head = false;
        return Status::InvalidArgument(
            "attached source " + std::to_string(index) +
            ": timestamps must be finite and non-decreasing");
      }
      src.last_ts = src.head.ts;
      src.has_head = true;
      return Status::Ok();
    }
    src.has_head = false;
    if (src.source->ok()) {
      src.exhausted = true;
      return Status::Ok();
    }
    // Same retry policy as the async pipeline: only transient failures
    // (kUnavailable) are re-polled; parse errors are final.
    if (src.source->error_code() == StatusCode::kUnavailable &&
        attempts < options_.source_retry_limit) {
      ++attempts;
      if (metrics_registry_ != nullptr) {
        metrics_registry_->GetCounter(metric_names::kIngestSourceRetries)
            ->Inc();
      }
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
      continue;
    }
    std::string message = "attached source " + std::to_string(index) + ": " +
                          src.source->error();
    return src.source->error_code() == StatusCode::kUnavailable
               ? Status::Unavailable(std::move(message))
               : Status::InvalidArgument(std::move(message));
  }
}

StatusOr<size_t> CepService::PumpAttachedSources(size_t max_events) {
  if (finished_) {
    return Status::FailedPrecondition("PumpAttachedSources after Finish");
  }
  const size_t k = attached_.size();
  size_t fed = 0;
  std::vector<EventPtr> run;
  run.reserve(options_.batch_size);
  uint32_t run_partition = 0;
  auto flush = [&] {
    if (run.empty()) return;
    OnMergedRun(run.data(), run.size());
    if (ingest_events_ != nullptr) {
      ingest_events_->Inc(run.size());
      ingest_batches_->Inc();
    }
    run.clear();
  };
  // Returns with the run flushed so the valid merged prefix has been
  // evaluated even when the pump fails mid-way.
  auto fail = [&](Status status) {
    flush();
    return status;
  };

  for (size_t i = 0; i < k; ++i) {
    if (!attached_[i].has_head) {
      CEPJOIN_RETURN_IF_ERROR(RefillAttachedHead(i));
    }
  }
  while (fed < max_events) {
    size_t best = k;
    for (size_t i = 0; i < k; ++i) {
      if (attached_[i].has_head &&
          (best == k || MergesBefore(attached_[i].head, attached_[best].head))) {
        best = i;
      }
    }
    if (best == k) break;  // every source exhausted

    Event e = std::move(attached_[best].head);
    attached_[best].has_head = false;
    // Serial assignment, identical to EventStream::Append and the async
    // merge: global arrival serials, dense per-partition sequences for
    // inserts, ledger resolution for retractions.
    e.serial = attached_next_serial_++;
    if (e.polarity < 0) {
      e.partition_seq = 0;
      if (attached_ledger_ == nullptr) {
        return fail(Status::InvalidArgument(
            "attached source " + std::to_string(best) +
            " emitted a retraction but declared an insert-only stream"));
      }
      Status resolved = attached_ledger_->Resolve(&e);
      if (!resolved.ok()) return fail(std::move(resolved));
    } else {
      e.partition_seq = attached_seq_.Next(e.partition);
      if (attached_ledger_ != nullptr) attached_ledger_->RecordInsert(e);
    }
    uint32_t partition = e.partition;
    if (!run.empty() &&
        (partition != run_partition || run.size() >= options_.batch_size)) {
      flush();
    }
    run_partition = partition;
    run.push_back(attached_arena_.Add(std::move(e)));
    ++fed;

    Status refilled = RefillAttachedHead(best);
    if (!refilled.ok()) return fail(std::move(refilled));
  }
  flush();
  return fed;
}

// ---- checkpoint capture ---------------------------------------------------

Status CepService::SaveQueryState(const QueryState& state,
                                  EngineStateWriter* w) const {
  SnapshotWriter& p = w->payload();
  if (!state.keyed) {
    p.U8(state.engine != nullptr ? 1 : 0);
    if (state.engine != nullptr) {
      EngineStateWriter engine_writer;
      CEPJOIN_RETURN_IF_ERROR(state.engine->SaveState(&engine_writer));
      p.Str(engine_writer.Finish());
    }
  } else if (state.partitioned != nullptr) {
    std::vector<std::pair<uint32_t, std::string>> blobs;
    if (state.active) {
      CEPJOIN_RETURN_IF_ERROR(state.partitioned->SaveStateTo(&blobs));
    }
    p.U64(blobs.size());
    for (const auto& [partition, blob] : blobs) {
      p.U32(partition);
      p.Str(blob);
    }
  }
  // Sharded queries carry no inline section: their engines live in the
  // sharded block below, keyed by service id.
  return Status::Ok();
}

Status CepService::CaptureCheckpointBytes(std::string* out) {
  CEPJOIN_CHECK(out != nullptr);
  if (finished_) {
    return Status::FailedPrecondition("CaptureCheckpointBytes after Finish");
  }
  EngineStateWriter outer;
  SnapshotWriter& p = outer.payload();
  p.U32(kServiceCheckpointVersion);
  p.U64(next_id_);
  p.U8(sharded_ != nullptr ? 1 : 0);

  // Attached-source ingest state: merge serials, per-partition
  // sequences, the live-insert ledger, and each source's replay
  // position (the pre-head position when a lookahead is buffered, so
  // replay re-delivers it).
  p.U8(attached_.empty() ? 0 : 1);
  if (!attached_.empty()) {
    p.U64(attached_next_serial_);
    attached_seq_.SaveTo(&p);
    p.U8(attached_ledger_ != nullptr ? 1 : 0);
    if (attached_ledger_ != nullptr) attached_ledger_->SaveTo(&p);
    p.U64(attached_.size());
    for (const AttachedSource& src : attached_) {
      p.U8(src.source->supports_position() ? 1 : 0);
      p.U64(src.has_head ? src.head_position : src.source->position());
      p.U8(src.exhausted ? 1 : 0);
    }
  }

  // Per-query sections, in id (registration) order.
  p.U64(queries_.size());
  for (const auto& [id, state] : queries_) {
    p.U64(id);
    p.Str(state.name);
    p.U8(state.keyed ? 1 : 0);
    p.U8(state.active ? 1 : 0);
    p.U8(state.uses_sharded ? 1 : 0);
    if (!state.keyed && state.engine != nullptr) {
      state.counters = state.engine->counters();
    }
    outer.WriteCounters(state.counters);
    CEPJOIN_RETURN_IF_ERROR(SaveQueryState(state, &outer));
  }

  // Sharded block: the capture-time (runtime id -> service id) table —
  // restore composes it with the new runtime's table to remap buffered
  // sink entries — then every live engine blob keyed by SERVICE id
  // (stable across restarts), then each shard's buffered sink entries.
  if (sharded_ != nullptr) {
    std::unordered_map<uint64_t, uint64_t> runtime_to_service;
    std::vector<std::pair<uint64_t, uint64_t>> mapping;
    for (const auto& [id, state] : queries_) {
      if (!state.uses_sharded) continue;
      runtime_to_service.emplace(state.sharded_id, id);
      mapping.emplace_back(state.sharded_id, id);
    }
    std::sort(mapping.begin(), mapping.end());
    p.U64(mapping.size());
    for (const auto& [runtime_id, service_id] : mapping) {
      p.U64(runtime_id);
      p.U64(service_id);
    }
    ShardedCheckpoint checkpoint;
    CEPJOIN_RETURN_IF_ERROR(sharded_->CaptureCheckpoint(&checkpoint));
    p.U64(checkpoint.partitions.size());
    for (const PartitionSnapshot& snap : checkpoint.partitions) {
      auto it = runtime_to_service.find(snap.query);
      if (it == runtime_to_service.end()) {
        return Status::FailedPrecondition(
            "sharded runtime captured state for unknown runtime query id " +
            std::to_string(snap.query));
      }
      p.U64(it->second);
      p.U32(snap.partition);
      p.Str(snap.engine_state);
    }
    p.U64(checkpoint.sink_blobs.size());
    for (const std::string& blob : checkpoint.sink_blobs) p.Str(blob);
  }

  *out = outer.Finish();
  return Status::Ok();
}

Status CepService::CheckpointTo(const std::string& dir) {
  std::string payload;
  CEPJOIN_RETURN_IF_ERROR(CaptureCheckpointBytes(&payload));
  CheckpointStore store(dir);
  CEPJOIN_RETURN_IF_ERROR(store.Open());
  return store.WriteCheckpoint(payload);
}

// ---- restore --------------------------------------------------------------

StatusOr<CepService::RestoreReport> CepService::RestoreFrom(
    const std::string& dir) {
  if (finished_) return Status::FailedPrecondition("RestoreFrom after Finish");
  CheckpointStore store(dir);
  StatusOr<CheckpointStore::LoadedCheckpoint> loaded = store.LoadLatest();
  if (!loaded.ok()) return loaded.status();

  EngineStateReader outer(loaded->payload);
  CEPJOIN_RETURN_IF_ERROR(outer.Init());
  SnapshotReader& p = outer.payload();

  uint32_t version = p.U32();
  if (p.ok() && version != kServiceCheckpointVersion) {
    return Status::DataLoss("checkpoint payload version " +
                            std::to_string(version) + " is not the supported " +
                            std::to_string(kServiceCheckpointVersion));
  }
  uint64_t next_id = p.U64();
  uint8_t sharded_flag = p.U8();
  if (!p.ok()) return p.status();
  if (next_id != next_id_) {
    return Status::FailedPrecondition(
        "checkpoint was cut with " + std::to_string(next_id) +
        " queries ever registered, this service has " +
        std::to_string(next_id_) +
        "; re-create the service and replay the same registration sequence "
        "before RestoreFrom");
  }
  if ((sharded_flag != 0) != (sharded_ != nullptr)) {
    return Status::FailedPrecondition(
        "checkpoint host kind mismatch: the checkpoint was cut on a " +
        std::string(sharded_flag != 0 ? "sharded" : "single-threaded") +
        " service; re-create this service with a matching "
        "ServiceOptions::num_threads class (1 vs many; the sharded thread "
        "COUNT may differ freely)");
  }

  uint8_t has_ingest = p.U8();
  if (!p.ok()) return p.status();
  if ((has_ingest != 0) != !attached_.empty()) {
    return Status::FailedPrecondition(
        has_ingest != 0
            ? "checkpoint carries attached-source state; attach the same "
              "sources (in the same order) before RestoreFrom"
            : "this service has attached sources but the checkpoint was cut "
              "without any");
  }
  if (has_ingest != 0) {
    attached_next_serial_ = p.U64();
    attached_seq_.LoadFrom(&p);
    uint8_t has_ledger = p.U8();
    if (has_ledger != 0) {
      if (attached_ledger_ == nullptr) {
        attached_ledger_ = std::make_unique<RetractionLedger>();
      }
      attached_ledger_->LoadFrom(&p);
    }
    uint64_t n_sources = p.U64();
    if (!p.ok()) return p.status();
    if (n_sources != attached_.size()) {
      return Status::FailedPrecondition(
          "checkpoint was cut with " + std::to_string(n_sources) +
          " attached sources, this service has " +
          std::to_string(attached_.size()));
    }
    for (size_t i = 0; i < attached_.size(); ++i) {
      uint8_t positional = p.U8();
      uint64_t position = p.U64();
      uint8_t exhausted = p.U8();
      if (!p.ok()) return p.status();
      AttachedSource& src = attached_[i];
      if (positional != 0) {
        if (!src.source->supports_position()) {
          return Status::FailedPrecondition(
              "attached source " + std::to_string(i) +
              " was positional at capture but the attached replacement is "
              "not; tail replay is impossible");
        }
        CEPJOIN_RETURN_IF_ERROR(src.source->SeekTo(position));
      }
      // The lookahead is NOT restored — the seek re-delivers it; the
      // monotonicity baseline resets with the replay position.
      src.has_head = false;
      src.exhausted = exhausted != 0;
      src.last_ts = -std::numeric_limits<double>::infinity();
    }
  }

  uint64_t n_queries = p.U64();
  if (!p.ok()) return p.status();
  if (n_queries != queries_.size()) {
    return Status::FailedPrecondition(
        "checkpoint carries " + std::to_string(n_queries) +
        " queries, this service has " + std::to_string(queries_.size()));
  }
  for (auto& [id, state] : queries_) {
    uint64_t saved_id = p.U64();
    std::string saved_name = p.Str();
    uint8_t saved_keyed = p.U8();
    uint8_t saved_active = p.U8();
    uint8_t saved_sharded = p.U8();
    if (!p.ok()) return p.status();
    if (saved_id != id || saved_name != state.name ||
        (saved_keyed != 0) != state.keyed ||
        (saved_active != 0) != state.active ||
        (saved_sharded != 0) != state.uses_sharded) {
      return Status::FailedPrecondition(
          "query " + std::to_string(id) +
          " disagrees with the checkpoint's registration sequence "
          "(id/name/keyed/active/host); re-create the service and replay "
          "the exact registration (and deregistration) order");
    }
    outer.ReadCounters(&state.counters);
    if (!state.keyed) {
      uint8_t has_engine = p.U8();
      if (!p.ok()) return p.status();
      if ((has_engine != 0) != (state.engine != nullptr)) {
        return Status::FailedPrecondition(
            "query " + std::to_string(id) +
            ": live-engine mismatch against the checkpoint");
      }
      if (has_engine != 0) {
        std::string blob = p.Str();
        if (!p.ok()) return p.status();
        EngineStateReader reader(blob);
        CEPJOIN_RETURN_IF_ERROR(reader.Init());
        CEPJOIN_RETURN_IF_ERROR(state.engine->LoadState(&reader));
      }
    } else if (!state.uses_sharded) {
      uint64_t n_partitions = p.U64();
      if (!p.ok()) return p.status();
      if (state.partitioned == nullptr) {
        return Status::FailedPrecondition(
            "query " + std::to_string(id) +
            " has no partitioned runtime to restore into");
      }
      for (uint64_t i = 0; i < n_partitions && p.ok(); ++i) {
        uint32_t partition = p.U32();
        std::string blob = p.Str();
        if (!p.ok()) break;
        CEPJOIN_RETURN_IF_ERROR(
            state.partitioned->LoadPartitionState(partition, blob));
      }
      if (!p.ok()) return p.status();
    }
  }

  if (sharded_flag != 0) {
    // Compose (capture runtime id -> service id) with (service id ->
    // this runtime's id) into the sink-entry remap table.
    std::unordered_map<uint64_t, uint64_t> service_to_new_runtime;
    for (const auto& [id, state] : queries_) {
      if (state.uses_sharded) {
        service_to_new_runtime.emplace(id, state.sharded_id);
      }
    }
    std::unordered_map<uint64_t, uint64_t> query_remap;
    uint64_t n_mappings = p.U64();
    for (uint64_t i = 0; i < n_mappings && p.ok(); ++i) {
      uint64_t old_runtime = p.U64();
      uint64_t service_id = p.U64();
      if (!p.ok()) break;
      auto it = service_to_new_runtime.find(service_id);
      if (it == service_to_new_runtime.end()) {
        return Status::FailedPrecondition(
            "checkpoint maps a sharded query to service id " +
            std::to_string(service_id) +
            " which is not sharded in this service");
      }
      query_remap.emplace(old_runtime, it->second);
    }
    ShardedCheckpoint checkpoint;
    uint64_t n_partitions = p.U64();
    for (uint64_t i = 0; i < n_partitions && p.ok(); ++i) {
      uint64_t service_id = p.U64();
      uint32_t partition = p.U32();
      std::string blob = p.Str();
      if (!p.ok()) break;
      auto it = service_to_new_runtime.find(service_id);
      if (it == service_to_new_runtime.end()) {
        return Status::FailedPrecondition(
            "checkpoint carries sharded engine state for service id " +
            std::to_string(service_id) + " which is not sharded here");
      }
      PartitionSnapshot snap;
      snap.query = it->second;
      snap.partition = partition;
      snap.engine_state = std::move(blob);
      checkpoint.partitions.push_back(std::move(snap));
    }
    uint64_t n_sinks = p.U64();
    for (uint64_t i = 0; i < n_sinks && p.ok(); ++i) {
      checkpoint.sink_blobs.push_back(p.Str());
    }
    if (!p.ok()) return p.status();
    CEPJOIN_RETURN_IF_ERROR(
        sharded_->RestoreCheckpoint(checkpoint, query_remap));
  }

  if (!p.ok()) return p.status();
  if (!p.AtEnd()) {
    return Status::DataLoss(
        "checkpoint payload has trailing bytes after the last section");
  }
  if (restores_total_ != nullptr) restores_total_->Inc();
  RestoreReport report;
  report.checkpoint_seq = loaded->seq;
  report.fell_back = loaded->fell_back;
  report.detail = loaded->detail;
  return report;
}

}  // namespace cepjoin
