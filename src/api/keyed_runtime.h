#ifndef CEPJOIN_API_KEYED_RUNTIME_H_
#define CEPJOIN_API_KEYED_RUNTIME_H_

#include <memory>

#include "adaptive/partitioned_runtime.h"
#include "api/cep_runtime.h"
#include "event/stream.h"
#include "parallel/sharded_runtime.h"
#include "runtime/match.h"

namespace cepjoin {

/// Facade over keyed (partition-contiguous) execution: plans each
/// partition against its own statistics and evaluates the pattern
/// per-partition, single-threaded or sharded across worker threads
/// depending on RuntimeOptions::num_threads.
///
///   CollectingSink sink;
///   KeyedCepRuntime runtime(pattern, history, registry.size(),
///                           {.algorithm = "GREEDY", .num_threads = 4},
///                           &sink);
///   runtime.ProcessStream(live_stream);
///   runtime.Finish();   // sink now holds the canonical match sequence
///
/// The match set is identical at every thread count; see
/// parallel/sharded_runtime.h for the guarantees.
class KeyedCepRuntime {
 public:
  KeyedCepRuntime(const SimplePattern& pattern, const EventStream& history,
                  size_t num_types, const RuntimeOptions& options,
                  MatchSink* sink);

  void OnEvent(const EventPtr& e);
  /// Batched ingestion; matches and counters are identical to per-event
  /// feeding at every thread count and batch size.
  void OnBatch(const EventPtr* events, size_t n);
  void ProcessStream(const EventStream& stream);
  void Finish();

  /// True if execution is sharded across worker threads.
  bool sharded() const { return sharded_ != nullptr; }
  /// Worker threads evaluating the pattern (1 when not sharded).
  size_t num_threads() const;
  /// Distinct partitions seen. For sharded execution, valid after
  /// Finish().
  size_t num_partitions() const;
  /// The plan serving one partition; aborts if the partition is unknown.
  const EnginePlan& PlanFor(uint32_t partition) const;
  /// Counters aggregated across all partition engines.
  EngineCounters TotalCounters() const;

 private:
  std::unique_ptr<PartitionedRuntime> single_;
  std::unique_ptr<ShardedRuntime> sharded_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_API_KEYED_RUNTIME_H_
