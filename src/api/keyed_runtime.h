#ifndef CEPJOIN_API_KEYED_RUNTIME_H_
#define CEPJOIN_API_KEYED_RUNTIME_H_

#include <memory>
#include <vector>

#include "api/cep_runtime.h"
#include "api/cep_service.h"
#include "event/stream.h"
#include "event/stream_source.h"
#include "parallel/ingest_pipeline.h"
#include "runtime/match.h"

namespace cepjoin {

/// Single-query compatibility facade over keyed (partition-contiguous)
/// execution: registers one keyed query with a private CepService and
/// forwards the ingest calls. The pattern is planned per partition
/// against its own statistics and evaluated single-threaded or sharded
/// across worker threads depending on RuntimeOptions::num_threads. New
/// code should use CepService directly — it hosts many keyed queries on
/// one shared routing pass.
///
///   CollectingSink sink;
///   KeyedCepRuntime runtime(pattern, history, registry.size(),
///                           {.algorithm = "GREEDY", .num_threads = 4},
///                           &sink);
///   runtime.ProcessStream(live_stream);
///   runtime.Finish();   // sink now holds the canonical match sequence
///
/// The match set is identical at every thread count; see
/// parallel/sharded_runtime.h for the guarantees.
class KeyedCepRuntime {
 public:
  KeyedCepRuntime(const SimplePattern& pattern, const EventStream& history,
                  size_t num_types, const RuntimeOptions& options,
                  MatchSink* sink);

  void OnEvent(const EventPtr& e) { service_->OnEvent(e); }
  /// Batched ingestion; matches and counters are identical to per-event
  /// feeding at every thread count and batch size.
  void OnBatch(const EventPtr* events, size_t n) {
    service_->OnBatch(events, n);
  }
  void ProcessStream(const EventStream& stream) {
    service_->ProcessStream(stream);
  }

  /// Async ingestion: parses/generates `sources` on
  /// RuntimeOptions::num_ingest_threads dedicated threads, k-way merges
  /// them in timestamp order (ties broken by source index), and feeds
  /// the merged same-partition runs to this runtime — so the caller's
  /// thread only merges and routes, never parses. Blocks until the
  /// sources are exhausted or one fails; call Finish() afterwards as
  /// usual. The merged sequence is a pure function of the sources: the
  /// drained match set and counters are byte-identical to materializing
  /// the merge into an EventStream and replaying it through
  /// ProcessStream, at every ingest/worker thread combination.
  ///
  /// On failure (CSV parse error, timestamp regression), the valid
  /// merged prefix has already been evaluated; the result carries the
  /// failing source and message.
  IngestResult ProcessSourceAsync(
      std::vector<std::unique_ptr<StreamSource>> sources) {
    return service_->ProcessSourceAsync(std::move(sources));
  }
  /// Single-source convenience overload.
  IngestResult ProcessSourceAsync(std::unique_ptr<StreamSource> source) {
    return service_->ProcessSourceAsync(std::move(source));
  }

  void Finish() { service_->Finish(); }

  /// True if execution is sharded across worker threads.
  bool sharded() const { return service_->sharded(); }
  /// Worker threads evaluating the pattern (1 when not sharded).
  size_t num_threads() const { return service_->num_threads(); }

  /// Distinct partitions seen. Single-threaded execution answers any
  /// time; sharded execution returns FailedPrecondition until Finish()
  /// — the precondition is enforced as a returned error, never answered
  /// with a stale or partial count (and never by aborting).
  StatusOr<size_t> num_partitions() const {
    return handle_.num_partitions();
  }
  /// The plan serving one partition; aborts if the partition is unknown
  /// (legacy contract — QueryHandle::PlanFor reports a Status instead).
  EnginePlan PlanFor(uint32_t partition) const;
  /// Counters aggregated across all partition engines. Sharded
  /// execution requires Finish() first (aborts otherwise, matching the
  /// legacy contract; QueryHandle::counters reports a Status instead).
  EngineCounters TotalCounters() const;

  /// The underlying single-query service and handle, for callers
  /// migrating to the session API incrementally.
  CepService& service() { return *service_; }
  const QueryHandle& handle() const { return handle_; }

 private:
  std::unique_ptr<CepService> service_;
  QueryHandle handle_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_API_KEYED_RUNTIME_H_
