#ifndef CEPJOIN_API_KEYED_RUNTIME_H_
#define CEPJOIN_API_KEYED_RUNTIME_H_

#include <memory>
#include <vector>

#include "adaptive/partitioned_runtime.h"
#include "api/cep_runtime.h"
#include "event/stream.h"
#include "event/stream_source.h"
#include "parallel/ingest_pipeline.h"
#include "parallel/sharded_runtime.h"
#include "runtime/match.h"

namespace cepjoin {

/// Facade over keyed (partition-contiguous) execution: plans each
/// partition against its own statistics and evaluates the pattern
/// per-partition, single-threaded or sharded across worker threads
/// depending on RuntimeOptions::num_threads.
///
///   CollectingSink sink;
///   KeyedCepRuntime runtime(pattern, history, registry.size(),
///                           {.algorithm = "GREEDY", .num_threads = 4},
///                           &sink);
///   runtime.ProcessStream(live_stream);
///   runtime.Finish();   // sink now holds the canonical match sequence
///
/// The match set is identical at every thread count; see
/// parallel/sharded_runtime.h for the guarantees.
class KeyedCepRuntime {
 public:
  KeyedCepRuntime(const SimplePattern& pattern, const EventStream& history,
                  size_t num_types, const RuntimeOptions& options,
                  MatchSink* sink);

  void OnEvent(const EventPtr& e);
  /// Batched ingestion; matches and counters are identical to per-event
  /// feeding at every thread count and batch size.
  void OnBatch(const EventPtr* events, size_t n);
  void ProcessStream(const EventStream& stream);

  /// Async ingestion: parses/generates `sources` on
  /// RuntimeOptions::num_ingest_threads dedicated threads, k-way merges
  /// them in timestamp order (ties broken by source index), and feeds
  /// the merged same-partition runs to this runtime — so the caller's
  /// thread only merges and routes, never parses. Blocks until the
  /// sources are exhausted or one fails; call Finish() afterwards as
  /// usual. The merged sequence is a pure function of the sources: the
  /// drained match set and counters are byte-identical to materializing
  /// the merge into an EventStream and replaying it through
  /// ProcessStream, at every ingest/worker thread combination.
  ///
  /// On failure (CSV parse error, timestamp regression), the valid
  /// merged prefix has already been evaluated; the result carries the
  /// failing source and message.
  IngestResult ProcessSourceAsync(
      std::vector<std::unique_ptr<StreamSource>> sources);
  /// Single-source convenience overload.
  IngestResult ProcessSourceAsync(std::unique_ptr<StreamSource> source);

  void Finish();

  /// True if execution is sharded across worker threads.
  bool sharded() const { return sharded_ != nullptr; }
  /// Worker threads evaluating the pattern (1 when not sharded).
  size_t num_threads() const;
  /// Distinct partitions seen. For sharded execution, valid after
  /// Finish().
  size_t num_partitions() const;
  /// The plan serving one partition; aborts if the partition is unknown.
  const EnginePlan& PlanFor(uint32_t partition) const;
  /// Counters aggregated across all partition engines.
  EngineCounters TotalCounters() const;

 private:
  std::unique_ptr<PartitionedRuntime> single_;
  std::unique_ptr<ShardedRuntime> sharded_;
  size_t num_ingest_threads_;
  size_t batch_size_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_API_KEYED_RUNTIME_H_
