#include "api/keyed_runtime.h"

#include "common/check.h"

namespace cepjoin {

KeyedCepRuntime::KeyedCepRuntime(const SimplePattern& pattern,
                                 const EventStream& history, size_t num_types,
                                 const RuntimeOptions& options,
                                 MatchSink* sink)
    : num_ingest_threads_(options.num_ingest_threads),
      batch_size_(options.batch_size) {
  CEPJOIN_CHECK_GE(options.batch_size, 1u) << "batch_size must be >= 1";
  if (options.num_threads == 1) {
    single_ = std::make_unique<PartitionedRuntime>(
        pattern, history, num_types, options.algorithm, sink, options.seed,
        options.latency_alpha, options.batch_size);
  } else {
    ShardedOptions sharded;
    sharded.num_threads = options.num_threads;
    sharded.batch_size = options.batch_size;
    sharded_ = std::make_unique<ShardedRuntime>(
        pattern, history, num_types, options.algorithm, sink, sharded,
        options.seed, options.latency_alpha);
  }
}

void KeyedCepRuntime::OnEvent(const EventPtr& e) {
  if (single_) {
    single_->OnEvent(e);
  } else {
    sharded_->OnEvent(e);
  }
}

void KeyedCepRuntime::OnBatch(const EventPtr* events, size_t n) {
  if (single_) {
    single_->OnBatch(events, n);
  } else {
    sharded_->OnBatch(events, n);
  }
}

void KeyedCepRuntime::ProcessStream(const EventStream& stream) {
  if (single_) {
    single_->ProcessStream(stream);
  } else {
    sharded_->ProcessStream(stream);
  }
}

IngestResult KeyedCepRuntime::ProcessSourceAsync(
    std::vector<std::unique_ptr<StreamSource>> sources) {
  IngestOptions options;
  options.num_ingest_threads = num_ingest_threads_;
  options.chunk_size = batch_size_;
  IngestPipeline pipeline(std::move(sources), options);
  if (single_) {
    return pipeline.Run([this](const EventPtr* run, size_t n) {
      single_->OnBatch(run, n);
    });
  }
  return pipeline.Run([this](const EventPtr* run, size_t n) {
    sharded_->OnPartitionRun(run, n);
  });
}

IngestResult KeyedCepRuntime::ProcessSourceAsync(
    std::unique_ptr<StreamSource> source) {
  std::vector<std::unique_ptr<StreamSource>> sources;
  sources.push_back(std::move(source));
  return ProcessSourceAsync(std::move(sources));
}

void KeyedCepRuntime::Finish() {
  if (single_) {
    single_->Finish();
  } else {
    sharded_->Finish();
  }
}

size_t KeyedCepRuntime::num_threads() const {
  return single_ ? 1 : sharded_->num_threads();
}

size_t KeyedCepRuntime::num_partitions() const {
  return single_ ? single_->num_partitions() : sharded_->num_partitions();
}

const EnginePlan& KeyedCepRuntime::PlanFor(uint32_t partition) const {
  return single_ ? single_->PlanFor(partition) : sharded_->PlanFor(partition);
}

EngineCounters KeyedCepRuntime::TotalCounters() const {
  return single_ ? single_->TotalCounters() : sharded_->TotalCounters();
}

}  // namespace cepjoin
