#include "api/keyed_runtime.h"

#include "common/check.h"

namespace cepjoin {

KeyedCepRuntime::KeyedCepRuntime(const SimplePattern& pattern,
                                 const EventStream& history, size_t num_types,
                                 const RuntimeOptions& options,
                                 MatchSink* sink) {
  ServiceOptions service_options;
  service_options.history = &history;
  service_options.num_types = num_types;
  service_options.num_threads = options.num_threads;
  service_options.batch_size = options.batch_size;
  service_options.num_ingest_threads = options.num_ingest_threads;
  service_options.default_seed = options.seed;
  // The legacy constructor promises a ready runtime or an abort;
  // value() keeps that contract while the service reports the same
  // problems (bad batch size, unknown algorithm) as Status.
  service_ = CepService::Create(service_options).value();
  handle_ = service_
                ->Register(QuerySpec::Simple(pattern)
                               .Keyed()
                               .WithAlgorithm(options.algorithm)
                               .WithLatencyAlpha(options.latency_alpha)
                               .WithSink(sink))
                .value();
}

EnginePlan KeyedCepRuntime::PlanFor(uint32_t partition) const {
  StatusOr<EnginePlan> plan = handle_.PlanFor(partition);
  CEPJOIN_CHECK(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

EngineCounters KeyedCepRuntime::TotalCounters() const {
  StatusOr<EngineCounters> counters = handle_.counters();
  CEPJOIN_CHECK(counters.ok()) << counters.status().ToString();
  return std::move(counters).value();
}

}  // namespace cepjoin
