#ifndef CEPJOIN_API_CEP_RUNTIME_H_
#define CEPJOIN_API_CEP_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "api/cep_service.h"
#include "engine/engine_factory.h"
#include "event/stream.h"
#include "pattern/nested.h"
#include "pattern/pattern.h"
#include "stats/collector.h"

namespace cepjoin {

/// Top-level configuration of the single-query compatibility runtimes
/// (CepRuntime / KeyedCepRuntime). New code should use CepService with
/// QuerySpec directly — it hosts many queries over one ingest path and
/// reports bad configurations as Status errors instead of aborting.
struct RuntimeOptions {
  /// Plan-generation algorithm: TRIVIAL, EFREQ, GREEDY, II-RANDOM,
  /// II-GREEDY, DP-LD, KBZ (order plans / lazy NFA) or ZSTREAM,
  /// ZSTREAM-ORD, DP-B (tree plans / tree engine).
  std::string algorithm = "GREEDY";
  /// Throughput–latency trade-off weight alpha (Sec. 6.1); 0 optimizes
  /// throughput only.
  double latency_alpha = 0.0;
  /// Worker threads for keyed (partitioned) execution. 1 runs the
  /// single-threaded PartitionedRuntime; >1 runs the sharded
  /// multi-threaded runtime (src/parallel/); 0 means hardware
  /// concurrency. Ignored by the non-keyed CepRuntime.
  size_t num_threads = 1;
  /// Events per evaluation batch: the ProcessStream chunk size fed to
  /// Engine::OnBatch, and (keyed, sharded execution) the router batch
  /// size that amortizes shard-queue synchronization. Must be >= 1.
  /// Matches and counters are batch-size independent.
  size_t batch_size = 256;
  /// Ingestion source threads for KeyedCepRuntime::ProcessSourceAsync:
  /// sources are split into this many contiguous groups, one parsing
  /// thread each, feeding the timestamp-ordered merge. 0 (and any
  /// surplus over the source count) means one thread per source. The
  /// merged event sequence — and therefore the match set — is
  /// independent of this value. Ignored by the synchronous paths.
  size_t num_ingest_threads = 0;
  uint64_t seed = 7;
};

/// Single-query compatibility facade: a thin wrapper that registers one
/// unkeyed query with a private CepService and forwards the ingest
/// calls. Construction aborts on invalid options (the historical
/// contract); CepService::Register reports the same problems as Status.
///
///   StatsCollector collector(history, registry.size());
///   CollectingSink sink;
///   CepRuntime runtime(pattern, collector.CollectForPattern(pattern),
///                      {.algorithm = "DP-LD"}, &sink);
///   runtime.ProcessStream(live_stream);
///   runtime.Finish();
class CepRuntime {
 public:
  /// Simple pattern with pre-collected statistics.
  CepRuntime(const SimplePattern& pattern, const PatternStats& stats,
             const RuntimeOptions& options, MatchSink* sink);

  /// Nested pattern: DNF decomposition (Sec. 5.4), one plan and one
  /// sub-engine per conjunctive subpattern, union of matches.
  CepRuntime(const NestedPattern& pattern, const StatsCollector& collector,
             const RuntimeOptions& options, MatchSink* sink);

  void OnEvent(const EventPtr& e) { service_->OnEvent(e); }
  /// Feeds a run of events through the engine's batched path. Detection
  /// latency is anchored at batch granularity; matches and counters are
  /// identical to per-event feeding.
  void OnBatch(const EventPtr* events, size_t n) {
    service_->OnBatch(events, n);
  }
  void ProcessStream(const EventStream& stream) {
    service_->ProcessStream(stream);
  }
  void Finish() { service_->Finish(); }

  const EngineCounters& counters() const {
    return service_->UnkeyedCounters(handle_.id());
  }
  const std::vector<EnginePlan>& plans() const {
    return service_->UnkeyedPlans(handle_.id());
  }
  const std::vector<SimplePattern>& subpatterns() const {
    return service_->UnkeyedSubpatterns(handle_.id());
  }
  std::string DescribePlans() const;

  /// The underlying single-query service and handle, for callers
  /// migrating to the session API incrementally.
  CepService& service() { return *service_; }
  const QueryHandle& handle() const { return handle_; }

 private:
  std::unique_ptr<CepService> service_;
  QueryHandle handle_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_API_CEP_RUNTIME_H_
