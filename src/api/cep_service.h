#ifndef CEPJOIN_API_CEP_SERVICE_H_
#define CEPJOIN_API_CEP_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/partitioned_runtime.h"
#include "api/query_spec.h"
#include "common/status.h"
#include "engine/engine_factory.h"
#include "event/arena.h"
#include "event/partition_sequencer.h"
#include "event/retraction_ledger.h"
#include "event/stream.h"
#include "event/stream_source.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "parallel/ingest_pipeline.h"
#include "parallel/sharded_runtime.h"
#include "stats/collector.h"

namespace cepjoin {

class CepService;
class EngineStateWriter;

/// Construction-time configuration of a CepService. Validated by
/// CepService::Create (returned errors, no aborts).
struct ServiceOptions {
  /// Statistics source: a historical stream (the paper's preprocessing
  /// pass). Required for keyed queries (per-partition statistics) and
  /// for unkeyed queries registered without explicit stats. Must
  /// outlive Register() calls that consume it.
  const EventStream* history = nullptr;
  /// Registry size (number of event types). Required with `history`;
  /// also bounds the type ids a registered pattern may reference.
  size_t num_types = 0;
  /// Pre-built statistics collector, an alternative unkeyed stats
  /// source (takes precedence over `history` for unkeyed queries).
  /// Must outlive Register() calls that consume it.
  const StatsCollector* collector = nullptr;
  /// Worker threads for keyed queries: 1 runs each keyed query on a
  /// single-threaded PartitionedRuntime; any other value runs ALL keyed
  /// queries inside one sharded runtime (0 = hardware concurrency),
  /// where N queries cost one routing pass, not N.
  size_t num_threads = 1;
  /// Events per evaluation batch (ProcessStream chunking, router batch
  /// size, async merge run cap). Must be >= 1.
  size_t batch_size = 256;
  /// Ingestion source threads for ProcessSourceAsync (0 = one per
  /// source).
  size_t num_ingest_threads = 0;
  /// Seed for randomized plan generators when a QuerySpec sets none.
  uint64_t default_seed = 7;
  /// Transient-failure retries per StreamSource::Next call on the async
  /// ingest path and PumpAttachedSources: a source failing with
  /// StatusCode::kUnavailable (see StreamSource::error_code) is retried
  /// up to this many times with exponential backoff before the failure
  /// becomes final. 0 = fail fast (the pre-retry behavior). Retries are
  /// counted by cep_ingest_source_retries_total.
  size_t source_retry_limit = 0;
  /// Initial backoff before the first retry; doubles per attempt.
  std::chrono::milliseconds source_retry_backoff{10};
  /// Runtime observability (src/obs/): per-query match/latency/memory
  /// instruments, per-shard throughput, ingest watermarks — exported by
  /// MetricsSnapshot(). The instruments are striped relaxed atomics, so
  /// leaving this on costs low single-digit nanoseconds per event/match;
  /// turn it off to make MetricsSnapshot() return an empty snapshot and
  /// the ingest path skip its per-batch clock read.
  bool enable_metrics = true;
};

/// Reference to one registered query. Handles are small copyable values
/// tied to the service that issued them; the service must outlive every
/// handle. A default-constructed handle is invalid.
class QueryHandle {
 public:
  QueryHandle() = default;

  bool valid() const { return service_ != nullptr; }
  /// Id of the query within its service (stable, never reused).
  uint64_t id() const { return id_; }

  /// Stops feeding the query. Unkeyed and single-threaded keyed
  /// queries are finished immediately (trailing matches flush to the
  /// query's sink inline); sharded keyed queries are cut at the current
  /// routing position, finish as the workers pass the cut, and deliver
  /// their buffered matches at the service's Finish().
  Status Deregister();

  /// The query's counters. Unkeyed / single-threaded keyed: valid any
  /// time. Sharded keyed: FailedPrecondition until the service has
  /// finished (reading racing workers would return wrong data).
  StatusOr<EngineCounters> counters() const;

  /// The query's evaluation plans, one per DNF subpattern. Unkeyed
  /// queries only; keyed queries are planned per partition — use
  /// num_partitions()/PlanFor().
  StatusOr<std::vector<EnginePlan>> plans() const;

  /// Distinct partitions this keyed query has seen. Single-threaded:
  /// valid any time. Sharded: FailedPrecondition before the service
  /// has finished — the precondition is enforced, never silently
  /// answered with a stale or partial count.
  StatusOr<size_t> num_partitions() const;

  /// The plan serving one partition of a keyed query.
  StatusOr<EnginePlan> PlanFor(uint32_t partition) const;

 private:
  friend class CepService;
  QueryHandle(CepService* service, uint64_t id) : service_(service), id_(id) {}

  CepService* service_ = nullptr;
  uint64_t id_ = 0;
};

/// A long-lived CEP session hosting many concurrently registered
/// pattern queries over ONE shared ingest path — the deployment shape
/// the paper's evaluation assumes (many queries, one stream). Queries
/// are described declaratively (QuerySpec), registered and retired at
/// any point of the stream, and served per-query match streams,
/// counters, and plans through QueryHandle.
///
///   auto service = CepService::Create({.history = &history,
///                                      .num_types = registry.size(),
///                                      .num_threads = 4}).value();
///   auto handle = service->Register(QuerySpec::Simple(pattern)
///                                       .Keyed()
///                                       .WithAlgorithm("DP-LD")
///                                       .WithSink(&sink));
///   if (!handle.ok()) { /* bad spec: returned, not aborted */ }
///   service->ProcessStream(live);
///   service->Finish();
///
/// Execution: unkeyed queries run on per-query engines fed inline on
/// the ingest thread; keyed queries run per-partition, single-threaded
/// or inside one shared sharded runtime (options.num_threads) where N
/// queries cost one routing pass. Every query's match sequence and
/// counters are byte-identical to running it alone on the events
/// ingested while it was registered, at every thread count.
///
/// Thread-safety: the service is a single-caller facade — Register,
/// Remove, OnEvent/ProcessStream/ProcessSource*, and Finish must all be
/// invoked from one thread (or be externally serialized). The service
/// spawns threads internally (shard workers, ingest groups), but every
/// cross-thread edge lives behind the annotated BoundedQueue and the
/// registry's annotated mutex (obs/metrics.h); the service object
/// itself holds no lock for the linter's no-raw-mutex rule to find.
class CepService {
 public:
  /// Validates `options` (bad batch size, history without num_types)
  /// and builds an empty service.
  static StatusOr<std::unique_ptr<CepService>> Create(
      const ServiceOptions& options);

  ~CepService();
  CepService(const CepService&) = delete;
  CepService& operator=(const CepService&) = delete;

  /// Validates the spec and registers the query. All spec errors —
  /// unknown algorithm (the message lists KnownAlgorithms()), missing
  /// pattern or sink, keyed nested patterns, statistics/pattern
  /// dimension mismatches, type ids outside the service's registry —
  /// come back as InvalidArgument; nothing aborts. A query registered
  /// mid-stream sees exactly the events ingested after Register
  /// returns.
  StatusOr<QueryHandle> Register(const QuerySpec& spec);

  /// Deregisters by id; see QueryHandle::Deregister.
  Status Deregister(uint64_t query_id);

  // ---- shared ingest: every active query sees the same stream -------

  /// Feeds one event (timestamp order) to every active query.
  void OnEvent(const EventPtr& e);
  /// Feeds a run of events through every active query's batched path.
  void OnBatch(const EventPtr* events, size_t n);
  /// Replays a finite stream in batch_size chunks.
  void ProcessStream(const EventStream& stream);
  /// Async ingestion (parallel/ingest_pipeline.h): parses `sources` on
  /// dedicated threads, merges in timestamp order, and fans the merged
  /// runs to every active query. Blocks until the sources drain or one
  /// fails; the valid merged prefix has been evaluated either way.
  IngestResult ProcessSourceAsync(
      std::vector<std::unique_ptr<StreamSource>> sources);
  IngestResult ProcessSourceAsync(std::unique_ptr<StreamSource> source);

  // ---- durable ingest: attached sources with replayable positions ----

  /// Attaches a source to the service-owned ingest state (serial
  /// assignment, per-partition sequencing, retraction resolution). The
  /// attached sources are pulled by PumpAttachedSources on the caller's
  /// thread — the checkpointable alternative to ProcessSourceAsync: the
  /// per-source read positions are part of every checkpoint, and
  /// RestoreFrom seeks positional sources (StreamSource::supports_
  /// position) back to them, replaying exactly the un-checkpointed tail.
  /// Attach every source before the first pump.
  Status AttachSource(std::unique_ptr<StreamSource> source);
  size_t num_attached_sources() const { return attached_.size(); }

  /// Pulls up to `max_events` events from the attached sources, merged
  /// across sources in (timestamp, inserts-first, attach-order) order —
  /// the async pipeline's merge, run synchronously — and feeds them to
  /// every active query. Returns the number of events fed; 0 means all
  /// sources are exhausted. Source parse/validation failures surface as
  /// InvalidArgument (or Unavailable for transient failures after
  /// retries; see ServiceOptions::source_retry_limit) with the valid
  /// prefix already evaluated.
  StatusOr<size_t> PumpAttachedSources(
      size_t max_events = std::numeric_limits<size_t>::max());

  // ---- durability: checkpoint and restore ---------------------------

  /// Serializes the full engine state — every active query's windows,
  /// partial-match instances, counters, buffered sharded matches, and
  /// the attached sources' merge/read positions — into `out` as one
  /// deterministic payload (durable/snapshot_codec.h framing). The cut
  /// is consistent: everything ingested before the call is inside,
  /// nothing after. The service keeps running.
  Status CaptureCheckpointBytes(std::string* out);

  /// Captures (as CaptureCheckpointBytes) and publishes the result as
  /// the next checkpoint in `dir` via the crash-safe two-phase manifest
  /// protocol (durable/checkpoint_store.h). Creates `dir` if missing.
  Status CheckpointTo(const std::string& dir);

  struct RestoreReport {
    /// Sequence number of the checkpoint that was restored.
    uint64_t checkpoint_seq = 0;
    /// True when the newest checkpoint was corrupt and recovery fell
    /// back to the previous one; `detail` names the corruption. The
    /// fallback loses only the work since that older cut — tail replay
    /// from the restored source positions recovers the rest.
    bool fell_back = false;
    std::string detail;
  };

  /// Restores the newest valid checkpoint from `dir` into THIS service,
  /// which must be freshly created with the same options shape (thread
  /// class: 1 vs sharded) and the same queries registered in the same
  /// order, with the same attached sources. Positional sources are
  /// seeked to their recorded offsets so the next PumpAttachedSources
  /// replays the un-checkpointed tail; drained match sequences are then
  /// byte-identical to a run that never crashed. NotFound if `dir` or
  /// its manifest does not exist; DataLoss if no stored checkpoint
  /// verifies; FailedPrecondition if this service's registration
  /// sequence disagrees with the checkpoint's.
  StatusOr<RestoreReport> RestoreFrom(const std::string& dir);

  /// Ends the session: finishes every active query, joins the sharded
  /// workers, and drains each query's buffered matches to its sink.
  /// Idempotent. No ingest or registration is accepted afterwards.
  void Finish();

  // ---- introspection ------------------------------------------------

  /// One coherent view of every instrument: per-query event/match
  /// counters, ingest-to-match and detection latency histograms
  /// (HistogramData::Quantile gives p50/p99), exact per-(query,
  /// partition) memory bytes, dominant last-position gauges, per-shard
  /// throughput/queue depth, and ingest watermarks. Inline-fed memory
  /// gauges are refreshed on the way; sharded workers keep theirs
  /// current. Builds of CEPJOIN_DETAILED_METRICS also append the
  /// cep_stage_seconds drill-down histograms. Callable any time —
  /// mid-stream snapshots are racy-free but momentary; empty when the
  /// service was created with enable_metrics = false. Export with
  /// ToPrometheusText()/ToJson() (obs/export.h).
  cepjoin::MetricsSnapshot MetricsSnapshot();

  /// The registry backing MetricsSnapshot(); null when metrics are off.
  /// Exposed for callers that want to add their own instruments next to
  /// the runtime's.
  MetricsRegistry* metrics_registry() { return metrics_registry_.get(); }

  /// Queries currently fed by the ingest path.
  size_t num_active_queries() const;
  /// Total queries ever registered.
  size_t num_queries() const { return queries_.size(); }
  /// True once any keyed query runs on the shared sharded runtime.
  bool sharded() const { return sharded_ != nullptr; }
  /// Worker threads keyed queries execute on.
  size_t num_threads() const;
  bool finished() const { return finished_; }

  // Per-query accessors backing QueryHandle (see its documentation).
  StatusOr<EngineCounters> CountersOf(uint64_t query_id) const;
  StatusOr<std::vector<EnginePlan>> PlansOf(uint64_t query_id) const;
  StatusOr<size_t> NumPartitionsOf(uint64_t query_id) const;
  StatusOr<EnginePlan> PlanForPartitionOf(uint64_t query_id,
                                          uint32_t partition) const;

  // Wrapper support (CepRuntime): stable references into an unkeyed
  // query's state, valid while the service lives. Abort on unknown ids
  // or keyed queries — the wrappers own their single query.
  const std::vector<SimplePattern>& UnkeyedSubpatterns(
      uint64_t query_id) const;
  const std::vector<EnginePlan>& UnkeyedPlans(uint64_t query_id) const;
  const EngineCounters& UnkeyedCounters(uint64_t query_id) const;
  /// Forgets ServiceOptions::collector (wrapper support: the nested
  /// CepRuntime constructor hands in a caller-owned collector that only
  /// outlives construction; later registrations through service() must
  /// report "no statistics source" instead of dereferencing it).
  void DropExternalCollector() { options_.collector = nullptr; }

 private:
  struct QueryState {
    std::string name;
    bool keyed = false;
    bool active = false;
    // Exactly one evaluation host, by (keyed, num_threads):
    std::unique_ptr<Engine> engine;                   // unkeyed
    std::unique_ptr<PartitionedRuntime> partitioned;  // keyed, 1 thread
    uint64_t sharded_id = 0;                          // keyed, sharded
    bool uses_sharded = false;
    std::vector<SimplePattern> subpatterns;  // unkeyed
    std::vector<EnginePlan> plans;           // unkeyed
    std::unique_ptr<MatchSink> owned_sink;   // callback adapter, if any
    MatchSink* sink = nullptr;
    /// The query's instrument bundle (null = metrics off). Shared with
    /// the sharded workers for keyed sharded queries; recorded through
    /// `metrics_sink` (wrapping `sink`) on the inline paths.
    std::unique_ptr<QueryMetrics> metrics;
    std::unique_ptr<MatchSink> metrics_sink;
    /// The unkeyed query's counters. While the engine lives this is a
    /// cache refreshed on every read; once the engine is finished and
    /// released it is the final snapshot. Mutable so const accessors
    /// can refresh it — callers hold `const EngineCounters&` into this
    /// address-stable storage (std::map node), which must stay valid
    /// across Deregister()/Finish() like the legacy runtime's did.
    mutable EngineCounters counters;
    /// Watermarks of the inline-fed hosts' instance-kernel counters
    /// already folded into the registry (SyncCounterDelta): refreshed at
    /// MetricsSnapshot() and finalized when the query finishes. Sharded
    /// queries sync on the worker threads instead.
    uint64_t kernel_lanes_reported = 0;
    uint64_t kernel_blocks_reported = 0;
    /// Watermark of retractions_processed already folded into
    /// cep_query_retractions_total; same delta-sync discipline.
    uint64_t retractions_reported = 0;
  };

  explicit CepService(const ServiceOptions& options);

  Status ValidateSpec(const QuerySpec& spec) const;
  /// The unkeyed statistics source, building one from history on first
  /// use; null if the service has neither collector nor history.
  const StatsCollector* EffectiveCollector();
  /// Feeds one merged same-partition run to every active query (the
  /// async ingest consumer).
  void OnMergedRun(const EventPtr* run, size_t n);
  /// The shared dispatch of every ingest entry point: feeds the run to
  /// each active inline-fed query host.
  void FeedInline(const EventPtr* events, size_t n);
  const QueryState* Find(uint64_t query_id) const;
  /// Finishes an inline-fed (unkeyed or single-threaded keyed) query;
  /// unkeyed engines are released after snapshotting their counters.
  void FinishInlineQuery(QueryState& state);
  /// Folds an inline-fed query's instance-kernel counter growth into its
  /// registry counters. No-op for sharded queries (their workers sync)
  /// and when metrics are off.
  void SyncInlineKernelCounters(QueryState& state);
  /// Recomputes the active inline-fed host list after a lifecycle
  /// change, so per-event ingest never scans retired queries.
  void RebuildInlineFeeds();
  /// Refills one attached source's lookahead head, with transient-
  /// failure retries per ServiceOptions::source_retry_limit.
  Status RefillAttachedHead(size_t index);
  /// Serializes one inline-hosted query's engine state section.
  Status SaveQueryState(const QueryState& state, EngineStateWriter* w) const;

  struct AttachedSource {
    std::unique_ptr<StreamSource> source;
    /// 1-event lookahead of the k-way merge.
    Event head{};
    bool has_head = false;
    bool exhausted = false;
    /// The source's position BEFORE `head` was pulled: re-reading from
    /// here re-delivers `head` first, so checkpoints cut between pumps
    /// never drop the buffered lookahead.
    uint64_t head_position = 0;
    /// Monotonicity baseline (per-source timestamp order check).
    double last_ts = -std::numeric_limits<double>::infinity();
  };

  ServiceOptions options_;
  std::unique_ptr<MetricsRegistry> metrics_registry_;  // null = metrics off
  /// Ingest-to-match anchor of the batch currently feeding the inline
  /// queries: stamped once per FeedInline (one clock read per batch),
  /// read by every inline query's metrics sink, zeroed before
  /// Finish-time flushes (end-of-stream matches have no ingest anchor).
  std::chrono::steady_clock::time_point inline_batch_start_{};
  Counter* ingest_events_ = nullptr;   // null = metrics off
  Counter* ingest_batches_ = nullptr;  // null = metrics off
  std::unique_ptr<StatsCollector> own_collector_;
  std::map<uint64_t, QueryState> queries_;  // id order == registration order
  /// Active queries fed on the ingest thread (unkeyed engines and
  /// single-threaded keyed runtimes), in registration order. Pointers
  /// into queries_ (std::map nodes are address-stable); rebuilt on
  /// Register/Deregister/Finish.
  std::vector<QueryState*> inline_feeds_;
  uint64_t next_id_ = 0;
  std::unique_ptr<ShardedRuntime> sharded_;
  /// Durable ingest state (AttachSource/PumpAttachedSources): the
  /// service-owned twin of the async pipeline's merge state, kept here
  /// so checkpoints can carry it.
  std::vector<AttachedSource> attached_;
  uint64_t attached_next_serial_ = 0;
  PartitionSequencer attached_seq_;
  std::unique_ptr<RetractionLedger> attached_ledger_;
  EventArena attached_arena_;
  Counter* restores_total_ = nullptr;  // null = metrics off
  bool finished_ = false;
};

}  // namespace cepjoin

#endif  // CEPJOIN_API_CEP_SERVICE_H_
