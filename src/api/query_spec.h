#ifndef CEPJOIN_API_QUERY_SPEC_H_
#define CEPJOIN_API_QUERY_SPEC_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "pattern/nested.h"
#include "pattern/pattern.h"
#include "runtime/match.h"
#include "stats/statistics.h"

namespace cepjoin {

/// Declarative description of one pattern query to register with a
/// CepService, built fluently:
///
///   QuerySpec spec = QuerySpec::Simple(pattern)
///                        .WithAlgorithm("DP-LD")
///                        .WithLatencyAlpha(0.1)
///                        .Keyed()
///                        .WithSink(&sink);
///   StatusOr<QueryHandle> handle = service->Register(spec);
///
/// A spec is a plain value: nothing is validated until
/// CepService::Register, which returns a Status instead of aborting on
/// a bad spec (unknown algorithm, missing sink, spec/registry
/// mismatches, ...).
class QuerySpec {
 public:
  /// A query over one simple (conjunctive SEQ/AND) pattern.
  static QuerySpec Simple(SimplePattern pattern) {
    QuerySpec spec;
    spec.simple_.emplace(std::move(pattern));
    return spec;
  }

  /// A query over a nested SEQ/AND/OR pattern, evaluated by DNF
  /// decomposition (one plan and engine per alternative, union of
  /// matches). Unkeyed execution only.
  static QuerySpec Nested(NestedPattern pattern) {
    QuerySpec spec;
    spec.nested_.emplace(std::move(pattern));
    return spec;
  }

  /// Diagnostic label used in error messages and service listings.
  QuerySpec& WithName(std::string name) {
    name_ = std::move(name);
    return *this;
  }

  /// Plan-generation algorithm (KnownAlgorithms()). Default GREEDY.
  QuerySpec& WithAlgorithm(std::string algorithm) {
    algorithm_ = std::move(algorithm);
    return *this;
  }

  /// Throughput-latency trade-off weight alpha (Sec. 6.1); 0 optimizes
  /// throughput only. Must be finite and >= 0.
  QuerySpec& WithLatencyAlpha(double alpha) {
    latency_alpha_ = alpha;
    return *this;
  }

  /// Keyed (partition-contiguous) execution: the pattern is evaluated
  /// per partition, each partition planned against its own statistics
  /// from the service's history stream. Keyed queries run on the
  /// service's shared partition-routing pass; simple patterns only.
  QuerySpec& Keyed(bool keyed = true) {
    keyed_ = keyed;
    return *this;
  }

  /// Destination of this query's matches. Exactly one of WithSink /
  /// WithCallback must be set. The sink must outlive the service.
  QuerySpec& WithSink(MatchSink* sink) {
    sink_ = sink;
    return *this;
  }

  /// Callback alternative to WithSink; the service owns the adapter.
  QuerySpec& WithCallback(std::function<void(const Match&)> callback) {
    callback_ = std::move(callback);
    return *this;
  }

  /// Pre-collected plan-time statistics (simple unkeyed queries only;
  /// keyed queries derive per-partition statistics from the service's
  /// history). Must be sized to the pattern's positive slots.
  QuerySpec& WithStats(PatternStats stats) {
    stats_.emplace(std::move(stats));
    return *this;
  }

  /// Seed for randomized plan generators. Defaults to the service's
  /// default_seed.
  QuerySpec& WithSeed(uint64_t seed) {
    seed_.emplace(seed);
    return *this;
  }

  const std::optional<SimplePattern>& simple() const { return simple_; }
  const std::optional<NestedPattern>& nested() const { return nested_; }
  const std::string& name() const { return name_; }
  const std::string& algorithm() const { return algorithm_; }
  double latency_alpha() const { return latency_alpha_; }
  bool keyed() const { return keyed_; }
  MatchSink* sink() const { return sink_; }
  const std::function<void(const Match&)>& callback() const {
    return callback_;
  }
  const std::optional<PatternStats>& stats() const { return stats_; }
  const std::optional<uint64_t>& seed() const { return seed_; }

 private:
  QuerySpec() = default;

  std::optional<SimplePattern> simple_;
  std::optional<NestedPattern> nested_;
  std::string name_;
  std::string algorithm_ = "GREEDY";
  double latency_alpha_ = 0.0;
  bool keyed_ = false;
  MatchSink* sink_ = nullptr;
  std::function<void(const Match&)> callback_;
  std::optional<PatternStats> stats_;
  std::optional<uint64_t> seed_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_API_QUERY_SPEC_H_
