#include "api/cep_service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "obs/stage_timer.h"
#include "optimizer/registry.h"
#include "runtime/output_profiler.h"

namespace cepjoin {

namespace {

/// Adapts a QuerySpec callback to the MatchSink interface.
class CallbackSink : public MatchSink {
 public:
  explicit CallbackSink(std::function<void(const Match&)> callback)
      : callback_(std::move(callback)) {}
  void OnMatch(const Match& match) override { callback_(match); }

 private:
  std::function<void(const Match&)> callback_;
};

/// Inline-path metrics tee: forwards each match to the query's sink,
/// then records the full metrics bundle against the current inline
/// batch's ingest anchor (the service stamps `*batch_start` once per
/// FeedInline; a zero anchor — Finish-time flushes — skips the
/// ingest-to-match histogram).
class MatchMetricsSink : public MatchSink {
 public:
  MatchMetricsSink(MatchSink* inner, QueryMetrics* metrics,
                   const std::chrono::steady_clock::time_point* batch_start)
      : inner_(inner), metrics_(metrics), batch_start_(batch_start) {}
  void OnMatch(const Match& match) override {
    inner_->OnMatch(match);
    RecordMatchMetrics(metrics_, match, *batch_start_);
  }

 private:
  MatchSink* inner_;
  QueryMetrics* metrics_;
  const std::chrono::steady_clock::time_point* batch_start_;
};

/// Largest type id a pattern references, or -1 for none.
int64_t MaxTypeId(const SimplePattern& pattern) {
  int64_t max_type = -1;
  for (const EventSpec& spec : pattern.events()) {
    max_type = std::max<int64_t>(max_type, spec.type);
  }
  return max_type;
}

int64_t MaxTypeId(const PatternNode& node) {
  if (node.kind() == PatternNode::Kind::kLeaf) {
    return static_cast<int64_t>(node.spec().type);
  }
  int64_t max_type = -1;
  for (const auto& child : node.children()) {
    max_type = std::max(max_type, MaxTypeId(*child));
  }
  return max_type;
}

std::string SpecLabel(const QuerySpec& spec) {
  return spec.name().empty() ? std::string("query")
                             : "query '" + spec.name() + "'";
}

}  // namespace

// ---- QueryHandle ----------------------------------------------------------

Status QueryHandle::Deregister() {
  if (!valid()) return Status::FailedPrecondition("invalid (default) handle");
  return service_->Deregister(id_);
}

StatusOr<EngineCounters> QueryHandle::counters() const {
  if (!valid()) return Status::FailedPrecondition("invalid (default) handle");
  return service_->CountersOf(id_);
}

StatusOr<std::vector<EnginePlan>> QueryHandle::plans() const {
  if (!valid()) return Status::FailedPrecondition("invalid (default) handle");
  return service_->PlansOf(id_);
}

StatusOr<size_t> QueryHandle::num_partitions() const {
  if (!valid()) return Status::FailedPrecondition("invalid (default) handle");
  return service_->NumPartitionsOf(id_);
}

StatusOr<EnginePlan> QueryHandle::PlanFor(uint32_t partition) const {
  if (!valid()) return Status::FailedPrecondition("invalid (default) handle");
  return service_->PlanForPartitionOf(id_, partition);
}

// ---- CepService -----------------------------------------------------------

CepService::CepService(const ServiceOptions& options) : options_(options) {
  if (options_.enable_metrics) {
    metrics_registry_ = std::make_unique<MetricsRegistry>();
    ingest_events_ =
        metrics_registry_->GetCounter(metric_names::kIngestEvents);
    ingest_batches_ =
        metrics_registry_->GetCounter(metric_names::kIngestBatches);
    restores_total_ =
        metrics_registry_->GetCounter(metric_names::kRestoresTotal);
  }
}

CepService::~CepService() = default;

StatusOr<std::unique_ptr<CepService>> CepService::Create(
    const ServiceOptions& options) {
  if (options.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1, got " +
                                   std::to_string(options.batch_size));
  }
  if (options.history != nullptr && options.num_types == 0) {
    return Status::InvalidArgument(
        "num_types must be set (to the registry size) when a history "
        "stream is provided");
  }
  return std::unique_ptr<CepService>(new CepService(options));
}

const StatsCollector* CepService::EffectiveCollector() {
  if (options_.collector != nullptr) return options_.collector;
  if (options_.history == nullptr) return nullptr;
  if (own_collector_ == nullptr) {
    own_collector_ = std::make_unique<StatsCollector>(*options_.history,
                                                      options_.num_types);
  }
  return own_collector_.get();
}

Status CepService::ValidateSpec(const QuerySpec& spec) const {
  const std::string label = SpecLabel(spec);
  if (!spec.simple().has_value() && !spec.nested().has_value()) {
    return Status::InvalidArgument(
        label + " has no pattern; build the spec with QuerySpec::Simple "
                "or QuerySpec::Nested");
  }
  CEPJOIN_RETURN_IF_ERROR(ValidateAlgorithm(spec.algorithm()));
  if (spec.sink() == nullptr && !spec.callback()) {
    return Status::InvalidArgument(
        label + " has no match destination; set WithSink or WithCallback");
  }
  if (spec.sink() != nullptr && spec.callback()) {
    return Status::InvalidArgument(
        label + " sets both WithSink and WithCallback; choose one");
  }
  if (!std::isfinite(spec.latency_alpha()) || spec.latency_alpha() < 0.0) {
    return Status::InvalidArgument(label +
                                   " latency_alpha must be finite and >= 0");
  }
  if (spec.nested().has_value()) {
    if (spec.keyed()) {
      return Status::InvalidArgument(
          label + " is keyed: keyed execution supports simple patterns "
                  "only (nested patterns decompose into multiple engines "
                  "per partition; register the DNF alternatives as "
                  "separate keyed queries instead)");
    }
    if (spec.nested()->root == nullptr) {
      return Status::InvalidArgument(label + " nested pattern has no root");
    }
    if (spec.stats().has_value()) {
      return Status::InvalidArgument(
          label + " sets explicit stats on a nested pattern; statistics "
                  "are collected per DNF subpattern from the service's "
                  "collector or history");
    }
    if (options_.num_types > 0 &&
        MaxTypeId(*spec.nested()->root) >=
            static_cast<int64_t>(options_.num_types)) {
      return Status::InvalidArgument(
          label + " references type id " +
          std::to_string(MaxTypeId(*spec.nested()->root)) +
          " but the service registry has only " +
          std::to_string(options_.num_types) + " types");
    }
    if (options_.collector == nullptr && options_.history == nullptr) {
      return Status::InvalidArgument(
          label + " has no statistics source: create the service with a "
                  "history stream or collector (nested patterns cannot "
                  "use WithStats)");
    }
  }
  if (spec.keyed()) {
    if (spec.stats().has_value()) {
      return Status::InvalidArgument(
          label + " sets explicit stats on a keyed query; keyed queries "
                  "derive per-partition statistics from the service's "
                  "history stream");
    }
    if (options_.history == nullptr) {
      return Status::InvalidArgument(
          label + " is keyed but the service was created without a "
                  "history stream (ServiceOptions::history) to derive "
                  "per-partition statistics from");
    }
  }
  if (spec.simple().has_value()) {
    const SimplePattern& pattern = *spec.simple();
    if (pattern.delta_input() &&
        pattern.strategy() != SelectionStrategy::kSkipTillAny) {
      return Status::InvalidArgument(
          label + " sets WithDeltaInput under " +
          SelectionStrategyName(pattern.strategy()) +
          "; retractions are only defined for skip-till-any (pruning "
          "strategies make the surviving match set depend on events that "
          "may later be retracted)");
    }
    if (options_.num_types > 0 &&
        MaxTypeId(pattern) >= static_cast<int64_t>(options_.num_types)) {
      return Status::InvalidArgument(
          label + " references type id " + std::to_string(MaxTypeId(pattern)) +
          " but the service registry has only " +
          std::to_string(options_.num_types) + " types");
    }
    if (spec.stats().has_value() &&
        spec.stats()->size() != pattern.num_positive()) {
      return Status::InvalidArgument(
          label + " stats cover " + std::to_string(spec.stats()->size()) +
          " slots but the pattern has " +
          std::to_string(pattern.num_positive()) + " positive slots");
    }
    if (!spec.keyed() && !spec.stats().has_value() &&
        options_.collector == nullptr && options_.history == nullptr) {
      return Status::InvalidArgument(
          label + " has no statistics source: set QuerySpec::WithStats or "
                  "create the service with a history stream or collector");
    }
  }
  return Status::Ok();
}

StatusOr<QueryHandle> CepService::Register(const QuerySpec& spec) {
  if (finished_) {
    return Status::FailedPrecondition("Register after Finish");
  }
  CEPJOIN_RETURN_IF_ERROR(ValidateSpec(spec));

  QueryState state;
  state.name = spec.name();
  state.keyed = spec.keyed();
  if (spec.callback()) {
    state.owned_sink = std::make_unique<CallbackSink>(spec.callback());
    state.sink = state.owned_sink.get();
  } else {
    state.sink = spec.sink();
  }
  uint64_t seed = spec.seed().value_or(options_.default_seed);

  MatchSink* inline_sink = state.sink;
  if (metrics_registry_ != nullptr) {
    // One bundle per query, labelled by the (never reused) id —
    // next_id_ is only advanced on success, so the label matches the
    // handle's id. A user-given name rides along as a second label.
    MetricLabels labels{{"query", std::to_string(next_id_)}};
    if (!spec.name().empty()) labels.emplace_back("name", spec.name());
    state.metrics = std::make_unique<QueryMetrics>(metrics_registry_.get(),
                                                   std::move(labels));
    state.metrics_sink = std::make_unique<MatchMetricsSink>(
        state.sink, state.metrics.get(), &inline_batch_start_);
    inline_sink = state.metrics_sink.get();
  }

  if (spec.keyed()) {
    if (options_.num_threads == 1) {
      state.partitioned = std::make_unique<PartitionedRuntime>(
          *spec.simple(), *options_.history, options_.num_types,
          spec.algorithm(), inline_sink, seed, spec.latency_alpha(),
          options_.batch_size);
    } else {
      auto planner = std::make_unique<PartitionPlanner>(
          *spec.simple(), *options_.history, options_.num_types,
          spec.algorithm(), seed, spec.latency_alpha());
      if (sharded_ == nullptr) {
        ShardedOptions sharded_options;
        sharded_options.num_threads = options_.num_threads;
        sharded_options.batch_size = options_.batch_size;
        sharded_options.metrics = metrics_registry_.get();
        sharded_ = std::make_unique<ShardedRuntime>(sharded_options);
      }
      // The shard sinks record through the shared bundle themselves;
      // the query's raw sink receives the drained matches unwrapped.
      StatusOr<uint64_t> sharded_id =
          sharded_->AddQuery(std::move(planner), state.sink,
                             state.metrics.get());
      if (!sharded_id.ok()) return sharded_id.status();
      state.sharded_id = *sharded_id;
      state.uses_sharded = true;
    }
  } else {
    // Unkeyed: one plan and engine per DNF subpattern (a simple pattern
    // is its own single subpattern), fed inline on the ingest thread.
    if (spec.simple().has_value()) {
      state.subpatterns = {*spec.simple()};
    } else {
      state.subpatterns = ToDnf(*spec.nested());
      if (state.subpatterns.empty()) {
        return Status::InvalidArgument(SpecLabel(spec) +
                                       " nested pattern has no DNF "
                                       "alternatives");
      }
    }
    for (const SimplePattern& sub : state.subpatterns) {
      PatternStats stats = spec.stats().has_value()
                               ? *spec.stats()
                               : EffectiveCollector()->CollectForPattern(sub);
      CostFunction cost = MakeCostFunction(sub, stats, spec.latency_alpha());
      StatusOr<EnginePlan> plan = MakePlan(spec.algorithm(), cost, seed);
      if (!plan.ok()) return plan.status();
      state.plans.push_back(std::move(plan).value());
    }
    state.engine =
        state.subpatterns.size() == 1
            ? BuildEngine(state.subpatterns[0], state.plans[0], inline_sink)
            : BuildDnfEngine(state.subpatterns, state.plans, inline_sink);
  }

  state.active = true;
  uint64_t id = next_id_++;
  queries_.emplace(id, std::move(state));
  RebuildInlineFeeds();
  return QueryHandle(this, id);
}

void CepService::RebuildInlineFeeds() {
  inline_feeds_.clear();
  for (auto& [id, state] : queries_) {
    if (state.active && !state.uses_sharded) inline_feeds_.push_back(&state);
  }
}

void CepService::SyncInlineKernelCounters(QueryState& state) {
  if (state.metrics == nullptr) return;
  EngineCounters current;
  if (!state.keyed) {
    // While the engine lives, read it; afterwards the final snapshot in
    // state.counters keeps the totals exact.
    current = state.engine != nullptr ? state.engine->counters()
                                      : state.counters;
  } else if (state.partitioned != nullptr) {
    current = state.partitioned->TotalCounters();
  } else {
    return;  // sharded: the workers sync their own engines' deltas
  }
  SyncCounterDelta(state.metrics->instance_kernel_lanes,
                   current.instance_kernel_lanes,
                   &state.kernel_lanes_reported);
  SyncCounterDelta(state.metrics->instance_kernel_blocks,
                   current.instance_kernel_blocks,
                   &state.kernel_blocks_reported);
  SyncCounterDelta(state.metrics->retractions_total,
                   current.retractions_processed,
                   &state.retractions_reported);
}

void CepService::FinishInlineQuery(QueryState& state) {
  // Finish-time matches have no ingest anchor; zero it so the metrics
  // sink skips the ingest-to-match histogram for them.
  inline_batch_start_ = {};
  if (state.engine != nullptr) {
    state.engine->Finish();
    // Retired queries release their engines (and their buffered
    // windows) right away; the counters snapshot keeps serving
    // counters(), and the partitioned runtime's plan map keeps backing
    // num_partitions()/PlanFor().
    state.counters = state.engine->counters();
    state.engine.reset();
    // The released engine's footprint is gone; say so.
    if (state.metrics != nullptr) state.metrics->MemoryGauge()->Set(0.0);
  } else if (state.partitioned != nullptr) {
    state.partitioned->Finish();  // releases the partition engines
    if (state.metrics != nullptr) {
      for (uint32_t partition : state.partitioned->Partitions()) {
        state.metrics->MemoryGauge(partition)->Set(0.0);
      }
    }
  }
  // Fold in kernel work since the last snapshot (TotalCounters serves
  // the Finish-time snapshot for released partition engines).
  SyncInlineKernelCounters(state);
}

Status CepService::Deregister(uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound("unknown query id " + std::to_string(query_id));
  }
  if (finished_) {
    return Status::FailedPrecondition("Deregister after Finish");
  }
  QueryState& state = it->second;
  if (!state.active) {
    return Status::FailedPrecondition("query " + std::to_string(query_id) +
                                      " already deregistered");
  }
  if (state.uses_sharded) {
    CEPJOIN_RETURN_IF_ERROR(sharded_->RemoveQuery(state.sharded_id));
  } else {
    FinishInlineQuery(state);
  }
  state.active = false;
  RebuildInlineFeeds();
  return Status::Ok();
}

void CepService::FeedInline(const EventPtr* events, size_t n) {
  if (metrics_registry_ != nullptr && !inline_feeds_.empty()) {
    inline_batch_start_ = std::chrono::steady_clock::now();
  }
  for (QueryState* state : inline_feeds_) {
    if (state->metrics != nullptr) state->metrics->events_total->Inc(n);
    if (state->engine != nullptr) {
      state->engine->OnBatch(events, n);
    } else {
      state->partitioned->OnBatch(events, n);
    }
  }
}

void CepService::OnEvent(const EventPtr& e) {
  CEPJOIN_CHECK(!finished_) << "OnEvent after Finish";
  if (ingest_events_ != nullptr) {
    ingest_events_->Inc();
    ingest_batches_->Inc();
  }
  FeedInline(&e, 1);
  if (sharded_ != nullptr) sharded_->OnEvent(e);
}

void CepService::OnBatch(const EventPtr* events, size_t n) {
  CEPJOIN_CHECK(!finished_) << "OnBatch after Finish";
  if (ingest_events_ != nullptr) {
    ingest_events_->Inc(n);
    ingest_batches_->Inc();
  }
  FeedInline(events, n);
  if (sharded_ != nullptr) sharded_->OnBatch(events, n);
}

void CepService::ProcessStream(const EventStream& stream) {
  const std::vector<EventPtr>& events = stream.events();
  for (size_t i = 0; i < events.size(); i += options_.batch_size) {
    OnBatch(events.data() + i,
            std::min(options_.batch_size, events.size() - i));
  }
}

void CepService::OnMergedRun(const EventPtr* run, size_t n) {
  FeedInline(run, n);
  // Merged runs share one partition, so the sharded router hashes once.
  if (sharded_ != nullptr) sharded_->OnPartitionRun(run, n);
}

IngestResult CepService::ProcessSourceAsync(
    std::vector<std::unique_ptr<StreamSource>> sources) {
  CEPJOIN_CHECK(!finished_) << "ProcessSourceAsync after Finish";
  IngestOptions ingest;
  ingest.num_ingest_threads = options_.num_ingest_threads;
  ingest.chunk_size = options_.batch_size;
  ingest.source_retry_limit = options_.source_retry_limit;
  ingest.source_retry_backoff = options_.source_retry_backoff;
  // The pipeline owns the ingest throughput counters and watermark
  // gauges for this run (merged runs bypass OnBatch, so nothing double
  // counts).
  ingest.metrics = metrics_registry_.get();
  IngestPipeline pipeline(std::move(sources), ingest);
  return pipeline.Run(
      [this](const EventPtr* run, size_t n) { OnMergedRun(run, n); });
}

IngestResult CepService::ProcessSourceAsync(
    std::unique_ptr<StreamSource> source) {
  std::vector<std::unique_ptr<StreamSource>> sources;
  sources.push_back(std::move(source));
  return ProcessSourceAsync(std::move(sources));
}

void CepService::Finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& [id, state] : queries_) {
    if (!state.active) continue;
    if (!state.uses_sharded) FinishInlineQuery(state);
    state.active = false;
  }
  inline_feeds_.clear();
  // Joins the workers and drains every sharded query's buffered matches
  // (including mid-stream deregistered ones) to its sink.
  if (sharded_ != nullptr) sharded_->Finish();
}

cepjoin::MetricsSnapshot CepService::MetricsSnapshot() {
  if (metrics_registry_ == nullptr) return {};
  // Refresh the snapshot-time gauges: exact memory of the inline-fed
  // hosts (sharded workers keep their partitions' gauges current on
  // their own threads) and each query's dominant last position.
  for (auto& entry : queries_) {
    QueryState& state = entry.second;
    if (state.metrics == nullptr) continue;
    if (!state.keyed) {
      double bytes =
          state.engine != nullptr
              ? static_cast<double>(state.engine->counters().CurrentBytes())
              : 0.0;
      state.metrics->MemoryGauge()->Set(bytes);
    } else if (state.partitioned != nullptr) {
      QueryMetrics* metrics = state.metrics.get();
      state.partitioned->ForEachPartition(
          [metrics](uint32_t partition, const Engine& engine) {
            metrics->MemoryGauge(partition)->Set(
                static_cast<double>(engine.counters().CurrentBytes()));
          });
    }
    SyncInlineKernelCounters(state);
    int best = OutputProfiler::MostFrequent(state.metrics->LastPositionCounts());
    if (best >= 0) {
      metrics_registry_
          ->GetGauge(metric_names::kLastPosition, state.metrics->base_labels())
          ->Set(static_cast<double>(best));
    }
  }
  cepjoin::MetricsSnapshot snap = metrics_registry_->Snapshot();
#ifdef CEPJOIN_DETAILED_METRICS
  // Fold in the process-global stage-timer histograms and restore the
  // (name, labels) sort Snapshot() guarantees.
  cepjoin::MetricsSnapshot detailed = DetailedMetricsRegistry().Snapshot();
  for (MetricPoint& point : detailed.points) {
    snap.points.push_back(std::move(point));
  }
  std::sort(snap.points.begin(), snap.points.end(),
            [](const MetricPoint& a, const MetricPoint& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
#endif
  return snap;
}

size_t CepService::num_active_queries() const {
  size_t active = 0;
  for (const auto& [id, state] : queries_) {
    if (state.active) ++active;
  }
  return active;
}

size_t CepService::num_threads() const {
  return sharded_ != nullptr ? sharded_->num_threads()
                             : (options_.num_threads == 0 ? 0 : 1);
}

const CepService::QueryState* CepService::Find(uint64_t query_id) const {
  auto it = queries_.find(query_id);
  return it != queries_.end() ? &it->second : nullptr;
}

StatusOr<EngineCounters> CepService::CountersOf(uint64_t query_id) const {
  const QueryState* state = Find(query_id);
  if (state == nullptr) {
    return Status::NotFound("unknown query id " + std::to_string(query_id));
  }
  if (!state->keyed) return UnkeyedCounters(query_id);
  if (state->partitioned != nullptr) return state->partitioned->TotalCounters();
  return sharded_->CountersOf(state->sharded_id);
}

StatusOr<std::vector<EnginePlan>> CepService::PlansOf(
    uint64_t query_id) const {
  const QueryState* state = Find(query_id);
  if (state == nullptr) {
    return Status::NotFound("unknown query id " + std::to_string(query_id));
  }
  if (state->keyed) {
    return Status::FailedPrecondition(
        "keyed queries are planned per partition; use num_partitions() "
        "and PlanFor(partition)");
  }
  return state->plans;
}

StatusOr<size_t> CepService::NumPartitionsOf(uint64_t query_id) const {
  const QueryState* state = Find(query_id);
  if (state == nullptr) {
    return Status::NotFound("unknown query id " + std::to_string(query_id));
  }
  if (!state->keyed) {
    return Status::FailedPrecondition(
        "unkeyed queries have no partitions; use plans()");
  }
  if (state->partitioned != nullptr) return state->partitioned->num_partitions();
  return sharded_->NumPartitionsOf(state->sharded_id);
}

StatusOr<EnginePlan> CepService::PlanForPartitionOf(uint64_t query_id,
                                                    uint32_t partition) const {
  const QueryState* state = Find(query_id);
  if (state == nullptr) {
    return Status::NotFound("unknown query id " + std::to_string(query_id));
  }
  if (!state->keyed) {
    return Status::FailedPrecondition(
        "unkeyed queries have no per-partition plans; use plans()");
  }
  if (state->partitioned != nullptr) {
    const EnginePlan* plan = state->partitioned->FindPlan(partition);
    if (plan == nullptr) {
      return Status::NotFound("no events seen for partition " +
                              std::to_string(partition));
    }
    return *plan;
  }
  StatusOr<const EnginePlan*> plan =
      sharded_->PlanOf(state->sharded_id, partition);
  if (!plan.ok()) return plan.status();
  return **plan;
}

const std::vector<SimplePattern>& CepService::UnkeyedSubpatterns(
    uint64_t query_id) const {
  const QueryState* state = Find(query_id);
  CEPJOIN_CHECK(state != nullptr && !state->keyed);
  return state->subpatterns;
}

const std::vector<EnginePlan>& CepService::UnkeyedPlans(
    uint64_t query_id) const {
  const QueryState* state = Find(query_id);
  CEPJOIN_CHECK(state != nullptr && !state->keyed);
  return state->plans;
}

const EngineCounters& CepService::UnkeyedCounters(uint64_t query_id) const {
  const QueryState* state = Find(query_id);
  CEPJOIN_CHECK(state != nullptr && !state->keyed);
  // Always hand out the same address-stable storage: a reference taken
  // before Deregister()/Finish() released the engine must stay valid
  // (and final) afterwards, exactly like the legacy runtime's.
  if (state->engine != nullptr) state->counters = state->engine->counters();
  return state->counters;
}

}  // namespace cepjoin
