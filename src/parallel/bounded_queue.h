#ifndef CEPJOIN_PARALLEL_BOUNDED_QUEUE_H_
#define CEPJOIN_PARALLEL_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"

namespace cepjoin {

/// Bounded blocking MPSC/MPMC queue. Producers block when the queue is
/// full (back-pressure toward the router), the consumer blocks when it
/// is empty. Close() wakes everyone: further pushes are rejected, pops
/// drain the remaining items and then return false.
///
/// A mutex + two condition variables is deliberately boring: with
/// batched items (EventBatch of ~256 events) the lock is taken a couple
/// of thousand times per million events, so a lock-free ring would buy
/// nothing measurable while costing ThreadSanitizer its visibility.
/// The lock protocol is machine-checked (common/thread_annotations.h):
/// mu_ guards the deque and the closed flag, and every entry point
/// acquires it internally — callers must never hold it.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    CEPJOIN_CHECK(capacity_ > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room, then enqueues. Returns false (dropping
  /// the item) if the queue was closed — [[nodiscard]]: ignoring that
  /// silently loses the item.
  [[nodiscard]] bool Push(T item) CEPJOIN_EXCLUDES(mu_) {
    bool pushed = false;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      pushed = true;
    }
    // Notify outside the lock so the woken consumer never immediately
    // blocks on mu_ (same shape as the pre-annotation code).
    if (pushed) not_empty_.NotifyOne();
    return pushed;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained. Returns false only in the latter case — [[nodiscard]]:
  /// `out` is untouched then, so using it unchecked reads stale data.
  [[nodiscard]] bool Pop(T& out) CEPJOIN_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
      if (items_.empty()) return false;  // closed and drained
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return true;
  }

  /// Marks the queue closed. Idempotent. Blocked producers give up;
  /// the consumer drains what is queued and then sees end-of-stream.
  void Close() CEPJOIN_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const CEPJOIN_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const CEPJOIN_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ CEPJOIN_GUARDED_BY(mu_);
  const size_t capacity_;
  bool closed_ CEPJOIN_GUARDED_BY(mu_) = false;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PARALLEL_BOUNDED_QUEUE_H_
