#ifndef CEPJOIN_PARALLEL_BOUNDED_QUEUE_H_
#define CEPJOIN_PARALLEL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "common/check.h"

namespace cepjoin {

/// Bounded blocking MPSC/MPMC queue. Producers block when the queue is
/// full (back-pressure toward the router), the consumer blocks when it
/// is empty. Close() wakes everyone: further pushes are rejected, pops
/// drain the remaining items and then return false.
///
/// A mutex + two condition variables is deliberately boring: with
/// batched items (EventBatch of ~256 events) the lock is taken a couple
/// of thousand times per million events, so a lock-free ring would buy
/// nothing measurable while costing ThreadSanitizer its visibility.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    CEPJOIN_CHECK(capacity_ > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room, then enqueues. Returns false (dropping
  /// the item) if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained. Returns false only in the latter case.
  bool Pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Marks the queue closed. Idempotent. Blocked producers give up;
  /// the consumer drains what is queued and then sees end-of-stream.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PARALLEL_BOUNDED_QUEUE_H_
