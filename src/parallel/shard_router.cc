#include "parallel/shard_router.h"

#include <utility>

#include "common/check.h"

namespace cepjoin {

namespace {

// splitmix64 finalizer: full-avalanche mix so that the dense partition
// ids typical of keyed streams (vehicle 0, 1, 2, ...) do not all land on
// shard (id % num_shards) in lockstep.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

ShardRouter::ShardRouter(size_t num_shards, size_t batch_size,
                         size_t queue_capacity)
    : batch_size_(batch_size) {
  CEPJOIN_CHECK(num_shards > 0);
  CEPJOIN_CHECK(batch_size_ > 0);
  queues_.reserve(num_shards);
  pending_.resize(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    queues_.push_back(std::make_unique<BoundedQueue<EventBatch>>(
        queue_capacity));
    pending_[i].events.reserve(batch_size_);
  }
}

size_t ShardRouter::ShardOf(uint32_t partition) const {
  return static_cast<size_t>(Mix64(partition) % queues_.size());
}

void ShardRouter::Route(const EventPtr& e) {
  size_t shard = ShardOf(e->partition);
  if (stamp_ingest_time_ && pending_[shard].events.empty()) {
    pending_[shard].ingested_at = std::chrono::steady_clock::now();
  }
  pending_[shard].events.push_back(e);
  ++events_routed_;
  if (pending_[shard].events.size() >= batch_size_) Flush(shard);
}

void ShardRouter::RouteRun(const EventPtr* events, size_t n) {
  if (n == 0) return;
  size_t shard = ShardOf(events[0]->partition);
  // pending_ never resizes after construction, so the reference stays
  // valid across Flush (which swaps the element's contents).
  EventBatch& pending = pending_[shard];
  for (size_t i = 0; i < n; ++i) {
    CEPJOIN_CHECK_EQ(events[i]->partition, events[0]->partition)
        << "RouteRun requires a same-partition run";
    if (stamp_ingest_time_ && pending.events.empty()) {
      pending.ingested_at = std::chrono::steady_clock::now();
    }
    pending.events.push_back(events[i]);
    if (pending.events.size() >= batch_size_) Flush(shard);
  }
  events_routed_ += n;
}

void ShardRouter::Flush(size_t shard) {
  if (pending_[shard].empty()) return;
  EventBatch batch;
  batch.events.reserve(batch_size_);
  std::swap(batch, pending_[shard]);
  batch.queries = snapshot_;
  size_t batch_events = batch.events.size();
  if (queues_[shard]->Push(std::move(batch))) {
    ++batches_flushed_;
  } else {
    // Closed queue: the batch was dropped, not delivered — keep the
    // counters honest so events_routed() - events_dropped() reconciles
    // with the workers' events_processed.
    events_dropped_ += batch_events;
  }
}

void ShardRouter::FlushAll() {
  for (size_t shard = 0; shard < queues_.size(); ++shard) Flush(shard);
}

void ShardRouter::CloseAll() {
  FlushAll();
  for (auto& queue : queues_) queue->Close();
}

}  // namespace cepjoin
