#include "parallel/worker.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "event/partition_runs.h"

namespace cepjoin {

ShardWorker::ShardWorker(const PartitionPlanner* planner,
                         BoundedQueue<EventBatch>* queue,
                         ConcurrentMatchSink::ShardSink* sink)
    : planner_(planner), queue_(queue), sink_(sink) {
  CEPJOIN_CHECK(planner_ != nullptr);
  CEPJOIN_CHECK(queue_ != nullptr);
  CEPJOIN_CHECK(sink_ != nullptr);
}

ShardWorker::~ShardWorker() {
  if (thread_.joinable()) thread_.join();
}

void ShardWorker::Start() {
  CEPJOIN_CHECK(!thread_.joinable()) << "worker already started";
  thread_ = std::thread([this] { Run(); });
}

void ShardWorker::Join() {
  if (joined_) return;
  CEPJOIN_CHECK(thread_.joinable()) << "worker never started";
  thread_.join();
  joined_ = true;
}

ShardWorker::PartitionState& ShardWorker::StateFor(uint32_t partition) {
  auto it = states_.find(partition);
  if (it != states_.end()) return it->second;
  PartitionState state;
  state.plan = planner_->PlanFor(partition);
  state.engine = planner_->BuildEngineFor(state.plan, sink_);
  return states_.emplace(partition, std::move(state)).first->second;
}

void ShardWorker::Run() {
  EventBatch batch;
  while (queue_->Pop(batch)) {
    // Segment the batch into maximal runs of one partition and hand each
    // run to the engine's batched path: the engine lookup, the sink's
    // partition tag, and the OnBatch dispatch are paid once per run
    // instead of once per event. Runs preserve the batch's global
    // arrival order, so per-partition order is untouched; the router's
    // batch size already bounds run length.
    ForEachPartitionRun(batch.events.data(), batch.events.size(),
                        batch.events.size(),
                        [&](uint32_t partition, const EventPtr* run,
                            size_t run_length) {
                          PartitionState& state = StateFor(partition);
                          sink_->set_current_partition(partition);
                          state.engine->OnBatch(run, run_length);
                        });
    batch.events.clear();
  }
  // End of stream: finish engines in ascending partition order so
  // Finish-time matches of this shard are recorded deterministically.
  std::vector<uint32_t> partitions;
  partitions.reserve(states_.size());
  for (const auto& [partition, state] : states_) {
    partitions.push_back(partition);
  }
  std::sort(partitions.begin(), partitions.end());
  for (uint32_t partition : partitions) {
    sink_->set_current_partition(partition);
    states_.at(partition).engine->Finish();
  }
  EngineCounters total;
  for (uint32_t partition : partitions) {
    total.MergeDisjoint(states_.at(partition).engine->counters());
  }
  total_counters_ = total;
}

const EnginePlan* ShardWorker::PlanFor(uint32_t partition) const {
  auto it = states_.find(partition);
  return it != states_.end() ? &it->second.plan : nullptr;
}

}  // namespace cepjoin
