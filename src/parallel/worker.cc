#include "parallel/worker.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "durable/snapshot_codec.h"
#include "event/partition_runs.h"

namespace cepjoin {

ShardWorker::ShardWorker(BoundedQueue<EventBatch>* queue,
                         ConcurrentMatchSink::ShardSink* sink,
                         const ShardMetrics* metrics)
    : queue_(queue), sink_(sink), metrics_(metrics) {
  CEPJOIN_CHECK(queue_ != nullptr);
  CEPJOIN_CHECK(sink_ != nullptr);
}

ShardWorker::~ShardWorker() {
  if (thread_.joinable()) thread_.join();
}

void ShardWorker::Start() {
  CEPJOIN_CHECK(!thread_.joinable()) << "worker already started";
  thread_ = std::thread([this] { Run(); });
}

void ShardWorker::Join() {
  if (joined_) return;
  CEPJOIN_CHECK(thread_.joinable()) << "worker never started";
  thread_.join();
  joined_ = true;
}

ShardWorker::QueryState& ShardWorker::QueryStateFor(const ShardQuery& query) {
  auto it = queries_.find(query.id);
  if (it != queries_.end()) return it->second;
  QueryState state;
  state.planner = query.planner;
  state.metrics = query.metrics;
  return queries_.emplace(query.id, std::move(state)).first->second;
}

ShardWorker::PartitionState& ShardWorker::StateFor(QueryState& query,
                                                   uint32_t partition) {
  auto it = query.partitions.find(partition);
  if (it != query.partitions.end()) return it->second;
  PartitionState state;
  state.plan = query.planner->PlanFor(partition);
  state.engine = query.planner->BuildEngineFor(state.plan, sink_);
  if (query.metrics != nullptr) {
    // Registry mutex, but only on first sight of a (query, partition) —
    // the per-run gauge update below goes through this cached handle.
    state.memory = query.metrics->MemoryGauge(partition);
  }
  return query.partitions.emplace(partition, std::move(state)).first->second;
}

void ShardWorker::FinishQuery(uint64_t id, QueryState& state) {
  if (state.finished) return;
  // Ascending partition order, so Finish-time matches of this query on
  // this shard are recorded deterministically.
  std::vector<uint32_t> partitions;
  partitions.reserve(state.partitions.size());
  for (const auto& [partition, ps] : state.partitions) {
    partitions.push_back(partition);
  }
  std::sort(partitions.begin(), partitions.end());
  // Finish-time matches carry no ingest anchor (their "arrival" is the
  // end of stream, not a routed batch): clear the batch time so the
  // ingest-to-match histogram skips them while counts/detection still
  // record.
  sink_->set_batch_ingest_time({});
  for (uint32_t partition : partitions) {
    sink_->set_current(id, partition, state.metrics);
    state.partitions.at(partition).engine->Finish();
  }
  EngineCounters total;
  for (uint32_t partition : partitions) {
    total.MergeDisjoint(state.partitions.at(partition).engine->counters());
  }
  state.counters = total;
  state.finished = true;
  // Retired queries release their engines (and buffered windows) right
  // here on the worker thread; the plans stay for PlanFor(). The memory
  // gauges report the release: this (query, partition) is genuinely
  // back to zero resident bytes.
  for (uint32_t partition : partitions) {
    PartitionState& ps = state.partitions.at(partition);
    // Finish() itself never grows the kernel counters today, but the
    // final sync keeps the registry exact by construction either way.
    if (state.metrics != nullptr) {
      const EngineCounters& counters = ps.engine->counters();
      SyncCounterDelta(state.metrics->instance_kernel_lanes,
                       counters.instance_kernel_lanes,
                       &ps.kernel_lanes_reported);
      SyncCounterDelta(state.metrics->instance_kernel_blocks,
                       counters.instance_kernel_blocks,
                       &ps.kernel_blocks_reported);
      SyncCounterDelta(state.metrics->retractions_total,
                       counters.retractions_processed,
                       &ps.retractions_reported);
    }
    ps.engine.reset();
    if (ps.memory != nullptr) ps.memory->Set(0.0);
  }
}

void ShardWorker::FinishQueriesRemovedBy(const QuerySetSnapshot& next) {
  std::vector<uint64_t> removed;
  for (auto& [id, state] : queries_) {
    if (state.finished) continue;
    bool still_active = false;
    for (const ShardQuery& q : next.queries) {
      if (q.id == id) {
        still_active = true;
        break;
      }
    }
    if (!still_active) removed.push_back(id);
  }
  std::sort(removed.begin(), removed.end());
  for (uint64_t id : removed) FinishQuery(id, queries_.at(id));
}

void ShardWorker::Run() {
  EventBatch batch;
  while (queue_->Pop(batch)) {
    if (batch.control != nullptr) {
      // Checkpoint capture/restore runs here, on the worker thread, with
      // every earlier batch fully evaluated (FIFO queue order is the
      // synchronization; the caller blocks on a Notification inside the
      // callback's closure).
      (*batch.control)(this);
      batch.control.reset();
      continue;
    }
    if (metrics_ != nullptr) {
      metrics_->events_total->Inc(batch.events.size());
      metrics_->batches_total->Inc();
      metrics_->queue_depth->Set(static_cast<double>(queue_->size()));
    }
    if (batch.queries != nullptr && batch.queries != active_) {
      FinishQueriesRemovedBy(*batch.queries);
      active_ = batch.queries;
    }
    // Every match recorded while this batch evaluates is anchored to
    // the batch's router-entry time (zero when stamping is off).
    sink_->set_batch_ingest_time(batch.ingested_at);
    if (active_ != nullptr && !active_->queries.empty()) {
      // Segment the batch into maximal runs of one partition and hand
      // each run to every active query's engine over its batched path:
      // the queue pop, the segmentation, and the run bookkeeping are
      // paid once per run, not once per (run, query). Runs preserve the
      // batch's global arrival order, so per-partition order is
      // untouched for every query; the router's batch size already
      // bounds run length.
      ForEachPartitionRun(
          batch.events.data(), batch.events.size(), batch.events.size(),
          [&](uint32_t partition, const EventPtr* run, size_t run_length) {
            for (const ShardQuery& q : active_->queries) {
              PartitionState& state = StateFor(QueryStateFor(q), partition);
              sink_->set_current(q.id, partition, q.metrics);
              state.engine->OnBatch(run, run_length);
              if (q.metrics != nullptr) {
                const EngineCounters& counters = state.engine->counters();
                q.metrics->events_total->Inc(run_length);
                state.memory->Set(
                    static_cast<double>(counters.CurrentBytes()));
                SyncCounterDelta(q.metrics->instance_kernel_lanes,
                                 counters.instance_kernel_lanes,
                                 &state.kernel_lanes_reported);
                SyncCounterDelta(q.metrics->instance_kernel_blocks,
                                 counters.instance_kernel_blocks,
                                 &state.kernel_blocks_reported);
                SyncCounterDelta(q.metrics->retractions_total,
                                 counters.retractions_processed,
                                 &state.retractions_reported);
              }
            }
          });
    }
    batch.events.clear();
    batch.queries.reset();
  }
  // End of stream: finish the remaining queries in ascending id order so
  // Finish-time matches of this shard are recorded deterministically.
  std::vector<uint64_t> remaining;
  for (const auto& [id, state] : queries_) {
    if (!state.finished) remaining.push_back(id);
  }
  std::sort(remaining.begin(), remaining.end());
  for (uint64_t id : remaining) FinishQuery(id, queries_.at(id));
}

Status ShardWorker::CaptureState(std::vector<PartitionSnapshot>* partitions,
                                 std::string* sink_entries) {
  std::vector<uint64_t> ids;
  for (const auto& [id, state] : queries_) {
    if (!state.finished) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) {
    QueryState& state = queries_.at(id);
    std::vector<uint32_t> parts;
    parts.reserve(state.partitions.size());
    for (const auto& [partition, ps] : state.partitions) {
      parts.push_back(partition);
    }
    std::sort(parts.begin(), parts.end());
    for (uint32_t partition : parts) {
      EngineStateWriter w;
      CEPJOIN_RETURN_IF_ERROR(
          state.partitions.at(partition).engine->SaveState(&w));
      PartitionSnapshot snap;
      snap.query = id;
      snap.partition = partition;
      snap.engine_state = w.Finish();
      partitions->push_back(std::move(snap));
    }
  }
  EngineStateWriter sw;
  sink_->SaveEntries(&sw);
  *sink_entries = sw.Finish();
  return Status::Ok();
}

Status ShardWorker::RestoreState(
    std::shared_ptr<const QuerySetSnapshot> snapshot,
    const std::vector<const PartitionSnapshot*>& partitions,
    const std::vector<const std::string*>& sink_blobs,
    const std::unordered_map<uint64_t, uint64_t>& query_remap, size_t shard,
    const std::function<size_t(uint32_t)>& shard_of) {
  if (!queries_.empty()) {
    return Status::FailedPrecondition(
        "RestoreState requires a freshly started worker");
  }
  active_ = std::move(snapshot);
  for (const PartitionSnapshot* snap : partitions) {
    const ShardQuery* query = nullptr;
    if (active_ != nullptr) {
      for (const ShardQuery& q : active_->queries) {
        if (q.id == snap->query) {
          query = &q;
          break;
        }
      }
    }
    if (query == nullptr) {
      return Status::FailedPrecondition(
          "checkpoint carries state for query id " +
          std::to_string(snap->query) + " absent from the active query set");
    }
    PartitionState& state =
        StateFor(QueryStateFor(*query), snap->partition);
    EngineStateReader reader(snap->engine_state);
    CEPJOIN_RETURN_IF_ERROR(reader.Init());
    CEPJOIN_RETURN_IF_ERROR(state.engine->LoadState(&reader));
    const EngineCounters& counters = state.engine->counters();
    // The restored engine counters include pre-checkpoint work; start
    // the delta-sync watermarks there so this process's registry
    // counters report only work done after the restore (counters are
    // process-local; a restart is a counter reset either way).
    state.kernel_lanes_reported = counters.instance_kernel_lanes;
    state.kernel_blocks_reported = counters.instance_kernel_blocks;
    state.retractions_reported = counters.retractions_processed;
    if (state.memory != nullptr) {
      state.memory->Set(static_cast<double>(counters.CurrentBytes()));
    }
  }
  for (const std::string* blob : sink_blobs) {
    EngineStateReader reader(*blob);
    CEPJOIN_RETURN_IF_ERROR(reader.Init());
    CEPJOIN_RETURN_IF_ERROR(
        sink_->LoadEntries(&reader, shard, shard_of, query_remap));
  }
  return Status::Ok();
}

EngineCounters ShardWorker::CountersOf(uint64_t query) const {
  auto it = queries_.find(query);
  return it != queries_.end() ? it->second.counters : EngineCounters{};
}

size_t ShardWorker::NumPartitionsOf(uint64_t query) const {
  auto it = queries_.find(query);
  return it != queries_.end() ? it->second.partitions.size() : 0;
}

const EnginePlan* ShardWorker::PlanFor(uint64_t query,
                                       uint32_t partition) const {
  auto it = queries_.find(query);
  if (it == queries_.end()) return nullptr;
  auto pit = it->second.partitions.find(partition);
  return pit != it->second.partitions.end() ? &pit->second.plan : nullptr;
}

}  // namespace cepjoin
