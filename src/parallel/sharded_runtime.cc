#include "parallel/sharded_runtime.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"

namespace cepjoin {

namespace {

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

ShardedRuntime::ShardedRuntime(const ShardedOptions& options)
    : metrics_(options.metrics),
      router_(ResolveThreads(options.num_threads), options.batch_size,
              options.queue_capacity),
      concurrent_sink_(router_.num_shards()) {
  if (metrics_ != nullptr) {
    // Stamp each routed batch with its router-entry time: the anchor of
    // the ingest-to-match latency histograms. One clock read per batch.
    router_.set_stamp_ingest_time(true);
    shard_metrics_.reserve(router_.num_shards());
    for (size_t shard = 0; shard < router_.num_shards(); ++shard) {
      shard_metrics_.push_back(
          std::make_unique<ShardMetrics>(metrics_, shard));
    }
  }
  workers_.reserve(router_.num_shards());
  for (size_t shard = 0; shard < router_.num_shards(); ++shard) {
    workers_.push_back(std::make_unique<ShardWorker>(
        &router_.queue(shard), concurrent_sink_.shard(shard),
        metrics_ != nullptr ? shard_metrics_[shard].get() : nullptr));
  }
  try {
    for (auto& worker : workers_) worker->Start();
  } catch (...) {
    // Thread creation failed partway: close the queues so the workers
    // already started can exit, letting ~ShardWorker join them instead
    // of deadlocking on a never-closed queue.
    router_.CloseAll();
    throw;
  }
}

ShardedRuntime::ShardedRuntime(const SimplePattern& pattern,
                               const EventStream& history, size_t num_types,
                               const std::string& algorithm, MatchSink* sink,
                               const ShardedOptions& options, uint64_t seed,
                               double latency_alpha)
    : ShardedRuntime(options) {
  CEPJOIN_CHECK(sink != nullptr);
  // The legacy constructor promises a ready runtime or an abort; the
  // planner itself aborts on unknown algorithms, matching that contract.
  AddQuery(std::make_unique<PartitionPlanner>(pattern, history, num_types,
                                              algorithm, seed, latency_alpha),
           sink)
      .value();
}

ShardedRuntime::~ShardedRuntime() {
  // Release the workers even if the caller never called Finish();
  // buffered matches are dropped in that case, mirroring an engine
  // destroyed before Finish().
  router_.CloseAll();
  for (auto& worker : workers_) worker->Join();
}

StatusOr<uint64_t> ShardedRuntime::AddQuery(
    std::unique_ptr<PartitionPlanner> planner, MatchSink* sink) {
  return AddQuery(std::move(planner), sink, nullptr);
}

StatusOr<uint64_t> ShardedRuntime::AddQuery(
    std::unique_ptr<PartitionPlanner> planner, MatchSink* sink,
    QueryMetrics* metrics) {
  CEPJOIN_CHECK(planner != nullptr);
  CEPJOIN_CHECK(sink != nullptr);
  if (finished_) {
    return Status::FailedPrecondition("AddQuery after Finish");
  }
  uint64_t id = next_query_id_++;
  QueryEntry entry;
  entry.planner = std::move(planner);
  entry.sink = sink;
  entry.active = true;
  if (metrics_ != nullptr) {
    if (metrics != nullptr) {
      entry.metrics = metrics;
    } else {
      entry.owned_metrics = std::make_unique<QueryMetrics>(
          metrics_, MetricLabels{{"query", std::to_string(id)}});
      entry.metrics = entry.owned_metrics.get();
    }
  }
  queries_.emplace(id, std::move(entry));
  PublishSnapshot();
  return id;
}

Status ShardedRuntime::RemoveQuery(uint64_t query) {
  auto it = queries_.find(query);
  if (it == queries_.end()) {
    return Status::NotFound("unknown query id " + std::to_string(query));
  }
  if (finished_) {
    return Status::FailedPrecondition("RemoveQuery after Finish");
  }
  if (!it->second.active) {
    return Status::FailedPrecondition("query " + std::to_string(query) +
                                      " already removed");
  }
  it->second.active = false;
  PublishSnapshot();
  return Status::Ok();
}

void ShardedRuntime::PublishSnapshot() {
  // Events routed so far must be evaluated under the set that was
  // active when they arrived: flush them under the old snapshot before
  // stamping the new one.
  router_.FlushAll();
  auto snapshot = std::make_shared<QuerySetSnapshot>();
  snapshot->epoch = ++epoch_;
  for (const auto& [id, entry] : queries_) {
    if (!entry.active) continue;
    ShardQuery q;
    q.id = id;
    q.planner = entry.planner.get();
    q.metrics = entry.metrics;
    snapshot->queries.push_back(q);
  }
  snapshot_ = snapshot;
  router_.set_query_snapshot(std::move(snapshot));
}

Status ShardedRuntime::RunOnWorker(
    size_t shard, const std::function<void(ShardWorker*)>& fn) {
  Notification done;
  EventBatch batch;
  batch.control = std::make_shared<const std::function<void(ShardWorker*)>>(
      [&fn, &done](ShardWorker* worker) {
        fn(worker);
        done.Notify();
      });
  if (!router_.queue(shard).Push(std::move(batch))) {
    return Status::FailedPrecondition("shard queue closed");
  }
  // The Notification's mutex publishes everything the callback wrote
  // (the captured snapshot / restored engines) to this thread.
  done.WaitForNotification();
  return Status::Ok();
}

Status ShardedRuntime::CaptureCheckpoint(ShardedCheckpoint* out) {
  CEPJOIN_CHECK(out != nullptr);
  if (finished_) {
    return Status::FailedPrecondition("CaptureCheckpoint after Finish");
  }
  // Events buffered in the router must be inside the cut: push them to
  // the queues ahead of our control batches.
  router_.FlushAll();
  out->partitions.clear();
  out->sink_blobs.clear();
  out->sink_blobs.reserve(workers_.size());
  Status capture = Status::Ok();
  for (size_t shard = 0; shard < workers_.size(); ++shard) {
    std::string sink_blob;
    CEPJOIN_RETURN_IF_ERROR(RunOnWorker(shard, [&](ShardWorker* worker) {
      Status s = worker->CaptureState(&out->partitions, &sink_blob);
      if (capture.ok() && !s.ok()) capture = s;
    }));
    out->sink_blobs.push_back(std::move(sink_blob));
  }
  return capture;
}

Status ShardedRuntime::RestoreCheckpoint(
    const ShardedCheckpoint& checkpoint,
    const std::unordered_map<uint64_t, uint64_t>& query_remap) {
  if (finished_) {
    return Status::FailedPrecondition("RestoreCheckpoint after Finish");
  }
  if (router_.events_routed() != 0) {
    return Status::FailedPrecondition(
        "RestoreCheckpoint requires a runtime that has not routed events");
  }
  // Group the engine blobs by the shard owning each partition HERE —
  // this is where a checkpoint cut at 4 threads redistributes onto 2.
  std::vector<std::vector<const PartitionSnapshot*>> by_shard(workers_.size());
  for (const PartitionSnapshot& snap : checkpoint.partitions) {
    by_shard[router_.ShardOf(snap.partition)].push_back(&snap);
  }
  std::vector<const std::string*> sink_blobs;
  sink_blobs.reserve(checkpoint.sink_blobs.size());
  for (const std::string& blob : checkpoint.sink_blobs) {
    sink_blobs.push_back(&blob);
  }
  const std::function<size_t(uint32_t)> shard_of =
      [this](uint32_t partition) { return router_.ShardOf(partition); };
  Status restore = Status::Ok();
  for (size_t shard = 0; shard < workers_.size(); ++shard) {
    CEPJOIN_RETURN_IF_ERROR(RunOnWorker(shard, [&, shard](ShardWorker* w) {
      Status s = w->RestoreState(snapshot_, by_shard[shard], sink_blobs,
                                 query_remap, shard, shard_of);
      if (restore.ok() && !s.ok()) restore = s;
    }));
  }
  return restore;
}

void ShardedRuntime::OnEvent(const EventPtr& e) {
  CEPJOIN_CHECK(!finished_) << "OnEvent after Finish";
  router_.Route(e);
}

void ShardedRuntime::OnBatch(const EventPtr* events, size_t n) {
  CEPJOIN_CHECK(!finished_) << "OnBatch after Finish";
  for (size_t i = 0; i < n; ++i) router_.Route(events[i]);
}

void ShardedRuntime::OnPartitionRun(const EventPtr* events, size_t n) {
  CEPJOIN_CHECK(!finished_) << "OnPartitionRun after Finish";
  router_.RouteRun(events, n);
}

void ShardedRuntime::ProcessStream(const EventStream& stream) {
  OnBatch(stream.events().data(), stream.size());
}

void ShardedRuntime::Finish() {
  if (finished_) return;
  finished_ = true;
  router_.CloseAll();
  for (auto& worker : workers_) worker->Join();
  concurrent_sink_.DrainPerQuery([this](uint64_t query) -> MatchSink* {
    auto it = queries_.find(query);
    return it != queries_.end() ? it->second.sink : nullptr;
  });
}

StatusOr<size_t> ShardedRuntime::NumPartitionsOf(uint64_t query) const {
  if (queries_.find(query) == queries_.end()) {
    return Status::NotFound("unknown query id " + std::to_string(query));
  }
  if (!finished_) {
    // Reading worker state while workers still run would be a data
    // race, and a partial count would be silently wrong anyway.
    return Status::FailedPrecondition(
        "NumPartitionsOf before Finish: partition counts are only "
        "complete once the workers have been joined");
  }
  size_t total = 0;
  for (const auto& worker : workers_) total += worker->NumPartitionsOf(query);
  return total;
}

StatusOr<EngineCounters> ShardedRuntime::CountersOf(uint64_t query) const {
  if (queries_.find(query) == queries_.end()) {
    return Status::NotFound("unknown query id " + std::to_string(query));
  }
  if (!finished_) {
    return Status::FailedPrecondition("CountersOf before Finish");
  }
  EngineCounters total;
  for (const auto& worker : workers_) {
    total.MergeDisjoint(worker->CountersOf(query));
  }
  return total;
}

StatusOr<const EnginePlan*> ShardedRuntime::PlanOf(uint64_t query,
                                                   uint32_t partition) const {
  if (queries_.find(query) == queries_.end()) {
    return Status::NotFound("unknown query id " + std::to_string(query));
  }
  if (!finished_) {
    return Status::FailedPrecondition("PlanOf before Finish");
  }
  size_t shard = router_.ShardOf(partition);
  const EnginePlan* plan = workers_[shard]->PlanFor(query, partition);
  if (plan == nullptr) {
    return Status::NotFound("no events seen for partition " +
                            std::to_string(partition));
  }
  return plan;
}

uint64_t ShardedRuntime::SoleQueryId() const {
  CEPJOIN_CHECK_EQ(queries_.size(), 1u)
      << "single-query accessor on a multi-query runtime";
  return queries_.begin()->first;
}

size_t ShardedRuntime::num_partitions() const {
  CEPJOIN_CHECK(finished_) << "num_partitions before Finish";
  return NumPartitionsOf(SoleQueryId()).value();
}

const EnginePlan& ShardedRuntime::PlanFor(uint32_t partition) const {
  CEPJOIN_CHECK(finished_) << "PlanFor before Finish";
  StatusOr<const EnginePlan*> plan = PlanOf(SoleQueryId(), partition);
  CEPJOIN_CHECK(plan.ok()) << plan.status().ToString();
  return **plan;
}

EngineCounters ShardedRuntime::TotalCounters() const {
  CEPJOIN_CHECK(finished_) << "TotalCounters before Finish";
  return CountersOf(SoleQueryId()).value();
}

}  // namespace cepjoin
