#include "parallel/sharded_runtime.h"

#include <algorithm>
#include <thread>

#include "common/check.h"

namespace cepjoin {

namespace {

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

ShardedRuntime::ShardedRuntime(const SimplePattern& pattern,
                               const EventStream& history, size_t num_types,
                               const std::string& algorithm, MatchSink* sink,
                               const ShardedOptions& options, uint64_t seed,
                               double latency_alpha)
    : planner_(pattern, history, num_types, algorithm, seed, latency_alpha),
      sink_(sink),
      router_(ResolveThreads(options.num_threads), options.batch_size,
              options.queue_capacity),
      concurrent_sink_(router_.num_shards()) {
  CEPJOIN_CHECK(sink_ != nullptr);
  workers_.reserve(router_.num_shards());
  for (size_t shard = 0; shard < router_.num_shards(); ++shard) {
    workers_.push_back(std::make_unique<ShardWorker>(
        &planner_, &router_.queue(shard), concurrent_sink_.shard(shard)));
  }
  try {
    for (auto& worker : workers_) worker->Start();
  } catch (...) {
    // Thread creation failed partway: close the queues so the workers
    // already started can exit, letting ~ShardWorker join them instead
    // of deadlocking on a never-closed queue.
    router_.CloseAll();
    throw;
  }
}

ShardedRuntime::~ShardedRuntime() {
  // Release the workers even if the caller never called Finish();
  // buffered matches are dropped in that case, mirroring an engine
  // destroyed before Finish().
  router_.CloseAll();
  for (auto& worker : workers_) worker->Join();
}

void ShardedRuntime::OnEvent(const EventPtr& e) {
  CEPJOIN_CHECK(!finished_) << "OnEvent after Finish";
  router_.Route(e);
}

void ShardedRuntime::OnBatch(const EventPtr* events, size_t n) {
  CEPJOIN_CHECK(!finished_) << "OnBatch after Finish";
  for (size_t i = 0; i < n; ++i) router_.Route(events[i]);
}

void ShardedRuntime::OnPartitionRun(const EventPtr* events, size_t n) {
  CEPJOIN_CHECK(!finished_) << "OnPartitionRun after Finish";
  router_.RouteRun(events, n);
}

void ShardedRuntime::ProcessStream(const EventStream& stream) {
  OnBatch(stream.events().data(), stream.size());
}

void ShardedRuntime::Finish() {
  if (finished_) return;
  finished_ = true;
  router_.CloseAll();
  for (auto& worker : workers_) worker->Join();
  concurrent_sink_.DrainTo(sink_);
}

size_t ShardedRuntime::num_partitions() const {
  // Reading worker state while workers still run would be a data race.
  CEPJOIN_CHECK(finished_) << "num_partitions before Finish";
  size_t total = 0;
  for (const auto& worker : workers_) total += worker->num_partitions();
  return total;
}

const EnginePlan& ShardedRuntime::PlanFor(uint32_t partition) const {
  CEPJOIN_CHECK(finished_) << "PlanFor before Finish";
  size_t shard = router_.ShardOf(partition);
  const EnginePlan* plan = workers_[shard]->PlanFor(partition);
  CEPJOIN_CHECK(plan != nullptr)
      << "no events seen for partition " << partition;
  return *plan;
}

EngineCounters ShardedRuntime::TotalCounters() const {
  CEPJOIN_CHECK(finished_) << "TotalCounters before Finish";
  EngineCounters total;
  for (const auto& worker : workers_) {
    total.MergeDisjoint(worker->counters());
  }
  return total;
}

}  // namespace cepjoin
