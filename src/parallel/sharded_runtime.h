#ifndef CEPJOIN_PARALLEL_SHARDED_RUNTIME_H_
#define CEPJOIN_PARALLEL_SHARDED_RUNTIME_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/partition_planner.h"
#include "event/stream.h"
#include "parallel/concurrent_sink.h"
#include "parallel/event_batch.h"
#include "parallel/shard_router.h"
#include "parallel/worker.h"
#include "runtime/match.h"

namespace cepjoin {

/// Tuning knobs of the sharded execution layer.
struct ShardedOptions {
  /// Worker threads (shards). 0 means std::thread::hardware_concurrency.
  size_t num_threads = 0;
  /// Events per routed batch (amortizes queue synchronization).
  size_t batch_size = kDefaultBatchSize;
  /// Queue depth per shard, in batches (bounds in-flight memory and
  /// applies back-pressure to the ingestion thread).
  size_t queue_capacity = ShardRouter::kDefaultQueueCapacity;
};

/// Multi-threaded scale-out of PartitionedRuntime (Sec. 6.2 partition
/// contiguity): partition-local matching is embarrassingly parallel, so
/// events are hash-routed by partition key to N shard workers, each
/// owning its partitions' per-partition plans and engines. Workers are
/// fed through bounded batch queues; matches funnel into a
/// ConcurrentMatchSink whose drain step replays them into the caller's
/// sink in a canonical, thread-count-independent order.
///
/// Guarantees, for any keyed stream and any thread count:
///  - plans are identical to PartitionedRuntime's (shared
///    PartitionPlanner, same statistics, same seed);
///  - the drained match set is identical to PartitionedRuntime's on the
///    same stream (per-partition event order is preserved end-to-end);
///  - summed counters (events_processed, matches_emitted, ...) are
///    identical to PartitionedRuntime::TotalCounters().
///
/// Threading model: the caller's thread ingests (OnEvent/ProcessStream)
/// and routes; workers evaluate; Finish() closes the queues, joins the
/// workers, and drains matches into the caller's sink on the caller's
/// thread — so the downstream MatchSink needs no synchronization.
class ShardedRuntime {
 public:
  ShardedRuntime(const SimplePattern& pattern, const EventStream& history,
                 size_t num_types, const std::string& algorithm,
                 MatchSink* sink, const ShardedOptions& options = {},
                 uint64_t seed = 7, double latency_alpha = 0.0);
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  /// Routes one event. Events must arrive in timestamp order, exactly as
  /// with the single-threaded runtimes. Must not be called after
  /// Finish().
  void OnEvent(const EventPtr& e);
  /// Routes a run of events. The router accumulates per-shard batches
  /// either way; this only amortizes the facade call.
  void OnBatch(const EventPtr* events, size_t n);
  /// Routes a run of events known to share one partition (the shape the
  /// async ingest pipeline emits); hashes once per run instead of per
  /// event. Same ordering contract as OnEvent.
  void OnPartitionRun(const EventPtr* events, size_t n);
  void ProcessStream(const EventStream& stream);

  /// Flushes pending batches, signals end-of-stream, joins all workers,
  /// and drains matches into the caller's sink in canonical order.
  /// Idempotent.
  void Finish();

  size_t num_threads() const { return workers_.size(); }
  /// Distinct partitions seen across all workers. Valid after Finish().
  size_t num_partitions() const;
  /// The plan serving one partition; aborts if the partition is unknown.
  /// Valid after Finish().
  const EnginePlan& PlanFor(uint32_t partition) const;
  /// Counters aggregated across all workers' partition engines. Valid
  /// after Finish().
  EngineCounters TotalCounters() const;

  /// Events routed so far.
  uint64_t events_routed() const { return router_.events_routed(); }

 private:
  PartitionPlanner planner_;
  MatchSink* sink_;
  ShardRouter router_;
  ConcurrentMatchSink concurrent_sink_;
  std::vector<std::unique_ptr<ShardWorker>> workers_;
  bool finished_ = false;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PARALLEL_SHARDED_RUNTIME_H_
