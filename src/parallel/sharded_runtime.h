#ifndef CEPJOIN_PARALLEL_SHARDED_RUNTIME_H_
#define CEPJOIN_PARALLEL_SHARDED_RUNTIME_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "adaptive/partition_planner.h"
#include "common/status.h"
#include "event/stream.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "parallel/concurrent_sink.h"
#include "parallel/event_batch.h"
#include "parallel/query_set.h"
#include "parallel/shard_checkpoint.h"
#include "parallel/shard_router.h"
#include "parallel/worker.h"
#include "runtime/match.h"

namespace cepjoin {

/// Tuning knobs of the sharded execution layer.
struct ShardedOptions {
  /// Worker threads (shards). 0 means std::thread::hardware_concurrency.
  size_t num_threads = 0;
  /// Events per routed batch (amortizes queue synchronization).
  size_t batch_size = kDefaultBatchSize;
  /// Queue depth per shard, in batches (bounds in-flight memory and
  /// applies back-pressure to the ingestion thread).
  size_t queue_capacity = ShardRouter::kDefaultQueueCapacity;
  /// Observability registry (not owned, may be null = metrics off).
  /// When set, the runtime registers per-shard throughput/queue-depth
  /// instruments, stamps routed batches with their ingest time, and
  /// gives each query a QueryMetrics bundle (labelled query=<id> unless
  /// AddQuery supplies one) recording match counts, ingest-to-match and
  /// detection latency histograms, per-partition memory gauges, and
  /// per-last-position match counters.
  MetricsRegistry* metrics = nullptr;
};

/// Multi-threaded scale-out of PartitionedRuntime (Sec. 6.2 partition
/// contiguity), hosting any number of concurrently registered queries
/// over ONE shared routing pass: partition-local matching is
/// embarrassingly parallel, so events are hash-routed by partition key
/// to N shard workers, each owning, per query, its partitions'
/// per-partition plans and engines. Workers are fed through bounded
/// batch queues; matches funnel into a ConcurrentMatchSink whose drain
/// step replays them into each query's sink in a canonical,
/// thread-count-independent order.
///
/// Guarantees, for any keyed stream, any thread count, and any set of
/// registered queries:
///  - plans are identical to PartitionedRuntime's (shared
///    PartitionPlanner, same statistics, same seed);
///  - each query's drained match sequence is identical to running that
///    query alone on the events routed while it was registered (batches
///    carry query-set snapshots, so mid-stream AddQuery/RemoveQuery cut
///    the stream at a deterministic event boundary);
///  - each query's summed counters are identical to
///    PartitionedRuntime::TotalCounters() on its sub-stream.
///
/// Threading model: the caller's thread ingests (OnEvent/ProcessStream),
/// routes, and registers/removes queries; workers evaluate; Finish()
/// closes the queues, joins the workers, and drains matches into the
/// per-query sinks on the caller's thread — so downstream MatchSinks
/// need no synchronization. All cross-thread hand-off funnels through
/// the annotated BoundedQueue (parallel/bounded_queue.h) and the
/// lock-free metric instruments; the runtime itself holds no mutex and
/// its members are confined to the ingest thread.
class ShardedRuntime {
 public:
  /// Multi-query runtime with no queries yet; use AddQuery().
  explicit ShardedRuntime(const ShardedOptions& options);

  /// Single-query convenience (the pre-service API): plans `pattern`
  /// against per-partition statistics from `history` and registers it
  /// with `sink`. Aborts on an unknown algorithm, matching the legacy
  /// constructors; the service path validates names first.
  ShardedRuntime(const SimplePattern& pattern, const EventStream& history,
                 size_t num_types, const std::string& algorithm,
                 MatchSink* sink, const ShardedOptions& options = {},
                 uint64_t seed = 7, double latency_alpha = 0.0);
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  /// Registers a query: later-routed events feed it, earlier ones do
  /// not (the cut is exact — pending router batches are flushed first).
  /// Returns the query's id within this runtime. The planner must be
  /// non-null; `sink` receives the query's matches at Finish().
  StatusOr<uint64_t> AddQuery(std::unique_ptr<PartitionPlanner> planner,
                              MatchSink* sink);

  /// As above, but records the query's pipeline metrics through
  /// `metrics` (not owned; must outlive the runtime) instead of a
  /// runtime-owned bundle labelled by the numeric id — this is how
  /// CepService shares ONE bundle between a query's inline and sharded
  /// paths. Ignored (treated as the plain overload) when the runtime
  /// was built without a registry.
  StatusOr<uint64_t> AddQuery(std::unique_ptr<PartitionPlanner> planner,
                              MatchSink* sink, QueryMetrics* metrics);

  /// Deregisters a query: events routed after this call do not feed it,
  /// its engines are finished (flushing trailing-negation matches) as
  /// the workers pass the cut, and its buffered matches are delivered
  /// to its sink at Finish(). Counters/partition accessors for the
  /// query become valid after Finish().
  Status RemoveQuery(uint64_t query);

  /// Routes one event. Events must arrive in timestamp order, exactly as
  /// with the single-threaded runtimes. Must not be called after
  /// Finish().
  void OnEvent(const EventPtr& e);
  /// Routes a run of events. The router accumulates per-shard batches
  /// either way; this only amortizes the facade call.
  void OnBatch(const EventPtr* events, size_t n);
  /// Routes a run of events known to share one partition (the shape the
  /// async ingest pipeline emits); hashes once per run instead of per
  /// event. Same ordering contract as OnEvent.
  void OnPartitionRun(const EventPtr* events, size_t n);
  void ProcessStream(const EventStream& stream);

  /// Flushes pending batches, signals end-of-stream, joins all workers,
  /// and drains matches into each query's sink in canonical order.
  /// Idempotent.
  void Finish();

  size_t num_threads() const { return workers_.size(); }
  size_t num_queries() const { return queries_.size(); }

  /// Distinct partitions one query saw across all workers.
  /// FailedPrecondition before Finish() — reading worker state while
  /// workers run would race (and an in-flight value would be wrong
  /// anyway); NotFound for an unknown query id.
  StatusOr<size_t> NumPartitionsOf(uint64_t query) const;
  /// One query's counters aggregated across all workers' partition
  /// engines. Same preconditions as NumPartitionsOf.
  StatusOr<EngineCounters> CountersOf(uint64_t query) const;
  /// The plan serving one partition under one query; NotFound if the
  /// query never saw the partition. Same preconditions.
  StatusOr<const EnginePlan*> PlanOf(uint64_t query, uint32_t partition) const;

  // Single-query accessors (the pre-service API; require exactly one
  // registered query). Valid after Finish(); abort on violated
  // preconditions like the rest of the legacy surface.
  size_t num_partitions() const;
  const EnginePlan& PlanFor(uint32_t partition) const;
  EngineCounters TotalCounters() const;

  /// Events routed so far.
  uint64_t events_routed() const { return router_.events_routed(); }

  /// The shard owning `partition` under this runtime's thread count.
  size_t ShardOfPartition(uint32_t partition) const {
    return router_.ShardOf(partition);
  }

  /// Checkpoint capture: flushes pending batches, then walks the shards
  /// one at a time, each serializing its live engines and buffered sink
  /// entries on its own worker thread (control batch; the caller blocks
  /// until the shard reports done). The result is a consistent cut: all
  /// events routed before this call are fully evaluated and inside the
  /// snapshot, none routed after are. The runtime stays usable — this is
  /// the online path CheckpointCoordinator drives between batches.
  Status CaptureCheckpoint(ShardedCheckpoint* out);

  /// Checkpoint restore into a freshly constructed runtime with the same
  /// query set already re-registered (any thread count): re-routes each
  /// partition blob to the shard owning it HERE, hands every capture-time
  /// sink blob to every shard (each keeps the entries it now owns), and
  /// remaps sink-entry query ids through `query_remap` (capture-time
  /// runtime id -> this runtime's id). FailedPrecondition if events were
  /// already routed.
  Status RestoreCheckpoint(
      const ShardedCheckpoint& checkpoint,
      const std::unordered_map<uint64_t, uint64_t>& query_remap);

 private:
  struct QueryEntry {
    std::unique_ptr<PartitionPlanner> planner;
    MatchSink* sink = nullptr;
    bool active = false;
    /// The query's shared metrics bundle: `metrics` points at either an
    /// external bundle (AddQuery overload) or `owned_metrics`. Null when
    /// the runtime has no registry. Kept alive until destruction — the
    /// workers hold raw pointers through their snapshots.
    QueryMetrics* metrics = nullptr;
    std::unique_ptr<QueryMetrics> owned_metrics;
  };

  /// Flushes pending batches under the old snapshot, then publishes the
  /// current active set as a new epoch.
  void PublishSnapshot();
  uint64_t SoleQueryId() const;
  /// Runs `fn` on shard `shard`'s worker thread via a control batch and
  /// blocks until it completes. FIFO queue order guarantees every batch
  /// routed before this call is evaluated first.
  Status RunOnWorker(size_t shard,
                     const std::function<void(ShardWorker*)>& fn);

  std::map<uint64_t, QueryEntry> queries_;  // id order == registration order
  /// The snapshot last published to the router; RestoreCheckpoint hands
  /// it to the workers directly (they may not have seen a batch yet).
  std::shared_ptr<const QuerySetSnapshot> snapshot_;
  uint64_t next_query_id_ = 0;
  uint64_t epoch_ = 0;
  MetricsRegistry* metrics_;  // not owned, null = metrics off
  ShardRouter router_;
  ConcurrentMatchSink concurrent_sink_;
  /// Per-shard instruments, address-stable (workers keep pointers).
  std::vector<std::unique_ptr<ShardMetrics>> shard_metrics_;
  std::vector<std::unique_ptr<ShardWorker>> workers_;
  bool finished_ = false;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PARALLEL_SHARDED_RUNTIME_H_
