#ifndef CEPJOIN_PARALLEL_CONCURRENT_SINK_H_
#define CEPJOIN_PARALLEL_CONCURRENT_SINK_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "runtime/match.h"

namespace cepjoin {

class EngineStateReader;
class EngineStateWriter;
class QueryMetrics;

/// Collects matches from concurrently running shard workers and replays
/// them into downstream (single-threaded) MatchSinks in a canonical,
/// thread-count-independent order.
///
/// Design: one ShardSink per worker, each appending to its own buffer —
/// no locking, no false sharing on the hot path. Determinism comes from
/// the drain, which stable-sorts all buffered matches by
/// (emit_serial, partition):
///
///  - matches emitted while processing event s carry emit_serial == s,
///    and s belongs to exactly one partition, so OnEvent-time matches
///    are totally ordered by emit_serial alone — the same order the
///    single-threaded PartitionedRuntime emits them in;
///  - Finish-time matches of different partitions can share an
///    emit_serial, so the partition id breaks the tie;
///  - matches of one (query, partition) are recorded by one worker in
///    that partition's deterministic engine order — and with multiple
///    queries, in snapshot (registration) order within a run — which
///    the stable sort preserves.
///
/// The result: the drain forwards the same per-query match sequence
/// whether the stream ran on 1 worker or 16.
///
/// Thread-safety: by confinement, not locking — there is deliberately no
/// mutex here (the no-raw-mutex rule of tools/cep_lint.py holds the
/// line). Each ShardSink is owned by exactly one worker thread for the
/// workers' lifetime; total_matches()/DrainTo()/DrainPerQuery() read all
/// buffers and are only legal after the workers have been JOINED — the
/// join is the happens-before edge that publishes the buffers to the
/// draining thread. Calling them while workers run is a data race (the
/// full-suite TSan CI job would flag it).
class ConcurrentMatchSink {
 public:
  /// Per-worker MatchSink facade. The owning worker must call
  /// set_current() (or set_current_partition() in single-query use)
  /// before feeding its engines, so recorded matches carry the
  /// partition tie-breaker and the owning query's id.
  class ShardSink : public MatchSink {
   public:
    void OnMatch(const Match& match) override;
    void set_current_partition(uint32_t partition) {
      current_partition_ = partition;
    }
    void set_current(uint64_t query, uint32_t partition,
                     QueryMetrics* metrics = nullptr) {
      current_query_ = query;
      current_partition_ = partition;
      current_metrics_ = metrics;
    }
    /// Latency anchor of the batch being evaluated (its router-entry
    /// time); matches recorded while it is set feed the owning query's
    /// ingest-to-match histogram. A zero (epoch) time point — the
    /// default, and what workers set before Finish-time flushes — skips
    /// that histogram: end-of-stream matches have no ingest anchor.
    void set_batch_ingest_time(std::chrono::steady_clock::time_point t) {
      batch_ingested_at_ = t;
    }

    bool empty() const { return entries_.empty(); }

    /// Checkpoint support: serializes the buffered entries (matches
    /// tagged with runtime query id + partition) into `w`. Runs on the
    /// owning worker thread via a control batch.
    void SaveEntries(EngineStateWriter* w) const;

    /// Restore counterpart: decodes a SaveEntries blob, keeps only the
    /// entries whose partition `shard_of` maps to `shard`, and remaps
    /// capture-time runtime query ids through `query_remap`. Every
    /// capture-time shard blob is offered to every restore-time shard;
    /// the filter re-partitions the union under the new shard map, and
    /// the canonical (emit_serial, partition) drain order erases any
    /// difference in which buffer an entry landed in.
    Status LoadEntries(EngineStateReader* r, size_t shard,
                       const std::function<size_t(uint32_t)>& shard_of,
                       const std::unordered_map<uint64_t, uint64_t>&
                           query_remap);

   private:
    friend class ConcurrentMatchSink;
    struct Entry {
      Match match;
      uint64_t query = 0;
      uint32_t partition = 0;
    };
    std::vector<Entry> entries_;
    uint64_t current_query_ = 0;
    uint32_t current_partition_ = 0;
    QueryMetrics* current_metrics_ = nullptr;
    std::chrono::steady_clock::time_point batch_ingested_at_{};
  };

  explicit ConcurrentMatchSink(size_t num_shards);

  ShardSink* shard(size_t i) { return shards_[i].get(); }
  size_t num_shards() const { return shards_.size(); }

  /// Total matches buffered across all shards. Only meaningful once the
  /// workers have stopped.
  size_t total_matches() const;

  /// Replays every buffered match into `out` in canonical order (see
  /// class comment), ignoring query tags, and clears the buffers. Must
  /// only be called after all workers have been joined.
  void DrainTo(MatchSink* out);

  /// Multi-query drain: replays every buffered match in canonical order,
  /// dispatching each to `sink_for(query id)` — each query's sink
  /// receives exactly the subsequence a single-query run would have
  /// produced. A null sink drops that query's matches. Clears the
  /// buffers; must only be called after all workers have been joined.
  void DrainPerQuery(const std::function<MatchSink*(uint64_t)>& sink_for);

 private:
  std::vector<ShardSink::Entry> SortedEntries();

  std::vector<std::unique_ptr<ShardSink>> shards_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PARALLEL_CONCURRENT_SINK_H_
