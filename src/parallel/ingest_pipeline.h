#ifndef CEPJOIN_PARALLEL_INGEST_PIPELINE_H_
#define CEPJOIN_PARALLEL_INGEST_PIPELINE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "event/event.h"
#include "event/stream_source.h"
#include "obs/metrics.h"
#include "parallel/bounded_queue.h"
#include "parallel/event_batch.h"

namespace cepjoin {

/// Unit of transfer between an ingestion thread and the merge stage: a
/// timestamp-ordered run of raw events (serials not yet assigned) from
/// one source group. A chunk with a non-empty `error` is a failure
/// sentinel: the group's source `failed_source` died with that message
/// and no further chunks follow.
struct SourceChunk {
  std::vector<Event> events;
  std::string error;
  size_t failed_source = 0;
};

/// Tuning knobs of the async ingestion stage.
struct IngestOptions {
  /// Ingestion threads. Sources are split into this many contiguous
  /// groups, one thread each; 0 (and any surplus) means one thread per
  /// source.
  size_t num_ingest_threads = 0;
  /// Events per SourceChunk, and the cap on the same-partition runs the
  /// merge emits (amortizes queue synchronization; bounds merge-stage
  /// buffering).
  size_t chunk_size = kDefaultBatchSize;
  /// Queue depth per ingestion thread, in chunks (back-pressure toward
  /// the sources when parsing outruns evaluation).
  size_t queue_capacity = 8;
  /// Transient-failure retries per StreamSource::Next call: a source
  /// failing with StatusCode::kUnavailable (StreamSource::error_code) is
  /// re-polled up to this many times with exponential backoff before its
  /// group fails. Parse/validation errors (kInvalidArgument) are never
  /// retried — re-reading malformed input cannot fix it. 0 = fail fast.
  size_t source_retry_limit = 0;
  /// Initial backoff before the first retry; doubles per attempt.
  std::chrono::milliseconds source_retry_backoff{10};
  /// Observability registry (not owned, may be null = metrics off).
  /// When set, the pipeline exposes per-source event-time watermarks
  /// (cep_source_watermark_seconds{source=i}: the last timestamp each
  /// source emitted into its group merge), per-source watermark lag
  /// (cep_source_watermark_lag_seconds{source=i}: how far the source's
  /// watermark trails the most advanced source — the slack the k-way
  /// merge is buffering on its behalf), the merged output watermark
  /// (cep_merged_watermark_seconds), and ingest throughput counters.
  MetricsRegistry* metrics = nullptr;
};

/// Outcome of one pipeline run. [[nodiscard]]: a dropped result swallows
/// the first source failure — the merged prefix was still evaluated, so
/// the caller would silently act on a truncated stream.
struct [[nodiscard]] IngestResult {
  bool ok = false;
  /// First source failure observed by the merge (parse error, timestamp
  /// regression, non-finite timestamp).
  std::string error;
  /// Index (into the constructor's source vector) of the failing source.
  size_t failed_source = 0;
  /// Events delivered to the consumer. On failure this is the valid
  /// merged prefix that was already handed downstream.
  uint64_t events = 0;
};

/// The async ingestion stage: N source threads feeding a k-way
/// timestamp-ordered merge.
///
/// Each ingestion thread owns a contiguous group of sources, pulls
/// events from them directly (no intra-group queues, so a thread can
/// never deadlock against itself), merges its group locally by
/// (ts, source index), and pushes timestamp-ordered chunks into its
/// bounded queue. The caller of Run() — the router thread — performs the
/// top-level merge across the per-thread queues by (ts, group index),
/// assigns global serials and per-partition sequence numbers exactly as
/// EventStream::Append would, and hands maximal same-partition runs
/// (capped at chunk_size) to the consumer.
///
/// Determinism: both merge levels break timestamp ties by source index
/// (groups are contiguous and ascending, so the two-level tie-break
/// composes to a single global rule). The merged event sequence —
/// order, serials, partition_seqs — is therefore a pure function of the
/// sources, independent of thread count, chunk size, queue capacity,
/// and scheduling. Feeding the runs to the sharded router yields a
/// match set byte-identical to replaying the same merged sequence
/// through the synchronous runtimes.
///
/// Failure: a source that errors (or emits a non-finite or regressing
/// timestamp) ends its group with a sentinel chunk. The merge delivers
/// everything ordered before the failure it has already merged, then
/// stops, closes all queues (releasing blocked producers), joins the
/// threads, and reports the first failure in the IngestResult.
class IngestPipeline {
 public:
  /// Consumer of merged output: a maximal (chunk_size-capped) run of
  /// consecutive same-partition events in merged global order.
  using RunConsumer = std::function<void(const EventPtr* run, size_t n)>;

  IngestPipeline(std::vector<std::unique_ptr<StreamSource>> sources,
                 const IngestOptions& options = {});
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Starts the ingestion threads, merges to completion (or first
  /// failure), and joins them. Blocks the calling thread; callable
  /// once.
  IngestResult Run(const RunConsumer& consume);

  size_t num_sources() const { return sources_.size(); }
  /// Ingestion threads Run() will use (groups of sources).
  size_t num_ingest_threads() const { return num_groups_; }

 private:
  struct Group {
    size_t first_source;  // global index of the group's first source
    size_t num_sources;
    std::unique_ptr<BoundedQueue<SourceChunk>> queue;
  };

  void IngestGroup(Group& group);
  void CloseAndJoin();
  /// Refreshes the per-source lag gauges against the current maximum
  /// source watermark. Called from the merge thread once per delivered
  /// run; reads the watermark gauges the group threads write (atomic).
  void UpdateWatermarkLags();

  std::vector<std::unique_ptr<StreamSource>> sources_;
  IngestOptions options_;
  std::vector<Group> groups_;
  size_t num_groups_ = 0;
  std::vector<std::thread> threads_;
  bool ran_ = false;
  // Metrics handles, resolved once at construction (null = metrics off).
  std::vector<Gauge*> source_watermark_;  // one per source
  std::vector<Gauge*> source_lag_;        // one per source
  Gauge* merged_watermark_ = nullptr;
  Counter* ingest_events_ = nullptr;
  Counter* ingest_batches_ = nullptr;
  Counter* source_retries_ = nullptr;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PARALLEL_INGEST_PIPELINE_H_
