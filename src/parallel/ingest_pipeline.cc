#include "parallel/ingest_pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "event/arena.h"
#include "event/partition_sequencer.h"
#include "event/retraction_ledger.h"
#include "obs/pipeline_metrics.h"

namespace cepjoin {

namespace {

// Merge order of two heads with equal progress: earlier timestamp
// first; at equal timestamps insertions merge before retractions (so a
// retraction arriving at the exact timestamp of its insertion lands
// after it and resolves); remaining ties fall to the caller's
// ascending-index scan (lowest source/group index wins). Insert-only
// streams have uniform polarity, so their order is bit-identical to the
// pre-delta (ts, source index) rule.
inline bool MergesBefore(const Event& a, const Event& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  return a.polarity > b.polarity;
}

}  // namespace

IngestPipeline::IngestPipeline(
    std::vector<std::unique_ptr<StreamSource>> sources,
    const IngestOptions& options)
    : sources_(std::move(sources)), options_(options) {
  CEPJOIN_CHECK_GE(options_.chunk_size, 1u);
  CEPJOIN_CHECK_GE(options_.queue_capacity, 1u);
  for (const auto& source : sources_) CEPJOIN_CHECK(source != nullptr);
  size_t k = sources_.size();
  num_groups_ = options_.num_ingest_threads == 0
                    ? k
                    : std::min(options_.num_ingest_threads, k);
  groups_.reserve(num_groups_);
  for (size_t g = 0; g < num_groups_; ++g) {
    // Contiguous split: group g serves sources [g*k/T, (g+1)*k/T). The
    // ascending layout is what lets the per-group and cross-group
    // tie-breaks compose into one global source-index rule.
    Group group;
    group.first_source = g * k / num_groups_;
    group.num_sources = (g + 1) * k / num_groups_ - group.first_source;
    group.queue =
        std::make_unique<BoundedQueue<SourceChunk>>(options_.queue_capacity);
    groups_.push_back(std::move(group));
  }
  if (options_.metrics != nullptr) {
    MetricsRegistry* reg = options_.metrics;
    source_watermark_.reserve(k);
    source_lag_.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      MetricLabels labels{{"source", std::to_string(i)}};
      source_watermark_.push_back(
          reg->GetGauge(metric_names::kSourceWatermark, labels));
      source_lag_.push_back(
          reg->GetGauge(metric_names::kSourceWatermarkLag, labels));
    }
    merged_watermark_ = reg->GetGauge(metric_names::kMergedWatermark);
    ingest_events_ = reg->GetCounter(metric_names::kIngestEvents);
    ingest_batches_ = reg->GetCounter(metric_names::kIngestBatches);
    source_retries_ = reg->GetCounter(metric_names::kIngestSourceRetries);
  }
}

IngestPipeline::~IngestPipeline() { CloseAndJoin(); }

void IngestPipeline::UpdateWatermarkLags() {
  // Gauges start at 0, so a source that has not emitted yet reads as
  // watermark 0 and its lag is the whole frontier — the honest answer
  // for the non-negative timestamps the sources produce.
  double max_watermark = 0.0;
  for (Gauge* wm : source_watermark_) {
    max_watermark = std::max(max_watermark, wm->Value());
  }
  for (size_t i = 0; i < source_watermark_.size(); ++i) {
    double lag = max_watermark - source_watermark_[i]->Value();
    source_lag_[i]->Set(lag < 0.0 ? 0.0 : lag);
  }
}

void IngestPipeline::CloseAndJoin() {
  for (auto& group : groups_) group.queue->Close();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

// Runs on the group's ingestion thread: pull from each owned source,
// merge locally by (ts, source index), push timestamp-ordered chunks.
void IngestPipeline::IngestGroup(Group& group) {
  const size_t k = group.num_sources;
  std::vector<Event> heads(k);
  std::vector<char> live(k, 0);
  SourceChunk chunk;
  chunk.events.reserve(options_.chunk_size);

  auto fail = [&](size_t local_source, const std::string& message) {
    // Deliver the valid events parsed before the failure, then the
    // sentinel; the merge stops at the sentinel.
    if (!chunk.events.empty()) {
      if (!group.queue->Push(std::move(chunk))) return;
      chunk = SourceChunk{};
    }
    SourceChunk sentinel;
    // An empty message would make the sentinel look like a data chunk.
    sentinel.error = message.empty() ? "source failed" : message;
    sentinel.failed_source = group.first_source + local_source;
    // A rejected push means the merge already failed on another group
    // and closed every queue; its failure wins, ours is redundant.
    if (!group.queue->Push(std::move(sentinel))) return;
    group.queue->Close();
  };

  auto refill = [&](size_t i, double min_ts) -> bool {
    StreamSource& source = *sources_[group.first_source + i];
    size_t attempts = 0;
    std::chrono::milliseconds backoff = options_.source_retry_backoff;
    while (true) {
      if (source.Next(&heads[i])) {
        if (!std::isfinite(heads[i].ts) || heads[i].ts < min_ts) {
          fail(i, "source " + std::to_string(group.first_source + i) +
                      ": timestamps must be finite and non-decreasing");
          return false;
        }
        live[i] = 1;
        return true;
      }
      live[i] = 0;
      if (source.ok()) return true;  // cleanly exhausted
      // Transient failure (kUnavailable): back off and re-poll. Fatal
      // codes (parse errors) fall through immediately — re-reading
      // malformed input cannot fix it.
      if (source.error_code() == StatusCode::kUnavailable &&
          attempts < options_.source_retry_limit) {
        ++attempts;
        if (source_retries_ != nullptr) source_retries_->Inc();
        std::this_thread::sleep_for(backoff);
        backoff *= 2;
        continue;
      }
      fail(i, source.error());
      return false;
    }
  };

  for (size_t i = 0; i < k; ++i) {
    if (!refill(i, -std::numeric_limits<double>::infinity())) return;
  }
  while (true) {
    size_t best = k;
    for (size_t i = 0; i < k; ++i) {
      // Strict ordering: the lowest source index wins full ties (see
      // MergesBefore for the timestamp/polarity rule).
      if (live[i] && (best == k || MergesBefore(heads[i], heads[best]))) {
        best = i;
      }
    }
    if (best == k) break;  // every source exhausted
    chunk.events.push_back(std::move(heads[best]));
    if (!source_watermark_.empty()) {
      // The source's event-time frontier: every event it will still emit
      // has ts >= this. One atomic store; the merge thread reads it to
      // derive the lag gauges.
      source_watermark_[group.first_source + best]->Set(
          chunk.events.back().ts);
    }
    if (!refill(best, chunk.events.back().ts)) return;
    if (chunk.events.size() >= options_.chunk_size) {
      if (!group.queue->Push(std::move(chunk))) return;  // merge aborted
      chunk = SourceChunk{};
      chunk.events.reserve(options_.chunk_size);
    }
  }
  if (!chunk.events.empty()) {
    // Rejected only when the merge failed elsewhere and closed the
    // queues; the trailing chunk is then intentionally dropped (the
    // merge stopped at the failure's valid prefix).
    if (!group.queue->Push(std::move(chunk))) return;
  }
  group.queue->Close();
}

IngestResult IngestPipeline::Run(const RunConsumer& consume) {
  CEPJOIN_CHECK(!ran_) << "IngestPipeline::Run is callable once";
  ran_ = true;
  CEPJOIN_CHECK(consume != nullptr);

  IngestResult result;
  if (sources_.empty()) {
    result.ok = true;
    return result;
  }

  threads_.reserve(num_groups_);
  try {
    for (auto& group : groups_) {
      threads_.emplace_back([this, &group] { IngestGroup(group); });
    }
  } catch (...) {
    CloseAndJoin();
    throw;
  }

  // Cursor over one group's queue: `chunk` is the current data chunk,
  // `pos` the next unread event in it.
  struct Cursor {
    SourceChunk chunk;
    size_t pos = 0;
    bool open = true;
  };
  std::vector<Cursor> cursors(num_groups_);

  bool failed = false;
  std::vector<EventPtr> run;
  run.reserve(options_.chunk_size);
  auto flush_run = [&] {
    if (run.empty()) return;
    consume(run.data(), run.size());
    result.events += run.size();
    if (merged_watermark_ != nullptr) {
      // The merge frontier: everything at or below this timestamp has
      // been handed downstream. Updated per run, not per event.
      merged_watermark_->Set(run.back()->ts);
      ingest_events_->Inc(run.size());
      ingest_batches_->Inc();
      UpdateWatermarkLags();
    }
    run.clear();
  };

  EventSerial next_serial = 0;
  PartitionSequencer partition_seq;
  // Merged events are arena-built: the consumer's runs point into
  // contiguous blocks, same layout as a materialized EventStream.
  EventArena arena;
  // Delta streams: retraction targets are resolved against the merged
  // order (serials only exist here), so the merge owns the ledger. Any
  // declaring source turns it on for the whole merge — targets may
  // cross sources. Insert-only pipelines never touch it.
  std::unique_ptr<RetractionLedger> ledger;
  for (const auto& source : sources_) {
    if (source->declares_retractions()) {
      ledger = std::make_unique<RetractionLedger>();
      break;
    }
  }

  try {
    while (!failed) {
      // Make sure every open group exposes its next merged event, then
      // pick the global minimum by (ts, group index).
      size_t best = num_groups_;
      for (size_t g = 0; g < num_groups_; ++g) {
        Cursor& cursor = cursors[g];
        while (cursor.open && cursor.pos == cursor.chunk.events.size() &&
               cursor.chunk.error.empty()) {
          cursor.chunk = SourceChunk{};
          cursor.pos = 0;
          if (!groups_[g].queue->Pop(cursor.chunk)) cursor.open = false;
        }
        if (!cursor.open) continue;
        if (!cursor.chunk.error.empty()) {
          result.error = cursor.chunk.error;
          result.failed_source = cursor.chunk.failed_source;
          failed = true;
          best = num_groups_;
          break;
        }
        const Event& head = cursor.chunk.events[cursor.pos];
        if (best == num_groups_ ||
            MergesBefore(head,
                         cursors[best].chunk.events[cursors[best].pos])) {
          best = g;
        }
      }
      if (best == num_groups_) break;  // all groups done, or failed

      Cursor& cursor = cursors[best];
      Event e = std::move(cursor.chunk.events[cursor.pos++]);
      // Same serial/sequence assignment as EventStream::Append, so the
      // merged sequence is indistinguishable from a materialized stream.
      e.serial = next_serial++;
      if (e.IsRetraction()) {
        if (ledger == nullptr) {
          result.error =
              "retraction from a source that does not declare retractions";
          failed = true;
          continue;
        }
        // Like EventStream::Append: a retraction holds a serial but no
        // partition sequence slot and no type count.
        e.partition_seq = 0;
        Status resolved = ledger->Resolve(&e);
        if (!resolved.ok()) {
          // Same contract as a source failure: the valid merged prefix
          // stays delivered, the offending event is dropped.
          result.error = resolved.message();
          failed = true;
          continue;
        }
      } else {
        e.partition_seq = partition_seq.Next(e.partition);
        if (ledger != nullptr) ledger->RecordInsert(e);
      }
      if (!run.empty() && (run.back()->partition != e.partition ||
                           run.size() >= options_.chunk_size)) {
        flush_run();
      }
      run.push_back(arena.Add(std::move(e)));
    }
    flush_run();
  } catch (...) {
    CloseAndJoin();
    throw;
  }

  CloseAndJoin();
  result.ok = !failed;
  return result;
}

}  // namespace cepjoin
