#include "parallel/concurrent_sink.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "durable/snapshot_codec.h"
#include "obs/pipeline_metrics.h"

namespace cepjoin {

void ConcurrentMatchSink::ShardSink::SaveEntries(EngineStateWriter* w) const {
  w->payload().U64(entries_.size());
  for (const Entry& entry : entries_) {
    w->WriteMatch(entry.match);
    w->payload().U64(entry.query);
    w->payload().U32(entry.partition);
  }
}

Status ConcurrentMatchSink::ShardSink::LoadEntries(
    EngineStateReader* r, size_t shard,
    const std::function<size_t(uint32_t)>& shard_of,
    const std::unordered_map<uint64_t, uint64_t>& query_remap) {
  SnapshotReader& p = r->payload();
  uint64_t n = p.U64();
  for (uint64_t i = 0; i < n && p.ok(); ++i) {
    Entry entry;
    entry.match = r->ReadMatch();
    entry.query = p.U64();
    entry.partition = p.U32();
    if (!p.ok()) break;
    if (shard_of(entry.partition) != shard) continue;
    auto it = query_remap.find(entry.query);
    if (it == query_remap.end()) {
      return Status::FailedPrecondition(
          "buffered match references capture-time query id " +
          std::to_string(entry.query) +
          " with no restore-time counterpart");
    }
    entry.query = it->second;
    entries_.push_back(std::move(entry));
  }
  return r->status();
}

void ConcurrentMatchSink::ShardSink::OnMatch(const Match& match) {
  Entry entry;
  entry.match = match;
  entry.query = current_query_;
  entry.partition = current_partition_;
  entries_.push_back(std::move(entry));
  // Striped counters/histograms: every shard records through the same
  // per-query bundle without contention, and a snapshot merges the
  // per-thread cells — the sharded equivalent of merging per-shard
  // output profilers at drain time.
  RecordMatchMetrics(current_metrics_, match, batch_ingested_at_);
}

ConcurrentMatchSink::ConcurrentMatchSink(size_t num_shards) {
  CEPJOIN_CHECK(num_shards > 0);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ShardSink>());
  }
}

size_t ConcurrentMatchSink::total_matches() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->entries_.size();
  return total;
}

std::vector<ConcurrentMatchSink::ShardSink::Entry>
ConcurrentMatchSink::SortedEntries() {
  std::vector<ShardSink::Entry> all;
  all.reserve(total_matches());
  // Concatenate in shard order. Entries of one partition are contiguous
  // in relative order within exactly one shard's buffer (the router
  // pins a partition to one shard regardless of query), so the stable
  // sort below preserves each (query, partition)'s engine emission
  // order.
  for (auto& shard : shards_) {
    for (auto& entry : shard->entries_) all.push_back(std::move(entry));
    shard->entries_.clear();
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const ShardSink::Entry& a, const ShardSink::Entry& b) {
                     return std::make_tuple(a.match.emit_serial, a.partition) <
                            std::make_tuple(b.match.emit_serial, b.partition);
                   });
  return all;
}

void ConcurrentMatchSink::DrainTo(MatchSink* out) {
  CEPJOIN_CHECK(out != nullptr);
  for (auto& entry : SortedEntries()) out->OnMatch(entry.match);
}

void ConcurrentMatchSink::DrainPerQuery(
    const std::function<MatchSink*(uint64_t)>& sink_for) {
  for (auto& entry : SortedEntries()) {
    MatchSink* out = sink_for(entry.query);
    if (out != nullptr) out->OnMatch(entry.match);
  }
}

}  // namespace cepjoin
