#ifndef CEPJOIN_PARALLEL_EVENT_BATCH_H_
#define CEPJOIN_PARALLEL_EVENT_BATCH_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "event/event.h"

namespace cepjoin {

struct QuerySetSnapshot;
class ShardWorker;

/// Unit of transfer between the router and a shard worker: a run of
/// events, in global arrival order, all belonging to partitions owned by
/// one shard. Batching amortizes the queue's synchronization cost over
/// kDefaultBatchSize events instead of paying it per event.
struct EventBatch {
  std::vector<EventPtr> events;
  /// The query set active when this batch was flushed (parallel/
  /// query_set.h). Null means "unchanged" — workers keep their current
  /// set; only the multi-query ShardedRuntime publishes snapshots.
  std::shared_ptr<const QuerySetSnapshot> queries;
  /// When the batch's FIRST event entered the router — the anchor of the
  /// per-query ingest-to-match latency histograms. One clock read per
  /// batch, not per event; zero (epoch) when metrics are disabled, which
  /// downstream recording treats as "no anchor".
  std::chrono::steady_clock::time_point ingested_at{};
  /// Control batch: when set, the worker runs this callback on its own
  /// thread instead of processing events, giving callers (checkpoint
  /// capture/restore, sharded_runtime.cc) ordered access to
  /// thread-confined worker state without adding locks to the hot path.
  /// The callback runs after all previously queued batches — queue order
  /// IS the synchronization. Control batches carry no events.
  std::shared_ptr<const std::function<void(ShardWorker*)>> control;

  bool empty() const { return events.empty(); }
  size_t size() const { return events.size(); }
};

/// Default router batch size. 256 events keeps a batch around 4 KiB of
/// shared_ptrs — small enough to bound per-shard routing latency, large
/// enough that queue locking disappears from profiles.
inline constexpr size_t kDefaultBatchSize = 256;

}  // namespace cepjoin

#endif  // CEPJOIN_PARALLEL_EVENT_BATCH_H_
