#ifndef CEPJOIN_PARALLEL_WORKER_H_
#define CEPJOIN_PARALLEL_WORKER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "adaptive/partition_planner.h"
#include "common/status.h"
#include "obs/pipeline_metrics.h"
#include "parallel/bounded_queue.h"
#include "parallel/concurrent_sink.h"
#include "parallel/event_batch.h"
#include "parallel/query_set.h"
#include "parallel/shard_checkpoint.h"

namespace cepjoin {

/// One shard's execution thread. Hosts, for every registered query, the
/// engines of every partition hashed to this shard; consumes event
/// batches from its queue in FIFO order (preserving global arrival
/// order within each partition), and emits matches to its private
/// ShardSink tagged with (query, partition) — no shared mutable state
/// with other workers.
///
/// Multi-query: each batch carries the query-set snapshot that was
/// active when it was routed. A run of events costs ONE queue pop and
/// ONE partition-run segmentation regardless of how many queries are
/// registered — the per-query cost is just the engine feed. On an epoch
/// change the worker finishes the engines of queries that left the set
/// (flushing their trailing-negation matches) before touching the new
/// batch, so a deregistered query sees exactly the events routed before
/// its deregistration.
///
/// Plans come from each query's shared, immutable PartitionPlanner, so a
/// partition gets the same plan here as it would in the single-threaded
/// PartitionedRuntime.
///
/// Thread-safety: the ONLY synchronized state a worker touches is its
/// BoundedQueue (whose lock protocol carries thread-safety annotations;
/// see parallel/bounded_queue.h) and the striped-atomic metric
/// instruments. Everything else — queries_, the engines, the ShardSink —
/// is confined to the worker thread between Start() and Join();
/// CountersOf()/NumPartitionsOf()/PlanFor() are caller-thread reads made
/// safe by the Join() happens-before edge, hence "valid only after
/// Join()".
class ShardWorker {
 public:
  /// `metrics` (owned by the runtime, may be null) carries this shard's
  /// pipeline instruments: per-shard event/batch counters and the queue
  /// depth gauge, updated once per popped batch.
  ShardWorker(BoundedQueue<EventBatch>* queue,
              ConcurrentMatchSink::ShardSink* sink,
              const ShardMetrics* metrics = nullptr);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Launches the worker thread. The thread runs until the queue is
  /// closed and drained, then finishes every remaining engine.
  void Start();

  /// Waits for the worker thread to exit. The queue must have been
  /// closed first, or Join() blocks forever. Idempotent.
  void Join();

  /// Aggregated counters across one query's partition engines on this
  /// shard (disjoint sub-streams: totals sum). Zero counters if this
  /// worker never saw events for the query. Valid only after Join().
  EngineCounters CountersOf(uint64_t query) const;

  /// Partitions this worker instantiated engines for, for one query.
  /// Valid after Join().
  size_t NumPartitionsOf(uint64_t query) const;

  /// The plan serving `partition` under `query`, or nullptr if this
  /// worker never saw that combination. Valid only after Join().
  const EnginePlan* PlanFor(uint64_t query, uint32_t partition) const;

  /// Checkpoint capture: serializes every live (unfinished) engine on
  /// this shard into `partitions` (ascending query id, then ascending
  /// partition) and the buffered sink entries into `sink_entries`. MUST
  /// run on the worker thread — the runtime delivers it via a control
  /// batch (EventBatch::control), which also guarantees every earlier
  /// batch has been fully evaluated.
  Status CaptureState(std::vector<PartitionSnapshot>* partitions,
                      std::string* sink_entries);

  /// Checkpoint restore into a freshly started worker: adopts `snapshot`
  /// as the active query set, rebuilds an engine for each of this
  /// shard's `partitions` entries and loads its state, then loads from
  /// every capture-time `sink_blobs` entry the buffered matches whose
  /// partition `shard_of` maps to `shard`, remapping their query ids
  /// through `query_remap` (capture-time runtime id -> this runtime's
  /// id). Same control-batch delivery contract as CaptureState.
  Status RestoreState(std::shared_ptr<const QuerySetSnapshot> snapshot,
                      const std::vector<const PartitionSnapshot*>& partitions,
                      const std::vector<const std::string*>& sink_blobs,
                      const std::unordered_map<uint64_t, uint64_t>& query_remap,
                      size_t shard,
                      const std::function<size_t(uint32_t)>& shard_of);

 private:
  struct PartitionState {
    EnginePlan plan;
    std::unique_ptr<Engine> engine;
    /// Exact cep_query_memory_bytes{query, partition} gauge, refreshed
    /// from the engine's counters after every run this partition
    /// evaluates and zeroed when the engine is released. Null when
    /// metrics are off. The handle is cached here so the hot loop never
    /// touches the registry mutex.
    Gauge* memory = nullptr;
    /// Watermarks of this engine's instance-kernel counters already
    /// folded into the query's registry totals (SyncCounterDelta): the
    /// registry counter is shared across partitions and shards, so each
    /// engine contributes growth deltas, synced per run and at finish.
    uint64_t kernel_lanes_reported = 0;
    uint64_t kernel_blocks_reported = 0;
    /// Watermark of EngineCounters::retractions_processed already folded
    /// into cep_query_retractions_total; same delta-sync discipline.
    uint64_t retractions_reported = 0;
  };
  struct QueryState {
    const PartitionPlanner* planner = nullptr;
    QueryMetrics* metrics = nullptr;
    std::unordered_map<uint32_t, PartitionState> partitions;
    bool finished = false;
    EngineCounters counters;  // aggregated when the query finishes
  };

  void Run();
  QueryState& QueryStateFor(const ShardQuery& query);
  PartitionState& StateFor(QueryState& query, uint32_t partition);
  /// Finishes one query's engines in ascending partition order,
  /// aggregates its counters, and releases the engines.
  void FinishQuery(uint64_t id, QueryState& state);
  /// Finishes every live query absent from `next` (ascending query id).
  void FinishQueriesRemovedBy(const QuerySetSnapshot& next);

  BoundedQueue<EventBatch>* queue_;
  ConcurrentMatchSink::ShardSink* sink_;
  const ShardMetrics* metrics_;
  std::unordered_map<uint64_t, QueryState> queries_;
  std::shared_ptr<const QuerySetSnapshot> active_;
  std::thread thread_;
  bool joined_ = false;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PARALLEL_WORKER_H_
