#ifndef CEPJOIN_PARALLEL_WORKER_H_
#define CEPJOIN_PARALLEL_WORKER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>

#include "adaptive/partition_planner.h"
#include "parallel/bounded_queue.h"
#include "parallel/concurrent_sink.h"
#include "parallel/event_batch.h"

namespace cepjoin {

/// One shard's execution thread. Owns the engines of every partition
/// hashed to this shard, consumes event batches from its queue in FIFO
/// order (preserving global arrival order within each partition), and
/// emits matches to its private ShardSink — no shared mutable state with
/// other workers.
///
/// Plans come from the shared, immutable PartitionPlanner, so a
/// partition gets the same plan here as it would in the single-threaded
/// PartitionedRuntime.
class ShardWorker {
 public:
  ShardWorker(const PartitionPlanner* planner, BoundedQueue<EventBatch>* queue,
              ConcurrentMatchSink::ShardSink* sink);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Launches the worker thread. The thread runs until the queue is
  /// closed and drained, then finishes every partition engine.
  void Start();

  /// Waits for the worker thread to exit. The queue must have been
  /// closed first, or Join() blocks forever. Idempotent.
  void Join();

  /// Aggregated counters across this shard's partition engines
  /// (disjoint sub-streams: totals sum). Valid only after Join().
  const EngineCounters& counters() const { return total_counters_; }

  /// Partitions this worker instantiated engines for. Valid after Join().
  size_t num_partitions() const { return states_.size(); }

  /// The plan serving `partition`, or nullptr if this worker never saw
  /// it. Valid only after Join().
  const EnginePlan* PlanFor(uint32_t partition) const;

 private:
  struct PartitionState {
    EnginePlan plan;
    std::unique_ptr<Engine> engine;
  };

  void Run();
  PartitionState& StateFor(uint32_t partition);

  const PartitionPlanner* planner_;
  BoundedQueue<EventBatch>* queue_;
  ConcurrentMatchSink::ShardSink* sink_;
  std::unordered_map<uint32_t, PartitionState> states_;
  EngineCounters total_counters_;
  std::thread thread_;
  bool joined_ = false;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PARALLEL_WORKER_H_
