#ifndef CEPJOIN_PARALLEL_SHARD_ROUTER_H_
#define CEPJOIN_PARALLEL_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "parallel/bounded_queue.h"
#include "parallel/event_batch.h"
#include "parallel/query_set.h"

namespace cepjoin {

/// Hash-routes a timestamp-ordered keyed stream to per-shard batch
/// queues. A partition maps to exactly one shard for the lifetime of the
/// router, so each partition's events reach its worker in global arrival
/// order — the invariant the deterministic merge (concurrent_sink.h)
/// relies on.
///
/// Route() is called from a single ingestion thread; workers consume the
/// queues concurrently.
class ShardRouter {
 public:
  /// `queue_capacity` is in batches per shard; with the default batch
  /// size a capacity of 8 bounds in-flight events per shard at ~2048.
  ShardRouter(size_t num_shards, size_t batch_size = kDefaultBatchSize,
              size_t queue_capacity = kDefaultQueueCapacity);

  /// Shard owning `partition`: splitmix64-mixed hash mod num_shards, so
  /// dense partition ids (0, 1, 2, ...) still spread evenly.
  size_t ShardOf(uint32_t partition) const;

  /// Appends the event to its shard's pending batch; flushes the batch
  /// to the shard queue once it reaches the batch size (blocking if the
  /// shard's queue is full — back-pressure, never loss).
  void Route(const EventPtr& e);

  /// Routes a run of events that all belong to one partition (the shape
  /// the ingest pipeline's merge emits): the shard hash is computed once
  /// for the whole run instead of per event. Equivalent to calling
  /// Route() on each event.
  void RouteRun(const EventPtr* events, size_t n);

  /// Flushes all non-empty pending batches.
  void FlushAll();

  /// Publishes a new query-set snapshot: every batch flushed from now on
  /// carries it (parallel/query_set.h). Call FlushAll() first so events
  /// routed under the previous set are not retroactively re-tagged. Must
  /// be called from the routing thread.
  void set_query_snapshot(std::shared_ptr<const QuerySetSnapshot> snapshot) {
    snapshot_ = std::move(snapshot);
  }

  /// Enables latency stamping: each pending batch records the wall time
  /// its first event was routed (EventBatch::ingested_at), anchoring the
  /// downstream ingest-to-match histograms. One steady_clock read per
  /// batch; off by default so metric-less runtimes pay nothing.
  void set_stamp_ingest_time(bool enabled) { stamp_ingest_time_ = enabled; }

  /// Flushes pending batches and closes every shard queue (signals
  /// end-of-stream to the workers). Idempotent.
  void CloseAll();

  size_t num_shards() const { return queues_.size(); }
  BoundedQueue<EventBatch>& queue(size_t shard) { return *queues_[shard]; }

  /// Events routed so far (including events still in pending batches).
  uint64_t events_routed() const { return events_routed_; }
  /// Batches successfully flushed into shard queues so far.
  uint64_t batches_flushed() const { return batches_flushed_; }
  /// Events dropped because their shard queue was already closed
  /// (flushing after CloseAll). Always 0 in normal operation.
  uint64_t events_dropped() const { return events_dropped_; }

  static constexpr size_t kDefaultQueueCapacity = 8;

 private:
  void Flush(size_t shard);

  std::vector<std::unique_ptr<BoundedQueue<EventBatch>>> queues_;
  std::vector<EventBatch> pending_;
  std::shared_ptr<const QuerySetSnapshot> snapshot_;
  size_t batch_size_;
  bool stamp_ingest_time_ = false;
  uint64_t events_routed_ = 0;
  uint64_t batches_flushed_ = 0;
  uint64_t events_dropped_ = 0;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PARALLEL_SHARD_ROUTER_H_
