#ifndef CEPJOIN_PARALLEL_SHARD_CHECKPOINT_H_
#define CEPJOIN_PARALLEL_SHARD_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cepjoin {

/// One engine's serialized state, tagged with its owning query and
/// partition. The blob is a complete EngineStateWriter::Finish() payload
/// (durable/snapshot_codec.h), self-contained so restore can route it to
/// whichever shard owns the partition under the NEW thread count.
struct PartitionSnapshot {
  uint64_t query = 0;
  uint32_t partition = 0;
  std::string engine_state;
};

/// Everything a ShardedRuntime needs to resume mid-stream: every live
/// engine's state plus each worker's buffered-but-undrained sink
/// entries. Sink blobs are kept per capture-time shard (their internal
/// entries carry emit serials and partitions); restore redistributes the
/// entries by the new shard map, and the canonical (emit_serial,
/// partition) drain order makes the result independent of either thread
/// count.
struct ShardedCheckpoint {
  std::vector<PartitionSnapshot> partitions;
  std::vector<std::string> sink_blobs;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PARALLEL_SHARD_CHECKPOINT_H_
