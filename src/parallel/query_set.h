#ifndef CEPJOIN_PARALLEL_QUERY_SET_H_
#define CEPJOIN_PARALLEL_QUERY_SET_H_

#include <cstdint>
#include <vector>

namespace cepjoin {

class PartitionPlanner;
class QueryMetrics;

/// One registered keyed query as the shard workers see it: a stable id
/// plus the immutable planner generating its per-partition plans. The
/// planner is owned by the ShardedRuntime and outlives every snapshot
/// referencing it.
struct ShardQuery {
  uint64_t id = 0;
  const PartitionPlanner* planner = nullptr;
  /// Shared per-query instrument bundle (obs/pipeline_metrics.h), owned
  /// by the runtime alongside the planner; null when metrics are off.
  /// All recording through it is striped/atomic, so every worker can
  /// write through the same bundle.
  QueryMetrics* metrics = nullptr;
};

/// An immutable snapshot of the active query set, in registration order.
/// The router stamps the current snapshot onto every flushed batch, so a
/// worker knows *exactly* which queries each event run belongs to: a
/// query registered mid-stream sees precisely the events routed after
/// its snapshot was published, and a deregistered query's engines are
/// finished the moment a worker pops the first batch from a later epoch
/// — FIFO queues make the cut deterministic at any thread count.
///
/// Snapshots are never mutated after publication; workers compare
/// shared_ptr identity to detect epoch changes.
struct QuerySetSnapshot {
  uint64_t epoch = 0;
  std::vector<ShardQuery> queries;
};

}  // namespace cepjoin

#endif  // CEPJOIN_PARALLEL_QUERY_SET_H_
