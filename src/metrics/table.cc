#include "metrics/table.h"

#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace cepjoin {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  CEPJOIN_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string FormatSi(double value, int precision) {
  const char* suffix = "";
  double scaled = value;
  if (value >= 1e9) {
    scaled = value / 1e9;
    suffix = "G";
  } else if (value >= 1e6) {
    scaled = value / 1e6;
    suffix = "M";
  } else if (value >= 1e3) {
    scaled = value / 1e3;
    suffix = "K";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%s", precision, scaled, suffix);
  return buffer;
}

}  // namespace cepjoin
