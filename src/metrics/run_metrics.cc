#include "metrics/run_metrics.h"

namespace cepjoin {

void RunAggregate::Add(const RunResult& r) {
  throughput_eps += r.throughput_eps;
  peak_bytes += static_cast<double>(r.peak_bytes);
  peak_instances += static_cast<double>(r.peak_instances);
  mean_latency_events += r.mean_latency_events;
  mean_latency_seconds += r.mean_latency_seconds;
  plan_cost += r.plan_cost;
  plan_generation_seconds += r.plan_generation_seconds;
  predicate_evals += static_cast<double>(r.predicate_evals);
  matches += r.matches;
  ++runs;
}

void RunAggregate::Finalize() {
  if (runs == 0) return;
  double n = static_cast<double>(runs);
  throughput_eps /= n;
  peak_bytes /= n;
  peak_instances /= n;
  mean_latency_events /= n;
  mean_latency_seconds /= n;
  plan_cost /= n;
  plan_generation_seconds /= n;
  predicate_evals /= n;
}

}  // namespace cepjoin
