#ifndef CEPJOIN_METRICS_RUNNER_H_
#define CEPJOIN_METRICS_RUNNER_H_

#include <vector>

#include "engine/engine_factory.h"
#include "event/stream.h"
#include "metrics/run_metrics.h"

namespace cepjoin {

/// Measurement controls: the replay is repeated (with a fresh engine) up
/// to `max_repeats` times until `min_measure_seconds` of wall time have
/// accumulated, so short streams still produce stable throughput numbers.
struct ExecuteOptions {
  double min_measure_seconds = 0.0;  // 0: single replay
  int max_repeats = 50;
  /// Events per Engine::OnBatch call during replay — the same batched
  /// entry point the production runtimes use, so the figures measure
  /// the path that actually runs. Must be >= 1 (1 degenerates to
  /// per-event feeding). Matches and counters are batch-size
  /// independent; detection latency is anchored at batch granularity.
  size_t batch_size = 256;
};

/// Replays `stream` through an engine built for (pattern, plan), measuring
/// wall-clock throughput, peak memory, matches, and mean latency.
RunResult Execute(const SimplePattern& pattern, const EnginePlan& plan,
                  const EventStream& stream, const ExecuteOptions& = {});

/// Same for a DNF-decomposed pattern (one plan per subpattern).
RunResult ExecuteDnf(const std::vector<SimplePattern>& subpatterns,
                     const std::vector<EnginePlan>& plans,
                     const EventStream& stream, const ExecuteOptions& = {});

}  // namespace cepjoin

#endif  // CEPJOIN_METRICS_RUNNER_H_
