#include "metrics/runner.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>

#include "common/check.h"
#include "runtime/match.h"

namespace cepjoin {

namespace {

// Replays the stream through engines produced by `make_engine` (fresh per
// repetition) until enough wall time accumulated for a stable rate.
RunResult MeasuredReplay(
    const std::function<std::unique_ptr<Engine>(CountingSink*)>& make_engine,
    const EventStream& stream, const ExecuteOptions& options) {
  CEPJOIN_CHECK_GE(options.batch_size, 1u) << "batch_size must be >= 1";
  RunResult result;
  double wall_total = 0.0;
  uint64_t events_total = 0;
  int repeats = 0;
  const EventPtr* events = stream.events().data();
  const size_t n = stream.size();
  while (true) {
    CountingSink sink;
    std::unique_ptr<Engine> engine = make_engine(&sink);
    auto start = std::chrono::steady_clock::now();
    // Feed through the batched entry point, exactly as the runtimes do;
    // OnEvent replay would measure a path production no longer takes.
    for (size_t i = 0; i < n; i += options.batch_size) {
      engine->OnBatch(events + i, std::min(options.batch_size, n - i));
    }
    engine->Finish();
    wall_total += std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    events_total += engine->counters().events_processed;
    ++repeats;
    if (repeats >= options.max_repeats ||
        wall_total >= options.min_measure_seconds) {
      const EngineCounters& counters = engine->counters();
      result.matches = sink.count;
      result.predicate_evals = counters.predicate_evals;
      result.peak_instances = counters.peak_live_instances;
      result.peak_buffered = counters.peak_buffered_events;
      result.peak_bytes = counters.peak_total_bytes;
      result.mean_latency_events = sink.MeanLatencyEvents();
      result.mean_latency_seconds = sink.MeanLatencySeconds();
      break;
    }
  }
  result.wall_seconds = wall_total;
  result.events = events_total;
  result.throughput_eps =
      wall_total > 0 ? static_cast<double>(events_total) / wall_total : 0.0;
  return result;
}

}  // namespace

RunResult Execute(const SimplePattern& pattern, const EnginePlan& plan,
                  const EventStream& stream, const ExecuteOptions& options) {
  RunResult result = MeasuredReplay(
      [&](CountingSink* sink) { return BuildEngine(pattern, plan, sink); },
      stream, options);
  result.plan_cost = plan.cost;
  result.plan_generation_seconds = plan.generation_seconds;
  result.algorithm = plan.algorithm;
  return result;
}

RunResult ExecuteDnf(const std::vector<SimplePattern>& subpatterns,
                     const std::vector<EnginePlan>& plans,
                     const EventStream& stream,
                     const ExecuteOptions& options) {
  RunResult result = MeasuredReplay(
      [&](CountingSink* sink) {
        return BuildDnfEngine(subpatterns, plans, sink);
      },
      stream, options);
  for (const EnginePlan& p : plans) {
    result.plan_cost += p.cost;  // disjunction cost: sum over subpatterns
    result.plan_generation_seconds += p.generation_seconds;
  }
  result.algorithm = plans.empty() ? "" : plans.front().algorithm;
  return result;
}

}  // namespace cepjoin
