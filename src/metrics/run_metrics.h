#ifndef CEPJOIN_METRICS_RUN_METRICS_H_
#define CEPJOIN_METRICS_RUN_METRICS_H_

#include <cstdint>
#include <string>

namespace cepjoin {

/// Measured outcome of replaying one stream through one engine —
/// the quantities the paper's evaluation reports (Sec. 7.2): throughput
/// (events/second), peak memory, and mean detection latency.
struct RunResult {
  double throughput_eps = 0.0;
  double wall_seconds = 0.0;
  uint64_t events = 0;
  uint64_t matches = 0;
  /// Predicate evaluations executed by the compiled predicate program
  /// during one replay — the measured quantity bench_fig16 compares to
  /// the cost model's predicted predicate work.
  uint64_t predicate_evals = 0;
  size_t peak_instances = 0;
  size_t peak_buffered = 0;
  size_t peak_bytes = 0;
  double mean_latency_events = 0.0;
  double mean_latency_seconds = 0.0;
  /// Copied from the plan that drove the run.
  double plan_cost = 0.0;
  double plan_generation_seconds = 0.0;
  std::string algorithm;
};

/// Aggregates results across patterns of one configuration (the paper
/// averages each bar over the pattern set).
struct RunAggregate {
  double throughput_eps = 0.0;
  double peak_bytes = 0.0;
  double peak_instances = 0.0;
  double mean_latency_events = 0.0;
  double mean_latency_seconds = 0.0;
  double plan_cost = 0.0;
  double plan_generation_seconds = 0.0;
  double predicate_evals = 0.0;
  uint64_t matches = 0;
  int runs = 0;

  void Add(const RunResult& r);
  /// Converts sums to means.
  void Finalize();
};

}  // namespace cepjoin

#endif  // CEPJOIN_METRICS_RUN_METRICS_H_
