#ifndef CEPJOIN_METRICS_TABLE_H_
#define CEPJOIN_METRICS_TABLE_H_

#include <string>
#include <vector>

namespace cepjoin {

/// Console table with aligned columns — used by the bench binaries to
/// print the rows/series each paper figure reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.34").
std::string FormatDouble(double value, int precision = 2);
/// Human-scaled formatting with K/M/G suffixes ("1.23M").
std::string FormatSi(double value, int precision = 2);

}  // namespace cepjoin

#endif  // CEPJOIN_METRICS_TABLE_H_
