#include "adaptive/partitioned_runtime.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "durable/snapshot_codec.h"
#include "event/partition_runs.h"

namespace cepjoin {

PartitionedRuntime::PartitionedRuntime(const SimplePattern& pattern,
                                       const EventStream& history,
                                       size_t num_types,
                                       const std::string& algorithm,
                                       MatchSink* sink, uint64_t seed,
                                       double latency_alpha, size_t batch_size)
    : planner_(pattern, history, num_types, algorithm, seed, latency_alpha),
      sink_(sink),
      batch_size_(batch_size) {
  CEPJOIN_CHECK(sink_ != nullptr);
  CEPJOIN_CHECK_GE(batch_size_, 1u) << "batch_size must be >= 1";
}

PartitionedRuntime::PartitionState& PartitionedRuntime::StateFor(
    uint32_t partition) {
  auto it = engines_.find(partition);
  if (it != engines_.end()) return it->second;
  PartitionState state;
  state.plan = planner_.PlanFor(partition);
  state.engine = planner_.BuildEngineFor(state.plan, sink_);
  return engines_.emplace(partition, std::move(state)).first->second;
}

void PartitionedRuntime::OnEvent(const EventPtr& e) {
  CEPJOIN_CHECK(!finished_) << "OnEvent after Finish";
  StateFor(e->partition).engine->OnEvent(e);
}

void PartitionedRuntime::OnBatch(const EventPtr* events, size_t n) {
  CEPJOIN_CHECK(!finished_) << "OnBatch after Finish";
  ForEachPartitionRun(events, n, batch_size_,
                      [&](uint32_t partition, const EventPtr* run,
                          size_t run_length) {
                        StateFor(partition).engine->OnBatch(run, run_length);
                      });
}

void PartitionedRuntime::ProcessStream(const EventStream& stream) {
  OnBatch(stream.events().data(), stream.size());
}

void PartitionedRuntime::Finish() {
  if (finished_) return;
  finished_ = true;
  // Ascending partition order, matching the sharded drain: Finish-time
  // matches (trailing negation) reach the sink in the same canonical
  // order regardless of hash-map iteration order or thread count.
  for (uint32_t partition : Partitions()) {
    PartitionState& state = engines_.at(partition);
    state.engine->Finish();
    final_counters_.MergeDisjoint(state.engine->counters());
    state.engine.reset();
  }
}

Status PartitionedRuntime::SaveStateTo(
    std::vector<std::pair<uint32_t, std::string>>* out) const {
  if (finished_) {
    return Status::FailedPrecondition(
        "SaveStateTo after Finish: the engines have been released");
  }
  for (uint32_t partition : Partitions()) {
    EngineStateWriter w;
    CEPJOIN_RETURN_IF_ERROR(engines_.at(partition).engine->SaveState(&w));
    out->emplace_back(partition, w.Finish());
  }
  return Status::Ok();
}

Status PartitionedRuntime::LoadPartitionState(uint32_t partition,
                                              const std::string& blob) {
  if (finished_) {
    return Status::FailedPrecondition("LoadPartitionState after Finish");
  }
  EngineStateReader reader(blob);
  CEPJOIN_RETURN_IF_ERROR(reader.Init());
  return StateFor(partition).engine->LoadState(&reader);
}

std::vector<uint32_t> PartitionedRuntime::Partitions() const {
  std::vector<uint32_t> partitions;
  partitions.reserve(engines_.size());
  for (const auto& [partition, state] : engines_) {
    partitions.push_back(partition);
  }
  std::sort(partitions.begin(), partitions.end());
  return partitions;
}

const EnginePlan& PartitionedRuntime::PlanFor(uint32_t partition) const {
  const EnginePlan* plan = FindPlan(partition);
  CEPJOIN_CHECK(plan != nullptr)
      << "no events seen for partition " << partition;
  return *plan;
}

const EnginePlan* PartitionedRuntime::FindPlan(uint32_t partition) const {
  auto it = engines_.find(partition);
  return it != engines_.end() ? &it->second.plan : nullptr;
}

EngineCounters PartitionedRuntime::TotalCounters() const {
  if (finished_) return final_counters_;
  EngineCounters total;
  for (const auto& [partition, state] : engines_) {
    total.MergeDisjoint(state.engine->counters());
  }
  return total;
}

}  // namespace cepjoin
