#include "adaptive/partitioned_runtime.h"

#include <utility>

#include "common/check.h"

namespace cepjoin {

PartitionedRuntime::PartitionedRuntime(const SimplePattern& pattern,
                                       const EventStream& history,
                                       size_t num_types,
                                       const std::string& algorithm,
                                       MatchSink* sink, uint64_t seed)
    : pattern_(pattern),
      algorithm_(algorithm),
      sink_(sink),
      seed_(seed),
      global_stats_(pattern.num_positive()) {
  CEPJOIN_CHECK(sink_ != nullptr);
  // Split the history by partition and collect statistics per partition.
  std::unordered_map<uint32_t, EventStream> by_partition;
  for (const EventPtr& e : history.events()) {
    Event copy = *e;
    by_partition[e->partition].Append(std::move(copy));
  }
  for (const auto& [partition, stream] : by_partition) {
    StatsCollector collector(stream, num_types);
    partition_stats_.emplace(partition,
                             collector.CollectForPattern(pattern_));
  }
  StatsCollector global(history, num_types);
  global_stats_ = global.CollectForPattern(pattern_);
}

PartitionedRuntime::PartitionState& PartitionedRuntime::StateFor(
    uint32_t partition) {
  auto it = engines_.find(partition);
  if (it != engines_.end()) return it->second;
  auto stats_it = partition_stats_.find(partition);
  const PatternStats& stats = stats_it != partition_stats_.end()
                                  ? stats_it->second
                                  : global_stats_;
  CostFunction cost = MakeCostFunction(pattern_, stats, 0.0);
  PartitionState state;
  state.plan = MakePlan(algorithm_, cost, seed_);
  state.engine = BuildEngine(pattern_, state.plan, sink_);
  return engines_.emplace(partition, std::move(state)).first->second;
}

void PartitionedRuntime::OnEvent(const EventPtr& e) {
  StateFor(e->partition).engine->OnEvent(e);
}

void PartitionedRuntime::ProcessStream(const EventStream& stream) {
  for (const EventPtr& e : stream.events()) OnEvent(e);
}

void PartitionedRuntime::Finish() {
  for (auto& [partition, state] : engines_) state.engine->Finish();
}

const EnginePlan& PartitionedRuntime::PlanFor(uint32_t partition) const {
  auto it = engines_.find(partition);
  CEPJOIN_CHECK(it != engines_.end())
      << "no events seen for partition " << partition;
  return it->second.plan;
}

EngineCounters PartitionedRuntime::TotalCounters() const {
  EngineCounters total;
  for (const auto& [partition, state] : engines_) {
    total.Merge(state.engine->counters());
  }
  return total;
}

}  // namespace cepjoin
