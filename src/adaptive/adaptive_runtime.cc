#include "adaptive/adaptive_runtime.h"

#include <utility>

#include "common/check.h"

namespace cepjoin {

void AdaptiveRuntime::DedupSink::OnMatch(const Match& match) {
  std::string fp = match.Fingerprint();
  if (!seen_.insert(fp).second) return;  // already reported by the old plan
  by_time_.emplace_back(match.last_ts, fp);
  if (inner_ != nullptr) inner_->OnMatch(match);
}

void AdaptiveRuntime::DedupSink::Evict(Timestamp horizon) {
  while (!by_time_.empty() && by_time_.front().first < horizon) {
    seen_.erase(by_time_.front().second);
    by_time_.pop_front();
  }
}

AdaptiveRuntime::AdaptiveRuntime(const SimplePattern& pattern,
                                 size_t num_types,
                                 const AdaptiveOptions& options,
                                 MatchSink* sink)
    : pattern_(pattern),
      options_(options),
      estimator_(num_types, options.stats_half_life),
      dedup_(sink) {
  // Until statistics accumulate, run the pattern's own order (TRIVIAL).
  CostFunction bootstrap(PatternStats(pattern_.num_positive()),
                         pattern_.window());
  current_plan_ = MakePlan("TRIVIAL", bootstrap, options_.seed).value();
  engine_ = BuildEngine(pattern_, current_plan_, &dedup_);
}

AdaptiveRuntime::~AdaptiveRuntime() = default;

CostFunction AdaptiveRuntime::CurrentCostFunction() const {
  PatternStats stats = estimator_.EstimateForPattern(pattern_);
  CostSpec spec;
  spec.model = pattern_.strategy() == SelectionStrategy::kSkipTillAny
                   ? ThroughputModel::kAny
                   : ThroughputModel::kNextMatch;
  return CostFunction(stats, pattern_.window(), spec);
}

void AdaptiveRuntime::MaybeReoptimize(Timestamp now) {
  next_evaluation_ = now + options_.evaluation_interval;
  CostFunction cost = CurrentCostFunction();
  EnginePlan fresh = MakePlan(options_.algorithm, cost, options_.seed).value();
  double current_cost = current_plan_.kind == EnginePlan::Kind::kOrder
                            ? cost.OrderCost(current_plan_.order)
                            : cost.TreeCost(current_plan_.tree);
  if (fresh.cost >= (1.0 - options_.improvement_threshold) * current_cost) {
    return;
  }
  ++reoptimizations_;
  current_plan_ = fresh;
  std::unique_ptr<Engine> fresh_engine =
      BuildEngine(pattern_, current_plan_, &dedup_);
  // Warm the new engine by replaying the retained window so partial
  // matches spanning the switch are rebuilt; the dedup sink suppresses
  // matches the old engine already emitted.
  replaying_ = true;
  for (const EventPtr& e : window_history_) fresh_engine->OnEvent(e);
  replaying_ = false;
  engine_ = std::move(fresh_engine);
}

void AdaptiveRuntime::OnEvent(const EventPtr& e) {
  CEPJOIN_CHECK(!replaying_);
  estimator_.Observe(*e);
  Timestamp horizon = e->ts - pattern_.window();
  while (!window_history_.empty() && window_history_.front()->ts < horizon) {
    window_history_.pop_front();
  }
  dedup_.Evict(horizon);
  // Re-optimize before recording `e`: a freshly swapped engine is warmed
  // with the history *preceding* this arrival and then receives `e`
  // exactly once below.
  if (e->ts >= next_evaluation_) MaybeReoptimize(e->ts);
  window_history_.push_back(e);
  engine_->OnEvent(e);
}

void AdaptiveRuntime::ProcessStream(const EventStream& stream) {
  for (const EventPtr& e : stream.events()) OnEvent(e);
}

void AdaptiveRuntime::Finish() { engine_->Finish(); }

}  // namespace cepjoin
