#ifndef CEPJOIN_ADAPTIVE_ADAPTIVE_RUNTIME_H_
#define CEPJOIN_ADAPTIVE_ADAPTIVE_RUNTIME_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_set>

#include "engine/engine_factory.h"
#include "event/stream.h"
#include "runtime/match.h"
#include "stats/online_estimator.h"

namespace cepjoin {

/// Options for the adaptive runtime (Sec. 6.3, simplified from the
/// companion paper [27]).
struct AdaptiveOptions {
  /// Plan-generation algorithm invoked on re-optimization.
  std::string algorithm = "GREEDY";
  /// Seconds between plan re-evaluations.
  double evaluation_interval = 2.0;
  /// Re-plan only when the fresh plan is at least this much cheaper than
  /// the current plan re-costed under the fresh statistics (0.25 = 25%).
  double improvement_threshold = 0.25;
  /// Half-life of the online statistics estimator, seconds.
  double stats_half_life = 10.0;
  uint64_t seed = 7;
};

/// Adaptive CEP runtime: continuously estimates arrival rates and
/// selectivities on-the-fly, periodically re-runs the plan generator, and
/// hot-swaps the evaluation plan when the estimated gain crosses the
/// threshold.
///
/// Plan switchover is exactly-once and complete: the new engine is warmed
/// by replaying the retained window history (so partial matches spanning
/// the switch are rebuilt), and a fingerprint dedup filter with a
/// window-length retention suppresses re-emissions of matches the old
/// plan already reported.
class AdaptiveRuntime {
 public:
  AdaptiveRuntime(const SimplePattern& pattern, size_t num_types,
                  const AdaptiveOptions& options, MatchSink* sink);
  ~AdaptiveRuntime();

  void OnEvent(const EventPtr& e);
  void ProcessStream(const EventStream& stream);
  void Finish();

  int reoptimization_count() const { return reoptimizations_; }
  const EnginePlan& current_plan() const { return current_plan_; }
  const EngineCounters& counters() const { return engine_->counters(); }

 private:
  class DedupSink : public MatchSink {
   public:
    explicit DedupSink(MatchSink* inner) : inner_(inner) {}
    void OnMatch(const Match& match) override;
    void Evict(Timestamp horizon);

   private:
    MatchSink* inner_;
    std::unordered_set<std::string> seen_;
    std::deque<std::pair<Timestamp, std::string>> by_time_;
  };

  void MaybeReoptimize(Timestamp now);
  CostFunction CurrentCostFunction() const;

  SimplePattern pattern_;
  AdaptiveOptions options_;
  OnlineStatsEstimator estimator_;
  DedupSink dedup_;
  std::unique_ptr<Engine> engine_;
  EnginePlan current_plan_;
  std::deque<EventPtr> window_history_;
  Timestamp next_evaluation_ = 0.0;
  int reoptimizations_ = 0;
  bool replaying_ = false;
};

}  // namespace cepjoin

#endif  // CEPJOIN_ADAPTIVE_ADAPTIVE_RUNTIME_H_
