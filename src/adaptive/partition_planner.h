#ifndef CEPJOIN_ADAPTIVE_PARTITION_PLANNER_H_
#define CEPJOIN_ADAPTIVE_PARTITION_PLANNER_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "engine/engine_factory.h"
#include "event/stream.h"
#include "runtime/match.h"
#include "stats/collector.h"

namespace cepjoin {

/// The plan-per-partition logic of Sec. 6.2 (partition contiguity),
/// factored out so the single-threaded PartitionedRuntime and the
/// multi-threaded ShardedRuntime generate byte-identical plans: the
/// history is split by partition key, statistics are collected per
/// partition, and each partition is planned against its own statistics
/// (falling back to global statistics for partitions absent from the
/// history).
///
/// A PartitionPlanner is immutable after construction, so concurrent
/// workers may call the const accessors without synchronization.
class PartitionPlanner {
 public:
  PartitionPlanner(const SimplePattern& pattern, const EventStream& history,
                   size_t num_types, const std::string& algorithm,
                   uint64_t seed, double latency_alpha = 0.0);

  const SimplePattern& pattern() const { return pattern_; }
  const std::string& algorithm() const { return algorithm_; }
  uint64_t seed() const { return seed_; }

  /// Plan-time statistics for one partition; partitions absent from the
  /// history fall back to the global statistics.
  const PatternStats& StatsFor(uint32_t partition) const;

  /// Generates the partition's evaluation plan. Deterministic: the same
  /// (pattern, history, algorithm, seed) always produces the same plan,
  /// regardless of the calling thread.
  EnginePlan PlanFor(uint32_t partition) const;

  /// Builds the engine evaluating `plan`, emitting to `sink`.
  std::unique_ptr<Engine> BuildEngineFor(const EnginePlan& plan,
                                         MatchSink* sink) const;

 private:
  SimplePattern pattern_;
  std::string algorithm_;
  uint64_t seed_;
  double latency_alpha_;
  // Per-partition plan-time statistics, precomputed from the history.
  std::unordered_map<uint32_t, PatternStats> partition_stats_;
  PatternStats global_stats_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_ADAPTIVE_PARTITION_PLANNER_H_
