#include "adaptive/partition_planner.h"

#include <utility>

namespace cepjoin {

PartitionPlanner::PartitionPlanner(const SimplePattern& pattern,
                                   const EventStream& history,
                                   size_t num_types,
                                   const std::string& algorithm, uint64_t seed,
                                   double latency_alpha)
    : pattern_(pattern),
      algorithm_(algorithm),
      seed_(seed),
      latency_alpha_(latency_alpha),
      global_stats_(pattern.num_positive()) {
  // Split the history by partition and collect statistics per partition.
  std::unordered_map<uint32_t, EventStream> by_partition;
  for (const EventPtr& e : history.events()) {
    Event copy = *e;
    by_partition[e->partition].Append(std::move(copy));
  }
  for (const auto& [partition, stream] : by_partition) {
    StatsCollector collector(stream, num_types);
    partition_stats_.emplace(partition, collector.CollectForPattern(pattern_));
  }
  StatsCollector global(history, num_types);
  global_stats_ = global.CollectForPattern(pattern_);
}

const PatternStats& PartitionPlanner::StatsFor(uint32_t partition) const {
  auto it = partition_stats_.find(partition);
  return it != partition_stats_.end() ? it->second : global_stats_;
}

EnginePlan PartitionPlanner::PlanFor(uint32_t partition) const {
  CostFunction cost =
      MakeCostFunction(pattern_, StatsFor(partition), latency_alpha_);
  // The algorithm name is validated at registration (CepService) or
  // accepted as a programmer-supplied constant (legacy runtimes); an
  // unknown name here is an internal error, so value() may abort.
  return MakePlan(algorithm_, cost, seed_).value();
}

std::unique_ptr<Engine> PartitionPlanner::BuildEngineFor(
    const EnginePlan& plan, MatchSink* sink) const {
  return BuildEngine(pattern_, plan, sink);
}

}  // namespace cepjoin
