#ifndef CEPJOIN_ADAPTIVE_PARTITIONED_RUNTIME_H_
#define CEPJOIN_ADAPTIVE_PARTITIONED_RUNTIME_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "adaptive/partition_planner.h"
#include "common/status.h"
#include "engine/engine_factory.h"
#include "event/stream.h"
#include "runtime/match.h"
#include "stats/collector.h"

namespace cepjoin {

/// Per-partition evaluation plans — the future-work direction Sec. 6.2
/// sketches for partition contiguity: "unless the value distribution
/// across the partitions remains unchanged ... the evaluation plan is to
/// be generated on a per-partition basis".
///
/// The runtime assumes matches are partition-local (keyed streams: one
/// vehicle, one ticker symbol group, ...). It splits the statistics
/// stream by partition, runs the plan generator once per partition, and
/// routes live events to the partition's own engine. Partitions whose
/// statistics differ get different plans; the match set equals running
/// the pattern on every partition's sub-stream independently.
///
/// Planning is delegated to PartitionPlanner, which ShardedRuntime
/// (src/parallel/) shares, so the sharded execution produces the same
/// plans and the same match set as this single-threaded runtime.
class PartitionedRuntime {
 public:
  /// `history` supplies per-partition statistics (the preprocessing
  /// pass); partitions absent from the history fall back to global
  /// statistics. `batch_size` caps the per-partition runs OnBatch hands
  /// to an engine (bounding the batch-granularity latency anchor); must
  /// be >= 1.
  PartitionedRuntime(const SimplePattern& pattern, const EventStream& history,
                     size_t num_types, const std::string& algorithm,
                     MatchSink* sink, uint64_t seed = 7,
                     double latency_alpha = 0.0, size_t batch_size = 256);

  void OnEvent(const EventPtr& e);
  /// Batched ingestion: segments the run by partition and feeds each
  /// partition engine through Engine::OnBatch. Matches and counters are
  /// identical to per-event feeding.
  void OnBatch(const EventPtr* events, size_t n);
  void ProcessStream(const EventStream& stream);
  /// Flushes trailing matches (ascending partition order) and releases
  /// the partition engines — their buffered windows are freed, matching
  /// the sharded workers' drain. Counters are snapshotted first; plans
  /// and the partition set keep serving the introspection accessors.
  /// No ingestion is accepted afterwards.
  void Finish();

  /// Number of distinct partitions seen (== engines created).
  size_t num_partitions() const { return engines_.size(); }
  /// The distinct partitions seen, ascending.
  std::vector<uint32_t> Partitions() const;
  /// The plan serving one partition; aborts if the partition is unknown.
  const EnginePlan& PlanFor(uint32_t partition) const;
  /// The plan serving one partition, or nullptr if the partition is
  /// unknown (the non-aborting lookup the service API uses).
  const EnginePlan* FindPlan(uint32_t partition) const;
  /// Aggregated counters across partition engines (disjoint sub-streams:
  /// all totals, including events_processed, sum). After Finish() this
  /// serves the final snapshot taken before the engines were released.
  EngineCounters TotalCounters() const;

  /// Checkpoint capture: serializes every live partition engine
  /// (ascending partition order) as (partition, EngineStateWriter blob)
  /// pairs. FailedPrecondition after Finish() — released engines have no
  /// state left to save.
  Status SaveStateTo(
      std::vector<std::pair<uint32_t, std::string>>* out) const;

  /// Checkpoint restore: builds the engine for `partition` (same shared
  /// planner as capture, so same plan) and loads `blob` into it. Call on
  /// a freshly constructed runtime, once per saved partition.
  Status LoadPartitionState(uint32_t partition, const std::string& blob);

  /// Visits every live partition engine as fn(partition, engine). The
  /// observability layer uses this to read exact per-partition memory
  /// footprints (Engine::counters().CurrentBytes()) at snapshot time.
  template <typename Fn>
  void ForEachPartition(Fn&& fn) const {
    for (const auto& [partition, state] : engines_) {
      if (state.engine != nullptr) fn(partition, *state.engine);
    }
  }

 private:
  struct PartitionState {
    EnginePlan plan;
    std::unique_ptr<Engine> engine;
  };

  PartitionState& StateFor(uint32_t partition);

  PartitionPlanner planner_;
  MatchSink* sink_;
  size_t batch_size_;
  std::unordered_map<uint32_t, PartitionState> engines_;
  /// Counters snapshot taken at Finish(), when the engines are released.
  EngineCounters final_counters_;
  bool finished_ = false;
};

}  // namespace cepjoin

#endif  // CEPJOIN_ADAPTIVE_PARTITIONED_RUNTIME_H_
