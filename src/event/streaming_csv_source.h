#ifndef CEPJOIN_EVENT_STREAMING_CSV_SOURCE_H_
#define CEPJOIN_EVENT_STREAMING_CSV_SOURCE_H_

#include <istream>
#include <sstream>
#include <string>
#include <vector>

#include "event/event_type.h"
#include "event/retraction_ledger.h"
#include "event/stream_source.h"

namespace cepjoin {

/// Incremental CSV event source: parses one row per Next() call instead
/// of materializing a full EventStream up front, so ingestion threads
/// can overlap parsing with evaluation and replay files larger than
/// memory. Layout and validation match LoadCsvStream (event/csv_loader.h),
/// which is implemented on top of this source:
///
///   type,ts,partition,attr1,attr2,...     (header row, names free-form)
///   MSFT,0.125,0,101.5,0.25
///
/// Rows must have finite, non-decreasing timestamps and an integral
/// partition id in [0, UINT32_MAX]; any violation ends the stream with
/// ok() == false and an error naming the line.
///
/// Delta streams: the header may end with the reserved columns
/// `polarity` and (optionally, directly after it) `retract_ts`:
///
///   type,ts,partition,attr1,polarity,retract_ts
///   MSFT,0.125,0,101.5,+1,
///   MSFT,2.5,0,0,-1,0.125
///
/// `polarity` must be +1/1 (insert) or -1 (retract); a retraction's
/// `retract_ts` names the timestamp of the insertion being retracted
/// (finite, <= the row's own ts; without a retract_ts column it
/// defaults to the row's ts). Inserts must leave retract_ts empty.
/// Validation is strict, mirroring the non-finite-timestamp hardening:
/// any other polarity value, or a retraction of a (type, partition, ts)
/// key this source never inserted (or already retracted), is a parse
/// error naming the line — never undefined engine behavior. The header
/// is parsed at construction so declares_retractions() is valid before
/// the first Next().
///
/// Registry modes:
///  - mutable registry: types are registered on first sight with the
///    attribute names taken from the header. Single-threaded use only
///    (the loader path).
///  - read-only registry: every type name must already be registered;
///    an unknown name is a parse error. This mode never mutates shared
///    state, so multiple read-only sources can run on concurrent
///    ingestion threads against one registry.
/// In both modes, a type that is already registered with attribute
/// names different from the header's is a parse error (never an
/// abort): events must match the schema the predicates were compiled
/// against.
class StreamingCsvSource : public StreamSource {
 public:
  /// Mutable-registry mode. `input` and `registry` must outlive the
  /// source.
  StreamingCsvSource(std::istream* input, EventTypeRegistry* registry);

  /// Read-only-registry mode (safe for concurrent sources sharing
  /// `registry`).
  StreamingCsvSource(std::istream* input, const EventTypeRegistry* registry);

  bool Next(Event* out) override;
  bool ok() const override { return ok_; }
  std::string error() const override { return error_; }
  /// True iff the header declares the reserved `polarity` column.
  bool declares_retractions() const override { return has_polarity_; }

  /// Line the parser stopped on; names the offending line after a
  /// failure.
  size_t line_number() const { return line_number_; }

  /// Positional replay: the token is the byte offset of the next unread
  /// row (tracked after every consumed line, so it stays valid at EOF
  /// where tellg() fails). SeekTo() repositions the underlying stream at
  /// such an offset and resumes parsing there: the monotone-timestamp
  /// baseline resets to the resume point, and retraction-key validation
  /// goes lenient for targets inserted before the seek (the rows before
  /// the offset were already validated before the checkpoint was cut;
  /// the serial-assigning layer still resolves — and rejects — bad
  /// targets downstream). The header must have parsed successfully.
  bool supports_position() const override { return true; }
  uint64_t position() const override { return stream_pos_; }
  Status SeekTo(uint64_t position) override;

 private:
  bool Fail(const std::string& message);
  bool ParseHeader();
  /// Refreshes stream_pos_ after a consumed line (no-op at EOF).
  void RecordStreamPos();
  /// Resolves a row's type name, validating the header schema against
  /// the type's registered schema on first sight. kInvalidTypeId means
  /// the source has failed.
  TypeId ResolveType(const std::string& name);

  std::istream* input_;
  const EventTypeRegistry* registry_;
  EventTypeRegistry* mutable_registry_;  // null in read-only mode
  std::vector<std::string> attribute_names_;
  std::vector<char> schema_checked_;  // indexed by TypeId
  size_t header_cells_ = 0;
  /// One past the last attribute cell: header_cells_ minus the reserved
  /// polarity/retract_ts columns.
  size_t attr_cells_end_ = 0;
  size_t polarity_cell_ = 0;
  size_t retract_ts_cell_ = 0;
  size_t line_number_ = 0;
  /// Byte offset of the next unread row (position()'s token).
  uint64_t stream_pos_ = 0;
  double previous_ts_;
  bool has_polarity_ = false;
  /// Set by SeekTo(): retractions whose targets predate the seek no
  /// longer fail source-local validation (see SeekTo's contract).
  bool lenient_validation_ = false;
  bool has_retract_ts_ = false;
  bool header_parsed_ = false;
  bool done_ = false;
  bool ok_ = true;
  std::string error_;
  /// Source-local validation of retraction keys (dummy serials): bad
  /// input fails here with a line number instead of reaching the
  /// serial-assigning layer's CHECK. Empty for insert-only files.
  RetractionLedger validation_ledger_;
};

namespace internal {
/// Holds the text buffer of a StringCsvSource. A separate base so it is
/// constructed before the StreamingCsvSource base that points into it.
struct OwnedTextStream {
  explicit OwnedTextStream(std::string text) : stream(std::move(text)) {}
  std::istringstream stream;
};
}  // namespace internal

/// A StreamingCsvSource that owns its text buffer — convenient for
/// tests, examples, and network payloads already held in memory.
class StringCsvSource : private internal::OwnedTextStream,
                        public StreamingCsvSource {
 public:
  StringCsvSource(std::string text, EventTypeRegistry* registry)
      : OwnedTextStream(std::move(text)),
        StreamingCsvSource(&stream, registry) {}
  StringCsvSource(std::string text, const EventTypeRegistry* registry)
      : OwnedTextStream(std::move(text)),
        StreamingCsvSource(&stream, registry) {}

  // Not movable: the base's istream pointer is bound to this object's
  // text stream and would dangle in the moved-to source.
  StringCsvSource(const StringCsvSource&) = delete;
  StringCsvSource& operator=(const StringCsvSource&) = delete;
};

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_STREAMING_CSV_SOURCE_H_
