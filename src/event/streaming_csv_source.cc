#include "event/streaming_csv_source.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>

namespace cepjoin {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

}  // namespace

StreamingCsvSource::StreamingCsvSource(std::istream* input,
                                       EventTypeRegistry* registry)
    : input_(input),
      registry_(registry),
      mutable_registry_(registry),
      previous_ts_(-std::numeric_limits<double>::infinity()) {
  // Eager: declares_retractions() must be answerable before the first
  // Next() (the ingest merge decides up front whether to keep a
  // ledger). A bad header simply fails the source at construction.
  ParseHeader();
}

StreamingCsvSource::StreamingCsvSource(std::istream* input,
                                       const EventTypeRegistry* registry)
    : input_(input),
      registry_(registry),
      mutable_registry_(nullptr),
      previous_ts_(-std::numeric_limits<double>::infinity()) {
  ParseHeader();
}

bool StreamingCsvSource::Fail(const std::string& message) {
  ok_ = false;
  // The line number is part of the message so it survives channels that
  // only carry the error string (the async pipeline's IngestResult).
  error_ = line_number_ > 0
               ? message + " (line " + std::to_string(line_number_) + ")"
               : message;
  done_ = true;
  return false;
}

TypeId StreamingCsvSource::ResolveType(const std::string& name) {
  TypeId type = registry_->Find(name);
  if (type == kInvalidTypeId) {
    if (mutable_registry_ == nullptr) {
      Fail("unknown event type '" + name + "' (read-only registry)");
      return kInvalidTypeId;
    }
    // New type: registered with the header's schema, trivially valid.
    type = mutable_registry_->Register(name, attribute_names_);
    if (type >= schema_checked_.size()) schema_checked_.resize(type + 1, 0);
    schema_checked_[type] = 1;
    return type;
  }
  if (type >= schema_checked_.size()) schema_checked_.resize(type + 1, 0);
  if (!schema_checked_[type]) {
    // A pre-registered type must match the header, or predicates
    // compiled against the registered schema would read the wrong (or a
    // missing) attribute slot. Registry::Register would abort the
    // process on this; bad input deserves a parse error instead.
    if (registry_->Info(type).attribute_names != attribute_names_) {
      Fail("event type '" + name +
           "' is registered with a different attribute schema than the "
           "header");
      return kInvalidTypeId;
    }
    schema_checked_[type] = 1;
  }
  return type;
}

bool StreamingCsvSource::ParseHeader() {
  std::string line;
  if (!std::getline(*input_, line)) {
    return Fail("empty input: missing header");
  }
  ++line_number_;
  std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() < 3) {
    return Fail("header must contain at least type,ts,partition");
  }
  header_cells_ = header.size();
  attr_cells_end_ = header.size();
  // The reserved delta columns are recognized at the tail of the header
  // only: `...,polarity` or `...,polarity,retract_ts`.
  if (header.back() == "retract_ts") {
    if (header.size() < 5 || header[header.size() - 2] != "polarity") {
      return Fail(
          "a retract_ts column must directly follow a polarity column");
    }
    has_polarity_ = true;
    has_retract_ts_ = true;
    polarity_cell_ = header.size() - 2;
    retract_ts_cell_ = header.size() - 1;
    attr_cells_end_ = header.size() - 2;
  } else if (header.back() == "polarity") {
    has_polarity_ = true;
    polarity_cell_ = header.size() - 1;
    attr_cells_end_ = header.size() - 1;
  }
  for (size_t i = 3; i < attr_cells_end_; ++i) {
    // Non-trailing occurrences would be ambiguous with attributes of
    // the same name; strictness beats silently treating a delta column
    // as a payload value.
    if (header[i] == "polarity" || header[i] == "retract_ts") {
      return Fail("reserved column '" + header[i] +
                  "' must be the last header column (optionally followed "
                  "by retract_ts)");
    }
  }
  attribute_names_.assign(header.begin() + 3,
                          header.begin() + attr_cells_end_);
  header_parsed_ = true;
  RecordStreamPos();
  return true;
}

void StreamingCsvSource::RecordStreamPos() {
  // tellg() fails (returns -1) once eofbit is set; keeping the last
  // good offset makes position() stable at end-of-stream, where replay
  // correctly re-reads zero rows (or rows appended since).
  std::streampos pos = input_->tellg();
  if (pos >= 0) stream_pos_ = static_cast<uint64_t>(pos);
}

Status StreamingCsvSource::SeekTo(uint64_t position) {
  if (!header_parsed_) {
    return Status::FailedPrecondition(
        "cannot seek a CSV source whose header failed to parse");
  }
  input_->clear();
  input_->seekg(static_cast<std::streamoff>(position));
  if (input_->fail()) {
    return Status::InvalidArgument("seek to byte offset " +
                                   std::to_string(position) + " failed");
  }
  stream_pos_ = position;
  done_ = false;
  ok_ = true;
  error_.clear();
  // The rows before the offset were validated before the checkpoint;
  // re-validation restarts from the resume point only.
  previous_ts_ = -std::numeric_limits<double>::infinity();
  lenient_validation_ = true;
  return Status::Ok();
}

bool StreamingCsvSource::Next(Event* out) {
  if (done_) return false;
  if (!header_parsed_ && !ParseHeader()) return false;

  std::string line;
  while (std::getline(*input_, line)) {
    ++line_number_;
    RecordStreamPos();
    if (line.empty()) continue;
    std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() != header_cells_) {
      return Fail("row has " + std::to_string(cells.size()) +
                  " cells, header has " + std::to_string(header_cells_));
    }
    out->type = ResolveType(cells[0]);
    if (out->type == kInvalidTypeId) return false;  // Fail already called
    if (!ParseDouble(cells[1], &out->ts) || !std::isfinite(out->ts)) {
      // NaN would also sail past the ordering check below (every
      // comparison involving it is false) and then crash downstream in
      // EventStream::Append; reject non-finite values right here.
      return Fail("bad timestamp '" + cells[1] + "'");
    }
    if (out->ts < previous_ts_) {
      return Fail("timestamps must be non-decreasing");
    }
    previous_ts_ = out->ts;
    double partition = 0.0;
    if (!ParseDouble(cells[2], &partition) || std::floor(partition) != partition ||
        partition < 0 ||
        partition > static_cast<double>(std::numeric_limits<uint32_t>::max())) {
      return Fail("bad partition '" + cells[2] +
                  "' (must be an integer in [0, 4294967295])");
    }
    out->partition = static_cast<uint32_t>(partition);
    out->attrs.clear();
    out->attrs.reserve(attribute_names_.size());
    for (size_t i = 3; i < attr_cells_end_; ++i) {
      double value = 0.0;
      if (!ParseDouble(cells[i], &value)) {
        return Fail("bad attribute value '" + cells[i] + "'");
      }
      out->attrs.push_back(value);
    }
    out->polarity = 1;
    out->target_ts = 0.0;
    if (has_polarity_) {
      const std::string& pol = cells[polarity_cell_];
      if (pol == "1" || pol == "+1") {
        out->polarity = 1;
      } else if (pol == "-1") {
        out->polarity = -1;
      } else {
        return Fail("bad polarity '" + pol + "' (must be +1, 1, or -1)");
      }
      if (out->polarity > 0) {
        if (has_retract_ts_ && !cells[retract_ts_cell_].empty()) {
          return Fail("insert rows must leave retract_ts empty, got '" +
                      cells[retract_ts_cell_] + "'");
        }
        validation_ledger_.RecordInsert(*out);
      } else {
        out->target_ts = out->ts;
        if (has_retract_ts_ && !cells[retract_ts_cell_].empty()) {
          if (!ParseDouble(cells[retract_ts_cell_], &out->target_ts) ||
              !std::isfinite(out->target_ts)) {
            return Fail("bad retract_ts '" + cells[retract_ts_cell_] + "'");
          }
          if (out->target_ts > out->ts) {
            return Fail("retract_ts must not exceed the row's own ts");
          }
        }
        // Source-local key validation; the serial-assigning layer
        // resolves the real target downstream. After a SeekTo, a
        // failed resolution may simply mean the target row precedes
        // the resume point (validated before the checkpoint) — let
        // the downstream ledger decide then.
        Status resolved = validation_ledger_.Resolve(out);
        if (!resolved.ok() && !lenient_validation_) {
          return Fail(resolved.message());
        }
      }
    }
    out->serial = 0;
    out->partition_seq = 0;
    out->target_serial = 0;
    return true;
  }
  done_ = true;
  return false;
}

}  // namespace cepjoin
