#ifndef CEPJOIN_EVENT_RETRACTION_LEDGER_H_
#define CEPJOIN_EVENT_RETRACTION_LEDGER_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "durable/snapshot_io.h"
#include "event/event.h"

namespace cepjoin {

/// Tracks live insertions of a delta stream so a retraction can be
/// resolved to the serial of the insertion it cancels. Owned by whoever
/// assigns serials — EventStream::Append for materialized streams, the
/// ingest merge for streamed sources — and, with dummy serials, by the
/// CSV sources for input validation before serials exist.
///
/// A retraction identifies its target by (type, partition, target_ts);
/// the ledger maps that key to the stack of still-live serials carrying
/// it. Duplicate keys (two live insertions of the same type, partition
/// and timestamp) resolve last-in-first-out, which is deterministic and
/// matches the "retract the most recent occurrence" reading; real
/// streams with real-valued timestamps essentially never hit this case.
class RetractionLedger {
 public:
  /// Registers a live insertion. Call with every polarity=+1 event, in
  /// stream order.
  void RecordInsert(const Event& e) {
    live_[Key(e.type, e.partition, e.ts)].push_back(e.serial);
  }

  /// Resolves a retraction against the live set: fills r->target_serial
  /// with the serial of the (most recent) live insertion of
  /// (r->type, r->partition, r->target_ts) and removes it from the
  /// ledger. Fails if no such insertion is live — i.e. it was never
  /// inserted, or was already retracted.
  Status Resolve(Event* r) {
    auto it = live_.find(Key(r->type, r->partition, r->target_ts));
    if (it == live_.end() || it->second.empty()) {
      return Status::InvalidArgument(
          "retraction targets no live insertion (type " +
          std::to_string(r->type) + ", partition " +
          std::to_string(r->partition) + ", ts " +
          std::to_string(r->target_ts) +
          "): never inserted or already retracted");
    }
    r->target_serial = it->second.back();
    it->second.pop_back();
    if (it->second.empty()) live_.erase(it);
    return Status::Ok();
  }

  size_t live_keys() const { return live_.size(); }

  /// Checkpoint support: canonical encoding — keys sorted by (type,
  /// partition, ts bits), each stack written bottom-to-top so reload
  /// preserves the LIFO resolution order exactly.
  void SaveTo(SnapshotWriter* w) const {
    std::vector<const std::pair<const KeyT, std::vector<EventSerial>>*> items;
    items.reserve(live_.size());
    for (const auto& entry : live_) items.push_back(&entry);
    std::sort(items.begin(), items.end(), [](const auto* a, const auto* b) {
      return std::tie(a->first.type, a->first.partition, a->first.ts_bits) <
             std::tie(b->first.type, b->first.partition, b->first.ts_bits);
    });
    w->U64(items.size());
    for (const auto* item : items) {
      w->U32(static_cast<uint32_t>(item->first.type));
      w->U32(item->first.partition);
      w->U64(item->first.ts_bits);
      w->U64(item->second.size());
      for (EventSerial serial : item->second) w->U64(serial);
    }
  }

  /// Replaces this ledger's state with a SaveTo encoding. Malformed
  /// input latches on the reader; check r->status() after.
  void LoadFrom(SnapshotReader* r) {
    live_.clear();
    uint64_t n = r->U64();
    for (uint64_t i = 0; i < n && r->ok(); ++i) {
      KeyT key;
      key.type = static_cast<TypeId>(r->U32());
      key.partition = r->U32();
      key.ts_bits = r->U64();
      uint64_t depth = r->U64();
      std::vector<EventSerial> stack;
      for (uint64_t j = 0; j < depth && r->ok(); ++j) {
        stack.push_back(r->U64());
      }
      if (r->ok()) live_.emplace(key, std::move(stack));
    }
  }

 private:
  /// Timestamps key by exact bit pattern — a retraction must quote the
  /// insertion's timestamp verbatim, never a recomputed approximation.
  static uint64_t TsBits(Timestamp ts) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(ts), "Timestamp must be 64-bit");
    std::memcpy(&bits, &ts, sizeof(bits));
    return bits;
  }
  struct KeyT {
    TypeId type;
    uint32_t partition;
    uint64_t ts_bits;
    bool operator==(const KeyT& o) const {
      return type == o.type && partition == o.partition &&
             ts_bits == o.ts_bits;
    }
  };
  struct KeyHash {
    size_t operator()(const KeyT& k) const {
      uint64_t h = k.ts_bits;
      h ^= (static_cast<uint64_t>(k.type) << 32) ^ k.partition;
      // 64-bit mix (splitmix64 finalizer).
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      h *= 0x94d049bb133111ebULL;
      h ^= h >> 31;
      return static_cast<size_t>(h);
    }
  };
  static KeyT Key(TypeId type, uint32_t partition, Timestamp ts) {
    return KeyT{type, partition, TsBits(ts)};
  }

  std::unordered_map<KeyT, std::vector<EventSerial>, KeyHash> live_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_RETRACTION_LEDGER_H_
