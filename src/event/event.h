#ifndef CEPJOIN_EVENT_EVENT_H_
#define CEPJOIN_EVENT_EVENT_H_

#include <memory>

#include "common/types.h"
#include "event/attr_vec.h"

namespace cepjoin {

/// A primitive event: one timestamped tuple of a registered event type.
///
/// Events are immutable once placed in a stream; engines share them via
/// shared_ptr so partial matches can reference them without copying.
/// Attributes live inline in the struct (AttrVec) for every realistic
/// schema width, so a batch of arena-allocated events is one contiguous
/// run of payload — the row-major half of the columnar evaluation layout.
struct Event {
  /// Dense id of the event's type in the owning EventTypeRegistry.
  TypeId type = kInvalidTypeId;
  /// Global arrival position in the stream (unique, strictly increasing).
  EventSerial serial = 0;
  /// Partition this event belongs to (used by partition contiguity).
  uint32_t partition = 0;
  /// Arrival position within the partition (0-based, per-partition dense).
  EventSerial partition_seq = 0;
  /// Occurrence timestamp in seconds. Streams are ordered by `ts`.
  Timestamp ts = 0.0;
  /// Attribute values, positionally matching the type's schema.
  AttrVec attrs;

  double Attr(AttrId id) const { return attrs[id]; }
};

using EventPtr = std::shared_ptr<const Event>;

/// Approximate heap footprint of one event, used by the memory metric.
/// Inline attribute storage means the common schema adds nothing beyond
/// the struct itself; only spilled (wider than AttrVec::kInlineCapacity)
/// schemas carry a heap block.
inline size_t ApproxEventBytes(const Event& e) {
  return sizeof(Event) + e.attrs.HeapBytes();
}

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_EVENT_H_
