#ifndef CEPJOIN_EVENT_EVENT_H_
#define CEPJOIN_EVENT_EVENT_H_

#include <memory>

#include "common/types.h"
#include "event/attr_vec.h"

namespace cepjoin {

/// A primitive event: one timestamped tuple of a registered event type.
///
/// Events are immutable once placed in a stream; engines share them via
/// shared_ptr so partial matches can reference them without copying.
/// Attributes live inline in the struct (AttrVec) for every realistic
/// schema width, so a batch of arena-allocated events is one contiguous
/// run of payload — the row-major half of the columnar evaluation layout.
struct Event {
  /// Dense id of the event's type in the owning EventTypeRegistry.
  TypeId type = kInvalidTypeId;
  /// Global arrival position in the stream (unique, strictly increasing).
  EventSerial serial = 0;
  /// Partition this event belongs to (used by partition contiguity).
  uint32_t partition = 0;
  /// Delta polarity: +1 inserts the event, -1 retracts a previously
  /// inserted event of the same (type, partition) occurring at
  /// `target_ts`. Insert-only streams never look at this field (it sits
  /// in struct padding, so it is free to carry).
  int8_t polarity = 1;
  /// Arrival position within the partition (0-based, per-partition dense).
  EventSerial partition_seq = 0;
  /// Occurrence timestamp in seconds. Streams are ordered by `ts`. For a
  /// retraction this is its *arrival* timestamp (>= target_ts); the
  /// retracted occurrence is identified by `target_ts`.
  Timestamp ts = 0.0;
  /// Retractions only: occurrence timestamp of the insertion being
  /// retracted. Together with (type, partition) this keys the target.
  Timestamp target_ts = 0.0;
  /// Retractions only: serial of the retracted insertion, resolved by
  /// the layer that assigns serials (EventStream::Append or the ingest
  /// merge) via RetractionLedger. Zero until resolved.
  EventSerial target_serial = 0;
  /// Attribute values, positionally matching the type's schema.
  AttrVec attrs;

  double Attr(AttrId id) const { return attrs[id]; }
  bool IsRetraction() const { return polarity < 0; }
};

using EventPtr = std::shared_ptr<const Event>;

/// Approximate heap footprint of one event, used by the memory metric.
/// Inline attribute storage means the common schema adds nothing beyond
/// the struct itself; only spilled (wider than AttrVec::kInlineCapacity)
/// schemas carry a heap block.
inline size_t ApproxEventBytes(const Event& e) {
  return sizeof(Event) + e.attrs.HeapBytes();
}

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_EVENT_H_
