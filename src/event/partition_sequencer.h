#ifndef CEPJOIN_EVENT_PARTITION_SEQUENCER_H_
#define CEPJOIN_EVENT_PARTITION_SEQUENCER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace cepjoin {

/// Hands out per-partition dense sequence numbers (0, 1, 2, ... within
/// each partition) — the `partition_seq` assignment shared by
/// EventStream::Append and the async ingest merge, so both paths number
/// events identically.
///
/// Storage is dense (vector indexed by partition id) for the typical
/// 0..k partition ids and falls back to a hash map above
/// kDenseLimit, so a stream keyed by sparse 32-bit ids (hashes, symbol
/// codes) costs memory proportional to the partitions seen, not to the
/// largest id.
class PartitionSequencer {
 public:
  /// Returns the next sequence number for `partition` and advances it.
  EventSerial Next(uint32_t partition) {
    if (partition < kDenseLimit) {
      if (partition >= dense_.size()) dense_.resize(partition + 1, 0);
      return dense_[partition]++;
    }
    return sparse_[partition]++;
  }

  /// Ids below this use the dense vector (at most 8 MiB); at or above
  /// it, the hash map.
  static constexpr uint32_t kDenseLimit = 1u << 20;

 private:
  std::vector<EventSerial> dense_;
  std::unordered_map<uint32_t, EventSerial> sparse_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_PARTITION_SEQUENCER_H_
