#ifndef CEPJOIN_EVENT_PARTITION_SEQUENCER_H_
#define CEPJOIN_EVENT_PARTITION_SEQUENCER_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "durable/snapshot_io.h"

namespace cepjoin {

/// Hands out per-partition dense sequence numbers (0, 1, 2, ... within
/// each partition) — the `partition_seq` assignment shared by
/// EventStream::Append and the async ingest merge, so both paths number
/// events identically.
///
/// Storage is dense (vector indexed by partition id) for the typical
/// 0..k partition ids and falls back to a hash map above
/// kDenseLimit, so a stream keyed by sparse 32-bit ids (hashes, symbol
/// codes) costs memory proportional to the partitions seen, not to the
/// largest id.
class PartitionSequencer {
 public:
  /// Returns the next sequence number for `partition` and advances it.
  EventSerial Next(uint32_t partition) {
    if (partition < kDenseLimit) {
      if (partition >= dense_.size()) dense_.resize(partition + 1, 0);
      return dense_[partition]++;
    }
    return sparse_[partition]++;
  }

  /// Ids below this use the dense vector (at most 8 MiB); at or above
  /// it, the hash map.
  static constexpr uint32_t kDenseLimit = 1u << 20;

  /// Checkpoint support: canonical encoding (trailing zero counters
  /// trimmed, sparse entries sorted), so identical sequencer state
  /// always serializes byte-identically.
  void SaveTo(SnapshotWriter* w) const {
    size_t n = dense_.size();
    while (n > 0 && dense_[n - 1] == 0) --n;
    w->U64(n);
    for (size_t i = 0; i < n; ++i) w->U64(dense_[i]);
    std::vector<std::pair<uint32_t, EventSerial>> sparse(sparse_.begin(),
                                                         sparse_.end());
    std::sort(sparse.begin(), sparse.end());
    w->U64(sparse.size());
    for (const auto& [partition, next] : sparse) {
      w->U32(partition);
      w->U64(next);
    }
  }

  /// Replaces this sequencer's state with a SaveTo encoding. Malformed
  /// input latches on the reader; check r->status() after.
  void LoadFrom(SnapshotReader* r) {
    dense_.clear();
    sparse_.clear();
    uint64_t n = r->U64();
    // No reserve on an unvalidated count: the && r->ok() guard stops the
    // loop at the first overrun of a truncated payload.
    for (uint64_t i = 0; i < n && r->ok(); ++i) dense_.push_back(r->U64());
    uint64_t m = r->U64();
    for (uint64_t i = 0; i < m && r->ok(); ++i) {
      uint32_t partition = r->U32();
      sparse_[partition] = r->U64();
    }
  }

 private:
  std::vector<EventSerial> dense_;
  std::unordered_map<uint32_t, EventSerial> sparse_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_PARTITION_SEQUENCER_H_
