#include "event/stream.h"

#include <utility>

#include "common/check.h"

namespace cepjoin {

void EventStream::Append(Event e) {
  if (!events_.empty()) {
    CEPJOIN_CHECK_GE(e.ts, events_.back()->ts)
        << "streams must be appended in timestamp order";
  }
  e.serial = static_cast<EventSerial>(events_.size());
  e.partition_seq = partition_seq_.Next(e.partition);
  if (e.type >= type_counts_.size()) {
    type_counts_.resize(e.type + 1, 0);
  }
  ++type_counts_[e.type];
  events_.push_back(arena_.Add(std::move(e)));
}

Timestamp EventStream::end_ts() const {
  return events_.empty() ? 0.0 : events_.back()->ts;
}

Timestamp EventStream::begin_ts() const {
  return events_.empty() ? 0.0 : events_.front()->ts;
}

Timestamp EventStream::Duration() const { return end_ts() - begin_ts(); }

}  // namespace cepjoin
