#include "event/stream.h"

#include <utility>

#include "common/check.h"

namespace cepjoin {

void EventStream::Append(Event e) {
  if (!events_.empty()) {
    CEPJOIN_CHECK_GE(e.ts, events_.back()->ts)
        << "streams must be appended in timestamp order";
  }
  e.serial = static_cast<EventSerial>(events_.size());
  if (e.IsRetraction()) {
    CEPJOIN_CHECK(retractions_enabled())
        << "retraction appended to a stream without EnableRetractions()";
    // A retraction is a command about an earlier insertion, not an
    // occurrence: it takes a stream slot (serial) for deterministic
    // ordering, but does not advance the partition sequencer or the
    // type counts. Sources validate untrusted input first, so a
    // resolution failure here is a programmer error.
    e.partition_seq = 0;
    Status resolved = ledger_->Resolve(&e);
    CEPJOIN_CHECK(resolved.ok()) << resolved.message();
  } else {
    e.partition_seq = partition_seq_.Next(e.partition);
    if (e.type >= type_counts_.size()) {
      type_counts_.resize(e.type + 1, 0);
    }
    ++type_counts_[e.type];
    if (ledger_ != nullptr) ledger_->RecordInsert(e);
  }
  events_.push_back(arena_.Add(std::move(e)));
}

void EventStream::EnableRetractions() {
  if (ledger_ == nullptr) ledger_ = std::make_unique<RetractionLedger>();
}

Timestamp EventStream::end_ts() const {
  return events_.empty() ? 0.0 : events_.back()->ts;
}

Timestamp EventStream::begin_ts() const {
  return events_.empty() ? 0.0 : events_.front()->ts;
}

Timestamp EventStream::Duration() const { return end_ts() - begin_ts(); }

}  // namespace cepjoin
