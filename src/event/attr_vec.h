#ifndef CEPJOIN_EVENT_ATTR_VEC_H_
#define CEPJOIN_EVENT_ATTR_VEC_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <ostream>

namespace cepjoin {

/// Attribute storage with inline capacity: the schemas of real CEP
/// streams are a handful of doubles wide, so the common case stores every
/// attribute inside the Event struct itself — no per-event heap
/// allocation, no pointer chase on the predicate hot path, and batches of
/// events laid out contiguously (e.g. by EventArena) keep their attribute
/// payloads contiguous too. Schemas wider than kInlineCapacity spill to a
/// heap block, preserving std::vector semantics for the operations the
/// codebase uses (index, resize, push_back, equality).
class AttrVec {
 public:
  /// Chosen so sizeof(AttrVec) == 64: one cache line of inline payload
  /// plus bookkeeping, covering every built-in workload schema (stock
  /// events carry 2 attributes, the synthetic benches up to 4).
  static constexpr size_t kInlineCapacity = 6;

  AttrVec() = default;
  AttrVec(std::initializer_list<double> values) {
    Assign(values.begin(), values.size());
  }
  AttrVec(const AttrVec& other) { Assign(other.data(), other.size_); }
  AttrVec(AttrVec&& other) noexcept { MoveFrom(other); }
  AttrVec& operator=(const AttrVec& other) {
    if (this != &other) Assign(other.data(), other.size_);
    return *this;
  }
  AttrVec& operator=(AttrVec&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  AttrVec& operator=(std::initializer_list<double> values) {
    Assign(values.begin(), values.size());
    return *this;
  }
  ~AttrVec() { Release(); }

  double* data() { return heap_ != nullptr ? heap_ : inline_; }
  const double* data() const { return heap_ != nullptr ? heap_ : inline_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  double& operator[](size_t i) { return data()[i]; }
  const double& operator[](size_t i) const { return data()[i]; }

  double* begin() { return data(); }
  double* end() { return data() + size_; }
  const double* begin() const { return data(); }
  const double* end() const { return data() + size_; }

  /// Keeps capacity, like std::vector::clear.
  void clear() { size_ = 0; }
  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }
  void resize(size_t n) {
    if (n > capacity_) Grow(n);
    for (size_t i = size_; i < n; ++i) data()[i] = 0.0;
    size_ = static_cast<uint32_t>(n);
  }
  void push_back(double v) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    data()[size_++] = v;
  }

  bool operator==(const AttrVec& other) const {
    return size_ == other.size_ &&
           std::equal(begin(), end(), other.begin());
  }
  bool operator!=(const AttrVec& other) const { return !(*this == other); }

  /// Heap bytes owned beyond the inline buffer — 0 for inline schemas.
  /// The honest input to ApproxEventBytes: the old std::vector layout
  /// charged a heap block to every event unconditionally.
  size_t HeapBytes() const {
    return heap_ != nullptr ? capacity_ * sizeof(double) : 0;
  }

 private:
  void Assign(const double* src, size_t n) {
    if (n > capacity_) Grow(n);
    std::copy(src, src + n, data());
    size_ = static_cast<uint32_t>(n);
  }
  /// Grows to at least `n` slots, preserving the first size_ values.
  void Grow(size_t n) {
    size_t cap = std::max<size_t>(n, 2 * kInlineCapacity);
    double* grown = new double[cap];
    std::copy(data(), data() + size_, grown);
    delete[] heap_;
    heap_ = grown;
    capacity_ = static_cast<uint32_t>(cap);
  }
  void Release() {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = kInlineCapacity;
    size_ = 0;
  }
  void MoveFrom(AttrVec& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = kInlineCapacity;
      other.size_ = 0;
    } else {
      heap_ = nullptr;
      capacity_ = kInlineCapacity;
      size_ = other.size_;
      std::copy(other.inline_, other.inline_ + other.size_, inline_);
      other.size_ = 0;
    }
  }

  double inline_[kInlineCapacity];
  double* heap_ = nullptr;
  uint32_t size_ = 0;
  uint32_t capacity_ = kInlineCapacity;
};

/// Layout invariant the columnar/vectorized evaluation path relies on:
/// inline payload + bookkeeping in exactly one cache line, so arena
/// blocks of Events stride predictably.
static_assert(sizeof(AttrVec) == 64, "AttrVec must stay one cache line");

/// gtest-friendly rendering for EXPECT_EQ failures.
inline std::ostream& operator<<(std::ostream& os, const AttrVec& attrs) {
  os << "{";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) os << ", ";
    os << attrs[i];
  }
  return os << "}";
}

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_ATTR_VEC_H_
