#ifndef CEPJOIN_EVENT_CSV_LOADER_H_
#define CEPJOIN_EVENT_CSV_LOADER_H_

#include <istream>
#include <string>
#include <vector>

#include "event/event_type.h"
#include "event/stream.h"

namespace cepjoin {

/// Result of loading a CSV stream; on failure, `error` names the line.
struct CsvLoadResult {
  bool ok = false;
  std::string error;
  size_t error_line = 0;
  EventStream stream;
};

/// Loads a timestamp-ordered event stream from CSV — the adoption path
/// for external datasets like the paper's NASDAQ record-per-price-update
/// file. Expected layout:
///
///   type,ts,partition,attr1,attr2,...     (header row, names free-form)
///   MSFT,0.125,0,101.5,0.25
///   GOOG,0.250,1,730.0,-1.10
///
/// * Column 1: event type name. Types are registered on first sight with
///   the attribute names taken from the header (attr columns only), so
///   every type shares the header's schema.
/// * Column 2: timestamp in seconds; rows must be non-decreasing.
/// * Column 3: integer partition id (use 0 if unused).
/// * Remaining columns: numeric attribute values.
CsvLoadResult LoadCsvStream(std::istream& input,
                            EventTypeRegistry* registry);

/// Convenience overload parsing from a string.
CsvLoadResult LoadCsvStreamFromString(const std::string& text,
                                      EventTypeRegistry* registry);

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_CSV_LOADER_H_
