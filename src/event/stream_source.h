#ifndef CEPJOIN_EVENT_STREAM_SOURCE_H_
#define CEPJOIN_EVENT_STREAM_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/status.h"
#include "event/stream.h"

namespace cepjoin {

/// Pull-based producer of a timestamp-ordered event sequence — the unit
/// of work of one ingestion thread in the async pipeline
/// (parallel/ingest_pipeline.h). A source fills `type`, `ts`,
/// `partition`, and `attrs` only; `serial` and `partition_seq` are
/// assigned downstream by the merge stage, which preserves the global
/// invariants of EventStream::Append across any number of sources.
///
/// Contract:
///  - Next() returns events with non-decreasing, finite timestamps;
///  - after Next() returns false, ok() distinguishes a clean end of
///    stream from a source failure described by error();
///  - a source is single-consumer: Next() is only ever called from one
///    thread at a time (the pipeline dedicates each source to one
///    ingest thread).
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Pulls the next event into `*out`. Returns false at end-of-stream
  /// or on failure; `*out` is unspecified in that case — [[nodiscard]]:
  /// consuming `*out` without checking reads indeterminate data.
  [[nodiscard]] virtual bool Next(Event* out) = 0;

  /// Valid once Next() has returned false: true iff the source ended
  /// cleanly.
  virtual bool ok() const = 0;

  /// Describes the failure when !ok(); empty otherwise.
  virtual std::string error() const = 0;

  /// True iff this source may emit polarity=-1 events. The ingest merge
  /// checks it once up front: any declaring source makes the merge
  /// maintain a RetractionLedger over ALL merged insertions (retraction
  /// targets are resolved against the recombined stream, so they may
  /// cross sources). Insert-only pipelines skip the ledger entirely.
  virtual bool declares_retractions() const { return false; }

  /// Classifies the failure when !ok(). kUnavailable marks a transient
  /// condition the ingest pipeline's bounded-retry loop may retry
  /// (IngestOptions::source_retry_limit); every other code is fatal.
  /// The built-in sources only produce data errors, hence the default.
  virtual StatusCode error_code() const { return StatusCode::kInvalidArgument; }

  // -- positional replay (durable checkpoints) -------------------------
  //
  // A positional source can report where its next un-consumed event
  // begins (an index, a byte offset — any stable token) and resume from
  // such a token later. Checkpoints record position() per attached
  // source; crash recovery SeekTo()s it and re-reads the tail, which is
  // what makes replay after RestoreFrom exact.

  /// True iff position()/SeekTo() are meaningful for this source.
  virtual bool supports_position() const { return false; }
  /// Replay token of the next event Next() would produce.
  virtual uint64_t position() const { return 0; }
  /// Repositions the source at a token previously returned by
  /// position(). InvalidArgument for non-positional sources.
  [[nodiscard]] virtual Status SeekTo(uint64_t position) {
    (void)position;
    return Status::InvalidArgument("source does not support positioning");
  }
};

/// Replays an in-memory EventStream (or an offset/stride slice of one)
/// as a StreamSource. A stride slice of a timestamp-ordered stream is
/// itself timestamp-ordered, so a materialized stream can be fanned out
/// over N ingest threads as slices (offset i, stride N); the pipeline's
/// deterministic merge defines the recombined order.
class EventStreamSource : public StreamSource {
 public:
  /// `stream` must outlive the source. `stride` >= 1; `offset` may be
  /// past the end (an empty source).
  explicit EventStreamSource(const EventStream* stream, size_t offset = 0,
                             size_t stride = 1)
      : stream_(stream), next_(offset), stride_(stride) {
    CEPJOIN_CHECK_GE(stride_, 1u);
  }

  bool Next(Event* out) override {
    if (next_ >= stream_->size()) return false;
    const Event& e = *(*stream_)[next_];
    out->type = e.type;
    out->ts = e.ts;
    out->partition = e.partition;
    // Inline attribute storage makes this a flat copy for every schema
    // that fits AttrVec's inline capacity — no per-replayed-event heap
    // allocation; spilled schemas reuse `out`'s existing heap block
    // across Next() calls.
    out->attrs = e.attrs;
    out->polarity = e.polarity;
    out->target_ts = e.target_ts;
    // The merge reassigns serials, so a replayed retraction's target
    // must be re-resolved there from (type, partition, target_ts) — the
    // materialized stream's target_serial is meaningless downstream.
    out->serial = 0;
    out->partition_seq = 0;
    out->target_serial = 0;
    next_ += stride_;
    return true;
  }

  bool ok() const override { return true; }
  std::string error() const override { return {}; }
  bool declares_retractions() const override {
    return stream_->retractions_enabled();
  }

  /// Position token: the index of the next replayed event. SeekTo past
  /// the end is valid (an exhausted source), mirroring the constructor's
  /// offset contract.
  bool supports_position() const override { return true; }
  uint64_t position() const override { return next_; }
  Status SeekTo(uint64_t position) override {
    next_ = static_cast<size_t>(position);
    return Status::Ok();
  }

 private:
  const EventStream* stream_;
  size_t next_;
  size_t stride_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_STREAM_SOURCE_H_
