#ifndef CEPJOIN_EVENT_EVENT_TYPE_H_
#define CEPJOIN_EVENT_EVENT_TYPE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace cepjoin {

/// Schema of one event type: a name plus named attributes.
struct EventTypeInfo {
  TypeId id = kInvalidTypeId;
  std::string name;
  std::vector<std::string> attribute_names;
};

/// Registry mapping event type names to dense TypeIds and attribute schemas.
///
/// Every primitive event carries a well-defined type (Sec. 2.1 of the paper);
/// the registry is the single source of truth for the type universe of a
/// stream and its patterns.
class EventTypeRegistry {
 public:
  EventTypeRegistry() = default;

  /// Registers a type; returns its id. Registering an existing name with the
  /// same schema returns the existing id; a conflicting schema is an error.
  TypeId Register(const std::string& name,
                  const std::vector<std::string>& attribute_names);

  /// Returns the id for `name`; aborts if unknown.
  TypeId Require(const std::string& name) const;

  /// Returns the id for `name`, or kInvalidTypeId if unknown.
  TypeId Find(const std::string& name) const;

  const EventTypeInfo& Info(TypeId id) const;

  /// Index of attribute `attr` within type `id`'s schema; aborts if missing.
  AttrId RequireAttr(TypeId id, const std::string& attr) const;

  size_t size() const { return types_.size(); }

 private:
  std::vector<EventTypeInfo> types_;
  std::unordered_map<std::string, TypeId> by_name_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_EVENT_TYPE_H_
