#include "event/event_type.h"

#include "common/check.h"

namespace cepjoin {

TypeId EventTypeRegistry::Register(
    const std::string& name, const std::vector<std::string>& attribute_names) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    const EventTypeInfo& existing = types_[it->second];
    CEPJOIN_CHECK(existing.attribute_names == attribute_names)
        << "type '" << name << "' re-registered with a different schema";
    return it->second;
  }
  TypeId id = static_cast<TypeId>(types_.size());
  types_.push_back(EventTypeInfo{id, name, attribute_names});
  by_name_.emplace(name, id);
  return id;
}

TypeId EventTypeRegistry::Require(const std::string& name) const {
  TypeId id = Find(name);
  CEPJOIN_CHECK(id != kInvalidTypeId) << "unknown event type '" << name << "'";
  return id;
}

TypeId EventTypeRegistry::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidTypeId : it->second;
}

const EventTypeInfo& EventTypeRegistry::Info(TypeId id) const {
  CEPJOIN_CHECK(id < types_.size());
  return types_[id];
}

AttrId EventTypeRegistry::RequireAttr(TypeId id, const std::string& attr) const {
  const EventTypeInfo& info = Info(id);
  for (size_t i = 0; i < info.attribute_names.size(); ++i) {
    if (info.attribute_names[i] == attr) return static_cast<AttrId>(i);
  }
  CEPJOIN_CHECK(false) << "type '" << info.name << "' has no attribute '"
                       << attr << "'";
}

}  // namespace cepjoin
