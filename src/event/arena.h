#ifndef CEPJOIN_EVENT_ARENA_H_
#define CEPJOIN_EVENT_ARENA_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "event/event.h"

namespace cepjoin {

/// Block allocator for stream events: events are placed back-to-back in
/// fixed-capacity blocks and handed out as aliasing shared_ptrs, so one
/// control-block allocation is amortized over a whole block and a batch's
/// events (with their inline attribute payloads) are contiguous in
/// memory. This is what makes candidate scans stream linearly instead of
/// hopping between per-event make_shared allocations.
///
/// Lifetime: a block stays alive while any of its events is referenced,
/// so a single long-lived EventPtr pins its block (block_capacity events).
/// Window buffers evict in arrival order, which releases blocks in order;
/// retained match sets pin at most the blocks their events live in.
///
/// Single-threaded, like every stream-construction path that uses it.
class EventArena {
 public:
  static constexpr size_t kDefaultBlockCapacity = 256;

  explicit EventArena(size_t block_capacity = kDefaultBlockCapacity)
      : block_capacity_(block_capacity > 0 ? block_capacity : 1) {}

  /// Moves `e` into the arena and returns a shared handle to it.
  EventPtr Add(Event e) {
    if (block_ == nullptr ||
        block_->events.size() == block_->events.capacity()) {
      block_ = std::make_shared<Block>();
      // Reserve exactly once: handed-out pointers forbid reallocation.
      block_->events.reserve(block_capacity_);
      ++blocks_allocated_;
    }
    block_->events.push_back(std::move(e));
    // Aliasing constructor: the handle owns the block but points at one
    // event, so refcounting costs no per-event allocation.
    return EventPtr(block_, &block_->events.back());
  }

  /// Blocks created so far (test/metrics hook).
  size_t blocks_allocated() const { return blocks_allocated_; }

 private:
  struct Block {
    std::vector<Event> events;
  };

  std::shared_ptr<Block> block_;
  size_t block_capacity_;
  size_t blocks_allocated_ = 0;
};

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_ARENA_H_
