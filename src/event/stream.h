#ifndef CEPJOIN_EVENT_STREAM_H_
#define CEPJOIN_EVENT_STREAM_H_

#include <memory>
#include <vector>

#include "event/arena.h"
#include "event/event.h"
#include "event/partition_sequencer.h"
#include "event/retraction_ledger.h"

namespace cepjoin {

/// A finite, timestamp-ordered event stream held in memory.
///
/// The paper replays a historical NASDAQ stream; this container plays the
/// same role for our synthetic streams. Events are appended in timestamp
/// order and receive their global serial automatically.
class EventStream {
 public:
  EventStream() = default;

  /// Appends an event. `e.ts` must be >= the previous event's timestamp;
  /// serial and per-partition sequence numbers are assigned here. With
  /// retractions enabled, a polarity=-1 event has its target_serial
  /// resolved here against the stream's own insertions; appending a
  /// retraction that targets no live insertion is a programmer error
  /// (CHECK) — sources validate untrusted input with Status before it
  /// reaches the stream.
  void Append(Event e);

  /// Opts this stream into ± delta semantics. Must be called before the
  /// first retraction is appended; inserts appended earlier are NOT
  /// retractable (the ledger only sees appends made after the call), so
  /// call it before the first Append. Insert-only streams never pay for
  /// the ledger.
  void EnableRetractions();
  bool retractions_enabled() const { return ledger_ != nullptr; }

  const std::vector<EventPtr>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const EventPtr& operator[](size_t i) const { return events_[i]; }

  /// Timestamp of the last event, or 0 for an empty stream.
  Timestamp end_ts() const;
  /// Timestamp of the first event, or 0 for an empty stream.
  Timestamp begin_ts() const;
  /// end_ts() - begin_ts().
  Timestamp Duration() const;

  /// Number of events of each type (indexed by TypeId; grows as needed).
  /// Counts insertions only: a retraction is a command about an earlier
  /// event, not an occurrence, so it must not skew type rates.
  const std::vector<size_t>& type_counts() const { return type_counts_; }

 private:
  std::vector<EventPtr> events_;
  std::vector<size_t> type_counts_;
  PartitionSequencer partition_seq_;
  /// Present only after EnableRetractions().
  std::unique_ptr<RetractionLedger> ledger_;
  /// Events are arena-allocated: contiguous blocks, one shared control
  /// block per EventArena block instead of one heap Event per append.
  EventArena arena_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_STREAM_H_
