#ifndef CEPJOIN_EVENT_STREAM_H_
#define CEPJOIN_EVENT_STREAM_H_

#include <vector>

#include "event/arena.h"
#include "event/event.h"
#include "event/partition_sequencer.h"

namespace cepjoin {

/// A finite, timestamp-ordered event stream held in memory.
///
/// The paper replays a historical NASDAQ stream; this container plays the
/// same role for our synthetic streams. Events are appended in timestamp
/// order and receive their global serial automatically.
class EventStream {
 public:
  EventStream() = default;

  /// Appends an event. `e.ts` must be >= the previous event's timestamp;
  /// serial and per-partition sequence numbers are assigned here.
  void Append(Event e);

  const std::vector<EventPtr>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const EventPtr& operator[](size_t i) const { return events_[i]; }

  /// Timestamp of the last event, or 0 for an empty stream.
  Timestamp end_ts() const;
  /// Timestamp of the first event, or 0 for an empty stream.
  Timestamp begin_ts() const;
  /// end_ts() - begin_ts().
  Timestamp Duration() const;

  /// Number of events of each type (indexed by TypeId; grows as needed).
  const std::vector<size_t>& type_counts() const { return type_counts_; }

 private:
  std::vector<EventPtr> events_;
  std::vector<size_t> type_counts_;
  PartitionSequencer partition_seq_;
  /// Events are arena-allocated: contiguous blocks, one shared control
  /// block per EventArena block instead of one heap Event per append.
  EventArena arena_;
};

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_STREAM_H_
