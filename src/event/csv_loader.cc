#include "event/csv_loader.h"

#include <sstream>
#include <utility>

#include "event/streaming_csv_source.h"

namespace cepjoin {

// The loader is the materializing shell around StreamingCsvSource: the
// source does all parsing and validation (one row per Next), the loader
// just appends into an EventStream. Keeping a single row parser means
// the synchronous and async ingestion paths accept exactly the same
// inputs and reject exactly the same malformed rows.
CsvLoadResult LoadCsvStream(std::istream& input, EventTypeRegistry* registry) {
  CsvLoadResult result;
  StreamingCsvSource source(&input, registry);
  // A polarity-declaring header turns the stream into a delta stream;
  // Append then resolves each (source-validated) retraction to the
  // serial of the insertion it cancels.
  if (source.declares_retractions()) result.stream.EnableRetractions();
  Event e;
  while (source.Next(&e)) {
    result.stream.Append(std::move(e));
  }
  if (!source.ok()) {
    result.ok = false;
    result.error = source.error();
    result.error_line = source.line_number();
    return result;
  }
  result.ok = true;
  return result;
}

CsvLoadResult LoadCsvStreamFromString(const std::string& text,
                                      EventTypeRegistry* registry) {
  std::istringstream stream(text);
  return LoadCsvStream(stream, registry);
}

}  // namespace cepjoin
