#include "event/csv_loader.h"

#include <cstdlib>
#include <limits>
#include <sstream>

namespace cepjoin {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

}  // namespace

CsvLoadResult LoadCsvStream(std::istream& input, EventTypeRegistry* registry) {
  CsvLoadResult result;
  std::string line;
  size_t line_number = 0;
  auto fail = [&](const std::string& message) {
    result.ok = false;
    result.error = message;
    result.error_line = line_number;
    return result;
  };

  if (!std::getline(input, line)) return fail("empty input: missing header");
  ++line_number;
  std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() < 3) {
    return fail("header must contain at least type,ts,partition");
  }
  std::vector<std::string> attribute_names(header.begin() + 3, header.end());

  double previous_ts = -std::numeric_limits<double>::infinity();
  while (std::getline(input, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() != header.size()) {
      return fail("row has " + std::to_string(cells.size()) +
                  " cells, header has " + std::to_string(header.size()));
    }
    Event e;
    e.type = registry->Register(cells[0], attribute_names);
    if (!ParseDouble(cells[1], &e.ts)) {
      return fail("bad timestamp '" + cells[1] + "'");
    }
    if (e.ts < previous_ts) {
      return fail("timestamps must be non-decreasing");
    }
    previous_ts = e.ts;
    double partition = 0.0;
    if (!ParseDouble(cells[2], &partition) || partition < 0) {
      return fail("bad partition '" + cells[2] + "'");
    }
    e.partition = static_cast<uint32_t>(partition);
    e.attrs.reserve(attribute_names.size());
    for (size_t i = 3; i < cells.size(); ++i) {
      double value = 0.0;
      if (!ParseDouble(cells[i], &value)) {
        return fail("bad attribute value '" + cells[i] + "'");
      }
      e.attrs.push_back(value);
    }
    result.stream.Append(std::move(e));
  }
  result.ok = true;
  return result;
}

CsvLoadResult LoadCsvStreamFromString(const std::string& text,
                                      EventTypeRegistry* registry) {
  std::istringstream stream(text);
  return LoadCsvStream(stream, registry);
}

}  // namespace cepjoin
