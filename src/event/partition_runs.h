#ifndef CEPJOIN_EVENT_PARTITION_RUNS_H_
#define CEPJOIN_EVENT_PARTITION_RUNS_H_

#include <cstddef>
#include <cstdint>

#include "event/event.h"

namespace cepjoin {

/// Splits `events[0..n)` into maximal runs of consecutive same-partition
/// events, each at most `max_run` long, and invokes
/// `fn(partition, run_begin, run_length)` per run in input order. The
/// shared segmentation step of every batched keyed feeder
/// (PartitionedRuntime, the shard workers): one engine lookup and one
/// OnBatch dispatch per run instead of per event, order preserved.
template <typename Fn>
void ForEachPartitionRun(const EventPtr* events, size_t n, size_t max_run,
                         Fn&& fn) {
  size_t i = 0;
  while (i < n) {
    uint32_t partition = events[i]->partition;
    size_t j = i + 1;
    while (j < n && j - i < max_run && events[j]->partition == partition) {
      ++j;
    }
    fn(partition, events + i, j - i);
    i = j;
  }
}

}  // namespace cepjoin

#endif  // CEPJOIN_EVENT_PARTITION_RUNS_H_
