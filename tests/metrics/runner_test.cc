#include "metrics/runner.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::StreamOf;
using testing_util::World;

TEST(RunnerTest, ExecuteReportsMatchesAndThroughput) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  PatternStats stats(2);
  stats.set_rate(0, 1.0);
  stats.set_rate(1, 1.0);
  EnginePlan plan = MakePlan("TRIVIAL", CostFunction(stats, 10.0)).value();
  EventStream stream = StreamOf({Ev(0, 1), Ev(1, 2), Ev(0, 3), Ev(1, 4)});
  RunResult result = Execute(p, plan, stream);
  EXPECT_EQ(result.matches, 3u);
  EXPECT_EQ(result.events, 4u);
  EXPECT_GT(result.throughput_eps, 0.0);
  EXPECT_EQ(result.algorithm, "TRIVIAL");
}

TEST(RunnerTest, RepeatsUntilMinimumMeasureTime) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  PatternStats stats(2);
  stats.set_rate(0, 1.0);
  stats.set_rate(1, 1.0);
  EnginePlan plan = MakePlan("TRIVIAL", CostFunction(stats, 10.0)).value();
  EventStream stream = StreamOf({Ev(0, 1), Ev(1, 2)});
  ExecuteOptions options;
  options.min_measure_seconds = 0.002;
  options.max_repeats = 1000000;
  RunResult result = Execute(p, plan, stream, options);
  // A two-event stream replays in microseconds: many repeats accumulate.
  EXPECT_GT(result.events, 2u);
  EXPECT_EQ(result.events % 2, 0u);
  EXPECT_GE(result.wall_seconds, 0.002);
  // Matches reported for a single replay, not accumulated.
  EXPECT_EQ(result.matches, 1u);
}

TEST(RunnerTest, MaxRepeatsBoundsWork) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  PatternStats stats(2);
  stats.set_rate(0, 1.0);
  stats.set_rate(1, 1.0);
  EnginePlan plan = MakePlan("TRIVIAL", CostFunction(stats, 10.0)).value();
  EventStream stream = StreamOf({Ev(0, 1), Ev(1, 2)});
  ExecuteOptions options;
  options.min_measure_seconds = 1e9;  // unreachable
  options.max_repeats = 3;
  RunResult result = Execute(p, plan, stream, options);
  EXPECT_EQ(result.events, 6u);
}

TEST(RunAggregateTest, AveragesAcrossRuns) {
  RunAggregate aggregate;
  RunResult a;
  a.throughput_eps = 100;
  a.peak_bytes = 1000;
  a.matches = 5;
  RunResult b;
  b.throughput_eps = 300;
  b.peak_bytes = 3000;
  b.matches = 7;
  aggregate.Add(a);
  aggregate.Add(b);
  aggregate.Finalize();
  EXPECT_DOUBLE_EQ(aggregate.throughput_eps, 200.0);
  EXPECT_DOUBLE_EQ(aggregate.peak_bytes, 2000.0);
  EXPECT_EQ(aggregate.matches, 12u);
  EXPECT_EQ(aggregate.runs, 2);
}

TEST(RunAggregateTest, FinalizeOnEmptyIsSafe) {
  RunAggregate aggregate;
  aggregate.Finalize();
  EXPECT_EQ(aggregate.runs, 0);
  EXPECT_DOUBLE_EQ(aggregate.throughput_eps, 0.0);
}

}  // namespace
}  // namespace cepjoin
