#include "metrics/table.h"

#include <gtest/gtest.h>

namespace cepjoin {
namespace {

TEST(TableTest, AlignsColumns) {
  Table table({"algo", "throughput"});
  table.AddRow({"GREEDY", "1.5M"});
  table.AddRow({"DP-LD", "2.25M"});
  std::string text = table.ToString();
  // Each data line starts aligned with the header width.
  EXPECT_NE(text.find("algo    throughput"), std::string::npos);
  EXPECT_NE(text.find("GREEDY  1.5M"), std::string::npos);
  EXPECT_NE(text.find("DP-LD   2.25M"), std::string::npos);
}

TEST(TableDeathTest, RowWidthMustMatchHeader) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "");
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(FormatSiTest, ScalesWithSuffixes) {
  EXPECT_EQ(FormatSi(950.0), "950.00");
  EXPECT_EQ(FormatSi(1500.0), "1.50K");
  EXPECT_EQ(FormatSi(2.5e6), "2.50M");
  EXPECT_EQ(FormatSi(3.2e9), "3.20G");
}

}  // namespace
}  // namespace cepjoin
