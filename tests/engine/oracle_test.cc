// Brute-force oracle: for small patterns, enumerate every event
// combination directly from the pattern semantics and require both
// engines (under multiple plans) to report exactly that match set.
// Also checks Theorem 3 at the detection level: a SEQ pattern and its
// AND + timestamp-predicate rewrite produce identical matches.

#include <algorithm>

#include <gtest/gtest.h>

#include "nfa/nfa_engine.h"
#include "pattern/rewrite.h"
#include "testing/test_util.h"
#include "tree/tree_engine.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::World;

EventStream RandomStream(const World& world, int n_types, int count,
                         uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  double ts = 0.0;
  for (int i = 0; i < count; ++i) {
    ts += rng.UniformReal(0.01, 0.25);
    stream.Append(Ev(world.types[rng.UniformInt(0, n_types - 1)], ts,
                     rng.UniformReal(-2.0, 2.0)));
  }
  return stream;
}

// Ground truth: all assignments of stream events to pattern slots that
// satisfy types, distinctness, the window, every condition, and (for
// SEQ) the slot order. Only positive slots; no Kleene.
std::vector<std::string> BruteForceMatches(const SimplePattern& pattern,
                                           const EventStream& stream) {
  ConditionSet conditions(pattern.size(), pattern.conditions());
  int n = pattern.size();
  std::vector<const Event*> chosen(n, nullptr);
  std::vector<std::string> fingerprints;

  std::function<void(int)> recurse = [&](int pos) {
    if (pos == n) {
      Match match;
      match.slots.resize(n);
      for (int p = 0; p < n; ++p) {
        match.slots[p].push_back(std::make_shared<const Event>(*chosen[p]));
      }
      fingerprints.push_back(match.Fingerprint());
      return;
    }
    for (const EventPtr& e : stream.events()) {
      if (e->type != pattern.events()[pos].type) continue;
      bool used = false;
      for (int p = 0; p < pos; ++p) {
        if (chosen[p]->serial == e->serial) used = true;
      }
      if (used) continue;
      if (!conditions.EvalUnary(pos, *e)) continue;
      bool ok = true;
      for (int p = 0; p < pos && ok; ++p) {
        if (pattern.op() == OperatorKind::kSeq && chosen[p]->ts >= e->ts) {
          ok = false;
        }
        if (ok && std::abs(chosen[p]->ts - e->ts) > pattern.window()) {
          ok = false;
        }
        if (ok && !conditions.EvalPair(p, pos, *chosen[p], *e)) ok = false;
      }
      if (!ok) continue;
      chosen[pos] = e.get();
      recurse(pos + 1);
      chosen[pos] = nullptr;
    }
  };
  recurse(0);
  std::sort(fingerprints.begin(), fingerprints.end());
  return fingerprints;
}

std::vector<std::string> RunNfa(const SimplePattern& p, const OrderPlan& plan,
                                const EventStream& stream) {
  CollectingSink sink;
  NfaEngine engine(p, plan, &sink);
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  return sink.Fingerprints();
}

std::vector<std::string> RunTree(const SimplePattern& p, const TreePlan& plan,
                                 const EventStream& stream) {
  CollectingSink sink;
  TreeEngine engine(p, plan, &sink);
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  return sink.Fingerprints();
}

struct OracleCase {
  OperatorKind op;
  int size;
  uint64_t seed;
  friend std::ostream& operator<<(std::ostream& os, const OracleCase& c) {
    return os << OperatorName(c.op) << "_n" << c.size << "_s" << c.seed;
  }
};

class OracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleTest, EnginesMatchBruteForceEnumeration) {
  const OracleCase& c = GetParam();
  World world = MakeWorld(c.size);
  std::vector<EventSpec> events;
  for (int i = 0; i < c.size; ++i) {
    events.push_back({world.types[i], "e" + std::to_string(i), false, false});
  }
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, c.size - 1, 0)};
  SimplePattern pattern(c.op, events, conditions, 1.8);
  EventStream stream = RandomStream(world, c.size, 90, c.seed);

  std::vector<std::string> oracle = BruteForceMatches(pattern, stream);
  EXPECT_FALSE(oracle.empty()) << "degenerate oracle case";

  EXPECT_EQ(RunNfa(pattern, OrderPlan::Identity(c.size), stream), oracle);
  std::vector<int> reversed(c.size);
  for (int i = 0; i < c.size; ++i) reversed[i] = c.size - 1 - i;
  EXPECT_EQ(RunNfa(pattern, OrderPlan(reversed), stream), oracle);
  EXPECT_EQ(
      RunTree(pattern, TreePlan::LeftDeep(OrderPlan::Identity(c.size)), stream),
      oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, OracleTest,
    ::testing::Values(OracleCase{OperatorKind::kSeq, 2, 21},
                      OracleCase{OperatorKind::kSeq, 3, 22},
                      OracleCase{OperatorKind::kSeq, 4, 23},
                      OracleCase{OperatorKind::kAnd, 2, 24},
                      OracleCase{OperatorKind::kAnd, 3, 25},
                      OracleCase{OperatorKind::kAnd, 4, 26}));

TEST(Theorem3Test, SeqEqualsAndPlusTimestampPredicates) {
  // Theorem 3 at the engine level: detect SEQ(T1..Tn) and its rewrite
  // AND(T1..Tn) + ts-order predicates; match sets must coincide, on both
  // engines and multiple plans.
  for (int n : {2, 3, 4}) {
    World world = MakeWorld(n);
    std::vector<EventSpec> events;
    for (int i = 0; i < n; ++i) {
      events.push_back({world.types[i], "e" + std::to_string(i), false, false});
    }
    SimplePattern seq(OperatorKind::kSeq, events, {}, 1.5);
    SimplePattern rewritten = SeqToAnd(seq);
    ASSERT_EQ(rewritten.op(), OperatorKind::kAnd);
    EventStream stream = RandomStream(world, n, 110, 30 + n);

    std::vector<std::string> seq_matches =
        RunNfa(seq, OrderPlan::Identity(n), stream);
    EXPECT_FALSE(seq_matches.empty());
    EXPECT_EQ(RunNfa(rewritten, OrderPlan::Identity(n), stream), seq_matches);
    std::vector<int> reversed(n);
    for (int i = 0; i < n; ++i) reversed[i] = n - 1 - i;
    EXPECT_EQ(RunNfa(rewritten, OrderPlan(reversed), stream), seq_matches);
    EXPECT_EQ(
        RunTree(rewritten, TreePlan::LeftDeep(OrderPlan::Identity(n)), stream),
        seq_matches);
  }
}

TEST(Theorem4Test, KleeneMatchCountIsPowerSetOfQualifyingEvents) {
  // SEQ(A, KL(B), C): for each (a, c) pair satisfying the window, the
  // engine must report 2^k - 1 matches where k counts B events strictly
  // between a and c and within the window of both.
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, true},
                                   {world.types[2], "c", false, false}};
  SimplePattern pattern(OperatorKind::kSeq, events, {}, 2.0);
  EventStream stream = RandomStream(world, 3, 80, 40);

  uint64_t expected = 0;
  for (const EventPtr& a : stream.events()) {
    if (a->type != world.types[0]) continue;
    for (const EventPtr& c : stream.events()) {
      if (c->type != world.types[2]) continue;
      if (c->ts <= a->ts || c->ts - a->ts > pattern.window()) continue;
      int k = 0;
      for (const EventPtr& b : stream.events()) {
        if (b->type != world.types[1]) continue;
        if (b->ts > a->ts && b->ts < c->ts) ++k;
      }
      expected += (uint64_t{1} << k) - 1;
    }
  }
  ASSERT_GT(expected, 0u);
  EXPECT_EQ(RunNfa(pattern, OrderPlan::Identity(3), stream).size(), expected);
  EXPECT_EQ(
      RunTree(pattern, TreePlan::LeftDeep(OrderPlan::Identity(3)), stream)
          .size(),
      expected);
}

}  // namespace
}  // namespace cepjoin
