// Instance-store columnar / scalar equivalence: the vectorized
// instance×instance combine (TreeEngine::CombineWithInstanceRun over the
// per-node InstanceStore mirrors) must reproduce the scalar oracle's
// match sequences and counters — including predicate_evals and the
// instance-byte accounting — across pattern families (conjunction,
// nested disjunction, negation-adjacent), both selection strategies,
// batch sizes 1/7/1024, and the sharded runtime at 1/2/4 threads. The
// instance_kernel_lanes/blocks counters additionally pin which runs
// actually took the kernel path: positive on columnar tree runs with
// internal siblings, zero on every scalar run and under skip-till-next.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine_factory.h"
#include "parallel/sharded_runtime.h"
#include "runtime/column_buffer.h"
#include "stats/collector.h"
#include "workload/keyed_generator.h"
#include "workload/pattern_generator.h"

namespace cepjoin {
namespace {

struct FeedResult {
  std::vector<std::string> emission_order;
  EngineCounters counters;
};

void ExpectCountersEqual(const EngineCounters& a, const EngineCounters& b) {
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.instances_created, b.instances_created);
  EXPECT_EQ(a.matches_emitted, b.matches_emitted);
  EXPECT_EQ(a.predicate_evals, b.predicate_evals);
  EXPECT_EQ(a.live_instances, b.live_instances);
  EXPECT_EQ(a.peak_live_instances, b.peak_live_instances);
  EXPECT_EQ(a.buffered_events, b.buffered_events);
  EXPECT_EQ(a.peak_buffered_events, b.peak_buffered_events);
  EXPECT_EQ(a.instance_bytes, b.instance_bytes);
  // store_bytes / buffered_bytes / peak_total_bytes are deliberately NOT
  // compared across modes: the instance-store and leaf mirrors only
  // exist when the columnar path is on, and exact accounting charges
  // them, so the scalar run is genuinely smaller.
  // instance_kernel_lanes/blocks differ by design (zero on the oracle);
  // they get their own assertions below.
}

/// RAII toggle so a failing assertion cannot leave the process scalar.
struct ColumnarSwitch {
  explicit ColumnarSwitch(bool enabled) { SetColumnarKernelsEnabled(enabled); }
  ~ColumnarSwitch() { SetColumnarKernelsEnabled(true); }
};

class InstanceColumnarEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StockGeneratorConfig stock;
    stock.num_symbols = 10;
    stock.duration_seconds = 6.0;
    universe_ = new StockUniverse(GenerateStockStream(stock));
    collector_ =
        new StatsCollector(universe_->stream, universe_->registry.size());
  }
  static void TearDownTestSuite() {
    delete collector_;
    collector_ = nullptr;
    delete universe_;
    universe_ = nullptr;
  }

  static FeedResult Drain(Engine* engine, CollectingSink* sink,
                          size_t batch_size) {
    const std::vector<EventPtr>& events = universe_->stream.events();
    for (size_t i = 0; i < events.size(); i += batch_size) {
      engine->OnBatch(events.data() + i,
                      std::min(batch_size, events.size() - i));
    }
    engine->Finish();
    FeedResult run;
    for (const Match& m : sink->matches) {
      run.emission_order.push_back(std::to_string(m.subpattern) + ":" +
                                   m.Fingerprint());
    }
    run.counters = engine->counters();
    return run;
  }

  static FeedResult Feed(const SimplePattern& pattern, const EnginePlan& plan,
                         bool columnar, size_t batch_size) {
    ColumnarSwitch guard(columnar);
    CollectingSink sink;
    std::unique_ptr<Engine> engine = BuildEngine(pattern, plan, &sink);
    return Drain(engine.get(), &sink, batch_size);
  }

  enum class Kernel {
    kRequired,   // columnar runs must report kernel lanes
    kForbidden,  // kernel lanes must stay zero even in columnar mode
    kEither,     // plan-dependent eligibility: only equivalence is pinned
  };

  /// Scalar tree baseline at batch 64, then columnar at batches
  /// {1, 7, 1024}: identical emission and counters. `expect_kernel`
  /// additionally pins whether the columnar runs really took the
  /// instance-kernel path (the scalar one never does).
  static void ExpectInstanceColumnarMatchesScalar(
      const std::string& algorithm, PatternFamily family, int size,
      uint64_t seed, double window = 1.0,
      SelectionStrategy strategy = SelectionStrategy::kSkipTillAny,
      Kernel expect_kernel = Kernel::kRequired) {
    PatternGenConfig pg;
    pg.family = family;
    pg.size = size;
    pg.window = window;
    pg.seed = seed;
    pg.strategy = strategy;
    SimplePattern pattern = GeneratePattern(*universe_, pg)[0];
    CostFunction cost =
        MakeCostFunction(pattern, collector_->CollectForPattern(pattern), 0.0);
    EnginePlan plan = MakePlan(algorithm, cost).value();

    FeedResult scalar = Feed(pattern, plan, /*columnar=*/false, 64);
    ASSERT_GT(scalar.counters.events_processed, 0u);
    EXPECT_GT(scalar.counters.predicate_evals, 0u);
    EXPECT_EQ(scalar.counters.instance_kernel_lanes, 0u);
    EXPECT_EQ(scalar.counters.instance_kernel_blocks, 0u);
    for (size_t batch_size : {1u, 7u, 1024u}) {
      SCOPED_TRACE(algorithm + " batch_size=" + std::to_string(batch_size));
      FeedResult columnar = Feed(pattern, plan, /*columnar=*/true, batch_size);
      EXPECT_EQ(columnar.emission_order, scalar.emission_order);
      ExpectCountersEqual(columnar.counters, scalar.counters);
      if (expect_kernel == Kernel::kRequired) {
        EXPECT_GT(columnar.counters.instance_kernel_lanes, 0u);
        EXPECT_GT(columnar.counters.instance_kernel_blocks, 0u);
        // One 64-lane block covers up to 64 candidate lanes.
        EXPECT_LE(columnar.counters.instance_kernel_blocks,
                  columnar.counters.instance_kernel_lanes);
      } else if (expect_kernel == Kernel::kForbidden) {
        EXPECT_EQ(columnar.counters.instance_kernel_lanes, 0u);
        EXPECT_EQ(columnar.counters.instance_kernel_blocks, 0u);
      }
    }
  }

  static StockUniverse* universe_;
  static StatsCollector* collector_;
};

StockUniverse* InstanceColumnarEquivalenceTest::universe_ = nullptr;
StatsCollector* InstanceColumnarEquivalenceTest::collector_ = nullptr;

TEST_F(InstanceColumnarEquivalenceTest, BushyConjunction) {
  // AND under DP-B: bushy trees where both children of internal joins
  // buffer instances — the instance-store's primary shape.
  ExpectInstanceColumnarMatchesScalar("DP-B", PatternFamily::kConjunction, 4,
                                      89, 0.3);
}

TEST_F(InstanceColumnarEquivalenceTest, BushyConjunctionLarge) {
  ExpectInstanceColumnarMatchesScalar("DP-B", PatternFamily::kConjunction, 5,
                                      189, 0.25);
}

TEST_F(InstanceColumnarEquivalenceTest, BushySequence) {
  ExpectInstanceColumnarMatchesScalar("DP-B", PatternFamily::kSequence, 5, 87);
}

TEST_F(InstanceColumnarEquivalenceTest, LeftDeepSequenceZstream) {
  // Left-deep: every fresh leaf instance probes an internal sibling's
  // store, so ZSTREAM exercises the kernel from the leaf side.
  ExpectInstanceColumnarMatchesScalar("ZSTREAM", PatternFamily::kSequence, 4,
                                      83);
}

TEST_F(InstanceColumnarEquivalenceTest, NegationAdjacent) {
  ExpectInstanceColumnarMatchesScalar("ZSTREAM", PatternFamily::kNegation, 4,
                                      91);
}

TEST_F(InstanceColumnarEquivalenceTest, NegationAdjacentBushy) {
  ExpectInstanceColumnarMatchesScalar("DP-B", PatternFamily::kNegation, 4,
                                      191);
}

TEST_F(InstanceColumnarEquivalenceTest, KleeneStoreSideStaysExact) {
  // Nodes whose parent cross pairs read the Kleene position on the store
  // side are ineligible for mirroring; whether any eligible node remains
  // depends on the plan, so only equivalence is pinned here.
  ExpectInstanceColumnarMatchesScalar("DP-B", PatternFamily::kKleene, 3, 93,
                                      0.6, SelectionStrategy::kSkipTillAny,
                                      Kernel::kEither);
}

TEST_F(InstanceColumnarEquivalenceTest, SkipTillNextStaysScalar) {
  // skip-till-next keeps the whole engine scalar (first-success early
  // exit): the kernel counters must stay zero in columnar mode too.
  ExpectInstanceColumnarMatchesScalar("ZSTREAM", PatternFamily::kSequence, 4,
                                      95, 1.0, SelectionStrategy::kSkipTillNext,
                                      Kernel::kForbidden);
}

TEST_F(InstanceColumnarEquivalenceTest, NestedDisjunctionDnf) {
  // Disjunction lowers to a DNF multi-engine; every sub-engine gets its
  // own tree plan and instance stores, all draining one shared sink.
  PatternGenConfig pg;
  pg.family = PatternFamily::kDisjunction;
  pg.size = 3;
  pg.window = 1.0;
  pg.seed = 101;
  std::vector<SimplePattern> subpatterns = GeneratePattern(*universe_, pg);
  ASSERT_GT(subpatterns.size(), 1u);
  std::vector<EnginePlan> plans;
  for (const SimplePattern& sub : subpatterns) {
    CostFunction cost =
        MakeCostFunction(sub, collector_->CollectForPattern(sub), 0.0);
    plans.push_back(MakePlan("DP-B", cost).value());
  }

  auto feed = [&](bool columnar, size_t batch_size) {
    ColumnarSwitch guard(columnar);
    CollectingSink sink;
    std::unique_ptr<Engine> engine = BuildDnfEngine(subpatterns, plans, &sink);
    return Drain(engine.get(), &sink, batch_size);
  };

  FeedResult scalar = feed(/*columnar=*/false, 64);
  ASSERT_GT(scalar.emission_order.size(), 0u);
  EXPECT_EQ(scalar.counters.instance_kernel_lanes, 0u);
  for (size_t batch_size : {1u, 7u, 1024u}) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
    FeedResult columnar = feed(/*columnar=*/true, batch_size);
    EXPECT_EQ(columnar.emission_order, scalar.emission_order);
    ExpectCountersEqual(columnar.counters, scalar.counters);
    EXPECT_GT(columnar.counters.instance_kernel_lanes, 0u);
  }
}

TEST_F(InstanceColumnarEquivalenceTest, ShardedRuntimeTreeEngines) {
  // Tree engines behind the sharded runtime: the seed sequence is the
  // scalar interpreter on one thread; every (columnar, threads, batch)
  // combination must drain the identical match sequence with identical
  // summed counters, and the summed kernel counters must be positive
  // exactly on the columnar runs.
  KeyedWorkload workload = MakeKeyedWorkload(8, 6.0, 11);

  auto run = [&](bool columnar, size_t threads, size_t batch_size) {
    ColumnarSwitch guard(columnar);
    CollectingSink sink;
    ShardedOptions options;
    options.num_threads = threads;
    options.batch_size = batch_size;
    ShardedRuntime runtime(workload.pattern, workload.stream,
                           workload.registry.size(), "DP-B", &sink, options);
    runtime.ProcessStream(workload.stream);
    runtime.Finish();
    FeedResult result;
    for (const Match& m : sink.matches) {
      result.emission_order.push_back(m.Fingerprint());
    }
    result.counters = runtime.TotalCounters();
    return result;
  };

  FeedResult scalar = run(/*columnar=*/false, 1, 64);
  ASSERT_GT(scalar.emission_order.size(), 0u);
  EXPECT_EQ(scalar.counters.instance_kernel_lanes, 0u);
  for (size_t batch_size : {1u, 7u, 1024u}) {
    uint64_t single_thread_lanes = 0;
    for (size_t threads : {1u, 2u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch_size));
      FeedResult columnar = run(/*columnar=*/true, threads, batch_size);
      EXPECT_EQ(columnar.emission_order, scalar.emission_order);
      EXPECT_EQ(columnar.counters.events_processed,
                scalar.counters.events_processed);
      EXPECT_EQ(columnar.counters.matches_emitted,
                scalar.counters.matches_emitted);
      EXPECT_EQ(columnar.counters.instances_created,
                scalar.counters.instances_created);
      EXPECT_EQ(columnar.counters.predicate_evals,
                scalar.counters.predicate_evals);
      EXPECT_GT(columnar.counters.instance_kernel_lanes, 0u);
      // Partition sub-streams are disjoint, so lane totals are
      // thread-count invariant in columnar mode.
      if (threads == 1) {
        single_thread_lanes = columnar.counters.instance_kernel_lanes;
      } else {
        EXPECT_EQ(columnar.counters.instance_kernel_lanes,
                  single_thread_lanes);
      }
    }
  }
}

}  // namespace
}  // namespace cepjoin
