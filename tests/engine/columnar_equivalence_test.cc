// Columnar / scalar engine equivalence: running the same stream with the
// columnar kernels enabled and disabled (the scalar interpreter oracle)
// must produce byte-identical match sequences and identical counters —
// including predicate_evals — for both engine classes, every pattern
// family, both selection strategies, any batch size, and across the
// sharded runtime at 1/2/4 worker threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine_factory.h"
#include "parallel/sharded_runtime.h"
#include "runtime/column_buffer.h"
#include "stats/collector.h"
#include "workload/keyed_generator.h"
#include "workload/pattern_generator.h"

namespace cepjoin {
namespace {

struct FeedResult {
  std::vector<std::string> emission_order;
  EngineCounters counters;
};

void ExpectCountersEqual(const EngineCounters& a, const EngineCounters& b) {
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.instances_created, b.instances_created);
  EXPECT_EQ(a.matches_emitted, b.matches_emitted);
  EXPECT_EQ(a.predicate_evals, b.predicate_evals);
  EXPECT_EQ(a.live_instances, b.live_instances);
  EXPECT_EQ(a.peak_live_instances, b.peak_live_instances);
  EXPECT_EQ(a.buffered_events, b.buffered_events);
  EXPECT_EQ(a.peak_buffered_events, b.peak_buffered_events);
  EXPECT_EQ(a.instance_bytes, b.instance_bytes);
  // buffered_bytes / peak_total_bytes are deliberately NOT compared
  // across modes: exact accounting charges the column mirrors, which
  // only exist when the columnar path is on, so the scalar run's window
  // buffers are genuinely smaller. batch_equivalence_test pins byte
  // equality within a mode.
}

/// RAII toggle so a failing assertion cannot leave the process scalar.
struct ColumnarSwitch {
  explicit ColumnarSwitch(bool enabled) {
    SetColumnarKernelsEnabled(enabled);
  }
  ~ColumnarSwitch() { SetColumnarKernelsEnabled(true); }
};

class ColumnarEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StockGeneratorConfig stock;
    stock.num_symbols = 10;
    stock.duration_seconds = 6.0;
    universe_ = new StockUniverse(GenerateStockStream(stock));
    collector_ =
        new StatsCollector(universe_->stream, universe_->registry.size());
  }
  static void TearDownTestSuite() {
    delete collector_;
    collector_ = nullptr;
    delete universe_;
    universe_ = nullptr;
  }

  static FeedResult Feed(const SimplePattern& pattern, const EnginePlan& plan,
                         bool columnar, size_t batch_size) {
    ColumnarSwitch guard(columnar);
    CollectingSink sink;
    std::unique_ptr<Engine> engine = BuildEngine(pattern, plan, &sink);
    const std::vector<EventPtr>& events = universe_->stream.events();
    for (size_t i = 0; i < events.size(); i += batch_size) {
      engine->OnBatch(events.data() + i,
                      std::min(batch_size, events.size() - i));
    }
    engine->Finish();
    FeedResult run;
    for (const Match& m : sink.matches) {
      run.emission_order.push_back(m.Fingerprint());
    }
    run.counters = engine->counters();
    return run;
  }

  static void ExpectColumnarMatchesScalar(const std::string& algorithm,
                                          PatternFamily family, int size,
                                          uint64_t seed, double window = 1.0,
                                          SelectionStrategy strategy =
                                              SelectionStrategy::kSkipTillAny) {
    PatternGenConfig pg;
    pg.family = family;
    pg.size = size;
    pg.window = window;
    pg.seed = seed;
    pg.strategy = strategy;
    SimplePattern pattern = GeneratePattern(*universe_, pg)[0];
    CostFunction cost = MakeCostFunction(
        pattern, collector_->CollectForPattern(pattern), 0.0);
    EnginePlan plan = MakePlan(algorithm, cost).value();

    FeedResult scalar = Feed(pattern, plan, /*columnar=*/false, 64);
    ASSERT_GT(scalar.counters.events_processed, 0u);
    EXPECT_GT(scalar.counters.predicate_evals, 0u);
    for (size_t batch_size : {1u, 7u, 1024u}) {
      SCOPED_TRACE(algorithm + " batch_size=" + std::to_string(batch_size));
      FeedResult columnar = Feed(pattern, plan, /*columnar=*/true,
                                 batch_size);
      EXPECT_EQ(columnar.emission_order, scalar.emission_order);
      ExpectCountersEqual(columnar.counters, scalar.counters);
    }
  }

  static StockUniverse* universe_;
  static StatsCollector* collector_;
};

StockUniverse* ColumnarEquivalenceTest::universe_ = nullptr;
StatsCollector* ColumnarEquivalenceTest::collector_ = nullptr;

TEST_F(ColumnarEquivalenceTest, NfaSequence) {
  ExpectColumnarMatchesScalar("GREEDY", PatternFamily::kSequence, 4, 71);
}

TEST_F(ColumnarEquivalenceTest, NfaSequenceLarge) {
  // Size 6 exercises multi-pair creation scans (several EvalPairRun
  // gates per run); the tight window keeps the partial-match
  // combinatorics test-sized.
  ExpectColumnarMatchesScalar("GREEDY", PatternFamily::kSequence, 6, 171,
                              0.4);
}

TEST_F(ColumnarEquivalenceTest, NfaNegation) {
  ExpectColumnarMatchesScalar("GREEDY", PatternFamily::kNegation, 4, 73);
}

TEST_F(ColumnarEquivalenceTest, NfaKleene) {
  ExpectColumnarMatchesScalar("GREEDY", PatternFamily::kKleene, 3, 79, 0.6);
}

TEST_F(ColumnarEquivalenceTest, NfaConjunction) {
  ExpectColumnarMatchesScalar("GREEDY", PatternFamily::kConjunction, 4, 81,
                              0.3);
}

TEST_F(ColumnarEquivalenceTest, NfaSkipTillNextStaysScalar) {
  // skip-till-next keeps the scalar path on both runs (first-success
  // early exit); the toggle must still be a no-op for it.
  ExpectColumnarMatchesScalar("GREEDY", PatternFamily::kSequence, 4, 85, 1.0,
                              SelectionStrategy::kSkipTillNext);
}

TEST_F(ColumnarEquivalenceTest, TreeSequenceZstream) {
  ExpectColumnarMatchesScalar("ZSTREAM", PatternFamily::kSequence, 4, 83);
}

TEST_F(ColumnarEquivalenceTest, TreeSequenceBushy) {
  ExpectColumnarMatchesScalar("DP-B", PatternFamily::kSequence, 5, 87);
}

TEST_F(ColumnarEquivalenceTest, TreeConjunction) {
  ExpectColumnarMatchesScalar("DP-B", PatternFamily::kConjunction, 4, 89,
                              0.3);
}

TEST_F(ColumnarEquivalenceTest, TreeNegation) {
  ExpectColumnarMatchesScalar("ZSTREAM", PatternFamily::kNegation, 4, 91);
}

TEST_F(ColumnarEquivalenceTest, TreeKleene) {
  ExpectColumnarMatchesScalar("DP-B", PatternFamily::kKleene, 3, 93, 0.6);
}

TEST_F(ColumnarEquivalenceTest, TreeSkipTillNextStaysScalar) {
  ExpectColumnarMatchesScalar("ZSTREAM", PatternFamily::kSequence, 4, 95,
                              1.0, SelectionStrategy::kSkipTillNext);
}

TEST_F(ColumnarEquivalenceTest, ShardedRuntimeAcrossThreadsAndBatchSizes) {
  // The seed sequence: scalar interpreter, single worker thread. Every
  // (columnar, threads, batch) combination must drain the identical
  // match sequence with identical summed counters.
  KeyedWorkload workload = MakeKeyedWorkload(8, 6.0, 11);

  auto run = [&](bool columnar, size_t threads, size_t batch_size) {
    ColumnarSwitch guard(columnar);
    CollectingSink sink;
    ShardedOptions options;
    options.num_threads = threads;
    options.batch_size = batch_size;
    ShardedRuntime runtime(workload.pattern, workload.stream,
                           workload.registry.size(), "GREEDY", &sink,
                           options);
    runtime.ProcessStream(workload.stream);
    runtime.Finish();
    FeedResult result;
    for (const Match& m : sink.matches) {
      result.emission_order.push_back(m.Fingerprint());
    }
    result.counters = runtime.TotalCounters();
    return result;
  };

  FeedResult scalar = run(/*columnar=*/false, 1, 64);
  ASSERT_GT(scalar.emission_order.size(), 0u);
  for (size_t threads : {1u, 2u, 4u}) {
    for (size_t batch_size : {1u, 7u, 1024u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch_size));
      FeedResult columnar = run(/*columnar=*/true, threads, batch_size);
      EXPECT_EQ(columnar.emission_order, scalar.emission_order);
      EXPECT_EQ(columnar.counters.events_processed,
                scalar.counters.events_processed);
      EXPECT_EQ(columnar.counters.matches_emitted,
                scalar.counters.matches_emitted);
      EXPECT_EQ(columnar.counters.instances_created,
                scalar.counters.instances_created);
      EXPECT_EQ(columnar.counters.predicate_evals,
                scalar.counters.predicate_evals);
    }
  }
}

}  // namespace
}  // namespace cepjoin
