// Cross-engine equivalence: the lazy NFA under every order plan and the
// tree engine under every optimizer's plan must detect the exact same
// match sets — the semantic backbone of the whole study (plans change
// cost, never results).

#include <gtest/gtest.h>

#include "engine/engine_factory.h"
#include "nfa/nfa_engine.h"
#include "optimizer/registry.h"
#include "testing/test_util.h"
#include "tree/tree_engine.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::World;

EventStream RandomStream(const World& world, int n_types, int count,
                         uint64_t seed, double max_step = 0.25) {
  Rng rng(seed);
  EventStream stream;
  double ts = 0.0;
  for (int i = 0; i < count; ++i) {
    ts += rng.UniformReal(0.01, max_step);
    stream.Append(Ev(world.types[rng.UniformInt(0, n_types - 1)], ts,
                     rng.UniformReal(-2.0, 2.0)));
  }
  return stream;
}

std::vector<std::string> RunNfa(const SimplePattern& p, const OrderPlan& plan,
                                const EventStream& stream) {
  CollectingSink sink;
  NfaEngine engine(p, plan, &sink);
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  return sink.Fingerprints();
}

std::vector<std::string> RunTree(const SimplePattern& p, const TreePlan& plan,
                                 const EventStream& stream) {
  CollectingSink sink;
  TreeEngine engine(p, plan, &sink);
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  return sink.Fingerprints();
}

struct EquivalenceCase {
  OperatorKind op;
  int size;
  SelectionStrategy strategy;
  uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os,
                                  const EquivalenceCase& c) {
    return os << OperatorName(c.op) << "_n" << c.size << "_"
              << (c.strategy == SelectionStrategy::kSkipTillAny ? "any"
                                                                : "other")
              << "_s" << c.seed;
  }
};

class EngineEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EngineEquivalenceTest, NfaAndTreeAgreeUnderAllPaperPlans) {
  const EquivalenceCase& c = GetParam();
  World world = MakeWorld(c.size);
  std::vector<EventSpec> events;
  for (int i = 0; i < c.size; ++i) {
    events.push_back({world.types[i], "e" + std::to_string(i), false, false});
  }
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, c.size - 1, 0)};
  SimplePattern pattern(c.op, events, conditions, 2.5, c.strategy);
  EventStream stream = RandomStream(world, c.size, 150, c.seed);

  // Reference: NFA with the trivial order.
  std::vector<std::string> reference =
      RunNfa(pattern, OrderPlan::Identity(c.size), stream);

  // Plans from statistics measured on the stream itself.
  Rng rng(c.seed + 1);
  PatternStats stats = testing_util::RandomStats(c.size, rng);
  CostFunction cost(stats, pattern.window());

  for (const std::string& name : PaperOrderAlgorithms()) {
    OrderPlan plan = MakeOrderOptimizer(name).value()->Optimize(cost);
    EXPECT_EQ(RunNfa(pattern, plan, stream), reference)
        << name << " " << plan.Describe();
  }
  for (const std::string& name : PaperTreeAlgorithms()) {
    TreePlan plan = MakeTreeOptimizer(name).value()->Optimize(cost);
    EXPECT_EQ(RunTree(pattern, plan, stream), reference)
        << name << " " << plan.Describe();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EngineEquivalenceTest,
    ::testing::Values(
        EquivalenceCase{OperatorKind::kSeq, 3, SelectionStrategy::kSkipTillAny, 1},
        EquivalenceCase{OperatorKind::kSeq, 4, SelectionStrategy::kSkipTillAny, 2},
        EquivalenceCase{OperatorKind::kSeq, 5, SelectionStrategy::kSkipTillAny, 3},
        EquivalenceCase{OperatorKind::kAnd, 3, SelectionStrategy::kSkipTillAny, 4},
        EquivalenceCase{OperatorKind::kAnd, 4, SelectionStrategy::kSkipTillAny, 5},
        EquivalenceCase{OperatorKind::kSeq, 3,
                        SelectionStrategy::kStrictContiguity, 6},
        EquivalenceCase{OperatorKind::kSeq, 4,
                        SelectionStrategy::kPartitionContiguity, 7}));

TEST(EngineEquivalenceTest, NegationPatternsAgreeAcrossEngines) {
  World world = MakeWorld(4);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, false},
                                   {world.types[3], "d", false, false}};
  SimplePattern pattern(OperatorKind::kSeq, events, {}, 2.0);
  EventStream stream = RandomStream(world, 4, 200, 11);
  std::vector<std::string> reference =
      RunNfa(pattern, OrderPlan::Identity(3), stream);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(RunNfa(pattern, OrderPlan({2, 0, 1}), stream), reference);
  EXPECT_EQ(RunNfa(pattern, OrderPlan({1, 2, 0}), stream), reference);
  EXPECT_EQ(
      RunTree(pattern, TreePlan::LeftDeep(OrderPlan::Identity(3)), stream),
      reference);
  EXPECT_EQ(RunTree(pattern, TreePlan::LeftDeep(OrderPlan({2, 1, 0})), stream),
            reference);
}

TEST(EngineEquivalenceTest, KleenePatternsAgreeAcrossEngines) {
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, true},
                                   {world.types[2], "c", false, false}};
  SimplePattern pattern(OperatorKind::kSeq, events, {}, 1.5);
  EventStream stream = RandomStream(world, 3, 120, 13);
  std::vector<std::string> reference =
      RunNfa(pattern, OrderPlan::Identity(3), stream);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(RunNfa(pattern, OrderPlan({2, 0, 1}), stream), reference);
  EXPECT_EQ(
      RunTree(pattern, TreePlan::LeftDeep(OrderPlan::Identity(3)), stream),
      reference);
  TreePlan::Builder b;
  int l0 = b.AddLeaf(0);
  int l2 = b.AddLeaf(2);
  int l1 = b.AddLeaf(1);
  TreePlan reordered = b.Build(b.AddInternal(b.AddInternal(l0, l2), l1));
  EXPECT_EQ(RunTree(pattern, reordered, stream), reference);
}

TEST(EngineEquivalenceTest, SkipTillNextCountsAgree) {
  // Skip-till-next match identities are plan-dependent by design (which
  // event is "next" depends on processing order), but both engines must
  // agree on the trivial plan.
  World world = MakeWorld(3);
  SimplePattern pattern =
      testing_util::PurePattern(world, OperatorKind::kSeq, 3, 2.0)
          .WithStrategy(SelectionStrategy::kSkipTillNext);
  EventStream stream = RandomStream(world, 3, 150, 17);
  std::vector<std::string> nfa =
      RunNfa(pattern, OrderPlan::Identity(3), stream);
  std::vector<std::string> tree = RunTree(
      pattern, TreePlan::LeftDeep(OrderPlan::Identity(3)), stream);
  EXPECT_EQ(nfa, tree);
}

}  // namespace
}  // namespace cepjoin
