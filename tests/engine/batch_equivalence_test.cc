// OnBatch / OnEvent equivalence: feeding a stream through the batched
// entry point — at any batch size — must produce byte-identical match
// sequences and identical counters to per-event feeding, for both engine
// classes and for the CepRuntime facade.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "api/cep_runtime.h"
#include "engine/engine_factory.h"
#include "stats/collector.h"
#include "workload/pattern_generator.h"

namespace cepjoin {
namespace {

struct FeedResult {
  std::vector<std::string> emission_order;
  EngineCounters counters;
};

void ExpectCountersEqual(const EngineCounters& a, const EngineCounters& b) {
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.instances_created, b.instances_created);
  EXPECT_EQ(a.matches_emitted, b.matches_emitted);
  EXPECT_EQ(a.predicate_evals, b.predicate_evals);
  EXPECT_EQ(a.live_instances, b.live_instances);
  EXPECT_EQ(a.peak_live_instances, b.peak_live_instances);
  EXPECT_EQ(a.buffered_events, b.buffered_events);
  EXPECT_EQ(a.peak_buffered_events, b.peak_buffered_events);
  EXPECT_EQ(a.instance_bytes, b.instance_bytes);
  EXPECT_EQ(a.buffered_bytes, b.buffered_bytes);
  EXPECT_EQ(a.peak_total_bytes, b.peak_total_bytes);
}

class BatchEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StockGeneratorConfig stock;
    stock.num_symbols = 10;
    stock.duration_seconds = 6.0;
    universe_ = new StockUniverse(GenerateStockStream(stock));
    collector_ =
        new StatsCollector(universe_->stream, universe_->registry.size());
  }
  static void TearDownTestSuite() {
    delete collector_;
    collector_ = nullptr;
    delete universe_;
    universe_ = nullptr;
  }

  static FeedResult FeedEngine(const SimplePattern& pattern, const EnginePlan& plan,
                        size_t batch_size) {
    CollectingSink sink;
    std::unique_ptr<Engine> engine = BuildEngine(pattern, plan, &sink);
    const std::vector<EventPtr>& events = universe_->stream.events();
    if (batch_size == 0) {
      for (const EventPtr& e : events) engine->OnEvent(e);
    } else {
      for (size_t i = 0; i < events.size(); i += batch_size) {
        engine->OnBatch(events.data() + i,
                        std::min(batch_size, events.size() - i));
      }
    }
    engine->Finish();
    FeedResult run;
    for (const Match& m : sink.matches) {
      run.emission_order.push_back(m.Fingerprint());
    }
    run.counters = engine->counters();
    return run;
  }

  static void ExpectBatchedMatchesPerEvent(const std::string& algorithm,
                                           PatternFamily family, int size,
                                           uint64_t seed,
                                           double window = 1.0) {
    PatternGenConfig pg;
    pg.family = family;
    pg.size = size;
    pg.window = window;
    pg.seed = seed;
    SimplePattern pattern = GeneratePattern(*universe_, pg)[0];
    CostFunction cost = MakeCostFunction(
        pattern, collector_->CollectForPattern(pattern), 0.0);
    EnginePlan plan = MakePlan(algorithm, cost).value();

    FeedResult reference = FeedEngine(pattern, plan, 0);
    ASSERT_GT(reference.counters.events_processed, 0u);
    EXPECT_GT(reference.counters.predicate_evals, 0u);
    for (size_t batch_size : {1u, 7u, 256u}) {
      SCOPED_TRACE(algorithm + " batch_size=" + std::to_string(batch_size));
      FeedResult batched = FeedEngine(pattern, plan, batch_size);
      EXPECT_EQ(batched.emission_order, reference.emission_order);
      ExpectCountersEqual(batched.counters, reference.counters);
    }
  }

  static StockUniverse* universe_;
  static StatsCollector* collector_;
};

StockUniverse* BatchEquivalenceTest::universe_ = nullptr;
StatsCollector* BatchEquivalenceTest::collector_ = nullptr;

TEST_F(BatchEquivalenceTest, NfaEngineSequence) {
  ExpectBatchedMatchesPerEvent("GREEDY", PatternFamily::kSequence, 4, 71);
}

TEST_F(BatchEquivalenceTest, NfaEngineNegation) {
  ExpectBatchedMatchesPerEvent("GREEDY", PatternFamily::kNegation, 4, 73);
}

TEST_F(BatchEquivalenceTest, NfaEngineKleene) {
  ExpectBatchedMatchesPerEvent("GREEDY", PatternFamily::kKleene, 3, 79);
}

TEST_F(BatchEquivalenceTest, TreeEngineSequence) {
  ExpectBatchedMatchesPerEvent("ZSTREAM", PatternFamily::kSequence, 4, 83);
}

TEST_F(BatchEquivalenceTest, TreeEngineConjunction) {
  // AND over the full window is the cross-product-heaviest family: keep
  // the window tight so the suite stays fast under sanitizers.
  ExpectBatchedMatchesPerEvent("DP-B", PatternFamily::kConjunction, 4, 89,
                               0.3);
}

TEST_F(BatchEquivalenceTest, DnfMultiEnginePreservesEmissionInterleaving) {
  // A disjunction's sub-engines emit into one shared sink: batching must
  // not reorder the union (all of subpattern 0's matches before
  // subpattern 1's); the emission sequence — including the subpattern
  // tags — must match per-event feeding exactly.
  PatternGenConfig pg;
  pg.family = PatternFamily::kDisjunction;
  pg.size = 3;
  pg.window = 1.0;
  pg.seed = 101;
  std::vector<SimplePattern> subpatterns = GeneratePattern(*universe_, pg);
  ASSERT_GT(subpatterns.size(), 1u);
  std::vector<EnginePlan> plans;
  for (const SimplePattern& sub : subpatterns) {
    CostFunction cost =
        MakeCostFunction(sub, collector_->CollectForPattern(sub), 0.0);
    plans.push_back(MakePlan("GREEDY", cost).value());
  }

  auto feed = [&](size_t batch_size) {
    CollectingSink sink;
    std::unique_ptr<Engine> engine =
        BuildDnfEngine(subpatterns, plans, &sink);
    const std::vector<EventPtr>& events = universe_->stream.events();
    if (batch_size == 0) {
      for (const EventPtr& e : events) engine->OnEvent(e);
    } else {
      for (size_t i = 0; i < events.size(); i += batch_size) {
        engine->OnBatch(events.data() + i,
                        std::min(batch_size, events.size() - i));
      }
    }
    engine->Finish();
    std::vector<std::string> order;
    for (const Match& m : sink.matches) {
      order.push_back(std::to_string(m.subpattern) + ":" + m.Fingerprint());
    }
    return order;
  };

  std::vector<std::string> reference = feed(0);
  ASSERT_GT(reference.size(), 0u);
  for (size_t batch_size : {7u, 256u}) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
    EXPECT_EQ(feed(batch_size), reference);
  }
}

TEST_F(BatchEquivalenceTest, CepRuntimeProcessStreamIsBatched) {
  // The facade's ProcessStream chunks by RuntimeOptions::batch_size; any
  // batch size must reproduce the per-event match sequence and counters.
  PatternGenConfig pg;
  pg.family = PatternFamily::kSequence;
  pg.size = 4;
  pg.window = 1.0;
  pg.seed = 97;
  SimplePattern pattern = GeneratePattern(*universe_, pg)[0];
  PatternStats stats = collector_->CollectForPattern(pattern);

  RuntimeOptions reference_options;
  reference_options.algorithm = "GREEDY";
  CollectingSink reference_sink;
  CepRuntime reference(pattern, stats, reference_options, &reference_sink);
  for (const EventPtr& e : universe_->stream.events()) reference.OnEvent(e);
  reference.Finish();
  std::vector<std::string> reference_order;
  for (const Match& m : reference_sink.matches) {
    reference_order.push_back(m.Fingerprint());
  }
  ASSERT_GT(reference.counters().events_processed, 0u);

  for (size_t batch_size : {1u, 7u, 256u}) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
    RuntimeOptions options;
    options.algorithm = "GREEDY";
    options.batch_size = batch_size;
    CollectingSink sink;
    CepRuntime runtime(pattern, stats, options, &sink);
    runtime.ProcessStream(universe_->stream);
    runtime.Finish();
    std::vector<std::string> order;
    for (const Match& m : sink.matches) order.push_back(m.Fingerprint());
    EXPECT_EQ(order, reference_order);
    ExpectCountersEqual(runtime.counters(), reference.counters());
  }
}

TEST_F(BatchEquivalenceTest, DefaultOnBatchLoopsOnEvent) {
  // An engine that does not override OnBatch gets the per-event loop.
  class RecordingEngine : public Engine {
   public:
    void OnEvent(const EventPtr& e) override { serials.push_back(e->serial); }
    void Finish() override {}
    std::vector<EventSerial> serials;
  };
  RecordingEngine engine;
  const std::vector<EventPtr>& events = universe_->stream.events();
  size_t n = std::min<size_t>(events.size(), 10);
  engine.OnBatch(events.data(), n);
  ASSERT_EQ(engine.serials.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(engine.serials[i], events[i]->serial);
  }
}

}  // namespace
}  // namespace cepjoin
