// Delta-processing equivalence: feeding (insert S; retract R ⊆ S) must
// yield the same NET match multiset as feeding S∖R, for both engine
// classes, every pattern family, any batch size, and any thread count —
// and retracting everything must leave an engine quiescent: zero net
// matches and every live-resource counter (instances, buffered events,
// all byte gauges) back at exactly zero.
//
// Matches are compared by canonical slot identity (type:timestamp per
// event) rather than Match::Fingerprint, because serials differ between
// the delta stream and the S∖R stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "adaptive/partitioned_runtime.h"
#include "engine/engine_factory.h"
#include "parallel/sharded_runtime.h"
#include "stats/collector.h"
#include "workload/keyed_generator.h"
#include "workload/pattern_generator.h"

namespace cepjoin {
namespace {

// ---------------------------------------------------------------------
// Canonical (serial-free) match identity.

std::string CanonicalEventId(const Event& e) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u@%.17g", static_cast<unsigned>(e.type),
                e.ts);
  return buf;
}

std::string CanonicalMatchId(const Match& m) {
  std::string id;
  for (const auto& slot : m.slots) {
    std::vector<std::string> members;
    for (const EventPtr& e : slot) members.push_back(CanonicalEventId(*e));
    std::sort(members.begin(), members.end());
    for (const std::string& s : members) {
      id += s;
      id += ',';
    }
    id += '|';
  }
  return id;
}

// ---------------------------------------------------------------------
// Delta-stream construction: S with interleaved retractions, and S∖R.

struct DeltaStreams {
  EventStream delta;      // every insert of S + a retraction per R member
  EventStream reference;  // S ∖ R, inserts only
  size_t num_retractions = 0;
};

using RetractKey = std::tuple<TypeId, uint32_t, Timestamp>;

// Retracts every `retract_every`-th eligible event, `delay` seconds
// after its occurrence. Eligible events are the LAST occurrence of
// their (type, partition, ts) key — the ledger resolves LIFO, so only
// last occurrences identify a unique target — and not of an excluded
// (negated) type. retract_every == 1 retracts every eligible event.
DeltaStreams BuildDeltaStreams(const EventStream& base,
                               const std::vector<TypeId>& excluded_types,
                               int retract_every, double delay) {
  const std::vector<EventPtr>& events = base.events();
  std::map<RetractKey, size_t> last_of_key;
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = *events[i];
    last_of_key[RetractKey(e.type, e.partition, e.ts)] = i;
  }

  std::vector<uint8_t> retracted(events.size(), 0);
  std::vector<Event> retractions;
  int eligible_seen = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = *events[i];
    if (last_of_key.at(RetractKey(e.type, e.partition, e.ts)) != i) continue;
    bool excluded = false;
    for (TypeId t : excluded_types) excluded |= (e.type == t);
    if (excluded) continue;
    if (eligible_seen++ % retract_every != 0) continue;
    retracted[i] = 1;
    Event r;
    r.type = e.type;
    r.partition = e.partition;
    r.polarity = -1;
    r.ts = e.ts + delay;
    r.target_ts = e.ts;
    retractions.push_back(r);
  }

  DeltaStreams out;
  out.num_retractions = retractions.size();
  out.delta.EnableRetractions();
  size_t j = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    // Retractions strictly before the next insert; an insert landing on
    // the same timestamp as a pending retraction goes first, matching
    // the ingest merge's insert-before-retraction tie-break.
    while (j < retractions.size() && retractions[j].ts < events[i]->ts) {
      out.delta.Append(retractions[j++]);
    }
    Event copy = *events[i];
    copy.serial = 0;
    copy.partition_seq = 0;
    out.delta.Append(copy);
    if (!retracted[i]) {
      Event survivor = *events[i];
      survivor.serial = 0;
      survivor.partition_seq = 0;
      out.reference.Append(survivor);
    }
  }
  while (j < retractions.size()) out.delta.Append(retractions[j++]);
  return out;
}

// ---------------------------------------------------------------------
// Feeding + net-multiset accounting.

struct NetResult {
  /// Canonical id -> net count (emissions minus revocations), zero
  /// entries erased.
  std::map<std::string, int64_t> net;
  /// Emission-ordered, polarity-tagged canonical ids ("+id" / "-id").
  std::vector<std::string> drain;
  uint64_t gross = 0;
  uint64_t revoked = 0;
  EngineCounters counters;
  bool revocation_without_match = false;
};

NetResult Account(const std::vector<Match>& matches) {
  NetResult r;
  for (const Match& m : matches) {
    std::string id = CanonicalMatchId(m);
    if (m.IsRevocation()) {
      ++r.revoked;
      // A revocation must always land on an outstanding match: the
      // engines emit it only for a logged prior emission, and the
      // concurrent sink drains it after that emission.
      if (r.net[id] <= 0) r.revocation_without_match = true;
      r.net[id] -= 1;
      r.drain.push_back("-" + id);
    } else {
      ++r.gross;
      r.net[id] += 1;
      r.drain.push_back("+" + id);
    }
  }
  for (auto it = r.net.begin(); it != r.net.end();) {
    it = it->second == 0 ? r.net.erase(it) : std::next(it);
  }
  return r;
}

NetResult FeedEngine(const SimplePattern& pattern, const EnginePlan& plan,
                     const EventStream& stream, size_t batch_size) {
  CollectingSink sink;
  std::unique_ptr<Engine> engine = BuildEngine(pattern, plan, &sink);
  const std::vector<EventPtr>& events = stream.events();
  if (batch_size == 0) {
    for (const EventPtr& e : events) engine->OnEvent(e);
  } else {
    for (size_t i = 0; i < events.size(); i += batch_size) {
      engine->OnBatch(events.data() + i,
                      std::min(batch_size, events.size() - i));
    }
  }
  engine->Finish();
  NetResult r = Account(sink.matches);
  r.counters = engine->counters();
  return r;
}

void ExpectQuiescent(const EngineCounters& c) {
  EXPECT_EQ(c.live_instances, 0u);
  EXPECT_EQ(c.buffered_events, 0u);
  EXPECT_EQ(c.instance_bytes, 0u);
  EXPECT_EQ(c.buffered_bytes, 0u);
  EXPECT_EQ(c.store_bytes, 0u);
  EXPECT_EQ(c.CurrentBytes(), 0u);
  EXPECT_EQ(c.matches_emitted, c.matches_revoked);
}

// ---------------------------------------------------------------------
// Single-engine matrix.

class RetractionEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StockGeneratorConfig stock;
    stock.num_symbols = 10;
    stock.duration_seconds = 6.0;
    universe_ = new StockUniverse(GenerateStockStream(stock));
    collector_ =
        new StatsCollector(universe_->stream, universe_->registry.size());
  }
  static void TearDownTestSuite() {
    delete collector_;
    collector_ = nullptr;
    delete universe_;
    universe_ = nullptr;
  }

  static std::vector<TypeId> NegatedTypes(const SimplePattern& pattern) {
    std::vector<TypeId> types;
    for (int pos : pattern.negated_positions()) {
      types.push_back(pattern.events()[pos].type);
    }
    return types;
  }

  /// The full per-engine check: net(S + retract R) == matches(S∖R) at
  /// every batch size, deterministic delta emission order across batch
  /// sizes, counters balanced, and the delta machinery invisible to an
  /// insert-only stream.
  static void ExpectRetractionEquivalence(const std::string& algorithm,
                                          PatternFamily family, int size,
                                          uint64_t seed, double window = 1.0,
                                          int retract_every = 4) {
    PatternGenConfig pg;
    pg.family = family;
    pg.size = size;
    pg.window = window;
    pg.seed = seed;
    SimplePattern pattern = GeneratePattern(*universe_, pg)[0];
    SimplePattern delta_pattern = pattern.WithDeltaInput();
    CostFunction cost = MakeCostFunction(
        pattern, collector_->CollectForPattern(pattern), 0.0);
    EnginePlan plan = MakePlan(algorithm, cost).value();

    // Retracting a negated-type event could only ever *resurrect*
    // suppressed matches, which delta processing deliberately does not
    // do; keep R within positively-bound types.
    DeltaStreams streams = BuildDeltaStreams(
        universe_->stream, NegatedTypes(pattern), retract_every,
        window * 0.5);
    ASSERT_GT(streams.num_retractions, 0u);

    NetResult reference = FeedEngine(delta_pattern, plan, streams.reference, 0);
    ASSERT_GT(reference.gross, 0u);
    EXPECT_EQ(reference.revoked, 0u);

    std::vector<std::string> first_drain;
    for (size_t batch_size : {1u, 7u, 1024u}) {
      SCOPED_TRACE(algorithm + " batch_size=" + std::to_string(batch_size));
      NetResult delta = FeedEngine(delta_pattern, plan, streams.delta,
                                   batch_size);
      EXPECT_EQ(delta.net, reference.net);
      EXPECT_FALSE(delta.revocation_without_match);
      EXPECT_EQ(delta.counters.retractions_processed,
                streams.num_retractions);
      EXPECT_EQ(delta.counters.matches_emitted, delta.gross);
      EXPECT_EQ(delta.counters.matches_revoked, delta.revoked);
      EXPECT_EQ(delta.gross - delta.revoked, reference.gross);
      // Batching must not reorder the ± output either.
      if (first_drain.empty()) {
        first_drain = delta.drain;
      } else {
        EXPECT_EQ(delta.drain, first_drain);
      }
    }

    // Insert-only runs must not notice the delta refactor at all: the
    // same stream through the delta-enabled pattern reproduces the
    // plain pattern bit for bit — emission order and every counter.
    NetResult plain = FeedEngine(pattern, plan, universe_->stream, 0);
    NetResult tracked = FeedEngine(delta_pattern, plan, universe_->stream, 0);
    EXPECT_EQ(tracked.drain, plain.drain);
    EXPECT_EQ(tracked.counters.predicate_evals,
              plain.counters.predicate_evals);
    EXPECT_EQ(tracked.counters.instances_created,
              plain.counters.instances_created);
    EXPECT_EQ(tracked.counters.matches_emitted,
              plain.counters.matches_emitted);
    EXPECT_EQ(tracked.counters.buffered_bytes, plain.counters.buffered_bytes);
    EXPECT_EQ(tracked.counters.instance_bytes, plain.counters.instance_bytes);
    EXPECT_EQ(tracked.counters.store_bytes, plain.counters.store_bytes);
    EXPECT_EQ(tracked.counters.retractions_processed, 0u);
    EXPECT_EQ(tracked.counters.matches_revoked, 0u);
  }

  /// Retract every eligible event: the engine must end exactly where it
  /// started — no net matches and every live gauge at zero.
  static void ExpectFullRetractQuiescence(const std::string& algorithm,
                                          PatternFamily family, int size,
                                          uint64_t seed, double window = 1.0) {
    PatternGenConfig pg;
    pg.family = family;
    pg.size = size;
    pg.window = window;
    pg.seed = seed;
    SimplePattern pattern =
        GeneratePattern(*universe_, pg)[0].WithDeltaInput();
    CostFunction cost = MakeCostFunction(
        pattern, collector_->CollectForPattern(pattern), 0.0);
    EnginePlan plan = MakePlan(algorithm, cost).value();

    DeltaStreams streams = BuildDeltaStreams(universe_->stream,
                                             NegatedTypes(pattern),
                                             /*retract_every=*/1,
                                             window * 0.5);
    // Negated types stay inserted (excluded from R): their buffered
    // windows drain by sweep, so full quiescence needs a retract-all of
    // a pattern whose every type is positively bound — the families
    // below are chosen accordingly. Everything else must hit zero even
    // with negation present; assert per family on what must hold.
    NetResult delta = FeedEngine(pattern, plan, streams.delta, 7);
    EXPECT_EQ(delta.counters.retractions_processed, streams.num_retractions);
    EXPECT_TRUE(delta.net.empty());
    EXPECT_EQ(delta.gross, delta.revoked);
    if (NegatedTypes(pattern).empty()) {
      ASSERT_EQ(streams.num_retractions, universe_->stream.size());
      ExpectQuiescent(delta.counters);
    } else {
      EXPECT_EQ(delta.counters.live_instances, 0u);
      EXPECT_EQ(delta.counters.instance_bytes, 0u);
      EXPECT_EQ(delta.counters.store_bytes, 0u);
    }
  }

  static StockUniverse* universe_;
  static StatsCollector* collector_;
};

StockUniverse* RetractionEquivalenceTest::universe_ = nullptr;
StatsCollector* RetractionEquivalenceTest::collector_ = nullptr;

// --- NFA engine (order plans) ---

TEST_F(RetractionEquivalenceTest, NfaSequence) {
  ExpectRetractionEquivalence("GREEDY", PatternFamily::kSequence, 4, 71);
}

TEST_F(RetractionEquivalenceTest, NfaConjunction) {
  ExpectRetractionEquivalence("GREEDY", PatternFamily::kConjunction, 4, 89,
                              0.3);
}

TEST_F(RetractionEquivalenceTest, NfaNegation) {
  ExpectRetractionEquivalence("GREEDY", PatternFamily::kNegation, 4, 73);
}

TEST_F(RetractionEquivalenceTest, NfaKleene) {
  ExpectRetractionEquivalence("GREEDY", PatternFamily::kKleene, 3, 79, 0.5);
}

// --- Tree engine, ZSTREAM and DP-B plans ---

TEST_F(RetractionEquivalenceTest, TreeZstreamSequence) {
  ExpectRetractionEquivalence("ZSTREAM", PatternFamily::kSequence, 4, 83);
}

TEST_F(RetractionEquivalenceTest, TreeZstreamKleene) {
  ExpectRetractionEquivalence("ZSTREAM", PatternFamily::kKleene, 3, 101, 0.5);
}

TEST_F(RetractionEquivalenceTest, TreeDpbConjunction) {
  ExpectRetractionEquivalence("DP-B", PatternFamily::kConjunction, 4, 89,
                              0.3);
}

TEST_F(RetractionEquivalenceTest, TreeDpbNegation) {
  ExpectRetractionEquivalence("DP-B", PatternFamily::kNegation, 4, 97);
}

// --- Full-retract quiescence ---

TEST_F(RetractionEquivalenceTest, NfaFullRetractQuiescence) {
  ExpectFullRetractQuiescence("GREEDY", PatternFamily::kSequence, 4, 71);
}

TEST_F(RetractionEquivalenceTest, NfaKleeneFullRetractQuiescence) {
  ExpectFullRetractQuiescence("GREEDY", PatternFamily::kKleene, 3, 79, 0.5);
}

TEST_F(RetractionEquivalenceTest, NfaNegationFullRetract) {
  ExpectFullRetractQuiescence("GREEDY", PatternFamily::kNegation, 4, 73);
}

TEST_F(RetractionEquivalenceTest, TreeFullRetractQuiescence) {
  ExpectFullRetractQuiescence("ZSTREAM", PatternFamily::kSequence, 4, 83);
}

TEST_F(RetractionEquivalenceTest, TreeDpbFullRetractQuiescence) {
  ExpectFullRetractQuiescence("DP-B", PatternFamily::kConjunction, 4, 89,
                              0.3);
}

// ---------------------------------------------------------------------
// Sharded runtime: revocations drain deterministically at any thread
// count, and the net multiset matches the single-threaded S∖R feed.

TEST(RetractionShardedTest, NetEquivalenceAcrossThreadCounts) {
  KeyedWorkload workload = MakeKeyedWorkload(8, 4.0, 11);
  SimplePattern delta_pattern = workload.pattern.WithDeltaInput();
  DeltaStreams streams =
      BuildDeltaStreams(workload.stream, {}, /*retract_every=*/3,
                        workload.pattern.window() * 0.5);
  ASSERT_GT(streams.num_retractions, 0u);

  // Single-threaded S∖R reference (stats/plans from the full original
  // stream for every run, so all runs use identical plans).
  CollectingSink ref_sink;
  PartitionedRuntime reference(delta_pattern, workload.stream,
                               workload.registry.size(), "GREEDY", &ref_sink);
  reference.ProcessStream(streams.reference);
  reference.Finish();
  NetResult ref = Account(ref_sink.matches);
  ASSERT_GT(ref.gross, 0u);

  // Single-threaded delta feed: the emission-order baseline.
  CollectingSink single_sink;
  PartitionedRuntime single(delta_pattern, workload.stream,
                            workload.registry.size(), "GREEDY", &single_sink);
  single.ProcessStream(streams.delta);
  single.Finish();
  NetResult single_run = Account(single_sink.matches);
  EXPECT_EQ(single_run.net, ref.net);
  EXPECT_GT(single_run.revoked, 0u);
  EXPECT_FALSE(single_run.revocation_without_match);
  EXPECT_EQ(single.TotalCounters().retractions_processed,
            streams.num_retractions);

  std::vector<std::string> previous_drain;
  for (size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    CollectingSink sink;
    ShardedOptions options;
    options.num_threads = threads;
    options.batch_size = 64;
    ShardedRuntime runtime(delta_pattern, workload.stream,
                           workload.registry.size(), "GREEDY", &sink,
                           options);
    runtime.ProcessStream(streams.delta);
    runtime.Finish();
    NetResult run = Account(sink.matches);
    EXPECT_EQ(run.net, ref.net);
    // The canonical drain orders a revocation strictly after the match
    // it cancels (revocations carry the retraction's emit_serial), so
    // this holds at every thread count — and the sequence is
    // byte-identical across thread counts.
    EXPECT_FALSE(run.revocation_without_match);
    EngineCounters total = runtime.TotalCounters();
    EXPECT_EQ(total.retractions_processed, streams.num_retractions);
    EXPECT_EQ(total.matches_revoked, run.revoked);
    if (!previous_drain.empty()) {
      EXPECT_EQ(run.drain, previous_drain);
    }
    previous_drain = std::move(run.drain);
  }
}

TEST(RetractionShardedTest, FullRetractQuiescenceAcrossThreadCounts) {
  KeyedWorkload workload = MakeKeyedWorkload(6, 3.0, 23);
  SimplePattern delta_pattern = workload.pattern.WithDeltaInput();
  DeltaStreams streams =
      BuildDeltaStreams(workload.stream, {}, /*retract_every=*/1,
                        workload.pattern.window() * 0.5);
  ASSERT_EQ(streams.num_retractions, workload.stream.size());

  for (size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    CollectingSink sink;
    ShardedOptions options;
    options.num_threads = threads;
    options.batch_size = 32;
    ShardedRuntime runtime(delta_pattern, workload.stream,
                           workload.registry.size(), "GREEDY", &sink,
                           options);
    runtime.ProcessStream(streams.delta);
    runtime.Finish();
    NetResult run = Account(sink.matches);
    EXPECT_TRUE(run.net.empty());
    EXPECT_EQ(run.gross, run.revoked);
    ExpectQuiescent(runtime.TotalCounters());
  }
}

}  // namespace
}  // namespace cepjoin
