#include "engine/multi_engine.h"

#include <gtest/gtest.h>

#include "engine/engine_factory.h"
#include "pattern/nested.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::StreamOf;
using testing_util::World;

TEST(MultiEngineTest, DisjunctionUnionsSubpatternMatches) {
  World world = MakeWorld(4);
  // OR(SEQ(A, B), SEQ(C, D)).
  NestedPattern nested;
  nested.root = PatternNode::Op(
      OperatorKind::kOr,
      {PatternNode::Op(OperatorKind::kSeq,
                       {PatternNode::Leaf({world.types[0], "a", false, false}),
                        PatternNode::Leaf({world.types[1], "b", false, false})}),
       PatternNode::Op(OperatorKind::kSeq,
                       {PatternNode::Leaf({world.types[2], "c", false, false}),
                        PatternNode::Leaf({world.types[3], "d", false, false})})});
  nested.window = 10.0;
  std::vector<SimplePattern> dnf = ToDnf(nested);
  ASSERT_EQ(dnf.size(), 2u);

  std::vector<EnginePlan> plans;
  for (const SimplePattern& sub : dnf) {
    PatternStats stats(sub.num_positive());
    for (int i = 0; i < stats.size(); ++i) stats.set_rate(i, 1.0);
    plans.push_back(MakePlan("GREEDY", CostFunction(stats, sub.window())).value());
  }
  CollectingSink sink;
  std::unique_ptr<Engine> engine = BuildDnfEngine(dnf, plans, &sink);
  EventStream stream = StreamOf({Ev(0, 1), Ev(1, 2), Ev(2, 3), Ev(3, 4)});
  for (const EventPtr& e : stream.events()) {
    engine->OnEvent(e);
  }
  engine->Finish();
  ASSERT_EQ(sink.matches.size(), 2u);
  // Matches tagged with their subpattern index.
  std::vector<int> tags;
  for (const Match& m : sink.matches) tags.push_back(m.subpattern);
  std::sort(tags.begin(), tags.end());
  EXPECT_EQ(tags, (std::vector<int>{0, 1}));
}

TEST(MultiEngineTest, CountersAggregateAcrossSubengines) {
  World world = MakeWorld(2);
  SimplePattern p1 = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  std::vector<SimplePattern> subs = {p1, p1};
  std::vector<EnginePlan> plans;
  for (int k = 0; k < 2; ++k) {
    PatternStats stats(2);
    stats.set_rate(0, 1.0);
    stats.set_rate(1, 1.0);
    plans.push_back(MakePlan("TRIVIAL", CostFunction(stats, 10.0)).value());
  }
  CollectingSink sink;
  std::unique_ptr<Engine> engine = BuildDnfEngine(subs, plans, &sink);
  EventStream stream = StreamOf({Ev(0, 1), Ev(1, 2)});
  for (const EventPtr& e : stream.events()) {
    engine->OnEvent(e);
  }
  engine->Finish();
  // Both identical subengines matched: 2 matches, aggregated counters.
  EXPECT_EQ(engine->counters().matches_emitted, 2u);
  EXPECT_EQ(engine->counters().events_processed, 2u);
}

TEST(EnginePlanTest, DescribeIncludesAlgorithmAndShape) {
  PatternStats stats(2);
  stats.set_rate(0, 1.0);
  stats.set_rate(1, 2.0);
  EnginePlan order_plan = MakePlan("EFREQ", CostFunction(stats, 1.0)).value();
  EXPECT_NE(order_plan.Describe().find("EFREQ"), std::string::npos);
  EnginePlan tree_plan = MakePlan("ZSTREAM", CostFunction(stats, 1.0)).value();
  EXPECT_EQ(tree_plan.kind, EnginePlan::Kind::kTree);
  EXPECT_NE(tree_plan.Describe().find("("), std::string::npos);
}

TEST(EngineFactoryTest, ClassifiesAlgorithms) {
  EXPECT_TRUE(IsTreeAlgorithm("ZSTREAM"));
  EXPECT_TRUE(IsTreeAlgorithm("DP-B"));
  EXPECT_FALSE(IsTreeAlgorithm("DP-LD"));
  EXPECT_FALSE(IsTreeAlgorithm("GREEDY"));
}

TEST(EngineFactoryTest, ModelForStrategyFollowsPaper) {
  EXPECT_EQ(ModelForStrategy(SelectionStrategy::kSkipTillAny),
            ThroughputModel::kAny);
  EXPECT_EQ(ModelForStrategy(SelectionStrategy::kSkipTillNext),
            ThroughputModel::kNextMatch);
  EXPECT_EQ(ModelForStrategy(SelectionStrategy::kStrictContiguity),
            ThroughputModel::kNextMatch);
  EXPECT_EQ(ModelForStrategy(SelectionStrategy::kPartitionContiguity),
            ThroughputModel::kNextMatch);
}

TEST(EngineFactoryTest, DefaultLatencyAnchor) {
  World world = MakeWorld(3);
  SimplePattern seq = testing_util::PurePattern(world, OperatorKind::kSeq, 3, 10);
  SimplePattern conj = testing_util::PurePattern(world, OperatorKind::kAnd, 3, 10);
  EXPECT_EQ(DefaultLatencyAnchor(seq), 2);
  EXPECT_EQ(DefaultLatencyAnchor(conj), -1);
}

TEST(EngineFactoryTest, MakePlanRecordsCostAndTime) {
  Rng rng(3);
  CostFunction cost(testing_util::RandomStats(4, rng), 2.0);
  EnginePlan plan = MakePlan("DP-LD", cost).value();
  EXPECT_GT(plan.cost, 0.0);
  EXPECT_GE(plan.generation_seconds, 0.0);
  EXPECT_NEAR(plan.cost, cost.OrderCost(plan.order), plan.cost * 1e-12);
}

}  // namespace
}  // namespace cepjoin
