// InstanceStore mechanics and the instance-combine kernel path:
// Configure/Append/Filter lockstep with the owning buffer, RunFor column
// views, RowMirrorBytes purity (append- and evict-side accounting must
// agree), the vectorized window-feasibility gate, and EvalInstanceRun's
// masked sub-block early-out — verdicts and predicate_evals must match
// per-lane scalar EvalPair on pre-thinned survivor masks, with dead
// 8-lane groups skipped entirely (virtual fallbacks never invoked on
// them). Plus the ColumnBuffer compaction-amortization regression: a
// front-eviction workload of N pops performs O(N) total copies.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "runtime/column_buffer.h"
#include "runtime/instance_store.h"
#include "runtime/predicate_program.h"

namespace cepjoin {
namespace {

Event MakeEvent(Rng& rng, int num_attrs, EventSerial serial) {
  Event e;
  e.ts = rng.UniformReal(0.0, 10.0);
  e.serial = serial;
  e.partition = static_cast<uint32_t>(serial % 3);
  e.partition_seq = serial / 3;
  e.attrs.resize(num_attrs);
  for (int a = 0; a < num_attrs; ++a) e.attrs[a] = rng.UniformReal(-2.0, 2.0);
  return e;
}

EventPtr MakePtr(Rng& rng, int num_attrs, EventSerial serial) {
  return std::make_shared<const Event>(MakeEvent(rng, num_attrs, serial));
}

/// Fills a buffer with `n` random events of `num_attrs` attributes.
ColumnBuffer MakeBuffer(Rng& rng, int num_attrs, size_t n,
                        std::vector<EventPtr>* keepalive) {
  ColumnBuffer buffer;
  for (size_t k = 0; k < n; ++k) {
    EventPtr ptr = MakePtr(rng, num_attrs, 100 + k);
    keepalive->push_back(ptr);
    buffer.Append(ptr);
  }
  return buffer;
}

TEST(InstanceStoreTest, AppendMirrorsExtentsAndConfiguredColumns) {
  Rng rng(41);
  InstanceStore store;
  // Keys are pattern positions; slots index the instance's by-slot
  // vector. Deliberately non-identity to catch key/slot mixups.
  store.Configure({{/*key=*/0, /*slot=*/2}, {/*key=*/3, /*slot=*/0}});
  ASSERT_TRUE(store.configured());
  ASSERT_EQ(store.num_columns(), 2u);

  std::vector<std::vector<EventPtr>> instances;
  for (size_t k = 0; k < 9; ++k) {
    instances.push_back({MakePtr(rng, 2, 10 + k), MakePtr(rng, 2, 20 + k),
                         MakePtr(rng, 2, 30 + k)});
    const auto& by_slot = instances.back();
    store.Append(by_slot[0]->ts, by_slot[0]->ts + 0.5 * k, by_slot);
  }
  ASSERT_EQ(store.size(), 9u);
  ColumnRun pos0 = store.RunFor(0);
  ColumnRun pos3 = store.RunFor(3);
  ASSERT_EQ(pos0.size, 9u);
  ASSERT_EQ(pos3.size, 9u);
  for (size_t k = 0; k < 9; ++k) {
    EXPECT_EQ(store.min_ts()[k], instances[k][0]->ts);
    EXPECT_EQ(store.max_ts()[k], instances[k][0]->ts + 0.5 * k);
    // Key 0 reads slot 2, key 3 reads slot 0.
    EXPECT_EQ(pos0.events[k].get(), instances[k][2].get());
    EXPECT_EQ(pos0.ts[k], instances[k][2]->ts);
    EXPECT_EQ(pos0.attrs[1][k], instances[k][2]->attrs[1]);
    EXPECT_EQ(pos3.events[k].get(), instances[k][0].get());
    EXPECT_EQ(pos3.attrs[0][k], instances[k][0]->attrs[0]);
  }
}

TEST(InstanceStoreTest, FilterKeepsExtentsAndColumnsInLockstep) {
  Rng rng(43);
  InstanceStore store;
  store.Configure({{/*key=*/1, /*slot=*/0}});
  std::vector<std::vector<EventPtr>> instances;
  for (size_t k = 0; k < 7; ++k) {
    instances.push_back({MakePtr(rng, 1, 50 + k)});
    store.Append(static_cast<Timestamp>(k), static_cast<Timestamp>(k) + 1.0,
                 instances.back());
  }
  std::vector<uint8_t> keep = {0, 1, 1, 0, 0, 1, 0};
  store.Filter(keep);
  ASSERT_EQ(store.size(), 3u);
  const size_t kept[] = {1, 2, 5};
  ColumnRun run = store.RunFor(1);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(store.min_ts()[k], static_cast<Timestamp>(kept[k]));
    EXPECT_EQ(store.max_ts()[k], static_cast<Timestamp>(kept[k]) + 1.0);
    EXPECT_EQ(run.events[k].get(), instances[kept[k]][0].get());
  }
}

TEST(InstanceStoreTest, RowMirrorBytesIsPureAndBalanced) {
  Rng rng(47);
  InstanceStore store;
  store.Configure({{/*key=*/0, /*slot=*/0}, {/*key=*/2, /*slot=*/1}});
  std::vector<EventPtr> by_slot = {MakePtr(rng, 3, 1), MakePtr(rng, 3, 2)};
  // A pure function of the bound events: the append-side charge and the
  // evict-side refund are computed independently and must agree.
  size_t before = store.RowMirrorBytes(by_slot);
  EXPECT_GE(before, 2 * sizeof(Timestamp));
  store.Append(0.0, 1.0, by_slot);
  store.Append(0.5, 1.5, by_slot);
  EXPECT_EQ(store.RowMirrorBytes(by_slot), before);
  store.Filter({1, 0});
  EXPECT_EQ(store.RowMirrorBytes(by_slot), before);
}

TEST(InstanceStoreTest, WindowMaskGatesJointSpanAndSkipsDeadWords) {
  // 130 lanes: three mask words, the middle one pre-dead.
  const size_t n = 130;
  std::vector<Timestamp> lane_min(n), lane_max(n);
  for (size_t k = 0; k < n; ++k) {
    lane_min[k] = static_cast<Timestamp>(k);
    lane_max[k] = static_cast<Timestamp>(k) + 1.0;
  }
  std::vector<uint64_t> alive = {~uint64_t{0}, 0,
                                 (uint64_t{1} << (n - 128)) - 1};
  // Probe extent [100, 101], window 6: joint span = max(101, k+1) -
  // min(100, k), feasible iff 96 <= k <= 105.
  WindowMaskInstanceLanes(/*min_ts=*/100.0, /*max_ts=*/101.0, /*window=*/6.0,
                          lane_min.data(), lane_max.data(), n, alive.data());
  for (size_t k = 0; k < n; ++k) {
    bool live = (alive[k / 64] >> (k % 64)) & 1;
    bool pre_dead = k >= 64 && k < 128;
    bool feasible = k >= 96 && k <= 105;
    EXPECT_EQ(live, !pre_dead && feasible) << "lane " << k;
  }
}

/// Parity driver for the instance-combine kernel: with an arbitrary
/// pre-thinned survivor mask, EvalInstanceRun must agree with per-lane
/// scalar EvalPair on both surviving lanes and summed predicate_evals,
/// while pre-dead lanes stay dead and cost nothing.
void ExpectInstanceRunParity(const PredicateProgram& program, int i, int j,
                             const Event& fixed, const ColumnBuffer& buffer,
                             const std::vector<uint8_t>& pre_alive) {
  const ColumnRun run = buffer.Run();
  ASSERT_EQ(pre_alive.size(), run.size);
  LaneMask mask(run.size);
  for (size_t k = 0; k < run.size; ++k) {
    if (!pre_alive[k]) mask.words()[k / 64] &= ~(uint64_t{1} << (k % 64));
  }
  uint64_t evals_col = 0;
  program.EvalInstanceRun(i, j, fixed, run, mask.words(), &evals_col);
  uint64_t evals_scalar = 0;
  for (size_t k = 0; k < run.size; ++k) {
    if (!pre_alive[k]) {
      EXPECT_FALSE(mask.Alive(k)) << "lane " << k << " revived";
      continue;
    }
    bool want = program.EvalPair(i, j, fixed, *buffer[k], &evals_scalar);
    EXPECT_EQ(mask.Alive(k), want) << "lane " << k;
  }
  EXPECT_EQ(evals_col, evals_scalar);
}

TEST(InstanceKernelTest, MaskedSubBlockEarlyOutMatchesScalar) {
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 1, 0),
      std::make_shared<TsOrder>(0, 1),
      std::make_shared<AttrCompare>(1, 1, CmpOp::kGe, 0, 1, -0.3),
  };
  ConditionSet set(2, conditions);
  PredicateProgram program(set);
  Rng rng(53);
  std::vector<EventPtr> keepalive;
  ColumnBuffer buffer = MakeBuffer(rng, 2, 200, &keepalive);
  Event fixed = MakeEvent(rng, 2, 7);

  // Dense (fully-live) mask: the kernel takes the unmasked block path.
  std::vector<uint8_t> dense(200, 1);
  ExpectInstanceRunParity(program, 0, 1, fixed, buffer, dense);
  ExpectInstanceRunParity(program, 1, 0, fixed, buffer, dense);

  // Whole 8-lane groups dead (groups 1, 3 of each word), one whole word
  // dead, and a ragged random tail: every early-out shape at once.
  std::vector<uint8_t> thinned(200, 1);
  for (size_t k = 0; k < 200; ++k) {
    size_t group = (k % 64) / 8;
    if (group == 1 || group == 3) thinned[k] = 0;
    if (k >= 64 && k < 128) thinned[k] = 0;  // dead middle word
    if (rng.Bernoulli(0.2)) thinned[k] = 0;
  }
  ExpectInstanceRunParity(program, 0, 1, fixed, buffer, thinned);
  ExpectInstanceRunParity(program, 1, 0, fixed, buffer, thinned);

  // Exactly one survivor per word: the sparsest profitable shape.
  std::vector<uint8_t> sparse(200, 0);
  for (size_t k = 5; k < 200; k += 64) sparse[k] = 1;
  ExpectInstanceRunParity(program, 0, 1, fixed, buffer, sparse);
}

TEST(InstanceKernelTest, HeapSpilledMaskParity) {
  // > LaneMask::kInlineWords * 64 lanes forces the heap mask path.
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kGt, 1, 0, 0.1),
      std::make_shared<TsOrder>(1, 0),
  };
  ConditionSet set(2, conditions);
  PredicateProgram program(set);
  Rng rng(59);
  std::vector<EventPtr> keepalive;
  ColumnBuffer buffer = MakeBuffer(rng, 1, 1500, &keepalive);
  Event fixed = MakeEvent(rng, 1, 7);
  std::vector<uint8_t> thinned(1500);
  for (size_t k = 0; k < 1500; ++k) thinned[k] = rng.Bernoulli(0.6) ? 1 : 0;
  ExpectInstanceRunParity(program, 0, 1, fixed, buffer, thinned);
  ExpectInstanceRunParity(program, 1, 0, fixed, buffer, thinned);
}

TEST(InstanceKernelTest, DeadGroupsNeverReachVirtualFallback) {
  // The custom condition is the first instruction, so in both modes the
  // lanes reaching it are exactly the pre-thinned survivors: the fallback
  // must fire once per live lane and never for a dead 8-lane group.
  auto calls = std::make_shared<uint64_t>(0);
  std::vector<ConditionPtr> conditions = {
      std::make_shared<CustomCondition>(
          0, 1,
          [calls](const Event& l, const Event& r) {
            ++*calls;
            return l.attrs[0] * r.attrs[0] > 0.0;
          },
          0.5, "counted-same-sign"),
      std::make_shared<TsOrder>(0, 1),
  };
  ConditionSet set(2, conditions);
  PredicateProgram program(set);
  Rng rng(61);
  std::vector<EventPtr> keepalive;
  ColumnBuffer buffer = MakeBuffer(rng, 1, 192, &keepalive);
  Event fixed = MakeEvent(rng, 1, 7);

  std::vector<uint8_t> thinned(192, 0);
  size_t live = 0;
  for (size_t k = 0; k < 192; ++k) {
    // Keep only groups 0 and 5 of each word, and thin those too.
    size_t group = (k % 64) / 8;
    if ((group == 0 || group == 5) && rng.Bernoulli(0.7)) {
      thinned[k] = 1;
      ++live;
    }
  }
  ASSERT_GT(live, 0u);
  *calls = 0;
  ExpectInstanceRunParity(program, 0, 1, fixed, buffer, thinned);
  // The parity driver runs the kernel once and the scalar replay once
  // over the live lanes; scalar lanes failing the first instruction skip
  // the second either way, so calls = kernel(live) + scalar(live).
  EXPECT_EQ(*calls, 2 * live);
}

TEST(ColumnBufferCompactionTest, SlidingEvictionCopiesLinearInPops) {
  Rng rng(67);
  std::vector<EventPtr> keepalive;
  // Steady-state sliding window: 512 live rows, then pop+append cycles.
  ColumnBuffer buffer = MakeBuffer(rng, 1, 512, &keepalive);
  const size_t kPops = 20000;
  for (size_t k = 0; k < kPops; ++k) {
    buffer.PopFront();
    EventPtr ptr = MakePtr(rng, 1, 1000 + k);
    keepalive.push_back(ptr);
    buffer.Append(ptr);
  }
  ASSERT_EQ(buffer.size(), 512u);
  // Amortization invariant: every compaction copies at most as many rows
  // as pops since the previous one, so total copies <= total pops. The
  // lower bound shows compaction actually ran (the threshold is a member,
  // not recomputed in a way that starves or thrashes).
  EXPECT_LE(buffer.compaction_copies(), kPops);
  EXPECT_GT(buffer.compaction_copies(), 0u);
  // Lanes survived the churn intact.
  ColumnRun run = buffer.Run();
  for (size_t k = 0; k < run.size; ++k) {
    EXPECT_EQ(run.ts[k], buffer[k]->ts);
  }
}

TEST(ColumnBufferCompactionTest, FullDrainCopiesNothing) {
  Rng rng(71);
  std::vector<EventPtr> keepalive;
  ColumnBuffer buffer = MakeBuffer(rng, 1, 300, &keepalive);
  // Appends raise the member threshold to the live size, so draining the
  // whole buffer compacts exactly when it goes empty: zero copies.
  for (size_t k = 0; k < 300; ++k) buffer.PopFront();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.compaction_copies(), 0u);
}

TEST(ColumnBufferCompactionTest, RowsOnlyBufferKeepsSameBound) {
  Rng rng(73);
  ColumnBuffer buffer;
  buffer.DisableColumns();
  std::vector<EventPtr> keepalive;
  for (size_t k = 0; k < 256; ++k) {
    EventPtr ptr = MakePtr(rng, 1, k);
    keepalive.push_back(ptr);
    buffer.Append(ptr);
  }
  const size_t kPops = 5000;
  for (size_t k = 0; k < kPops; ++k) {
    buffer.PopFront();
    EventPtr ptr = MakePtr(rng, 1, 1000 + k);
    keepalive.push_back(ptr);
    buffer.Append(ptr);
  }
  EXPECT_LE(buffer.compaction_copies(), kPops);
  EXPECT_GT(buffer.compaction_copies(), 0u);
}

}  // namespace
}  // namespace cepjoin
