#include "runtime/match.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;

EventPtr MakeEvent(EventSerial serial, Timestamp ts) {
  Event e = Ev(0, ts);
  e.serial = serial;
  return std::make_shared<const Event>(e);
}

TEST(MatchTest, FingerprintIsSlotAndSerialCanonical) {
  Match a;
  a.slots = {{MakeEvent(3, 1.0)}, {MakeEvent(7, 2.0), MakeEvent(5, 1.5)}};
  Match b;
  b.slots = {{MakeEvent(3, 1.0)}, {MakeEvent(5, 1.5), MakeEvent(7, 2.0)}};
  // Kleene member order within a slot must not matter.
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(MatchTest, FingerprintDistinguishesSlotAssignment) {
  Match a;
  a.slots = {{MakeEvent(1, 1.0)}, {MakeEvent(2, 2.0)}};
  Match b;
  b.slots = {{MakeEvent(2, 2.0)}, {MakeEvent(1, 1.0)}};
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(MatchTest, LatencyEventsFromSerials) {
  Match m;
  m.last_event_serial = 10;
  m.emit_serial = 14;
  EXPECT_EQ(m.LatencyEvents(), 4u);
}

TEST(CollectingSinkTest, FingerprintsSorted) {
  CollectingSink sink;
  Match m1;
  m1.slots = {{MakeEvent(9, 1.0)}};
  Match m2;
  m2.slots = {{MakeEvent(2, 1.0)}};
  sink.OnMatch(m1);
  sink.OnMatch(m2);
  std::vector<std::string> fps = sink.Fingerprints();
  ASSERT_EQ(fps.size(), 2u);
  EXPECT_LE(fps[0], fps[1]);
}

TEST(CountingSinkTest, AggregatesLatency) {
  CountingSink sink;
  Match m;
  m.last_event_serial = 0;
  m.emit_serial = 4;
  m.latency_seconds = 0.5;
  sink.OnMatch(m);
  m.emit_serial = 6;
  m.latency_seconds = 1.5;
  sink.OnMatch(m);
  EXPECT_EQ(sink.count, 2u);
  EXPECT_DOUBLE_EQ(sink.MeanLatencyEvents(), 5.0);
  EXPECT_DOUBLE_EQ(sink.MeanLatencySeconds(), 1.0);
}

TEST(CountingSinkTest, EmptyMeansZero) {
  CountingSink sink;
  EXPECT_DOUBLE_EQ(sink.MeanLatencyEvents(), 0.0);
  EXPECT_DOUBLE_EQ(sink.MeanLatencySeconds(), 0.0);
}

}  // namespace
}  // namespace cepjoin
