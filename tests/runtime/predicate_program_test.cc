// Predicate-program / virtual-Eval parity: the compiled opcode
// interpreter must return exactly the verdict of ConditionSet's virtual
// Condition::Eval path for every condition kind, both argument
// orientations, the AttrCompare offset, and the CustomCondition
// fallback — on hand-built condition sets and on randomized patterns
// from workload/pattern_generator.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "runtime/compiled_pattern.h"
#include "runtime/predicate_program.h"
#include "workload/pattern_generator.h"

namespace cepjoin {
namespace {

Event MakeEvent(Rng& rng, int num_attrs, EventSerial serial) {
  Event e;
  e.ts = rng.UniformReal(0.0, 10.0);
  e.serial = serial;
  e.partition = static_cast<uint32_t>(serial % 3);
  e.partition_seq = serial / 3;
  e.attrs.resize(num_attrs);
  for (int a = 0; a < num_attrs; ++a) e.attrs[a] = rng.UniformReal(-2.0, 2.0);
  return e;
}

/// Asserts program verdicts equal virtual verdicts for every pair (in
/// both orientations) and every unary position, over random event pairs.
void ExpectParity(const ConditionSet& conditions,
                  const PredicateProgram& program, int num_attrs,
                  uint64_t seed, int rounds = 200) {
  ASSERT_EQ(program.num_positions(), conditions.num_positions());
  int n = conditions.num_positions();
  Rng rng(seed);
  uint64_t evals = 0;
  for (int round = 0; round < rounds; ++round) {
    Event a = MakeEvent(rng, num_attrs, 2 * round);
    Event b = MakeEvent(rng, num_attrs, 2 * round + 1);
    if (rng.Bernoulli(0.25)) b.serial = a.serial + 1;  // adjacency hits
    if (rng.Bernoulli(0.25)) b.partition = a.partition;
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(program.EvalUnary(i, a, &evals),
                conditions.EvalUnary(i, a))
          << "unary position " << i << " round " << round;
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        EXPECT_EQ(program.EvalPair(i, j, a, b, &evals),
                  conditions.EvalPair(i, j, a, b))
            << "pair (" << i << "," << j << ") round " << round;
      }
    }
  }
}

TEST(PredicateProgramTest, BuiltinConditionsLowerWithoutFallback) {
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 1, 1, 0.25),
      std::make_shared<AttrCompare>(2, 1, CmpOp::kGe, 0, 0),  // left > right
      std::make_shared<AttrThreshold>(1, 0, CmpOp::kGt, -0.5),
      std::make_shared<TsOrder>(0, 2),
      std::make_shared<SerialAdjacent>(1, 2, 0.1),
      std::make_shared<PartitionAdjacent>(0, 1, 0.1),
  };
  ConditionSet set(3, conditions);
  PredicateProgram program(set);
  EXPECT_EQ(program.num_instructions(), conditions.size());
  EXPECT_EQ(program.num_fallbacks(), 0u);
  ExpectParity(set, program, 2, 11);
}

TEST(PredicateProgramTest, AttrCompareOffsetBothOrientations) {
  // One condition registered as (1, 0) — the bucket stores it under the
  // normalized pair (0, 1), so the interpreter must swap: the verdict is
  // e1.a0 < e0.a1 + 10 regardless of the orientation EvalPair is called
  // with.
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(1, 0, CmpOp::kLt, 0, 1, 10.0)};
  ConditionSet set(2, conditions);
  PredicateProgram program(set);

  Event e0;
  e0.attrs = {0.0, 1.0};
  Event e1;
  e1.attrs = {5.0, 0.0};
  uint64_t evals = 0;
  // 5 < 1 + 10 holds.
  EXPECT_TRUE(program.EvalPair(0, 1, e0, e1, &evals));
  EXPECT_TRUE(program.EvalPair(1, 0, e1, e0, &evals));
  EXPECT_EQ(set.EvalPair(0, 1, e0, e1), true);
  // With offset gone the comparison 5 < 1 fails; rebuild without offset.
  std::vector<ConditionPtr> no_offset = {
      std::make_shared<AttrCompare>(1, 0, CmpOp::kLt, 0, 1)};
  ConditionSet set2(2, no_offset);
  PredicateProgram program2(set2);
  EXPECT_FALSE(program2.EvalPair(0, 1, e0, e1, &evals));
  EXPECT_FALSE(program2.EvalPair(1, 0, e1, e0, &evals));
  EXPECT_EQ(set2.EvalPair(0, 1, e0, e1), false);
  ExpectParity(set, program, 2, 13);
  ExpectParity(set2, program2, 2, 17);
}

TEST(PredicateProgramTest, CustomConditionFallsBackToVirtualEval) {
  auto custom_fn = [](const Event& l, const Event& r) {
    return l.attrs[0] * r.attrs[0] > 0.0;  // same sign
  };
  std::vector<ConditionPtr> conditions = {
      std::make_shared<CustomCondition>(0, 1, custom_fn, 0.5, "same-sign"),
      std::make_shared<CustomCondition>(
          1, 1, [](const Event& l, const Event&) { return l.attrs[0] > 0.0; },
          0.5, "positive"),
      std::make_shared<AttrCompare>(0, 0, CmpOp::kNe, 1, 0),
  };
  ConditionSet set(2, conditions);
  PredicateProgram program(set);
  EXPECT_EQ(program.num_fallbacks(), 2u);
  ExpectParity(set, program, 1, 19);
}

TEST(PredicateProgramTest, EvalCounterCountsShortCircuit) {
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrThreshold>(0, 0, CmpOp::kGt, 0.0),
      std::make_shared<AttrThreshold>(0, 0, CmpOp::kLt, 1.0),
  };
  ConditionSet set(1, conditions);
  PredicateProgram program(set);
  Event pass;
  pass.attrs = {0.5};
  Event fail_first;
  fail_first.attrs = {-1.0};
  uint64_t evals = 0;
  EXPECT_TRUE(program.EvalUnary(0, pass, &evals));
  EXPECT_EQ(evals, 2u);  // both predicates executed
  evals = 0;
  EXPECT_FALSE(program.EvalUnary(0, fail_first, &evals));
  EXPECT_EQ(evals, 1u);  // short-circuits after the first failure
  // A null counter is allowed.
  EXPECT_TRUE(program.EvalUnary(0, pass, nullptr));
}

TEST(PredicateProgramTest, RandomizedParityOnGeneratedPatterns) {
  StockGeneratorConfig stock;
  stock.num_symbols = 12;
  stock.duration_seconds = 5.0;
  StockUniverse universe = GenerateStockStream(stock);
  for (PatternFamily family : AllFamilies()) {
    for (int size : {3, 5}) {
      PatternGenConfig pg;
      pg.family = family;
      pg.size = size;
      pg.window = 2.0;
      pg.seed = 500 + size + static_cast<uint64_t>(family) * 31;
      for (const SimplePattern& pattern : GeneratePattern(universe, pg)) {
        SCOPED_TRACE(std::string(FamilyName(family)) + " size " +
                     std::to_string(size));
        // CompiledPattern applies the SEQ->AND rewrite, so the compared
        // sets include the TsOrder closure, not just user conditions.
        CompiledPattern cp(pattern);
        EXPECT_GT(cp.program().num_instructions(), 0u);
        // Stock events carry {price, difference}.
        ExpectParity(cp.conditions(), cp.program(), 2,
                     pg.seed * 7 + 1, 60);
        // Parity on real stream events too (realistic attribute values).
        const std::vector<EventPtr>& events = universe.stream.events();
        uint64_t evals = 0;
        int n = cp.conditions().num_positions();
        for (size_t k = 0; k + 1 < events.size() && k < 400; k += 7) {
          const Event& a = *events[k];
          const Event& b = *events[k + 1];
          for (int i = 0; i < n; ++i) {
            ASSERT_EQ(cp.program().EvalUnary(i, a, &evals),
                      cp.conditions().EvalUnary(i, a));
            for (int j = i + 1; j < n; ++j) {
              ASSERT_EQ(cp.program().EvalPair(i, j, a, b, &evals),
                        cp.conditions().EvalPair(i, j, a, b));
              ASSERT_EQ(cp.program().EvalPair(j, i, b, a, &evals),
                        cp.conditions().EvalPair(j, i, b, a));
            }
          }
        }
      }
    }
  }
}

TEST(PredicateProgramTest, DisassembleListsEveryInstruction) {
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 1, 1, 0.25),
      std::make_shared<AttrThreshold>(0, 0, CmpOp::kGt, 3.0),
      std::make_shared<CustomCondition>(
          0, 1, [](const Event&, const Event&) { return true; }, 1.0,
          "always"),
  };
  ConditionSet set(2, conditions);
  PredicateProgram program(set);
  std::string text = program.Disassemble();
  EXPECT_NE(text.find("attr_cmp"), std::string::npos);
  EXPECT_NE(text.find("attr_threshold"), std::string::npos);
  EXPECT_NE(text.find("virtual"), std::string::npos);
  EXPECT_NE(text.find("always"), std::string::npos);
}

}  // namespace
}  // namespace cepjoin
