#include "runtime/compiled_pattern.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::World;

// Minimal BoundAccessor over a map position -> events.
class MapBound : public BoundAccessor {
 public:
  void Bind(int pos, EventPtr e) { bound_[pos].push_back(std::move(e)); }
  void ForEach(int pos,
               const std::function<void(const Event&)>& fn) const override {
    auto it = bound_.find(pos);
    if (it == bound_.end()) return;
    for (const EventPtr& e : it->second) fn(*e);
  }

 private:
  std::map<int, std::vector<EventPtr>> bound_;
};

TEST(CompiledPatternTest, SlotMappingSkipsNegated) {
  World world = MakeWorld(4);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, true},
                                   {world.types[3], "d", false, false}};
  CompiledPattern cp(SimplePattern(OperatorKind::kSeq, events, {}, 5.0));
  EXPECT_EQ(cp.num_positions(), 4);
  EXPECT_EQ(cp.num_slots(), 3);
  EXPECT_EQ(cp.slot_to_pos(0), 0);
  EXPECT_EQ(cp.slot_to_pos(1), 2);
  EXPECT_EQ(cp.slot_to_pos(2), 3);
  EXPECT_EQ(cp.pos_to_slot(1), -1);
  EXPECT_EQ(cp.kleene_slot(), 1);
}

TEST(CompiledPatternTest, SeqConditionsIncludeTsClosure) {
  World world = MakeWorld(3);
  CompiledPattern cp(
      testing_util::PurePattern(world, OperatorKind::kSeq, 3, 5.0));
  EXPECT_FALSE(cp.conditions().Between(0, 2).empty());
  EXPECT_FALSE(cp.conditions().Between(0, 1).empty());
  EXPECT_FALSE(cp.conditions().Between(1, 2).empty());
}

TEST(CompiledPatternTest, PositionsOfTypeIncludesNegated) {
  World world = MakeWorld(2);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[0], "a2", false, false}};
  CompiledPattern cp(SimplePattern(OperatorKind::kSeq, events, {}, 5.0));
  EXPECT_EQ(cp.positions_of_type(world.types[0]),
            (std::vector<int>{0, 2}));
  EXPECT_EQ(cp.positions_of_type(world.types[1]), (std::vector<int>{1}));
  EXPECT_TRUE(cp.positions_of_type(999).empty());
}

TEST(CompiledPatternTest, InternalNegationSpec) {
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, false}};
  CompiledPattern cp(SimplePattern(OperatorKind::kSeq, events, {}, 5.0));
  ASSERT_EQ(cp.negations().size(), 1u);
  const NegationSpec& neg = cp.negations()[0];
  EXPECT_EQ(neg.neg_pos, 1);
  EXPECT_EQ(neg.prev_pos, 0);
  EXPECT_EQ(neg.next_pos, 2);
  EXPECT_FALSE(neg.trailing);
  EXPECT_FALSE(neg.leading_bounded);
  EXPECT_EQ(neg.dep_positions, (std::vector<int>{0, 2}));
  EXPECT_FALSE(cp.has_trailing_negation());
}

TEST(CompiledPatternTest, TrailingAndLeadingSpecs) {
  World world = MakeWorld(3);
  // SEQ(NOT(B), A, NOT(C)) is invalid (needs a positive between? no —
  // one positive suffices); use SEQ(NOT(B), A) and SEQ(A, NOT(B)).
  {
    std::vector<EventSpec> events = {{world.types[1], "b", true, false},
                                     {world.types[0], "a", false, false}};
    CompiledPattern cp(SimplePattern(OperatorKind::kSeq, events, {}, 5.0));
    ASSERT_EQ(cp.negations().size(), 1u);
    EXPECT_TRUE(cp.negations()[0].leading_bounded);
    EXPECT_FALSE(cp.negations()[0].trailing);
  }
  {
    std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                     {world.types[1], "b", true, false}};
    CompiledPattern cp(SimplePattern(OperatorKind::kSeq, events, {}, 5.0));
    ASSERT_EQ(cp.negations().size(), 1u);
    EXPECT_TRUE(cp.negations()[0].trailing);
    EXPECT_TRUE(cp.has_trailing_negation());
  }
}

TEST(CompiledPatternTest, AndNegationIsWindowScoped) {
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, false}};
  CompiledPattern cp(SimplePattern(OperatorKind::kAnd, events, {}, 5.0));
  ASSERT_EQ(cp.negations().size(), 1u);
  EXPECT_TRUE(cp.negations()[0].trailing);
  EXPECT_TRUE(cp.negations()[0].leading_bounded);
  EXPECT_EQ(cp.negations()[0].prev_pos, -1);
  EXPECT_EQ(cp.negations()[0].next_pos, -1);
}

TEST(CompiledPatternTest, UserConditionPartnersBecomeDeps) {
  World world = MakeWorld(4);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, false},
                                   {world.types[3], "d", false, false}};
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(3, 0, CmpOp::kEq, 1, 0)};
  CompiledPattern cp(
      SimplePattern(OperatorKind::kSeq, events, conditions, 5.0));
  // deps: prev (0), next (2), and condition partner d (3).
  EXPECT_EQ(cp.negations()[0].dep_positions, (std::vector<int>{0, 2, 3}));
}

TEST(CompiledPatternTest, NegationViolatesRespectsGuards) {
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, false}};
  CompiledPattern cp(SimplePattern(OperatorKind::kSeq, events, {}, 5.0));
  const NegationSpec& neg = cp.negations()[0];
  MapBound bound;
  bound.Bind(0, std::make_shared<const Event>(Ev(world.types[0], 1.0)));
  bound.Bind(2, std::make_shared<const Event>(Ev(world.types[2], 3.0)));
  Event inside = Ev(world.types[1], 2.0);
  Event before = Ev(world.types[1], 0.5);
  Event after = Ev(world.types[1], 3.5);
  EXPECT_TRUE(cp.NegationViolates(neg, inside, bound, 1.0, 3.0));
  EXPECT_FALSE(cp.NegationViolates(neg, before, bound, 1.0, 3.0));
  EXPECT_FALSE(cp.NegationViolates(neg, after, bound, 1.0, 3.0));
}

TEST(CompiledPatternTest, NegationViolatesWindowEdges) {
  World world = MakeWorld(2);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false}};
  CompiledPattern cp(SimplePattern(OperatorKind::kAnd, events, {}, 2.0));
  const NegationSpec& neg = cp.negations()[0];
  MapBound bound;
  bound.Bind(0, std::make_shared<const Event>(Ev(world.types[0], 5.0)));
  // Match extent [5, 5]: killers must lie in [3, 7].
  EXPECT_TRUE(
      cp.NegationViolates(neg, Ev(world.types[1], 4.0), bound, 5.0, 5.0));
  EXPECT_FALSE(
      cp.NegationViolates(neg, Ev(world.types[1], 2.9), bound, 5.0, 5.0));
  EXPECT_FALSE(
      cp.NegationViolates(neg, Ev(world.types[1], 7.1), bound, 5.0, 5.0));
}

}  // namespace
}  // namespace cepjoin
