// Columnar kernel / scalar interpreter parity: EvalPairRun and
// EvalUnaryRun must reproduce, lane for lane, the verdicts, the survivor
// bitmask semantics, and the predicate_evals counts of per-lane
// EvalPair/EvalUnary calls — across every condition kind (including the
// CustomCondition virtual fallback), both call orientations, span lengths
// inside and outside the template-stamped 1–3 window, masked (pre-dead)
// lanes, heap-spilled lane masks, and irregular-schema buffers. Plus the
// ColumnBuffer container mechanics the engines rely on (append, front
// eviction with compaction, lockstep Filter).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "runtime/column_buffer.h"
#include "runtime/compiled_pattern.h"
#include "runtime/predicate_program.h"
#include "workload/pattern_generator.h"

namespace cepjoin {
namespace {

Event MakeEvent(Rng& rng, int num_attrs, EventSerial serial) {
  Event e;
  e.ts = rng.UniformReal(0.0, 10.0);
  e.serial = serial;
  e.partition = static_cast<uint32_t>(serial % 3);
  e.partition_seq = serial / 3;
  e.attrs.resize(num_attrs);
  for (int a = 0; a < num_attrs; ++a) e.attrs[a] = rng.UniformReal(-2.0, 2.0);
  return e;
}

/// Fills a buffer with `n` random events of `num_attrs` attributes.
ColumnBuffer MakeBuffer(Rng& rng, int num_attrs, size_t n,
                        std::vector<EventPtr>* keepalive) {
  ColumnBuffer buffer;
  for (size_t k = 0; k < n; ++k) {
    Event e = MakeEvent(rng, num_attrs, 100 + k);
    if (rng.Bernoulli(0.2)) e.serial = 100 + k - 1;  // adjacency hits
    auto ptr = std::make_shared<const Event>(std::move(e));
    keepalive->push_back(ptr);
    buffer.Append(ptr);
  }
  return buffer;
}

bool LaneBit(const LaneMask& mask, size_t k) { return mask.Alive(k); }

/// Core parity driver: for every position pair in both orientations and
/// every unary position, the run kernels must agree with per-lane scalar
/// calls on verdict bits and on the summed eval counter.
void ExpectRunParity(const PredicateProgram& program,
                     const ColumnBuffer& buffer, int num_attrs,
                     uint64_t seed) {
  const int n = program.num_positions();
  const ColumnRun run = buffer.Run();
  Rng rng(seed);
  Event fixed = MakeEvent(rng, num_attrs, 7);
  for (int i = 0; i < n; ++i) {
    {
      LaneMask mask(run.size);
      uint64_t evals_col = 0;
      program.EvalUnaryRun(i, run, mask.words(), &evals_col);
      uint64_t evals_scalar = 0;
      for (size_t k = 0; k < run.size; ++k) {
        bool want = program.EvalUnary(i, *buffer[k], &evals_scalar);
        ASSERT_EQ(LaneBit(mask, k), want)
            << "unary pos " << i << " lane " << k;
      }
      ASSERT_EQ(evals_col, evals_scalar) << "unary pos " << i;
    }
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      LaneMask mask(run.size);
      uint64_t evals_col = 0;
      program.EvalPairRun(i, j, fixed, run, mask.words(), &evals_col);
      uint64_t evals_scalar = 0;
      for (size_t k = 0; k < run.size; ++k) {
        bool want = program.EvalPair(i, j, fixed, *buffer[k], &evals_scalar);
        ASSERT_EQ(LaneBit(mask, k), want)
            << "pair (" << i << "," << j << ") lane " << k;
      }
      ASSERT_EQ(evals_col, evals_scalar) << "pair (" << i << "," << j << ")";
    }
  }
}

TEST(ColumnBufferTest, AppendEvictCompactKeepsRowsAndColumns) {
  Rng rng(3);
  std::vector<EventPtr> keepalive;
  ColumnBuffer buffer = MakeBuffer(rng, 3, 300, &keepalive);
  ASSERT_EQ(buffer.size(), 300u);
  // Evict far past the compaction threshold.
  for (int k = 0; k < 220; ++k) buffer.PopFront();
  ASSERT_EQ(buffer.size(), 80u);
  EXPECT_EQ(buffer.front().get(), keepalive[220].get());
  ColumnRun run = buffer.Run();
  ASSERT_EQ(run.size, 80u);
  ASSERT_EQ(run.num_attrs, 3u);
  for (size_t k = 0; k < run.size; ++k) {
    const Event& want = *keepalive[220 + k];
    EXPECT_EQ(buffer[k].get(), &want);
    EXPECT_EQ(run.ts[k], want.ts);
    EXPECT_EQ(run.serial[k], want.serial);
    EXPECT_EQ(run.partition[k], want.partition);
    EXPECT_EQ(run.partition_seq[k], want.partition_seq);
    for (int a = 0; a < 3; ++a) EXPECT_EQ(run.attrs[a][k], want.attrs[a]);
  }
}

TEST(ColumnBufferTest, FilterKeepsSelectedRowsInOrder) {
  Rng rng(5);
  std::vector<EventPtr> keepalive;
  ColumnBuffer buffer = MakeBuffer(rng, 2, 10, &keepalive);
  for (int k = 0; k < 3; ++k) buffer.PopFront();  // nonzero live offset
  std::vector<uint8_t> keep = {1, 0, 0, 1, 1, 0, 1};
  buffer.Filter(keep);
  ASSERT_EQ(buffer.size(), 4u);
  const size_t kept[] = {3, 6, 7, 9};
  ColumnRun run = buffer.Run();
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(buffer[k].get(), keepalive[kept[k]].get());
    EXPECT_EQ(run.ts[k], keepalive[kept[k]]->ts);
    EXPECT_EQ(run.attrs[1][k], keepalive[kept[k]]->attrs[1]);
  }
}

TEST(ColumnBufferTest, IrregularSchemaDropsColumnsButKeepsRows) {
  ColumnBuffer buffer;
  Event a;
  a.ts = 1.0;
  a.attrs = {1.0, 2.0};
  Event b;
  b.ts = 2.0;
  b.attrs = {3.0};  // contradicts the latched 2-attr schema
  buffer.Append(std::make_shared<const Event>(a));
  buffer.Append(std::make_shared<const Event>(b));
  EXPECT_FALSE(buffer.regular());
  ColumnRun run = buffer.Run();
  EXPECT_EQ(run.attrs, nullptr);
  EXPECT_EQ(run.num_attrs, 0u);
  ASSERT_EQ(run.size, 2u);
  EXPECT_EQ(run.events[1]->attrs[0], 3.0);  // rows stay usable
}

TEST(ColumnKernelTest, BuiltinConditionParityAllSpanLengths) {
  // Span lengths 1..5 between position pairs: 1–3 take the stamped
  // kernels, 4+ the generic instruction-major loop; parity must hold for
  // all of them.
  Rng rng(11);
  for (int span_len : {1, 2, 3, 4, 5}) {
    SCOPED_TRACE("span_len=" + std::to_string(span_len));
    std::vector<ConditionPtr> conditions;
    for (int c = 0; c < span_len; ++c) {
      if (c % 3 == 2) {
        conditions.push_back(std::make_shared<TsOrder>(0, 1));
      } else {
        conditions.push_back(std::make_shared<AttrCompare>(
            c % 2, static_cast<AttrId>(c % 3),
            c % 2 == 0 ? CmpOp::kLt : CmpOp::kGe, 1 - c % 2,
            static_cast<AttrId>((c + 1) % 3), rng.UniformReal(-0.5, 0.5)));
      }
    }
    // A threshold each on 0 and 1 exercises unary spans too.
    conditions.push_back(
        std::make_shared<AttrThreshold>(0, 0, CmpOp::kGt, -0.5));
    conditions.push_back(
        std::make_shared<AttrThreshold>(1, 1, CmpOp::kLe, 0.5));
    ConditionSet set(2, conditions);
    PredicateProgram program(set);
    std::vector<EventPtr> keepalive;
    ColumnBuffer buffer = MakeBuffer(rng, 3, 100, &keepalive);
    ExpectRunParity(program, buffer, 3, 21 + span_len);
  }
}

TEST(ColumnKernelTest, AdjacencyAndCustomFallbackParity) {
  std::vector<ConditionPtr> conditions = {
      std::make_shared<SerialAdjacent>(0, 1, 0.1),
      std::make_shared<PartitionAdjacent>(1, 2, 0.1),
      std::make_shared<TsOrder>(0, 2),
      std::make_shared<CustomCondition>(
          0, 1,
          [](const Event& l, const Event& r) {
            return l.attrs[0] * r.attrs[0] > 0.0;
          },
          0.5, "same-sign"),
      std::make_shared<CustomCondition>(
          2, 2, [](const Event& l, const Event&) { return l.attrs[1] > 0.0; },
          0.5, "positive"),
      std::make_shared<AttrCompare>(2, 0, CmpOp::kNe, 1, 1),
  };
  ConditionSet set(3, conditions);
  PredicateProgram program(set);
  EXPECT_EQ(program.num_fallbacks(), 2u);
  Rng rng(13);
  std::vector<EventPtr> keepalive;
  ColumnBuffer buffer = MakeBuffer(rng, 2, 90, &keepalive);
  ExpectRunParity(program, buffer, 2, 17);
}

TEST(ColumnKernelTest, MaskedLanesAreSkippedAndUncounted) {
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 1, 0),
      std::make_shared<TsOrder>(0, 1),
  };
  ConditionSet set(2, conditions);
  PredicateProgram program(set);
  Rng rng(19);
  std::vector<EventPtr> keepalive;
  ColumnBuffer buffer = MakeBuffer(rng, 1, 130, &keepalive);
  ColumnRun run = buffer.Run();
  Event fixed = MakeEvent(rng, 1, 7);

  // Kill every third lane up front.
  LaneMask mask(run.size);
  for (size_t k = 0; k < run.size; k += 3) {
    mask.words()[k / 64] &= ~(uint64_t{1} << (k % 64));
  }
  uint64_t evals_col = 0;
  program.EvalPairRun(0, 1, fixed, run, mask.words(), &evals_col);

  uint64_t evals_scalar = 0;
  for (size_t k = 0; k < run.size; ++k) {
    if (k % 3 == 0) {
      // Pre-dead lanes stay dead and cost nothing.
      EXPECT_FALSE(LaneBit(mask, k)) << k;
      continue;
    }
    bool want = program.EvalPair(0, 1, fixed, *buffer[k], &evals_scalar);
    EXPECT_EQ(LaneBit(mask, k), want) << k;
  }
  EXPECT_EQ(evals_col, evals_scalar);
}

TEST(ColumnKernelTest, HeapSpilledMaskParity) {
  // > LaneMask::kInlineWords * 64 lanes forces the heap mask path.
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kGt, 1, 0, 0.1),
      std::make_shared<TsOrder>(1, 0),  // swapped orientation
  };
  ConditionSet set(2, conditions);
  PredicateProgram program(set);
  Rng rng(23);
  std::vector<EventPtr> keepalive;
  ColumnBuffer buffer = MakeBuffer(rng, 1, 1500, &keepalive);
  ExpectRunParity(program, buffer, 1, 29);
}

TEST(ColumnKernelTest, RandomizedParityOnGeneratedPatterns) {
  StockGeneratorConfig stock;
  stock.num_symbols = 12;
  stock.duration_seconds = 4.0;
  StockUniverse universe = GenerateStockStream(stock);
  for (PatternFamily family : AllFamilies()) {
    for (int size : {3, 5}) {
      PatternGenConfig pg;
      pg.family = family;
      pg.size = size;
      pg.window = 2.0;
      pg.seed = 900 + size + static_cast<uint64_t>(family) * 17;
      for (const SimplePattern& pattern : GeneratePattern(universe, pg)) {
        SCOPED_TRACE(std::string(FamilyName(family)) + " size " +
                     std::to_string(size));
        CompiledPattern cp(pattern);
        // Real stream events ({price, difference} schema) as the run.
        ColumnBuffer buffer;
        const std::vector<EventPtr>& events = universe.stream.events();
        for (size_t k = 0; k < events.size() && k < 200; k += 3) {
          buffer.Append(events[k]);
        }
        ASSERT_GT(buffer.size(), 10u);
        ASSERT_GT(cp.program().num_instructions(), 0u);
        ExpectRunParity(cp.program(), buffer, 2, pg.seed * 3 + 1);
      }
    }
  }
}

TEST(ColumnKernelTest, NullEvalCounterIsAllowed) {
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrThreshold>(0, 0, CmpOp::kGt, 0.0)};
  ConditionSet set(1, conditions);
  PredicateProgram program(set);
  Rng rng(31);
  std::vector<EventPtr> keepalive;
  ColumnBuffer buffer = MakeBuffer(rng, 1, 70, &keepalive);
  ColumnRun run = buffer.Run();
  LaneMask mask(run.size);
  program.EvalUnaryRun(0, run, mask.words(), nullptr);
  for (size_t k = 0; k < run.size; ++k) {
    EXPECT_EQ(LaneBit(mask, k), program.EvalUnary(0, *buffer[k], nullptr));
  }
}

}  // namespace
}  // namespace cepjoin
