// Output profiler (Sec. 6.1): last-position attribution with timestamp
// and serial tie-breaking, sharded MergeFrom aggregation, and the
// MostFrequent tie rule the snapshot path reuses over externally
// aggregated counts.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/match.h"
#include "runtime/output_profiler.h"

namespace cepjoin {
namespace {

EventPtr MakeEvent(double ts, EventSerial serial) {
  auto e = std::make_shared<Event>();
  e->ts = ts;
  e->serial = serial;
  return e;
}

Match MakeMatch(const std::vector<std::pair<double, EventSerial>>& slots) {
  Match m;
  for (const auto& [ts, serial] : slots) {
    m.slots.push_back({MakeEvent(ts, serial)});
  }
  return m;
}

TEST(OutputProfilerTest, LastPositionPicksLatestTimestamp) {
  // Slot 1 holds the temporally last event even though slot 2 exists.
  Match m = MakeMatch({{1.0, 1}, {9.0, 2}, {3.0, 3}});
  EXPECT_EQ(OutputProfiler::LastPosition(m), 1);
}

TEST(OutputProfilerTest, LastPositionBreaksTimestampTiesBySerial) {
  Match m = MakeMatch({{5.0, 7}, {5.0, 9}, {5.0, 8}});
  EXPECT_EQ(OutputProfiler::LastPosition(m), 1);  // serial 9 wins
}

TEST(OutputProfilerTest, LastPositionScansKleeneSlots) {
  // A Kleene slot with several events: its latest one decides.
  Match m;
  m.slots.push_back({MakeEvent(1.0, 1)});
  m.slots.push_back({MakeEvent(2.0, 2), MakeEvent(8.0, 5), MakeEvent(3.0, 3)});
  m.slots.push_back({MakeEvent(7.0, 4)});
  EXPECT_EQ(OutputProfiler::LastPosition(m), 1);
}

TEST(OutputProfilerTest, EmptyMatchHasNoLastPosition) {
  Match empty;
  EXPECT_EQ(OutputProfiler::LastPosition(empty), -1);
  Match negated_only;
  negated_only.slots.resize(2);  // all slots empty (negation)
  EXPECT_EQ(OutputProfiler::LastPosition(negated_only), -1);
}

TEST(OutputProfilerTest, CountsMatchesAndForwardsToInnerSink) {
  CollectingSink inner;
  OutputProfiler profiler(&inner, 3);
  EXPECT_EQ(profiler.MostFrequentLastPosition(), -1);  // no matches yet

  profiler.OnMatch(MakeMatch({{1.0, 1}, {2.0, 2}, {3.0, 3}}));  // last = 2
  profiler.OnMatch(MakeMatch({{1.0, 4}, {5.0, 5}, {3.0, 6}}));  // last = 1
  profiler.OnMatch(MakeMatch({{1.0, 7}, {2.0, 8}, {9.0, 9}}));  // last = 2

  EXPECT_EQ(inner.matches.size(), 3u);
  EXPECT_EQ(profiler.MostFrequentLastPosition(), 2);
  EXPECT_EQ(profiler.last_counts(), (std::vector<uint64_t>{0, 1, 2}));
}

TEST(OutputProfilerTest, MergeFromCombinesShardObservations) {
  OutputProfiler a(nullptr, 3);
  OutputProfiler b(nullptr, 3);
  a.OnMatch(MakeMatch({{1.0, 1}, {9.0, 2}, {3.0, 3}}));  // last = 1
  b.OnMatch(MakeMatch({{1.0, 4}, {2.0, 5}, {9.0, 6}}));  // last = 2
  b.OnMatch(MakeMatch({{1.0, 7}, {2.0, 8}, {9.0, 9}}));  // last = 2

  a.MergeFrom(b);
  EXPECT_EQ(a.last_counts(), (std::vector<uint64_t>{0, 1, 2}));
  EXPECT_EQ(a.MostFrequentLastPosition(), 2);
  // b is untouched by the merge.
  EXPECT_EQ(b.last_counts(), (std::vector<uint64_t>{0, 0, 2}));
}

TEST(OutputProfilerTest, MergeFromExtendsShorterCountVectors) {
  OutputProfiler small(nullptr, 2);
  OutputProfiler large(nullptr, 4);
  small.OnMatch(MakeMatch({{9.0, 1}, {2.0, 2}}));                    // last=0
  large.OnMatch(MakeMatch({{1.0, 3}, {2.0, 4}, {3.0, 5}, {9.0, 6}}));  // 3

  small.MergeFrom(large);
  EXPECT_EQ(small.last_counts(), (std::vector<uint64_t>{1, 0, 0, 1}));
}

TEST(OutputProfilerTest, MostFrequentTiesGoToTheSmallestPosition) {
  EXPECT_EQ(OutputProfiler::MostFrequent({}), -1);
  EXPECT_EQ(OutputProfiler::MostFrequent({0, 0, 0}), -1);  // all-zero: none
  EXPECT_EQ(OutputProfiler::MostFrequent({0, 5, 5}), 1);   // tie: smallest
  EXPECT_EQ(OutputProfiler::MostFrequent({2, 5, 7, 7}), 2);
  EXPECT_EQ(OutputProfiler::MostFrequent({3}), 0);
}

}  // namespace
}  // namespace cepjoin
