// EngineCounters: underflow guards on unmatched removes, and the two
// merge modes (same-stream vs disjoint-sub-stream aggregation).

#include "runtime/engine.h"

#include <gtest/gtest.h>

namespace cepjoin {
namespace {

TEST(EngineCountersTest, RemoveInstanceWithoutAddSaturatesAtZero) {
  EngineCounters counters;
  counters.RemoveInstance(64);
  EXPECT_EQ(counters.live_instances, 0u);
  EXPECT_EQ(counters.instance_bytes, 0u);
  // A later legitimate add still accounts correctly and peaks are sane.
  counters.AddInstance(32);
  EXPECT_EQ(counters.live_instances, 1u);
  EXPECT_EQ(counters.instance_bytes, 32u);
  EXPECT_EQ(counters.peak_live_instances, 1u);
}

TEST(EngineCountersTest, RemoveBuffersMoreBytesThanTrackedSaturates) {
  EngineCounters counters;
  counters.AddInstance(16);
  counters.RemoveInstance(1000);  // larger than tracked bytes
  EXPECT_EQ(counters.live_instances, 0u);
  EXPECT_EQ(counters.instance_bytes, 0u);
  EXPECT_LT(counters.peak_total_bytes, 1000u);  // no wrapped peak
}

TEST(EngineCountersTest, RemoveBufferedWithoutAddSaturatesAtZero) {
  EngineCounters counters;
  counters.RemoveBuffered(64);
  EXPECT_EQ(counters.buffered_events, 0u);
  EXPECT_EQ(counters.buffered_bytes, 0u);
  counters.AddBuffered(48);
  EXPECT_EQ(counters.buffered_events, 1u);
  EXPECT_EQ(counters.buffered_bytes, 48u);
  EXPECT_EQ(counters.peak_buffered_events, 1u);
  EXPECT_EQ(counters.peak_total_bytes, 48u);
}

TEST(EngineCountersTest, BufferedBytesAreExactAndCannotDriftNegative) {
  EngineCounters counters;
  counters.AddBuffered(100);
  counters.AddBuffered(50);
  EXPECT_EQ(counters.buffered_bytes, 150u);
  EXPECT_EQ(counters.CurrentBytes(), 150u);
  // An oversized remove saturates instead of wrapping; later accounting
  // stays sane.
  counters.RemoveBuffered(1000);
  EXPECT_EQ(counters.buffered_events, 1u);
  EXPECT_EQ(counters.buffered_bytes, 0u);
  counters.AddBuffered(30);
  EXPECT_EQ(counters.buffered_bytes, 30u);
  EXPECT_EQ(counters.peak_total_bytes, 150u);
}

TEST(EngineCountersTest, CurrentBytesCombinesInstancesAndBuffers) {
  EngineCounters counters;
  counters.AddInstance(200);
  counters.AddBuffered(100);
  EXPECT_EQ(counters.CurrentBytes(), 300u);
  EXPECT_EQ(counters.peak_total_bytes, 300u);
  counters.RemoveInstance(200);
  counters.RemoveBuffered(100);
  EXPECT_EQ(counters.CurrentBytes(), 0u);
  EXPECT_EQ(counters.peak_total_bytes, 300u);  // peak is sticky
}

TEST(EngineCountersTest, InsertThenRetractCycleBalancesToExactZero) {
  // The delta contract: a full insert-then-retract cycle leaves every
  // live gauge at exactly zero — not saturated-at-zero after an
  // underflow, but zero because adds and removes paired exactly.
  EngineCounters counters;
  counters.AddBuffered(120);
  counters.AddBuffered(80);
  counters.AddInstance(300);
  counters.AddStoreBytes(64);
  EXPECT_EQ(counters.CurrentBytes(), 564u);
  ++counters.retractions_processed;
  counters.RemoveBuffered(120);
  counters.RemoveInstance(300);
  counters.RemoveStoreBytes(64);
  ++counters.retractions_processed;
  counters.RemoveBuffered(80);
  EXPECT_EQ(counters.buffered_events, 0u);
  EXPECT_EQ(counters.buffered_bytes, 0u);
  EXPECT_EQ(counters.live_instances, 0u);
  EXPECT_EQ(counters.instance_bytes, 0u);
  EXPECT_EQ(counters.store_bytes, 0u);
  EXPECT_EQ(counters.CurrentBytes(), 0u);
  EXPECT_EQ(counters.retractions_processed, 2u);
  // Peaks keep reporting the high-water mark of the cycle.
  EXPECT_EQ(counters.peak_total_bytes, 564u);
}

TEST(EngineCountersTest, RemoveStoreBytesWithoutAddSaturatesAtZero) {
  EngineCounters counters;
  counters.RemoveStoreBytes(64);
  EXPECT_EQ(counters.store_bytes, 0u);
  counters.AddStoreBytes(32);
  counters.RemoveStoreBytes(1000);  // oversized: saturate, don't wrap
  EXPECT_EQ(counters.store_bytes, 0u);
  EXPECT_LT(counters.peak_total_bytes, 1000u);
}

EngineCounters SampleCounters(uint64_t events, uint64_t matches) {
  EngineCounters c;
  c.events_processed = events;
  c.matches_emitted = matches;
  c.instances_created = 2 * matches;
  c.predicate_evals = 10 * matches;
  c.retractions_processed = matches;
  c.matches_revoked = matches / 2;
  c.peak_live_instances = 5;
  c.peak_buffered_events = 7;
  c.buffered_bytes = 100;
  c.peak_total_bytes = 1024;
  return c;
}

TEST(EngineCountersTest, MergeTakesMaxEventsForSameStream) {
  // DNF sub-engines see the same stream: events_processed must not
  // double-count.
  EngineCounters total = SampleCounters(100, 3);
  total.Merge(SampleCounters(100, 4));
  EXPECT_EQ(total.events_processed, 100u);
  EXPECT_EQ(total.matches_emitted, 7u);
  EXPECT_EQ(total.instances_created, 14u);
  EXPECT_EQ(total.predicate_evals, 70u);
  EXPECT_EQ(total.peak_live_instances, 10u);
  EXPECT_EQ(total.retractions_processed, 7u);
  EXPECT_EQ(total.matches_revoked, 3u);
}

TEST(EngineCountersTest, MergeDisjointSumsEverything) {
  // Partition engines see disjoint sub-streams: all totals sum, and
  // summed peaks are a conservative bound for concurrent engines.
  EngineCounters total = SampleCounters(60, 3);
  total.MergeDisjoint(SampleCounters(40, 4));
  EXPECT_EQ(total.events_processed, 100u);
  EXPECT_EQ(total.matches_emitted, 7u);
  EXPECT_EQ(total.instances_created, 14u);
  EXPECT_EQ(total.predicate_evals, 70u);
  EXPECT_EQ(total.peak_live_instances, 10u);
  EXPECT_EQ(total.peak_buffered_events, 14u);
  EXPECT_EQ(total.buffered_bytes, 200u);
  EXPECT_EQ(total.peak_total_bytes, 2048u);
  EXPECT_EQ(total.retractions_processed, 7u);
  EXPECT_EQ(total.matches_revoked, 3u);
}

}  // namespace
}  // namespace cepjoin
