#ifndef CEPJOIN_TESTS_TESTING_TEST_UTIL_H_
#define CEPJOIN_TESTS_TESTING_TEST_UTIL_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/rng.h"
#include "event/event_type.h"
#include "event/stream.h"
#include "pattern/pattern.h"
#include "stats/statistics.h"

namespace cepjoin {
namespace testing_util {

/// A small universe of single-attribute event types named "A", "B", ...
/// used across unit tests.
struct World {
  EventTypeRegistry registry;
  std::vector<TypeId> types;
};

inline World MakeWorld(int n = 5) {
  World world;
  for (int i = 0; i < n; ++i) {
    std::string name(1, static_cast<char>('A' + i));
    world.types.push_back(world.registry.Register(name, {"v"}));
  }
  return world;
}

/// Shorthand event constructor: type + timestamp + attribute value.
inline Event Ev(TypeId type, Timestamp ts, double v = 0.0,
                uint32_t partition = 0) {
  Event e;
  e.type = type;
  e.ts = ts;
  e.partition = partition;
  e.attrs = {v};
  return e;
}

inline EventStream StreamOf(std::initializer_list<Event> events) {
  EventStream stream;
  for (const Event& e : events) stream.Append(e);
  return stream;
}

/// Pure pattern over the first `n` world types, in order, no conditions.
inline SimplePattern PurePattern(const World& world, OperatorKind op, int n,
                                 Timestamp window) {
  std::vector<EventSpec> events;
  for (int i = 0; i < n; ++i) {
    events.push_back(EventSpec{world.types[i],
                               std::string(1, static_cast<char>('a' + i)),
                               false, false});
  }
  return SimplePattern(op, std::move(events), {}, window);
}

/// Random statistics with rates in [0.5, 40] and selectivities in
/// (0.01, 1]; diagonal unary selectivities in (0.2, 1].
inline PatternStats RandomStats(int n, Rng& rng) {
  PatternStats stats(n);
  for (int i = 0; i < n; ++i) {
    stats.set_rate(i, rng.UniformReal(0.5, 40.0));
    stats.set_sel(i, i, rng.UniformReal(0.2, 1.0));
    for (int j = i + 1; j < n; ++j) {
      stats.set_sel(i, j, rng.Bernoulli(0.5) ? rng.UniformReal(0.01, 1.0)
                                             : 1.0);
    }
  }
  return stats;
}

}  // namespace testing_util
}  // namespace cepjoin

#endif  // CEPJOIN_TESTS_TESTING_TEST_UTIL_H_
