// CepService registration: every malformed QuerySpec comes back as a
// returned Status — never an abort — with an actionable message;
// handles enforce their preconditions (notably num_partitions() on the
// sharded path) as errors instead of stale data.

#include "api/cep_service.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "api/keyed_runtime.h"
#include "workload/keyed_generator.h"

namespace cepjoin {
namespace {

std::unique_ptr<CepService> MakeService(const KeyedWorkload& workload,
                                        size_t num_threads = 1) {
  ServiceOptions options;
  options.history = &workload.stream;
  options.num_types = workload.registry.size();
  options.num_threads = num_threads;
  return CepService::Create(options).value();
}

TEST(CepServiceCreateTest, RejectsBadBatchSize) {
  ServiceOptions options;
  options.batch_size = 0;
  auto service = CepService::Create(options);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(service.status().message().find("batch_size"), std::string::npos);
}

TEST(CepServiceCreateTest, RejectsHistoryWithoutNumTypes) {
  EventStream history;
  ServiceOptions options;
  options.history = &history;
  auto service = CepService::Create(options);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(service.status().message().find("num_types"), std::string::npos);
}

TEST(CepServiceRegisterTest, UnknownAlgorithmListsKnownOnes) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  auto service = MakeService(workload);
  CollectingSink sink;
  auto handle = service->Register(QuerySpec::Simple(workload.pattern)
                                      .WithName("typo")
                                      .WithAlgorithm("GREEDYY")
                                      .WithSink(&sink));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
  // The error both names the typo and lists what would have worked.
  EXPECT_NE(handle.status().message().find("GREEDYY"), std::string::npos);
  EXPECT_NE(handle.status().message().find("GREEDY"), std::string::npos);
  EXPECT_NE(handle.status().message().find("DP-LD"), std::string::npos);
  // The service survives: a correct registration still succeeds.
  EXPECT_TRUE(service->Register(QuerySpec::Simple(workload.pattern)
                                    .WithSink(&sink))
                  .ok());
}

TEST(CepServiceRegisterTest, RejectsMissingSinkAndDoubleSink) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  auto service = MakeService(workload);

  auto no_sink = service->Register(QuerySpec::Simple(workload.pattern));
  ASSERT_FALSE(no_sink.ok());
  EXPECT_EQ(no_sink.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(no_sink.status().message().find("match destination"),
            std::string::npos);

  CollectingSink sink;
  auto both = service->Register(QuerySpec::Simple(workload.pattern)
                                    .WithSink(&sink)
                                    .WithCallback([](const Match&) {}));
  ASSERT_FALSE(both.ok());
  EXPECT_EQ(both.status().code(), StatusCode::kInvalidArgument);
}

TEST(CepServiceRegisterTest, RejectsBadLatencyAlpha) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  auto service = MakeService(workload);
  CollectingSink sink;
  for (double alpha : {-0.5, std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::quiet_NaN()}) {
    auto handle = service->Register(QuerySpec::Simple(workload.pattern)
                                        .WithLatencyAlpha(alpha)
                                        .WithSink(&sink));
    ASSERT_FALSE(handle.ok()) << alpha;
    EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(CepServiceRegisterTest, RejectsKeyedNestedPattern) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  auto service = MakeService(workload);
  CollectingSink sink;
  NestedPattern nested;
  nested.root = PatternNode::Leaf({/*type=*/0, "a", false, false});
  nested.window = 1.0;
  auto handle = service->Register(
      QuerySpec::Nested(nested).Keyed().WithSink(&sink));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(handle.status().message().find("keyed"), std::string::npos);
}

TEST(CepServiceRegisterTest, RejectsKeyedWithoutHistory) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  ServiceOptions options;  // no history
  auto service = CepService::Create(options).value();
  CollectingSink sink;
  auto handle = service->Register(
      QuerySpec::Simple(workload.pattern).Keyed().WithSink(&sink));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(handle.status().message().find("history"), std::string::npos);
}

TEST(CepServiceRegisterTest, RejectsKeyedExplicitStats) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  auto service = MakeService(workload);
  CollectingSink sink;
  auto handle =
      service->Register(QuerySpec::Simple(workload.pattern)
                            .Keyed()
                            .WithStats(PatternStats(workload.pattern
                                                        .num_positive()))
                            .WithSink(&sink));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
}

TEST(CepServiceRegisterTest, RejectsTypeIdOutsideRegistry) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  ServiceOptions options;
  options.history = &workload.stream;
  options.num_types = 2;  // pattern references types 0..2
  auto service = CepService::Create(options).value();
  CollectingSink sink;
  auto handle = service->Register(
      QuerySpec::Simple(workload.pattern).WithSink(&sink));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(handle.status().message().find("type id"), std::string::npos);
}

TEST(CepServiceRegisterTest, RejectsStatsDimensionMismatch) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  auto service = MakeService(workload);
  CollectingSink sink;
  auto handle = service->Register(
      QuerySpec::Simple(workload.pattern)
          .WithStats(PatternStats(workload.pattern.num_positive() + 1))
          .WithSink(&sink));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(handle.status().message().find("positive slots"),
            std::string::npos);
}

TEST(CepServiceRegisterTest, RejectsNestedWithoutStatsSource) {
  // Regression: this used to dereference a null collector instead of
  // returning the validation error.
  ServiceOptions options;  // neither history nor collector
  auto service = CepService::Create(options).value();
  CollectingSink sink;
  NestedPattern nested;
  nested.root = PatternNode::Leaf({/*type=*/0, "a", false, false});
  nested.window = 1.0;
  auto handle = service->Register(QuerySpec::Nested(nested).WithSink(&sink));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(handle.status().message().find("statistics source"),
            std::string::npos);
}

TEST(CepServiceRegisterTest, RejectsNestedTypeIdOutsideRegistry) {
  // Regression: this used to abort inside the statistics collector
  // instead of returning the validation error.
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  auto service = MakeService(workload);
  CollectingSink sink;
  NestedPattern nested;
  nested.root = PatternNode::Op(
      OperatorKind::kSeq,
      {PatternNode::Leaf({/*type=*/0, "a", false, false}),
       PatternNode::Leaf({/*type=*/99, "z", false, false})});
  nested.window = 1.0;
  auto handle = service->Register(QuerySpec::Nested(nested).WithSink(&sink));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(handle.status().message().find("type id"), std::string::npos);
}

TEST(CepServiceRegisterTest, RejectsUnkeyedWithoutStatsSource) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  ServiceOptions options;  // neither history nor collector
  auto service = CepService::Create(options).value();
  CollectingSink sink;
  auto handle = service->Register(
      QuerySpec::Simple(workload.pattern).WithSink(&sink));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(handle.status().message().find("statistics source"),
            std::string::npos);
}

TEST(CepServiceTest, CallbackReceivesSameMatchesAsSink) {
  KeyedWorkload workload = MakeKeyedWorkload(6, 4.0, 11);

  CollectingSink sink;
  auto sink_service = MakeService(workload);
  ASSERT_TRUE(sink_service
                  ->Register(QuerySpec::Simple(workload.pattern)
                                 .Keyed()
                                 .WithSink(&sink))
                  .ok());
  sink_service->ProcessStream(workload.stream);
  sink_service->Finish();

  std::vector<std::string> callback_fingerprints;
  auto callback_service = MakeService(workload);
  ASSERT_TRUE(callback_service
                  ->Register(QuerySpec::Simple(workload.pattern)
                                 .Keyed()
                                 .WithCallback([&](const Match& m) {
                                   callback_fingerprints.push_back(
                                       m.Fingerprint());
                                 }))
                  .ok());
  callback_service->ProcessStream(workload.stream);
  callback_service->Finish();

  std::vector<std::string> sink_fingerprints;
  for (const Match& m : sink.matches) {
    sink_fingerprints.push_back(m.Fingerprint());
  }
  ASSERT_GT(sink_fingerprints.size(), 0u);
  EXPECT_EQ(callback_fingerprints, sink_fingerprints);
}

TEST(CepServiceTest, DeregisterLifecycleErrors) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  auto service = MakeService(workload);
  CollectingSink sink;
  auto handle = service->Register(
      QuerySpec::Simple(workload.pattern).Keyed().WithSink(&sink));
  ASSERT_TRUE(handle.ok());

  EXPECT_EQ(service->Deregister(999).code(), StatusCode::kNotFound);
  EXPECT_TRUE(handle->Deregister().ok());
  EXPECT_EQ(handle->Deregister().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service->num_active_queries(), 0u);

  service->Finish();
  CollectingSink other;
  EXPECT_EQ(service->Register(QuerySpec::Simple(workload.pattern)
                                  .Keyed()
                                  .WithSink(&other))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(CepServiceTest, DeregisteredUnkeyedQueryKeepsItsCounters) {
  // The engine is released when an unkeyed query retires; its counters
  // snapshot must keep answering, and later ingest must not touch it.
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  auto service = MakeService(workload);
  CollectingSink sink;
  auto handle = service->Register(
      QuerySpec::Simple(workload.pattern).WithSink(&sink));
  ASSERT_TRUE(handle.ok());
  const size_t cut = workload.stream.size() / 2;
  service->OnBatch(workload.stream.events().data(), cut);
  ASSERT_TRUE(handle->Deregister().ok());
  uint64_t events_at_cut = handle->counters().value().events_processed;
  EXPECT_EQ(events_at_cut, cut);
  service->OnBatch(workload.stream.events().data() + cut,
                   workload.stream.size() - cut);
  service->Finish();
  EXPECT_EQ(handle->counters().value().events_processed, events_at_cut);
}

TEST(CepServiceTest, CountersReferenceStaysValidAcrossFinish) {
  // Legacy contract: a reference returned by CepRuntime::counters()
  // may be held across Finish(). The service backs it with
  // address-stable storage refreshed on access and finalized at
  // Finish — never freed engine memory.
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  StatsCollector collector(workload.stream, workload.registry.size());
  CollectingSink sink;
  CepRuntime runtime(workload.pattern,
                     collector.CollectForPattern(workload.pattern),
                     RuntimeOptions{}, &sink);
  const EngineCounters& counters = runtime.counters();
  EXPECT_EQ(counters.events_processed, 0u);
  runtime.ProcessStream(workload.stream);
  runtime.Finish();
  EXPECT_EQ(counters.events_processed, workload.stream.size());
}

TEST(CepServiceTest, ShardedNumPartitionsIsCheckedErrorBeforeFinish) {
  // The satellite fix: a sharded runtime cannot answer num_partitions()
  // while workers run. The old surface aborted (and before that,
  // risked a stale count); the session API returns FailedPrecondition
  // until Finish, then the exact value.
  KeyedWorkload workload = MakeKeyedWorkload(8, 3.0, 13);
  auto service = MakeService(workload, /*num_threads=*/2);
  CollectingSink sink;
  auto handle = service->Register(
      QuerySpec::Simple(workload.pattern).Keyed().WithSink(&sink));
  ASSERT_TRUE(handle.ok());
  service->ProcessStream(workload.stream);

  auto early = handle->num_partitions();
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);
  auto early_counters = handle->counters();
  ASSERT_FALSE(early_counters.ok());
  EXPECT_EQ(early_counters.status().code(), StatusCode::kFailedPrecondition);

  service->Finish();
  auto late = handle->num_partitions();
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(*late, 8u);
  EXPECT_TRUE(handle->counters().ok());
}

TEST(CepServiceTest, SingleThreadedNumPartitionsAnswersMidStream) {
  KeyedWorkload workload = MakeKeyedWorkload(8, 3.0, 13);
  auto service = MakeService(workload, /*num_threads=*/1);
  CollectingSink sink;
  auto handle = service->Register(
      QuerySpec::Simple(workload.pattern).Keyed().WithSink(&sink));
  ASSERT_TRUE(handle.ok());
  service->ProcessStream(workload.stream);
  auto mid = handle->num_partitions();
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(*mid, 8u);
  service->Finish();
}

TEST(CepServiceTest, KeyedMirrorsOnKeyedCepRuntimeFacade) {
  // The compatibility facade exposes the same checked precondition.
  KeyedWorkload workload = MakeKeyedWorkload(6, 3.0, 17);
  RuntimeOptions options;
  options.num_threads = 2;
  CollectingSink sink;
  KeyedCepRuntime runtime(workload.pattern, workload.stream,
                          workload.registry.size(), options, &sink);
  runtime.ProcessStream(workload.stream);
  EXPECT_EQ(runtime.num_partitions().status().code(),
            StatusCode::kFailedPrecondition);
  runtime.Finish();
  EXPECT_EQ(runtime.num_partitions().value(), 6u);
}

TEST(CepServiceTest, PlanAccessorsRespectQueryKind) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 7);
  auto service = MakeService(workload);
  CollectingSink keyed_sink;
  CollectingSink unkeyed_sink;
  auto keyed = service->Register(
      QuerySpec::Simple(workload.pattern).Keyed().WithSink(&keyed_sink));
  auto unkeyed = service->Register(
      QuerySpec::Simple(workload.pattern).WithSink(&unkeyed_sink));
  ASSERT_TRUE(keyed.ok());
  ASSERT_TRUE(unkeyed.ok());

  EXPECT_EQ(keyed->plans().status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(unkeyed->plans().ok());
  EXPECT_EQ(unkeyed->plans()->size(), 1u);
  EXPECT_EQ(unkeyed->num_partitions().status().code(),
            StatusCode::kFailedPrecondition);

  service->ProcessStream(workload.stream);
  service->Finish();
  EXPECT_TRUE(keyed->PlanFor(0).ok());
  EXPECT_EQ(keyed->PlanFor(12345).status().code(), StatusCode::kNotFound);
}

TEST(CepServiceTest, DefaultHandleIsInvalid) {
  QueryHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_EQ(handle.counters().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(handle.Deregister().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cepjoin
