// Multi-query equivalence: N queries registered on ONE CepService (one
// shared ingest path, one routing pass) must produce, per query, the
// byte-identical match fingerprint sequence and counters of N
// completely independent runtimes — at every worker thread count, with
// queries registered and deregistered mid-stream, and over async
// ingestion.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/cep_service.h"
#include "api/keyed_runtime.h"
#include "workload/keyed_generator.h"

namespace cepjoin {
namespace {

struct Reference {
  std::vector<std::string> sequence;  // fingerprints in emission order
  EngineCounters counters;
  size_t num_partitions = 0;
};

std::vector<std::string> Sequence(const CollectingSink& sink) {
  std::vector<std::string> seq;
  seq.reserve(sink.matches.size());
  for (const Match& m : sink.matches) seq.push_back(m.Fingerprint());
  return seq;
}

void ExpectSameCounters(const EngineCounters& got, const EngineCounters& want,
                        const std::string& label) {
  EXPECT_EQ(got.events_processed, want.events_processed) << label;
  EXPECT_EQ(got.matches_emitted, want.matches_emitted) << label;
  EXPECT_EQ(got.instances_created, want.instances_created) << label;
  EXPECT_EQ(got.predicate_evals, want.predicate_evals) << label;
}

/// Runs one standalone keyed runtime over events [begin, end) of the
/// workload stream — the reference a service-registered query must
/// reproduce exactly.
Reference RunStandaloneKeyed(const KeyedWorkload& workload,
                             const std::string& algorithm, size_t begin,
                             size_t end) {
  CollectingSink sink;
  RuntimeOptions options;
  options.algorithm = algorithm;
  options.num_threads = 1;
  KeyedCepRuntime runtime(workload.pattern, workload.stream,
                          workload.registry.size(), options, &sink);
  runtime.OnBatch(workload.stream.events().data() + begin, end - begin);
  runtime.Finish();
  Reference ref;
  ref.sequence = Sequence(sink);
  ref.counters = runtime.TotalCounters();
  ref.num_partitions = runtime.num_partitions().value();
  return ref;
}

TEST(MultiQueryEquivalenceTest, NQueriesMatchNStandaloneRuntimes) {
  KeyedWorkload workload = MakeKeyedWorkload(8, 6.0, 11);
  const std::vector<std::string> algorithms = {"GREEDY", "TRIVIAL", "DP-LD"};

  std::vector<Reference> refs;
  for (const std::string& algorithm : algorithms) {
    refs.push_back(RunStandaloneKeyed(workload, algorithm, 0,
                                      workload.stream.size()));
    ASSERT_GT(refs.back().sequence.size(), 0u) << algorithm;
  }

  for (size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ServiceOptions options;
    options.history = &workload.stream;
    options.num_types = workload.registry.size();
    options.num_threads = threads;
    options.batch_size = 64;  // force multiple batches per shard
    auto service = CepService::Create(options).value();

    std::vector<CollectingSink> sinks(algorithms.size());
    std::vector<QueryHandle> handles;
    for (size_t q = 0; q < algorithms.size(); ++q) {
      auto handle = service->Register(QuerySpec::Simple(workload.pattern)
                                          .Keyed()
                                          .WithAlgorithm(algorithms[q])
                                          .WithSink(&sinks[q]));
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();
      handles.push_back(*handle);
    }
    service->ProcessStream(workload.stream);
    service->Finish();

    for (size_t q = 0; q < algorithms.size(); ++q) {
      SCOPED_TRACE("query=" + algorithms[q]);
      EXPECT_EQ(Sequence(sinks[q]), refs[q].sequence);
      ExpectSameCounters(handles[q].counters().value(), refs[q].counters,
                         algorithms[q]);
      EXPECT_EQ(handles[q].num_partitions().value(), refs[q].num_partitions);
    }
  }
}

TEST(MultiQueryEquivalenceTest, MixedKeyedAndUnkeyedShareOneIngest) {
  // Short stream: the unkeyed query matches across partitions, which
  // grows combinatorially with duration.
  KeyedWorkload workload = MakeKeyedWorkload(6, 1.5, 19);

  // Standalone references: one keyed runtime, one unkeyed runtime.
  Reference keyed_ref =
      RunStandaloneKeyed(workload, "GREEDY", 0, workload.stream.size());

  CollectingSink unkeyed_ref_sink;
  StatsCollector collector(workload.stream, workload.registry.size());
  CepRuntime unkeyed_ref(workload.pattern,
                         collector.CollectForPattern(workload.pattern),
                         {.algorithm = "DP-LD"}, &unkeyed_ref_sink);
  unkeyed_ref.ProcessStream(workload.stream);
  unkeyed_ref.Finish();
  ASSERT_GT(keyed_ref.sequence.size(), 0u);
  ASSERT_GT(unkeyed_ref_sink.matches.size(), 0u);

  for (size_t threads : {1u, 2u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ServiceOptions options;
    options.history = &workload.stream;
    options.num_types = workload.registry.size();
    options.num_threads = threads;
    auto service = CepService::Create(options).value();

    CollectingSink keyed_sink;
    CollectingSink unkeyed_sink;
    auto keyed = service->Register(QuerySpec::Simple(workload.pattern)
                                       .Keyed()
                                       .WithSink(&keyed_sink));
    auto unkeyed = service->Register(QuerySpec::Simple(workload.pattern)
                                         .WithAlgorithm("DP-LD")
                                         .WithSink(&unkeyed_sink));
    ASSERT_TRUE(keyed.ok());
    ASSERT_TRUE(unkeyed.ok());
    service->ProcessStream(workload.stream);
    service->Finish();

    EXPECT_EQ(Sequence(keyed_sink), keyed_ref.sequence);
    ExpectSameCounters(keyed->counters().value(), keyed_ref.counters,
                       "keyed");
    EXPECT_EQ(Sequence(unkeyed_sink), Sequence(unkeyed_ref_sink));
    ExpectSameCounters(unkeyed->counters().value(), unkeyed_ref.counters(),
                       "unkeyed");
  }
}

TEST(MultiQueryEquivalenceTest, MidStreamRegisterSeesOnlyTheSuffix) {
  KeyedWorkload workload = MakeKeyedWorkload(8, 6.0, 23);
  const size_t cut = workload.stream.size() / 2;
  Reference full_ref =
      RunStandaloneKeyed(workload, "GREEDY", 0, workload.stream.size());
  Reference suffix_ref =
      RunStandaloneKeyed(workload, "TRIVIAL", cut, workload.stream.size());
  ASSERT_GT(suffix_ref.sequence.size(), 0u);

  for (size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ServiceOptions options;
    options.history = &workload.stream;
    options.num_types = workload.registry.size();
    options.num_threads = threads;
    options.batch_size = 32;
    auto service = CepService::Create(options).value();

    CollectingSink full_sink;
    auto full = service->Register(QuerySpec::Simple(workload.pattern)
                                      .Keyed()
                                      .WithAlgorithm("GREEDY")
                                      .WithSink(&full_sink));
    ASSERT_TRUE(full.ok());
    service->OnBatch(workload.stream.events().data(), cut);

    // Registered mid-stream: must see exactly events [cut, end).
    CollectingSink late_sink;
    auto late = service->Register(QuerySpec::Simple(workload.pattern)
                                      .Keyed()
                                      .WithAlgorithm("TRIVIAL")
                                      .WithSink(&late_sink));
    ASSERT_TRUE(late.ok());
    service->OnBatch(workload.stream.events().data() + cut,
                     workload.stream.size() - cut);
    service->Finish();

    EXPECT_EQ(Sequence(full_sink), full_ref.sequence);
    ExpectSameCounters(full->counters().value(), full_ref.counters, "full");
    EXPECT_EQ(Sequence(late_sink), suffix_ref.sequence);
    ExpectSameCounters(late->counters().value(), suffix_ref.counters,
                       "late");
    EXPECT_EQ(late->num_partitions().value(), suffix_ref.num_partitions);
  }
}

TEST(MultiQueryEquivalenceTest, MidStreamDeregisterSeesOnlyThePrefix) {
  KeyedWorkload workload = MakeKeyedWorkload(8, 6.0, 29);
  const size_t cut = workload.stream.size() / 2;
  Reference prefix_ref = RunStandaloneKeyed(workload, "GREEDY", 0, cut);
  Reference full_ref =
      RunStandaloneKeyed(workload, "TRIVIAL", 0, workload.stream.size());
  ASSERT_GT(prefix_ref.sequence.size(), 0u);

  for (size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ServiceOptions options;
    options.history = &workload.stream;
    options.num_types = workload.registry.size();
    options.num_threads = threads;
    options.batch_size = 32;
    auto service = CepService::Create(options).value();

    CollectingSink doomed_sink;
    auto doomed = service->Register(QuerySpec::Simple(workload.pattern)
                                        .Keyed()
                                        .WithAlgorithm("GREEDY")
                                        .WithSink(&doomed_sink));
    CollectingSink full_sink;
    auto full = service->Register(QuerySpec::Simple(workload.pattern)
                                      .Keyed()
                                      .WithAlgorithm("TRIVIAL")
                                      .WithSink(&full_sink));
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE(full.ok());

    service->OnBatch(workload.stream.events().data(), cut);
    // Deregistered mid-stream: must see exactly events [0, cut),
    // including its Finish-time (trailing-window) matches.
    ASSERT_TRUE(doomed->Deregister().ok());
    service->OnBatch(workload.stream.events().data() + cut,
                     workload.stream.size() - cut);
    service->Finish();

    EXPECT_EQ(Sequence(doomed_sink), prefix_ref.sequence);
    ExpectSameCounters(doomed->counters().value(), prefix_ref.counters,
                       "doomed");
    EXPECT_EQ(doomed->num_partitions().value(), prefix_ref.num_partitions);
    EXPECT_EQ(Sequence(full_sink), full_ref.sequence);
    ExpectSameCounters(full->counters().value(), full_ref.counters, "full");
  }
}

TEST(MultiQueryEquivalenceTest, AsyncIngestFansToEveryQuery) {
  // Two keyed queries over one async-ingested synthetic feed: each must
  // match its standalone ProcessStream reference (the KeyedEventSource
  // emits exactly the materialized workload sequence).
  KeyedWorkload workload = MakeKeyedWorkload(6, 5.0, 31);
  Reference greedy_ref =
      RunStandaloneKeyed(workload, "GREEDY", 0, workload.stream.size());
  Reference trivial_ref =
      RunStandaloneKeyed(workload, "TRIVIAL", 0, workload.stream.size());

  for (size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ServiceOptions options;
    options.history = &workload.stream;
    options.num_types = workload.registry.size();
    options.num_threads = threads;
    auto service = CepService::Create(options).value();

    CollectingSink greedy_sink;
    CollectingSink trivial_sink;
    auto greedy = service->Register(QuerySpec::Simple(workload.pattern)
                                        .Keyed()
                                        .WithAlgorithm("GREEDY")
                                        .WithSink(&greedy_sink));
    auto trivial = service->Register(QuerySpec::Simple(workload.pattern)
                                         .Keyed()
                                         .WithAlgorithm("TRIVIAL")
                                         .WithSink(&trivial_sink));
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(trivial.ok());

    IngestResult result = service->ProcessSourceAsync(
        std::make_unique<KeyedEventSource>(6, 5.0, 31));
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.events, workload.stream.size());
    service->Finish();

    EXPECT_EQ(Sequence(greedy_sink), greedy_ref.sequence);
    ExpectSameCounters(greedy->counters().value(), greedy_ref.counters,
                       "greedy");
    EXPECT_EQ(Sequence(trivial_sink), trivial_ref.sequence);
    ExpectSameCounters(trivial->counters().value(), trivial_ref.counters,
                       "trivial");
  }
}

TEST(MultiQueryEquivalenceTest, SixteenQueriesOneService) {
  // Scale check: 16 identical queries on one service all reproduce the
  // single-query reference — the fan-out is invisible in each query's
  // output.
  KeyedWorkload workload = MakeKeyedWorkload(6, 3.0, 37);
  Reference ref =
      RunStandaloneKeyed(workload, "GREEDY", 0, workload.stream.size());
  ASSERT_GT(ref.sequence.size(), 0u);

  ServiceOptions options;
  options.history = &workload.stream;
  options.num_types = workload.registry.size();
  options.num_threads = 4;
  auto service = CepService::Create(options).value();

  constexpr size_t kQueries = 16;
  std::vector<CollectingSink> sinks(kQueries);
  std::vector<QueryHandle> handles;
  for (size_t q = 0; q < kQueries; ++q) {
    auto handle = service->Register(QuerySpec::Simple(workload.pattern)
                                        .Keyed()
                                        .WithSink(&sinks[q]));
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  service->ProcessStream(workload.stream);
  service->Finish();

  for (size_t q = 0; q < kQueries; ++q) {
    SCOPED_TRACE("query=" + std::to_string(q));
    EXPECT_EQ(Sequence(sinks[q]), ref.sequence);
    ExpectSameCounters(handles[q].counters().value(), ref.counters,
                       "query " + std::to_string(q));
  }
}

}  // namespace
}  // namespace cepjoin
