// End-to-end durability of CepService: checkpoint at arbitrary cut
// points of a keyed delta workload (inserts + retractions), "crash" (the
// service is abandoned without Finish), restore into a fresh service,
// and replay the tail from the recorded source positions. The full
// drained match sequence — emissions AND revocations, in order, by
// fingerprint — must be byte-identical to a run that never crashed, at
// 1, 2, and 4 shard threads. Plus the recovery-surface contracts:
// NotFound on a missing directory, FailedPrecondition on a mismatched
// registration sequence, fell_back reporting when the newest snapshot is
// corrupt, and the write-behind CheckpointCoordinator's policy.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "api/cep_service.h"
#include "common/rng.h"
#include "durable/checkpoint_coordinator.h"
#include "durable/checkpoint_store.h"
#include "durable/fault_injector.h"
#include "durable/snapshot_io.h"
#include "event/stream_source.h"
#include "workload/keyed_generator.h"

namespace cepjoin {
namespace {

// ---------------------------------------------------------------------
// Workload: the keyed A/B/C join stream with every 3rd eligible event
// retracted shortly after it occurred (same construction as the engine
// retraction-equivalence suite).

struct DeltaWorkload {
  EventTypeRegistry registry;
  SimplePattern pattern;
  EventStream history;  // insert-only base: statistics source
  EventStream delta;    // inserts + interleaved retractions
};

DeltaWorkload MakeDeltaWorkload(uint64_t seed) {
  // Kept small on purpose: the unkeyed skip-till-any query is fed the
  // whole stream in one engine, and its match count grows superlinearly
  // with stream duration.
  KeyedWorkload base = MakeKeyedWorkload(/*num_partitions=*/4,
                                         /*duration=*/0.8, seed);
  DeltaWorkload out{std::move(base.registry),
                    base.pattern.WithDeltaInput(),
                    {},
                    {}};

  using Key = std::tuple<TypeId, uint32_t, Timestamp>;
  const std::vector<EventPtr>& events = base.stream.events();
  std::map<Key, size_t> last_of_key;
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = *events[i];
    last_of_key[Key(e.type, e.partition, e.ts)] = i;
  }
  std::vector<Event> retractions;
  int eligible = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = *events[i];
    // Only last occurrences of a (type, partition, ts) key are uniquely
    // addressable retraction targets (LIFO ledger resolution).
    if (last_of_key.at(Key(e.type, e.partition, e.ts)) != i) continue;
    if (eligible++ % 3 != 0) continue;
    Event r;
    r.type = e.type;
    r.partition = e.partition;
    r.polarity = -1;
    r.ts = e.ts + 0.3;
    r.target_ts = e.ts;
    retractions.push_back(r);
  }

  out.delta.EnableRetractions();
  size_t j = 0;
  for (const EventPtr& e : events) {
    while (j < retractions.size() && retractions[j].ts < e->ts) {
      out.delta.Append(retractions[j++]);
    }
    Event insert = *e;
    insert.serial = 0;
    insert.partition_seq = 0;
    out.delta.Append(insert);
    Event history_copy = insert;
    out.history.Append(history_copy);
  }
  while (j < retractions.size()) out.delta.Append(retractions[j++]);
  return out;
}

// Polarity-tagged fingerprint drain, in delivery order. Serials are
// preserved across restore (the merge state is checkpointed and the
// tail replays with identical serials), so Fingerprint comparison is
// exact.
std::vector<std::string> Drain(const CollectingSink& sink) {
  std::vector<std::string> out;
  out.reserve(sink.matches.size());
  for (const Match& m : sink.matches) {
    out.push_back((m.IsRevocation() ? "-" : "+") + m.Fingerprint());
  }
  return out;
}

struct Session {
  std::unique_ptr<CepService> service;
  CollectingSink keyed_sink;
  CollectingSink unkeyed_sink;
};

// One keyed query (partitioned or sharded by thread count) plus one
// unkeyed query, both fed from the same attached source.
Session MakeSession(const DeltaWorkload& workload, size_t num_threads) {
  Session s;
  ServiceOptions options;
  options.history = &workload.history;
  options.num_types = workload.registry.size();
  options.num_threads = num_threads;
  s.service = CepService::Create(options).value();
  CEPJOIN_CHECK_OK(s.service
                       ->Register(QuerySpec::Simple(workload.pattern)
                                      .WithName("keyed")
                                      .Keyed()
                                      .WithSink(&s.keyed_sink))
                       .status());
  CEPJOIN_CHECK_OK(s.service
                       ->Register(QuerySpec::Simple(workload.pattern)
                                      .WithName("unkeyed")
                                      .WithSink(&s.unkeyed_sink))
                       .status());
  CEPJOIN_CHECK_OK(s.service->AttachSource(
      std::make_unique<EventStreamSource>(&workload.delta)));
  return s;
}

struct RunResult {
  std::vector<std::string> keyed;
  std::vector<std::string> unkeyed;
};

RunResult RunUninterrupted(const DeltaWorkload& workload,
                           size_t num_threads) {
  Session s = MakeSession(workload, num_threads);
  auto fed = s.service->PumpAttachedSources();
  CEPJOIN_CHECK_OK(fed.status());
  s.service->Finish();
  return {Drain(s.keyed_sink), Drain(s.unkeyed_sink)};
}

class ServiceCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }

  std::string FreshDir(const std::string& tag) {
    std::string dir =
        ::testing::TempDir() + "/svc_ckpt_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
        tag;
    std::filesystem::remove_all(dir);  // stale state from a prior run
    return dir;
  }
};

TEST_F(ServiceCheckpointTest, CrashRecoveryIsEquivalentAtEveryThreadCount) {
  DeltaWorkload workload = MakeDeltaWorkload(/*seed=*/11);
  const size_t total = workload.delta.size();
  ASSERT_GT(total, 100u);

  for (size_t num_threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(num_threads));
    RunResult baseline = RunUninterrupted(workload, num_threads);
    ASSERT_FALSE(baseline.keyed.empty());
    ASSERT_FALSE(baseline.unkeyed.empty());

    // Kill points: a handful of random cuts plus the boundaries.
    Rng rng(91 + num_threads);
    std::vector<size_t> cuts = {0, total / 2, total - 1};
    for (int i = 0; i < 2; ++i) {
      cuts.push_back(static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(total) - 2)));
    }

    for (size_t cut : cuts) {
      SCOPED_TRACE("cut=" + std::to_string(cut));
      const std::string dir =
          FreshDir(std::to_string(num_threads) + "_" + std::to_string(cut));

      // Run 1: pump to the cut, checkpoint, pump a little further (work
      // that the crash will lose), then abandon the service un-Finished.
      std::vector<std::string> keyed_prefix, unkeyed_prefix;
      {
        Session s1 = MakeSession(workload, num_threads);
        if (cut > 0) {
          auto fed = s1.service->PumpAttachedSources(cut);
          ASSERT_TRUE(fed.ok()) << fed.status().ToString();
          ASSERT_EQ(fed.value(), cut);
        }
        ASSERT_TRUE(s1.service->CheckpointTo(dir).ok());
        // Matches already delivered to the sinks at the cut are the
        // crash-surviving prefix (sharded queries buffer until Finish,
        // so theirs is empty — those matches live in the checkpoint).
        keyed_prefix = Drain(s1.keyed_sink);
        unkeyed_prefix = Drain(s1.unkeyed_sink);
        auto lost = s1.service->PumpAttachedSources(40);
        ASSERT_TRUE(lost.ok());
      }  // crash: no Finish, destructors only

      // Run 2: fresh service, same registration sequence, fresh source
      // over the same stream; restore + tail replay.
      Session s2 = MakeSession(workload, num_threads);
      auto report = s2.service->RestoreFrom(dir);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_FALSE(report->fell_back);
      EXPECT_GT(report->checkpoint_seq, 0u);
      auto fed = s2.service->PumpAttachedSources();
      ASSERT_TRUE(fed.ok()) << fed.status().ToString();
      s2.service->Finish();

      std::vector<std::string> keyed = keyed_prefix;
      for (std::string& tag : Drain(s2.keyed_sink)) {
        keyed.push_back(std::move(tag));
      }
      std::vector<std::string> unkeyed = unkeyed_prefix;
      for (std::string& tag : Drain(s2.unkeyed_sink)) {
        unkeyed.push_back(std::move(tag));
      }
      EXPECT_EQ(keyed, baseline.keyed);
      EXPECT_EQ(unkeyed, baseline.unkeyed);
    }
  }
}

TEST_F(ServiceCheckpointTest, RestoreFromMissingDirectoryIsNotFound) {
  DeltaWorkload workload = MakeDeltaWorkload(5);
  Session s = MakeSession(workload, 1);
  const std::string dir = FreshDir("absent") + "/nope";
  auto report = s.service->RestoreFrom(dir);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
  EXPECT_NE(report.status().message().find(dir), std::string::npos);
}

TEST_F(ServiceCheckpointTest, CheckpointToCreatesTheDirectory) {
  DeltaWorkload workload = MakeDeltaWorkload(5);
  Session s = MakeSession(workload, 1);
  const std::string dir = FreshDir("made") + "/a/b";
  ASSERT_FALSE(DirectoryExists(dir));
  ASSERT_TRUE(s.service->CheckpointTo(dir).ok());
  EXPECT_TRUE(DirectoryExists(dir));
}

TEST_F(ServiceCheckpointTest, MismatchedRegistrationIsFailedPrecondition) {
  DeltaWorkload workload = MakeDeltaWorkload(5);
  const std::string dir = FreshDir("mismatch");
  {
    Session s1 = MakeSession(workload, 1);
    ASSERT_TRUE(s1.service->PumpAttachedSources(50).ok());
    ASSERT_TRUE(s1.service->CheckpointTo(dir).ok());
  }
  // Same shape, different query name: the registration-replay contract
  // is violated and restore must say so instead of loading state into
  // the wrong query.
  ServiceOptions options;
  options.history = &workload.history;
  options.num_types = workload.registry.size();
  auto service = CepService::Create(options).value();
  CollectingSink sink_a, sink_b;
  ASSERT_TRUE(service
                  ->Register(QuerySpec::Simple(workload.pattern)
                                 .WithName("other")
                                 .Keyed()
                                 .WithSink(&sink_a))
                  .ok());
  ASSERT_TRUE(service
                  ->Register(QuerySpec::Simple(workload.pattern)
                                 .WithName("unkeyed")
                                 .WithSink(&sink_b))
                  .ok());
  ASSERT_TRUE(service
                  ->AttachSource(
                      std::make_unique<EventStreamSource>(&workload.delta))
                  .ok());
  auto report = service->RestoreFrom(dir);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServiceCheckpointTest, CorruptNewestCheckpointFallsBackAndReplays) {
  DeltaWorkload workload = MakeDeltaWorkload(7);
  const size_t total = workload.delta.size();
  const std::string dir = FreshDir("fallback");
  RunResult baseline = RunUninterrupted(workload, 1);

  {
    Session s1 = MakeSession(workload, 1);
    ASSERT_TRUE(s1.service->PumpAttachedSources(total / 3).ok());
    ASSERT_TRUE(s1.service->CheckpointTo(dir).ok());
    ASSERT_TRUE(s1.service->PumpAttachedSources(total / 3).ok());
    ASSERT_TRUE(s1.service->CheckpointTo(dir).ok());
  }
  // Rot the newest snapshot on disk; recovery must fall back to the
  // first checkpoint and the longer tail replay must still converge to
  // the baseline.
  const std::string newest = CheckpointStore::SnapshotPath(dir, 2);
  std::string bytes = ReadFileToString(newest).value();
  bytes[bytes.size() / 2] ^= 0x04;
  {
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  Session s2 = MakeSession(workload, 1);
  // The first run delivered matches up to the FIRST checkpoint before
  // we corrupted the second; replay re-delivers everything after it.
  // Reconstruct the prefix by running a fresh session to the same cut.
  std::vector<std::string> keyed_prefix, unkeyed_prefix;
  {
    Session ref = MakeSession(workload, 1);
    ASSERT_TRUE(ref.service->PumpAttachedSources(total / 3).ok());
    keyed_prefix = Drain(ref.keyed_sink);
    unkeyed_prefix = Drain(ref.unkeyed_sink);
  }
  auto report = s2.service->RestoreFrom(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->fell_back);
  EXPECT_EQ(report->checkpoint_seq, 1u);
  EXPECT_FALSE(report->detail.empty());
  ASSERT_TRUE(s2.service->PumpAttachedSources().ok());
  s2.service->Finish();

  std::vector<std::string> keyed = keyed_prefix;
  for (std::string& t : Drain(s2.keyed_sink)) keyed.push_back(std::move(t));
  std::vector<std::string> unkeyed = unkeyed_prefix;
  for (std::string& t : Drain(s2.unkeyed_sink)) {
    unkeyed.push_back(std::move(t));
  }
  EXPECT_EQ(keyed, baseline.keyed);
  EXPECT_EQ(unkeyed, baseline.unkeyed);
}

TEST_F(ServiceCheckpointTest, CoordinatorWritesBehindAndEnforcesPolicy) {
  DeltaWorkload workload = MakeDeltaWorkload(13);
  const std::string dir = FreshDir("coord");
  Session s = MakeSession(workload, 2);

  CheckpointOptions options;
  options.dir = dir;
  options.min_watermark_advance = 0.5;
  options.metrics = s.service->metrics_registry();
  CheckpointCoordinator coordinator(s.service.get(), options);
  ASSERT_TRUE(coordinator.Start().ok());

  double watermark = 0.0;
  uint64_t accepted = 0;
  while (true) {
    auto fed = s.service->PumpAttachedSources(64);
    ASSERT_TRUE(fed.ok()) << fed.status().ToString();
    if (fed.value() == 0) break;
    watermark += 0.1;  // ~6 policy-eligible cuts over the run
    auto cut = coordinator.MaybeCheckpoint(watermark);
    ASSERT_TRUE(cut.ok()) << cut.status().ToString();
    if (cut.value()) ++accepted;
  }
  ASSERT_TRUE(coordinator.CheckpointNow(watermark).ok());
  ASSERT_TRUE(coordinator.Stop().ok());
  // The 0.5 advance policy admits a fraction of the 0.1-step calls; the
  // final CheckpointNow bypasses it.
  EXPECT_GT(accepted, 0u);
  EXPECT_GE(coordinator.published(), accepted + 1);

  // The published chain is restorable mid-run state.
  Session s2 = MakeSession(workload, 2);
  auto report = s2.service->RestoreFrom(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(s2.service->PumpAttachedSources().ok());
  s2.service->Finish();

  // Second MaybeCheckpoint in a row without watermark movement: policy
  // skip, not an error.
  CheckpointCoordinator again(s.service.get(),
                              {dir, /*min_watermark_advance=*/10.0, nullptr});
  ASSERT_TRUE(again.Start().ok());
  auto first = again.MaybeCheckpoint(1.0);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value());
  auto second = again.MaybeCheckpoint(1.5);  // advance 0.5 < 10.0
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value());
  ASSERT_TRUE(again.Stop().ok());
}

TEST_F(ServiceCheckpointTest, InsertOnlyWorkloadRoundtrips) {
  // The ledger-free path: no retractions anywhere, checkpoint mid-way,
  // restore, replay — same equivalence contract.
  KeyedWorkload base = MakeKeyedWorkload(4, 1.0, 3);
  DeltaWorkload workload{std::move(base.registry), std::move(base.pattern), {},
                         {}};
  for (const EventPtr& e : base.stream.events()) {
    Event copy = *e;
    copy.serial = 0;
    copy.partition_seq = 0;
    workload.delta.Append(copy);
    Event history_copy = copy;
    workload.history.Append(history_copy);
  }
  RunResult baseline = RunUninterrupted(workload, 2);
  const std::string dir = FreshDir("insert_only");

  std::vector<std::string> keyed, unkeyed;
  {
    Session s1 = MakeSession(workload, 2);
    ASSERT_TRUE(s1.service->PumpAttachedSources(workload.delta.size() / 2)
                    .ok());
    ASSERT_TRUE(s1.service->CheckpointTo(dir).ok());
    // Inline-fed matches already delivered at the cut survive only in
    // the sink; sharded-query matches ride in the checkpoint instead.
    keyed = Drain(s1.keyed_sink);
    unkeyed = Drain(s1.unkeyed_sink);
  }
  Session s2 = MakeSession(workload, 2);
  auto report = s2.service->RestoreFrom(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(s2.service->PumpAttachedSources().ok());
  s2.service->Finish();
  for (std::string& tag : Drain(s2.keyed_sink)) keyed.push_back(std::move(tag));
  for (std::string& tag : Drain(s2.unkeyed_sink)) {
    unkeyed.push_back(std::move(tag));
  }
  EXPECT_EQ(keyed, baseline.keyed);
  EXPECT_EQ(unkeyed, baseline.unkeyed);
}

}  // namespace
}  // namespace cepjoin
