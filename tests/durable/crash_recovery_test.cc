// The crash matrix: a child process re-executed from /proc/self/exe
// publishes checkpoint A, then attempts checkpoint B with an armed kill
// point (CEPJOIN_KILL_POINT), dying mid-protocol with _exit(87) — no
// destructors, no flushes, exactly like SIGKILL. The parent then runs
// recovery on the survivor directory and asserts the two-phase manifest
// protocol's promise at EVERY kill point: before the manifest rename
// lands, recovery sees exactly A; after it, exactly B. Never a torn
// in-between, never a crash.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "durable/checkpoint_store.h"
#include "durable/fault_injector.h"
#include "durable/snapshot_io.h"

namespace cepjoin {
namespace {

constexpr char kPayloadA[] = "checkpoint-A-payload";
constexpr char kPayloadB[] = "checkpoint-B-payload";

// Child role: driven entirely by environment variables so the SAME test
// binary serves as the crash victim. Runs only when re-executed by
// RunChild below; in a normal test run the env is absent and this is a
// no-op pass.
TEST(CrashRecoveryChild, WritesTwoCheckpoints) {
  const char* dir = std::getenv("CEPJOIN_CRASH_TEST_DIR");
  if (dir == nullptr) return;  // not in child mode
  CheckpointStore store(dir);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteCheckpoint(kPayloadA).ok());
  // FaultInjector::Global() read CEPJOIN_KILL_POINT at first use (the
  // Open above), so the armed point fires inside this write.
  Status second = store.WriteCheckpoint(kPayloadB);
  // Reaching this line at all means the kill point never fired — the
  // parent asserts on exit code 87, so _exit(0) here fails it loudly.
  (void)second;
}

struct ChildOutcome {
  int exit_code = -1;
  bool signaled = false;
};

ChildOutcome RunChild(const std::string& dir, const std::string& kill_point) {
  pid_t pid = fork();
  if (pid == 0) {
    setenv("CEPJOIN_CRASH_TEST_DIR", dir.c_str(), 1);
    setenv("CEPJOIN_KILL_POINT", kill_point.c_str(), 1);
    // Every kill point is passed once per WriteCheckpoint; count 2 lets
    // checkpoint A publish cleanly and fires inside checkpoint B.
    setenv("CEPJOIN_KILL_COUNT", "2", 1);
    execl("/proc/self/exe", "crash_recovery_test",
          "--gtest_filter=CrashRecoveryChild.WritesTwoCheckpoints",
          "--gtest_brief=1", static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  ChildOutcome outcome;
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  if (WIFEXITED(status)) {
    outcome.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    outcome.signaled = true;
  }
  return outcome;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }

  std::string FreshDir(const std::string& tag) {
    std::string dir =
        ::testing::TempDir() + "/crash_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
        tag;
    std::filesystem::remove_all(dir);  // stale state from a prior run
    return dir;
  }
};

TEST_F(CrashRecoveryTest, EveryKillPointLeavesARestorableCheckpoint) {
  struct Point {
    const char* name;
    // Which payload recovery must see after the crash. The manifest
    // rename is the commit point of checkpoint B: every kill before it
    // recovers A, every kill at or after it recovers B.
    const char* expected_payload;
  };
  const std::vector<Point> kill_points = {
      {"snapshot-mid-write", kPayloadA},
      {"snapshot-before-rename", kPayloadA},
      {"snapshot-after-rename", kPayloadA},
      {"snapshot-written", kPayloadA},
      {"manifest-mid-write", kPayloadA},
      {"manifest-before-rename", kPayloadA},
      {"manifest-after-rename", kPayloadB},
      {"manifest-published", kPayloadB},
  };

  for (const Point& point : kill_points) {
    SCOPED_TRACE(point.name);
    const std::string dir = FreshDir(point.name);

    ChildOutcome outcome = RunChild(dir, point.name);
    ASSERT_FALSE(outcome.signaled);
    ASSERT_EQ(outcome.exit_code, FaultInjector::kKillExitCode)
        << "kill point never fired (or exec failed)";

    CheckpointStore store(dir);
    auto loaded = store.LoadLatest();
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->payload, point.expected_payload);
    EXPECT_FALSE(loaded->fell_back);

    // The survivor directory must also be writable again: reopening
    // adopts the chain and publishes past the wreckage.
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.WriteCheckpoint("post-crash").ok());
    EXPECT_EQ(store.LoadLatest()->payload, "post-crash");
  }
}

TEST_F(CrashRecoveryTest, KillDuringFirstEverCheckpointRecoversToEmpty) {
  // Crashing before ANY manifest exists must come back as NotFound (a
  // fresh directory), not DataLoss — the caller starts from scratch.
  for (const char* point : {"snapshot-mid-write", "manifest-before-rename"}) {
    SCOPED_TRACE(point);
    const std::string dir = FreshDir(point);
    pid_t pid = fork();
    if (pid == 0) {
      setenv("CEPJOIN_CRASH_TEST_DIR", dir.c_str(), 1);
      setenv("CEPJOIN_KILL_POINT", point, 1);
      setenv("CEPJOIN_KILL_COUNT", "1", 1);
      execl("/proc/self/exe", "crash_recovery_test",
            "--gtest_filter=CrashRecoveryChild.WritesTwoCheckpoints",
            "--gtest_brief=1", static_cast<char*>(nullptr));
      _exit(127);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), FaultInjector::kKillExitCode);

    CheckpointStore store(dir);
    auto loaded = store.LoadLatest();
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
    // And the directory is usable: the next incarnation just starts over.
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.WriteCheckpoint("fresh-start").ok());
    EXPECT_EQ(store.LoadLatest()->payload, "fresh-start");
  }
}

}  // namespace
}  // namespace cepjoin
