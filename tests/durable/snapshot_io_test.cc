// Snapshot I/O primitives: the byte codec's determinism and overrun
// latching, the CRC's corruption sensitivity, and WriteFileAtomic's
// behavior under injected write failures, torn writes, and bit flips —
// the foundation everything in durable/ stands on.

#include "durable/snapshot_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "durable/fault_injector.h"

namespace cepjoin {
namespace {

class SnapshotIoTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }

  std::string TempDir() {
    std::string dir = ::testing::TempDir() + "/snapshot_io_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();
    if (!cleaned_) {  // wipe stale state from a prior run, once
      std::filesystem::remove_all(dir);
      cleaned_ = true;
    }
    EXPECT_TRUE(EnsureDirectory(dir).ok());
    return dir;
  }

 private:
  bool cleaned_ = false;
};

TEST_F(SnapshotIoTest, WriterReaderRoundtrip) {
  SnapshotWriter w;
  w.U8(7);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I8(-5);
  w.F64(-1.5e300);
  w.Str("hello");
  w.Str("");  // empty strings must survive
  const char raw[3] = {'\x00', '\x7f', '\xff'};
  w.Raw(raw, sizeof(raw));

  SnapshotReader r(w.bytes());
  EXPECT_EQ(r.U8(), 7u);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I8(), -5);
  EXPECT_EQ(r.F64(), -1.5e300);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_EQ(r.remaining(), sizeof(raw));
  EXPECT_TRUE(r.ok());
}

TEST_F(SnapshotIoTest, EncodingIsDeterministic) {
  auto encode = [] {
    SnapshotWriter w;
    w.U64(42);
    w.Str("same");
    w.F64(3.25);
    return w.Take();
  };
  EXPECT_EQ(encode(), encode());
}

TEST_F(SnapshotIoTest, TruncationLatchesAtEveryBoundary) {
  SnapshotWriter w;
  w.U32(11);
  w.U64(22);
  w.Str("payload");
  w.F64(0.5);
  const std::string full = w.bytes();

  for (size_t cut = 0; cut < full.size(); ++cut) {
    SnapshotReader r(full.data(), cut);
    // Read past the cut: every read must return cleanly, and the reader
    // must end not-ok with DataLoss — never crash, never fabricate.
    (void)r.U32();
    (void)r.U64();
    (void)r.Str();
    (void)r.F64();
    (void)r.U64();  // strictly past even the full payload
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
    // Latched: later reads return zero values.
    EXPECT_EQ(r.U64(), 0u) << "cut=" << cut;
  }
}

TEST_F(SnapshotIoTest, CrcDetectsEveryBitFlip) {
  const std::string data = "checkpoint payload bytes";
  const uint32_t crc = Crc32(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32(flipped.data(), flipped.size()), crc)
          << "byte " << i << " bit " << bit;
    }
  }
}

TEST_F(SnapshotIoTest, WriteFileAtomicRoundtrip) {
  const std::string path = TempDir() + "/file.bin";
  const std::string content("abc\0def", 7);  // embedded NUL must survive
  ASSERT_TRUE(WriteFileAtomic(path, content, "test").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), content);
  // Overwrite is atomic too: the new content fully replaces the old.
  ASSERT_TRUE(WriteFileAtomic(path, "next", "test").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "next");
}

TEST_F(SnapshotIoTest, ReadMissingFileIsNotFound) {
  auto read = ReadFileToString(TempDir() + "/absent");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotIoTest, InjectedWriteFailureKeepsOldContent) {
  const std::string path = TempDir() + "/file.bin";
  ASSERT_TRUE(WriteFileAtomic(path, "original", "test").ok());
  FaultInjector::Global().FailNthWrite(1);
  Status failed = WriteFileAtomic(path, "replacement", "test");
  EXPECT_FALSE(failed.ok());
  // The atomic protocol's whole point: a failed write never tears the
  // published file.
  EXPECT_EQ(ReadFileToString(path).value(), "original");
}

TEST_F(SnapshotIoTest, InjectedTruncationShortensTheFile) {
  const std::string path = TempDir() + "/file.bin";
  FaultInjector::Global().TruncateNextWrite(3);
  ASSERT_TRUE(WriteFileAtomic(path, "0123456789", "test").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "012");
}

TEST_F(SnapshotIoTest, InjectedCorruptionFlipsOneBit) {
  const std::string path = TempDir() + "/file.bin";
  FaultInjector::Global().CorruptNextWrite(4);
  ASSERT_TRUE(WriteFileAtomic(path, "0123456789", "test").ok());
  std::string got = ReadFileToString(path).value();
  ASSERT_EQ(got.size(), 10u);
  EXPECT_NE(got[4], '4');
  got[4] = '4';
  EXPECT_EQ(got, "0123456789");
}

TEST_F(SnapshotIoTest, DirectoryHelpers) {
  const std::string dir = TempDir() + "/a/b/c";
  EXPECT_FALSE(DirectoryExists(dir));
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(DirectoryExists(dir));
  ASSERT_TRUE(EnsureDirectory(dir).ok());  // idempotent

  const std::string file = dir + "/f";
  ASSERT_TRUE(WriteFileAtomic(file, "x", "test").ok());
  RemoveFileIfExists(file);
  EXPECT_EQ(ReadFileToString(file).status().code(), StatusCode::kNotFound);
  RemoveFileIfExists(file);  // missing target is fine
}

}  // namespace
}  // namespace cepjoin
