// CheckpointStore crash-safety: two-phase publication, previous-
// generation fallback when the newest snapshot's bytes rot, and — the
// adversarial part — fuzzing the on-disk files: truncating the current
// snapshot at EVERY byte boundary and bit-flipping every byte of its
// header must each either fall back to the previous checkpoint or
// report DataLoss. Recovery never crashes and never returns bytes a CRC
// has not vouched for.

#include "durable/checkpoint_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "durable/fault_injector.h"
#include "durable/snapshot_io.h"

namespace cepjoin {
namespace {

class CheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    dir_ = ::testing::TempDir() + "/ckpt_store_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);  // stale state from a prior run
  }
  void TearDown() override { FaultInjector::Global().Reset(); }

  std::string ReadFile(const std::string& path) {
    return ReadFileToString(path).value();
  }

  void OverwriteFile(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

  std::string dir_;
};

TEST_F(CheckpointStoreTest, WriteThenLoadRoundtrip) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.Open().ok());
  uint64_t seq = 0;
  ASSERT_TRUE(store.WriteCheckpoint("payload-1", &seq).ok());
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(store.published_seq(), 1u);

  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->payload, "payload-1");
  EXPECT_EQ(loaded->seq, 1u);
  EXPECT_FALSE(loaded->fell_back);
}

TEST_F(CheckpointStoreTest, MissingDirectoryIsNotFoundNamingThePath) {
  CheckpointStore store(dir_ + "/never_created");
  auto loaded = store.LoadLatest();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_NE(loaded.status().message().find("never_created"),
            std::string::npos);
}

TEST_F(CheckpointStoreTest, EmptyDirectoryIsNotFound) {
  ASSERT_TRUE(EnsureDirectory(dir_).ok());
  CheckpointStore store(dir_);
  auto loaded = store.LoadLatest();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointStoreTest, ReopenedDirectoryContinuesTheChain) {
  {
    CheckpointStore store(dir_);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.WriteCheckpoint("gen-1").ok());
    ASSERT_TRUE(store.WriteCheckpoint("gen-2").ok());
  }
  CheckpointStore reopened(dir_);
  ASSERT_TRUE(reopened.Open().ok());
  uint64_t seq = 0;
  ASSERT_TRUE(reopened.WriteCheckpoint("gen-3", &seq).ok());
  EXPECT_EQ(seq, 3u);
  auto loaded = reopened.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->payload, "gen-3");
}

TEST_F(CheckpointStoreTest, KeepsCurrentAndPreviousOnly) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.Open().ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(store.WriteCheckpoint("gen-" + std::to_string(i)).ok());
  }
  EXPECT_EQ(ReadFileToString(CheckpointStore::SnapshotPath(dir_, 1))
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ReadFileToString(CheckpointStore::SnapshotPath(dir_, 2))
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(ReadFileToString(CheckpointStore::SnapshotPath(dir_, 3)).ok());
  EXPECT_TRUE(ReadFileToString(CheckpointStore::SnapshotPath(dir_, 4)).ok());
}

TEST_F(CheckpointStoreTest, CorruptCurrentFallsBackToPrevious) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteCheckpoint("good-old").ok());
  ASSERT_TRUE(store.WriteCheckpoint("bad-new").ok());

  const std::string current = CheckpointStore::SnapshotPath(dir_, 2);
  std::string bytes = ReadFile(current);
  bytes[bytes.size() - 3] ^= 0x01;  // flip a payload bit
  OverwriteFile(current, bytes);

  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->payload, "good-old");
  EXPECT_EQ(loaded->seq, 1u);
  EXPECT_TRUE(loaded->fell_back);
  EXPECT_FALSE(loaded->detail.empty());
}

TEST_F(CheckpointStoreTest, BothGenerationsCorruptIsDataLoss) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteCheckpoint("one").ok());
  ASSERT_TRUE(store.WriteCheckpoint("two").ok());
  for (uint64_t seq : {1u, 2u}) {
    const std::string path = CheckpointStore::SnapshotPath(dir_, seq);
    std::string bytes = ReadFile(path);
    bytes[bytes.size() - 1] ^= 0x80;
    OverwriteFile(path, bytes);
  }
  auto loaded = store.LoadLatest();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointStoreTest, FuzzTruncateCurrentAtEveryByteBoundary) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteCheckpoint("previous-generation-payload").ok());
  ASSERT_TRUE(store.WriteCheckpoint("current-generation-payload!").ok());
  const std::string current = CheckpointStore::SnapshotPath(dir_, 2);
  const std::string intact = ReadFile(current);

  for (size_t cut = 0; cut < intact.size(); ++cut) {
    OverwriteFile(current, intact.substr(0, cut));
    auto loaded = store.LoadLatest();
    // A torn current snapshot must always fall back to the intact
    // previous generation — no cut length may crash, error, or leak
    // unverified bytes through.
    ASSERT_TRUE(loaded.ok()) << "cut=" << cut << ": "
                             << loaded.status().ToString();
    EXPECT_EQ(loaded->payload, "previous-generation-payload")
        << "cut=" << cut;
    EXPECT_TRUE(loaded->fell_back) << "cut=" << cut;
  }
  // Removing the file entirely behaves like the worst truncation.
  RemoveFileIfExists(current);
  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->payload, "previous-generation-payload");
}

TEST_F(CheckpointStoreTest, FuzzBitFlipEveryHeaderByteOfCurrent) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteCheckpoint("previous-generation-payload").ok());
  ASSERT_TRUE(store.WriteCheckpoint("current-generation-payload!").ok());
  const std::string current = CheckpointStore::SnapshotPath(dir_, 2);
  const std::string intact = ReadFile(current);

  // Flip one bit in every byte — magic, version, size, CRC, payload.
  for (size_t i = 0; i < intact.size(); ++i) {
    std::string bytes = intact;
    bytes[i] ^= 0x10;
    OverwriteFile(current, bytes);
    auto loaded = store.LoadLatest();
    ASSERT_TRUE(loaded.ok()) << "byte=" << i << ": "
                             << loaded.status().ToString();
    EXPECT_EQ(loaded->payload, "previous-generation-payload") << "byte=" << i;
    EXPECT_TRUE(loaded->fell_back) << "byte=" << i;
  }
}

TEST_F(CheckpointStoreTest, FuzzTruncateManifestAtEveryByteBoundary) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteCheckpoint("payload").ok());
  const std::string manifest_path = dir_ + "/MANIFEST";
  const std::string intact = ReadFile(manifest_path);

  for (size_t cut = 0; cut < intact.size(); ++cut) {
    OverwriteFile(manifest_path, intact.substr(0, cut));
    auto loaded = store.LoadLatest();
    // The manifest is the root of trust: with it torn there is nothing
    // to fall back to, so the only acceptable outcome is an explicit
    // DataLoss (an empty file reads as missing = NotFound).
    ASSERT_FALSE(loaded.ok()) << "cut=" << cut;
    EXPECT_TRUE(loaded.status().code() == StatusCode::kDataLoss ||
                loaded.status().code() == StatusCode::kNotFound)
        << "cut=" << cut << ": " << loaded.status().ToString();
  }
  OverwriteFile(manifest_path, intact);
  EXPECT_TRUE(store.LoadLatest().ok());  // intact again -> loads again
}

TEST_F(CheckpointStoreTest, InjectedWriteFailureSurfacesAndChainSurvives) {
  CheckpointStore store(dir_);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteCheckpoint("stable").ok());

  FaultInjector::Global().FailNthWrite(1);
  EXPECT_FALSE(store.WriteCheckpoint("doomed").ok());

  // The failed publication must not have moved the manifest.
  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->payload, "stable");
  // And the store keeps working afterwards.
  ASSERT_TRUE(store.WriteCheckpoint("after-failure").ok());
  EXPECT_EQ(store.LoadLatest()->payload, "after-failure");
}

}  // namespace
}  // namespace cepjoin
