// Edge cases for the tree engine, mirroring the NFA edge suite.

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "tree/tree_engine.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::StreamOf;
using testing_util::World;

std::vector<Match> RunEngine(const SimplePattern& pattern,
                             const TreePlan& plan, const EventStream& stream) {
  CollectingSink sink;
  TreeEngine engine(pattern, plan, &sink);
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  return sink.matches;
}

TEST(TreeEdgeTest, TimestampTiesDoNotSatisfySeq) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  EventStream stream = StreamOf({Ev(0, 1.0), Ev(1, 1.0)});
  EXPECT_TRUE(
      RunEngine(p, TreePlan::LeftDeep(OrderPlan::Identity(2)), stream).empty());
}

TEST(TreeEdgeTest, EmptyStreamAndFinishIdempotence) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  CollectingSink sink;
  TreeEngine engine(p, TreePlan::LeftDeep(OrderPlan::Identity(2)), &sink);
  engine.Finish();
  engine.Finish();
  EXPECT_TRUE(sink.matches.empty());
}

TEST(TreeEdgeTest, SameTypeSlotsUseDistinctEvents) {
  World world = MakeWorld(1);
  std::vector<EventSpec> events = {{world.types[0], "a1", false, false},
                                   {world.types[0], "a2", false, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 10.0);
  EventStream stream = StreamOf({Ev(0, 1.0), Ev(0, 2.0), Ev(0, 3.0)});
  EXPECT_EQ(
      RunEngine(p, TreePlan::LeftDeep(OrderPlan::Identity(2)), stream).size(),
      3u);
}

TEST(TreeEdgeTest, KleeneInsideAndPattern) {
  World world = MakeWorld(2);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, true}};
  SimplePattern p(OperatorKind::kAnd, events, {}, 10.0);
  EventStream stream = StreamOf({Ev(1, 1), Ev(0, 2), Ev(1, 3)});
  EXPECT_EQ(
      RunEngine(p, TreePlan::LeftDeep(OrderPlan::Identity(2)), stream).size(),
      3u);
}

TEST(TreeEdgeTest, EvictionBoundsNodeBuffers) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 1.0);
  CollectingSink sink;
  TreeEngine engine(p, TreePlan::LeftDeep(OrderPlan::Identity(2)), &sink);
  EventStream stream;
  for (int i = 0; i < 1000; ++i) stream.Append(Ev(0, i * 0.1));
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  EXPECT_LT(engine.counters().live_instances, 120u);
}

TEST(TreeEdgeTest, DeepLeftDeepAndDeepRightDeepAgree) {
  World world = MakeWorld(5);
  std::vector<EventSpec> events;
  for (int i = 0; i < 5; ++i) {
    events.push_back({world.types[i], "e" + std::to_string(i), false, false});
  }
  SimplePattern p(OperatorKind::kSeq, events, {}, 3.0);
  Rng rng(61);
  EventStream stream;
  double ts = 0;
  for (int i = 0; i < 150; ++i) {
    ts += rng.UniformReal(0.02, 0.2);
    stream.Append(Ev(world.types[rng.UniformInt(0, 4)], ts));
  }
  // Right-deep tree: (0 (1 (2 (3 4)))).
  TreePlan::Builder b;
  int acc = b.AddLeaf(4);
  for (int item = 3; item >= 0; --item) {
    acc = b.AddInternal(b.AddLeaf(item), acc);
  }
  TreePlan right_deep = b.Build(acc);
  std::vector<Match> left =
      RunEngine(p, TreePlan::LeftDeep(OrderPlan::Identity(5)), stream);
  std::vector<Match> right = RunEngine(p, right_deep, stream);
  EXPECT_FALSE(left.empty());
  EXPECT_EQ(left.size(), right.size());
}

TEST(TreeEdgeDeathTest, SingleKleeneLeafRootRejected) {
  World world = MakeWorld(1);
  std::vector<EventSpec> events = {{world.types[0], "a", false, true}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 1.0);
  CollectingSink sink;
  TreePlan plan = TreePlan::LeftDeep(OrderPlan::Identity(1));
  // A Kleene leaf as the tree root cannot buffer subsets; the engine must
  // reject the construction rather than silently under-report.
  EXPECT_DEATH(TreeEngine(p, plan, &sink), "");
}

}  // namespace
}  // namespace cepjoin
