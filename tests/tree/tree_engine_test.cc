#include "tree/tree_engine.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::StreamOf;
using testing_util::World;

std::vector<Match> RunEngine(const SimplePattern& pattern, const TreePlan& plan,
                       const EventStream& stream) {
  CollectingSink sink;
  TreeEngine engine(pattern, plan, &sink);
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  return sink.matches;
}

std::vector<std::string> Fingerprints(const std::vector<Match>& matches) {
  std::vector<std::string> out;
  for (const Match& m : matches) out.push_back(m.Fingerprint());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(TreeEngineTest, DetectsSimpleSequence) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  EventStream stream = StreamOf({Ev(0, 1), Ev(1, 2), Ev(0, 3), Ev(1, 4)});
  EXPECT_EQ(
      RunEngine(p, TreePlan::LeftDeep(OrderPlan::Identity(2)), stream).size(), 3u);
}

TEST(TreeEngineTest, BushyPlanDetectsFourSlots) {
  World world = MakeWorld(4);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 4, 10);
  TreePlan::Builder builder;
  int a = builder.AddLeaf(0);
  int b = builder.AddLeaf(1);
  int c = builder.AddLeaf(2);
  int d = builder.AddLeaf(3);
  TreePlan bushy = builder.Build(
      builder.AddInternal(builder.AddInternal(a, b), builder.AddInternal(c, d)));
  EventStream stream = StreamOf({Ev(0, 1), Ev(1, 2), Ev(2, 3), Ev(3, 4)});
  EXPECT_EQ(RunEngine(p, bushy, stream).size(), 1u);
}

TEST(TreeEngineTest, CrossConditionsEnforcedAtJoinNodes) {
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, false},
                                   {world.types[2], "c", false, false}};
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kEq, 2, 0)};
  SimplePattern p(OperatorKind::kSeq, events, conditions, 10.0);
  // Fig. 3(c)-style plan: join A with C first.
  TreePlan::Builder builder;
  int a = builder.AddLeaf(0);
  int c = builder.AddLeaf(2);
  int ac = builder.AddInternal(a, c);
  int b = builder.AddLeaf(1);
  TreePlan plan = builder.Build(builder.AddInternal(ac, b));
  EventStream stream = StreamOf({Ev(0, 1, 7.0), Ev(1, 2), Ev(2, 3, 7.0),
                                 Ev(0, 4, 1.0), Ev(1, 5), Ev(2, 6, 2.0)});
  std::vector<Match> matches = RunEngine(p, plan, stream);
  // Only the a.v == c.v pair (7.0) with the B in between: (a1, b1, c1);
  // note (a1, b1, c2) fails the value condition, (a1, b2, c1) fails seq.
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].slots[0][0]->serial, 0u);
  EXPECT_EQ(matches[0].slots[1][0]->serial, 1u);
  EXPECT_EQ(matches[0].slots[2][0]->serial, 2u);
}

TEST(TreeEngineTest, WindowEnforced) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 2);
  EventStream stream = StreamOf({Ev(0, 0), Ev(1, 3)});
  EXPECT_TRUE(
      RunEngine(p, TreePlan::LeftDeep(OrderPlan::Identity(2)), stream).empty());
}

TEST(TreeEngineTest, TreeShapeInvariance) {
  // All tree shapes over the same pattern produce identical match sets.
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, false},
                                   {world.types[2], "c", false, false}};
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 2, 0)};
  SimplePattern p(OperatorKind::kSeq, events, conditions, 4.0);
  Rng rng(23);
  EventStream stream;
  double ts = 0;
  for (int i = 0; i < 100; ++i) {
    ts += rng.UniformReal(0.05, 0.3);
    stream.Append(Ev(world.types[rng.UniformInt(0, 2)], ts,
                     rng.UniformReal(-2, 2)));
  }
  // Three shapes: ((01)2), (0(12)), ((02)1).
  std::vector<TreePlan> shapes;
  shapes.push_back(TreePlan::LeftDeep(OrderPlan::Identity(3)));
  {
    TreePlan::Builder b;
    int l0 = b.AddLeaf(0);
    int l1 = b.AddLeaf(1);
    int l2 = b.AddLeaf(2);
    shapes.push_back(b.Build(b.AddInternal(l0, b.AddInternal(l1, l2))));
  }
  {
    TreePlan::Builder b;
    int l0 = b.AddLeaf(0);
    int l2 = b.AddLeaf(2);
    int l1 = b.AddLeaf(1);
    shapes.push_back(b.Build(b.AddInternal(b.AddInternal(l0, l2), l1)));
  }
  std::vector<std::string> reference = Fingerprints(RunEngine(p, shapes[0], stream));
  EXPECT_FALSE(reference.empty());
  for (size_t k = 1; k < shapes.size(); ++k) {
    EXPECT_EQ(Fingerprints(RunEngine(p, shapes[k], stream)), reference)
        << shapes[k].Describe();
  }
}

TEST(TreeEngineTest, InternalNegationAtLowestCoveringNode) {
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 10.0);
  TreePlan plan = TreePlan::LeftDeep(OrderPlan::Identity(2));
  EXPECT_TRUE(RunEngine(p, plan, StreamOf({Ev(0, 1), Ev(1, 2), Ev(2, 3)})).empty());
  EXPECT_EQ(RunEngine(p, plan, StreamOf({Ev(0, 1), Ev(2, 3), Ev(1, 4)})).size(), 1u);
}

TEST(TreeEngineTest, TrailingNegationDefersEmission) {
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[2], "c", false, false},
                                   {world.types[1], "b", true, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 2.0);
  TreePlan plan = TreePlan::LeftDeep(OrderPlan::Identity(2));
  EXPECT_TRUE(
      RunEngine(p, plan, StreamOf({Ev(0, 1), Ev(2, 2), Ev(1, 2.5)})).empty());
  EXPECT_EQ(
      RunEngine(p, plan, StreamOf({Ev(0, 1), Ev(2, 2), Ev(1, 3.5)})).size(), 1u);
}

TEST(TreeEngineTest, KleeneLeafEnumeratesSubsets) {
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, true},
                                   {world.types[2], "c", false, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 10.0);
  TreePlan plan = TreePlan::LeftDeep(OrderPlan::Identity(3));
  EventStream stream =
      StreamOf({Ev(0, 1), Ev(1, 2), Ev(1, 3), Ev(1, 4), Ev(2, 5)});
  EXPECT_EQ(RunEngine(p, plan, stream).size(), 7u);
}

TEST(TreeEngineTest, SkipTillNextLimitsCombinations) {
  World world = MakeWorld(2);
  SimplePattern p =
      testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10)
          .WithStrategy(SelectionStrategy::kSkipTillNext);
  EventStream stream = StreamOf({Ev(0, 1), Ev(1, 2), Ev(1, 3)});
  EXPECT_EQ(RunEngine(p, TreePlan::LeftDeep(OrderPlan::Identity(2)), stream).size(),
            1u);
}

TEST(TreeEngineTest, CountersTrackState) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  CollectingSink sink;
  TreeEngine engine(p, TreePlan::LeftDeep(OrderPlan::Identity(2)), &sink);
  EventStream stream = StreamOf({Ev(0, 1), Ev(1, 2)});
  for (const EventPtr& e : stream.events()) {
    engine.OnEvent(e);
  }
  engine.Finish();
  EXPECT_EQ(engine.counters().matches_emitted, 1u);
  EXPECT_GE(engine.counters().instances_created, 2u);  // two leaf instances
}

TEST(TreeEngineDeathTest, PlanMustMatchSlotCount) {
  World world = MakeWorld(3);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 3, 10);
  CollectingSink sink;
  EXPECT_DEATH(
      TreeEngine(p, TreePlan::LeftDeep(OrderPlan::Identity(2)), &sink),
      "positive slots");
}

}  // namespace
}  // namespace cepjoin
