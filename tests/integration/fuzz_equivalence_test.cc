// Randomized cross-engine / cross-plan equivalence over workload-realistic
// patterns: for every pattern family the generator produces, every
// algorithm's plan must detect the exact same match set on the stock
// stream. This is the widest correctness net in the suite.

#include <gtest/gtest.h>

#include "api/cep_runtime.h"
#include "engine/engine_factory.h"
#include "optimizer/registry.h"
#include "stats/collector.h"
#include "workload/pattern_generator.h"
#include "workload/stock_generator.h"

namespace cepjoin {
namespace {

const StockUniverse& FuzzUniverse() {
  static const StockUniverse* universe = [] {
    StockGeneratorConfig config;
    config.num_symbols = 10;
    config.max_rate = 8.0;
    config.duration_seconds = 15.0;
    config.seed = 777;
    return new StockUniverse(GenerateStockStream(config));
  }();
  return *universe;
}

std::vector<std::string> RunPlans(const std::vector<SimplePattern>& subs,
                                  const std::vector<EnginePlan>& plans) {
  CollectingSink sink;
  std::unique_ptr<Engine> engine = BuildDnfEngine(subs, plans, &sink);
  for (const EventPtr& e : FuzzUniverse().stream.events()) {
    engine->OnEvent(e);
  }
  engine->Finish();
  return sink.Fingerprints();
}

struct FuzzCase {
  PatternFamily family;
  int size;
  uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const FuzzCase& c) {
    return os << FamilyName(c.family) << "_n" << c.size << "_s" << c.seed;
  }
};

class FuzzEquivalenceTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzEquivalenceTest, EveryAlgorithmDetectsTheSameMatches) {
  const FuzzCase& c = GetParam();
  const StockUniverse& universe = FuzzUniverse();
  StatsCollector collector(universe.stream, universe.registry.size());

  PatternGenConfig pg;
  pg.family = c.family;
  pg.size = c.size;
  pg.window = c.family == PatternFamily::kKleene ? 0.5 : 1.0;
  pg.seed = c.seed;
  std::vector<SimplePattern> subs = GeneratePattern(universe, pg);

  std::vector<std::string> algorithms = PaperOrderAlgorithms();
  algorithms.push_back("KBZ");
  algorithms.push_back("SA");
  for (const std::string& name : PaperTreeAlgorithms()) {
    algorithms.push_back(name);
  }

  std::vector<std::string> reference;
  bool first = true;
  for (const std::string& algorithm : algorithms) {
    std::vector<EnginePlan> plans;
    for (const SimplePattern& sub : subs) {
      CostFunction cost =
          MakeCostFunction(sub, collector.CollectForPattern(sub), 0.0);
      plans.push_back(MakePlan(algorithm, cost).value());
    }
    std::vector<std::string> matches = RunPlans(subs, plans);
    if (first) {
      reference = matches;
      first = false;
    } else {
      EXPECT_EQ(matches, reference) << algorithm;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FuzzEquivalenceTest,
    ::testing::Values(
        FuzzCase{PatternFamily::kSequence, 3, 1},
        FuzzCase{PatternFamily::kSequence, 5, 2},
        FuzzCase{PatternFamily::kNegation, 4, 3},
        FuzzCase{PatternFamily::kNegation, 5, 4},
        FuzzCase{PatternFamily::kConjunction, 3, 5},
        FuzzCase{PatternFamily::kConjunction, 4, 6},
        FuzzCase{PatternFamily::kKleene, 3, 7},
        FuzzCase{PatternFamily::kKleene, 4, 8},
        FuzzCase{PatternFamily::kDisjunction, 3, 9},
        FuzzCase{PatternFamily::kDisjunction, 4, 10}));

}  // namespace
}  // namespace cepjoin
