// End-to-end pipeline: generator -> statistics collection -> plan
// generation -> engine execution, exactly the flow of the paper's
// experimental methodology (Sec. 7.2).

#include <gtest/gtest.h>

#include "api/cep_runtime.h"
#include "metrics/runner.h"
#include "optimizer/registry.h"
#include "workload/pattern_generator.h"
#include "workload/stock_generator.h"

namespace cepjoin {
namespace {

StockUniverse BenchUniverse(double duration = 20.0) {
  StockGeneratorConfig config;
  config.num_symbols = 12;
  config.duration_seconds = duration;
  config.max_rate = 20.0;
  return GenerateStockStream(config);
}

TEST(PipelineTest, AllAlgorithmsDetectIdenticalMatchCounts) {
  StockUniverse universe = BenchUniverse();
  StatsCollector collector(universe.stream, universe.registry.size());
  PatternGenConfig pg;
  pg.family = PatternFamily::kSequence;
  pg.size = 4;
  pg.window = 2.0;
  SimplePattern pattern = GeneratePattern(universe, pg)[0];
  PatternStats stats = collector.CollectForPattern(pattern);

  uint64_t reference = 0;
  bool first = true;
  std::vector<std::string> algorithms = PaperOrderAlgorithms();
  algorithms.push_back("KBZ");
  for (const std::string& name : PaperTreeAlgorithms()) {
    algorithms.push_back(name);
  }
  for (const std::string& name : algorithms) {
    CostFunction cost(stats, pattern.window());
    EnginePlan plan = MakePlan(name, cost).value();
    RunResult result = Execute(pattern, plan, universe.stream);
    if (first) {
      reference = result.matches;
      first = false;
    } else {
      EXPECT_EQ(result.matches, reference) << name;
    }
    EXPECT_GT(result.throughput_eps, 0.0) << name;
  }
  EXPECT_GT(reference, 0u) << "workload produced no matches — degenerate";
}

TEST(PipelineTest, OptimizedPlansCreateFewerPartialMatches) {
  // The core claim: cost-based plans reduce partial matches versus the
  // trivial order. Use a pattern whose last slot is rare.
  StockUniverse universe = BenchUniverse(30.0);
  StatsCollector collector(universe.stream, universe.registry.size());
  // Pick symbols sorted by rate descending so TRIVIAL is bad.
  std::vector<TypeId> symbols = universe.symbols;
  std::sort(symbols.begin(), symbols.end(), [&](TypeId a, TypeId b) {
    return collector.TypeRate(a) > collector.TypeRate(b);
  });
  std::vector<EventSpec> events;
  for (int i = 0; i < 4; ++i) {
    events.push_back({symbols[i * 2], "e" + std::to_string(i), false, false});
  }
  SimplePattern pattern(OperatorKind::kSeq, events, {}, 2.0);
  PatternStats stats = collector.CollectForPattern(pattern);
  CostFunction cost(stats, pattern.window());

  RunResult trivial =
      Execute(pattern, MakePlan("TRIVIAL", cost).value(), universe.stream);
  RunResult dp = Execute(pattern, MakePlan("DP-LD", cost).value(), universe.stream);
  EXPECT_EQ(trivial.matches, dp.matches);
  EXPECT_LT(dp.peak_instances, trivial.peak_instances);
}

TEST(PipelineTest, CepRuntimeFacadeSimplePattern) {
  StockUniverse universe = BenchUniverse();
  StatsCollector collector(universe.stream, universe.registry.size());
  PatternGenConfig pg;
  pg.family = PatternFamily::kConjunction;
  pg.size = 3;
  pg.window = 1.5;
  SimplePattern pattern = GeneratePattern(universe, pg)[0];

  CollectingSink sink;
  RuntimeOptions options;
  options.algorithm = "DP-B";
  CepRuntime runtime(pattern, collector.CollectForPattern(pattern), options,
                     &sink);
  runtime.ProcessStream(universe.stream);
  runtime.Finish();
  EXPECT_EQ(runtime.counters().matches_emitted, sink.matches.size());
  EXPECT_NE(runtime.DescribePlans().find("DP-B"), std::string::npos);
}

TEST(PipelineTest, CepRuntimeFacadeNestedPattern) {
  StockUniverse universe = BenchUniverse();
  StatsCollector collector(universe.stream, universe.registry.size());
  // OR of two sequences over distinct symbols.
  auto leaf = [&](int idx, const std::string& name) {
    return PatternNode::Leaf({universe.symbols[idx], name, false, false});
  };
  NestedPattern nested;
  nested.root = PatternNode::Op(
      OperatorKind::kOr,
      {PatternNode::Op(OperatorKind::kSeq, {leaf(0, "a"), leaf(1, "b")}),
       PatternNode::Op(OperatorKind::kSeq, {leaf(2, "c"), leaf(3, "d")})});
  nested.window = 1.0;

  CollectingSink sink;
  CepRuntime runtime(nested, collector, RuntimeOptions{}, &sink);
  runtime.ProcessStream(universe.stream);
  runtime.Finish();
  EXPECT_EQ(runtime.plans().size(), 2u);
  EXPECT_GT(sink.matches.size(), 0u);
  // Matches from both subpatterns present.
  bool saw0 = false;
  bool saw1 = false;
  for (const Match& m : sink.matches) {
    saw0 = saw0 || m.subpattern == 0;
    saw1 = saw1 || m.subpattern == 1;
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
}

TEST(PipelineTest, HybridLatencyCostChangesPlans) {
  // With a huge alpha the chosen order must end at the anchor slot,
  // trading throughput for latency (Sec. 6.1 / Fig. 18's mechanism).
  StockUniverse universe = BenchUniverse();
  StatsCollector collector(universe.stream, universe.registry.size());
  PatternGenConfig pg;
  pg.family = PatternFamily::kSequence;
  pg.size = 5;
  pg.window = 1.5;
  SimplePattern pattern = GeneratePattern(universe, pg)[0];
  PatternStats stats = collector.CollectForPattern(pattern);

  CostFunction plain = MakeCostFunction(pattern, stats, 0.0);
  CostFunction hybrid = MakeCostFunction(pattern, stats, 1e9);
  OrderPlan plain_plan = MakeOrderOptimizer("DP-LD").value()->Optimize(plain);
  OrderPlan hybrid_plan = MakeOrderOptimizer("DP-LD").value()->Optimize(hybrid);
  // Under extreme alpha the anchor (last pattern slot) is processed last.
  EXPECT_EQ(hybrid_plan.At(4), 4);
  // Latency cost of the hybrid-chosen plan must be minimal (zero).
  CostSpec spec;
  spec.latency_alpha = 1.0;
  spec.latency_anchor = 4;
  CostFunction measure(stats, pattern.window(), spec);
  EXPECT_DOUBLE_EQ(measure.OrderLatencyCost(hybrid_plan), 0.0);
  EXPECT_GE(measure.OrderLatencyCost(plain_plan), 0.0);
}

TEST(PipelineTest, SelectionStrategiesRunEndToEnd) {
  StockUniverse universe = BenchUniverse();
  StatsCollector collector(universe.stream, universe.registry.size());
  PatternGenConfig pg;
  pg.family = PatternFamily::kSequence;
  pg.size = 3;
  pg.window = 1.0;
  for (SelectionStrategy strategy :
       {SelectionStrategy::kSkipTillAny, SelectionStrategy::kSkipTillNext,
        SelectionStrategy::kStrictContiguity,
        SelectionStrategy::kPartitionContiguity}) {
    pg.strategy = strategy;
    SimplePattern pattern = GeneratePattern(universe, pg)[0];
    PatternStats stats = collector.CollectForPattern(pattern);
    CostFunction cost = MakeCostFunction(pattern, stats, 0.0);
    RunResult result =
        Execute(pattern, MakePlan("GREEDY", cost).value(), universe.stream);
    EXPECT_GT(result.events, 0u) << SelectionStrategyName(strategy);
  }
}

}  // namespace
}  // namespace cepjoin
