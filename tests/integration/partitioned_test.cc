// Per-partition plan generation (Sec. 6.2 future work): partitions with
// different statistics receive different plans; detection equals running
// the pattern independently per partition sub-stream.

#include "adaptive/partitioned_runtime.h"

#include <gtest/gtest.h>

#include "nfa/nfa_engine.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::World;

// Two partitions with inverted rate profiles: in partition 0 type A is
// rare; in partition 1 type C is rare.
EventStream TwoPartitionStream(const World& world, double duration,
                               uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  double ts = 0.0;
  while (ts < duration) {
    ts += rng.UniformReal(0.005, 0.02);
    uint32_t partition = rng.Bernoulli(0.5) ? 0 : 1;
    double coin = rng.UniformReal(0, 1);
    TypeId rare = world.types[partition == 0 ? 0 : 2];
    TypeId frequent = world.types[partition == 0 ? 2 : 0];
    TypeId type = coin < 0.08 ? rare : coin < 0.5 ? world.types[1] : frequent;
    stream.Append(Ev(type, ts, rng.UniformReal(-1, 1), partition));
  }
  return stream;
}

TEST(PartitionedRuntimeTest, PartitionsGetDifferentPlans) {
  World world = MakeWorld(3);
  SimplePattern pattern =
      testing_util::PurePattern(world, OperatorKind::kSeq, 3, 0.5);
  EventStream history = TwoPartitionStream(world, 30.0, 1);
  CollectingSink sink;
  PartitionedRuntime runtime(pattern, history, 3, "GREEDY", &sink);
  runtime.ProcessStream(history);
  runtime.Finish();
  ASSERT_EQ(runtime.num_partitions(), 2u);
  // Partition 0's plan starts with its rare slot (0); partition 1's with
  // slot 2.
  EXPECT_EQ(runtime.PlanFor(0).order.At(0), 0);
  EXPECT_EQ(runtime.PlanFor(1).order.At(0), 2);
}

TEST(PartitionedRuntimeTest, MatchesEqualPerPartitionDetection) {
  World world = MakeWorld(3);
  std::vector<EventSpec> events;
  for (int i = 0; i < 3; ++i) {
    events.push_back({world.types[i], "e" + std::to_string(i), false, false});
  }
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 2, 0)};
  SimplePattern pattern(OperatorKind::kSeq, events, conditions, 0.5);
  EventStream stream = TwoPartitionStream(world, 20.0, 2);

  CollectingSink partitioned_sink;
  PartitionedRuntime runtime(pattern, stream, 3, "DP-LD", &partitioned_sink);
  runtime.ProcessStream(stream);
  runtime.Finish();

  // Reference: run one NFA per partition sub-stream.
  CollectingSink reference_sink;
  for (uint32_t partition : {0u, 1u}) {
    EventStream sub;
    for (const EventPtr& e : stream.events()) {
      if (e->partition == partition) {
        Event copy = *e;
        sub.Append(std::move(copy));
      }
    }
    NfaEngine engine(pattern, OrderPlan::Identity(3), &reference_sink);
    for (const EventPtr& e : sub.events()) engine.OnEvent(e);
    engine.Finish();
  }
  EXPECT_GT(reference_sink.matches.size(), 0u);
  // Fingerprints differ (serials are per-sub-stream in the reference), so
  // compare counts and per-partition totals instead.
  EXPECT_EQ(partitioned_sink.matches.size(), reference_sink.matches.size());
}

TEST(PartitionedRuntimeTest, UnseenPartitionFallsBackToGlobalStats) {
  World world = MakeWorld(3);
  SimplePattern pattern =
      testing_util::PurePattern(world, OperatorKind::kSeq, 3, 0.5);
  EventStream history = TwoPartitionStream(world, 10.0, 3);
  CollectingSink sink;
  PartitionedRuntime runtime(pattern, history, 3, "GREEDY", &sink);
  // Live stream introduces partition 7, absent from the history.
  EventStream live;
  live.Append(Ev(world.types[0], 0.1, 0, /*partition=*/7));
  live.Append(Ev(world.types[1], 0.2, 0, /*partition=*/7));
  live.Append(Ev(world.types[2], 0.3, 0, /*partition=*/7));
  runtime.ProcessStream(live);
  runtime.Finish();
  EXPECT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(runtime.PlanFor(7).order.size(), 3);
}

TEST(PartitionedRuntimeTest, CountersAggregate) {
  World world = MakeWorld(3);
  SimplePattern pattern =
      testing_util::PurePattern(world, OperatorKind::kSeq, 3, 0.5);
  EventStream stream = TwoPartitionStream(world, 10.0, 4);
  CollectingSink sink;
  PartitionedRuntime runtime(pattern, stream, 3, "GREEDY", &sink);
  runtime.ProcessStream(stream);
  runtime.Finish();
  EngineCounters total = runtime.TotalCounters();
  EXPECT_EQ(total.matches_emitted, sink.matches.size());
  EXPECT_GT(total.instances_created, 0u);
}

}  // namespace
}  // namespace cepjoin
