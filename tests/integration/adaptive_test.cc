// Adaptive runtime (Sec. 6.3, simplified from [27]): online statistics,
// plan switchover with replay warm-up, and exactly-once match delivery.

#include "adaptive/adaptive_runtime.h"

#include <gtest/gtest.h>

#include "nfa/nfa_engine.h"
#include "runtime/output_profiler.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::World;

// A stream whose statistics invert halfway: type 0 rare then frequent,
// type 2 frequent then rare.
EventStream DriftingStream(const World& world, double duration) {
  Rng rng(321);
  EventStream stream;
  double ts = 0.0;
  while (ts < duration) {
    ts += rng.UniformReal(0.005, 0.02);
    bool first_half = ts < duration / 2;
    double coin = rng.UniformReal(0, 1);
    TypeId type;
    if (coin < 0.1) {
      type = world.types[first_half ? 0 : 2];
    } else if (coin < 0.55) {
      type = world.types[1];
    } else {
      type = world.types[first_half ? 2 : 0];
    }
    stream.Append(Ev(type, ts, rng.UniformReal(-1, 1)));
  }
  return stream;
}

TEST(AdaptiveRuntimeTest, ReoptimizesOnDrift) {
  World world = MakeWorld(3);
  SimplePattern pattern =
      testing_util::PurePattern(world, OperatorKind::kSeq, 3, 1.0);
  EventStream stream = DriftingStream(world, 40.0);
  CollectingSink sink;
  AdaptiveOptions options;
  options.algorithm = "GREEDY";
  options.evaluation_interval = 2.0;
  options.stats_half_life = 3.0;
  AdaptiveRuntime runtime(pattern, 3, options, &sink);
  runtime.ProcessStream(stream);
  runtime.Finish();
  EXPECT_GE(runtime.reoptimization_count(), 1);
}

TEST(AdaptiveRuntimeTest, MatchSetEqualsStaticEngine) {
  // Adaptivity must not change semantics: the adaptive runtime delivers
  // exactly the matches a static engine finds, despite plan switches.
  World world = MakeWorld(3);
  std::vector<EventSpec> events;
  for (int i = 0; i < 3; ++i) {
    events.push_back({world.types[i], "e" + std::to_string(i), false, false});
  }
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 2, 0)};
  SimplePattern pattern(OperatorKind::kSeq, events, conditions, 1.0);
  EventStream stream = DriftingStream(world, 30.0);

  CollectingSink static_sink;
  NfaEngine static_engine(pattern, OrderPlan::Identity(3), &static_sink);
  for (const EventPtr& e : stream.events()) static_engine.OnEvent(e);
  static_engine.Finish();

  CollectingSink adaptive_sink;
  AdaptiveOptions options;
  options.evaluation_interval = 1.5;
  options.stats_half_life = 2.0;
  options.improvement_threshold = 0.05;  // switch eagerly
  AdaptiveRuntime runtime(pattern, 3, options, &adaptive_sink);
  runtime.ProcessStream(stream);
  runtime.Finish();

  EXPECT_GE(runtime.reoptimization_count(), 1)
      << "test should exercise at least one switchover";
  EXPECT_EQ(adaptive_sink.Fingerprints(), static_sink.Fingerprints());
}

TEST(AdaptiveRuntimeTest, NoDriftNoReoptimization) {
  World world = MakeWorld(3);
  SimplePattern pattern =
      testing_util::PurePattern(world, OperatorKind::kSeq, 3, 1.0);
  // Perfectly stationary round-robin stream.
  EventStream stream;
  for (int i = 0; i < 3000; ++i) {
    stream.Append(Ev(world.types[i % 3], i * 0.01));
  }
  CollectingSink sink;
  AdaptiveOptions options;
  options.evaluation_interval = 2.0;
  options.improvement_threshold = 0.3;
  AdaptiveRuntime runtime(pattern, 3, options, &sink);
  runtime.ProcessStream(stream);
  runtime.Finish();
  // One initial improvement over the bootstrap TRIVIAL plan is allowed;
  // after that the plan must be stable.
  EXPECT_LE(runtime.reoptimization_count(), 1);
}

TEST(OutputProfilerTest, IdentifiesMostFrequentLastPosition) {
  World world = MakeWorld(3);
  SimplePattern pattern =
      testing_util::PurePattern(world, OperatorKind::kAnd, 3, 5.0);
  CollectingSink inner;
  OutputProfiler profiler(&inner, pattern.size());
  NfaEngine engine(pattern, OrderPlan::Identity(3), &profiler);
  // Type 2 always arrives last.
  EventStream stream;
  double ts = 0;
  for (int i = 0; i < 20; ++i) {
    stream.Append(Ev(world.types[0], ts += 0.1));
    stream.Append(Ev(world.types[1], ts += 0.1));
    stream.Append(Ev(world.types[2], ts += 0.1));
    ts += 10.0;  // separate windows
  }
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  EXPECT_GT(inner.matches.size(), 0u);
  EXPECT_EQ(profiler.MostFrequentLastPosition(), 2);
}

}  // namespace
}  // namespace cepjoin
