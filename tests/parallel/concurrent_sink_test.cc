// ConcurrentMatchSink: the drain replays matches in a canonical order —
// by emit_serial, ties (Finish-time matches of different partitions)
// broken by partition id, per-partition order preserved — independent of
// which shard recorded what.

#include "parallel/concurrent_sink.h"

#include <gtest/gtest.h>

#include <vector>

#include "runtime/match.h"

namespace cepjoin {
namespace {

Match MatchWithSerial(EventSerial emit_serial, EventSerial last_serial) {
  Match m;
  m.emit_serial = emit_serial;
  m.last_event_serial = last_serial;
  return m;
}

std::vector<std::pair<EventSerial, EventSerial>> Drained(
    ConcurrentMatchSink& sink) {
  CollectingSink out;
  sink.DrainTo(&out);
  std::vector<std::pair<EventSerial, EventSerial>> result;
  for (const Match& m : out.matches) {
    result.push_back({m.emit_serial, m.last_event_serial});
  }
  return result;
}

TEST(ConcurrentSinkTest, DrainsAcrossShardsByEmitSerial) {
  ConcurrentMatchSink sink(2);
  sink.shard(0)->set_current_partition(0);
  sink.shard(0)->OnMatch(MatchWithSerial(5, 1));
  sink.shard(0)->OnMatch(MatchWithSerial(9, 2));
  sink.shard(1)->set_current_partition(1);
  sink.shard(1)->OnMatch(MatchWithSerial(3, 3));
  sink.shard(1)->OnMatch(MatchWithSerial(7, 4));
  EXPECT_EQ(sink.total_matches(), 4u);
  std::vector<std::pair<EventSerial, EventSerial>> expected = {
      {3, 3}, {5, 1}, {7, 4}, {9, 2}};
  EXPECT_EQ(Drained(sink), expected);
  EXPECT_EQ(sink.total_matches(), 0u);  // drain clears the buffers
}

TEST(ConcurrentSinkTest, EqualSerialTieBrokenByPartition) {
  // Finish-time matches: both engines report the same emit_serial; the
  // lower partition id must drain first regardless of shard layout.
  ConcurrentMatchSink sink(2);
  sink.shard(1)->set_current_partition(4);
  sink.shard(1)->OnMatch(MatchWithSerial(10, 1));
  sink.shard(0)->set_current_partition(2);
  sink.shard(0)->OnMatch(MatchWithSerial(10, 2));
  std::vector<std::pair<EventSerial, EventSerial>> expected = {{10, 2},
                                                              {10, 1}};
  EXPECT_EQ(Drained(sink), expected);
}

TEST(ConcurrentSinkTest, SamePartitionOrderPreserved) {
  // One engine emitting several matches while processing one event: the
  // stable sort must keep its emission order.
  ConcurrentMatchSink sink(1);
  sink.shard(0)->set_current_partition(3);
  sink.shard(0)->OnMatch(MatchWithSerial(6, 100));
  sink.shard(0)->OnMatch(MatchWithSerial(6, 200));
  sink.shard(0)->OnMatch(MatchWithSerial(6, 50));
  std::vector<std::pair<EventSerial, EventSerial>> expected = {
      {6, 100}, {6, 200}, {6, 50}};
  EXPECT_EQ(Drained(sink), expected);
}

TEST(ConcurrentSinkTest, ShardLayoutDoesNotChangeDrainOrder) {
  // The same logical matches distributed over 1 vs 3 shards drain
  // identically.
  auto feed = [](ConcurrentMatchSink& sink, size_t num_shards) {
    auto shard_of = [num_shards](uint32_t partition) {
      return partition % num_shards;
    };
    struct Record {
      uint32_t partition;
      EventSerial emit, last;
    };
    std::vector<Record> records = {
        {0, 2, 2}, {1, 4, 4}, {0, 6, 6}, {2, 6, 5}, {1, 8, 8}, {2, 8, 7}};
    for (const Record& r : records) {
      auto* shard = sink.shard(shard_of(r.partition));
      shard->set_current_partition(r.partition);
      shard->OnMatch(MatchWithSerial(r.emit, r.last));
    }
  };
  ConcurrentMatchSink one(1);
  feed(one, 1);
  ConcurrentMatchSink three(3);
  feed(three, 3);
  EXPECT_EQ(Drained(one), Drained(three));
}

}  // namespace
}  // namespace cepjoin
